/**
 * @file
 * Tests for CoordinationConfig::resolved(): propagation of the
 * coordination switch and overhead constants into the controller
 * parameter blocks.
 */

#include <gtest/gtest.h>

#include "core/config.h"

namespace {

using namespace nps;
using core::CoordinationConfig;

TEST(Config, DefaultsAreFigure5Baselines)
{
    CoordinationConfig cfg;
    EXPECT_TRUE(cfg.coordinated);
    EXPECT_EQ(cfg.ec.period, 1u);
    EXPECT_EQ(cfg.sm.period, 5u);
    EXPECT_EQ(cfg.em.period, 25u);
    EXPECT_EQ(cfg.gm.period, 50u);
    EXPECT_EQ(cfg.vmc.period, 500u);
    EXPECT_DOUBLE_EQ(cfg.ec.lambda, 0.8);
    EXPECT_DOUBLE_EQ(cfg.ec.r_ref, 0.75);
    EXPECT_DOUBLE_EQ(cfg.sm.beta, 1.0);
    EXPECT_DOUBLE_EQ(cfg.alpha_v, 0.10);
    EXPECT_DOUBLE_EQ(cfg.alpha_m, 0.10);
    EXPECT_EQ(cfg.budgets.label(), "20-15-10");
}

TEST(Config, CoordinatedResolution)
{
    auto r = CoordinationConfig{}.resolved();
    EXPECT_EQ(r.sm.mode, controllers::ServerManager::Mode::Coordinated);
    EXPECT_EQ(r.gm.mode, controllers::GroupManager::Mode::Coordinated);
    EXPECT_TRUE(r.vmc.use_real_util);
    EXPECT_TRUE(r.vmc.use_budget_constraints);
    EXPECT_TRUE(r.vmc.use_violation_feedback);
}

TEST(Config, UncoordinatedResolution)
{
    CoordinationConfig cfg;
    cfg.coordinated = false;
    auto r = cfg.resolved();
    EXPECT_EQ(r.sm.mode, controllers::ServerManager::Mode::DirectPState);
    EXPECT_EQ(r.gm.mode, controllers::GroupManager::Mode::Uncoordinated);
    EXPECT_FALSE(r.vmc.use_real_util);
    EXPECT_FALSE(r.vmc.use_budget_constraints);
    EXPECT_FALSE(r.vmc.use_violation_feedback);
    EXPECT_DOUBLE_EQ(r.vmc.spread_sigma, 0.0);
}

TEST(Config, NoEcForcesDirectSm)
{
    CoordinationConfig cfg;
    cfg.enable_ec = false;
    auto r = cfg.resolved();
    EXPECT_EQ(r.sm.mode, controllers::ServerManager::Mode::DirectPState);
}

TEST(Config, NoCappersDisablesFeedback)
{
    CoordinationConfig cfg;
    cfg.enable_sm = false;
    cfg.enable_em = false;
    cfg.enable_gm = false;
    auto r = cfg.resolved();
    EXPECT_FALSE(r.vmc.use_violation_feedback);
}

TEST(Config, OverheadsPropagateToVmc)
{
    CoordinationConfig cfg;
    cfg.alpha_v = 0.2;
    cfg.alpha_m = 0.3;
    cfg.ec.r_ref = 0.6;
    auto r = cfg.resolved();
    EXPECT_DOUBLE_EQ(r.vmc.alpha_v, 0.2);
    EXPECT_DOUBLE_EQ(r.vmc.alpha_m, 0.3);
    EXPECT_DOUBLE_EQ(r.vmc.util_limit, 0.6);
}

TEST(Config, BadValuesDie)
{
    CoordinationConfig cfg;
    cfg.alpha_v = -0.1;
    EXPECT_DEATH(cfg.resolved(), "negative overheads");
    CoordinationConfig cfg2;
    cfg2.cap_limit_frac = 0.0;
    EXPECT_DEATH(cfg2.resolved(), "cap_limit_frac");
}

} // namespace
