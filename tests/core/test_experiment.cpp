/**
 * @file
 * Tests for the ExperimentRunner: baseline caching, topology selection,
 * machine resolution, and sane end-to-end results.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenarios.h"

namespace {

using namespace nps;
using core::ExperimentRunner;
using core::ExperimentSpec;

class ExperimentTest : public ::testing::Test
{
  protected:
    static trace::GeneratorConfig
    shortGen()
    {
        trace::GeneratorConfig gen;
        gen.trace_length = 600;
        return gen;
    }

    ExperimentRunner runner_{shortGen()};
};

TEST_F(ExperimentTest, TopologySelection)
{
    EXPECT_EQ(ExperimentRunner::topologyFor(trace::Mix::All180)
                  .num_servers, 180u);
    EXPECT_EQ(ExperimentRunner::topologyFor(trace::Mix::HH60)
                  .num_servers, 60u);
}

TEST_F(ExperimentTest, MachineResolution)
{
    ExperimentSpec spec;
    spec.machine = "ServerB";
    EXPECT_EQ(runner_.machineFor(spec).pstates().size(), 6u);
    spec.two_pstates = true;
    EXPECT_EQ(runner_.machineFor(spec).pstates().size(), 2u);
}

TEST_F(ExperimentTest, CoordinatedRunProducesSaneMetrics)
{
    ExperimentSpec spec;
    spec.label = "coord";
    spec.config = core::coordinatedConfig();
    spec.mix = trace::Mix::High60;
    spec.ticks = 600;
    auto r = runner_.run(spec);
    EXPECT_EQ(r.label, "coord");
    EXPECT_EQ(r.baseline.ticks, 600u);
    EXPECT_EQ(r.scenario.ticks, 600u);
    // Power management saves energy against the unmanaged baseline...
    EXPECT_GT(r.power_savings, 0.05);
    EXPECT_LT(r.power_savings, 0.95);
    // ...with sane loss metrics.
    EXPECT_GE(r.scenario.perf_loss, 0.0);
    EXPECT_LT(r.scenario.perf_loss, 0.2);
    EXPECT_GT(r.vmc.epochs, 0u);
}

TEST_F(ExperimentTest, BaselineHasNoSavingsAndNoLoss)
{
    ExperimentSpec spec;
    spec.label = "base";
    spec.config = core::baselineConfig();
    spec.mix = trace::Mix::Low60;
    spec.ticks = 400;
    auto r = runner_.run(spec);
    EXPECT_NEAR(r.power_savings, 0.0, 1e-12);
    EXPECT_NEAR(r.scenario.perf_loss, 0.0, 1e-12);
}

TEST_F(ExperimentTest, BaselineCacheIsConsistent)
{
    ExperimentSpec a;
    a.config = core::coordinatedConfig();
    a.mix = trace::Mix::Mid60;
    a.ticks = 300;
    auto r1 = runner_.run(a);
    a.config = core::uncoordinatedConfig();
    auto r2 = runner_.run(a);
    // Identical baseline energy from the cache.
    EXPECT_DOUBLE_EQ(r1.baseline.energy, r2.baseline.energy);
}

TEST_F(ExperimentTest, ZeroTicksDie)
{
    ExperimentSpec spec;
    spec.ticks = 0;
    EXPECT_DEATH(runner_.run(spec), "zero-tick");
}

TEST_F(ExperimentTest, TwoPstateBaselineMatchesFull)
{
    // The baseline runs at P0 regardless of the table, so savings for
    // the two-P-state machine are measured against the same baseline.
    ExperimentSpec full;
    full.config = core::coordinatedConfig();
    full.mix = trace::Mix::Low60;
    full.ticks = 300;
    auto r_full = runner_.run(full);
    ExperimentSpec two = full;
    two.two_pstates = true;
    auto r_two = runner_.run(two);
    EXPECT_DOUBLE_EQ(r_full.baseline.energy, r_two.baseline.energy);
}

} // namespace
