/**
 * @file
 * Tests for the scenario catalogue.
 */

#include <gtest/gtest.h>

#include "core/scenarios.h"

namespace {

using namespace nps;
using namespace nps::core;

TEST(Scenarios, Names)
{
    EXPECT_STREQ(scenarioName(Scenario::Coordinated), "Coordinated");
    EXPECT_STREQ(scenarioName(Scenario::Uncoordinated), "Uncoordinated");
    EXPECT_STREQ(scenarioName(Scenario::NoVmc), "NoVMC");
    EXPECT_STREQ(scenarioName(Scenario::VmcOnly), "VMCOnly");
    EXPECT_STREQ(scenarioName(Scenario::CoordApparentUtil),
                 "Coordinated, appr util");
}

TEST(Scenarios, BaselineDisablesEverything)
{
    auto cfg = scenarioConfig(Scenario::Baseline);
    EXPECT_FALSE(cfg.enable_ec);
    EXPECT_FALSE(cfg.enable_sm);
    EXPECT_FALSE(cfg.enable_em);
    EXPECT_FALSE(cfg.enable_gm);
    EXPECT_FALSE(cfg.enable_vmc);
}

TEST(Scenarios, NoVmc)
{
    auto cfg = scenarioConfig(Scenario::NoVmc);
    EXPECT_FALSE(cfg.enable_vmc);
    EXPECT_TRUE(cfg.enable_ec);
    EXPECT_TRUE(cfg.coordinated);
}

TEST(Scenarios, VmcOnly)
{
    auto cfg = scenarioConfig(Scenario::VmcOnly);
    EXPECT_TRUE(cfg.enable_vmc);
    EXPECT_FALSE(cfg.enable_ec);
    EXPECT_FALSE(cfg.enable_sm);
    EXPECT_FALSE(cfg.enable_em);
    EXPECT_FALSE(cfg.enable_gm);
}

TEST(Scenarios, Figure9Ablations)
{
    auto appr = scenarioConfig(Scenario::CoordApparentUtil).resolved();
    EXPECT_FALSE(appr.vmc.use_real_util);
    EXPECT_TRUE(appr.vmc.use_budget_constraints);

    auto nofb = scenarioConfig(Scenario::CoordNoFeedback).resolved();
    EXPECT_FALSE(nofb.vmc.use_violation_feedback);
    EXPECT_TRUE(nofb.vmc.use_real_util);

    auto nolim = scenarioConfig(Scenario::CoordNoBudgetLimits).resolved();
    EXPECT_FALSE(nolim.vmc.use_budget_constraints);
    EXPECT_TRUE(nolim.vmc.use_violation_feedback);

    EXPECT_EQ(figure9Scenarios().size(), 5u);
}

TEST(Scenarios, Modifiers)
{
    auto base = coordinatedConfig();
    auto no_off = withoutPowerOff(base);
    EXPECT_FALSE(no_off.vmc.allow_power_off);
    EXPECT_TRUE(base.vmc.allow_power_off);

    auto budgets = withBudgets(base, sim::BudgetConfig::paper302520());
    EXPECT_EQ(budgets.budgets.label(), "30-25-20");

    auto tc = withTimeConstants(base, 2, 10, 0, 400, 100);
    EXPECT_EQ(tc.ec.period, 2u);
    EXPECT_EQ(tc.sm.period, 10u);
    EXPECT_EQ(tc.em.period, 25u);  // 0 keeps the default
    EXPECT_EQ(tc.gm.period, 400u);
    EXPECT_EQ(tc.vmc.period, 100u);

    auto pol = withPolicy(base, controllers::DivisionPolicy::Equal);
    EXPECT_EQ(pol.em.policy, controllers::DivisionPolicy::Equal);
    EXPECT_EQ(pol.gm.policy, controllers::DivisionPolicy::Equal);
}

} // namespace
