/**
 * @file
 * Tests for the INI configuration binding: defaults, overrides, strict
 * schema validation, and write/load round trips.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "core/config_io.h"
#include "core/scenarios.h"

namespace {

using namespace nps;
using namespace nps::core;

TEST(ConfigIo, EmptyDocumentYieldsDefaults)
{
    auto cfg = configFromIni(util::parseIni(""));
    CoordinationConfig dflt;
    EXPECT_EQ(cfg.coordinated, dflt.coordinated);
    EXPECT_EQ(cfg.ec.period, dflt.ec.period);
    EXPECT_DOUBLE_EQ(cfg.ec.lambda, dflt.ec.lambda);
    EXPECT_DOUBLE_EQ(cfg.budgets.grp_off_frac,
                     dflt.budgets.grp_off_frac);
}

TEST(ConfigIo, OverridesApply)
{
    auto cfg = configFromIni(util::parseIni(
        "[deployment]\n"
        "coordinated = false\n"
        "enable_cap = true\n"
        "alpha_m = 0.2\n"
        "[ec]\n"
        "lambda = 0.5\n"
        "objective = energy-delay\n"
        "[vmc]\n"
        "period = 250\n"
        "use_forecast = true\n"
        "forecast_method = holt\n"
        "[budgets]\n"
        "group_off = 0.30\n"));
    EXPECT_FALSE(cfg.coordinated);
    EXPECT_TRUE(cfg.enable_cap);
    EXPECT_DOUBLE_EQ(cfg.alpha_m, 0.2);
    EXPECT_DOUBLE_EQ(cfg.ec.lambda, 0.5);
    EXPECT_EQ(cfg.ec.objective, controllers::EcObjective::EnergyDelay);
    EXPECT_EQ(cfg.vmc.period, 250u);
    EXPECT_TRUE(cfg.vmc.use_forecast);
    EXPECT_EQ(cfg.vmc.forecast.method,
              controllers::ForecastMethod::HoltLinear);
    EXPECT_DOUBLE_EQ(cfg.budgets.grp_off_frac, 0.30);
    // Untouched knobs keep defaults.
    EXPECT_DOUBLE_EQ(cfg.budgets.loc_off_frac, 0.10);
}

TEST(ConfigIo, PolicyNames)
{
    auto cfg = configFromIni(util::parseIni(
        "[em]\npolicy = equal\n[gm]\npolicy = history\n"));
    EXPECT_EQ(cfg.em.policy, controllers::DivisionPolicy::Equal);
    EXPECT_EQ(cfg.gm.policy, controllers::DivisionPolicy::History);
}

TEST(ConfigIo, UnknownSectionDies)
{
    EXPECT_DEATH(configFromIni(util::parseIni("[typo]\nx = 1\n")),
                 "unknown section");
}

TEST(ConfigIo, UnknownKeyDies)
{
    EXPECT_DEATH(configFromIni(util::parseIni("[ec]\nlamda = 0.8\n")),
                 "unknown key");
}

TEST(ConfigIo, BadEnumsDie)
{
    EXPECT_DEATH(configFromIni(util::parseIni(
                     "[em]\npolicy = roundrobin\n")),
                 "unknown policy");
    EXPECT_DEATH(configFromIni(util::parseIni(
                     "[ec]\nobjective = yolo\n")),
                 "unknown EC objective");
    EXPECT_DEATH(configFromIni(util::parseIni(
                     "[vmc]\nforecast_method = crystal\n")),
                 "unknown forecast method");
}

TEST(ConfigIo, RoundTripPreservesEverything)
{
    auto original = uncoordinatedConfig();
    original.enable_mem = true;
    original.ec.lambda = 0.61;
    original.sm.beta = 1.7;
    original.em.policy = controllers::DivisionPolicy::Fifo;
    original.vmc.capacity_target = 0.77;
    original.vmc.use_forecast = true;
    original.budgets = sim::BudgetConfig::paper252015();

    auto back = configFromIni(configToIni(original));
    EXPECT_EQ(back.coordinated, original.coordinated);
    EXPECT_EQ(back.enable_mem, original.enable_mem);
    EXPECT_DOUBLE_EQ(back.ec.lambda, original.ec.lambda);
    EXPECT_DOUBLE_EQ(back.sm.beta, original.sm.beta);
    EXPECT_EQ(back.em.policy, original.em.policy);
    EXPECT_DOUBLE_EQ(back.vmc.capacity_target,
                     original.vmc.capacity_target);
    EXPECT_EQ(back.vmc.use_forecast, original.vmc.use_forecast);
    EXPECT_EQ(back.budgets.label(), original.budgets.label());
}

TEST(ConfigIo, DumpedDefaultsValidateAgainstSchema)
{
    // Everything configToIni writes must be loadable (schema closed
    // under dump).
    auto cfg = configFromIni(configToIni(CoordinationConfig{}));
    EXPECT_EQ(cfg.ec.period, 1u);
}

TEST(ConfigIo, LoadFromFile)
{
    std::string path = ::testing::TempDir() + "/nps_cfg.ini";
    {
        std::ofstream out(path);
        out << "[deployment]\ncoordinated = false\n";
    }
    auto cfg = loadConfigFile(path);
    EXPECT_FALSE(cfg.coordinated);
}

TEST(ConfigIo, TypoedKeyInRecognizedSectionDiesNamingBoth)
{
    // A typo inside a *known* section must not fall back to the default
    // silently, and the error has to name both the key and the section.
    EXPECT_DEATH(configFromIni(util::parseIni("[sm]\nlease_tiks = 12\n")),
                 "unknown key 'lease_tiks' in \\[sm\\]");
    EXPECT_DEATH(configFromIni(util::parseIni("[gm]\nperiodd = 60\n")),
                 "unknown key 'periodd' in \\[gm\\]");
}

TEST(ConfigIo, NumbersRoundTripBitExactly)
{
    // Checkpoint resume rebuilds the simulation from configToIni text,
    // so every double must round-trip to the identical bit pattern —
    // including values %g's 6 significant digits cannot represent.
    CoordinationConfig original;
    original.ec.lambda = 0.1 + 0.2; // 0.30000000000000004
    original.sm.beta = 1.0 / 3.0;
    original.vmc.capacity_target = 0.7000000000000001;

    auto back = configFromIni(configToIni(original));
    EXPECT_EQ(back.ec.lambda, original.ec.lambda);
    EXPECT_EQ(back.sm.beta, original.sm.beta);
    EXPECT_EQ(back.vmc.capacity_target, original.vmc.capacity_target);
}

} // namespace
