/**
 * @file
 * Tests for the Coordinator: controller stack construction per config,
 * wiring of the coordination channels, and basic runs.
 */

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "core/coordinator.h"
#include "core/scenarios.h"

namespace {

using namespace nps;
using core::Coordinator;

sim::Topology
smallTopo()
{
    return sim::Topology{6, 1, 4};
}

TEST(Coordinator, CoordinatedStackComplete)
{
    Coordinator c(core::coordinatedConfig(), smallTopo(),
                  model::bladeA(), nps_test::flatTraces(6, 0.3, 32));
    EXPECT_EQ(c.ecs().size(), 6u);
    EXPECT_EQ(c.sms().size(), 6u);
    EXPECT_EQ(c.ems().size(), 1u);
    EXPECT_NE(c.gm(), nullptr);
    EXPECT_NE(c.vmc(), nullptr);
    // 6 EC + 6 SM + 1 EM + 1 GM + 1 VMC actors.
    EXPECT_EQ(c.engine().actors().size(), 15u);
}

TEST(Coordinator, BaselineStackEmpty)
{
    Coordinator c(core::baselineConfig(), smallTopo(), model::bladeA(),
                  nps_test::flatTraces(6, 0.3, 32));
    EXPECT_TRUE(c.ecs().empty());
    EXPECT_TRUE(c.sms().empty());
    EXPECT_TRUE(c.ems().empty());
    EXPECT_EQ(c.gm(), nullptr);
    EXPECT_EQ(c.vmc(), nullptr);
    EXPECT_TRUE(c.engine().actors().empty());
}

TEST(Coordinator, VmcOnlyStack)
{
    Coordinator c(core::scenarioConfig(core::Scenario::VmcOnly),
                  smallTopo(), model::bladeA(),
                  nps_test::flatTraces(6, 0.3, 32));
    EXPECT_TRUE(c.ecs().empty());
    EXPECT_TRUE(c.sms().empty());
    EXPECT_NE(c.vmc(), nullptr);
    EXPECT_EQ(c.engine().actors().size(), 1u);
}

TEST(Coordinator, CapStackAddsCappers)
{
    auto cfg = core::coordinatedConfig();
    cfg.enable_cap = true;
    Coordinator c(cfg, smallTopo(), model::bladeA(),
                  nps_test::flatTraces(6, 0.3, 32));
    // 15 actors + 6 electrical cappers.
    EXPECT_EQ(c.engine().actors().size(), 21u);
    EXPECT_EQ(c.caps().size(), 6u);
}

TEST(Coordinator, MemStackAddsMemoryManagers)
{
    auto cfg = core::coordinatedConfig();
    cfg.enable_mem = true;
    Coordinator c(cfg, smallTopo(), model::bladeA(),
                  nps_test::flatTraces(6, 0.2, 64));
    EXPECT_EQ(c.mems().size(), 6u);
    EXPECT_EQ(c.engine().actors().size(), 21u);
    c.run(200);
    // At 22% load every server is quiet: the managers engage.
    unsigned long engaged = 0;
    for (const auto &mm : c.mems())
        engaged += mm->engagements();
    EXPECT_GT(engaged, 0u);
}

TEST(Coordinator, GmWithoutEmsAdoptsAllServers)
{
    auto cfg = core::coordinatedConfig();
    cfg.enable_em = false;
    Coordinator c(cfg, smallTopo(), model::bladeA(),
                  nps_test::flatTraces(6, 0.3, 32));
    EXPECT_TRUE(c.ems().empty());
    EXPECT_NE(c.gm(), nullptr);
    c.run(120);  // runs without tripping any wiring panic
    EXPECT_EQ(c.summary().ticks, 120u);
}

TEST(Coordinator, BudgetsFollowConfig)
{
    auto cfg = core::withBudgets(core::coordinatedConfig(),
                                 sim::BudgetConfig::paper302520());
    Coordinator c(cfg, smallTopo(), model::bladeA(),
                  nps_test::flatTraces(6, 0.3, 32));
    EXPECT_NEAR(c.cluster().capGrp(),
                0.7 * c.cluster().groupMaxPower(), 1e-9);
    EXPECT_NEAR(c.sms()[0]->staticCap(), 0.8 * 85.0, 1e-9);
}

TEST(Coordinator, RunAccumulatesMetrics)
{
    Coordinator c(core::coordinatedConfig(), smallTopo(),
                  model::bladeA(), nps_test::flatTraces(6, 0.3, 32));
    c.run(50);
    c.run(50);
    EXPECT_EQ(c.summary().ticks, 100u);
    EXPECT_GT(c.summary().energy, 0.0);
}

TEST(Coordinator, HeterogeneousClusterRuns)
{
    std::vector<std::shared_ptr<const model::MachineSpec>> specs;
    auto blade = std::make_shared<const model::MachineSpec>(
        model::bladeA());
    auto server = std::make_shared<const model::MachineSpec>(
        model::serverB());
    for (unsigned i = 0; i < 6; ++i)
        specs.push_back(i % 2 ? blade : server);
    Coordinator c(core::coordinatedConfig(), smallTopo(), specs,
                  nps_test::flatTraces(6, 0.3, 32));
    c.run(200);
    EXPECT_EQ(c.summary().ticks, 200u);
    // Per-machine budgets differ across the heterogeneous fleet.
    EXPECT_GT(c.sms()[0]->staticCap(), c.sms()[1]->staticCap());
}

TEST(Coordinator, SeriesRetainedWhenRequested)
{
    Coordinator c(core::coordinatedConfig(), smallTopo(),
                  model::bladeA(), nps_test::flatTraces(6, 0.3, 32),
                  /*keep_series=*/true);
    c.run(25);
    EXPECT_EQ(c.metrics().powerSeries().size(), 25u);
}

} // namespace
