/**
 * @file
 * Topology INI round-trip property: for any topology, write -> read ->
 * write produces byte-identical text (matching the trace-IO fixed-point
 * contract), and the strict schema rejects unknown keys.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/config_io.h"
#include "sim/topology.h"
#include "util/ini.h"

namespace {

using namespace nps;
using sim::Topology;

/** The property under test: toIni(fromIni(toIni(x))) is stable. */
void
expectFixedPoint(const Topology &topo)
{
    std::string first = core::topologyToIni(topo).toText();
    Topology back = core::topologyFromIni(util::parseIni(first));
    std::string second = core::topologyToIni(back).toText();
    EXPECT_EQ(first, second);

    EXPECT_EQ(back.num_servers, topo.num_servers);
    EXPECT_EQ(back.num_enclosures, topo.num_enclosures);
    EXPECT_EQ(back.enclosure_size, topo.enclosure_size);
    EXPECT_EQ(back.treeText(), topo.treeText());
}

TEST(TopologyIoTest, FlatPaperShapesAreFixedPoints)
{
    expectFixedPoint(Topology::paper180());
    expectFixedPoint(Topology::paper60());
}

TEST(TopologyIoTest, TieredTreesAreFixedPoints)
{
    expectFixedPoint(Topology::tiered(2, 3, 1, 8, 2));
    expectFixedPoint(Topology::tiered(3, 2, 2, 4, 0));
    expectFixedPoint(Topology::tiered(1, 1, 1, 2, 5));
}

TEST(TopologyIoTest, HandWrittenTreeSurvives)
{
    Topology topo{12, 2, 4};
    topo.tree =
        Topology::parseTree("dc(left(e0,s8,s9),right(e1,s10,s11))");
    expectFixedPoint(topo);
}

TEST(TopologyIoTest, DefaultsFillMissingKeys)
{
    Topology topo = core::topologyFromIni(
        util::parseIni("[topology]\nservers = 40\nenclosures = 2\n"));
    EXPECT_EQ(topo.num_servers, 40u);
    EXPECT_EQ(topo.num_enclosures, 2u);
    EXPECT_EQ(topo.enclosure_size, 20u); // paper default
    EXPECT_FALSE(topo.hasTree());
}

TEST(TopologyIoTest, StrictSchemaRejectsTypos)
{
    EXPECT_DEATH(core::topologyFromIni(
                     util::parseIni("[topology]\nserver = 40\n")),
                 "unknown key");
    EXPECT_DEATH(core::topologyFromIni(util::parseIni("[deployment]\n")),
                 "unknown section");
}

TEST(TopologyIoTest, LoadValidatesTheResult)
{
    // A structurally broken topology dies at load, not at cluster build.
    EXPECT_DEATH(core::topologyFromIni(util::parseIni(
                     "[topology]\nservers = 4\nenclosures = 2\n"
                     "enclosure_size = 4\n")),
                 "exceed");
    EXPECT_DEATH(core::topologyFromIni(util::parseIni(
                     "[topology]\nservers = 12\nenclosures = 2\n"
                     "enclosure_size = 4\ntree = dc(e0,s8,s9,s10,s11)\n")),
                 "covers");
}

} // namespace
