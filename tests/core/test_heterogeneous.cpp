/**
 * @file
 * Tests for the heterogeneous-spec Coordinator constructor: per-server
 * machine specs with different P-state tables in one cluster, and the
 * contract that the homogeneous constructor is exactly the replicated
 * special case.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/fixtures.h"
#include "core/coordinator.h"
#include "core/scenarios.h"

namespace {

using namespace nps;
using core::Coordinator;

sim::Topology
smallTopo()
{
    return sim::Topology{6, 1, 4};
}

std::vector<std::shared_ptr<const model::MachineSpec>>
mixedSpecs()
{
    // Alternate two machines whose P-state tables differ in depth and
    // power range; the paper's Blade A and Server B.
    auto blade =
        std::make_shared<const model::MachineSpec>(model::bladeA());
    auto server =
        std::make_shared<const model::MachineSpec>(model::serverB());
    std::vector<std::shared_ptr<const model::MachineSpec>> specs;
    for (size_t i = 0; i < 6; ++i)
        specs.push_back(i % 2 == 0 ? blade : server);
    return specs;
}

TEST(HeterogeneousCoordinator, PerServerSpecsAreHonored)
{
    Coordinator c(core::coordinatedConfig(), smallTopo(), mixedSpecs(),
                  nps_test::flatTraces(6, 0.3, 64));
    for (sim::ServerId s = 0; s < 6; ++s) {
        const model::MachineSpec &spec = c.cluster().server(s).spec();
        EXPECT_EQ(spec.name(), s % 2 == 0 ? "BladeA" : "ServerB");
    }
    // The budget ladder derives from each server's own max power, so
    // neighbouring servers with different tables get different CAP_LOC.
    EXPECT_NE(c.cluster().capLoc(0), c.cluster().capLoc(1));
    EXPECT_EQ(c.cluster().capLoc(0), c.cluster().capLoc(2));
}

TEST(HeterogeneousCoordinator, FullStackRunsOnMixedFleet)
{
    Coordinator c(core::coordinatedConfig(), smallTopo(), mixedSpecs(),
                  nps_test::flatTraces(6, 0.5, 256));
    c.run(250);
    sim::MetricsSummary m = c.summary();
    EXPECT_EQ(m.ticks, 250u);
    EXPECT_GT(m.mean_power, 0.0);
    EXPECT_GE(m.perf_loss, 0.0);
    // Every control level got built over the mixed fleet.
    EXPECT_EQ(c.ecs().size(), 6u);
    EXPECT_EQ(c.sms().size(), 6u);
    EXPECT_EQ(c.ems().size(), 1u);
    ASSERT_NE(c.gm(), nullptr);
    EXPECT_DOUBLE_EQ(c.gm()->staticCap(), c.cluster().capGrp());
}

TEST(HeterogeneousCoordinator, HomogeneousIsTheReplicatedSpecialCase)
{
    // The homogeneous constructor delegates to the heterogeneous one
    // with one shared spec per server; both paths must agree
    // bit-for-bit.
    auto traces = nps_test::flatTraces(6, 0.4, 128);
    Coordinator homogeneous(core::coordinatedConfig(), smallTopo(),
                            model::serverB(), traces);
    auto spec =
        std::make_shared<const model::MachineSpec>(model::serverB());
    Coordinator replicated(
        core::coordinatedConfig(), smallTopo(),
        std::vector<std::shared_ptr<const model::MachineSpec>>(6, spec),
        traces);
    homogeneous.run(120);
    replicated.run(120);
    sim::MetricsSummary a = homogeneous.summary();
    sim::MetricsSummary b = replicated.summary();
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.mean_power, b.mean_power);
    EXPECT_EQ(a.peak_power, b.peak_power);
    EXPECT_EQ(a.sm_violation, b.sm_violation);
    EXPECT_EQ(a.gm_violation, b.gm_violation);
    EXPECT_EQ(a.perf_loss, b.perf_loss);
}

TEST(HeterogeneousCoordinator, MixedExtremesOnlyTables)
{
    // A fleet where half the machines only expose the extreme P-states
    // (the paper's 2-P-state study) still builds and runs coordinated.
    auto full =
        std::make_shared<const model::MachineSpec>(model::bladeA());
    auto extremes = std::make_shared<const model::MachineSpec>(
        model::bladeA().extremesOnly());
    std::vector<std::shared_ptr<const model::MachineSpec>> specs;
    for (size_t i = 0; i < 6; ++i)
        specs.push_back(i < 3 ? full : extremes);
    Coordinator c(core::coordinatedConfig(), smallTopo(), specs,
                  nps_test::flatTraces(6, 0.6, 128));
    c.run(120);
    EXPECT_GT(c.summary().mean_power, 0.0);
    EXPECT_LT(c.cluster().server(5).spec().pstates().size(),
              c.cluster().server(0).spec().pstates().size());
}

} // namespace
