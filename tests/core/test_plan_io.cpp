/**
 * @file
 * Tests for the distributed-run plan loader (docs/DISTRIBUTED.md):
 * defaults, the full grammar, rank assignment through ownerOf/ownerFn,
 * and the strict-validation contract — unknown sections and keys,
 * levels that cannot be distributed, overlapping claims and
 * out-of-range kills must all die at parse time, before any process
 * is spawned.
 */

#include <gtest/gtest.h>

#include "core/dist_plan.h"
#include "util/ini.h"

namespace {

using namespace nps;
using namespace nps::core;
using bus::OwnerLevel;

DistPlan
parse(const std::string &text)
{
    return planFromIni(util::parseIni(text));
}

const char *kMinimal = "[dist]\nsocket = /tmp/t.sock\n";

TEST(PlanIo, MinimalPlanYieldsDefaults)
{
    DistPlan p = parse(kMinimal);
    EXPECT_EQ(p.transport, "unix");
    EXPECT_EQ(p.socket, "/tmp/t.sock");
    EXPECT_EQ(p.endpoint(), "unix:/tmp/t.sock");
    EXPECT_EQ(p.timeout_ms, 30000u);
    EXPECT_EQ(p.restart_after, 0u);
    EXPECT_EQ(p.scenario, "coordinated");
    EXPECT_EQ(p.machine, "BladeA");
    EXPECT_EQ(p.mix, "180");
    EXPECT_EQ(p.budgets, "20-15-10");
    EXPECT_EQ(p.ticks, 2880u);
    EXPECT_EQ(p.seed, 20080301u);
    EXPECT_EQ(p.threads, 0u);
    EXPECT_EQ(p.record_stride, 1u);
    EXPECT_TRUE(p.nodes.empty());
    EXPECT_TRUE(p.kills.empty());
}

TEST(PlanIo, FullGrammarParses)
{
    DistPlan p = parse(
        "[dist]\n"
        "transport = tcp\n"
        "socket = 9190\n"
        "timeout_ms = 5000\n"
        "restart_after = 40\n"
        "[run]\n"
        "scenario = baseline\n"
        "machine = BladeA\n"
        "mix = 60M\n"
        "budgets = 25-20-15\n"
        "ticks = 480\n"
        "seed = 7\n"
        "threads = 4\n"
        "record_stride = 2\n"
        "[node group]\n"
        "levels = gm:*\n"
        "[node enclosures]\n"
        "levels = em:0, em:1, vmc\n"
        "[chaos]\n"
        "kill = 1@120, 2@240\n");
    EXPECT_EQ(p.transport, "tcp");
    EXPECT_EQ(p.endpoint(), "tcp:9190");
    EXPECT_EQ(p.timeout_ms, 5000u);
    EXPECT_EQ(p.restart_after, 40u);
    EXPECT_EQ(p.scenario, "baseline");
    EXPECT_EQ(p.mix, "60M");
    EXPECT_EQ(p.ticks, 480u);
    EXPECT_EQ(p.threads, 4u);
    EXPECT_EQ(p.record_stride, 2u);

    ASSERT_EQ(p.nodes.size(), 2u);
    EXPECT_EQ(p.nodes[0].name, "group");
    ASSERT_EQ(p.nodes[0].selectors.size(), 1u);
    EXPECT_EQ(p.nodes[0].selectors[0].level, OwnerLevel::Gm);
    EXPECT_TRUE(p.nodes[0].selectors[0].all);
    EXPECT_EQ(p.nodes[1].name, "enclosures");
    ASSERT_EQ(p.nodes[1].selectors.size(), 3u);
    EXPECT_EQ(p.nodes[1].selectors[0].level, OwnerLevel::Em);
    EXPECT_FALSE(p.nodes[1].selectors[0].all);
    EXPECT_EQ(p.nodes[1].selectors[0].id, 0);
    EXPECT_EQ(p.nodes[1].selectors[1].id, 1);
    EXPECT_EQ(p.nodes[1].selectors[2].level, OwnerLevel::Vmc);
    EXPECT_TRUE(p.nodes[1].selectors[2].all); // bare 'vmc' means all

    ASSERT_EQ(p.kills.size(), 2u);
    EXPECT_EQ(p.kills[0].rank, 1);
    EXPECT_EQ(p.kills[0].tick, 120u);
    EXPECT_EQ(p.kills[1].rank, 2);
    EXPECT_EQ(p.kills[1].tick, 240u);
}

TEST(PlanIo, OwnerMapsClaimsToRanksInFileOrder)
{
    DistPlan p = parse(
        "[dist]\nsocket = /tmp/t.sock\n"
        "[node a]\nlevels = gm:*\n"
        "[node b]\nlevels = em:1, vmc\n");
    // Ranks are 1-based node indexes; everything unclaimed stays on
    // the supervisor (rank 0).
    EXPECT_EQ(p.ownerOf(OwnerLevel::Gm, 0), 1);
    EXPECT_EQ(p.ownerOf(OwnerLevel::Gm, 7), 1); // '*' covers every id
    EXPECT_EQ(p.ownerOf(OwnerLevel::Em, 1), 2);
    EXPECT_EQ(p.ownerOf(OwnerLevel::Em, 0), 0); // unclaimed instance
    EXPECT_EQ(p.ownerOf(OwnerLevel::Vmc, 0), 2);
    EXPECT_EQ(p.ownerOf(OwnerLevel::Sm, 3), 0);
    EXPECT_EQ(p.ownerOf(OwnerLevel::Cap, 0), 0);
}

TEST(PlanIo, OwnerFnOutlivesThePlan)
{
    bus::OwnerFn fn;
    {
        DistPlan p = parse(
            "[dist]\nsocket = /tmp/t.sock\n"
            "[node a]\nlevels = gm:*\n");
        fn = p.ownerFn();
    } // the closure copies the node table
    EXPECT_EQ(fn(OwnerLevel::Gm, 2), 1);
    EXPECT_EQ(fn(OwnerLevel::Em, 0), 0);
}

TEST(PlanIo, UnknownSectionDies)
{
    EXPECT_DEATH(parse("[dsit]\nsocket = x\n"), "unknown section");
}

TEST(PlanIo, UnknownKeysDie)
{
    EXPECT_DEATH(parse("[dist]\nsocket = x\nsokcet = y\n"),
                 "unknown key 'sokcet' in \\[dist\\]");
    EXPECT_DEATH(parse("[dist]\nsocket = x\n[run]\ntick = 5\n"),
                 "unknown key 'tick' in \\[run\\]");
    EXPECT_DEATH(parse("[dist]\nsocket = x\n[node a]\nlevel = gm\n"),
                 "unknown key 'level' in \\[node a\\]");
    EXPECT_DEATH(parse("[dist]\nsocket = x\n[chaos]\nkil = 1@5\n"),
                 "unknown key 'kil' in \\[chaos\\]");
}

TEST(PlanIo, MissingSocketDies)
{
    EXPECT_DEATH(parse("[run]\nticks = 10\n"), "socket is required");
}

TEST(PlanIo, BadTransportDies)
{
    EXPECT_DEATH(parse("[dist]\ntransport = pigeon\nsocket = x\n"),
                 "transport must be unix or tcp");
}

TEST(PlanIo, ShardedLevelsCannotBeDistributed)
{
    // sm/ec/cap/mem run sharded across worker threads and must stay on
    // the supervisor; claiming one is a plan error with its own
    // message, distinct from a typo'd level name.
    EXPECT_DEATH(parse("[dist]\nsocket = x\n[node a]\nlevels = sm:1\n"),
                 "sharded across");
    EXPECT_DEATH(parse("[dist]\nsocket = x\n[node a]\nlevels = ec:*\n"),
                 "sharded across");
    EXPECT_DEATH(parse("[dist]\nsocket = x\n[node a]\nlevels = gmm\n"),
                 "unknown level");
}

TEST(PlanIo, OverlappingClaimsDie)
{
    EXPECT_DEATH(parse("[dist]\nsocket = x\n"
                       "[node a]\nlevels = gm:0\n"
                       "[node b]\nlevels = gm:*\n"),
                 "overlaps an earlier claim");
    EXPECT_DEATH(parse("[dist]\nsocket = x\n"
                       "[node a]\nlevels = em:*\n"
                       "[node b]\nlevels = em:3\n"),
                 "overlaps an earlier claim");
    EXPECT_DEATH(parse("[dist]\nsocket = x\n"
                       "[node a]\nlevels = vmc, vmc\n"),
                 "overlaps an earlier claim");
}

TEST(PlanIo, NodeValidationDies)
{
    EXPECT_DEATH(parse("[dist]\nsocket = x\n[node a]\nlevels =\n"),
                 "claims no levels");
}

TEST(PlanIo, RepeatedNodeSectionsMergeWithLastValueWinning)
{
    // INI semantics: re-opening a section merges it, and a repeated key
    // takes the last value — so a repeated [node a] is one node, not a
    // plan error (the duplicate-name fatal guards programmatic
    // construction paths).
    DistPlan p = parse("[dist]\nsocket = x\n"
                       "[node a]\nlevels = gm:*\n"
                       "[node a]\nlevels = em:*\n");
    ASSERT_EQ(p.nodes.size(), 1u);
    ASSERT_EQ(p.nodes[0].selectors.size(), 1u);
    EXPECT_EQ(p.nodes[0].selectors[0].level, OwnerLevel::Em);
}

TEST(PlanIo, BadKillsDie)
{
    const char *base = "[dist]\nsocket = x\n[run]\nticks = 100\n"
                       "[node a]\nlevels = gm:*\n[chaos]\n";
    EXPECT_DEATH(parse(std::string(base) + "kill = 1-5\n"),
                 "want RANK@TICK");
    EXPECT_DEATH(parse(std::string(base) + "kill = 2@50\n"),
                 "the plan has ranks 1..1");
    EXPECT_DEATH(parse(std::string(base) + "kill = 0@50\n"),
                 "cannot be killed");
    EXPECT_DEATH(parse(std::string(base) + "kill = 1@100\n"),
                 "outside ticks 1..99");
    EXPECT_DEATH(parse(std::string(base) + "kill = 1@0\n"),
                 "outside ticks");
}

TEST(PlanIo, BadScalarsDie)
{
    EXPECT_DEATH(parse("[dist]\nsocket = x\ntimeout_ms = 0\n"),
                 "timeout_ms must be positive");
    EXPECT_DEATH(parse("[dist]\nsocket = x\n[run]\nticks = 0\n"),
                 "ticks must be positive");
    EXPECT_DEATH(parse("[dist]\nsocket = x\n[run]\nrecord_stride = 0\n"),
                 "record_stride must be at least 1");
}

} // namespace
