/**
 * @file
 * Integration tests of the stability claims: the coordinated stack's
 * group power settles without large oscillations, budget violations are
 * transient (bounded runs), and the VMC does not thrash placements.
 */

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "control/stability.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/workload.h"

namespace {

using namespace nps;

TEST(StabilitySim, GroupPowerSettlesOnConstantDemand)
{
    // Constant demand: after the transient, group power must not
    // oscillate with a large amplitude.
    core::Coordinator c(core::coordinatedConfig(),
                        sim::Topology{12, 2, 4}, model::bladeA(),
                        nps_test::flatTraces(12, 0.35, 64),
                        /*keep_series=*/true);
    c.run(2000);
    const auto &series = c.metrics().powerSeries();
    double late_mean = 0.0;
    for (size_t t = 1500; t < 2000; ++t)
        late_mean += series[t];
    late_mean /= 500.0;
    EXPECT_LT(ctl::tailAmplitude(series, 400), 0.25 * late_mean);
}

TEST(StabilitySim, NestedLoopsMeetTightCapWithoutDivergence)
{
    // A very tight budget (30-25-20) on a hot cluster: the capping
    // chain must drive power to the cap and hold it there.
    auto cfg = core::withBudgets(core::coordinatedConfig(),
                                 sim::BudgetConfig::paper302520());
    cfg.enable_vmc = false;  // isolate the capping chain
    core::Coordinator c(cfg, sim::Topology{8, 1, 4}, model::bladeA(),
                        nps_test::flatTraces(8, 0.7, 64),
                        /*keep_series=*/true);
    c.run(1500);
    const auto &series = c.metrics().powerSeries();
    double cap = c.cluster().capGrp();
    // The late-time power must hover at or below the group cap with
    // bounded ripple.
    util::RunningStats tail;
    for (size_t t = 1000; t < 1500; ++t)
        tail.add(series[t]);
    EXPECT_LT(tail.mean(), cap * 1.05);
    EXPECT_LT(tail.stddev(), cap * 0.06);
}

TEST(StabilitySim, GroupViolationRunsAreBounded)
{
    // Thermal capping tolerates transient violations only when they are
    // bounded; verify the longest consecutive violation run stays well
    // below the thermal time constant (~40 ticks in our RC model).
    trace::GeneratorConfig gen;
    gen.trace_length = 1440;
    trace::WorkloadLibrary lib(gen);
    core::Coordinator c(core::coordinatedConfig(),
                        sim::Topology::paper60(), model::bladeA(),
                        lib.mix(trace::Mix::High60));
    c.run(1440);
    EXPECT_LT(c.metrics().longestGroupViolationRun(), 120u);
}

TEST(StabilitySim, VmcDoesNotThrash)
{
    // On stationary demand the VMC must converge to a placement: after
    // the initial consolidation burst, later epochs migrate (almost)
    // nothing. Slightly varied per-VM loads avoid degenerate ties.
    std::vector<trace::UtilizationTrace> traces;
    for (size_t i = 0; i < 60; ++i) {
        traces.push_back(nps_test::flatTrace(
            "s" + std::to_string(i), 0.15 + 0.004 * (i % 30), 64));
    }
    core::Coordinator c(core::coordinatedConfig(),
                        sim::Topology::paper60(), model::bladeA(),
                        traces);
    c.run(1250);  // epochs at 500, 1000
    unsigned long early = c.vmc()->stats().migrations;
    EXPECT_GT(early, 0u);
    c.run(1250);  // epochs at 1500, 2000
    unsigned long late = c.vmc()->stats().migrations - early;
    EXPECT_LT(late, 15u);
    // And the buffers remain within their clamps.
    EXPECT_LE(c.vmc()->bufferLoc(), 0.25);
    EXPECT_GE(c.vmc()->bufferLoc(), 0.0);
}

TEST(StabilitySim, NoViciousConsolidationCycle)
{
    // The coordinated VMC must not enter the paper's vicious cycle
    // (pack -> throttle -> misread -> pack more): on a hot mix the
    // number of powered-on servers must stabilize, not shrink to the
    // point of saturation.
    trace::GeneratorConfig gen;
    gen.trace_length = 2880;
    trace::WorkloadLibrary lib(gen);
    core::Coordinator c(core::coordinatedConfig(),
                        sim::Topology::paper60(), model::bladeA(),
                        lib.mix(trace::Mix::High60));
    c.run(2880);
    auto m = c.summary();
    EXPECT_LT(m.perf_loss, 0.06);
    size_t on = 0;
    for (const auto &srv : c.cluster().servers())
        on += srv.isOn(2879) ? 1 : 0;
    // Total demand ~0.37*60*1.1 = 24 full-speed servers minimum; the
    // stack must keep a sane margin above that, not collapse below it.
    EXPECT_GT(on, 24u);
}

} // namespace
