/**
 * @file
 * End-to-end determinism of the network-emulation layer
 * (docs/NETWORK_FAULTS.md): for the same plan and the same [netem]
 * script, `npsim --plan` (the in-process oracle) and
 * `npsim --distributed` (supervisor + npsnode ranks over a socket, the
 * wire really delayed/duplicated/corrupted) must produce byte-identical
 * recorder CSVs at every thread count; a scripted gm↔em partition that
 * outlives the budget lease must drive the expiry→fallback→heal ladder
 * without stalling the run; and a SIGKILLed rank must rejoin through
 * the reconnect/backoff path while a latency storm is in force.
 *
 * Drives the real binaries (NPS_NPSIM_BIN injected by the build;
 * npsnode found next to npsim). Skips when the macro is absent.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef NPS_NPSIM_BIN
#define NPS_NPSIM_BIN ""
#endif

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

size_t
lineCount(const std::string &s)
{
    size_t n = 0;
    for (char c : s)
        n += c == '\n';
    return n;
}

class NetemEquivTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        npsim_ = NPS_NPSIM_BIN;
        if (npsim_.empty())
            GTEST_SKIP() << "binary paths not wired into this build";
        ASSERT_EQ(::access(npsim_.c_str(), X_OK), 0)
            << npsim_ << " is not executable";
        char tmpl[] = "/tmp/nps-netem-equiv-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void TearDown() override
    {
        if (!dir_.empty())
            std::system(("rm -rf '" + dir_ + "'").c_str());
    }

    /** A 3-node plan (gm / em / vmc) with a [netem] section.
     * @return the plan path. */
    std::string writePlan(const std::string &name, size_t ticks,
                          const std::string &netem_script,
                          unsigned deadline = 0,
                          const std::string &extra_dist = "",
                          const std::string &chaos = "")
    {
        std::string path = dir_ + "/" + name + ".plan";
        std::ofstream out(path);
        out << "[dist]\n"
            << "socket = " << dir_ << "/" << name << ".sock\n"
            << "timeout_ms = 60000\n"
            << extra_dist
            << "[run]\n"
            << "scenario = coordinated\n"
            << "mix = 60M\n"
            << "ticks = " << ticks << "\n"
            << "[netem]\n"
            << "seed = 7\n";
        if (deadline)
            out << "deadline_ticks = " << deadline << "\n";
        out << "script = " << netem_script << "\n"
            << "[node group]\nlevels = gm:*\n"
            << "[node enclosures]\nlevels = em:*\n"
            << "[node vms]\nlevels = vmc\n";
        if (!chaos.empty())
            out << "[chaos]\nkill = " << chaos << "\n";
        return path;
    }

    /** Run npsim with @p args, stdout+stderr into @p log.
     * @return the exit code (or -1 when it did not exit normally). */
    int runNpsim(const std::string &args, const std::string &log)
    {
        std::string cmd =
            npsim_ + " " + args + " > " + dir_ + "/" + log + " 2>&1";
        int status = std::system(cmd.c_str());
        if (status == -1 || !WIFEXITED(status))
            return -1;
        return WEXITSTATUS(status);
    }

    std::string npsim_;
    std::string dir_;
};

// The storm: latency with jitter on every link, plus wire-level
// duplication and corruption on the EM fan-out — the latter two must be
// absorbed by the receiver's dedup window and the NPSF CRC/resync, so
// they can never show up in a CSV.
const char *kStorm =
    "delay * 40 200 1 3; dup em-sm 40 200 0.4; corrupt em-sm 40 200 0.3";

TEST_F(NetemEquivTest, NetemRunIsByteIdenticalAcrossProcessLayouts)
{
    const size_t ticks = 240;
    std::string ref_plan = writePlan("ref", ticks, kStorm, 5);
    ASSERT_EQ(runNpsim("--plan " + ref_plan + " --record " + dir_ +
                           "/ref.csv",
                       "ref.log"),
              0)
        << readFile(dir_ + "/ref.log");
    std::string ref = readFile(dir_ + "/ref.csv");
    ASSERT_FALSE(ref.empty());
    // The oracle itself must have exercised the virtual wire.
    std::string ref_log = readFile(dir_ + "/ref.log");
    EXPECT_NE(ref_log.find("netem:"), std::string::npos) << ref_log;

    for (int threads : {1, 4}) {
        std::string name = "n" + std::to_string(threads);
        std::string plan = writePlan(name, ticks, kStorm, 5);
        ASSERT_EQ(runNpsim("--distributed " + plan + " --threads " +
                               std::to_string(threads) + " --record " +
                               dir_ + "/" + name + ".csv",
                           name + ".log"),
                  0)
            << readFile(dir_ + "/" + name + ".log");
        std::string got = readFile(dir_ + "/" + name + ".csv");
        ASSERT_EQ(got.size(), ref.size()) << "threads=" << threads;
        EXPECT_TRUE(got == ref)
            << "netem distributed CSV diverges from the --plan oracle "
               "at threads="
            << threads;
    }
}

TEST_F(NetemEquivTest, PartitionDrivesLeaseLadderAndHeals)
{
    // gm↔em dark for 180 ticks — past the 150-tick lease — then healed
    // with 200 ticks left: the log must show expiries and fallback
    // steps, and the run must cover every tick (same CSV length as a
    // calm run of the same plan).
    const size_t ticks = 480;
    std::string plan =
        writePlan("part", ticks, "partition gm-em 100 280");
    ASSERT_EQ(runNpsim("--distributed " + plan + " --record " + dir_ +
                           "/part.csv",
                       "part.log"),
              0)
        << readFile(dir_ + "/part.log");

    std::string log = readFile(dir_ + "/part.log");
    size_t at = log.find("degrade: ");
    ASSERT_NE(at, std::string::npos) << log;
    unsigned long long dropped = 0, stale = 0, expiries = 0, fallback = 0;
    ASSERT_EQ(std::sscanf(log.c_str() + at,
                          "degrade: %llu dropped, %llu stale, %llu lease "
                          "expiries, %llu fallback",
                          &dropped, &stale, &expiries, &fallback),
              4)
        << log;
    EXPECT_GT(dropped, 0u) << log;
    EXPECT_GT(expiries, 0u) << log;
    EXPECT_GT(fallback, 0u) << log;
    size_t nat = log.find("netem:");
    ASSERT_NE(nat, std::string::npos) << log;
    unsigned long long delayed = 0, late = 0, expired = 0, pdrops = 0;
    ASSERT_EQ(std::sscanf(log.c_str() + nat,
                          "netem:  %llu delayed, %llu late, %llu expired, "
                          "%llu partition drops",
                          &delayed, &late, &expired, &pdrops),
              4)
        << log;
    EXPECT_GT(pdrops, 0u) << log;

    std::string calm_plan = writePlan("calm", ticks, "");
    ASSERT_EQ(runNpsim("--plan " + calm_plan + " --record " + dir_ +
                           "/calm.csv",
                       "calm.log"),
              0);
    EXPECT_EQ(lineCount(readFile(dir_ + "/part.csv")),
              lineCount(readFile(dir_ + "/calm.csv")));
}

TEST_F(NetemEquivTest, KilledRankReconnectsThroughBackoffUnderStorm)
{
    // SIGKILL the EM rank mid-storm with restart_after armed: the
    // respawned npsnode must reconnect through connectWithBackoff,
    // resync from the supervisor snapshot (netem queue included), and
    // the run must finish full-length.
    const size_t ticks = 360;
    std::string plan = writePlan(
        "kill", ticks, "delay * 40 300 1 2", /*deadline=*/0,
        "restart_after = 100\n"
        "reconnect_attempts = 10\nreconnect_base_ms = 20\n"
        "reconnect_max_ms = 200\n",
        "2@120");
    ASSERT_EQ(runNpsim("--distributed " + plan + " --record " + dir_ +
                           "/kill.csv",
                       "kill.log"),
              0)
        << readFile(dir_ + "/kill.log");

    std::string log = readFile(dir_ + "/kill.log");
    EXPECT_NE(log.find("killed rank 2"), std::string::npos) << log;
    EXPECT_NE(log.find("restarted rank 2"), std::string::npos) << log;

    std::string calm_plan = writePlan("calm2", ticks, "");
    ASSERT_EQ(runNpsim("--plan " + calm_plan + " --record " + dir_ +
                           "/calm2.csv",
                       "calm2.log"),
              0);
    EXPECT_EQ(lineCount(readFile(dir_ + "/kill.csv")),
              lineCount(readFile(dir_ + "/calm2.csv")));
}

} // namespace
