/**
 * @file
 * Integration tests of the Section 6 extensions: the electrical capper
 * in parallel with the EC, heterogeneous fleets, the energy-delay EC
 * objective, division-policy robustness, machine power-off avoidance,
 * and the memory-power (MIMO) second actuator.
 */

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/workload.h"

namespace {

using namespace nps;

trace::WorkloadLibrary &
lib()
{
    static trace::WorkloadLibrary l = [] {
        trace::GeneratorConfig gen;
        gen.trace_length = 1440;
        return trace::WorkloadLibrary(gen);
    }();
    return l;
}

/** The first @p n traces of a mix, for small-topology tests. */
std::vector<trace::UtilizationTrace>
firstN(trace::Mix mix, size_t n)
{
    auto all = lib().mix(mix);
    all.resize(n);
    return all;
}

TEST(Extensions, ElectricalCapperEliminatesSustainedOverdraw)
{
    // With the electrical cappers on, per-server power must essentially
    // never exceed the electrical limit for more than an interval.
    auto cfg = core::coordinatedConfig();
    cfg.enable_cap = true;
    cfg.cap_limit_frac = 0.92;
    core::Coordinator c(cfg, sim::Topology::paper60(), model::bladeA(),
                        lib().mix(trace::Mix::HH60));
    c.run(1440);
    // The clamp reacts within one tick, so per-server electrical
    // violation duty stays small even on the hot mix.
    ASSERT_EQ(c.caps().size(), c.cluster().numServers());
    double worst = 0.0;
    for (const auto &cap : c.caps())
        worst = std::max(worst, cap->lifetimeViolationRate());
    EXPECT_LT(worst, 0.25);
    EXPECT_LT(c.summary().perf_loss, 0.25);
}

TEST(Extensions, HeterogeneousFleetCoordinates)
{
    std::vector<std::shared_ptr<const model::MachineSpec>> specs;
    auto blade = std::make_shared<const model::MachineSpec>(
        model::bladeA());
    auto server = std::make_shared<const model::MachineSpec>(
        model::serverB());
    for (unsigned i = 0; i < 60; ++i)
        specs.push_back(i % 2 ? blade : server);
    core::Coordinator c(core::coordinatedConfig(),
                        sim::Topology::paper60(), specs,
                        lib().mix(trace::Mix::Mid60));
    c.run(1440);
    auto m = c.summary();
    EXPECT_LT(m.perf_loss, 0.08);
    EXPECT_LT(m.gm_violation, 0.10);
    // Consolidation happened across the mixed fleet.
    EXPECT_GT(c.vmc()->stats().migrations, 0u);
}

TEST(Extensions, EnergyDelayObjectiveTradesSavingsForPerformance)
{
    auto ed_cfg = core::coordinatedConfig();
    ed_cfg.ec.objective = controllers::EcObjective::EnergyDelay;
    ed_cfg.enable_vmc = false;
    auto tr_cfg = core::coordinatedConfig();
    tr_cfg.enable_vmc = false;

    core::Coordinator ed(ed_cfg, sim::Topology{12, 2, 4},
                         model::bladeA(), firstN(trace::Mix::Low60, 12));
    core::Coordinator tr(tr_cfg, sim::Topology{12, 2, 4},
                         model::bladeA(), firstN(trace::Mix::Low60, 12));
    ed.run(720);
    tr.run(720);
    // The energy-delay product weights performance: on a high-idle
    // machine it races to idle (fast states), so it loses less work but
    // saves less energy than the utilization-tracking objective.
    EXPECT_LE(ed.summary().perf_loss, tr.summary().perf_loss + 1e-9);
    EXPECT_GE(ed.summary().energy, tr.summary().energy - 1e-6);
    EXPECT_LT(ed.summary().perf_loss, 0.02);
}

TEST(Extensions, PolicyChoiceIsRobust)
{
    // Section 5.4: "no significant variation in the results across
    // different policy choices."
    double first_savings = 0.0;
    for (auto policy : {controllers::DivisionPolicy::Proportional,
                        controllers::DivisionPolicy::Equal,
                        controllers::DivisionPolicy::History}) {
        auto cfg = core::withPolicy(core::coordinatedConfig(), policy);
        core::Coordinator c(cfg, sim::Topology{12, 2, 4},
                            model::bladeA(),
                            firstN(trace::Mix::Mid60, 12));
        core::Coordinator base(core::baselineConfig(),
                               sim::Topology{12, 2, 4}, model::bladeA(),
                               firstN(trace::Mix::Mid60, 12));
        c.run(1440);
        base.run(1440);
        double savings = sim::powerSavings(base.summary(), c.summary());
        if (first_savings == 0.0)
            first_savings = savings;
        EXPECT_NEAR(savings, first_savings, 0.08);
        EXPECT_LT(c.summary().perf_loss, 0.08);
    }
}

TEST(Extensions, NoPowerOffShiftsSavingsToLocalControl)
{
    // Section 5.4: disabling power-off collapses savings, but the stack
    // adapts by controlling power locally; machines stay on.
    auto with_off = core::coordinatedConfig();
    auto without_off = core::withoutPowerOff(core::coordinatedConfig());
    core::Coordinator a(with_off, sim::Topology::paper60(),
                        model::bladeA(), lib().mix(trace::Mix::Low60));
    core::Coordinator b(without_off, sim::Topology::paper60(),
                        model::bladeA(), lib().mix(trace::Mix::Low60));
    core::Coordinator base(core::baselineConfig(),
                           sim::Topology::paper60(), model::bladeA(),
                           lib().mix(trace::Mix::Low60));
    a.run(1440);
    b.run(1440);
    base.run(1440);
    double with_savings = sim::powerSavings(base.summary(), a.summary());
    double without_savings = sim::powerSavings(base.summary(),
                                               b.summary());
    EXPECT_GT(with_savings, without_savings + 0.10);
    EXPECT_GT(without_savings, 0.05);  // local control still contributes
    for (const auto &srv : b.cluster().servers())
        EXPECT_TRUE(srv.isOn(1439));
}

TEST(Extensions, MemoryLowPowerActuatorComposes)
{
    // The MIMO hook: engaging the second actuator on every server under
    // the coordinated stack trims power without destabilizing anything.
    auto cfg = core::coordinatedConfig();
    cfg.enable_vmc = false;
    core::Coordinator a(cfg, sim::Topology{12, 2, 4}, model::bladeA(),
                        firstN(trace::Mix::Mid60, 12));
    core::Coordinator b(cfg, sim::Topology{12, 2, 4}, model::bladeA(),
                        firstN(trace::Mix::Mid60, 12));
    for (auto &srv : b.cluster().servers())
        srv.setMemLowPower(true);
    a.run(720);
    b.run(720);
    EXPECT_LT(b.summary().energy, a.summary().energy);
    EXPECT_LT(b.summary().perf_loss, a.summary().perf_loss + 0.03);
}

} // namespace
