/**
 * @file
 * Scale-invariance suite: the determinism and resume contracts proven on
 * the paper-scale testbed must survive a synthetic 5000-server tiered
 * fleet (sim/fleetgen.h) running the fleet control stack.
 *
 *  - serial vs parallel: threads 1/4/8 produce bit-identical per-tick
 *    series, summaries, and recorder output;
 *  - checkpoint/resume: a snapshot taken mid-run and restored into a
 *    freshly built twin finishes with byte-equal recorder CSV;
 *  - mini-golden: the final summary is pinned exactly (hexfloat), so a
 *    behaviour change at fleet scale fails loudly even if the small
 *    goldens stay green.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "model/machine.h"
#include "sim/fleetgen.h"
#include "sim/recorder.h"
#include "util/logging.h"

namespace {

using namespace nps;

constexpr unsigned kServers = 5000; // 10 zones of 500
constexpr size_t kTicks = 120;      // GM (period 50) fires twice
constexpr size_t kSplit = 60;       // checkpoint taken here

/** A built fleet simulation: coordinator + attached recorder. */
struct Sim
{
    std::unique_ptr<core::Coordinator> coord;
    std::shared_ptr<sim::Recorder> recorder;
};

Sim
buildFleet(unsigned threads)
{
    sim::FleetSpec spec;
    spec.servers = kServers;
    sim::FleetGen gen(spec);

    core::CoordinationConfig cfg = core::fleetConfig();
    cfg.threads = threads;

    Sim s;
    s.coord = std::make_unique<core::Coordinator>(
        cfg, gen.topology(), model::bladeA(), gen.traces(),
        /*keep_series=*/true);
    sim::Recorder::Options opts;
    opts.stride = 4;
    s.recorder = std::make_shared<sim::Recorder>(s.coord->cluster(), opts);
    s.coord->engine().addActor(s.recorder);
    return s;
}

/** Everything a fleet run exports (fleetConfig keeps the control-plane
 * log and obs sinks off, so the artifact set is series + recorder). */
struct Artifacts
{
    std::vector<double> power;
    std::vector<double> perf;
    std::string recorder_csv;
    sim::MetricsSummary summary;
};

Artifacts
collect(const Sim &s)
{
    Artifacts a;
    a.power = s.coord->metrics().powerSeries();
    a.perf = s.coord->metrics().perfSeries();
    std::ostringstream rec;
    s.recorder->writeCsv(rec);
    a.recorder_csv = rec.str();
    a.summary = s.coord->summary();
    return a;
}

void
expectIdentical(const Artifacts &ref, const Artifacts &got)
{
    ASSERT_EQ(ref.power.size(), got.power.size());
    // Exact equality on purpose: fleet scale must not loosen the
    // bit-identical contracts.
    EXPECT_EQ(ref.power, got.power);
    EXPECT_EQ(ref.perf, got.perf);
    EXPECT_EQ(ref.recorder_csv, got.recorder_csv);
    EXPECT_EQ(ref.summary.ticks, got.summary.ticks);
    EXPECT_EQ(ref.summary.energy, got.summary.energy);
    EXPECT_EQ(ref.summary.mean_power, got.summary.mean_power);
    EXPECT_EQ(ref.summary.peak_power, got.summary.peak_power);
    EXPECT_EQ(ref.summary.sm_violation, got.summary.sm_violation);
    EXPECT_EQ(ref.summary.em_violation, got.summary.em_violation);
    EXPECT_EQ(ref.summary.gm_violation, got.summary.gm_violation);
    EXPECT_EQ(ref.summary.perf_loss, got.summary.perf_loss);
}

/** FNV-1a, the digest pinned by the mini-golden below. */
uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

const Artifacts &
referenceRun()
{
    static const Artifacts ref = [] {
        Sim s = buildFleet(1);
        s.coord->run(kTicks);
        return collect(s);
    }();
    return ref;
}

TEST(FleetScale, ParallelMatchesSerialBitForBit)
{
    const Artifacts &serial = referenceRun();
    ASSERT_EQ(serial.summary.ticks, kTicks);
    for (unsigned threads : {4u, 8u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        Sim s = buildFleet(threads);
        s.coord->run(kTicks);
        expectIdentical(serial, collect(s));
    }
}

TEST(FleetScale, CheckpointResumeIsByteEqual)
{
    // Reference: one uninterrupted serial run.
    const Artifacts &ref = referenceRun();

    // Interrupted run: checkpoint at kSplit, restore into a freshly
    // built twin (different thread count on purpose — snapshots are
    // thread-count agnostic), finish there.
    Sim first = buildFleet(4);
    first.coord->run(kSplit);
    ckpt::SnapshotWriter w;
    first.coord->saveState(w);
    first.recorder->saveState(w.section("recorder"));
    const std::string bytes = w.serialize();

    Sim resumed = buildFleet(1);
    ckpt::SnapshotReader snap;
    std::string err;
    ASSERT_TRUE(snap.loadBytes(bytes, "<memory>", err)) << err;
    resumed.coord->loadState(snap);
    ckpt::SectionReader r = snap.section("recorder");
    resumed.recorder->loadState(r);
    r.expectEnd();
    EXPECT_EQ(resumed.coord->engine().now(), kSplit);

    resumed.coord->run(kTicks - kSplit);
    expectIdentical(ref, collect(resumed));
}

TEST(FleetScale, FinalMetricsMatchPinnedDigest)
{
    // Mini-golden for the 5000-server fleet: exact hexfloat pins on the
    // summary and an FNV-1a digest of the recorder CSV. A mismatch means
    // fleet-scale behaviour changed — regenerate deliberately by pasting
    // the values this test prints on failure.
    const Artifacts &ref = referenceRun();
    std::printf("fleet digest: energy=%a mean=%a peak=%a perf_loss=%a "
                "sm=%a csv_fnv1a=%llu csv_bytes=%zu\n",
                ref.summary.energy, ref.summary.mean_power,
                ref.summary.peak_power, ref.summary.perf_loss,
                ref.summary.sm_violation,
                static_cast<unsigned long long>(fnv1a(ref.recorder_csv)),
                ref.recorder_csv.size());
    EXPECT_EQ(ref.summary.ticks, kTicks);
    EXPECT_EQ(ref.summary.energy, 0x1.79c61cc147319p+24);
    EXPECT_EQ(ref.summary.mean_power, 0x1.92f574015d01bp+17);
    EXPECT_EQ(ref.summary.peak_power, 0x1.109a561b7ad4p+18);
    EXPECT_EQ(ref.summary.perf_loss, 0x1.2dc0ced207p-13);
    EXPECT_EQ(ref.summary.sm_violation, 0x1.50331e3a7daa5p-9);
    EXPECT_EQ(fnv1a(ref.recorder_csv), 6010948514903574250ull);
    EXPECT_EQ(ref.recorder_csv.size(), 2768641u);
}

} // namespace
