/**
 * @file
 * Reproduction of the paper's lab validation (Section 5.1): "we
 * implemented a simple prototype of an uncoordinated deployment of the
 * EC and SM on a server in our lab, and even with one machine, over
 * sustained high loads, the uncoordinated solution went into thermal
 * failover."
 *
 * One server, sustained high load, thermal budget below the P0 power at
 * that load. Coordinated nesting (SM drives the EC's r_ref) holds power
 * under the budget and the machine stays cool; the uncoordinated pair
 * (SM clamps P-states, EC overwrites them) oscillates, the time-average
 * power stays above the sustainable level, and the thermal latch trips.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/fixtures.h"
#include "controllers/efficiency.h"
#include "controllers/server_manager.h"
#include "sim/thermal.h"

namespace {

using namespace nps;
using controllers::EfficiencyController;
using controllers::ServerManager;

struct FailoverOutcome
{
    bool failed_over = false;
    double mean_power = 0.0;
    double violation_rate = 0.0;
};

FailoverOutcome
runOneServer(bool coordinated, double demand, double cap, size_t ticks)
{
    auto spec = std::make_shared<const model::MachineSpec>(
        model::bladeA());
    sim::Server server(0, spec, 0.10, 0.10);
    std::vector<sim::VirtualMachine> vms;
    vms.emplace_back(0, nps_test::flatTrace("load", demand, 8));
    server.addVm(0);

    EfficiencyController ec(server, {});
    ServerManager::Params smp;
    smp.mode = coordinated ? ServerManager::Mode::Coordinated
                           : ServerManager::Mode::DirectPState;
    ServerManager sm(server, coordinated ? &ec : nullptr, cap, smp);

    // Thermal path sized so the budget is exactly the sustainable power.
    sim::ThermalParams tp;
    tp.c_per_watt = (tp.failover_c - tp.ambient_c) / cap;
    sim::ThermalModel thermal(tp);

    FailoverOutcome out;
    double energy = 0.0;
    unsigned long violations = 0;
    for (size_t t = 0; t < ticks; ++t) {
        server.evaluate(t, vms);
        energy += server.lastPower();
        violations += server.lastPower() > cap ? 1 : 0;
        thermal.step(server.lastPower());
        sm.observe(t + 1);
        if ((t + 1) % sm.period() == 0)
            sm.step(t + 1);
        ec.step(t + 1);
    }
    out.failed_over = thermal.failedOver();
    out.mean_power = energy / static_cast<double>(ticks);
    out.violation_rate =
        static_cast<double>(violations) / static_cast<double>(ticks);
    return out;
}

class FailoverTest : public ::testing::Test
{
  protected:
    // Sustained high load: P0 power at util ~0.99 is ~84.6 W; the
    // thermal budget of 65 W requires real throttling.
    static constexpr double kDemand = 0.9;
    static constexpr double kCap = 65.0;
    static constexpr size_t kTicks = 4000;
};

TEST_F(FailoverTest, CoordinatedStaysCool)
{
    auto out = runOneServer(true, kDemand, kCap, kTicks);
    EXPECT_FALSE(out.failed_over);
    EXPECT_LT(out.mean_power, kCap * 1.02);
}

TEST_F(FailoverTest, UncoordinatedGoesIntoThermalFailover)
{
    auto out = runOneServer(false, kDemand, kCap, kTicks);
    EXPECT_TRUE(out.failed_over);
    // The struggle: the EC keeps overriding the capper, so the
    // time-average power stays above the sustainable level and the
    // violation duty cycle is large.
    EXPECT_GT(out.mean_power, kCap * 1.05);
    EXPECT_GT(out.violation_rate, 0.3);
}

TEST_F(FailoverTest, UncoordinatedViolatesMoreThanCoordinated)
{
    auto coord = runOneServer(true, kDemand, kCap, kTicks);
    auto uncoord = runOneServer(false, kDemand, kCap, kTicks);
    EXPECT_GT(uncoord.violation_rate, coord.violation_rate + 0.2);
}

TEST_F(FailoverTest, BothFineWhenBudgetIsLoose)
{
    // With a budget above the P0 peak there is no struggle to expose.
    auto coord = runOneServer(true, kDemand, 90.0, kTicks);
    auto uncoord = runOneServer(false, kDemand, 90.0, kTicks);
    EXPECT_FALSE(coord.failed_over);
    EXPECT_FALSE(uncoord.failed_over);
}

} // namespace
