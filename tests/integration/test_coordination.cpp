/**
 * @file
 * Integration tests of the paper's central claims (Section 5.1):
 * relative to the uncoordinated deployment, the coordinated architecture
 * reduces budget violations (correctness) and performance loss, while
 * both save substantial power against the unmanaged baseline.
 *
 * Uses a 60-server cluster over generated traces, long enough for
 * several VMC epochs.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenarios.h"

namespace {

using namespace nps;
using core::ExperimentRunner;
using core::ExperimentSpec;
using core::Scenario;

class CoordinationTest : public ::testing::Test
{
  protected:
    static ExperimentRunner &
    runner()
    {
        static ExperimentRunner r = [] {
            trace::GeneratorConfig gen;
            gen.trace_length = 1440;
            return ExperimentRunner(gen);
        }();
        return r;
    }

    static core::ExperimentResult
    run(Scenario s, trace::Mix mix, const std::string &machine = "BladeA")
    {
        ExperimentSpec spec;
        spec.label = core::scenarioName(s);
        spec.config = core::scenarioConfig(s);
        spec.machine = machine;
        spec.mix = mix;
        spec.ticks = 1440;
        return runner().run(spec);
    }
};

TEST_F(CoordinationTest, CoordinatedSavesPowerWithSmallLosses)
{
    auto r = run(Scenario::Coordinated, trace::Mix::High60);
    EXPECT_GT(r.power_savings, 0.20);
    EXPECT_LT(r.scenario.perf_loss, 0.05);
    EXPECT_LT(r.scenario.sm_violation, 0.15);
    EXPECT_LT(r.scenario.gm_violation, 0.05);
}

TEST_F(CoordinationTest, CoordinationReducesViolations)
{
    // The base 180-workload configuration, long enough for several VMC
    // epochs: the budget-blind uncoordinated consolidation packs servers
    // straight past their local caps.
    ExperimentSpec coord_spec;
    coord_spec.config = core::scenarioConfig(Scenario::Coordinated);
    coord_spec.mix = trace::Mix::All180;
    coord_spec.ticks = 2016;
    auto coord = runner().run(coord_spec);
    ExperimentSpec uncoord_spec = coord_spec;
    uncoord_spec.config = core::scenarioConfig(Scenario::Uncoordinated);
    auto uncoord = runner().run(uncoord_spec);
    EXPECT_LT(coord.scenario.sm_violation,
              uncoord.scenario.sm_violation);
}

TEST_F(CoordinationTest, CoordinationReducesViolationsOnServerB)
{
    auto coord = run(Scenario::Coordinated, trace::Mix::High60,
                     "ServerB");
    auto uncoord = run(Scenario::Uncoordinated, trace::Mix::High60,
                       "ServerB");
    EXPECT_LT(coord.scenario.sm_violation,
              uncoord.scenario.sm_violation);
    EXPECT_LE(coord.scenario.gm_violation,
              uncoord.scenario.gm_violation);
}

TEST_F(CoordinationTest, HighActivityCappingIsCorrectOnlyCoordinated)
{
    // At the stacked high-activity mix on the high-idle Server B the
    // budgets genuinely bind: the coordinated stack keeps group
    // violations bounded while the uncoordinated one leaks massively
    // (the thermal-failover regime).
    auto coord = run(Scenario::Coordinated, trace::Mix::HH60, "ServerB");
    auto uncoord = run(Scenario::Uncoordinated, trace::Mix::HH60,
                       "ServerB");
    EXPECT_LT(coord.scenario.gm_violation, 0.25);
    EXPECT_GT(uncoord.scenario.gm_violation,
              coord.scenario.gm_violation + 0.1);
    EXPECT_GT(uncoord.scenario.em_violation,
              coord.scenario.em_violation);
}

TEST_F(CoordinationTest, BothControllerFamiliesContribute)
{
    // Figure 8's decomposition at low utilization: consolidation (the
    // VMC) dominates the savings, yet the full coordinated stack is at
    // least as good as either component alone.
    auto coord = run(Scenario::Coordinated, trace::Mix::Low60);
    auto no_vmc = run(Scenario::NoVmc, trace::Mix::Low60);
    auto vmc_only = run(Scenario::VmcOnly, trace::Mix::Low60);
    EXPECT_GT(coord.power_savings, no_vmc.power_savings);
    EXPECT_GT(vmc_only.power_savings, no_vmc.power_savings);
    EXPECT_GE(coord.power_savings, vmc_only.power_savings - 0.02);
    EXPECT_GE(coord.power_savings, no_vmc.power_savings - 0.02);
}

TEST_F(CoordinationTest, VmcShareShrinksAtHighUtilization)
{
    // "benefits from VM consolidation will decrease if the base
    // workloads have high utilization."
    auto low_all = run(Scenario::Coordinated, trace::Mix::Low60);
    auto low_novmc = run(Scenario::NoVmc, trace::Mix::Low60);
    auto high_all = run(Scenario::Coordinated, trace::Mix::HHH60);
    auto high_novmc = run(Scenario::NoVmc, trace::Mix::HHH60);
    double vmc_share_low = low_all.power_savings -
                           low_novmc.power_savings;
    double vmc_share_high = high_all.power_savings -
                            high_novmc.power_savings;
    EXPECT_GT(vmc_share_low, vmc_share_high);
}

TEST_F(CoordinationTest, AbsoluteSavingsHigherAtLowUtilization)
{
    auto low = run(Scenario::Coordinated, trace::Mix::Low60);
    auto high = run(Scenario::Coordinated, trace::Mix::HHH60);
    EXPECT_GT(low.power_savings, high.power_savings);
}

TEST_F(CoordinationTest, ServerBGainsLessFromDvfs)
{
    // "the range of power control is likely more important than the
    // granularity": Server B's narrow range yields far smaller NoVMC
    // savings than Blade A's wide range.
    auto blade = run(Scenario::NoVmc, trace::Mix::High60, "BladeA");
    auto server = run(Scenario::NoVmc, trace::Mix::High60, "ServerB");
    EXPECT_GT(blade.power_savings, server.power_savings * 1.5);
}

TEST_F(CoordinationTest, Figure9AblationsAllDegrade)
{
    auto coord = run(Scenario::Coordinated, trace::Mix::High60);
    auto appr = run(Scenario::CoordApparentUtil, trace::Mix::High60);
    auto nofb = run(Scenario::CoordNoFeedback, trace::Mix::High60);
    auto nolim = run(Scenario::CoordNoBudgetLimits, trace::Mix::High60);

    // Apparent utilization misreads throttled servers: less savings.
    EXPECT_LE(appr.power_savings, coord.power_savings + 0.01);
    // No budget limits: packing ignores the caps, so violations grow.
    EXPECT_GE(nolim.scenario.sm_violation,
              coord.scenario.sm_violation - 0.01);
    // Each ablation is worse than the full design on at least one of
    // the paper's three axes (savings, perf loss, violations).
    auto worse_somewhere = [&](const core::ExperimentResult &r) {
        return r.power_savings < coord.power_savings - 1e-3 ||
               r.scenario.perf_loss >
                   coord.scenario.perf_loss - 1e-9 ||
               r.scenario.sm_violation >
                   coord.scenario.sm_violation - 1e-9;
    };
    EXPECT_TRUE(worse_somewhere(appr));
    EXPECT_TRUE(worse_somewhere(nofb));
    EXPECT_TRUE(worse_somewhere(nolim));
}

} // namespace
