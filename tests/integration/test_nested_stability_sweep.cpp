/**
 * @file
 * Property sweep of the *nested* EC+SM stack on the real simulated
 * server (quantization included): across a grid of (lambda, beta) gains
 * inside the Appendix A stability region, the closed loop must drive
 * power to the cap (within the quantization band) for a demand the cap
 * makes servable, without diverging or oscillating wildly.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "common/fixtures.h"
#include "control/stability.h"
#include "controllers/efficiency.h"
#include "controllers/server_manager.h"

namespace {

using namespace nps;
using controllers::EfficiencyController;
using controllers::ServerManager;

/** (lambda fraction of bound, beta, demand, cap). */
using Case = std::tuple<double, double, double, double>;

class NestedSweep : public ::testing::TestWithParam<Case>
{
};

TEST_P(NestedSweep, PowerSettlesAtOrBelowCap)
{
    auto [lam_frac, beta, demand, cap] = GetParam();

    auto spec = std::make_shared<const model::MachineSpec>(
        model::bladeA());
    sim::Server server(0, spec, 0.10, 0.10);
    std::vector<sim::VirtualMachine> vms;
    vms.emplace_back(0, nps_test::flatTrace("load", demand, 8));
    server.addVm(0);

    EfficiencyController::Params ecp;
    ecp.lambda = lam_frac * ctl::ecLambdaBound(ecp.r_ref);
    EfficiencyController ec(server, ecp);
    ServerManager::Params smp;
    smp.beta = beta;
    ServerManager sm(server, &ec, cap, smp);

    std::vector<double> power;
    for (size_t t = 0; t < 1500; ++t) {
        server.evaluate(t, vms);
        power.push_back(server.lastPower());
        sm.observe(t + 1);
        if ((t + 1) % sm.period() == 0)
            sm.step(t + 1);
        ec.step(t + 1);
    }

    // Tail statistics over the last 500 ticks.
    double mean = 0.0;
    size_t over = 0;
    for (size_t t = 1000; t < 1500; ++t) {
        mean += power[t];
        over += power[t] > cap * 1.02 ? 1 : 0;
    }
    mean /= 500.0;

    // Time-average power at or below the cap (small quantization ripple
    // allowed), and violations transient: a bounded duty cycle of the
    // quantized limit cycle, never a sustained breach.
    EXPECT_LE(mean, cap * 1.03)
        << "lambda=" << ecp.lambda << " beta=" << beta
        << " demand=" << demand << " cap=" << cap;
    EXPECT_LT(static_cast<double>(over) / 500.0, 0.6);
    // No runaway oscillation: the quantized limit cycle can traverse a
    // few P-states, so the ripple is bounded by the machine's full
    // P0-to-deepest power range (85 - 50 = 35 W for Blade A) — never
    // more.
    EXPECT_LT(ctl::tailAmplitude(power, 400), 35.5);
}

INSTANTIATE_TEST_SUITE_P(
    GainGrid, NestedSweep,
    ::testing::Combine(::testing::Values(0.3, 0.6, 0.95),  // lambda frac
                       ::testing::Values(0.25, 1.0, 3.0),  // beta
                       ::testing::Values(0.5, 0.9),        // demand
                       ::testing::Values(60.0, 72.0)));    // cap (watts)

TEST(NestedSweep, UnservableDemandPinsDeepestState)
{
    // A cap below the deepest state's loaded power cannot be met; the
    // stack must saturate at the slowest P-state and stay there (the
    // bounded-failure mode), not oscillate.
    auto spec = std::make_shared<const model::MachineSpec>(
        model::bladeA());
    sim::Server server(0, spec, 0.10, 0.10);
    std::vector<sim::VirtualMachine> vms;
    vms.emplace_back(0, nps_test::flatTrace("hot", 0.95, 8));
    server.addVm(0);
    EfficiencyController ec(server, {});
    ServerManager sm(server, &ec, 40.0, {});  // < P4 loaded power (50 W)
    for (size_t t = 0; t < 800; ++t) {
        server.evaluate(t, vms);
        sm.observe(t + 1);
        if ((t + 1) % sm.period() == 0)
            sm.step(t + 1);
        ec.step(t + 1);
    }
    EXPECT_EQ(server.pstate(), spec->pstates().slowestIndex());
    EXPECT_NEAR(server.lastPower(), 50.0, 0.5);
}

} // namespace
