/**
 * @file
 * Reproducibility guarantees: the entire pipeline — trace generation,
 * controllers (including the randomized policy), the VMC — must be a
 * pure function of the configuration and the seed. Two runs with the
 * same inputs produce bit-identical metrics; changing the seed changes
 * the traces but not the qualitative outcome.
 *
 * The parallel tick engine extends the contract across thread counts:
 * a run at threads = N must reproduce the serial (threads = 1) per-tick
 * metric series bit-for-bit, for coordinated and uncoordinated stacks,
 * homogeneous and heterogeneous fleets alike.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/coordinator.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "model/machine.h"
#include "trace/generator.h"
#include "trace/workload.h"
#include "util/thread_pool.h"

namespace {

using namespace nps;

core::ExperimentResult
runOnce(uint64_t seed, core::Scenario scenario)
{
    trace::GeneratorConfig gen;
    gen.seed = seed;
    gen.trace_length = 800;
    core::ExperimentRunner runner(gen);
    core::ExperimentSpec spec;
    spec.config = core::scenarioConfig(scenario);
    spec.mix = trace::Mix::Mid60;
    spec.ticks = 800;
    return runner.run(spec);
}

TEST(Determinism, CoordinatedRunsAreBitIdentical)
{
    auto a = runOnce(42, core::Scenario::Coordinated);
    auto b = runOnce(42, core::Scenario::Coordinated);
    EXPECT_EQ(a.scenario.energy, b.scenario.energy);
    EXPECT_EQ(a.scenario.perf_loss, b.scenario.perf_loss);
    EXPECT_EQ(a.scenario.sm_violation, b.scenario.sm_violation);
    EXPECT_EQ(a.scenario.peak_power, b.scenario.peak_power);
    EXPECT_EQ(a.vmc.migrations, b.vmc.migrations);
    EXPECT_EQ(a.vmc.adoptions, b.vmc.adoptions);
}

TEST(Determinism, UncoordinatedRunsAreBitIdentical)
{
    auto a = runOnce(42, core::Scenario::Uncoordinated);
    auto b = runOnce(42, core::Scenario::Uncoordinated);
    EXPECT_EQ(a.scenario.energy, b.scenario.energy);
    EXPECT_EQ(a.vmc.migrations, b.vmc.migrations);
}

TEST(Determinism, RandomPolicyIsSeededNotWallClock)
{
    auto make = [](uint64_t seed) {
        trace::GeneratorConfig gen;
        gen.seed = 5;
        gen.trace_length = 600;
        core::ExperimentRunner runner(gen);
        core::ExperimentSpec spec;
        spec.config = core::withPolicy(
            core::coordinatedConfig(),
            controllers::DivisionPolicy::Random);
        spec.config.em.seed = seed;
        spec.config.gm.seed = seed;
        spec.mix = trace::Mix::Mid60;
        spec.ticks = 600;
        return runner.run(spec);
    };
    auto a = make(1);
    auto b = make(1);
    EXPECT_EQ(a.scenario.energy, b.scenario.energy);
}

TEST(Determinism, SeedChangesTracesNotConclusions)
{
    for (uint64_t seed : {7ull, 99ull, 12345ull}) {
        auto coord = runOnce(seed, core::Scenario::Coordinated);
        auto uncoord = runOnce(seed, core::Scenario::Uncoordinated);
        // Different seeds give different numbers...
        // ...but the paper's qualitative claim holds for each of them.
        EXPECT_LT(coord.scenario.sm_violation,
                  uncoord.scenario.sm_violation + 1e-9)
            << "seed " << seed;
        EXPECT_GT(coord.power_savings, 0.10) << "seed " << seed;
    }
}

TEST(Determinism, DistinctSeedsProduceDistinctRuns)
{
    auto a = runOnce(1, core::Scenario::Coordinated);
    auto b = runOnce(2, core::Scenario::Coordinated);
    EXPECT_NE(a.scenario.energy, b.scenario.energy);
}

// ---------------------------------------------------------------------
// Serial vs parallel engine equivalence.

constexpr size_t kParTicks = 400;

const std::vector<trace::UtilizationTrace> &
parTraces()
{
    static const std::vector<trace::UtilizationTrace> traces = [] {
        trace::GeneratorConfig gen;
        gen.seed = 42;
        gen.trace_length = kParTicks;
        trace::WorkloadLibrary library(gen);
        return library.mix(trace::Mix::Mid60);
    }();
    return traces;
}

std::vector<std::shared_ptr<const model::MachineSpec>>
mixedSpecs(size_t n)
{
    auto blade = std::make_shared<const model::MachineSpec>(
        model::bladeA());
    auto server = std::make_shared<const model::MachineSpec>(
        model::serverB());
    std::vector<std::shared_ptr<const model::MachineSpec>> specs;
    for (size_t i = 0; i < n; ++i)
        specs.push_back(i % 2 == 0 ? blade : server);
    return specs;
}

/** Per-tick power and performance series of one run. */
struct Series
{
    std::vector<double> power;
    std::vector<double> perf;
    sim::MetricsSummary summary;
};

Series
runSeries(core::Scenario scenario, unsigned threads, bool heterogeneous)
{
    core::CoordinationConfig cfg = core::scenarioConfig(scenario);
    cfg.threads = threads;
    sim::Topology topo = core::ExperimentRunner::topologyFor(
        trace::Mix::Mid60);
    std::unique_ptr<core::Coordinator> coord;
    if (heterogeneous) {
        coord = std::make_unique<core::Coordinator>(
            cfg, topo, mixedSpecs(topo.num_servers), parTraces(),
            /*keep_series=*/true);
    } else {
        coord = std::make_unique<core::Coordinator>(
            cfg, topo, model::bladeA(), parTraces(),
            /*keep_series=*/true);
    }
    coord->run(kParTicks);
    return {coord->metrics().powerSeries(), coord->metrics().perfSeries(),
            coord->summary()};
}

void
expectSeriesIdentical(const Series &serial, const Series &parallel,
                      unsigned threads)
{
    ASSERT_EQ(serial.power.size(), parallel.power.size());
    ASSERT_EQ(serial.perf.size(), parallel.perf.size());
    for (size_t t = 0; t < serial.power.size(); ++t) {
        // Exact comparison: the sharded engine must be arithmetically
        // indistinguishable from the serial one, tick by tick.
        ASSERT_EQ(serial.power[t], parallel.power[t])
            << "group power diverged at tick " << t << " with threads="
            << threads;
        ASSERT_EQ(serial.perf[t], parallel.perf[t])
            << "perf diverged at tick " << t << " with threads="
            << threads;
    }
    EXPECT_EQ(serial.summary.energy, parallel.summary.energy);
    EXPECT_EQ(serial.summary.peak_power, parallel.summary.peak_power);
    EXPECT_EQ(serial.summary.sm_violation, parallel.summary.sm_violation);
    EXPECT_EQ(serial.summary.em_violation, parallel.summary.em_violation);
    EXPECT_EQ(serial.summary.gm_violation, parallel.summary.gm_violation);
    EXPECT_EQ(serial.summary.perf_loss, parallel.summary.perf_loss);
}

TEST(Determinism, ParallelCoordinatedMatchesSerialPerTick)
{
    Series serial = runSeries(core::Scenario::Coordinated, 1, false);
    for (unsigned threads : {2u, 4u, 8u}) {
        Series parallel =
            runSeries(core::Scenario::Coordinated, threads, false);
        expectSeriesIdentical(serial, parallel, threads);
    }
}

TEST(Determinism, ParallelUncoordinatedMatchesSerialPerTick)
{
    Series serial = runSeries(core::Scenario::Uncoordinated, 1, false);
    for (unsigned threads : {2u, 4u, 8u}) {
        Series parallel =
            runSeries(core::Scenario::Uncoordinated, threads, false);
        expectSeriesIdentical(serial, parallel, threads);
    }
}

TEST(Determinism, ParallelHeterogeneousMatchesSerialPerTick)
{
    for (core::Scenario scenario : {core::Scenario::Coordinated,
                                    core::Scenario::Uncoordinated}) {
        Series serial = runSeries(scenario, 1, true);
        for (unsigned threads : {2u, 4u, 8u}) {
            Series parallel = runSeries(scenario, threads, true);
            expectSeriesIdentical(serial, parallel, threads);
        }
    }
}

TEST(Determinism, ParallelWithCapAndMemMatchesSerialPerTick)
{
    // The optional per-server actors (electrical capper, memory
    // manager) are shardable too; include them so every shardable actor
    // kind crosses the parallel path.
    core::CoordinationConfig cfg = core::coordinatedConfig();
    cfg.enable_cap = true;
    cfg.enable_mem = true;
    sim::Topology topo = core::ExperimentRunner::topologyFor(
        trace::Mix::Mid60);
    auto run = [&](unsigned threads) {
        core::CoordinationConfig c = cfg;
        c.threads = threads;
        core::Coordinator coord(c, topo, model::bladeA(), parTraces(),
                                /*keep_series=*/true);
        coord.run(kParTicks);
        return Series{coord.metrics().powerSeries(),
                      coord.metrics().perfSeries(), coord.summary()};
    };
    Series serial = run(1);
    for (unsigned threads : {2u, 4u, 8u})
        expectSeriesIdentical(serial, run(threads), threads);
}

TEST(Determinism, ParallelFaultInjectedMatchesSerialPerTick)
{
    // The fault layer must preserve the thread-count contract: fault
    // randomness is keyed by (seed, target, tick), so a chaotic run is
    // as reproducible as a clean one.
    auto run = [&](unsigned threads) {
        core::CoordinationConfig cfg =
            core::scenarioConfig(core::Scenario::Coordinated);
        cfg.threads = threads;
        cfg.faults.enabled = true;
        cfg.faults.seed = 3;
        cfg.faults.script =
            "outage em 0 60 160\n"
            "outage ec 3 80 200\n"
            "drop em-sm * 50 250 0.5\n"
            "stuck 1 40 120\n"
            "noise 2 30 300 0.2\n";
        sim::Topology topo = core::ExperimentRunner::topologyFor(
            trace::Mix::Mid60);
        core::Coordinator coord(cfg, topo, model::bladeA(), parTraces(),
                                /*keep_series=*/true);
        coord.run(kParTicks);
        Series s{coord.metrics().powerSeries(),
                 coord.metrics().perfSeries(), coord.summary()};
        return std::make_pair(s, coord.degradeStats());
    };
    auto serial = run(1);
    ASSERT_FALSE(serial.second.none());
    for (unsigned threads : {2u, 4u, 8u}) {
        auto parallel = run(threads);
        expectSeriesIdentical(serial.first, parallel.first, threads);
        EXPECT_EQ(serial.second.outage_ticks,
                  parallel.second.outage_ticks);
        EXPECT_EQ(serial.second.dropped_budgets,
                  parallel.second.dropped_budgets);
        EXPECT_EQ(serial.second.noisy_reads, parallel.second.noisy_reads);
    }
}

TEST(Determinism, ParallelTraceGenerationMatchesSerial)
{
    trace::GeneratorConfig gen;
    gen.seed = 7;
    gen.trace_length = 256;
    trace::TraceGenerator generator(gen);
    auto serial = generator.generateAll();
    util::ThreadPool pool(4);
    auto parallel = generator.generateAll(&pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].name(), parallel[i].name());
        ASSERT_EQ(serial[i].length(), parallel[i].length());
        for (size_t t = 0; t < serial[i].length(); ++t)
            ASSERT_EQ(serial[i].at(t), parallel[i].at(t))
                << "trace " << serial[i].name() << " tick " << t;
    }
}

} // namespace
