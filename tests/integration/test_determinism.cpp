/**
 * @file
 * Reproducibility guarantees: the entire pipeline — trace generation,
 * controllers (including the randomized policy), the VMC — must be a
 * pure function of the configuration and the seed. Two runs with the
 * same inputs produce bit-identical metrics; changing the seed changes
 * the traces but not the qualitative outcome.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenarios.h"

namespace {

using namespace nps;

core::ExperimentResult
runOnce(uint64_t seed, core::Scenario scenario)
{
    trace::GeneratorConfig gen;
    gen.seed = seed;
    gen.trace_length = 800;
    core::ExperimentRunner runner(gen);
    core::ExperimentSpec spec;
    spec.config = core::scenarioConfig(scenario);
    spec.mix = trace::Mix::Mid60;
    spec.ticks = 800;
    return runner.run(spec);
}

TEST(Determinism, CoordinatedRunsAreBitIdentical)
{
    auto a = runOnce(42, core::Scenario::Coordinated);
    auto b = runOnce(42, core::Scenario::Coordinated);
    EXPECT_EQ(a.scenario.energy, b.scenario.energy);
    EXPECT_EQ(a.scenario.perf_loss, b.scenario.perf_loss);
    EXPECT_EQ(a.scenario.sm_violation, b.scenario.sm_violation);
    EXPECT_EQ(a.scenario.peak_power, b.scenario.peak_power);
    EXPECT_EQ(a.vmc.migrations, b.vmc.migrations);
    EXPECT_EQ(a.vmc.adoptions, b.vmc.adoptions);
}

TEST(Determinism, UncoordinatedRunsAreBitIdentical)
{
    auto a = runOnce(42, core::Scenario::Uncoordinated);
    auto b = runOnce(42, core::Scenario::Uncoordinated);
    EXPECT_EQ(a.scenario.energy, b.scenario.energy);
    EXPECT_EQ(a.vmc.migrations, b.vmc.migrations);
}

TEST(Determinism, RandomPolicyIsSeededNotWallClock)
{
    auto make = [](uint64_t seed) {
        trace::GeneratorConfig gen;
        gen.seed = 5;
        gen.trace_length = 600;
        core::ExperimentRunner runner(gen);
        core::ExperimentSpec spec;
        spec.config = core::withPolicy(
            core::coordinatedConfig(),
            controllers::DivisionPolicy::Random);
        spec.config.em.seed = seed;
        spec.config.gm.seed = seed;
        spec.mix = trace::Mix::Mid60;
        spec.ticks = 600;
        return runner.run(spec);
    };
    auto a = make(1);
    auto b = make(1);
    EXPECT_EQ(a.scenario.energy, b.scenario.energy);
}

TEST(Determinism, SeedChangesTracesNotConclusions)
{
    for (uint64_t seed : {7ull, 99ull, 12345ull}) {
        auto coord = runOnce(seed, core::Scenario::Coordinated);
        auto uncoord = runOnce(seed, core::Scenario::Uncoordinated);
        // Different seeds give different numbers...
        // ...but the paper's qualitative claim holds for each of them.
        EXPECT_LT(coord.scenario.sm_violation,
                  uncoord.scenario.sm_violation + 1e-9)
            << "seed " << seed;
        EXPECT_GT(coord.power_savings, 0.10) << "seed " << seed;
    }
}

TEST(Determinism, DistinctSeedsProduceDistinctRuns)
{
    auto a = runOnce(1, core::Scenario::Coordinated);
    auto b = runOnce(2, core::Scenario::Coordinated);
    EXPECT_NE(a.scenario.energy, b.scenario.energy);
}

} // namespace
