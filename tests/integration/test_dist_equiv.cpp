/**
 * @file
 * End-to-end equivalence of the distributed control plane
 * (docs/DISTRIBUTED.md): `npsim --distributed PLAN` — a supervisor plus
 * one npsnode process per [node] section, joined over a unix socket —
 * must produce a recorder CSV byte-identical to the single-process run
 * of the same plan, at every thread count; and a SIGKILLed child must
 * degrade the run through the drop/lease/fallback ladder without
 * stalling it or changing its length.
 *
 * The test drives the real binaries (paths injected by the build as
 * NPS_NPSIM_BIN; npsnode is found next to npsim, as in production).
 * When the macro is absent the test skips, so the target still builds
 * standalone.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef NPS_NPSIM_BIN
#define NPS_NPSIM_BIN ""
#endif

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class DistEquivTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        npsim_ = NPS_NPSIM_BIN;
        if (npsim_.empty())
            GTEST_SKIP() << "binary paths not wired into this build";
        ASSERT_EQ(::access(npsim_.c_str(), X_OK), 0)
            << npsim_ << " is not executable";
        char tmpl[] = "/tmp/nps-dist-equiv-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void TearDown() override
    {
        if (!dir_.empty())
            std::system(("rm -rf '" + dir_ + "'").c_str());
    }

    /** Write a 3-node plan (gm / em / vmc children) to its own socket.
     * @return the plan path. */
    std::string writePlan(const std::string &name, size_t ticks,
                          const std::string &chaos = "")
    {
        std::string path = dir_ + "/" + name + ".plan";
        std::ofstream out(path);
        out << "[dist]\n"
            << "socket = " << dir_ << "/" << name << ".sock\n"
            << "timeout_ms = 60000\n"
            << "[run]\n"
            << "scenario = coordinated\n"
            << "mix = 60M\n"
            << "ticks = " << ticks << "\n"
            << "[node group]\nlevels = gm:*\n"
            << "[node enclosures]\nlevels = em:*\n"
            << "[node vms]\nlevels = vmc\n";
        if (!chaos.empty())
            out << "[chaos]\nkill = " << chaos << "\n";
        return path;
    }

    /** Run npsim with @p args, stdout+stderr into @p log.
     * @return the exit code (or -1 when it did not exit normally). */
    int runNpsim(const std::string &args, const std::string &log)
    {
        std::string cmd =
            npsim_ + " " + args + " > " + dir_ + "/" + log + " 2>&1";
        int status = std::system(cmd.c_str());
        if (status == -1 || !WIFEXITED(status))
            return -1;
        return WEXITSTATUS(status);
    }

    std::string npsim_;
    std::string dir_;
};

TEST_F(DistEquivTest, DistributedRunIsByteIdenticalAcrossThreadCounts)
{
    const size_t ticks = 240;
    std::string ref_plan = writePlan("ref", ticks);
    ASSERT_EQ(runNpsim("--plan " + ref_plan + " --record " + dir_ +
                           "/ref.csv",
                       "ref.log"),
              0)
        << readFile(dir_ + "/ref.log");
    std::string ref = readFile(dir_ + "/ref.csv");
    ASSERT_FALSE(ref.empty());

    for (int threads : {1, 4}) {
        std::string name = "d" + std::to_string(threads);
        std::string plan = writePlan(name, ticks);
        ASSERT_EQ(runNpsim("--distributed " + plan + " --threads " +
                               std::to_string(threads) + " --record " +
                               dir_ + "/" + name + ".csv",
                           name + ".log"),
                  0)
            << readFile(dir_ + "/" + name + ".log");
        std::string got = readFile(dir_ + "/" + name + ".csv");
        ASSERT_EQ(got.size(), ref.size()) << "threads=" << threads;
        // Byte equality, reported compactly (the CSVs are large).
        EXPECT_TRUE(got == ref)
            << "distributed CSV diverges from the single-process run "
               "at threads="
            << threads;
    }
}

TEST_F(DistEquivTest, KilledRankDegradesWithoutStallingTheRun)
{
    // SIGKILL the GM rank a third of the way in, no restart: the
    // survivors must keep replicating in lockstep, resolving the dead
    // rank's grants as drops, and the run must still cover every tick.
    const size_t ticks = 240;
    std::string plan = writePlan("chaos", ticks, "1@80");
    ASSERT_EQ(runNpsim("--distributed " + plan + " --record " + dir_ +
                           "/chaos.csv",
                       "chaos.log"),
              0)
        << readFile(dir_ + "/chaos.log");

    std::string log = readFile(dir_ + "/chaos.log");
    EXPECT_NE(log.find("killed rank 1"), std::string::npos) << log;

    // The degrade summary must show the dead rank's traffic as drops.
    size_t at = log.find("degrade: ");
    ASSERT_NE(at, std::string::npos) << log;
    unsigned long long dropped = 0;
    ASSERT_EQ(std::sscanf(log.c_str() + at, "degrade: %llu dropped",
                          &dropped),
              1)
        << log;
    EXPECT_GT(dropped, 0u) << log;

    // Same number of recorded samples as a healthy run: degradation
    // never shortens or stalls the simulation.
    std::string healthy_plan = writePlan("healthy", ticks);
    ASSERT_EQ(runNpsim("--plan " + healthy_plan + " --record " + dir_ +
                           "/healthy.csv",
                       "healthy.log"),
              0);
    auto lines = [](const std::string &s) {
        size_t n = 0;
        for (char c : s)
            n += c == '\n';
        return n;
    };
    EXPECT_EQ(lines(readFile(dir_ + "/chaos.csv")),
              lines(readFile(dir_ + "/healthy.csv")));
}

} // namespace
