/**
 * @file
 * Integration tests for the N-level GM hierarchy: a 3-level
 * datacenter -> zone -> rack tree (GM-of-GMs), built from the topology
 * by the Coordinator, with grants cascading over GM->GM links.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/fixtures.h"
#include "core/coordinator.h"
#include "core/scenarios.h"

namespace {

using namespace nps;
using core::Coordinator;

/** 2 zones x 3 racks, 1 enclosure of 8 blades + 2 standalone per rack:
 * 60 servers under 9 GMs (1 root + 2 zones + 6 racks). */
sim::Topology
treeTopo()
{
    return sim::Topology::tiered(2, 3, 1, 8, 2);
}

TEST(HierarchyTest, BuildsOneGmPerTreeNode)
{
    Coordinator c(core::coordinatedConfig(), treeTopo(), model::bladeA(),
                  nps_test::flatTraces(60, 0.3, 64));
    ASSERT_EQ(c.gms().size(), 9u);
    // Pre-order: root first, then each zone followed by its racks.
    EXPECT_EQ(c.gms()[0]->name(), "GM");
    EXPECT_EQ(c.gms()[1]->name(), "GM/z0");
    EXPECT_EQ(c.gms()[2]->name(), "GM/z0r0");
    EXPECT_EQ(c.gms()[5]->name(), "GM/z1");
    EXPECT_EQ(c.gms()[8]->name(), "GM/z1r2");
    // Ids follow pre-order too (they key the fault targets).
    for (size_t i = 0; i < c.gms().size(); ++i)
        EXPECT_EQ(c.gms()[i]->id(), static_cast<long>(i));

    const controllers::GroupManager *root = c.gm();
    ASSERT_NE(root, nullptr);
    EXPECT_FALSE(root->hasParent());
    ASSERT_EQ(root->childGroups().size(), 2u);
    EXPECT_TRUE(root->childGroups()[0]->hasParent());
    EXPECT_EQ(root->childGroups()[0]->childGroups().size(), 3u);
    // The root still enforces the paper's CAP_GRP over all 60 servers.
    EXPECT_DOUBLE_EQ(root->staticCap(), c.cluster().capGrp());
    EXPECT_EQ(root->allServers().size(), 60u);
    // A rack GM scopes only its own 10 servers.
    EXPECT_EQ(c.gms()[2]->allServers().size(), 10u);
}

TEST(HierarchyTest, GrantsCascadeDownTheTree)
{
    Coordinator c(core::coordinatedConfig(), treeTopo(), model::bladeA(),
                  nps_test::flatTraces(60, 0.6, 256));
    c.run(200);
    // Every nested GM received at least one grant over its GM->GM link
    // and enforces min(static, grant).
    for (size_t i = 1; i < c.gms().size(); ++i) {
        const auto &gm = *c.gms()[i];
        EXPECT_LE(gm.effectiveCap(), gm.staticCap() + 1e-9)
            << gm.name();
    }
    // The root divided among its two zones.
    EXPECT_EQ(c.gm()->lastGrants().size(), 2u);
    // An inner zone GM divided among its three racks.
    EXPECT_EQ(c.gms()[1]->lastGrants().size(), 3u);
}

TEST(HierarchyTest, CoordinatedBeatsUncoordinatedOnViolations)
{
    // The paper's core claim, restated on a 3-level tree: coordinated
    // capping violates the group budget no more often than the
    // uncoordinated vendor mix.
    auto traces = nps_test::generatedTraces(60, 512, 7);
    Coordinator coord(core::coordinatedConfig(), treeTopo(),
                      model::bladeA(), traces);
    coord.run(480);
    Coordinator uncoord(core::uncoordinatedConfig(), treeTopo(),
                        model::bladeA(), traces);
    uncoord.run(480);
    EXPECT_LE(coord.summary().gm_violation,
              uncoord.summary().gm_violation + 1e-12);
}

TEST(HierarchyTest, TreeRunsAreThreadCountInvariant)
{
    auto traces = nps_test::generatedTraces(60, 256, 3);
    auto run = [&](unsigned threads) {
        core::CoordinationConfig cfg = core::coordinatedConfig();
        cfg.threads = threads;
        Coordinator c(cfg, treeTopo(), model::bladeA(), traces);
        c.run(250);
        return c.summary();
    };
    sim::MetricsSummary serial = run(1);
    sim::MetricsSummary parallel = run(4);
    EXPECT_EQ(serial.energy, parallel.energy);
    EXPECT_EQ(serial.mean_power, parallel.mean_power);
    EXPECT_EQ(serial.peak_power, parallel.peak_power);
    EXPECT_EQ(serial.gm_violation, parallel.gm_violation);
    EXPECT_EQ(serial.perf_loss, parallel.perf_loss);
}

TEST(HierarchyTest, GmToGmDropsDegradeTheZoneLease)
{
    // Sever the root->z0 budget link with the uniform ControlLink drop
    // hook: z0's lease must expire and its subtree degrade to the
    // fallback cap, while z1 keeps coordinating normally.
    core::CoordinationConfig cfg = core::coordinatedConfig();
    cfg.faults.enabled = true;
    cfg.faults.script = "drop gm-gm 1 0 2000 1";
    Coordinator c(cfg, treeTopo(), model::bladeA(),
                  nps_test::flatTraces(60, 0.5, 2048));
    c.run(1000);
    const fault::DegradeStats d = c.degradeStats();
    EXPECT_GT(d.dropped_budgets, 0u);
    EXPECT_GT(d.lease_expiries, 0u);
    EXPECT_GT(d.lease_fallback_steps, 0u);
}

TEST(HierarchyTest, ControlLogCoversGmToGmLinks)
{
    core::CoordinationConfig cfg = core::coordinatedConfig();
    cfg.log_control_plane = true;
    Coordinator c(cfg, treeTopo(), model::bladeA(),
                  nps_test::flatTraces(60, 0.4, 128));
    c.run(120);
    const bus::ControlPlaneLog *log = c.controlLog();
    ASSERT_NE(log, nullptr);
    EXPECT_GT(log->totalEvents(), 0u);
    bool saw_gm_gm = false;
    for (const auto &link : log->links())
        saw_gm_gm |= link->name == "GM->GM/z0";
    EXPECT_TRUE(saw_gm_gm);
}

} // namespace
