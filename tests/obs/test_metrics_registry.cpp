/**
 * @file
 * Tests for the metrics registry: registration contracts, recording,
 * deterministic export in both formats, and value formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.h"

namespace {

using namespace nps::obs;

TEST(Metrics, CounterAccumulates)
{
    MetricsRegistry reg;
    Counter *c = reg.counter("nps_test_total", "A", "help");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), 0.0);
    c->add();
    c->add(2.5);
    EXPECT_EQ(c->value(), 3.5);
    EXPECT_EQ(reg.value("nps_test_total", "A"), 3.5);
}

TEST(Metrics, GaugeOverwrites)
{
    MetricsRegistry reg;
    Gauge *g = reg.gauge("nps_test_watts", "A", "help");
    g->set(10.0);
    g->set(7.5);
    EXPECT_EQ(g->value(), 7.5);
}

TEST(Metrics, HistogramBucketsAndSum)
{
    MetricsRegistry reg;
    Histogram *h = reg.histogram("nps_test_hist", "A", "help",
                                 {1.0, 5.0, 10.0});
    h->observe(0.5);  // bucket le=1
    h->observe(1.0);  // le=1 (inclusive upper bound)
    h->observe(3.0);  // le=5
    h->observe(99.0); // +Inf
    EXPECT_EQ(h->count(), 4u);
    EXPECT_EQ(h->sum(), 103.5);
    ASSERT_EQ(h->counts().size(), 4u); // 3 bounds + Inf
    EXPECT_EQ(h->counts()[0], 2u);
    EXPECT_EQ(h->counts()[1], 1u);
    EXPECT_EQ(h->counts()[2], 0u);
    EXPECT_EQ(h->counts()[3], 1u);
    // value() reports the observation count for histograms.
    EXPECT_EQ(reg.value("nps_test_hist", "A"), 4.0);
}

TEST(Metrics, FamiliesGroupSeries)
{
    MetricsRegistry reg;
    reg.counter("nps_a_total", "x", "h")->add(1.0);
    reg.counter("nps_a_total", "y", "h")->add(2.0);
    reg.gauge("nps_b", "", "h")->set(5.0);
    EXPECT_EQ(reg.numFamilies(), 2u);
    EXPECT_EQ(reg.numSeries(), 3u);
    EXPECT_EQ(reg.total("nps_a_total"), 3.0);
    EXPECT_EQ(reg.value("nps_missing", "x", -1.0), -1.0);
    EXPECT_EQ(reg.value("nps_a_total", "z", -1.0), -1.0);
}

TEST(MetricsDeath, DuplicateSeriesIsFatal)
{
    MetricsRegistry reg;
    reg.counter("nps_dup_total", "A", "h");
    EXPECT_DEATH(reg.counter("nps_dup_total", "A", "h"),
                 "registered twice");
}

TEST(MetricsDeath, KindMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.counter("nps_kind_total", "A", "h");
    EXPECT_DEATH(reg.gauge("nps_kind_total", "B", "h"), "kind");
}

TEST(MetricsDeath, NonIncreasingBoundsAreFatal)
{
    MetricsRegistry reg;
    EXPECT_DEATH(reg.histogram("nps_h", "A", "h", {5.0, 1.0}),
                 "increasing");
}

TEST(Metrics, PromExportIsSortedAndCumulative)
{
    MetricsRegistry reg;
    // Register out of order; export must sort by (family, label).
    reg.counter("nps_z_total", "b", "zed help")->add(2.0);
    reg.counter("nps_z_total", "a", "zed help")->add(1.0);
    Histogram *h = reg.histogram("nps_h", "s", "hist help", {1.0, 2.0});
    h->observe(0.5);
    h->observe(1.5);
    h->observe(9.0);

    std::ostringstream out;
    reg.writeProm(out);
    EXPECT_EQ(out.str(),
              "# HELP nps_h hist help\n"
              "# TYPE nps_h histogram\n"
              "nps_h_bucket{id=\"s\",le=\"1\"} 1\n"
              "nps_h_bucket{id=\"s\",le=\"2\"} 2\n"
              "nps_h_bucket{id=\"s\",le=\"+Inf\"} 3\n"
              "nps_h_sum{id=\"s\"} 11\n"
              "nps_h_count{id=\"s\"} 3\n"
              "# HELP nps_z_total zed help\n"
              "# TYPE nps_z_total counter\n"
              "nps_z_total{id=\"a\"} 1\n"
              "nps_z_total{id=\"b\"} 2\n");
}

TEST(Metrics, PromBareSeriesOmitsLabel)
{
    MetricsRegistry reg;
    reg.gauge("nps_run_ticks", "", "help")->set(480.0);
    std::ostringstream out;
    reg.writeProm(out);
    EXPECT_NE(out.str().find("\nnps_run_ticks 480\n"),
              std::string::npos);
}

TEST(Metrics, JsonExportShape)
{
    MetricsRegistry reg;
    reg.counter("nps_c_total", "A", "c help")->add(2.0);
    Histogram *h = reg.histogram("nps_h", "B", "h help", {1.0});
    h->observe(0.5);

    std::ostringstream out;
    reg.writeJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"name\": \"nps_c_total\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
    EXPECT_NE(json.find("\"le\": 1"), std::string::npos);
    // Exports must not disturb the recorded values.
    EXPECT_EQ(reg.value("nps_c_total", "A"), 2.0);
}

TEST(Metrics, ExportIsIndependentOfRegistrationOrder)
{
    MetricsRegistry a, b;
    a.counter("nps_one_total", "x", "h")->add(1.0);
    a.counter("nps_two_total", "y", "h")->add(2.0);
    b.counter("nps_two_total", "y", "h")->add(2.0);
    b.counter("nps_one_total", "x", "h")->add(1.0);
    std::ostringstream oa, ob;
    a.writeProm(oa);
    b.writeProm(ob);
    EXPECT_EQ(oa.str(), ob.str());
}

TEST(Metrics, FormatMetricValue)
{
    EXPECT_EQ(formatMetricValue(0.0), "0");
    EXPECT_EQ(formatMetricValue(42.0), "42");
    EXPECT_EQ(formatMetricValue(-3.0), "-3");
    EXPECT_EQ(formatMetricValue(0.5), "0.5");
    EXPECT_EQ(formatMetricValue(1.0 / 0.0), "null");
}

TEST(Metrics, KindNames)
{
    EXPECT_STREQ(metricKindName(MetricsRegistry::Kind::Counter),
                 "counter");
    EXPECT_STREQ(metricKindName(MetricsRegistry::Kind::Gauge), "gauge");
    EXPECT_STREQ(metricKindName(MetricsRegistry::Kind::Histogram),
                 "histogram");
}

} // namespace
