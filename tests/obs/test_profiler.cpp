/**
 * @file
 * Tests for the engine profiler: schedule lifecycle, per-actor and
 * per-phase accumulation, and the two output formats.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/profiler.h"

namespace {

using namespace nps::obs;

std::vector<EngineProfiler::ActorInfo>
schedule()
{
    EngineProfiler::ActorInfo gm;
    gm.name = "GM/group";
    gm.shard_key = -1;
    EngineProfiler::ActorInfo sm;
    sm.name = "SM/0";
    sm.shard_key = 0;
    return {gm, sm};
}

TEST(Profiler, AccumulatesPerActor)
{
    EngineProfiler prof;
    prof.setSchedule(schedule(), 4);
    EXPECT_EQ(prof.threads(), 4u);
    ASSERT_EQ(prof.actorStats().size(), 2u);

    prof.addObserve(0, 100, 0);
    prof.addObserve(0, 50, 1);
    prof.addStep(1, 25, 2);

    const auto &gm = prof.actorStats()[0];
    EXPECT_EQ(gm.info.name, "GM/group");
    EXPECT_EQ(gm.info.shard_key, -1);
    EXPECT_EQ(gm.observe_calls, 2u);
    EXPECT_EQ(gm.observe_ns, 150u);
    EXPECT_EQ(gm.step_calls, 0u);
    EXPECT_EQ(gm.slot, 1u);

    const auto &sm = prof.actorStats()[1];
    EXPECT_EQ(sm.step_calls, 1u);
    EXPECT_EQ(sm.step_ns, 25u);
    EXPECT_EQ(sm.slot, 2u);
}

TEST(Profiler, ReannouncingSameScheduleKeepsTimings)
{
    EngineProfiler prof;
    prof.setSchedule(schedule(), 1);
    prof.addStep(0, 10, 0);
    prof.addRun(5, 1000);

    // The engine re-plans (e.g. thread count change) over the same
    // actors: accumulators must survive.
    prof.setSchedule(schedule(), 8);
    EXPECT_EQ(prof.threads(), 8u);
    EXPECT_EQ(prof.actorStats()[0].step_calls, 1u);
    EXPECT_EQ(prof.ticks(), 5u);
}

TEST(Profiler, ScheduleChangeResetsTimings)
{
    EngineProfiler prof;
    prof.setSchedule(schedule(), 1);
    prof.addStep(0, 10, 0);
    prof.addPhase(EnginePhase::Evaluate, 7);
    prof.addRun(5, 1000);

    auto changed = schedule();
    changed.pop_back();
    prof.setSchedule(changed, 1);
    ASSERT_EQ(prof.actorStats().size(), 1u);
    EXPECT_EQ(prof.actorStats()[0].step_calls, 0u);
    EXPECT_EQ(prof.phaseNs(EnginePhase::Evaluate), 0u);
    EXPECT_EQ(prof.ticks(), 0u);
    EXPECT_EQ(prof.wallNs(), 0u);
}

TEST(Profiler, PhasesAndRunTotalsAccumulate)
{
    EngineProfiler prof;
    prof.setSchedule(schedule(), 2);
    prof.addPhase(EnginePhase::Evaluate, 10);
    prof.addPhase(EnginePhase::Evaluate, 5);
    prof.addPhase(EnginePhase::Record, 3);
    prof.addRun(100, 2000);
    prof.addRun(50, 1000);
    EXPECT_EQ(prof.phaseNs(EnginePhase::Evaluate), 15u);
    EXPECT_EQ(prof.phaseNs(EnginePhase::Record), 3u);
    EXPECT_EQ(prof.ticks(), 150u);
    EXPECT_EQ(prof.wallNs(), 3000u);
}

TEST(Profiler, WriteJsonShape)
{
    EngineProfiler prof;
    prof.setSchedule(schedule(), 2);
    prof.addObserve(0, 100, 0);
    prof.addObserve(0, 100, 0);
    prof.addStep(1, 200, 1);
    prof.addRun(10, 1000000);

    std::ostringstream out;
    prof.writeJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"ticks\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"GM/group\""), std::string::npos);
    EXPECT_NE(json.find("\"shard\": -1"), std::string::npos);
    EXPECT_NE(json.find("\"shard\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"observe_calls\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"step_calls\": 1"), std::string::npos);
}

TEST(Profiler, WriteTableSmoke)
{
    EngineProfiler prof;
    prof.setSchedule(schedule(), 2);
    prof.addObserve(0, 2000000, 0);
    prof.addStep(1, 1000000, 1);
    prof.addRun(10, 4000000);

    std::ostringstream out;
    prof.writeTable(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("Engine profile"), std::string::npos);
    EXPECT_NE(text.find("GM/group"), std::string::npos);
    EXPECT_NE(text.find("SM/0"), std::string::npos);
    EXPECT_NE(text.find("global"), std::string::npos);
    EXPECT_NE(text.find("(cluster evaluate)"), std::string::npos);
    EXPECT_NE(text.find("ticks/sec"), std::string::npos);
}

} // namespace
