/**
 * @file
 * End-to-end observability contracts on a real coordinated run:
 *
 *  - thread invariance: metrics exposition and merged trace CSV are
 *    byte-identical at threads = 1, 4, and 8;
 *  - transparency: enabling observability does not change any
 *    MetricsSummary field (observation only, bit-for-bit);
 *  - wiring: run-summary gauges mirror the summary, the profiler saw
 *    every tick, and disabled instruments stay null;
 *  - config: the [obs] INI section round-trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/config_io.h"
#include "core/coordinator.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "obs/observability.h"
#include "trace/workload.h"

namespace {

using namespace nps;

/** Short horizon: long enough for VMC epochs and budget redistribution,
 * short enough to run three thread counts plus an obs-off control. */
constexpr size_t kTicks = 240;

struct RunOutputs
{
    sim::MetricsSummary summary;
    std::string prom;
    std::string csv;
    size_t profiled_ticks = 0;
    size_t profiled_actors = 0;
};

RunOutputs
runCoordinated(unsigned threads, bool obs_on,
               const std::string &trace_filter = std::string())
{
    trace::GeneratorConfig gen;
    gen.seed = 20080301;
    gen.trace_length = kTicks;
    trace::WorkloadLibrary library(gen);

    core::CoordinationConfig cfg =
        core::scenarioConfig(core::Scenario::Coordinated);
    cfg.threads = threads;
    if (obs_on) {
        cfg.observability.metrics = true;
        cfg.observability.trace = true;
        cfg.observability.profile = true;
        cfg.observability.trace_filter = trace_filter;
    }

    core::Coordinator coord(
        cfg, core::ExperimentRunner::topologyFor(trace::Mix::Mid60),
        model::machineByName("BladeA"), library.mix(trace::Mix::Mid60));
    coord.run(kTicks);

    RunOutputs out;
    out.summary = coord.summary();
    if (obs_on) {
        std::ostringstream prom;
        coord.metricsRegistry()->writeProm(prom);
        out.prom = prom.str();
        std::ostringstream csv;
        coord.traceSink()->writeCsv(csv);
        out.csv = csv.str();
        out.profiled_ticks = coord.profiler()->ticks();
        out.profiled_actors = coord.profiler()->actorStats().size();
    } else {
        EXPECT_EQ(coord.metricsRegistry(), nullptr);
        EXPECT_EQ(coord.traceSink(), nullptr);
        EXPECT_EQ(coord.profiler(), nullptr);
    }
    return out;
}

void
expectSummariesEqual(const sim::MetricsSummary &a,
                     const sim::MetricsSummary &b)
{
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.mean_power, b.mean_power);
    EXPECT_EQ(a.peak_power, b.peak_power);
    EXPECT_EQ(a.sm_violation, b.sm_violation);
    EXPECT_EQ(a.em_violation, b.em_violation);
    EXPECT_EQ(a.gm_violation, b.gm_violation);
    EXPECT_EQ(a.perf_loss, b.perf_loss);
}

TEST(ObsIntegration, ExportsAreThreadInvariant)
{
    RunOutputs t1 = runCoordinated(1, true);
    RunOutputs t4 = runCoordinated(4, true);
    RunOutputs t8 = runCoordinated(8, true);

    ASSERT_FALSE(t1.prom.empty());
    ASSERT_FALSE(t1.csv.empty());
    EXPECT_EQ(t1.csv.compare(0, 23, "tick,channel,seq,event\n"), 0);

    // The determinism contract (docs/OBSERVABILITY.md): byte-identical
    // exports at any worker count.
    EXPECT_EQ(t1.prom, t4.prom);
    EXPECT_EQ(t1.prom, t8.prom);
    EXPECT_EQ(t1.csv, t4.csv);
    EXPECT_EQ(t1.csv, t8.csv);

    // And the simulation itself agrees across thread counts.
    expectSummariesEqual(t1.summary, t4.summary);
    expectSummariesEqual(t1.summary, t8.summary);
}

TEST(ObsIntegration, EnablingObservabilityIsTransparent)
{
    RunOutputs off = runCoordinated(4, false);
    RunOutputs on = runCoordinated(4, true);
    expectSummariesEqual(off.summary, on.summary);
}

TEST(ObsIntegration, RunGaugesMirrorSummary)
{
    trace::GeneratorConfig gen;
    gen.seed = 20080301;
    gen.trace_length = kTicks;
    trace::WorkloadLibrary library(gen);

    core::CoordinationConfig cfg =
        core::scenarioConfig(core::Scenario::Coordinated);
    cfg.observability.metrics = true;
    core::Coordinator coord(
        cfg, core::ExperimentRunner::topologyFor(trace::Mix::Mid60),
        model::machineByName("BladeA"), library.mix(trace::Mix::Mid60));
    coord.run(kTicks);

    const sim::MetricsSummary s = coord.summary();
    const obs::MetricsRegistry *reg = coord.metricsRegistry();
    ASSERT_NE(reg, nullptr);
    EXPECT_EQ(reg->value("nps_run_ticks", ""),
              static_cast<double>(s.ticks));
    EXPECT_EQ(reg->value("nps_run_energy_watt_ticks", ""), s.energy);
    EXPECT_EQ(reg->value("nps_run_mean_power_watts", ""), s.mean_power);
    EXPECT_EQ(reg->value("nps_run_peak_power_watts", ""), s.peak_power);
    EXPECT_EQ(reg->value("nps_run_violation_frac", "gm"), s.gm_violation);
    EXPECT_EQ(reg->value("nps_run_perf_loss_frac", ""), s.perf_loss);
    // Fault-free run: every degradation counter is zero.
    EXPECT_EQ(reg->total("nps_degrade_total"), 0.0);
}

TEST(ObsIntegration, ProfilerCoversTheRun)
{
    RunOutputs on = runCoordinated(4, true);
    EXPECT_EQ(on.profiled_ticks, kTicks);
    // Mid60: 60 servers -> EC/SM/CAP/MM per server plus EM/GM/VMC.
    EXPECT_GT(on.profiled_actors, 60u);
}

TEST(ObsIntegration, TraceFilterRestrictsChannels)
{
    RunOutputs all = runCoordinated(1, true);
    RunOutputs sm = runCoordinated(1, true, "SM/");
    ASSERT_FALSE(sm.csv.empty());
    EXPECT_LT(sm.csv.size(), all.csv.size());
    // Every data row of the filtered trace names an SM channel.
    std::istringstream lines(sm.csv);
    std::string line;
    std::getline(lines, line); // header
    size_t rows = 0;
    while (std::getline(lines, line)) {
        ++rows;
        EXPECT_NE(line.find(",SM/"), std::string::npos) << line;
    }
    EXPECT_GT(rows, 0u);
}

TEST(ObsIntegration, ObsConfigRoundTripsThroughIni)
{
    core::CoordinationConfig cfg;
    cfg.observability.metrics = true;
    cfg.observability.trace = true;
    cfg.observability.profile = true;
    cfg.observability.trace_filter = "GM/";
    cfg.observability.trace_capacity = 1024;

    core::CoordinationConfig back =
        core::configFromIni(core::configToIni(cfg));
    EXPECT_TRUE(back.observability.metrics);
    EXPECT_TRUE(back.observability.trace);
    EXPECT_TRUE(back.observability.profile);
    EXPECT_EQ(back.observability.trace_filter, "GM/");
    EXPECT_EQ(back.observability.trace_capacity, 1024u);

    core::CoordinationConfig off =
        core::configFromIni(core::configToIni(core::CoordinationConfig()));
    EXPECT_FALSE(off.observability.any());
}

} // namespace
