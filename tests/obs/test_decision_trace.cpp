/**
 * @file
 * Tests for decision tracing: channel emission, ring eviction, the
 * name filter, the deterministic merged view, and CSV output.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/decision_trace.h"

namespace {

using namespace nps::obs;

TEST(Trace, EmitRecordsTickSeqAndText)
{
    TraceSink sink;
    TraceChannel *c = sink.channel("SM/0");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->name(), "SM/0");

    c->emit(3, "budget %.1fW", 42.5);
    ASSERT_EQ(c->events().size(), 1u);
    EXPECT_EQ(c->events()[0].tick, 3u);
    EXPECT_EQ(c->events()[0].seq, 0u);
    EXPECT_EQ(c->events()[0].text, "budget 42.5W");
    EXPECT_EQ(c->emitted(), 1u);
    EXPECT_EQ(c->dropped(), 0u);
}

TEST(Trace, SeqAdvancesPerChannel)
{
    TraceSink sink;
    TraceChannel *a = sink.channel("a");
    TraceChannel *b = sink.channel("b");
    a->emit(0, "x");
    b->emit(0, "y");
    a->emit(1, "z");
    EXPECT_EQ(a->events()[0].seq, 0u);
    EXPECT_EQ(a->events()[1].seq, 1u);
    EXPECT_EQ(b->events()[0].seq, 0u);
    EXPECT_EQ(sink.totalEvents(), 3u);
}

TEST(Trace, RingEvictsOldestAndCountsDropped)
{
    TraceSink sink(2);
    TraceChannel *c = sink.channel("ring");
    c->emit(1, "one");
    c->emit(2, "two");
    c->emit(3, "three");
    ASSERT_EQ(c->events().size(), 2u);
    EXPECT_EQ(c->events()[0].text, "two");
    EXPECT_EQ(c->events()[1].text, "three");
    // Sequence numbers keep advancing past the eviction.
    EXPECT_EQ(c->events()[1].seq, 2u);
    EXPECT_EQ(c->dropped(), 1u);
    EXPECT_EQ(c->emitted(), 3u);
    EXPECT_EQ(sink.totalEvents(), 2u);
    EXPECT_EQ(sink.totalDropped(), 1u);
}

TEST(Trace, MergedSortsByTickNameSeq)
{
    TraceSink sink;
    // Register out of name order on purpose.
    TraceChannel *b = sink.channel("b");
    TraceChannel *a = sink.channel("a");
    b->emit(1, "b-first");
    b->emit(1, "b-second");
    a->emit(1, "a-one");
    a->emit(2, "a-two");

    auto entries = sink.merged();
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[0].event->text, "a-one");
    EXPECT_EQ(entries[1].event->text, "b-first");
    EXPECT_EQ(entries[2].event->text, "b-second");
    EXPECT_EQ(entries[3].event->text, "a-two");
}

TEST(Trace, MergedIsIndependentOfRegistrationOrder)
{
    TraceSink fwd, rev;
    TraceChannel *f1 = fwd.channel("EC/0");
    TraceChannel *f2 = fwd.channel("SM/0");
    TraceChannel *r2 = rev.channel("SM/0");
    TraceChannel *r1 = rev.channel("EC/0");
    for (TraceChannel *c : {f1, r1}) {
        c->emit(0, "p-state up");
        c->emit(5, "p-state down");
    }
    for (TraceChannel *c : {f2, r2})
        c->emit(5, "budget clamp");

    std::ostringstream of, orv;
    fwd.writeCsv(of);
    rev.writeCsv(orv);
    EXPECT_EQ(of.str(), orv.str());
}

TEST(Trace, FilterSelectsChannelsBySubstring)
{
    TraceSink sink;
    sink.setFilter("SM/");
    EXPECT_NE(sink.channel("SM/3"), nullptr);
    EXPECT_EQ(sink.channel("EC/3"), nullptr);
    EXPECT_EQ(sink.channel("GM/group"), nullptr);
    EXPECT_EQ(sink.numChannels(), 1u);
}

TEST(Trace, CsvFormat)
{
    TraceSink sink;
    TraceChannel *c = sink.channel("SM/0");
    c->emit(1, "grant 10W");
    c->emit(2, "clamp, then grant"); // comma forces RFC-4180 quoting
    std::ostringstream out;
    sink.writeCsv(out);
    EXPECT_EQ(out.str(),
              "tick,channel,seq,event\n"
              "1,SM/0,0,grant 10W\n"
              "2,SM/0,1,\"clamp, then grant\"\n");
}

TEST(TraceDeath, DuplicateChannelIsFatal)
{
    TraceSink sink;
    sink.channel("dup");
    EXPECT_DEATH(sink.channel("dup"), "twice");
}

TEST(TraceDeath, FilterAfterChannelIsFatal)
{
    TraceSink sink;
    sink.channel("early");
    EXPECT_DEATH(sink.setFilter("x"), "before");
}

TEST(TraceDeath, ZeroCapacityIsFatal)
{
    EXPECT_DEATH(TraceSink sink(0), "capacity");
}

} // namespace
