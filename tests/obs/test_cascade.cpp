/**
 * @file
 * End-to-end invariance of the causal budget-cascade trace
 * (docs/OBSERVABILITY.md): the merged cascade CSV written by
 * `npsim --cascade` must be byte-identical at every thread count, and
 * identical between the single-process plan runtime and the real
 * multi-process distributed runtime — the trace records the causal
 * order of the budget protocol, not the schedule that happened to
 * execute it.
 *
 * Drives the real binaries (NPS_NPSIM_BIN, injected by the build;
 * npsnode is found next to npsim). Skips when the macro is absent.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef NPS_NPSIM_BIN
#define NPS_NPSIM_BIN ""
#endif

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class CascadeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        npsim_ = NPS_NPSIM_BIN;
        if (npsim_.empty())
            GTEST_SKIP() << "binary paths not wired into this build";
        ASSERT_EQ(::access(npsim_.c_str(), X_OK), 0)
            << npsim_ << " is not executable";
        char tmpl[] = "/tmp/nps-cascade-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void TearDown() override
    {
        if (!dir_.empty())
            std::system(("rm -rf '" + dir_ + "'").c_str());
    }

    int runNpsim(const std::string &args, const std::string &log)
    {
        std::string cmd =
            npsim_ + " " + args + " > " + dir_ + "/" + log + " 2>&1";
        int status = std::system(cmd.c_str());
        if (status == -1 || !WIFEXITED(status))
            return -1;
        return WEXITSTATUS(status);
    }

    /** The 3-node plan of tests/integration/test_dist_equiv.cpp, plus
     * an [obs] section arming the registry and the cascade tracer. */
    std::string writeObsPlan(const std::string &name, size_t ticks)
    {
        std::string path = dir_ + "/" + name + ".plan";
        std::ofstream out(path);
        out << "[dist]\n"
            << "socket = " << dir_ << "/" << name << ".sock\n"
            << "timeout_ms = 60000\n"
            << "[run]\n"
            << "scenario = coordinated\n"
            << "mix = 60M\n"
            << "ticks = " << ticks << "\n"
            << "[node group]\nlevels = gm:*\n"
            << "[node enclosures]\nlevels = em:*\n"
            << "[node vms]\nlevels = vmc\n"
            << "[obs]\n"
            << "metrics_every = 5\n"
            << "cascade = true\n";
        return path;
    }

    std::string npsim_;
    std::string dir_;
};

TEST_F(CascadeTest, CsvIsByteIdenticalAcrossThreadCounts)
{
    const std::string common =
        "--scenario coordinated --mix 60M --ticks 240 --log-level warn ";
    std::string ref;
    for (int threads : {1, 4, 8}) {
        std::string name = "t" + std::to_string(threads);
        std::string csv = dir_ + "/" + name + ".csv";
        ASSERT_EQ(runNpsim(common + "--threads " +
                               std::to_string(threads) + " --cascade " +
                               csv,
                           name + ".log"),
                  0)
            << readFile(dir_ + "/" + name + ".log");
        std::string got = readFile(csv);
        ASSERT_NE(got.find("tick,link,kind,seq,trace,root_tick,"
                           "hop_latency,value,delivered"),
                  std::string::npos)
            << "unexpected CSV header at threads=" << threads;
        // A coordinated run must actually cascade: header plus hops.
        ASSERT_GT(got.size(), 100u) << "empty trace at threads="
                                    << threads;
        if (threads == 1)
            ref = got;
        else
            EXPECT_TRUE(got == ref)
                << "cascade CSV diverges at threads=" << threads;
    }
}

TEST_F(CascadeTest, PlanAndDistributedRuntimesAgree)
{
    const size_t ticks = 240;
    std::string plan = writeObsPlan("obs", ticks);
    ASSERT_EQ(runNpsim("--plan " + plan + " --cascade " + dir_ +
                           "/plan.csv --record " + dir_ + "/plan-rec.csv",
                       "plan.log"),
              0)
        << readFile(dir_ + "/plan.log");
    ASSERT_EQ(runNpsim("--distributed " + plan + " --cascade " + dir_ +
                           "/dist.csv --record " + dir_ +
                           "/dist-rec.csv",
                       "dist.log"),
              0)
        << readFile(dir_ + "/dist.log");

    std::string plan_csv = readFile(dir_ + "/plan.csv");
    ASSERT_GT(plan_csv.size(), 100u);
    // The distributed tracer saw the same hops in the same causal
    // order, even though its links are sockets between processes.
    EXPECT_TRUE(plan_csv == readFile(dir_ + "/dist.csv"))
        << "cascade CSV diverges between --plan and --distributed";
    // And tracing never perturbed the simulation itself.
    EXPECT_TRUE(readFile(dir_ + "/plan-rec.csv") ==
                readFile(dir_ + "/dist-rec.csv"))
        << "recorder CSV diverges between --plan and --distributed";
}

} // namespace
