/**
 * @file
 * End-to-end tests for the live observability endpoints
 * (docs/OBSERVABILITY.md): a scrape taken while the engine is mid-run
 * must be well-formed Prometheus text; the final scrape during the
 * linger window must be byte-identical to the end-of-run --metrics
 * export; and running with the live plane armed must not change one
 * byte of the simulation's outputs.
 *
 * Drives the real npsim binary (NPS_NPSIM_BIN, injected by the build)
 * and speaks HTTP/1.0 over a unix socket directly, like tools/npsfetch.
 * Skips when the macro is absent.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stream/net.h"

namespace {

#ifndef NPS_NPSIM_BIN
#define NPS_NPSIM_BIN ""
#endif

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** One HTTP/1.0 GET; @return the body, status line in @p status. */
std::string
httpGet(const std::string &spec, const std::string &path,
        std::string *status)
{
    int fd = nps::stream::connectTo(spec, 5000);
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    nps::stream::writeAll(fd, req.data(), req.size());
    ::shutdown(fd, SHUT_WR);
    std::string response;
    char buf[4096];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n <= 0)
            break;
        response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    size_t eol = response.find("\r\n");
    size_t split = response.find("\r\n\r\n");
    if (eol == std::string::npos || split == std::string::npos) {
        *status = "";
        return "";
    }
    *status = response.substr(0, eol);
    return response.substr(split + 4);
}

/** Every non-comment exposition line must be `name[{labels}] value`
 * with a parseable value. @return the first malformed line, or "". */
std::string
firstMalformedPromLine(const std::string &body)
{
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        size_t sp = line.rfind(' ');
        if (sp == std::string::npos || sp == 0 ||
            sp + 1 == line.size())
            return line;
        char *end = nullptr;
        std::strtod(line.c_str() + sp + 1, &end);
        if (end == line.c_str() + sp + 1)
            return line;
        const std::string name = line.substr(0, line.find_first_of("{ "));
        if (name.find("nps_") != 0)
            return line;
    }
    return "";
}

class LiveHttpTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        npsim_ = NPS_NPSIM_BIN;
        if (npsim_.empty())
            GTEST_SKIP() << "binary paths not wired into this build";
        ASSERT_EQ(::access(npsim_.c_str(), X_OK), 0)
            << npsim_ << " is not executable";
        char tmpl[] = "/tmp/nps-live-http-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void TearDown() override
    {
        if (child_ > 0) {
            ::kill(child_, SIGKILL);
            ::waitpid(child_, nullptr, 0);
        }
        if (!dir_.empty())
            std::system(("rm -rf '" + dir_ + "'").c_str());
    }

    int runNpsim(const std::string &args, const std::string &log)
    {
        std::string cmd =
            npsim_ + " " + args + " > " + dir_ + "/" + log + " 2>&1";
        int status = std::system(cmd.c_str());
        if (status == -1 || !WIFEXITED(status))
            return -1;
        return WEXITSTATUS(status);
    }

    /** Fork+exec npsim with @p args, output to @p log. */
    void spawnNpsim(const std::vector<std::string> &args,
                    const std::string &log)
    {
        child_ = ::fork();
        ASSERT_GE(child_, 0);
        if (child_ == 0) {
            std::string out = dir_ + "/" + log;
            if (!std::freopen(out.c_str(), "w", stdout) ||
                !std::freopen(out.c_str(), "w", stderr))
                _exit(127);
            std::vector<char *> argv;
            argv.push_back(const_cast<char *>(npsim_.c_str()));
            for (const std::string &a : args)
                argv.push_back(const_cast<char *>(a.c_str()));
            argv.push_back(nullptr);
            ::execv(npsim_.c_str(), argv.data());
            _exit(127);
        }
    }

    /** Reap the child; @return its exit code (-1 on abnormal exit). */
    int waitChild()
    {
        int status = 0;
        ::waitpid(child_, &status, 0);
        child_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    std::string npsim_;
    std::string dir_;
    pid_t child_ = -1;
};

TEST_F(LiveHttpTest, ScrapeUnderLoadAndFinalScrapeEqualsExport)
{
    const std::string sock = "unix:" + dir_ + "/live.sock";
    const std::string exported = dir_ + "/metrics.prom";
    spawnNpsim({"--scenario", "coordinated", "--mix", "60L", "--ticks",
                "20000", "--log-level", "warn", "--http", sock,
                "--http-linger", "30000", "--metrics", exported},
               "live.log");

    // Mid-run: /healthz answers with a live tick (connectTo retries
    // until the exporter binds; the first publish lands a tick later).
    std::string status, health;
    for (int i = 0; i < 200; ++i) {
        health = httpGet(sock, "/healthz", &status);
        if (status.find(" 200 ") != std::string::npos)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_NE(status.find(" 200 "), std::string::npos)
        << status << readFile(dir_ + "/live.log");
    EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos)
        << health;
    EXPECT_NE(health.find("\"final\": false"), std::string::npos)
        << "scrape landed after the run ended — raise --ticks: "
        << health;

    // Mid-run /metrics: a full, well-formed exposition.
    std::string mid = httpGet(sock, "/metrics", &status);
    ASSERT_NE(status.find(" 200 "), std::string::npos) << status;
    EXPECT_EQ(firstMalformedPromLine(mid), "");
    EXPECT_NE(mid.find("# TYPE nps_rt_tick_wall_ms histogram"),
              std::string::npos);
    EXPECT_NE(mid.find("nps_run_mean_power_watts"), std::string::npos);

    // End of run: the final published snapshot must equal the export
    // byte for byte (the export file appears atomically).
    bool final_seen = false;
    for (int i = 0; i < 300 && !final_seen; ++i) {
        health = httpGet(sock, "/healthz", &status);
        final_seen =
            health.find("\"final\": true") != std::string::npos &&
            !readFile(exported).empty();
        if (!final_seen)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_TRUE(final_seen) << readFile(dir_ + "/live.log");
    std::string last = httpGet(sock, "/metrics", &status);
    ASSERT_NE(status.find(" 200 "), std::string::npos) << status;
    EXPECT_TRUE(last == readFile(exported))
        << "final scrape differs from the --metrics export";

    httpGet(sock, "/quitz", &status);
    EXPECT_EQ(waitChild(), 0) << readFile(dir_ + "/live.log");
}

TEST_F(LiveHttpTest, LivePlaneDoesNotPerturbTheSimulation)
{
    const std::string common =
        "--scenario coordinated --mix 60M --ticks 240 --log-level warn ";
    ASSERT_EQ(runNpsim(common + "--record " + dir_ + "/off.csv",
                       "off.log"),
              0)
        << readFile(dir_ + "/off.log");
    std::string off = readFile(dir_ + "/off.csv");
    ASSERT_FALSE(off.empty());

    // Same run with the whole plane armed — registry, cascade tracer,
    // HTTP endpoint — across thread counts.
    for (int threads : {1, 4, 8}) {
        std::string name = "on" + std::to_string(threads);
        ASSERT_EQ(runNpsim(common + "--threads " +
                               std::to_string(threads) + " --record " +
                               dir_ + "/" + name + ".csv --metrics " +
                               dir_ + "/" + name + ".prom --cascade " +
                               dir_ + "/" + name + "-cascade.csv" +
                               " --http unix:" + dir_ + "/" + name +
                               ".sock",
                           name + ".log"),
                  0)
            << readFile(dir_ + "/" + name + ".log");
        EXPECT_TRUE(readFile(dir_ + "/" + name + ".csv") == off)
            << "recorder CSV changed with the live plane on, threads="
            << threads;
    }
}

} // namespace
