/**
 * @file
 * Unit tests for cross-rank metric aggregation (obs/live/agg.h): the
 * 'M'-frame snapshot codec, the deterministic digest that powers the
 * supervisor's desync check, the diff diagnostic that names the first
 * divergent series, and the rank-labelled FleetView export.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/live/agg.h"
#include "obs/metrics.h"

namespace {

using namespace nps::obs;
using namespace nps::obs::live;

/** Wire a small registry: one counter, one gauge, one histogram, plus
 * a runtime family that legitimately differs per rank. */
void
wire(MetricsRegistry &reg, double grants, double depth, double wall_ms)
{
    reg.counter("nps_test_grants_total", "EM/0", "Grants issued")
        ->add(grants);
    reg.gauge("nps_test_depth", "", "Queue depth")->set(depth);
    reg.histogram("nps_test_latency", "EM/0", "Grant latency",
                  {1.0, 10.0, 100.0})
        ->observe(5.0);
    reg.histogram("nps_rt_test_wall_ms", "rank0", "Wall-clock cost",
                  MetricsRegistry::runtimeMsBounds())
        ->observe(wall_ms);
}

RankSnapshot
snapshotOf(const MetricsRegistry &reg, uint32_t rank, uint64_t tick)
{
    const std::string bytes = encodeSnapshot(reg);
    return decodeSnapshot(rank,
                          tick,
                          reinterpret_cast<const uint8_t *>(bytes.data()),
                          bytes.size());
}

TEST(LiveAgg, EncodeDecodeRoundTrip)
{
    MetricsRegistry reg;
    wire(reg, 6.0, 3.0, 0.25);
    RankSnapshot snap = snapshotOf(reg, 3, 41);

    EXPECT_EQ(snap.rank, 3u);
    EXPECT_EQ(snap.tick, 41u);
    EXPECT_EQ(snap.digest, registryDigest(reg));
    ASSERT_EQ(snap.series.size(), 4u);

    // Runtime families ride along in the payload (the fleet view wants
    // them rank-labelled) even though the digest excludes them.
    bool saw_rt = false;
    for (const RankSnapshot::Series &s : snap.series) {
        if (s.family == "nps_rt_test_wall_ms")
            saw_rt = true;
        if (s.family == "nps_test_latency") {
            EXPECT_EQ(s.kind, MetricsRegistry::Kind::Histogram);
            EXPECT_EQ(s.count, 1u);
            EXPECT_DOUBLE_EQ(s.sum, 5.0);
            ASSERT_EQ(s.bounds.size(), 3u);
            EXPECT_DOUBLE_EQ(s.bounds[1], 10.0);
        }
        if (s.family == "nps_test_grants_total")
            EXPECT_DOUBLE_EQ(s.value, 6.0);
    }
    EXPECT_TRUE(saw_rt);
}

TEST(LiveAgg, DigestIgnoresRuntimeFamiliesOnly)
{
    MetricsRegistry a, b, c;
    wire(a, 6.0, 3.0, 0.25);
    wire(b, 6.0, 3.0, 99.0); // same deterministic state, other wall time
    wire(c, 7.0, 3.0, 0.25); // one deterministic counter diverged

    EXPECT_EQ(registryDigest(a), registryDigest(b));
    EXPECT_NE(registryDigest(a), registryDigest(c));
}

TEST(LiveAgg, DiffNamesTheFirstDivergentSeries)
{
    MetricsRegistry a, b;
    wire(a, 6.0, 3.0, 0.25);
    wire(b, 7.0, 3.0, 42.0);
    RankSnapshot sa = snapshotOf(a, 1, 10);
    RankSnapshot sb = snapshotOf(b, 0, 10);

    std::string what = diffSnapshots(sa, sb);
    EXPECT_NE(what.find("nps_test_grants_total"), std::string::npos)
        << what;
    // Runtime families must never be blamed: they differ by design.
    EXPECT_EQ(what.find("nps_rt_"), std::string::npos) << what;
}

TEST(LiveAgg, DiffIsEmptyWhenOnlyRuntimeStateDiffers)
{
    MetricsRegistry a, b;
    wire(a, 6.0, 3.0, 0.25);
    wire(b, 6.0, 3.0, 500.0);
    RankSnapshot sa = snapshotOf(a, 1, 10);
    RankSnapshot sb = snapshotOf(b, 0, 10);

    EXPECT_EQ(sa.digest, sb.digest);
    EXPECT_EQ(diffSnapshots(sa, sb), "");
}

TEST(LiveAgg, FleetViewLabelsEverySeriesWithItsRank)
{
    MetricsRegistry a, b;
    wire(a, 6.0, 3.0, 0.25);
    wire(b, 6.0, 3.0, 1.5);

    FleetView fleet;
    fleet.update(snapshotOf(a, 0, 10));
    fleet.update(snapshotOf(b, 1, 12));
    EXPECT_EQ(fleet.numRanks(), 2u);
    EXPECT_EQ(fleet.tickOf(0), 10);
    EXPECT_EQ(fleet.tickOf(1), 12);
    EXPECT_EQ(fleet.tickOf(7), -1);

    std::ostringstream out;
    fleet.writeProm(out);
    const std::string prom = out.str();
    EXPECT_NE(prom.find("rank=\"0\""), std::string::npos);
    EXPECT_NE(prom.find("rank=\"1\""), std::string::npos);
    EXPECT_NE(prom.find("nps_fleet_snapshot_tick{rank=\"0\"} 10"),
              std::string::npos)
        << prom;
    EXPECT_NE(prom.find("nps_fleet_snapshot_tick{rank=\"1\"} 12"),
              std::string::npos)
        << prom;

    // Rendering is a pure function of the merged state.
    std::ostringstream again;
    fleet.writeProm(again);
    EXPECT_EQ(prom, again.str());
}

TEST(LiveAgg, FleetViewUpdateReplacesARankWholesale)
{
    MetricsRegistry a, b;
    wire(a, 6.0, 3.0, 0.25);
    wire(b, 8.0, 1.0, 0.25);

    FleetView fleet;
    fleet.update(snapshotOf(a, 2, 10));
    fleet.update(snapshotOf(b, 2, 20));
    EXPECT_EQ(fleet.numRanks(), 1u);
    EXPECT_EQ(fleet.tickOf(2), 20);

    std::ostringstream out;
    fleet.writeProm(out);
    EXPECT_NE(out.str().find("nps_test_grants_total"),
              std::string::npos);
    EXPECT_EQ(out.str().find(" 6\n"), std::string::npos)
        << "stale rank-2 state survived the update:\n"
        << out.str();
}

} // namespace
