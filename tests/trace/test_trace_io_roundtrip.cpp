/**
 * @file
 * Trace I/O round-trip property: for any trace set, write -> read ->
 * write produces byte-identical text. The first write canonicalizes the
 * numbers; from then on the serialized form must be a fixed point, or
 * archived campaigns would drift every time they pass through the tools.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "trace/generator.h"
#include "trace/trace_io.h"

namespace {

using namespace nps::trace;

std::string
serialize(const std::vector<UtilizationTrace> &traces)
{
    std::ostringstream out;
    writeTraces(out, traces);
    return out.str();
}

/** The property under test: serialize(parse(serialize(x))) is stable. */
void
expectFixedPoint(const std::vector<UtilizationTrace> &traces)
{
    std::string first = serialize(traces);
    std::vector<UtilizationTrace> back = parseTraces(first);
    std::string second = serialize(back);
    EXPECT_EQ(first, second);

    // And the parse itself preserved structure.
    ASSERT_EQ(back.size(), traces.size());
    for (size_t i = 0; i < traces.size(); ++i) {
        EXPECT_EQ(back[i].name(), traces[i].name());
        EXPECT_EQ(back[i].workloadClass(), traces[i].workloadClass());
        EXPECT_EQ(back[i].length(), traces[i].length());
    }
}

TEST(TraceIoRoundTrip, EmptyTraceSet)
{
    std::vector<UtilizationTrace> none;
    std::string text = serialize(none);
    // Header only; parses back to zero traces and stays stable.
    EXPECT_EQ(parseTraces(text).size(), 0u);
    EXPECT_EQ(serialize(parseTraces(text)), text);
}

TEST(TraceIoRoundTrip, SingleSampleTrace)
{
    expectFixedPoint(
        {UtilizationTrace("solo", WorkloadClass::WebServer, {0.42})});
}

TEST(TraceIoRoundTrip, SaturatedAndIdleUtilization)
{
    // The extremes: pegged at 1.0, parked at 0.0, and values straddling
    // both rails.
    expectFixedPoint({
        UtilizationTrace("pegged", WorkloadClass::Database,
                         {1.0, 1.0, 1.0, 1.0}),
        UtilizationTrace("idle", WorkloadClass::WebServer,
                         {0.0, 0.0, 0.0}),
        UtilizationTrace("railing", WorkloadClass::Batch,
                         {0.0, 1.0, 0.0, 1.0, 1.0, 0.0}),
    });
}

TEST(TraceIoRoundTrip, AwkwardNamesAndValues)
{
    expectFixedPoint({
        UtilizationTrace("comma,name", WorkloadClass::WebServer,
                         {0.1, 0.2}),
        UtilizationTrace("quoted \"name\"", WorkloadClass::Database,
                         {0.3333333333333333, 0.6666666666666666}),
        UtilizationTrace("tiny", WorkloadClass::Batch,
                         {1e-9, 0.1234567891234, 0.9999999999}),
    });
}

TEST(TraceIoRoundTrip, GeneratedCampaignsAreFixedPoints)
{
    for (uint64_t seed : {1ull, 7ull, 42ull}) {
        GeneratorConfig cfg;
        cfg.seed = seed;
        cfg.num_enterprises = 2;
        cfg.servers_per_enterprise = 3;
        cfg.trace_length = 128;
        expectFixedPoint(TraceGenerator(cfg).generateAll());
    }
}

TEST(TraceIoRoundTrip, RaggedLengthsSurvive)
{
    std::vector<UtilizationTrace> traces;
    for (size_t n = 1; n <= 5; ++n) {
        traces.emplace_back("t" + std::to_string(n),
                            WorkloadClass::WebServer,
                            std::vector<double>(n, 0.5));
    }
    expectFixedPoint(traces);
}

} // namespace
