/**
 * @file
 * Tests for the workload mixes of Section 4.3.
 */

#include <gtest/gtest.h>

#include "trace/workload.h"

namespace {

using namespace nps::trace;

class WorkloadLibraryTest : public ::testing::Test
{
  protected:
    static GeneratorConfig
    config()
    {
        GeneratorConfig cfg;
        cfg.trace_length = 576;
        return cfg;
    }

    WorkloadLibrary lib_{config()};
};

TEST_F(WorkloadLibraryTest, MixSizes)
{
    EXPECT_EQ(lib_.mix(Mix::All180).size(), 180u);
    for (Mix m : {Mix::Low60, Mix::Mid60, Mix::High60, Mix::HH60,
                  Mix::HHH60}) {
        EXPECT_EQ(lib_.mix(m).size(), 60u);
    }
}

TEST_F(WorkloadLibraryTest, UtilizationOrdering)
{
    // The paper's activity ladder: 60L < 60M < 60H < 60HH < 60HHH.
    double l = lib_.mixMeanUtil(Mix::Low60);
    double m = lib_.mixMeanUtil(Mix::Mid60);
    double h = lib_.mixMeanUtil(Mix::High60);
    double hh = lib_.mixMeanUtil(Mix::HH60);
    double hhh = lib_.mixMeanUtil(Mix::HHH60);
    EXPECT_LT(l, m);
    EXPECT_LT(m, h);
    EXPECT_LT(h, hh);
    EXPECT_LT(hh, hhh);
}

TEST_F(WorkloadLibraryTest, LowMixContainsLowestTraces)
{
    auto low = lib_.mix(Mix::Low60);
    auto high = lib_.mix(Mix::High60);
    double low_max = 0.0;
    for (const auto &t : low)
        low_max = std::max(low_max, t.mean());
    double high_min = 1e9;
    for (const auto &t : high)
        high_min = std::min(high_min, t.mean());
    EXPECT_LE(low_max, high_min);
}

TEST_F(WorkloadLibraryTest, StackedMixesAreStacks)
{
    // HH traces must exceed any single real trace's mean on average.
    double hh = lib_.mixMeanUtil(Mix::HH60);
    double h = lib_.mixMeanUtil(Mix::High60);
    EXPECT_GT(hh, h * 1.3);
}

TEST_F(WorkloadLibraryTest, All180IsGenerationOrder)
{
    auto all = lib_.mix(Mix::All180);
    EXPECT_EQ(all[0].name(), lib_.all()[0].name());
    EXPECT_EQ(all[179].name(), lib_.all()[179].name());
}

TEST_F(WorkloadLibraryTest, MixNames)
{
    EXPECT_STREQ(mixName(Mix::All180), "180");
    EXPECT_STREQ(mixName(Mix::Low60), "60L");
    EXPECT_STREQ(mixName(Mix::HHH60), "60HHH");
    EXPECT_EQ(allMixes().size(), 6u);
    EXPECT_EQ(mixSize(Mix::All180), 180u);
    EXPECT_EQ(mixSize(Mix::HH60), 60u);
}

TEST(WorkloadLibrary, AdoptedTraces)
{
    std::vector<UtilizationTrace> traces;
    for (int i = 0; i < 3; ++i) {
        traces.emplace_back("t" + std::to_string(i),
                            WorkloadClass::Batch,
                            std::vector<double>{0.1, 0.2});
    }
    WorkloadLibrary lib(traces);
    EXPECT_EQ(lib.all().size(), 3u);
    // 60-trace mixes need a full campaign.
    EXPECT_DEATH(lib.mix(Mix::Low60), "full 180-trace campaign");
}

TEST(WorkloadLibrary, EmptyTraceSetDies)
{
    EXPECT_DEATH(WorkloadLibrary{std::vector<UtilizationTrace>{}},
                 "empty trace set");
}

} // namespace
