/**
 * @file
 * Tests for the synthetic enterprise trace generator: determinism,
 * bounds, and the statistical envelope the paper describes ("relatively
 * low utilization, 15-50% in most cases").
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/generator.h"

namespace {

using namespace nps::trace;

GeneratorConfig
smallConfig()
{
    GeneratorConfig cfg;
    cfg.trace_length = 576;
    return cfg;
}

TEST(Generator, Deterministic)
{
    TraceGenerator gen(smallConfig());
    auto a = gen.generate(3, 7, defaultProfile(WorkloadClass::WebServer));
    auto b = gen.generate(3, 7, defaultProfile(WorkloadClass::WebServer));
    ASSERT_EQ(a.length(), b.length());
    for (size_t t = 0; t < a.length(); ++t)
        EXPECT_DOUBLE_EQ(a.at(t), b.at(t));
}

TEST(Generator, DistinctServersDiffer)
{
    TraceGenerator gen(smallConfig());
    auto a = gen.generate(3, 7, defaultProfile(WorkloadClass::WebServer));
    auto b = gen.generate(3, 8, defaultProfile(WorkloadClass::WebServer));
    int same = 0;
    for (size_t t = 0; t < a.length(); ++t)
        same += a.at(t) == b.at(t) ? 1 : 0;
    EXPECT_LT(static_cast<double>(same), 0.1 * a.length());
}

TEST(Generator, SamplesWithinProfileBounds)
{
    TraceGenerator gen(smallConfig());
    for (size_t c = 0; c < kNumWorkloadClasses; ++c) {
        auto p = defaultProfile(static_cast<WorkloadClass>(c));
        auto t = gen.generate(0, static_cast<unsigned>(c), p);
        for (size_t i = 0; i < t.length(); ++i) {
            EXPECT_GE(t.at(i), p.floor_util);
            EXPECT_LE(t.at(i), p.ceil_util);
        }
    }
}

TEST(Generator, CampaignSizeAndNames)
{
    TraceGenerator gen(smallConfig());
    auto all = gen.generateAll();
    EXPECT_EQ(all.size(), 180u);
    EXPECT_EQ(all[0].name().rfind("site0/", 0), 0u);
    EXPECT_EQ(all[179].name().rfind("site8/", 0), 0u);
    // Every trace is non-trivial.
    for (const auto &t : all) {
        EXPECT_EQ(t.length(), 576u);
        EXPECT_GT(t.mean(), 0.0);
    }
}

TEST(Generator, PopulationEnvelopeMatchesPaper)
{
    // "Most of our workload traces ... show relatively low utilization
    // (15-50% in most cases)."
    GeneratorConfig cfg;
    TraceGenerator gen(cfg);
    auto all = gen.generateAll();
    int in_band = 0;
    for (const auto &t : all)
        in_band += (t.mean() >= 0.10 && t.mean() <= 0.55) ? 1 : 0;
    EXPECT_GT(in_band, 150);  // "in most cases"
    double pop_mean = 0.0;
    for (const auto &t : all)
        pop_mean += t.mean();
    pop_mean /= static_cast<double>(all.size());
    EXPECT_GT(pop_mean, 0.15);
    EXPECT_LT(pop_mean, 0.40);
}

TEST(Generator, DiurnalPatternPresent)
{
    // A remote-desktop trace must show a business-hours hump: the mean
    // over the "busy" half of the day differs from the "quiet" half.
    GeneratorConfig cfg;
    cfg.trace_length = cfg.ticks_per_day * 4;
    TraceGenerator gen(cfg);
    auto t = gen.generate(0, 0,
                          defaultProfile(WorkloadClass::RemoteDesktop));
    double half = static_cast<double>(cfg.ticks_per_day) / 2.0;
    double first = 0.0, second = 0.0;
    for (size_t i = 0; i < t.length(); ++i) {
        if (i % cfg.ticks_per_day < half)
            first += t.at(i);
        else
            second += t.at(i);
    }
    EXPECT_GT(std::fabs(first - second) / (first + second), 0.05);
}

TEST(Generator, ClassesHaveDistinctBaselines)
{
    auto db = defaultProfile(WorkloadClass::Database);
    auto file = defaultProfile(WorkloadClass::FileServer);
    EXPECT_GT(db.base_util, file.base_util);
}

TEST(Generator, InvalidConfigsDie)
{
    GeneratorConfig cfg;
    cfg.trace_length = 0;
    EXPECT_DEATH(TraceGenerator{cfg}, "zero trace length");
    GeneratorConfig cfg2;
    cfg2.ticks_per_day = 0;
    EXPECT_DEATH(TraceGenerator{cfg2}, "zero ticks per day");
    GeneratorConfig cfg3;
    cfg3.num_enterprises = 0;
    EXPECT_DEATH(TraceGenerator{cfg3}, "empty campaign");
}

TEST(Generator, SeedChangesCampaign)
{
    GeneratorConfig a = smallConfig();
    GeneratorConfig b = smallConfig();
    b.seed = a.seed + 1;
    auto ta = TraceGenerator(a).generate(
        0, 0, defaultProfile(WorkloadClass::WebServer));
    auto tb = TraceGenerator(b).generate(
        0, 0, defaultProfile(WorkloadClass::WebServer));
    int same = 0;
    for (size_t t = 0; t < ta.length(); ++t)
        same += ta.at(t) == tb.at(t) ? 1 : 0;
    EXPECT_LT(static_cast<double>(same), 0.1 * ta.length());
}

} // namespace
