/**
 * @file
 * Tests for trace CSV import/export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.h"
#include "trace/trace_io.h"

namespace {

using namespace nps::trace;

std::vector<UtilizationTrace>
sampleTraces()
{
    return {
        UtilizationTrace("a", WorkloadClass::WebServer, {0.1, 0.2, 0.3}),
        UtilizationTrace("b,with comma", WorkloadClass::Database,
                         {0.5, 0.6}),
    };
}

TEST(TraceIo, RoundTrip)
{
    std::ostringstream out;
    writeTraces(out, sampleTraces());
    auto back = parseTraces(out.str());
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name(), "a");
    EXPECT_EQ(back[0].workloadClass(), WorkloadClass::WebServer);
    ASSERT_EQ(back[0].length(), 3u);
    EXPECT_DOUBLE_EQ(back[0].at(1), 0.2);
    EXPECT_EQ(back[1].name(), "b,with comma");
    EXPECT_EQ(back[1].workloadClass(), WorkloadClass::Database);
    EXPECT_DOUBLE_EQ(back[1].at(1), 0.6);
}

TEST(TraceIo, GeneratedCampaignRoundTrip)
{
    GeneratorConfig cfg;
    cfg.num_enterprises = 2;
    cfg.servers_per_enterprise = 3;
    cfg.trace_length = 50;
    auto traces = TraceGenerator(cfg).generateAll();
    std::ostringstream out;
    writeTraces(out, traces);
    auto back = parseTraces(out.str());
    ASSERT_EQ(back.size(), traces.size());
    for (size_t i = 0; i < traces.size(); ++i) {
        EXPECT_EQ(back[i].name(), traces[i].name());
        for (size_t t = 0; t < traces[i].length(); ++t)
            EXPECT_NEAR(back[i].at(t), traces[i].at(t), 1e-9);
    }
}

TEST(TraceIo, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "/nps_traces.csv";
    writeTracesFile(path, sampleTraces());
    auto back = readTracesFile(path);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name(), "a");
}

TEST(TraceIo, MissingFileDies)
{
    EXPECT_DEATH(readTracesFile("/nonexistent/nps.csv"), "cannot open");
}

TEST(TraceIo, BadHeaderDies)
{
    EXPECT_DEATH(parseTraces("foo,bar\n"), "header");
}

TEST(TraceIo, EmptyDocumentDies)
{
    EXPECT_DEATH(parseTraces(""), "empty document");
}

TEST(TraceIo, OutOfOrderTicksDie)
{
    std::string text = "name,class,tick,util\n"
                       "a,web,0,0.1\n"
                       "a,web,2,0.2\n";
    EXPECT_DEATH(parseTraces(text), "out of order");
}

TEST(TraceIo, UnknownClassDies)
{
    std::string text = "name,class,tick,util\n"
                       "a,mainframe,0,0.1\n";
    EXPECT_DEATH(parseTraces(text), "unknown class");
}

TEST(TraceIo, ClassNameRoundTrip)
{
    for (size_t c = 0; c < kNumWorkloadClasses; ++c) {
        auto wc = static_cast<WorkloadClass>(c);
        EXPECT_EQ(workloadClassFromName(workloadClassName(wc)), wc);
    }
}

} // namespace
