/**
 * @file
 * Tests for utilization traces: wraparound, statistics, scaling, and the
 * stacking operator used to build the high-activity mixes.
 */

#include <gtest/gtest.h>

#include "trace/trace.h"

namespace {

using nps::trace::UtilizationTrace;
using nps::trace::WorkloadClass;

UtilizationTrace
make(std::vector<double> v)
{
    return UtilizationTrace("t", WorkloadClass::WebServer, std::move(v));
}

TEST(Trace, BasicAccessors)
{
    auto t = make({0.1, 0.2, 0.3});
    EXPECT_EQ(t.name(), "t");
    EXPECT_EQ(t.workloadClass(), WorkloadClass::WebServer);
    EXPECT_EQ(t.length(), 3u);
    EXPECT_FALSE(t.empty());
    EXPECT_DOUBLE_EQ(t.at(1), 0.2);
}

TEST(Trace, WrapsAround)
{
    auto t = make({0.1, 0.2, 0.3});
    EXPECT_DOUBLE_EQ(t.at(3), 0.1);
    EXPECT_DOUBLE_EQ(t.at(7), 0.2);
}

TEST(Trace, EmptyAtDies)
{
    UtilizationTrace t;
    EXPECT_TRUE(t.empty());
    EXPECT_DEATH(t.at(0), "empty");
}

TEST(Trace, NegativeSampleDies)
{
    EXPECT_DEATH(make({0.1, -0.2}), "negative");
}

TEST(Trace, MeanAndPeak)
{
    auto t = make({0.1, 0.2, 0.3, 0.8});
    EXPECT_NEAR(t.mean(), 0.35, 1e-12);
    EXPECT_DOUBLE_EQ(t.peak(), 0.8);
}

TEST(Trace, EmptyMeanPeakZero)
{
    UtilizationTrace t;
    EXPECT_EQ(t.mean(), 0.0);
    EXPECT_EQ(t.peak(), 0.0);
}

TEST(Trace, Scaled)
{
    auto t = make({0.2, 0.4}).scaled(2.0);
    EXPECT_DOUBLE_EQ(t.at(0), 0.4);
    EXPECT_DOUBLE_EQ(t.at(1), 0.8);
}

TEST(Trace, ScaledNegativeDies)
{
    EXPECT_DEATH(make({0.2}).scaled(-1.0), "negative");
}

TEST(Trace, StackSumsSamples)
{
    auto a = make({0.1, 0.2});
    auto b = make({0.3, 0.3});
    auto s = UtilizationTrace::stack({a, b}, "sum");
    EXPECT_EQ(s.name(), "sum");
    EXPECT_EQ(s.length(), 2u);
    EXPECT_DOUBLE_EQ(s.at(0), 0.4);
    EXPECT_DOUBLE_EQ(s.at(1), 0.5);
}

TEST(Trace, StackCanExceedOne)
{
    auto s = UtilizationTrace::stack({make({0.8}), make({0.7})}, "hot");
    EXPECT_DOUBLE_EQ(s.at(0), 1.5);
}

TEST(Trace, StackWrapsShorterInputs)
{
    auto a = make({0.1, 0.2, 0.3, 0.4});
    auto b = make({1.0, 2.0});
    auto s = UtilizationTrace::stack({a, b}, "w");
    EXPECT_EQ(s.length(), 4u);
    EXPECT_DOUBLE_EQ(s.at(2), 0.3 + 1.0);
    EXPECT_DOUBLE_EQ(s.at(3), 0.4 + 2.0);
}

TEST(Trace, StackEmptyInputsDie)
{
    EXPECT_DEATH(UtilizationTrace::stack({}, "x"), "no inputs");
    UtilizationTrace empty;
    EXPECT_DEATH(UtilizationTrace::stack({empty}, "x"), "empty input");
}

TEST(Trace, ClassNames)
{
    EXPECT_STREQ(nps::trace::workloadClassName(WorkloadClass::Database),
                 "db");
    EXPECT_STREQ(nps::trace::workloadClassName(WorkloadClass::FileServer),
                 "file");
}

} // namespace
