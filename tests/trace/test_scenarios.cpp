/**
 * @file
 * Tests for the scenario trace builders.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/scenarios.h"

namespace {

using namespace nps::trace;

TEST(Scenarios, Flat)
{
    auto t = flatScenario("f", 0.4, 16);
    EXPECT_EQ(t.length(), 16u);
    EXPECT_DOUBLE_EQ(t.mean(), 0.4);
    EXPECT_DOUBLE_EQ(t.peak(), 0.4);
    EXPECT_DEATH(flatScenario("x", 0.4, 0), "zero length");
}

TEST(Scenarios, Square)
{
    auto t = squareScenario("s", 0.1, 0.9, 4, 16);
    EXPECT_DOUBLE_EQ(t.at(0), 0.1);
    EXPECT_DOUBLE_EQ(t.at(3), 0.1);
    EXPECT_DOUBLE_EQ(t.at(4), 0.9);
    EXPECT_DOUBLE_EQ(t.at(8), 0.1);
    EXPECT_NEAR(t.mean(), 0.5, 1e-12);
    EXPECT_DEATH(squareScenario("x", 0.1, 0.9, 0, 16), "zero");
}

TEST(Scenarios, Surge)
{
    auto t = surgeScenario("g", 0.2, 0.8, 30);
    EXPECT_DOUBLE_EQ(t.at(0), 0.2);
    EXPECT_DOUBLE_EQ(t.at(9), 0.2);
    EXPECT_DOUBLE_EQ(t.at(10), 0.8);
    EXPECT_DOUBLE_EQ(t.at(19), 0.8);
    EXPECT_DOUBLE_EQ(t.at(20), 0.2);
    EXPECT_DOUBLE_EQ(t.at(29), 0.2);
}

TEST(Scenarios, Ramp)
{
    auto base = flatScenario("b", 0.2, 10);
    auto t = rampScenario(base, 100, 1.0, 3.0);
    EXPECT_EQ(t.length(), 100u);
    EXPECT_NEAR(t.at(0), 0.2, 1e-12);
    EXPECT_NEAR(t.at(50), 0.2 * 2.0, 1e-12);
    EXPECT_NEAR(t.at(99), 0.2 * (1.0 + 2.0 * 0.99), 1e-12);
    EXPECT_EQ(t.name(), "b-ramp");
    // Base shorter than the ramp: it wraps.
    EXPECT_NO_FATAL_FAILURE(rampScenario(base, 1000, 0.5, 1.0));
    EXPECT_DEATH(rampScenario(base, 100, -1.0, 2.0), "negative");
}

TEST(Scenarios, RampAll)
{
    std::vector<UtilizationTrace> base{flatScenario("a", 0.1, 8),
                                       flatScenario("b", 0.3, 8)};
    auto ramped = rampAll(base, 20, 1.0, 2.0);
    ASSERT_EQ(ramped.size(), 2u);
    EXPECT_NEAR(ramped[1].at(0), 0.3, 1e-12);
    EXPECT_GT(ramped[1].at(19), 0.55);
}

TEST(Scenarios, FlashCrowd)
{
    auto t = flashCrowdScenario("fc", 0.2, 1.0, 50, 20.0, 200);
    EXPECT_DOUBLE_EQ(t.at(0), 0.2);
    EXPECT_DOUBLE_EQ(t.at(49), 0.2);
    EXPECT_DOUBLE_EQ(t.at(50), 1.0);  // spike lands
    // Exponential decay back towards the baseline.
    EXPECT_GT(t.at(60), t.at(80));
    EXPECT_NEAR(t.at(199), 0.2, 0.01);
    // One time constant after the spike: ~63% of the way back down.
    EXPECT_NEAR(t.at(70), 0.2 + 0.8 * std::exp(-1.0), 1e-9);
    EXPECT_DEATH(flashCrowdScenario("x", 0.2, 1.0, 0, 0.0, 10),
                 "decay");
}

} // namespace
