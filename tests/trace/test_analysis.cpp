/**
 * @file
 * Tests for trace analysis: autocorrelation, profiles, quantiles, and
 * the data-driven spread-sigma suggestion.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/analysis.h"
#include "trace/generator.h"

namespace {

using namespace nps::trace;

UtilizationTrace
make(std::vector<double> v)
{
    return UtilizationTrace("t", WorkloadClass::WebServer, std::move(v));
}

UtilizationTrace
sine(size_t length, size_t period, double base, double amp)
{
    std::vector<double> v(length);
    for (size_t t = 0; t < length; ++t) {
        v[t] = base + amp * std::sin(2.0 * M_PI *
                                     static_cast<double>(t % period) /
                                     static_cast<double>(period));
    }
    return make(std::move(v));
}

TEST(Autocorrelation, LagZeroIsOne)
{
    EXPECT_DOUBLE_EQ(autocorrelation(make({0.1, 0.5, 0.3}), 0), 1.0);
}

TEST(Autocorrelation, ConstantTraceIsZero)
{
    EXPECT_DOUBLE_EQ(autocorrelation(make(std::vector<double>(50, 0.4)),
                                     5), 0.0);
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod)
{
    auto t = sine(1000, 100, 0.5, 0.2);
    EXPECT_GT(autocorrelation(t, 100), 0.9);
    EXPECT_LT(autocorrelation(t, 50), -0.8);  // half period: anti-phase
}

TEST(Autocorrelation, AlternatingSignalNegativeAtLagOne)
{
    std::vector<double> v;
    for (int i = 0; i < 100; ++i)
        v.push_back(i % 2 ? 0.8 : 0.2);
    EXPECT_LT(autocorrelation(make(std::move(v)), 1), -0.9);
}

TEST(Autocorrelation, LagBeyondLengthIsZero)
{
    EXPECT_DOUBLE_EQ(autocorrelation(make({0.1, 0.2}), 5), 0.0);
}

TEST(TraceQuantileTest, KnownValues)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i / 100.0);
    auto t = make(std::move(v));
    EXPECT_NEAR(traceQuantile(t, 0.0), 0.01, 1e-12);
    EXPECT_NEAR(traceQuantile(t, 1.0), 1.0, 1e-12);
    EXPECT_NEAR(traceQuantile(t, 0.5), 0.505, 1e-9);
}

TEST(ProfileTrace, FlatTrace)
{
    auto p = profileTrace(make(std::vector<double>(200, 0.3)), 50);
    EXPECT_DOUBLE_EQ(p.mean, 0.3);
    EXPECT_DOUBLE_EQ(p.stddev, 0.0);
    EXPECT_DOUBLE_EQ(p.peak, 0.3);
    EXPECT_NEAR(p.peak_to_mean, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(p.diurnal_strength, 0.0);
}

TEST(ProfileTrace, DiurnalTraceDetected)
{
    auto t = sine(1152, 288, 0.4, 0.15);
    auto p = profileTrace(t, 288);
    EXPECT_GT(p.diurnal_strength, 0.9);
    EXPECT_NEAR(p.mean, 0.4, 0.01);
    EXPECT_GT(p.peak_to_mean, 1.2);
}

TEST(ProfileTrace, GeneratedTracesHaveDiurnalStructure)
{
    GeneratorConfig cfg;
    TraceGenerator gen(cfg);
    auto t = gen.generate(1, 3,
                          defaultProfile(WorkloadClass::RemoteDesktop));
    auto p = profileTrace(t, cfg.ticks_per_day);
    EXPECT_GT(p.diurnal_strength, 0.15);
    EXPECT_GT(p.lag1_autocorr, 0.5);  // AR(1) persistence
}

TEST(ProfileTrace, EmptyDies)
{
    UtilizationTrace empty;
    EXPECT_DEATH(profileTrace(empty, 10), "empty");
}

TEST(AggregateDemand, SumsTraces)
{
    auto agg = aggregateDemand({make({0.2, 0.4}), make({0.1, 0.1})});
    EXPECT_DOUBLE_EQ(agg.at(0), 0.3);
    EXPECT_DOUBLE_EQ(agg.at(1), 0.5);
}

TEST(AggregateDemand, SmoothsRelativeVariability)
{
    // Independent-ish traces aggregate to a relatively smoother total:
    // coefficient of variation shrinks.
    GeneratorConfig cfg;
    cfg.trace_length = 1000;
    TraceGenerator gen(cfg);
    std::vector<UtilizationTrace> traces;
    for (unsigned i = 0; i < 20; ++i) {
        traces.push_back(gen.generate(
            i % 9, i, defaultProfile(WorkloadClass::Database)));
    }
    auto agg = aggregateDemand(traces);
    auto p_one = profileTrace(traces[0], 0);
    auto p_agg = profileTrace(agg, 0);
    EXPECT_LT(p_agg.stddev / p_agg.mean, p_one.stddev / p_one.mean);
}

TEST(SuggestedSpreadSigma, FlatIsZero)
{
    EXPECT_DOUBLE_EQ(
        suggestedSpreadSigma(make(std::vector<double>(100, 0.4)), 0.95),
        0.0);
}

TEST(SuggestedSpreadSigma, GaussianLikeIsNearExpected)
{
    // For the generator's AR(1)-dominated traces the 95th percentile
    // sits roughly 1.3-2.2 sigmas above the mean.
    GeneratorConfig cfg;
    cfg.trace_length = 2880;
    TraceGenerator gen(cfg);
    auto t = gen.generate(0, 0, defaultProfile(WorkloadClass::WebServer));
    double k = suggestedSpreadSigma(t, 0.95);
    EXPECT_GT(k, 0.8);
    EXPECT_LT(k, 3.0);
}

TEST(SuggestedSpreadSigma, BadQuantileDies)
{
    EXPECT_DEATH(suggestedSpreadSigma(make({0.1, 0.2}), 1.5), "out of");
}

} // namespace
