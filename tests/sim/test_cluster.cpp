/**
 * @file
 * Tests for the Cluster: topology building, budgets, placement, and
 * per-tick aggregation.
 */

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "sim/cluster.h"

namespace {

using namespace nps::sim;
using nps::model::bladeA;
using nps::model::serverB;

TEST(Topology, PaperShapes)
{
    auto t180 = Topology::paper180();
    EXPECT_EQ(t180.num_servers, 180u);
    EXPECT_EQ(t180.num_enclosures * t180.enclosure_size, 120u);
    auto t60 = Topology::paper60();
    EXPECT_EQ(t60.num_servers, 60u);
    EXPECT_EQ(t60.num_enclosures, 2u);
}

TEST(BudgetConfig, Labels)
{
    EXPECT_EQ(BudgetConfig::paper201510().label(), "20-15-10");
    EXPECT_EQ(BudgetConfig::paper252015().label(), "25-20-15");
    EXPECT_EQ(BudgetConfig::paper302520().label(), "30-25-20");
}

TEST(Cluster, TopologyStructure)
{
    auto cl = nps_test::smallCluster();
    EXPECT_EQ(cl.numServers(), 6u);
    EXPECT_EQ(cl.numEnclosures(), 1u);
    EXPECT_EQ(cl.numVms(), 6u);
    EXPECT_EQ(cl.enclosure(0).size(), 4u);
    ASSERT_EQ(cl.standaloneServers().size(), 2u);
    EXPECT_EQ(cl.standaloneServers()[0], 4u);
    EXPECT_EQ(cl.enclosureOf(0), 0u);
    EXPECT_EQ(cl.enclosureOf(5), Cluster::kNoEnclosure);
    EXPECT_TRUE(cl.enclosure(0).contains(3));
    EXPECT_FALSE(cl.enclosure(0).contains(4));
}

TEST(Cluster, Paper180Topology)
{
    Cluster cl(Topology::paper180(), bladeA(),
               nps_test::flatTraces(180, 0.2, 8),
               BudgetConfig::paper201510(), 0.1, 0.1);
    EXPECT_EQ(cl.numServers(), 180u);
    EXPECT_EQ(cl.numEnclosures(), 6u);
    EXPECT_EQ(cl.standaloneServers().size(), 60u);
}

TEST(Cluster, InitialPlacementOneToOne)
{
    auto cl = nps_test::smallCluster();
    for (VmId v = 0; v < cl.numVms(); ++v) {
        EXPECT_EQ(cl.serverOf(v), v);
        EXPECT_EQ(cl.server(v).vms().size(), 1u);
    }
}

TEST(Cluster, StaticBudgets)
{
    auto cl = nps_test::smallCluster();
    double max_one = bladeA().model().maxPower();
    EXPECT_NEAR(cl.serverMaxPower(0), max_one, 1e-12);
    EXPECT_NEAR(cl.capLoc(0), 0.9 * max_one, 1e-12);
    EXPECT_NEAR(cl.enclosureMaxPower(0), 4.0 * max_one, 1e-12);
    EXPECT_NEAR(cl.capEnc(0), 0.85 * 4.0 * max_one, 1e-12);
    EXPECT_NEAR(cl.groupMaxPower(), 6.0 * max_one, 1e-12);
    EXPECT_NEAR(cl.capGrp(), 0.8 * 6.0 * max_one, 1e-12);
}

TEST(Cluster, BudgetHierarchyTightens)
{
    // The enclosure cap must be tighter than the sum of its members'
    // local caps, and the group cap tighter still — that is what makes
    // multi-level capping a real problem.
    auto cl = nps_test::smallCluster();
    double sum_loc = 0.0;
    for (ServerId s : cl.enclosure(0).members())
        sum_loc += cl.capLoc(s);
    EXPECT_LT(cl.capEnc(0), sum_loc);
    double all_loc = 0.0;
    for (const auto &srv : cl.servers())
        all_loc += cl.capLoc(srv.id());
    EXPECT_LT(cl.capGrp(), all_loc);
}

TEST(Cluster, PlaceAndMigrate)
{
    auto cl = nps_test::smallCluster();
    cl.placeVm(0, 3);
    EXPECT_EQ(cl.serverOf(0), 3u);
    EXPECT_EQ(cl.server(3).vms().size(), 2u);
    EXPECT_TRUE(cl.server(0).vms().empty());
    EXPECT_FALSE(cl.vm(0).migrating(0));

    cl.migrateVm(1, 3, 0, 10);
    EXPECT_EQ(cl.serverOf(1), 3u);
    EXPECT_TRUE(cl.vm(1).migrating(5));
    EXPECT_FALSE(cl.vm(1).migrating(10));

    // Migrating to the current host is a no-op (no overhead restart).
    cl.migrateVm(0, 3, 0, 10);
    EXPECT_FALSE(cl.vm(0).migrating(0));
}

TEST(Cluster, EvaluateTickAggregates)
{
    auto cl = nps_test::smallCluster(0.3);
    const auto &tick = cl.evaluateTick(0);
    // 6 servers at load 0.33 at P0.
    double per_server = bladeA().model().powerAt(0, 0.33);
    EXPECT_NEAR(tick.total_power, 6.0 * per_server, 1e-9);
    ASSERT_EQ(tick.enclosure_power.size(), 1u);
    EXPECT_NEAR(tick.enclosure_power[0], 4.0 * per_server, 1e-9);
    EXPECT_NEAR(cl.lastEnclosurePower(0), 4.0 * per_server, 1e-9);
    EXPECT_NEAR(tick.demanded_useful, 6.0 * 0.3, 1e-12);
    EXPECT_NEAR(tick.served_useful, 6.0 * 0.3, 1e-12);
}

TEST(Cluster, HeterogeneousSpecs)
{
    std::vector<std::shared_ptr<const nps::model::MachineSpec>> specs;
    auto blade = std::make_shared<const nps::model::MachineSpec>(bladeA());
    auto server = std::make_shared<const nps::model::MachineSpec>(
        serverB());
    for (unsigned i = 0; i < 6; ++i)
        specs.push_back(i % 2 ? blade : server);
    Cluster cl(Topology{6, 1, 4}, specs, nps_test::flatTraces(6, 0.2, 8),
               BudgetConfig::paper201510(), 0.1, 0.1);
    EXPECT_EQ(cl.server(0).spec().name(), "ServerB");
    EXPECT_EQ(cl.server(1).spec().name(), "BladeA");
    // Budgets follow each machine's own max power.
    EXPECT_GT(cl.capLoc(0), cl.capLoc(1));
}

TEST(Cluster, TooManyWorkloadsDie)
{
    EXPECT_DEATH(nps::sim::Cluster(Topology{2, 0, 0}, bladeA(),
                                   nps_test::flatTraces(3, 0.2, 8),
                                   BudgetConfig::paper201510(), 0.1, 0.1),
                 "exceed");
}

TEST(Cluster, BadTopologyDies)
{
    EXPECT_DEATH(nps::sim::Cluster(Topology{10, 3, 4}, bladeA(),
                                   nps_test::flatTraces(10, 0.2, 8),
                                   BudgetConfig::paper201510(), 0.1, 0.1),
                 "exceed");
}

TEST(Cluster, MismatchedSpecCountDies)
{
    std::vector<std::shared_ptr<const nps::model::MachineSpec>> specs;
    specs.push_back(std::make_shared<const nps::model::MachineSpec>(
        bladeA()));
    EXPECT_DEATH(nps::sim::Cluster(Topology{2, 0, 0}, specs,
                                   nps_test::flatTraces(2, 0.2, 8),
                                   BudgetConfig::paper201510(), 0.1, 0.1),
                 "specs");
}

TEST(Cluster, OutOfRangeAccessorsPanic)
{
    auto cl = nps_test::smallCluster();
    EXPECT_DEATH(cl.server(6), "out of range");
    EXPECT_DEATH(cl.enclosure(1), "out of range");
    EXPECT_DEATH(cl.vm(6), "out of range");
    EXPECT_DEATH(cl.serverOf(6), "out of range");
}

} // namespace
