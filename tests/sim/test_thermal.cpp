/**
 * @file
 * Tests for the RC thermal model: first-order response, the failover
 * latch, and the "bounded transient violations are safe" property that
 * justifies thermal (as opposed to electrical) capping.
 */

#include <gtest/gtest.h>

#include "sim/thermal.h"

namespace {

using namespace nps::sim;

TEST(Thermal, StartsAtAmbient)
{
    ThermalModel tm(ThermalParams{});
    EXPECT_DOUBLE_EQ(tm.temperature(), 25.0);
    EXPECT_FALSE(tm.failedOver());
}

TEST(Thermal, ApproachesSteadyState)
{
    ThermalParams p;
    ThermalModel tm(p);
    double watts = 80.0;
    for (int i = 0; i < 2000; ++i)
        tm.step(watts);
    EXPECT_NEAR(tm.temperature(), tm.steadyState(watts), 0.01);
    EXPECT_NEAR(tm.steadyState(watts),
                p.ambient_c + watts * p.c_per_watt, 1e-12);
}

TEST(Thermal, FirstOrderResponseShape)
{
    ThermalParams p;
    p.tau_ticks = 10.0;
    ThermalModel tm(p);
    // After tau steps the response covers ~63% of the gap.
    double watts = 100.0;
    for (int i = 0; i < 10; ++i)
        tm.step(watts);
    double target = tm.steadyState(watts);
    double progress = (tm.temperature() - p.ambient_c) /
                      (target - p.ambient_c);
    EXPECT_NEAR(progress, 0.65, 0.05);
}

TEST(Thermal, SustainablePowerIsFailoverBoundary)
{
    ThermalParams p;
    ThermalModel tm(p);
    double safe = tm.sustainablePower();
    EXPECT_NEAR(tm.steadyState(safe), p.failover_c, 1e-9);
    // Slightly below: never fails.
    ThermalModel under(p);
    for (int i = 0; i < 5000; ++i)
        under.step(safe * 0.98);
    EXPECT_FALSE(under.failedOver());
    // Slightly above: eventually fails.
    ThermalModel over(p);
    for (int i = 0; i < 5000; ++i)
        over.step(safe * 1.05);
    EXPECT_TRUE(over.failedOver());
    EXPECT_GT(over.failoverTick(), 0u);
}

TEST(Thermal, BoundedTransientViolationsAreSafe)
{
    // The thermal-capping premise: short excursions above the
    // sustainable power do not trip failover because heat integrates.
    ThermalParams p;
    ThermalModel tm(p);
    double safe = tm.sustainablePower();
    for (int cycle = 0; cycle < 50; ++cycle) {
        for (int i = 0; i < 5; ++i)
            tm.step(safe * 1.3);  // transient violation
        for (int i = 0; i < 45; ++i)
            tm.step(safe * 0.7);  // recovery
    }
    EXPECT_FALSE(tm.failedOver());
}

TEST(Thermal, SustainedViolationFailsOver)
{
    ThermalParams p;
    ThermalModel tm(p);
    double safe = tm.sustainablePower();
    for (int i = 0; i < 1000 && !tm.failedOver(); ++i)
        tm.step(safe * 1.3);
    EXPECT_TRUE(tm.failedOver());
}

TEST(Thermal, FailoverLatches)
{
    ThermalParams p;
    ThermalModel tm(p);
    while (!tm.failedOver())
        tm.step(tm.sustainablePower() * 2.0);
    size_t at = tm.failoverTick();
    // Cooling afterwards does not clear the latch.
    for (int i = 0; i < 1000; ++i)
        tm.step(0.0);
    EXPECT_TRUE(tm.failedOver());
    EXPECT_EQ(tm.failoverTick(), at);
    EXPECT_LT(tm.temperature(), 30.0);
}

TEST(Thermal, NegativePowerPanics)
{
    ThermalModel tm(ThermalParams{});
    EXPECT_DEATH(tm.step(-1.0), "negative power");
}

TEST(Thermal, BadParamsDie)
{
    ThermalParams p;
    p.tau_ticks = 0.0;
    EXPECT_DEATH(ThermalModel{p}, "time constant");
    ThermalParams q;
    q.c_per_watt = 0.0;
    EXPECT_DEATH(ThermalModel{q}, "thermal resistance");
}

} // namespace
