/**
 * @file
 * Tests for the topology tree: the tiered builder, structural
 * validation, and the treeText()/parseTree() grammar round-trip.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/topology.h"

namespace {

using nps::sim::Topology;
using nps::sim::TopologyNode;

TEST(TopologyTest, Paper180IsFlat)
{
    Topology topo = Topology::paper180();
    EXPECT_EQ(topo.num_servers, 180u);
    EXPECT_EQ(topo.num_enclosures, 6u);
    EXPECT_EQ(topo.enclosure_size, 20u);
    EXPECT_FALSE(topo.hasTree());
    topo.validate();
}

TEST(TopologyTest, TieredBuildsThreeLevels)
{
    // 2 zones x 3 racks, 1 enclosure of 8 blades + 2 standalone per
    // rack: 60 servers, 6 enclosures, rack-ordered ids.
    Topology topo = Topology::tiered(2, 3, 1, 8, 2);
    topo.validate();
    EXPECT_EQ(topo.num_servers, 60u);
    EXPECT_EQ(topo.num_enclosures, 6u);
    EXPECT_EQ(topo.enclosure_size, 8u);
    ASSERT_TRUE(topo.hasTree());
    const TopologyNode &root = topo.tree.front();
    EXPECT_EQ(root.name, "dc");
    ASSERT_EQ(root.children.size(), 2u);
    const TopologyNode &z1 = root.children[1];
    EXPECT_EQ(z1.name, "z1");
    ASSERT_EQ(z1.children.size(), 3u);
    const TopologyNode &rack = z1.children[0];
    EXPECT_EQ(rack.name, "z1r0");
    ASSERT_EQ(rack.enclosures.size(), 1u);
    EXPECT_EQ(rack.enclosures[0], 3u);
    // Standalone ids start after the 48 enclosed blades.
    ASSERT_EQ(rack.servers.size(), 2u);
    EXPECT_EQ(rack.servers[0], 48u + 6u);
}

TEST(TopologyTest, TreeTextRoundTripsExactly)
{
    Topology topo = Topology::tiered(2, 2, 2, 4, 1);
    std::string first = topo.treeText();
    Topology back = topo;
    back.tree = Topology::parseTree(first);
    back.validate();
    EXPECT_EQ(back.treeText(), first);
}

TEST(TopologyTest, ParseAcceptsHandWrittenTrees)
{
    Topology topo{12, 2, 4, {}}; // 8 enclosed + 4 standalone
    topo.tree = Topology::parseTree("dc(left(e0,s8,s9),right(e1,s10,s11))");
    topo.validate();
    const TopologyNode &root = topo.tree.front();
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children[0].name, "left");
    EXPECT_EQ(root.children[0].enclosures,
              (std::vector<unsigned>{0}));
    EXPECT_EQ(root.children[1].servers,
              (std::vector<unsigned>{10, 11}));
}

TEST(TopologyTest, ParseRejectsMalformedText)
{
    EXPECT_DEATH(Topology::parseTree("dc(e0"), "missing closing");
    EXPECT_DEATH(Topology::parseTree("dc(e0,,e1)"), "empty item");
    EXPECT_DEATH(Topology::parseTree("(e0)"), "empty name");
}

TEST(TopologyTest, ValidateRejectsStructuralErrors)
{
    Topology base{12, 2, 4, {}};

    Topology two_roots = base;
    two_roots.tree = Topology::parseTree("a(e0,s8,s9);b(e1,s10,s11)");
    EXPECT_DEATH(two_roots.validate(), "exactly one root");

    Topology dup_name = base;
    dup_name.tree =
        Topology::parseTree("dc(dc(e0,s8,s9),x(e1,s10,s11))");
    EXPECT_DEATH(dup_name.validate(), "duplicate");

    Topology dup_enc = base;
    dup_enc.tree =
        Topology::parseTree("dc(a(e0,s8,s9),b(e0,e1,s10,s11))");
    EXPECT_DEATH(dup_enc.validate(), "more than one node");

    Topology missing = base;
    missing.tree = Topology::parseTree("dc(e0,e1,s8,s9,s10)");
    EXPECT_DEATH(missing.validate(), "covers");

    Topology not_standalone = base;
    not_standalone.tree =
        Topology::parseTree("dc(e0,e1,s0,s9,s10,s11)");
    EXPECT_DEATH(not_standalone.validate(), "not a standalone");

    Topology oversubscribed{4, 2, 4, {}};
    EXPECT_DEATH(oversubscribed.validate(), "exceed");
}

TEST(TopologyTest, EmptyTreeTextMeansFlat)
{
    EXPECT_TRUE(Topology::parseTree("").empty());
    EXPECT_EQ(Topology::paper60().treeText(), "");
}

} // namespace
