/**
 * @file
 * Tests for the VirtualMachine runtime state.
 */

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "sim/vm.h"

namespace {

using nps::sim::VirtualMachine;

TEST(VirtualMachine, Basics)
{
    VirtualMachine vm(3, nps_test::flatTrace("t", 0.4, 8));
    EXPECT_EQ(vm.id(), 3u);
    EXPECT_DOUBLE_EQ(vm.demandAt(0), 0.4);
    EXPECT_DOUBLE_EQ(vm.demandAt(100), 0.4);  // wraps
}

TEST(VirtualMachine, EmptyTraceDies)
{
    EXPECT_DEATH(VirtualMachine(0, nps::trace::UtilizationTrace{}),
                 "empty trace");
}

TEST(VirtualMachine, MigrationWindow)
{
    VirtualMachine vm(0, nps_test::flatTrace("t", 0.4));
    EXPECT_FALSE(vm.migrating(0));
    vm.beginMigration(5);
    EXPECT_TRUE(vm.migrating(0));
    EXPECT_TRUE(vm.migrating(4));
    EXPECT_FALSE(vm.migrating(5));
    EXPECT_FALSE(vm.migrating(100));
}

TEST(VirtualMachine, RecordServed)
{
    VirtualMachine vm(0, nps_test::flatTrace("t", 0.4));
    EXPECT_DOUBLE_EQ(vm.lastDemanded(), 0.0);
    vm.recordServed(0.4, 0.3, 0.6);
    EXPECT_DOUBLE_EQ(vm.lastDemanded(), 0.4);
    EXPECT_DOUBLE_EQ(vm.lastServed(), 0.3);
    EXPECT_DOUBLE_EQ(vm.lastApparentShare(), 0.6);
}

TEST(VirtualMachine, VariableTraceDemand)
{
    VirtualMachine vm(0, nps_test::squareTrace("sq", 0.1, 0.9, 4, 16));
    EXPECT_DOUBLE_EQ(vm.demandAt(0), 0.1);
    EXPECT_DOUBLE_EQ(vm.demandAt(4), 0.9);
    EXPECT_DOUBLE_EQ(vm.demandAt(8), 0.1);
}

} // namespace
