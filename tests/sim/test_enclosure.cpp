/**
 * @file
 * Tests for the Enclosure grouping type.
 */

#include <gtest/gtest.h>

#include "sim/enclosure.h"

namespace {

using nps::sim::Enclosure;

TEST(Enclosure, Basics)
{
    Enclosure e(2, "enc2", {4, 5, 6});
    EXPECT_EQ(e.id(), 2u);
    EXPECT_EQ(e.name(), "enc2");
    EXPECT_EQ(e.size(), 3u);
    EXPECT_EQ(e.members()[1], 5u);
}

TEST(Enclosure, Contains)
{
    Enclosure e(0, "e", {1, 3});
    EXPECT_TRUE(e.contains(1));
    EXPECT_TRUE(e.contains(3));
    EXPECT_FALSE(e.contains(2));
}

TEST(Enclosure, EmptyDies)
{
    EXPECT_DEATH(Enclosure(0, "x", {}), "no members");
}

} // namespace
