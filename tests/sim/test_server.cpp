/**
 * @file
 * Tests for the simulated server: service math, overheads, saturation,
 * platform power states, and the sensor values controllers read.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/fixtures.h"
#include "sim/server.h"
#include "sim/vm.h"

namespace {

using namespace nps::sim;
using nps::model::bladeA;

class ServerTest : public ::testing::Test
{
  protected:
    ServerTest()
        : spec_(std::make_shared<const nps::model::MachineSpec>(bladeA())),
          server_(0, spec_, 0.10, 0.10)
    {
    }

    VmId
    addVm(double util, size_t length = 32)
    {
        VmId id = static_cast<VmId>(vms_.size());
        vms_.emplace_back(id, nps_test::flatTrace("vm", util, length));
        server_.addVm(id);
        return id;
    }

    std::shared_ptr<const nps::model::MachineSpec> spec_;
    Server server_;
    std::vector<VirtualMachine> vms_;
};

TEST_F(ServerTest, IdleServerBurnsIdlePower)
{
    auto tick = server_.evaluate(0, vms_);
    EXPECT_DOUBLE_EQ(tick.power, spec_->model().idlePower(0));
    EXPECT_DOUBLE_EQ(tick.apparent_util, 0.0);
    EXPECT_DOUBLE_EQ(tick.demanded_useful, 0.0);
}

TEST_F(ServerTest, SingleVmWithOverhead)
{
    addVm(0.5);
    auto tick = server_.evaluate(0, vms_);
    // Load = 0.5 * 1.1 at P0.
    EXPECT_NEAR(tick.apparent_util, 0.55, 1e-12);
    EXPECT_NEAR(tick.power, spec_->model().powerAt(0, 0.55), 1e-12);
    EXPECT_NEAR(tick.served_useful, 0.5, 1e-12);
    EXPECT_NEAR(tick.demanded_useful, 0.5, 1e-12);
    EXPECT_NEAR(vms_[0].lastServed(), 0.5, 1e-12);
    EXPECT_NEAR(vms_[0].lastApparentShare(), 0.55, 1e-12);
}

TEST_F(ServerTest, SaturationLosesWork)
{
    addVm(0.6);
    addVm(0.6);
    // Total load = 1.2 * 1.1 = 1.32 > capacity 1.0 at P0.
    auto tick = server_.evaluate(0, vms_);
    EXPECT_DOUBLE_EQ(tick.apparent_util, 1.0);
    double served_frac = 1.0 / 1.32;
    EXPECT_NEAR(tick.served_useful, 1.2 * served_frac, 1e-12);
    EXPECT_LT(tick.served_useful, tick.demanded_useful);
    EXPECT_NEAR(vms_[0].lastServed(), 0.6 * served_frac, 1e-12);
}

TEST_F(ServerTest, ThrottledCapacityScales)
{
    addVm(0.4);
    server_.setPState(4);  // 533 MHz -> capacity 0.533
    auto tick = server_.evaluate(0, vms_);
    // Load 0.44 vs capacity 0.533: apparent util = 0.44/0.533.
    EXPECT_NEAR(tick.apparent_util, 0.44 / 0.533, 1e-12);
    EXPECT_NEAR(tick.served_useful, 0.4, 1e-12);
    // Saturate it.
    vms_.clear();
    server_.removeVm(0);
    addVm(0.8);
    auto tick2 = server_.evaluate(0, vms_);
    EXPECT_DOUBLE_EQ(tick2.apparent_util, 1.0);
    EXPECT_NEAR(tick2.served_useful, 0.8 * (0.533 / 0.88), 1e-12);
}

TEST_F(ServerTest, MigrationOverheadTaxesLoad)
{
    VmId id = addVm(0.5);
    vms_[id].beginMigration(10);
    auto tick = server_.evaluate(0, vms_);
    // Load = 0.5 * (1 + 0.1 + 0.1) = 0.6.
    EXPECT_NEAR(tick.apparent_util, 0.6, 1e-12);
    // After the migration window the tax disappears.
    auto tick2 = server_.evaluate(10, vms_);
    EXPECT_NEAR(tick2.apparent_util, 0.55, 1e-12);
}

TEST_F(ServerTest, PowerOffAndBoot)
{
    EXPECT_TRUE(server_.isOn(0));
    server_.powerOff();
    EXPECT_EQ(server_.platformPower(0), PlatformPower::Off);
    EXPECT_TRUE(server_.everOff());
    auto tick = server_.evaluate(5, vms_);
    EXPECT_DOUBLE_EQ(tick.power, spec_->offWatts());

    server_.powerOn(10);
    EXPECT_EQ(server_.platformPower(10), PlatformPower::Booting);
    auto boot_tick = server_.evaluate(10, vms_);
    EXPECT_DOUBLE_EQ(boot_tick.power, spec_->model().idlePower(0));
    // Boot completes after bootTicks.
    EXPECT_EQ(server_.platformPower(10 + spec_->bootTicks()),
              PlatformPower::On);
}

TEST_F(ServerTest, BootingServesNothing)
{
    addVm(0.5);
    // Force off is illegal with VMs; drain first.
    server_.removeVm(0);
    server_.powerOff();
    server_.powerOn(0);
    server_.addVm(0);
    auto tick = server_.evaluate(1, vms_);
    EXPECT_DOUBLE_EQ(tick.served_useful, 0.0);
    EXPECT_GT(tick.demanded_useful, 0.0);
    EXPECT_DOUBLE_EQ(vms_[0].lastServed(), 0.0);
}

TEST_F(ServerTest, PowerOffWithVmsPanics)
{
    addVm(0.5);
    EXPECT_DEATH(server_.powerOff(), "powering off");
}

TEST_F(ServerTest, DoubleAddPanics)
{
    addVm(0.5);
    EXPECT_DEATH(server_.addVm(0), "already hosted");
}

TEST_F(ServerTest, RemoveUnknownPanics)
{
    EXPECT_DEATH(server_.removeVm(3), "not hosted");
}

TEST_F(ServerTest, SetPStateOutOfRangePanics)
{
    EXPECT_DEATH(server_.setPState(5), "out of range");
}

TEST_F(ServerTest, FrequencyTracksPState)
{
    EXPECT_DOUBLE_EQ(server_.frequencyMhz(), 1000.0);
    server_.setPState(2);
    EXPECT_DOUBLE_EQ(server_.frequencyMhz(), 700.0);
}

TEST_F(ServerTest, MemLowPowerTrimsPowerAndCapacity)
{
    addVm(0.5);
    server_.evaluate(0, vms_);
    double base_power = server_.lastPower();
    server_.setMemLowPower(true);
    EXPECT_TRUE(server_.memLowPower());
    auto tick = server_.evaluate(1, vms_);
    EXPECT_LT(tick.power, base_power);
    // Capacity shrank, so apparent utilization rose.
    EXPECT_GT(tick.apparent_util, 0.55);
}

TEST_F(ServerTest, NegativeOverheadDies)
{
    EXPECT_DEATH(Server(1, spec_, -0.1, 0.1), "negative overhead");
}

TEST_F(ServerTest, NullSpecDies)
{
    EXPECT_DEATH(Server(1, nullptr, 0.1, 0.1), "null machine spec");
}

} // namespace
