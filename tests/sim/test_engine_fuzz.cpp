/**
 * @file
 * Randomized scheduling tests for the parallel tick engine.
 *
 * Each iteration builds a random actor population — random periods,
 * random insertion order, random shardable/global mix — runs it on the
 * sharded path (threads = 4) and checks the engine's scheduling
 * invariants hold regardless of the draw:
 *
 *   - no actor steps at tick 0;
 *   - an actor steps exactly at the positive multiples of its period;
 *   - every actor observes every tick, and all observations of a tick
 *     complete before any step of that tick;
 *   - ordered pairs (two globals, a global and anything, or two actors
 *     on the same shard key) step coarse-period-first, stable by
 *     insertion order for ties.
 *
 * Shardable actors on *different* shard keys may interleave freely
 * within a segment — the tests deliberately do not constrain them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/fixtures.h"
#include "sim/engine.h"

namespace {

using namespace nps::sim;

/** Stamps every observe()/step() with a process-wide sequence number. */
class FuzzActor : public Actor
{
  public:
    FuzzActor(std::string name, unsigned period, long shard,
              std::atomic<uint64_t> *clock)
        : name_(std::move(name)), period_(period), shard_(shard),
          clock_(clock)
    {
    }

    const std::string &name() const override { return name_; }
    unsigned period() const override { return period_; }
    long shardKey() const override { return shard_; }

    void
    observe(size_t tick) override
    {
        observe_stamps.push_back({tick, clock_->fetch_add(1)});
    }

    void
    step(size_t tick) override
    {
        step_stamps.push_back({tick, clock_->fetch_add(1)});
    }

    long shard() const { return shard_; }

    std::vector<std::pair<size_t, uint64_t>> observe_stamps;
    std::vector<std::pair<size_t, uint64_t>> step_stamps;

  private:
    std::string name_;
    unsigned period_;
    long shard_;
    std::atomic<uint64_t> *clock_;
};

/** True when the schedule fully orders the pair's steps within a tick:
 * a global actor is a barrier against everything, and same-shard actors
 * run serially in schedule order. */
bool
ordered(const FuzzActor &a, const FuzzActor &b)
{
    return a.shard() == Actor::kGlobalShard ||
           b.shard() == Actor::kGlobalShard || a.shard() == b.shard();
}

uint64_t
stampAt(const std::vector<std::pair<size_t, uint64_t>> &stamps,
        size_t tick)
{
    for (const auto &s : stamps)
        if (s.first == tick)
            return s.second;
    ADD_FAILURE() << "no stamp at tick " << tick;
    return 0;
}

void
fuzzOnce(uint32_t seed)
{
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(seed);
    constexpr size_t kTicks = 40;

    Cluster cluster = nps_test::smallCluster();
    MetricsCollector metrics;
    Engine engine(cluster, metrics);
    engine.setThreads(4);

    std::atomic<uint64_t> clock{0};
    const size_t count = 8 + rng() % 12;
    std::vector<std::shared_ptr<FuzzActor>> actors;
    for (size_t i = 0; i < count; ++i) {
        const unsigned period = 1 + rng() % 13;
        const bool global = rng() % 3 == 0;
        const long shard =
            global ? Actor::kGlobalShard
                   : static_cast<long>(rng() % cluster.numServers());
        actors.push_back(std::make_shared<FuzzActor>(
            "f" + std::to_string(i), period, shard, &clock));
        engine.addActor(actors.back());
    }
    engine.run(kTicks);

    // Schedule rank: descending period, stable by insertion order.
    std::vector<size_t> rank_of(count);
    {
        std::vector<size_t> order(count);
        for (size_t i = 0; i < count; ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return actors[a]->period() >
                                    actors[b]->period();
                         });
        for (size_t pos = 0; pos < count; ++pos)
            rank_of[order[pos]] = pos;
    }

    for (const auto &a : actors) {
        // Every tick observed, in order.
        ASSERT_EQ(a->observe_stamps.size(), kTicks) << a->name();
        for (size_t t = 0; t < kTicks; ++t)
            EXPECT_EQ(a->observe_stamps[t].first, t) << a->name();

        // Steps at exactly the positive multiples of the period.
        std::vector<size_t> expected;
        for (size_t t = a->period(); t < kTicks; t += a->period())
            expected.push_back(t);
        ASSERT_EQ(a->step_stamps.size(), expected.size()) << a->name();
        for (size_t i = 0; i < expected.size(); ++i)
            EXPECT_EQ(a->step_stamps[i].first, expected[i]) << a->name();
        EXPECT_TRUE(a->step_stamps.empty() ||
                    a->step_stamps.front().first > 0)
            << a->name() << " stepped at tick 0";
    }

    for (size_t tick = 1; tick < kTicks; ++tick) {
        // All observations of a tick happen before any step of it.
        uint64_t max_observe = 0;
        uint64_t min_step = UINT64_MAX;
        for (const auto &a : actors) {
            max_observe =
                std::max(max_observe, stampAt(a->observe_stamps, tick));
            if (tick % a->period() == 0)
                min_step =
                    std::min(min_step, stampAt(a->step_stamps, tick));
        }
        if (min_step != UINT64_MAX) {
            EXPECT_LT(max_observe, min_step) << "tick " << tick;
        }

        // Coarse-first, insertion-stable order for every ordered pair.
        for (size_t i = 0; i < count; ++i) {
            if (tick % actors[i]->period() != 0)
                continue;
            for (size_t j = i + 1; j < count; ++j) {
                if (tick % actors[j]->period() != 0 ||
                    !ordered(*actors[i], *actors[j]))
                    continue;
                const size_t first =
                    rank_of[i] < rank_of[j] ? i : j;
                const size_t second = first == i ? j : i;
                EXPECT_LT(stampAt(actors[first]->step_stamps, tick),
                          stampAt(actors[second]->step_stamps, tick))
                    << actors[first]->name() << " (period "
                    << actors[first]->period() << ") must step before "
                    << actors[second]->name() << " (period "
                    << actors[second]->period() << ") at tick " << tick;
            }
        }
    }
}

TEST(EngineFuzz, RandomActorSetsKeepSchedulingInvariants)
{
    for (uint32_t seed : {1u, 7u, 42u, 1234u, 99999u})
        fuzzOnce(seed);
}

TEST(EngineFuzz, AllGlobalPopulationStaysSerialOrdered)
{
    // Degenerate draw: every actor global — the parallel engine must
    // behave exactly like the serial one.
    std::mt19937 rng(5);
    constexpr size_t kTicks = 30;
    Cluster cluster = nps_test::smallCluster();
    MetricsCollector metrics;
    Engine engine(cluster, metrics);
    engine.setThreads(4);
    std::atomic<uint64_t> clock{0};
    std::vector<std::shared_ptr<FuzzActor>> actors;
    for (size_t i = 0; i < 10; ++i) {
        actors.push_back(std::make_shared<FuzzActor>(
            "g" + std::to_string(i), 1 + rng() % 5, Actor::kGlobalShard,
            &clock));
        engine.addActor(actors.back());
    }
    engine.run(kTicks);
    for (size_t tick = 1; tick < kTicks; ++tick) {
        uint64_t prev = 0;
        bool have_prev = false;
        for (const auto &a : engine.actors()) {
            if (tick % a->period() != 0)
                continue;
            auto *fa = dynamic_cast<FuzzActor *>(a.get());
            ASSERT_NE(fa, nullptr);
            const uint64_t stamp = stampAt(fa->step_stamps, tick);
            if (have_prev) {
                EXPECT_LT(prev, stamp) << "tick " << tick;
            }
            prev = stamp;
            have_prev = true;
        }
    }
}

void
fuzzReplaceOnce(uint32_t seed)
{
    // Mixes mid-simulation addActor() — both fresh names and name-matched
    // replacements — with the sharded batch dispatch: after the roster
    // churn, the rebuilt flattened segments must still honour every
    // scheduling invariant, replaced instances must stop receiving work,
    // and replacements must step exactly where their predecessors would
    // have.
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(seed);
    constexpr size_t kFirst = 15;
    constexpr size_t kTicks = 30;

    Cluster cluster = nps_test::smallCluster();
    MetricsCollector metrics;
    Engine engine(cluster, metrics);
    engine.setThreads(4);

    std::atomic<uint64_t> clock{0};
    auto draw = [&](const std::string &name) {
        const unsigned period = 1 + rng() % 7;
        const bool global = rng() % 4 == 0;
        const long shard =
            global ? Actor::kGlobalShard
                   : static_cast<long>(rng() % cluster.numServers());
        return std::make_shared<FuzzActor>(name, period, shard, &clock);
    };

    const size_t count = 9 + rng() % 9;
    std::vector<std::shared_ptr<FuzzActor>> originals;
    for (size_t i = 0; i < count; ++i) {
        originals.push_back(draw("r" + std::to_string(i)));
        engine.addActor(originals.back());
    }
    engine.run(kFirst);

    // Replace roughly a third by name — same period and shard, so the
    // replacement inherits the predecessor's exact schedule position —
    // and add a couple of newcomers.
    std::vector<std::shared_ptr<FuzzActor>> replacements;
    for (size_t i = 0; i < count; ++i) {
        if (rng() % 3 != 0)
            continue;
        auto twin = std::make_shared<FuzzActor>(
            originals[i]->name(), originals[i]->period(),
            originals[i]->shard(), &clock);
        replacements.push_back(twin);
        engine.addActor(twin);
    }
    const size_t added = 2 + rng() % 3;
    std::vector<std::shared_ptr<FuzzActor>> newcomers;
    for (size_t i = 0; i < added; ++i) {
        newcomers.push_back(draw("n" + std::to_string(i)));
        engine.addActor(newcomers.back());
    }
    engine.run(kTicks - kFirst);

    ASSERT_EQ(engine.actors().size(), count + added);

    // Current roster, in post-run schedule order; rank = vector index.
    std::vector<FuzzActor *> current;
    for (const auto &a : engine.actors()) {
        auto *fa = dynamic_cast<FuzzActor *>(a.get());
        ASSERT_NE(fa, nullptr);
        current.push_back(fa);
    }

    // Replaced instances received nothing after the swap.
    for (const auto &r : replacements) {
        for (const auto &orig : originals) {
            if (orig->name() != r->name() || orig.get() == r.get())
                continue;
            EXPECT_TRUE(orig->observe_stamps.empty() ||
                        orig->observe_stamps.back().first < kFirst)
                << orig->name();
            EXPECT_TRUE(orig->step_stamps.empty() ||
                        orig->step_stamps.back().first < kFirst)
                << orig->name();
        }
    }

    for (FuzzActor *a : current) {
        // Every second-run tick observed, in order.
        const size_t window = kTicks - kFirst;
        ASSERT_GE(a->observe_stamps.size(), window) << a->name();
        const size_t base = a->observe_stamps.size() - window;
        for (size_t t = 0; t < window; ++t)
            EXPECT_EQ(a->observe_stamps[base + t].first, kFirst + t)
                << a->name();

        // Steps in the window at exactly the period multiples.
        std::vector<size_t> expected;
        for (size_t t = a->period(); t < kTicks; t += a->period())
            if (t >= kFirst)
                expected.push_back(t);
        std::vector<size_t> got;
        for (const auto &s : a->step_stamps)
            if (s.first >= kFirst)
                got.push_back(s.first);
        EXPECT_EQ(got, expected) << a->name();
    }

    // Ordered pairs still step coarse-first / schedule-stable in the
    // window, across the rebuilt batched segments.
    for (size_t tick = kFirst; tick < kTicks; ++tick) {
        for (size_t i = 0; i < current.size(); ++i) {
            if (tick % current[i]->period() != 0)
                continue;
            for (size_t j = i + 1; j < current.size(); ++j) {
                if (tick % current[j]->period() != 0 ||
                    !ordered(*current[i], *current[j]))
                    continue;
                EXPECT_LT(stampAt(current[i]->step_stamps, tick),
                          stampAt(current[j]->step_stamps, tick))
                    << current[i]->name() << " must step before "
                    << current[j]->name() << " at tick " << tick;
            }
        }
    }
}

TEST(EngineFuzz, ReplaceAndAddAcrossRunsKeepBatchedDispatchInvariants)
{
    for (uint32_t seed : {3u, 21u, 777u, 4242u})
        fuzzReplaceOnce(seed);
}

} // namespace
