/**
 * @file
 * Tests for the cooling substrate: the CRAC COP curve, zone thermal
 * dynamics, extraction clamping, and the redline latch.
 */

#include <gtest/gtest.h>

#include "sim/cooling.h"

namespace {

using namespace nps::sim;

CoolingZoneParams
smallParams()
{
    CoolingZoneParams p;
    p.thermal_mass = 100.0;
    p.crac_capacity = 5000.0;
    return p;
}

TEST(CracCop, KnownCurveValues)
{
    // COP(T) = 0.0068 T^2 + 0.0008 T + 0.458 (the HP CRAC curve).
    EXPECT_NEAR(cracCop(15.0), 0.0068 * 225.0 + 0.012 + 0.458, 1e-12);
    EXPECT_NEAR(cracCop(0.0), 0.458, 1e-12);
    // Warmer supply air is cheaper to provide.
    EXPECT_GT(cracCop(25.0), cracCop(15.0));
}

TEST(CracCop, NegativeSupplyDies)
{
    EXPECT_DEATH(cracCop(-1.0), "negative");
}

TEST(CoolingZone, StartsAtAmbient)
{
    CoolingZone zone("z", {0, 1}, smallParams());
    EXPECT_DOUBLE_EQ(zone.temperature(), 18.0);
    EXPECT_FALSE(zone.redlined());
    EXPECT_EQ(zone.members().size(), 2u);
}

TEST(CoolingZone, HeatsUpWithoutCooling)
{
    CoolingZone zone("z", {0}, smallParams());
    double prev = zone.temperature();
    for (int i = 0; i < 20; ++i) {
        zone.step(500.0);
        EXPECT_GT(zone.temperature(), prev);
        prev = zone.temperature();
    }
}

TEST(CoolingZone, ExtractionBalancesHeat)
{
    auto p = smallParams();
    CoolingZone zone("z", {0}, p);
    // Let it heat, then extract exactly the incoming heat: temperature
    // must decay towards ambient via leakage.
    for (int i = 0; i < 50; ++i)
        zone.step(800.0);
    double hot = zone.temperature();
    zone.setExtraction(800.0);
    for (int i = 0; i < 400; ++i)
        zone.step(800.0);
    EXPECT_LT(zone.temperature(), hot);
    EXPECT_NEAR(zone.temperature(), p.ambient_c, 0.5);
}

TEST(CoolingZone, SteadyStateMatchesRequiredExtraction)
{
    auto p = smallParams();
    CoolingZone zone("z", {0}, p);
    double target = 27.0;
    double it = 900.0;
    zone.setExtraction(zone.requiredExtraction(it, target));
    for (int i = 0; i < 3000; ++i)
        zone.step(it);
    EXPECT_NEAR(zone.temperature(), target, 0.5);
}

TEST(CoolingZone, ExtractionClampedToCapacity)
{
    auto p = smallParams();
    CoolingZone zone("z", {0}, p);
    zone.setExtraction(1e9);
    EXPECT_DOUBLE_EQ(zone.extraction(), p.crac_capacity);
    zone.setExtraction(-5.0);
    EXPECT_DOUBLE_EQ(zone.extraction(), 0.0);
}

TEST(CoolingZone, CannotCoolBelowAmbient)
{
    CoolingZone zone("z", {0}, smallParams());
    zone.setExtraction(5000.0);
    for (int i = 0; i < 200; ++i)
        zone.step(100.0);
    EXPECT_GE(zone.temperature(), smallParams().ambient_c - 1e-9);
    // And the CRAC only pays for the heat actually there.
    EXPECT_LE(zone.heatRemoved(), 100.0 + 1e-9);
}

TEST(CoolingZone, ElectricFollowsCop)
{
    CoolingZone zone("z", {0}, smallParams());
    for (int i = 0; i < 50; ++i)
        zone.step(1000.0);  // warm it up first
    zone.setExtraction(1000.0);
    zone.step(1000.0);
    EXPECT_NEAR(zone.cracElectric(),
                1000.0 / cracCop(smallParams().supply_c), 1e-9);
}

TEST(CoolingZone, RedlineLatches)
{
    auto p = smallParams();
    p.redline_c = 30.0;
    CoolingZone zone("z", {0}, p);
    for (int i = 0; i < 500 && !zone.redlined(); ++i)
        zone.step(3000.0);
    EXPECT_TRUE(zone.redlined());
    // Cooling afterwards does not clear the latch.
    zone.setExtraction(5000.0);
    for (int i = 0; i < 500; ++i)
        zone.step(0.0);
    EXPECT_TRUE(zone.redlined());
}

TEST(CoolingZone, BadParamsDie)
{
    EXPECT_DEATH(CoolingZone("z", {}, smallParams()), "no members");
    auto p = smallParams();
    p.thermal_mass = 0.0;
    EXPECT_DEATH(CoolingZone("z", {0}, p), "thermal mass");
    auto q = smallParams();
    q.crac_capacity = 0.0;
    EXPECT_DEATH(CoolingZone("z", {0}, q), "CRAC capacity");
    auto r = smallParams();
    r.leak_per_tick = 1.0;
    EXPECT_DEATH(CoolingZone("z", {0}, r), "leak");
}

TEST(CoolingZone, NegativeItPowerPanics)
{
    CoolingZone zone("z", {0}, smallParams());
    EXPECT_DEATH(zone.step(-1.0), "negative IT power");
}

} // namespace
