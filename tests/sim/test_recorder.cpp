/**
 * @file
 * Tests for the time-series Recorder.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/fixtures.h"
#include "sim/recorder.h"
#include "util/csv.h"

namespace {

using namespace nps::sim;

class RecorderTest : public ::testing::Test
{
  protected:
    RecorderTest() : cluster_(nps_test::smallCluster(0.3)) {}

    /** Run the cluster with the recorder attached, n ticks. */
    void
    run(Recorder &rec, size_t n)
    {
        MetricsCollector metrics;
        Engine engine(cluster_, metrics);
        // Hold by non-owning alias: the engine wants shared_ptr.
        engine.addActor(std::shared_ptr<Actor>(&rec,
                                               [](Actor *) {}));
        engine.run(n);
        // One extra observe so the final evaluated tick is sampled too.
        rec.observe(n);
    }

    Cluster cluster_;
};

TEST_F(RecorderTest, RecordsEveryEvaluatedTick)
{
    Recorder rec(cluster_, {});
    run(rec, 10);
    EXPECT_EQ(rec.samples(), 10u);
    EXPECT_EQ(rec.ticks().front(), 0u);
    EXPECT_EQ(rec.ticks().back(), 9u);
    EXPECT_EQ(rec.groupPower().size(), 10u);
    EXPECT_GT(rec.groupPower()[0], 0.0);
}

TEST_F(RecorderTest, SignalsMatchClusterState)
{
    Recorder rec(cluster_, {});
    run(rec, 5);
    // Flat demand: the last sample equals the live values.
    EXPECT_DOUBLE_EQ(rec.groupPower().back(),
                     cluster_.lastTick().total_power);
    for (const auto &srv : cluster_.servers()) {
        EXPECT_DOUBLE_EQ(rec.serverPower(srv.id()).back(),
                         srv.lastPower());
        EXPECT_DOUBLE_EQ(rec.serverUtil(srv.id()).back(),
                         srv.lastApparentUtil());
        EXPECT_EQ(rec.serverPState(srv.id()).back(), 0);
    }
    EXPECT_DOUBLE_EQ(rec.enclosurePower(0).back(),
                     cluster_.lastEnclosurePower(0));
}

TEST_F(RecorderTest, StrideSkipsTicks)
{
    Recorder::Options opts;
    opts.stride = 4;
    Recorder rec(cluster_, opts);
    run(rec, 12);
    ASSERT_EQ(rec.samples(), 3u);
    EXPECT_EQ(rec.ticks()[0], 0u);
    EXPECT_EQ(rec.ticks()[1], 4u);
    EXPECT_EQ(rec.ticks()[2], 8u);
}

TEST_F(RecorderTest, OffServerRecordedAsMinusOne)
{
    cluster_.placeVm(5, 4);
    cluster_.server(5).powerOff();
    Recorder rec(cluster_, {});
    run(rec, 3);
    EXPECT_EQ(rec.serverPState(5).back(), -1);
    EXPECT_DOUBLE_EQ(rec.serverPower(5).back(),
                     cluster_.server(5).spec().offWatts());
}

TEST_F(RecorderTest, SelectiveCapture)
{
    Recorder::Options opts;
    opts.servers = false;
    opts.enclosures = false;
    Recorder rec(cluster_, opts);
    run(rec, 4);
    EXPECT_EQ(rec.groupPower().size(), 4u);
    EXPECT_DEATH(rec.serverPower(0), "not captured");
    EXPECT_DEATH(rec.enclosurePower(0), "not captured");
}

TEST_F(RecorderTest, CsvRoundTripShape)
{
    Recorder rec(cluster_, {});
    run(rec, 6);
    std::ostringstream out;
    rec.writeCsv(out);
    auto doc = nps::util::parseCsv(out.str());
    // Header + 6 samples.
    ASSERT_EQ(doc.numRows(), 7u);
    // tick + 3 group + 1 enclosure + 6 servers x 3 signals.
    EXPECT_EQ(doc.rows[0].size(), 1u + 3u + 1u + 18u);
    EXPECT_EQ(doc.rows[0][0], "tick");
    EXPECT_EQ(doc.rows[1][0], "0");
    // Power columns parse as numbers.
    EXPECT_GT(std::stod(doc.rows[1][1]), 0.0);
}

TEST_F(RecorderTest, ZeroStrideDies)
{
    Recorder::Options opts;
    opts.stride = 0;
    EXPECT_DEATH(Recorder(cluster_, opts), "stride");
}

TEST_F(RecorderTest, BadAccessorsPanic)
{
    Recorder rec(cluster_, {});
    EXPECT_DEATH(rec.serverPower(99), "not captured");
    EXPECT_DEATH(rec.serverUtil(99), "not captured");
    EXPECT_DEATH(rec.serverPState(99), "not captured");
}

} // namespace
