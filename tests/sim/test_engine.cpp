/**
 * @file
 * Tests for the discrete-time engine: scheduling order, period handling,
 * the no-actuation-at-tick-0 rule, and observe() delivery.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/fixtures.h"
#include "sim/engine.h"

namespace {

using namespace nps::sim;

/** Records every step and observation it receives. */
class ProbeActor : public Actor
{
  public:
    ProbeActor(std::string name, unsigned period,
               std::vector<std::string> *log)
        : name_(std::move(name)), period_(period), log_(log)
    {
    }

    const std::string &name() const override { return name_; }
    unsigned period() const override { return period_; }

    void
    observe(size_t tick) override
    {
        (void)tick;
        ++observations;
    }

    void
    step(size_t tick) override
    {
        log_->push_back(name_ + "@" + std::to_string(tick));
        steps.push_back(tick);
    }

    std::vector<size_t> steps;
    unsigned observations = 0;

  private:
    std::string name_;
    unsigned period_;
    std::vector<std::string> *log_;
};

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest() : cluster_(nps_test::smallCluster()), metrics_(),
                   engine_(cluster_, metrics_)
    {
    }

    Cluster cluster_;
    MetricsCollector metrics_;
    Engine engine_;
    std::vector<std::string> log_;
};

TEST_F(EngineTest, NoStepsAtTickZero)
{
    auto a = std::make_shared<ProbeActor>("a", 1, &log_);
    engine_.addActor(a);
    engine_.run(1);
    EXPECT_TRUE(a->steps.empty());
    EXPECT_EQ(a->observations, 1u);
    EXPECT_EQ(metrics_.summary().ticks, 1u);
}

TEST_F(EngineTest, PeriodsRespected)
{
    auto fast = std::make_shared<ProbeActor>("fast", 1, &log_);
    auto slow = std::make_shared<ProbeActor>("slow", 5, &log_);
    engine_.addActor(fast);
    engine_.addActor(slow);
    engine_.run(11);
    EXPECT_EQ(fast->steps.size(), 10u);  // ticks 1..10
    ASSERT_EQ(slow->steps.size(), 2u);   // ticks 5 and 10
    EXPECT_EQ(slow->steps[0], 5u);
    EXPECT_EQ(slow->steps[1], 10u);
    EXPECT_EQ(fast->observations, 11u);
}

TEST_F(EngineTest, CoarseActorsStepFirst)
{
    auto fast = std::make_shared<ProbeActor>("fast", 1, &log_);
    auto slow = std::make_shared<ProbeActor>("slow", 10, &log_);
    // Insert the fine one first; order must still be coarse-first.
    engine_.addActor(fast);
    engine_.addActor(slow);
    engine_.run(11);
    auto slow_pos = std::find(log_.begin(), log_.end(), "slow@10");
    auto fast_pos = std::find(log_.begin(), log_.end(), "fast@10");
    ASSERT_NE(slow_pos, log_.end());
    ASSERT_NE(fast_pos, log_.end());
    EXPECT_LT(slow_pos - log_.begin(), fast_pos - log_.begin());
}

TEST_F(EngineTest, EqualPeriodsKeepInsertionOrder)
{
    auto first = std::make_shared<ProbeActor>("first", 2, &log_);
    auto second = std::make_shared<ProbeActor>("second", 2, &log_);
    engine_.addActor(first);
    engine_.addActor(second);
    engine_.run(3);
    ASSERT_EQ(log_.size(), 2u);
    EXPECT_EQ(log_[0], "first@2");
    EXPECT_EQ(log_[1], "second@2");
}

TEST_F(EngineTest, NowAdvancesAcrossRuns)
{
    auto a = std::make_shared<ProbeActor>("a", 3, &log_);
    engine_.addActor(a);
    engine_.run(4);  // ticks 0..3, step at 3
    EXPECT_EQ(engine_.now(), 4u);
    engine_.run(3);  // ticks 4..6, step at 6
    EXPECT_EQ(engine_.now(), 7u);
    ASSERT_EQ(a->steps.size(), 2u);
    EXPECT_EQ(a->steps[1], 6u);
}

TEST_F(EngineTest, MetricsRecordedEveryTick)
{
    engine_.run(17);
    EXPECT_EQ(metrics_.summary().ticks, 17u);
}

TEST_F(EngineTest, ActorAddedBetweenRunsJoinsCoarseFirstSchedule)
{
    auto fast = std::make_shared<ProbeActor>("fast", 1, &log_);
    engine_.addActor(fast);
    engine_.run(5);  // ticks 0..4
    // Registration between runs is allowed; the schedule is rebuilt at
    // the next run() and the newcomer slots into coarse-first order.
    auto slow = std::make_shared<ProbeActor>("slow", 2, &log_);
    engine_.addActor(slow);
    engine_.run(6);  // ticks 5..10
    ASSERT_EQ(slow->steps.size(), 3u);  // ticks 6, 8, 10
    EXPECT_EQ(slow->steps[0], 6u);
    EXPECT_EQ(slow->observations, 6u);  // observes from tick 5 only
    auto slow_pos = std::find(log_.begin(), log_.end(), "slow@6");
    auto fast_pos = std::find(log_.begin(), log_.end(), "fast@6");
    ASSERT_NE(slow_pos, log_.end());
    ASSERT_NE(fast_pos, log_.end());
    EXPECT_LT(slow_pos - log_.begin(), fast_pos - log_.begin());
}

TEST_F(EngineTest, AddActorDefersSortingUntilRun)
{
    // addActor() must not re-sort eagerly: before the first run() the
    // actors() view keeps insertion order even for out-of-order periods.
    auto fine = std::make_shared<ProbeActor>("fine", 1, &log_);
    auto coarse = std::make_shared<ProbeActor>("coarse", 9, &log_);
    engine_.addActor(fine);
    engine_.addActor(coarse);
    ASSERT_EQ(engine_.actors().size(), 2u);
    EXPECT_EQ(engine_.actors()[0]->name(), "fine");
    EXPECT_EQ(engine_.actors()[1]->name(), "coarse");
    engine_.run(10);
    // After run() the schedule order (coarse-first) is visible.
    EXPECT_EQ(engine_.actors()[0]->name(), "coarse");
    EXPECT_EQ(engine_.actors()[1]->name(), "fine");
}

TEST_F(EngineTest, ReplacementActorKeepsPredecessorsSchedulePosition)
{
    // A controller instance rebuilt after a fault-driven restart
    // re-registers under the same name. The replacement must re-enter
    // the lazily rebuilt schedule in its predecessor's deterministic
    // position: coarse-first, and the original slot among equal periods.
    auto a = std::make_shared<ProbeActor>("a", 2, &log_);
    auto b = std::make_shared<ProbeActor>("b", 2, &log_);
    auto c = std::make_shared<ProbeActor>("c", 2, &log_);
    engine_.addActor(a);
    engine_.addActor(b);
    engine_.addActor(c);
    engine_.run(3);  // ticks 0..2, one step each at tick 2
    ASSERT_EQ(log_.size(), 3u);
    EXPECT_EQ(log_[1], "b@2");

    // Replace the middle actor; the roster must not grow, and the
    // replacement (not the predecessor) receives subsequent work.
    auto b2 = std::make_shared<ProbeActor>("b", 2, &log_);
    engine_.addActor(b2);
    ASSERT_EQ(engine_.actors().size(), 3u);
    log_.clear();
    engine_.run(2);  // ticks 3..4, one step each at tick 4
    ASSERT_EQ(log_.size(), 3u);
    EXPECT_EQ(log_[0], "a@4");
    EXPECT_EQ(log_[1], "b@4");
    EXPECT_EQ(log_[2], "c@4");
    EXPECT_EQ(b2->steps.size(), 1u);
    EXPECT_TRUE(b->steps.size() == 1u);  // predecessor saw nothing new
    EXPECT_EQ(b2->observations, 2u);
}

TEST_F(EngineTest, ReplacementWithDifferentPeriodResortsDeterministically)
{
    // The replacement may change its period (a restarted controller with
    // new params): it keeps the slot but the rebuilt schedule re-sorts,
    // so coarse-first still governs across distinct periods.
    auto fast = std::make_shared<ProbeActor>("x", 1, &log_);
    auto other = std::make_shared<ProbeActor>("y", 4, &log_);
    engine_.addActor(fast);
    engine_.addActor(other);
    engine_.run(5);
    log_.clear();
    auto coarse = std::make_shared<ProbeActor>("x", 8, &log_);
    engine_.addActor(coarse);
    engine_.run(4);  // ticks 5..8
    auto x_pos = std::find(log_.begin(), log_.end(), "x@8");
    auto y_pos = std::find(log_.begin(), log_.end(), "y@8");
    ASSERT_NE(x_pos, log_.end());
    ASSERT_NE(y_pos, log_.end());
    EXPECT_LT(x_pos - log_.begin(), y_pos - log_.begin());
    EXPECT_TRUE(fast->steps.empty() ||
                fast->steps.back() <= 4u);  // replaced instance retired
}

TEST_F(EngineTest, ActorsOrderingContractInBothPhases)
{
    // Pins the two-phase actors() ordering contract documented on
    // Engine::actors(): insertion order (with replacement reusing its
    // predecessor's slot) before the first run(), schedule order
    // (descending period, stable for ties) afterwards.
    auto fine = std::make_shared<ProbeActor>("fine", 1, &log_);
    auto mid_a = std::make_shared<ProbeActor>("mid_a", 5, &log_);
    auto coarse = std::make_shared<ProbeActor>("coarse", 10, &log_);
    auto mid_b = std::make_shared<ProbeActor>("mid_b", 5, &log_);
    engine_.addActor(fine);
    engine_.addActor(mid_a);
    engine_.addActor(coarse);
    engine_.addActor(mid_b);

    // Phase 1: insertion order, and a pre-run replacement reuses the
    // predecessor's slot instead of appending.
    auto mid_a2 = std::make_shared<ProbeActor>("mid_a", 5, &log_);
    engine_.addActor(mid_a2);
    ASSERT_EQ(engine_.actors().size(), 4u);
    EXPECT_EQ(engine_.actors()[0]->name(), "fine");
    EXPECT_EQ(engine_.actors()[1]->name(), "mid_a");
    EXPECT_EQ(engine_.actors()[1].get(), mid_a2.get());
    EXPECT_EQ(engine_.actors()[2]->name(), "coarse");
    EXPECT_EQ(engine_.actors()[3]->name(), "mid_b");

    // Phase 2: after run() the vector is in schedule order — descending
    // period, equal periods keeping their pre-sort relative order.
    engine_.run(11);
    ASSERT_EQ(engine_.actors().size(), 4u);
    EXPECT_EQ(engine_.actors()[0]->name(), "coarse");
    EXPECT_EQ(engine_.actors()[1]->name(), "mid_a");
    EXPECT_EQ(engine_.actors()[2]->name(), "mid_b");
    EXPECT_EQ(engine_.actors()[3]->name(), "fine");
    EXPECT_EQ(mid_a->steps.size(), 0u);   // replaced before any work
    EXPECT_EQ(mid_a2->steps.size(), 2u);  // ticks 5 and 10

    // The step log at tick 10 matches the reported schedule order.
    std::vector<std::string> tick10;
    for (const auto &e : log_)
        if (e.size() > 3 && e.substr(e.size() - 3) == "@10")
            tick10.push_back(e);
    ASSERT_EQ(tick10.size(), 4u);
    EXPECT_EQ(tick10[0], "coarse@10");
    EXPECT_EQ(tick10[1], "mid_a@10");
    EXPECT_EQ(tick10[2], "mid_b@10");
    EXPECT_EQ(tick10[3], "fine@10");
}

TEST_F(EngineTest, NullActorDies)
{
    EXPECT_DEATH(engine_.addActor(nullptr), "null actor");
}

TEST_F(EngineTest, ZeroPeriodDies)
{
    auto a = std::make_shared<ProbeActor>("z", 0, &log_);
    EXPECT_DEATH(engine_.addActor(a), "zero period");
}

} // namespace
