/**
 * @file
 * Property suite for the synthetic fleet generator (sim/fleetgen.h):
 * determinism per seed, validate()-clean tiered topologies at 10k
 * servers, bounded trace values, and bit-identical regeneration across
 * calls and thread counts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fleetgen.h"
#include "util/thread_pool.h"

namespace {

using namespace nps;
using sim::FleetGen;
using sim::FleetSpec;

FleetSpec
specOf(unsigned servers, uint64_t seed = 20080301)
{
    FleetSpec spec;
    spec.servers = servers;
    spec.seed = seed;
    return spec;
}

void
expectSameTraces(const std::vector<trace::UtilizationTrace> &a,
                 const std::vector<trace::UtilizationTrace> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name(), b[i].name()) << "vm " << i;
        EXPECT_EQ(a[i].workloadClass(), b[i].workloadClass()) << i;
        // Exact double equality: regeneration must be bit-identical.
        ASSERT_EQ(a[i].samples(), b[i].samples()) << "vm " << i;
    }
}

TEST(FleetGen, RejectsPartialZones)
{
    EXPECT_DEATH(FleetGen(specOf(777)), "whole number");
    EXPECT_DEATH(FleetGen(specOf(0)), "whole number");
}

TEST(FleetGen, TenThousandServerTopologyIsValid)
{
    FleetGen gen(specOf(10000));
    EXPECT_EQ(gen.zones(), 20u);
    sim::Topology topo = gen.topology();
    topo.validate(); // fatal() on any structural violation
    EXPECT_EQ(topo.num_servers, 10000u);
    EXPECT_EQ(topo.num_enclosures,
              gen.zones() * gen.spec().racks_per_zone *
                  gen.spec().enclosures_per_rack);
    EXPECT_TRUE(topo.hasTree());
    // dc -> 20 zones -> 10 racks each.
    ASSERT_EQ(topo.tree.size(), 1u);
    EXPECT_EQ(topo.tree[0].children.size(), 20u);
    for (const auto &zone : topo.tree[0].children)
        EXPECT_EQ(zone.children.size(), 10u);
}

TEST(FleetGen, TraceValuesBoundedAndSizedPerVm)
{
    FleetGen gen(specOf(1000));
    auto traces = gen.traces();
    ASSERT_EQ(traces.size(), 1000u);
    for (const auto &t : traces) {
        ASSERT_EQ(t.length(), gen.spec().trace_length);
        for (double v : t.samples()) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(FleetGen, DeterministicPerSeedAndDistinctAcrossSeeds)
{
    auto a = FleetGen(specOf(500, 1)).traces();
    auto b = FleetGen(specOf(500, 1)).traces();
    expectSameTraces(a, b);

    auto c = FleetGen(specOf(500, 2)).traces();
    ASSERT_EQ(a.size(), c.size());
    bool any_differ = false;
    for (size_t i = 0; i < a.size() && !any_differ; ++i)
        any_differ = a[i].samples() != c[i].samples();
    EXPECT_TRUE(any_differ) << "seed change must change the campaign";
}

TEST(FleetGen, TracesIdenticalAcrossThreadCounts)
{
    FleetGen gen(specOf(1000));
    auto serial = gen.traces(nullptr);
    for (unsigned threads : {2u, 4u, 8u}) {
        util::ThreadPool pool(threads);
        auto parallel = gen.traces(&pool);
        expectSameTraces(serial, parallel);
    }
}

TEST(FleetGen, TracesIndependentOfFleetSize)
{
    // A VM's trace is a pure function of (seed, vm id): growing the
    // fleet must not perturb the workloads of existing VMs.
    auto small = FleetGen(specOf(500)).traces();
    auto large = FleetGen(specOf(1500)).traces();
    for (size_t i = 0; i < small.size(); ++i)
        ASSERT_EQ(small[i].samples(), large[i].samples()) << "vm " << i;
}

TEST(FleetGen, VmFillControlsPopulation)
{
    FleetSpec spec = specOf(500);
    spec.vm_fill = 0.5;
    FleetGen gen(spec);
    EXPECT_EQ(gen.numVms(), 250u);
    EXPECT_EQ(gen.traces().size(), 250u);
}

} // namespace
