/**
 * @file
 * Tests for metric collection: violation rates per level, performance
 * loss, energy, and the bounded-violation-run diagnostic.
 */

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "sim/metrics.h"

namespace {

using namespace nps::sim;

TEST(Metrics, EmptySummary)
{
    MetricsCollector mc;
    auto s = mc.summary();
    EXPECT_EQ(s.ticks, 0u);
    EXPECT_EQ(s.energy, 0.0);
    EXPECT_EQ(s.perf_loss, 0.0);
}

TEST(Metrics, EnergyAndMeanPower)
{
    auto cl = nps_test::smallCluster(0.3);
    MetricsCollector mc;
    for (size_t t = 0; t < 10; ++t) {
        cl.evaluateTick(t);
        mc.record(cl, t);
    }
    auto s = mc.summary();
    EXPECT_EQ(s.ticks, 10u);
    EXPECT_NEAR(s.energy, s.mean_power * 10.0, 1e-9);
    EXPECT_NEAR(s.peak_power, s.mean_power, 1e-9);  // flat demand
    EXPECT_EQ(s.perf_loss, 0.0);
}

TEST(Metrics, NoViolationsAtLowLoad)
{
    auto cl = nps_test::smallCluster(0.2);
    MetricsCollector mc;
    cl.evaluateTick(0);
    mc.record(cl, 0);
    auto s = mc.summary();
    EXPECT_EQ(s.sm_violation, 0.0);
    EXPECT_EQ(s.em_violation, 0.0);
    EXPECT_EQ(s.gm_violation, 0.0);
}

TEST(Metrics, FullLoadViolatesEverything)
{
    // At full demand and P0, power is at max: above every off-max cap.
    auto cl = nps_test::smallCluster(1.0);
    MetricsCollector mc;
    cl.evaluateTick(0);
    mc.record(cl, 0);
    auto s = mc.summary();
    EXPECT_GT(s.sm_violation, 0.99);
    EXPECT_GT(s.em_violation, 0.99);
    EXPECT_GT(s.gm_violation, 0.99);
}

TEST(Metrics, PerfLossWhenSaturated)
{
    // Two VMs on one server exceeding capacity.
    auto cl = nps_test::smallCluster(0.6);
    cl.placeVm(1, 0);
    MetricsCollector mc;
    cl.evaluateTick(0);
    mc.record(cl, 0);
    auto s = mc.summary();
    EXPECT_GT(s.perf_loss, 0.0);
    EXPECT_LT(s.perf_loss, 1.0);
}

TEST(Metrics, OffServersExcludedFromSmViolations)
{
    auto cl = nps_test::smallCluster(0.2);
    // Drain and power off server 5.
    cl.placeVm(5, 4);
    cl.server(5).powerOff();
    MetricsCollector mc;
    cl.evaluateTick(0);
    mc.record(cl, 0);
    auto s = mc.summary();
    // 5 live servers recorded, not 6 (verified via violation counts:
    // with all under cap the rate is 0 either way, so force a violation
    // and check the denominator).
    EXPECT_EQ(s.sm_violation, 0.0);
}

TEST(Metrics, LongestViolationRun)
{
    auto low = nps_test::smallCluster(0.2);
    auto high = nps_test::smallCluster(1.0);
    MetricsCollector mc;
    // 3 violating ticks, 1 clean, 2 violating.
    for (int i = 0; i < 3; ++i) {
        high.evaluateTick(0);
        mc.record(high, 0);
    }
    low.evaluateTick(0);
    mc.record(low, 0);
    for (int i = 0; i < 2; ++i) {
        high.evaluateTick(0);
        mc.record(high, 0);
    }
    EXPECT_EQ(mc.longestGroupViolationRun(), 3u);
}

TEST(Metrics, SeriesRetainedWhenEnabled)
{
    auto cl = nps_test::smallCluster(0.3);
    MetricsCollector with(true), without(false);
    for (size_t t = 0; t < 5; ++t) {
        cl.evaluateTick(t);
        with.record(cl, t);
        without.record(cl, t);
    }
    EXPECT_EQ(with.powerSeries().size(), 5u);
    EXPECT_EQ(with.perfSeries().size(), 5u);
    EXPECT_TRUE(without.powerSeries().empty());
    EXPECT_DOUBLE_EQ(with.perfSeries()[0], 1.0);
}

TEST(Metrics, ClearResets)
{
    auto cl = nps_test::smallCluster(0.3);
    MetricsCollector mc(true);
    cl.evaluateTick(0);
    mc.record(cl, 0);
    mc.clear();
    EXPECT_EQ(mc.summary().ticks, 0u);
    EXPECT_TRUE(mc.powerSeries().empty());
}

TEST(Metrics, PowerSavings)
{
    MetricsSummary base, scen;
    base.energy = 100.0;
    scen.energy = 64.0;
    EXPECT_NEAR(powerSavings(base, scen), 0.36, 1e-12);
    scen.energy = 120.0;
    EXPECT_LT(powerSavings(base, scen), 0.0);
}

TEST(Metrics, PowerSavingsZeroBaselineDies)
{
    MetricsSummary base, scen;
    EXPECT_DEATH(powerSavings(base, scen), "baseline");
}

} // namespace
