/**
 * @file
 * Tests for model calibration: the least-squares fit must recover a
 * ground-truth machine from (possibly noisy) measurements, reproducing
 * the paper's calibrate-then-curve-fit flow.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/calibration.h"

namespace {

using namespace nps::model;

TEST(FitLine, ExactRecovery)
{
    std::vector<PowerSample> samples;
    for (double u = 0.0; u <= 1.0; u += 0.25)
        samples.push_back({u, 40.0 * u + 50.0});
    auto fit = fitLine(samples);
    EXPECT_NEAR(fit.slope, 40.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 50.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, TwoPoints)
{
    auto fit = fitLine({{0.0, 10.0}, {1.0, 30.0}});
    EXPECT_NEAR(fit.slope, 20.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 10.0, 1e-9);
}

TEST(FitLine, TooFewSamplesDies)
{
    EXPECT_DEATH(fitLine({{0.5, 1.0}}), "two samples");
}

TEST(FitLine, DegenerateGridDies)
{
    EXPECT_DEATH(fitLine({{0.5, 1.0}, {0.5, 2.0}}), "degenerate");
}

TEST(FitLine, R2DropsWithNoise)
{
    std::vector<PowerSample> clean, noisy;
    for (double u = 0.0; u <= 1.0; u += 0.1) {
        clean.push_back({u, 10.0 * u});
        noisy.push_back({u, 10.0 * u + (u * 7919.0 - std::floor(
                                            u * 7919.0) - 0.5) * 4.0});
    }
    EXPECT_GT(fitLine(clean).r2, fitLine(noisy).r2);
}

TEST(SimulatedMachine, NoiselessMatchesTruth)
{
    SimulatedMachine mut(bladeA(), 0.0, 1);
    EXPECT_EQ(mut.numPStates(), 5u);
    EXPECT_DOUBLE_EQ(mut.freqMhz(0), 1000.0);
    EXPECT_DOUBLE_EQ(mut.measure(0, 0.5),
                     bladeA().model().powerAt(0, 0.5));
}

TEST(SimulatedMachine, NoiseIsZeroMean)
{
    SimulatedMachine mut(bladeA(), 2.0, 7);
    double truth = bladeA().model().powerAt(0, 0.5);
    double sum = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        sum += mut.measure(0, 0.5);
    EXPECT_NEAR(sum / n, truth, 0.2);
}

TEST(Calibrator, RecoversTruthWithoutNoise)
{
    SimulatedMachine mut(serverB(), 0.0, 1);
    Calibrator cal({0.0, 0.25, 0.5, 0.75, 1.0}, 1);
    auto fits = cal.calibrate(mut);
    ASSERT_EQ(fits.size(), 6u);
    for (size_t p = 0; p < fits.size(); ++p) {
        EXPECT_NEAR(fits[p].slope,
                    serverB().pstates().at(p).dyn_watts, 1e-9);
        EXPECT_NEAR(fits[p].intercept,
                    serverB().pstates().at(p).idle_watts, 1e-9);
    }
}

TEST(Calibrator, BuildSpecApproximatesTruthUnderNoise)
{
    SimulatedMachine mut(bladeA(), 1.0, 99);
    Calibrator cal({0.0, 0.2, 0.4, 0.6, 0.8, 1.0}, 20);
    auto spec = cal.buildSpec(mut, "BladeA-cal", 2.0, 8);
    ASSERT_EQ(spec.pstates().size(), 5u);
    for (size_t p = 0; p < 5; ++p) {
        EXPECT_NEAR(spec.pstates().at(p).dyn_watts,
                    bladeA().pstates().at(p).dyn_watts, 3.0);
        EXPECT_NEAR(spec.pstates().at(p).idle_watts,
                    bladeA().pstates().at(p).idle_watts, 3.0);
        EXPECT_DOUBLE_EQ(spec.pstates().at(p).freq_mhz,
                         bladeA().pstates().at(p).freq_mhz);
    }
}

TEST(Calibrator, BuildSpecEnforcesMonotonicityUnderHeavyNoise)
{
    // Enough noise to scramble adjacent states; the repaired spec must
    // still satisfy the PStateTable invariants (constructing it proves
    // that — PStateTable fatals otherwise).
    SimulatedMachine mut(serverB(), 8.0, 3);
    Calibrator cal({0.0, 0.5, 1.0}, 3);
    auto spec = cal.buildSpec(mut, "noisy", 5.0, 12);
    EXPECT_EQ(spec.pstates().size(), 6u);
}

TEST(Calibrator, BadLevelsDie)
{
    EXPECT_DEATH(Calibrator({0.5}, 3), "two utilization levels");
    EXPECT_DEATH(Calibrator({0.0, 1.5}, 3), "out of");
    EXPECT_DEATH(Calibrator({0.0, 1.0}, 0), "repeats");
}

} // namespace
