/**
 * @file
 * Tests for the reference machine specs and the registry: the qualitative
 * properties the paper states for Blade A and Server B must hold in the
 * synthetic calibration.
 */

#include <gtest/gtest.h>

#include "model/machine.h"

namespace {

using namespace nps::model;

TEST(Machine, BladeAShape)
{
    auto m = bladeA();
    EXPECT_EQ(m.name(), "BladeA");
    EXPECT_EQ(m.pstates().size(), 5u);
    EXPECT_DOUBLE_EQ(m.pstates().fastest().freq_mhz, 1000.0);
    EXPECT_DOUBLE_EQ(m.pstates().slowest().freq_mhz, 533.0);
    EXPECT_GT(m.bootTicks(), 0u);
    EXPECT_GT(m.offWatts(), 0.0);
    EXPECT_LT(m.offWatts(), m.model().idlePower(0));
}

TEST(Machine, ServerBShape)
{
    auto m = serverB();
    EXPECT_EQ(m.name(), "ServerB");
    EXPECT_EQ(m.pstates().size(), 6u);
    EXPECT_DOUBLE_EQ(m.pstates().fastest().freq_mhz, 2600.0);
    EXPECT_DOUBLE_EQ(m.pstates().slowest().freq_mhz, 1000.0);
}

TEST(Machine, BladeAHasWiderRelativePowerRangeThanServerB)
{
    // "Server B has 6 P-states relatively uniformly clustered, but with a
    // smaller range in power, compared to the five non-uniformly
    // clustered, but higher range, P-states of Blade A."
    auto blade = bladeA();
    auto server = serverB();
    double blade_range =
        1.0 - blade.pstates().slowest().peakPower() /
                  blade.pstates().fastest().peakPower();
    double server_range =
        1.0 - server.pstates().slowest().peakPower() /
                  server.pstates().fastest().peakPower();
    EXPECT_GT(blade_range, server_range);
    EXPECT_GT(blade_range, 0.30);
    EXPECT_LT(server_range, 0.30);
}

TEST(Machine, ServerBHasHigherIdleFraction)
{
    auto blade = bladeA();
    auto server = serverB();
    double blade_idle = blade.model().idlePower(0) / blade.model()
                                                         .maxPower();
    double server_idle = server.model().idlePower(0) / server.model()
                                                           .maxPower();
    EXPECT_GT(server_idle, blade_idle);
    // High baseline idle power is the premise of the paper's conclusion
    // that consolidation dominates for current systems.
    EXPECT_GT(server_idle, 0.6);
}

TEST(Machine, ServerBFrequenciesMoreUniform)
{
    // Blade A's P-states are non-uniformly clustered; Server B's last
    // step (1.8 GHz -> 1.0 GHz) aside, its steps are uniform 200 MHz.
    auto server = serverB();
    for (size_t i = 1; i + 1 < server.pstates().size(); ++i) {
        double step = server.pstates().at(i - 1).freq_mhz -
                      server.pstates().at(i).freq_mhz;
        EXPECT_DOUBLE_EQ(step, 200.0);
    }
}

TEST(Machine, MachineByName)
{
    EXPECT_EQ(machineByName("BladeA").name(), "BladeA");
    EXPECT_EQ(machineByName("ServerB").name(), "ServerB");
    EXPECT_DEATH(machineByName("PDP11"), "unknown machine");
}

TEST(Machine, ExtremesOnly)
{
    auto two = bladeA().extremesOnly();
    EXPECT_EQ(two.pstates().size(), 2u);
    EXPECT_EQ(two.name(), "BladeA-2p");
    EXPECT_DOUBLE_EQ(two.pstates().fastest().freq_mhz, 1000.0);
    EXPECT_DOUBLE_EQ(two.pstates().slowest().freq_mhz, 533.0);
    // Platform parameters carry over.
    EXPECT_DOUBLE_EQ(two.offWatts(), bladeA().offWatts());
}

TEST(Machine, WithIdleScaled)
{
    auto half = bladeA().withIdleScaled(0.5);
    for (size_t p = 0; p < half.pstates().size(); ++p) {
        EXPECT_DOUBLE_EQ(half.pstates().at(p).idle_watts,
                         bladeA().pstates().at(p).idle_watts * 0.5);
        EXPECT_DOUBLE_EQ(half.pstates().at(p).dyn_watts,
                         bladeA().pstates().at(p).dyn_watts);
    }
}

TEST(MachineRegistry, StandardContainsBoth)
{
    auto reg = MachineRegistry::standard();
    EXPECT_TRUE(reg.contains("BladeA"));
    EXPECT_TRUE(reg.contains("ServerB"));
    EXPECT_FALSE(reg.contains("Cray1"));
    EXPECT_EQ(reg.get("BladeA")->name(), "BladeA");
}

TEST(MachineRegistry, GetUnknownDies)
{
    auto reg = MachineRegistry::standard();
    EXPECT_DEATH(reg.get("Cray1"), "unknown machine");
}

TEST(MachineRegistry, SharedSpecIdentity)
{
    auto reg = MachineRegistry::standard();
    EXPECT_EQ(reg.get("BladeA").get(), reg.get("BladeA").get());
}

TEST(MachineRegistry, AddReplaces)
{
    auto reg = MachineRegistry::standard();
    reg.add(bladeA().withIdleScaled(0.5));
    EXPECT_TRUE(reg.contains("BladeA-idleX"));
}

} // namespace
