/**
 * @file
 * Tests for P-state tables: invariants, quantization, and subsetting.
 */

#include <gtest/gtest.h>

#include "model/machine.h"
#include "model/pstate.h"

namespace {

using nps::model::PState;
using nps::model::PStateTable;

PStateTable
threeStates()
{
    return PStateTable({
        {1000.0, 40.0, 50.0},
        {800.0, 35.0, 45.0},
        {500.0, 30.0, 40.0},
    });
}

TEST(PState, PowerAt)
{
    PState s{1000.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(s.powerAt(0.0), 50.0);
    EXPECT_DOUBLE_EQ(s.powerAt(1.0), 90.0);
    EXPECT_DOUBLE_EQ(s.powerAt(0.5), 70.0);
    EXPECT_DOUBLE_EQ(s.peakPower(), 90.0);
}

TEST(PState, PowerAtOutOfRangeDies)
{
    PState s{1000.0, 40.0, 50.0};
    EXPECT_DEATH(s.powerAt(-0.1), "utilization");
    EXPECT_DEATH(s.powerAt(1.1), "utilization");
}

TEST(PStateTable, BasicAccessors)
{
    auto t = threeStates();
    EXPECT_EQ(t.size(), 3u);
    EXPECT_DOUBLE_EQ(t.fastest().freq_mhz, 1000.0);
    EXPECT_DOUBLE_EQ(t.slowest().freq_mhz, 500.0);
    EXPECT_EQ(t.slowestIndex(), 2u);
    EXPECT_DOUBLE_EQ(t.at(1).freq_mhz, 800.0);
}

TEST(PStateTable, AtOutOfRangeDies)
{
    auto t = threeStates();
    EXPECT_DEATH(t.at(3), "out of range");
}

TEST(PStateTable, EmptyDies)
{
    EXPECT_DEATH(PStateTable({}), "empty");
}

TEST(PStateTable, NonDecreasingFrequencyDies)
{
    EXPECT_DEATH(PStateTable({{1000.0, 40.0, 50.0},
                              {1000.0, 35.0, 45.0}}),
                 "strictly decrease");
}

TEST(PStateTable, IncreasingPeakPowerDies)
{
    EXPECT_DEATH(PStateTable({{1000.0, 40.0, 50.0},
                              {800.0, 60.0, 50.0}}),
                 "peak power");
}

TEST(PStateTable, IncreasingIdlePowerDies)
{
    EXPECT_DEATH(PStateTable({{1000.0, 40.0, 50.0},
                              {800.0, 20.0, 55.0}}),
                 "idle power");
}

TEST(PStateTable, QuantizeUpPrefersCoveringState)
{
    auto t = threeStates();
    EXPECT_EQ(t.quantizeUp(900.0), 0u);   // needs >= 900 -> 1000
    EXPECT_EQ(t.quantizeUp(800.0), 1u);   // exactly 800
    EXPECT_EQ(t.quantizeUp(700.0), 1u);   // 800 covers 700
    EXPECT_EQ(t.quantizeUp(500.0), 2u);
    EXPECT_EQ(t.quantizeUp(100.0), 2u);   // clamps to slowest
    EXPECT_EQ(t.quantizeUp(2000.0), 0u);  // clamps to fastest
}

TEST(PStateTable, QuantizeNearest)
{
    auto t = threeStates();
    EXPECT_EQ(t.quantizeNearest(990.0), 0u);
    EXPECT_EQ(t.quantizeNearest(810.0), 1u);
    EXPECT_EQ(t.quantizeNearest(600.0), 2u);
    EXPECT_EQ(t.quantizeNearest(651.0), 1u);
}

TEST(PStateTable, RelSpeed)
{
    auto t = threeStates();
    EXPECT_DOUBLE_EQ(t.relSpeed(0), 1.0);
    EXPECT_DOUBLE_EQ(t.relSpeed(1), 0.8);
    EXPECT_DOUBLE_EQ(t.relSpeed(2), 0.5);
}

TEST(PStateTable, Subset)
{
    auto sub = threeStates().subset({0, 2});
    EXPECT_EQ(sub.size(), 2u);
    EXPECT_DOUBLE_EQ(sub.at(1).freq_mhz, 500.0);
}

TEST(PStateTable, SubsetBadIndicesDie)
{
    auto t = threeStates();
    EXPECT_DEATH(t.subset({}), "empty");
    EXPECT_DEATH(t.subset({0, 5}), "out of range");
    EXPECT_DEATH(t.subset({1, 1}), "increase");
    EXPECT_DEATH(t.subset({2, 0}), "increase");
}

TEST(PStateTable, ExtremesOnly)
{
    auto two = threeStates().extremesOnly();
    EXPECT_EQ(two.size(), 2u);
    EXPECT_DOUBLE_EQ(two.fastest().freq_mhz, 1000.0);
    EXPECT_DOUBLE_EQ(two.slowest().freq_mhz, 500.0);
}

TEST(PStateTable, ExtremesOnlyOfTwoIsIdentity)
{
    auto two = threeStates().extremesOnly();
    auto again = two.extremesOnly();
    EXPECT_EQ(again.size(), 2u);
}

TEST(PStateTable, ReferenceMachinesSatisfyInvariants)
{
    // Constructing them at all proves the invariants; spot-check shape.
    auto blade = nps::model::bladeA();
    auto server = nps::model::serverB();
    EXPECT_EQ(blade.pstates().size(), 5u);
    EXPECT_EQ(server.pstates().size(), 6u);
    EXPECT_DOUBLE_EQ(blade.pstates().fastest().freq_mhz, 1000.0);
    EXPECT_DOUBLE_EQ(server.pstates().fastest().freq_mhz, 2600.0);
}

} // namespace
