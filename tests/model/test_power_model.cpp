/**
 * @file
 * Tests for the server power/performance model, including parameterized
 * monotonicity properties over both reference machines — the assumptions
 * the controllers' correctness rests on (Figure 5 "Models").
 */

#include <gtest/gtest.h>

#include <string>

#include "model/machine.h"
#include "model/power_model.h"

namespace {

using nps::model::PowerModel;
using nps::model::machineByName;

TEST(PowerModel, ServedWorkCapsAtRelSpeed)
{
    PowerModel m(machineByName("BladeA").pstates());
    EXPECT_DOUBLE_EQ(m.servedWork(0, 0.5), 0.5);
    EXPECT_DOUBLE_EQ(m.servedWork(0, 1.5), 1.0);
    // P4 of Blade A runs at 533/1000 of full speed.
    EXPECT_DOUBLE_EQ(m.servedWork(4, 0.9), 0.533);
}

TEST(PowerModel, ServedWorkNegativeDemandDies)
{
    PowerModel m(machineByName("BladeA").pstates());
    EXPECT_DEATH(m.servedWork(0, -0.1), "negative");
}

TEST(PowerModel, ApparentUtilSaturates)
{
    PowerModel m(machineByName("BladeA").pstates());
    EXPECT_DOUBLE_EQ(m.apparentUtil(0, 0.4), 0.4);
    EXPECT_DOUBLE_EQ(m.apparentUtil(4, 0.4), 0.4 / 0.533);
    EXPECT_DOUBLE_EQ(m.apparentUtil(4, 0.9), 1.0);
}

TEST(PowerModel, RealUtilInvertsApparent)
{
    PowerModel m(machineByName("ServerB").pstates());
    for (size_t p = 0; p < m.pstates().size(); ++p) {
        double demand = 0.3;
        double apparent = m.apparentUtil(p, demand);
        if (apparent < 1.0) {
            EXPECT_NEAR(m.realUtil(p, apparent), demand, 1e-12);
        }
    }
}

TEST(PowerModel, UtilForPowerInvertsPowerAt)
{
    PowerModel m(machineByName("BladeA").pstates());
    for (size_t p = 0; p < m.pstates().size(); ++p) {
        double watts = m.powerAt(p, 0.6);
        EXPECT_NEAR(m.utilForPower(p, watts), 0.6, 1e-12);
    }
}

TEST(PowerModel, UtilForPowerClamps)
{
    PowerModel m(machineByName("BladeA").pstates());
    EXPECT_DOUBLE_EQ(m.utilForPower(0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(m.utilForPower(0, 1e6), 1.0);
}

TEST(PowerModel, MaxPowerIsP0Peak)
{
    PowerModel m(machineByName("BladeA").pstates());
    EXPECT_DOUBLE_EQ(m.maxPower(), m.powerAt(0, 1.0));
}

TEST(PowerModel, BestStateRespectsUtilLimit)
{
    PowerModel m(machineByName("BladeA").pstates());
    size_t p = m.bestStateForDemand(0.2, 0.75);
    EXPECT_LE(m.apparentUtil(p, 0.2), 0.75);
    // At low demand the deepest state should win for Blade A.
    EXPECT_EQ(p, m.pstates().slowestIndex());
}

TEST(PowerModel, BestStateFallsBackToP0)
{
    PowerModel m(machineByName("BladeA").pstates());
    // Demand too high for any state to stay under the limit.
    EXPECT_EQ(m.bestStateForDemand(0.95, 0.5), 0u);
}

TEST(PowerModel, MaxPowerSlopePositive)
{
    EXPECT_GT(PowerModel(machineByName("BladeA").pstates())
                  .maxPowerSlope(), 0.0);
    EXPECT_GT(PowerModel(machineByName("ServerB").pstates())
                  .maxPowerSlope(), 0.0);
}

/**
 * Parameterized monotonicity properties over both reference machines.
 */
class ModelMonotonicity : public ::testing::TestWithParam<std::string>
{
  protected:
    PowerModel model() { return PowerModel(machineByName(GetParam())
                                               .pstates()); }
};

TEST_P(ModelMonotonicity, PowerIncreasesWithUtil)
{
    auto m = model();
    for (size_t p = 0; p < m.pstates().size(); ++p) {
        double prev = -1.0;
        for (double u = 0.0; u <= 1.0; u += 0.1) {
            double w = m.powerAt(p, u);
            EXPECT_GE(w, prev);
            prev = w;
        }
    }
}

TEST_P(ModelMonotonicity, DeeperStatesNeverCostMorePower)
{
    auto m = model();
    for (size_t p = 1; p < m.pstates().size(); ++p) {
        for (double u = 0.0; u <= 1.0; u += 0.1) {
            EXPECT_LE(m.powerAt(p, u), m.powerAt(p - 1, u) + 1e-12)
                << "state " << p << " util " << u;
        }
    }
}

TEST_P(ModelMonotonicity, PerfIncreasesWithFrequency)
{
    auto m = model();
    for (size_t p = 1; p < m.pstates().size(); ++p)
        EXPECT_LT(m.pstates().relSpeed(p), m.pstates().relSpeed(p - 1));
}

TEST_P(ModelMonotonicity, ServedWorkMonotoneInDemand)
{
    auto m = model();
    for (size_t p = 0; p < m.pstates().size(); ++p) {
        double prev = -1.0;
        for (double d = 0.0; d <= 2.0; d += 0.1) {
            double s = m.servedWork(p, d);
            EXPECT_GE(s, prev - 1e-12);
            prev = s;
        }
    }
}

TEST_P(ModelMonotonicity, PowerForDemandMonotoneInDemand)
{
    auto m = model();
    for (size_t p = 0; p < m.pstates().size(); ++p) {
        double prev = -1.0;
        for (double d = 0.0; d <= 1.5; d += 0.05) {
            double w = m.powerForDemand(p, d);
            EXPECT_GE(w, prev - 1e-12);
            prev = w;
        }
    }
}

TEST_P(ModelMonotonicity, BestStateNeverBeatenByOtherState)
{
    auto m = model();
    for (double d = 0.05; d <= 0.9; d += 0.05) {
        size_t best = m.bestStateForDemand(d, 0.95);
        double best_power = m.powerForDemand(best, d);
        for (size_t p = 0; p < m.pstates().size(); ++p) {
            if (m.apparentUtil(p, d) <= 0.95) {
                EXPECT_GE(m.powerForDemand(p, d) + 1e-12, best_power);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ReferenceMachines, ModelMonotonicity,
                         ::testing::Values("BladeA", "ServerB"));

} // namespace
