/**
 * @file
 * Replay equivalence — the headline contract of the online engine
 * (docs/STREAMING.md): a daemon fed the Figure-7 coordinated campaign
 * over a socket produces *byte-identical* artifacts (recorder CSV,
 * control-plane log, metrics export, decision trace, power series,
 * summary) to the batch simulator reading the same traces from memory,
 * at any thread count — and a daemon checkpointed mid-stream and
 * resumed against a feeder that picks up at the checkpoint tick is
 * byte-identical too. Reuses the checkpoint suite's artifact collector
 * so "everything the run exports" means exactly that.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <thread>

#include "ckpt/ckpt_test_util.h"
#include "stream/feed.h"
#include "stream/frame.h"
#include "stream/net.h"
#include "stream/source.h"
#include "stream/stream_source.h"

namespace {

using namespace nps;
using nps_ckpt_test::Artifacts;
using nps_ckpt_test::buildSim;
using nps_ckpt_test::collect;
using nps_ckpt_test::expectIdentical;
using nps_ckpt_test::Sim;

constexpr size_t kTotal = 360; // < trace length, as in the ckpt suite

/** Online-run build flags: stream.enabled arms the budget leases, as
 * `npsim --serve` does — so these tests additionally prove that armed
 * but always-refreshed leases are bit-transparent against the batch
 * reference, whose leases are off entirely. */
nps_ckpt_test::CkptCase
streamCase()
{
    nps_ckpt_test::CkptCase c;
    c.stream = true;
    return c;
}

stream::StreamConfig
streamConfig()
{
    stream::StreamConfig cfg;
    cfg.enabled = true;
    cfg.timeout_ms = 0; // in-process: wait for the barrier, never degrade
    return cfg;
}

/** Stream the golden campaign's ticks [start, end) into @p fd as NPSF
 * frames — exactly what `npsfeed --start-tick` does — then close it. */
std::thread
feederThread(int fd, size_t start, size_t end)
{
    return std::thread([fd, start, end] {
        const std::vector<trace::UtilizationTrace> &traces =
            nps_golden::goldenTraces();
        stream::FrameWriter w;
        stream::HelloFrame h;
        h.streams = static_cast<uint32_t>(traces.size());
        h.start_tick = start;
        h.total_ticks = end;
        w.hello(h);
        for (size_t t = start; t < end; ++t) {
            for (uint32_t vm = 0; vm < traces.size(); ++vm) {
                stream::SampleFrame s;
                s.tick = t;
                s.stream = vm;
                s.demand = traces[vm].at(t);
                w.sample(s);
            }
            w.tickEnd(t);
            if (!stream::writeAll(fd, w.data(), w.size()))
                break; // reader gone; the test will fail on comparison
            w.clear();
        }
        w.bye(end);
        stream::writeAll(fd, w.data(), w.size());
        ::close(fd);
    });
}

/** The batch reference, computed once (serial — the golden baseline). */
const Artifacts &
batchReference()
{
    static const Artifacts ref = [] {
        Sim s = buildSim({}, 1);
        s.coord->run(kTotal);
        return collect(s);
    }();
    return ref;
}

/** Run the campaign through a ClusterFeed over @p source. */
Artifacts
runFed(Sim &s, stream::TelemetrySource &source)
{
    stream::ClusterFeed feed(s.coord->cluster(), source,
                             streamConfig());
    s.coord->engine().setTickSource(&feed);
    s.coord->attachStreamHealth(&feed);
    size_t ran = s.coord->run(kTotal);
    EXPECT_EQ(ran, kTotal);
    // Nothing was ever missing: the oracle must have stayed quiet and
    // the demand must have been staged in full.
    EXPECT_EQ(feed.stats().missing_samples, 0u);
    EXPECT_EQ(feed.stats().ticks, kTotal);
    return collect(s);
}

TEST(ReplayEquivalence, OfflineSourceMatchesBatch)
{
    // The staging path itself is transparent: trace playback routed
    // through TelemetrySource + ClusterFeed + staged demand is
    // byte-identical to the classic in-memory path.
    for (unsigned threads : {1u, 8u}) {
        Sim s = buildSim(streamCase(), threads);
        stream::OfflineTraceSource source(nps_golden::goldenTraces());
        Artifacts got = runFed(s, source);
        expectIdentical(batchReference(), got);
    }
}

TEST(ReplayEquivalence, SocketFedStreamMatchesBatchAtAnyThreadCount)
{
    for (unsigned threads : {1u, 4u, 8u}) {
        int fds[2];
        ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
        std::thread feeder = feederThread(fds[1], 0, kTotal);

        Sim s = buildSim(streamCase(), threads);
        stream::StreamSource source(
            fds[0], s.coord->cluster().numVms(), streamConfig());
        Artifacts got = runFed(s, source);
        feeder.join();

        EXPECT_TRUE(source.sawHello());
        EXPECT_TRUE(source.sawBye());
        EXPECT_EQ(source.ingest()->timeouts, 0u);
        expectIdentical(batchReference(), got);
    }
}

TEST(ReplayEquivalence, CheckpointMidStreamThenResumeMatchesBatch)
{
    constexpr size_t kSplit = 180;

    // First half: daemon under 4 workers, feeder covers [0, 180) and
    // signs off at the split — the daemon checkpoints where the stream
    // ended, exactly the npsim --serve + --checkpoint-every flow.
    ckpt::SnapshotWriter snap_w;
    {
        int fds[2];
        ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
        std::thread feeder = feederThread(fds[1], 0, kSplit);

        Sim s = buildSim(streamCase(), 4);
        stream::StreamSource source(
            fds[0], s.coord->cluster().numVms(), streamConfig());
        stream::ClusterFeed feed(s.coord->cluster(), source,
                                 streamConfig());
        s.coord->engine().setTickSource(&feed);
        s.coord->attachStreamHealth(&feed);
        size_t ran = s.coord->run(kTotal); // stream ends the run early
        feeder.join();
        ASSERT_EQ(ran, kSplit);

        s.coord->saveState(snap_w);
        s.recorder->saveState(snap_w.section("recorder"));
        feed.saveState(snap_w.section("stream"));
    }
    std::string bytes = snap_w.serialize();

    // Second half: fresh process image, serial this time, feeder
    // resumes at the checkpoint tick.
    ckpt::SnapshotReader snap;
    std::string err;
    ASSERT_TRUE(snap.loadBytes(bytes, "<memory>", err)) << err;

    int fds[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    std::thread feeder = feederThread(fds[1], kSplit, kTotal);

    Sim s = buildSim(streamCase(), 1);
    stream::StreamSource source(fds[0], s.coord->cluster().numVms(),
                                streamConfig());
    stream::ClusterFeed feed(s.coord->cluster(), source,
                             streamConfig());
    s.coord->loadState(snap);
    {
        ckpt::SectionReader r = snap.section("recorder");
        s.recorder->loadState(r);
        r.expectEnd();
    }
    {
        ckpt::SectionReader r = snap.section("stream");
        feed.loadState(r);
        r.expectEnd();
    }
    s.coord->engine().setTickSource(&feed);
    s.coord->attachStreamHealth(&feed);

    size_t ran = s.coord->run(kTotal - kSplit);
    feeder.join();
    ASSERT_EQ(ran, kTotal - kSplit);
    EXPECT_EQ(source.hello().start_tick, kSplit);

    expectIdentical(batchReference(), collect(s));
}

} // namespace
