/**
 * @file
 * The degradation-equivalence property (docs/STREAMING.md): a telemetry
 * stream that goes silent for k ticks degrades — and recovers — exactly
 * like the PR-2 fault campaign that drops the same server's budget link
 * for the same window. Not approximately: the two runs must agree on
 * every DegradeStats counter, every recorded power/util/P-state sample,
 * and the recorder's `faults` column byte for byte, whether the lease
 * survives the window (short k) or expires into the conservative local
 * cap (long k), for blade servers (EM→SM link) and standalone servers
 * (GM→SM link) alike.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fixtures.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "model/machine.h"
#include "sim/recorder.h"
#include "stream/feed.h"
#include "stream/source.h"

namespace {

using namespace nps;

constexpr size_t kTicks = 800;

/** In-process source replaying @p traces with one stream dark during
 * [from, from + k). */
class SilencingSource : public stream::TelemetrySource
{
  public:
    SilencingSource(const std::vector<trace::UtilizationTrace> &traces,
                    size_t dark_vm, size_t from, size_t k)
        : traces_(traces), dark_vm_(dark_vm), from_(from), to_(from + k)
    {
    }

    size_t streams() const override { return traces_.size(); }

    bool pull(size_t tick, stream::TickBatch &batch) override
    {
        batch.reset(traces_.size(), tick);
        for (size_t i = 0; i < traces_.size(); ++i) {
            if (i == dark_vm_ && tick >= from_ && tick < to_)
                continue;
            batch.present[i] = 1;
            batch.demand[i] = traces_[i].at(tick);
            ++batch.samples;
        }
        return true;
    }

  private:
    const std::vector<trace::UtilizationTrace> &traces_;
    size_t dark_vm_;
    size_t from_;
    size_t to_;
};

/** One finished run: everything the equivalence property compares. */
struct RunResult
{
    std::string recorder_csv;
    fault::DegradeStats degrade;
    std::vector<double> power;
};

core::CoordinationConfig
baseConfig()
{
    core::CoordinationConfig cfg = core::coordinatedConfig();
    cfg.threads = 1;
    return cfg;
}

/** The fault-campaign run: traces drive demand, the injector drops the
 * @p link link to server @p server over [from, from + k). */
RunResult
runFaultCampaign(const char *link, size_t server, size_t from, size_t k,
                 double util)
{
    core::CoordinationConfig cfg = baseConfig();
    cfg.faults.enabled = true;
    char script[96];
    std::snprintf(script, sizeof script, "drop %s %zu %zu %zu 1\n", link,
                  server, from, from + k);
    cfg.faults.script = script;

    sim::Topology topo{6, 1, 4};
    core::Coordinator coord(cfg, topo, model::bladeA(),
                            nps_test::flatTraces(6, util, kTicks + 8),
                            /*keep_series=*/true);
    auto recorder = std::make_shared<sim::Recorder>(
        coord.cluster(), sim::Recorder::Options{});
    recorder->setFaultInjector(coord.faultInjector());
    coord.engine().addActor(recorder);
    coord.run(kTicks);

    RunResult r;
    std::ostringstream csv;
    recorder->writeCsv(csv);
    r.recorder_csv = csv.str();
    r.degrade = coord.degradeStats();
    r.power = coord.metrics().powerSeries();
    return r;
}

/** The online run: same cluster, demand arrives through a ClusterFeed
 * whose stream for server @p server's VM is silent over the same
 * window. No fault injector exists at all. */
RunResult
runSilentStream(size_t server, size_t from, size_t k, double util)
{
    core::CoordinationConfig cfg = baseConfig();
    // Online run: arms the budget leases exactly like faults.enabled
    // does, so silence can expire them (core/config.cpp).
    cfg.stream.enabled = true;

    sim::Topology topo{6, 1, 4};
    core::Coordinator coord(cfg, topo, model::bladeA(),
                            nps_test::flatTraces(6, util, kTicks + 8),
                            /*keep_series=*/true);
    // One VM per server in this fixture, placed in id order: the VM on
    // server s is VM s.
    EXPECT_EQ(coord.cluster().serverOf(static_cast<sim::VmId>(server)),
              static_cast<sim::ServerId>(server));

    std::vector<trace::UtilizationTrace> traces =
        nps_test::flatTraces(6, util, kTicks + 8);
    SilencingSource source(traces, server, from, k);
    stream::StreamConfig scfg;
    // Hold-last over the silence: with constant traces the held demand
    // equals the live demand bit for bit, so the ONLY difference
    // between the two runs is the degradation path itself.
    scfg.hold_last = true;
    scfg.hold_ticks = 0;
    stream::ClusterFeed feed(coord.cluster(), source, scfg);
    coord.engine().setTickSource(&feed);
    coord.attachStreamHealth(&feed);

    auto recorder = std::make_shared<sim::Recorder>(
        coord.cluster(), sim::Recorder::Options{});
    recorder->setStreamHealth(&feed);
    coord.engine().addActor(recorder);
    coord.run(kTicks);

    EXPECT_EQ(feed.stats().missing_samples, k);
    EXPECT_EQ(feed.stats().held_samples, k);

    RunResult r;
    std::ostringstream csv;
    recorder->writeCsv(csv);
    r.recorder_csv = csv.str();
    r.degrade = coord.degradeStats();
    r.power = coord.metrics().powerSeries();
    return r;
}

void
expectSameDegrade(const fault::DegradeStats &a,
                  const fault::DegradeStats &b)
{
    EXPECT_EQ(a.outage_ticks, b.outage_ticks);
    EXPECT_EQ(a.outage_steps, b.outage_steps);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.lease_expiries, b.lease_expiries);
    EXPECT_EQ(a.lease_fallback_steps, b.lease_fallback_steps);
    EXPECT_EQ(a.ec_fallback_steps, b.ec_fallback_steps);
    EXPECT_EQ(a.dropped_budgets, b.dropped_budgets);
    EXPECT_EQ(a.stale_budgets, b.stale_budgets);
    EXPECT_EQ(a.stuck_actuations, b.stuck_actuations);
    EXPECT_EQ(a.noisy_reads, b.noisy_reads);
}

void
checkEquivalence(const char *link, size_t server, size_t from, size_t k,
                 double util = 0.7)
{
    RunResult fault_run = runFaultCampaign(link, server, from, k, util);
    RunResult stream_run = runSilentStream(server, from, k, util);

    // The campaign must actually have bitten, or the property is
    // vacuous.
    ASSERT_GT(fault_run.degrade.dropped_budgets, 0u);

    expectSameDegrade(fault_run.degrade, stream_run.degrade);
    ASSERT_EQ(fault_run.power.size(), stream_run.power.size());
    for (size_t t = 0; t < fault_run.power.size(); ++t)
        ASSERT_EQ(fault_run.power[t], stream_run.power[t])
            << "power diverged at tick " << t;
    // Byte-identical CSV, `faults` column included: the recorder cannot
    // tell a silent stream from a drop campaign.
    EXPECT_EQ(fault_run.recorder_csv, stream_run.recorder_csv);
    EXPECT_NE(fault_run.recorder_csv.find("faults"), std::string::npos);
}

TEST(SilenceEquivalence, ShortOutageBladeServerLeaseSurvives)
{
    // 24 silent ticks — well inside the lease, so grants are dropped
    // but no lease expires; both runs must agree on exactly that.
    checkEquivalence("em-sm", 2, 100, 24);
}

TEST(SilenceEquivalence, LongOutageBladeServerLeaseExpires)
{
    // 300 silent ticks — the lease lapses into the conservative local
    // cap, then recovers when samples return at tick 400.
    RunResult fault_run = runFaultCampaign("em-sm", 2, 100, 300, 0.7);
    ASSERT_GT(fault_run.degrade.lease_expiries, 0u);
    checkEquivalence("em-sm", 2, 100, 300);
}

TEST(SilenceEquivalence, StandaloneServerGmLink)
{
    // Servers 4 and 5 hang directly off the GM: silence must ride the
    // GM→SM link instead, and still match the drop campaign.
    checkEquivalence("gm-sm", 4, 150, 200);
}

TEST(SilenceEquivalence, BackToBackWindows)
{
    // Degrade, recover, degrade again: the second window must behave
    // identically in both worlds too (miss streaks and leases reset).
    core::CoordinationConfig cfg = baseConfig();
    cfg.faults.enabled = true;
    cfg.faults.script = "drop em-sm 1 100 160 1\ndrop em-sm 1 400 520 1\n";

    sim::Topology topo{6, 1, 4};
    core::Coordinator fault_coord(
        cfg, topo, model::bladeA(),
        nps_test::flatTraces(6, 0.7, kTicks + 8), true);
    fault_coord.run(kTicks);

    core::CoordinationConfig scfg_run = baseConfig();
    scfg_run.stream.enabled = true;
    core::Coordinator stream_coord(
        scfg_run, topo, model::bladeA(),
        nps_test::flatTraces(6, 0.7, kTicks + 8), true);
    std::vector<trace::UtilizationTrace> traces =
        nps_test::flatTraces(6, 0.7, kTicks + 8);

    // Two dark windows via a composed source: dark during [100,160) and
    // [400,520).
    class TwoWindowSource : public stream::TelemetrySource
    {
      public:
        explicit TwoWindowSource(
            const std::vector<trace::UtilizationTrace> &traces)
            : traces_(traces)
        {
        }
        size_t streams() const override { return traces_.size(); }
        bool pull(size_t tick, stream::TickBatch &batch) override
        {
            batch.reset(traces_.size(), tick);
            for (size_t i = 0; i < traces_.size(); ++i) {
                bool dark = i == 1 && ((tick >= 100 && tick < 160) ||
                                       (tick >= 400 && tick < 520));
                if (dark)
                    continue;
                batch.present[i] = 1;
                batch.demand[i] = traces_[i].at(tick);
                ++batch.samples;
            }
            return true;
        }

      private:
        const std::vector<trace::UtilizationTrace> &traces_;
    } source(traces);

    stream::StreamConfig scfg;
    scfg.hold_ticks = 0;
    stream::ClusterFeed feed(stream_coord.cluster(), source, scfg);
    stream_coord.engine().setTickSource(&feed);
    stream_coord.attachStreamHealth(&feed);
    stream_coord.run(kTicks);

    ASSERT_GT(fault_coord.degradeStats().dropped_budgets, 0u);
    expectSameDegrade(fault_coord.degradeStats(),
                      stream_coord.degradeStats());
    const auto &p = fault_coord.metrics().powerSeries();
    const auto &q = stream_coord.metrics().powerSeries();
    ASSERT_EQ(p.size(), q.size());
    for (size_t t = 0; t < p.size(); ++t)
        ASSERT_EQ(p[t], q[t]) << "power diverged at tick " << t;
}

} // namespace
