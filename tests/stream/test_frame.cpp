/**
 * @file
 * NPSF codec tests: bit-exact round-trips, arbitrary input splits, and
 * the fuzz battery behind the robustness contract of docs/STREAMING.md
 * — truncated, reordered, duplicated, corrupted, or outright garbage
 * input never crashes the decoder and never silently corrupts a frame;
 * every anomaly lands in DecodeStats and decoding resynchronizes on
 * the next intact frame.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "stream/frame.h"

namespace {

using namespace nps::stream;

/** Decode everything in @p bytes in one feed. */
std::vector<Frame>
decodeAll(FrameDecoder &dec, const std::vector<uint8_t> &bytes)
{
    dec.feed(bytes.data(), bytes.size());
    std::vector<Frame> out;
    Frame f;
    while (dec.next(f))
        out.push_back(f);
    return out;
}

/** The deterministic demand value for (tick, stream). */
double
demandFor(uint64_t tick, uint32_t stream)
{
    return 0.1 * static_cast<double>(stream + 1) +
           1e-9 * static_cast<double>(tick);
}

/** A representative session: hello, @p ticks ticks of @p streams
 * samples plus a barrier each, and a bye. */
std::vector<uint8_t>
sessionBytes(uint32_t streams, uint64_t ticks,
             std::vector<Frame> *expect = nullptr)
{
    FrameWriter w;
    HelloFrame h;
    h.streams = streams;
    h.start_tick = 0;
    h.total_ticks = ticks;
    w.hello(h);
    for (uint64_t t = 0; t < ticks; ++t) {
        for (uint32_t s = 0; s < streams; ++s) {
            SampleFrame smp;
            smp.tick = t;
            smp.stream = s;
            smp.demand = demandFor(t, s);
            w.sample(smp);
        }
        w.tickEnd(t);
    }
    w.bye(ticks);
    if (expect) {
        expect->clear();
        Frame f;
        f.type = FrameType::Hello;
        f.hello = h;
        expect->push_back(f);
        for (uint64_t t = 0; t < ticks; ++t) {
            for (uint32_t s = 0; s < streams; ++s) {
                Frame fs;
                fs.type = FrameType::Sample;
                fs.sample.tick = t;
                fs.sample.stream = s;
                fs.sample.demand = demandFor(t, s);
                expect->push_back(fs);
            }
            Frame ft;
            ft.type = FrameType::TickEnd;
            ft.tick = t;
            expect->push_back(ft);
        }
        Frame fb;
        fb.type = FrameType::Bye;
        fb.tick = ticks;
        expect->push_back(fb);
    }
    return w.buffer();
}

/** On-wire size of one frame given its type byte. */
size_t
frameSize(uint8_t type)
{
    switch (type) {
    case 'H': return 4 + 1 + 24 + 4;
    case 'S': return 4 + 1 + 20 + 4;
    case 'T':
    case 'B': return 4 + 1 + 8 + 4;
    }
    ADD_FAILURE() << "unknown frame type " << type;
    return 0;
}

/** Byte offset of the end of each frame in a clean stream. */
std::vector<size_t>
frameEnds(const std::vector<uint8_t> &bytes)
{
    std::vector<size_t> ends;
    size_t pos = 0;
    while (pos < bytes.size()) {
        EXPECT_EQ(0, std::memcmp(bytes.data() + pos, "NPSF", 4));
        pos += frameSize(bytes[pos + 4]);
        ends.push_back(pos);
    }
    EXPECT_EQ(pos, bytes.size());
    return ends;
}

void
expectSameFrames(const std::vector<Frame> &want,
                 const std::vector<Frame> &got)
{
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(want[i].type, got[i].type) << "frame " << i;
        switch (want[i].type) {
        case FrameType::Hello:
            EXPECT_EQ(want[i].hello.version, got[i].hello.version);
            EXPECT_EQ(want[i].hello.streams, got[i].hello.streams);
            EXPECT_EQ(want[i].hello.start_tick, got[i].hello.start_tick);
            EXPECT_EQ(want[i].hello.total_ticks,
                      got[i].hello.total_ticks);
            break;
        case FrameType::Sample:
            EXPECT_EQ(want[i].sample.tick, got[i].sample.tick);
            EXPECT_EQ(want[i].sample.stream, got[i].sample.stream);
            // Bit-exact, not approximately equal: the stream replays
            // the batch campaign byte for byte.
            EXPECT_EQ(0, std::memcmp(&want[i].sample.demand,
                                     &got[i].sample.demand,
                                     sizeof(double)))
                << "frame " << i;
            break;
        case FrameType::TickEnd:
        case FrameType::Bye:
            EXPECT_EQ(want[i].tick, got[i].tick) << "frame " << i;
            break;
        }
    }
}

TEST(FrameCodec, RoundTripIsBitExact)
{
    std::vector<Frame> want;
    std::vector<uint8_t> bytes = sessionBytes(3, 5, &want);

    FrameDecoder dec;
    std::vector<Frame> got = decodeAll(dec, bytes);
    expectSameFrames(want, got);
    EXPECT_EQ(dec.stats().frames, want.size());
    EXPECT_EQ(dec.stats().resync_bytes, 0u);
    EXPECT_EQ(dec.stats().bad_crc, 0u);
    EXPECT_EQ(dec.stats().bad_type, 0u);
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, SpecialDoublesSurvive)
{
    // Values a lossy text encoding would mangle: denormals, -0.0,
    // infinities, and a NaN payload. The wire bit-casts, so all must
    // round-trip exactly.
    const double specials[] = {
        0.0,
        -0.0,
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        1.0 / 3.0,
        std::numeric_limits<double>::max(),
    };
    constexpr size_t kN = sizeof(specials) / sizeof(specials[0]);
    FrameWriter w;
    for (size_t i = 0; i < kN; ++i) {
        SampleFrame s;
        s.tick = i;
        s.stream = 0;
        s.demand = specials[i];
        w.sample(s);
    }
    FrameDecoder dec;
    std::vector<Frame> got = decodeAll(dec, w.buffer());
    ASSERT_EQ(got.size(), kN);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(0, std::memcmp(&specials[i], &got[i].sample.demand,
                                 sizeof(double)))
            << "special " << i;
}

TEST(FrameCodec, ByteAtATimeFeedMatchesWholeBuffer)
{
    std::vector<Frame> want;
    std::vector<uint8_t> bytes = sessionBytes(4, 7, &want);

    FrameDecoder dec;
    std::vector<Frame> got;
    Frame f;
    for (uint8_t b : bytes) {
        dec.feed(&b, 1);
        while (dec.next(f))
            got.push_back(f);
    }
    expectSameFrames(want, got);
    EXPECT_EQ(dec.stats().resync_bytes, 0u);
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, RandomChunkSplitsMatchWholeBuffer)
{
    std::vector<Frame> want;
    std::vector<uint8_t> bytes = sessionBytes(5, 11, &want);
    std::mt19937 rng(20080301);

    for (int iter = 0; iter < 50; ++iter) {
        FrameDecoder dec;
        std::vector<Frame> got;
        Frame f;
        size_t pos = 0;
        while (pos < bytes.size()) {
            size_t n = 1 + rng() % 37;
            n = std::min(n, bytes.size() - pos);
            dec.feed(bytes.data() + pos, n);
            pos += n;
            while (dec.next(f))
                got.push_back(f);
        }
        expectSameFrames(want, got);
        EXPECT_EQ(dec.buffered(), 0u);
    }
}

TEST(FrameFuzz, TruncationLosesOnlyTheTail)
{
    std::vector<Frame> want;
    std::vector<uint8_t> bytes = sessionBytes(3, 9, &want);
    std::vector<size_t> ends = frameEnds(bytes);
    ASSERT_EQ(ends.size(), want.size());
    std::mt19937 rng(7);

    for (int iter = 0; iter < 100; ++iter) {
        size_t cut = rng() % (bytes.size() + 1);
        std::vector<uint8_t> head(bytes.begin(), bytes.begin() + cut);
        FrameDecoder dec;
        std::vector<Frame> got = decodeAll(dec, head);

        // Exactly the frames that fit whole before the cut survive.
        size_t whole = static_cast<size_t>(
            std::upper_bound(ends.begin(), ends.end(), cut) -
            ends.begin());
        ASSERT_EQ(got.size(), whole) << "cut at " << cut;
        expectSameFrames(
            std::vector<Frame>(want.begin(), want.begin() + whole), got);

        // The half-frame stays buffered, waiting for bytes that never
        // come — which is how the engine detects a feeder killed
        // mid-frame (StreamSource::truncated()).
        size_t consumed = whole == 0 ? 0 : ends[whole - 1];
        EXPECT_EQ(dec.buffered(), cut - consumed);
        EXPECT_EQ(dec.stats().bad_crc, 0u);
        EXPECT_EQ(dec.stats().resync_bytes, 0u);
    }
}

TEST(FrameFuzz, GarbageBetweenFramesIsSkippedAndCounted)
{
    std::vector<Frame> want;
    std::vector<uint8_t> bytes = sessionBytes(2, 6, &want);
    std::vector<size_t> ends = frameEnds(bytes);
    std::mt19937 rng(13);

    // Splice random garbage between whole frames. The garbage is
    // scrubbed of 'N' so it cannot fake a magic and hold trailing
    // frames hostage mid-"payload" at end-of-input — the adversarial
    // variant is PureGarbageDecodesNothing / RandomMutations below.
    std::vector<uint8_t> dirty;
    size_t pos = 0;
    for (size_t end : ends) {
        dirty.insert(dirty.end(), bytes.begin() + pos,
                     bytes.begin() + end);
        pos = end;
        size_t glen = rng() % 16;
        for (size_t g = 0; g < glen; ++g) {
            uint8_t b = static_cast<uint8_t>(rng());
            dirty.push_back(b == 'N' ? uint8_t('n') : b);
        }
    }

    FrameDecoder dec;
    std::vector<Frame> got = decodeAll(dec, dirty);
    expectSameFrames(want, got);
    // Every garbage byte is either skipped (counted) or — for a short
    // tail after the final frame — still buffered awaiting input that
    // would rule out a partial magic.
    EXPECT_EQ(dec.stats().resync_bytes + dec.buffered(),
              dirty.size() - bytes.size());
    EXPECT_EQ(dec.stats().frames, want.size());
}

TEST(FrameFuzz, SingleByteCorruptionLosesAtMostOneFrame)
{
    std::vector<Frame> want;
    std::vector<uint8_t> bytes = sessionBytes(3, 8, &want);
    std::mt19937 rng(20080301);

    for (int iter = 0; iter < 200; ++iter) {
        std::vector<uint8_t> dirty = bytes;
        size_t at = rng() % dirty.size();
        uint8_t flip = static_cast<uint8_t>(1 + rng() % 255);
        dirty[at] = static_cast<uint8_t>(dirty[at] ^ flip);

        FrameDecoder dec;
        std::vector<Frame> got = decodeAll(dec, dirty);

        // CRC32 catches any single-byte change, so the corrupted frame
        // is dropped and everything else is recovered — unless the
        // flip manufactured a fake magic whose phantom payload swallows
        // the tail of the buffer at end-of-input.
        EXPECT_GE(got.size(), want.size() - 2);
        EXPECT_LE(got.size(), want.size() - 1);
        EXPECT_GT(dec.stats().bad_crc + dec.stats().bad_type +
                      dec.stats().resync_bytes,
                  0u)
            << "flip at " << at;
        // Decoded frames are a subsequence of the original: nothing is
        // ever invented or altered.
        auto same = [](const Frame &a, const Frame &b) {
            if (a.type != b.type)
                return false;
            switch (a.type) {
            case FrameType::Hello:
                return a.hello.streams == b.hello.streams &&
                       a.hello.start_tick == b.hello.start_tick &&
                       a.hello.total_ticks == b.hello.total_ticks;
            case FrameType::Sample:
                return a.sample.tick == b.sample.tick &&
                       a.sample.stream == b.sample.stream &&
                       std::memcmp(&a.sample.demand, &b.sample.demand,
                                   sizeof(double)) == 0;
            case FrameType::TickEnd:
            case FrameType::Bye:
                return a.tick == b.tick;
            }
            return false;
        };
        size_t wi = 0;
        for (const Frame &g : got) {
            while (wi < want.size() && !same(want[wi], g))
                ++wi;
            ASSERT_LT(wi, want.size()) << "decoder invented a frame";
            ++wi;
        }
    }
}

TEST(FrameFuzz, DuplicatedAndReorderedChunksNeverCrash)
{
    std::vector<uint8_t> bytes = sessionBytes(4, 10);
    std::mt19937 rng(42);

    for (int iter = 0; iter < 100; ++iter) {
        // Cut into chunks, then duplicate one and swap two others —
        // modelling a hopelessly confused transport.
        std::vector<std::vector<uint8_t>> chunks;
        size_t pos = 0;
        while (pos < bytes.size()) {
            size_t n = std::min<size_t>(1 + rng() % 61,
                                        bytes.size() - pos);
            chunks.emplace_back(bytes.begin() + pos,
                                bytes.begin() + pos + n);
            pos += n;
        }
        if (chunks.size() > 2) {
            chunks.insert(chunks.begin() + rng() % chunks.size(),
                          chunks[rng() % chunks.size()]);
            std::swap(chunks[rng() % chunks.size()],
                      chunks[rng() % chunks.size()]);
        }

        FrameDecoder dec;
        Frame f;
        size_t fed = 0;
        for (const auto &c : chunks) {
            dec.feed(c.data(), c.size());
            fed += c.size();
            while (dec.next(f)) {
                // Whatever decodes must at least be a known type.
                ASSERT_TRUE(f.type == FrameType::Hello ||
                            f.type == FrameType::Sample ||
                            f.type == FrameType::TickEnd ||
                            f.type == FrameType::Bye);
            }
        }
        EXPECT_LE(dec.buffered(), fed);
    }
}

TEST(FrameFuzz, PureGarbageDecodesNothing)
{
    std::mt19937 rng(99);
    std::vector<uint8_t> junk(64 * 1024);
    for (auto &b : junk)
        b = static_cast<uint8_t>(rng());

    FrameDecoder dec;
    std::vector<Frame> got = decodeAll(dec, junk);
    // A 32-bit CRC over random bytes passing is a ~2^-32 event; with a
    // fixed seed this is deterministic and decodes nothing.
    EXPECT_TRUE(got.empty());
    EXPECT_GT(dec.stats().resync_bytes, junk.size() / 2);
}

TEST(FrameFuzz, RandomMutationsNeverCrashAndStatsStayConsistent)
{
    std::vector<uint8_t> bytes = sessionBytes(6, 12);
    std::mt19937 rng(31337);

    for (int iter = 0; iter < 300; ++iter) {
        std::vector<uint8_t> dirty = bytes;
        switch (rng() % 4) {
        case 0: // burst of bit flips
            for (int k = 0; k < 16; ++k)
                dirty[rng() % dirty.size()] ^=
                    static_cast<uint8_t>(1u << (rng() % 8));
            break;
        case 1: // truncate
            dirty.resize(rng() % dirty.size());
            break;
        case 2: // insert a garbage blob (may contain fake magics)
            {
                size_t at = rng() % dirty.size();
                std::vector<uint8_t> blob(rng() % 64);
                for (auto &b : blob)
                    b = static_cast<uint8_t>(rng());
                dirty.insert(dirty.begin() + at, blob.begin(),
                             blob.end());
            }
            break;
        case 3: // delete a span
            {
                if (dirty.size() > 8) {
                    size_t at = rng() % (dirty.size() - 4);
                    size_t n = 1 + rng() % 32;
                    n = std::min(n, dirty.size() - at);
                    dirty.erase(dirty.begin() + at,
                                dirty.begin() + at + n);
                }
            }
            break;
        }

        FrameDecoder dec;
        Frame f;
        size_t pos = 0;
        size_t frames = 0;
        while (pos < dirty.size()) {
            size_t n = std::min<size_t>(1 + rng() % 97,
                                        dirty.size() - pos);
            dec.feed(dirty.data() + pos, n);
            pos += n;
            while (dec.next(f))
                ++frames;
        }
        // Invariants that hold under ANY input: every fed byte is
        // either part of a decoded frame, skipped hunting for one, or
        // still buffered; counters match what next() returned.
        EXPECT_EQ(dec.stats().frames, frames);
        EXPECT_LE(dec.stats().resync_bytes + dec.buffered(),
                  dirty.size());
        EXPECT_LE(dec.buffered(), dirty.size());
    }
}

} // namespace
