/**
 * @file
 * StreamSource ingest policy and ClusterFeed staging policy, in
 * process over socketpairs: barrier-complete delivery, the
 * late/duplicate/overflow/bad-stream tallies, timeout-degraded partial
 * ticks, end-of-feed semantics (clean bye vs. feeder killed mid-frame),
 * and the hold-last → conservative-fallback missing-sample ladder
 * (docs/STREAMING.md).
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "common/fixtures.h"
#include "stream/feed.h"
#include "stream/frame.h"
#include "stream/net.h"
#include "stream/stream_source.h"

namespace {

using namespace nps;
using namespace nps::stream;

/** A connected socket pair; w is the feeder's end. */
struct Pipe
{
    int r = -1;
    int w = -1;
    Pipe()
    {
        int fds[2];
        EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
        r = fds[0];
        w = fds[1];
    }
    ~Pipe()
    {
        if (w >= 0)
            ::close(w);
        // r is owned (and closed) by the StreamSource under test.
    }
    void send(const FrameWriter &fw)
    {
        EXPECT_TRUE(writeAll(w, fw.data(), fw.size()));
    }
    void closeWriter()
    {
        ::close(w);
        w = -1;
    }
};

FrameWriter
helloFor(uint32_t streams, uint64_t start = 0, uint64_t total = 0)
{
    FrameWriter fw;
    HelloFrame h;
    h.streams = streams;
    h.start_tick = start;
    h.total_ticks = total;
    fw.hello(h);
    return fw;
}

StreamConfig
quickConfig(unsigned timeout_ms = 2000)
{
    StreamConfig cfg;
    cfg.enabled = true;
    cfg.timeout_ms = timeout_ms;
    cfg.max_pending = 4;
    return cfg;
}

TEST(StreamSource, DeliversBarrierCompleteTicksThenEndsOnBye)
{
    Pipe p;
    FrameWriter fw = helloFor(2, 0, 3);
    for (uint64_t t = 0; t < 3; ++t) {
        for (uint32_t s = 0; s < 2; ++s) {
            SampleFrame smp;
            smp.tick = t;
            smp.stream = s;
            smp.demand = 0.25 * static_cast<double>(t + s + 1);
            fw.sample(smp);
        }
        fw.tickEnd(t);
    }
    fw.bye(3);
    p.send(fw);
    p.closeWriter();

    StreamSource src(p.r, 2, quickConfig());
    TickBatch b;
    for (size_t t = 0; t < 3; ++t) {
        ASSERT_TRUE(src.pull(t, b)) << "tick " << t;
        EXPECT_EQ(b.tick, t);
        EXPECT_EQ(b.samples, 2u);
        for (uint32_t s = 0; s < 2; ++s) {
            EXPECT_TRUE(b.present[s]);
            EXPECT_EQ(b.demand[s], 0.25 * static_cast<double>(t + s + 1));
        }
    }
    EXPECT_FALSE(src.pull(3, b));
    EXPECT_TRUE(src.sawHello());
    EXPECT_TRUE(src.sawBye());
    EXPECT_FALSE(src.truncated());
    EXPECT_EQ(src.hello().streams, 2u);
    EXPECT_EQ(src.hello().total_ticks, 3u);
    EXPECT_EQ(src.ingest()->timeouts, 0u);
}

TEST(StreamSource, CountsDuplicatesLateOverflowAndBadStreams)
{
    Pipe p;
    // Phase 1: tick 0 with a duplicate for stream 0 (last write wins)
    // and a sample naming a stream that does not exist.
    FrameWriter fw = helloFor(2);
    SampleFrame s;
    s.tick = 0;
    s.stream = 0;
    s.demand = 0.5;
    fw.sample(s);
    s.demand = 0.7; // duplicate (tick 0, stream 0)
    fw.sample(s);
    s.stream = 7; // no such stream
    fw.sample(s);
    fw.tickEnd(0);
    p.send(fw);

    StreamSource src(p.r, 2, quickConfig());
    TickBatch b;
    ASSERT_TRUE(src.pull(0, b));
    EXPECT_EQ(b.samples, 1u);
    EXPECT_TRUE(b.present[0]);
    EXPECT_FALSE(b.present[1]);
    EXPECT_EQ(b.demand[0], 0.7);
    EXPECT_EQ(src.ingest()->duplicates, 1u);
    EXPECT_EQ(src.ingest()->bad_stream, 1u);

    // Phase 2: a sample for the already-delivered tick 0 (late) and one
    // absurdly far ahead of the 4-tick pending window (overflow).
    FrameWriter fw2;
    s.stream = 1;
    s.tick = 0;
    fw2.sample(s); // late: tick 0 was delivered, cursor is at 1
    s.tick = 40;
    s.stream = 0;
    fw2.sample(s); // overflow: 40 >= cursor(1) + max_pending(4)
    fw2.tickEnd(1);
    p.send(fw2);

    ASSERT_TRUE(src.pull(1, b));
    EXPECT_EQ(b.samples, 0u);
    EXPECT_EQ(src.ingest()->late, 1u);
    EXPECT_EQ(src.ingest()->overflow, 1u);
    EXPECT_EQ(src.ingest()->samples, 1u); // only tick 0's stream-0 value
}

TEST(StreamSource, TimeoutDeliversPartialTick)
{
    Pipe p;
    FrameWriter fw = helloFor(2);
    SampleFrame s;
    s.tick = 0;
    s.stream = 0;
    s.demand = 0.4;
    fw.sample(s);
    // No barrier, and the writer stays open: the source must give up
    // after timeout_ms and deliver what it has.
    p.send(fw);

    StreamSource src(p.r, 2, quickConfig(/*timeout_ms=*/50));
    TickBatch b;
    ASSERT_TRUE(src.pull(0, b));
    EXPECT_EQ(b.samples, 1u);
    EXPECT_TRUE(b.present[0]);
    EXPECT_FALSE(b.present[1]);
    EXPECT_EQ(src.ingest()->timeouts, 1u);
}

TEST(StreamSource, EofBeforeBarrierDeliversNothing)
{
    // The feeder dies between frames: the half-open tick is withheld,
    // so the run's output stays a byte-prefix of the uninterrupted run.
    Pipe p;
    FrameWriter fw = helloFor(1);
    SampleFrame s;
    s.tick = 0;
    s.stream = 0;
    s.demand = 0.9;
    fw.sample(s);
    p.send(fw);
    p.closeWriter();

    StreamSource src(p.r, 1, quickConfig());
    TickBatch b;
    EXPECT_FALSE(src.pull(0, b));
    EXPECT_FALSE(src.sawBye());
    EXPECT_FALSE(src.truncated()); // died on a frame boundary
}

TEST(StreamSource, KilledMidFrameIsFlaggedTruncated)
{
    Pipe p;
    FrameWriter fw = helloFor(1);
    SampleFrame s;
    s.tick = 0;
    s.stream = 0;
    s.demand = 0.9;
    fw.sample(s);
    // Send all but the last 3 bytes: a frame cut mid-flight.
    EXPECT_TRUE(writeAll(p.w, fw.data(), fw.size() - 3));
    p.closeWriter();

    StreamSource src(p.r, 1, quickConfig());
    TickBatch b;
    EXPECT_FALSE(src.pull(0, b));
    EXPECT_TRUE(src.truncated());
}

TEST(StreamSourceDeathTest, HelloStreamMismatchIsFatal)
{
    EXPECT_DEATH(
        {
            Pipe p;
            FrameWriter fw = helloFor(5); // cluster expects 2
            p.send(fw);
            p.closeWriter();
            StreamSource src(p.r, 2, quickConfig());
            TickBatch b;
            src.pull(0, b);
        },
        "streams");
}

/** Scripted in-process source: stream @p vm goes dark for a window. */
class WindowSource : public TelemetrySource
{
  public:
    WindowSource(size_t streams, size_t dark_from, size_t dark_stream)
        : streams_(streams), dark_from_(dark_from),
          dark_stream_(dark_stream)
    {
    }

    size_t streams() const override { return streams_; }

    bool pull(size_t tick, TickBatch &batch) override
    {
        batch.reset(streams_, tick);
        for (size_t i = 0; i < streams_; ++i) {
            if (i == dark_stream_ && tick >= dark_from_)
                continue;
            batch.present[i] = 1;
            batch.demand[i] = 0.3;
            ++batch.samples;
        }
        return true;
    }

  private:
    size_t streams_;
    size_t dark_from_;
    size_t dark_stream_;
};

TEST(ClusterFeed, HoldLastThenConservativeFallback)
{
    sim::Cluster cluster = nps_test::smallCluster(0.3);
    const size_t n = cluster.numVms();
    WindowSource src(n, /*dark_from=*/5, /*dark_stream=*/0);

    StreamConfig cfg;
    cfg.hold_last = true;
    cfg.hold_ticks = 3;
    cfg.fallback_util = 0.1;
    ClusterFeed feed(cluster, src, cfg);
    ASSERT_TRUE(cluster.externalDemand());

    for (size_t t = 0; t < 10; ++t) {
        ASSERT_TRUE(feed.beginTick(t));
        double staged = cluster.stagedDemand()[0];
        if (t < 5)
            EXPECT_EQ(staged, 0.3) << "tick " << t; // live sample
        else if (t < 8)
            EXPECT_EQ(staged, 0.3) << "tick " << t; // held (miss 1..3)
        else
            EXPECT_EQ(staged, 0.1) << "tick " << t; // fallback (miss >3)
    }

    const ClusterFeed::Stats &st = feed.stats();
    EXPECT_EQ(st.ticks, 10u);
    EXPECT_EQ(st.missing_samples, 5u);
    EXPECT_EQ(st.held_samples, 3u);
    EXPECT_EQ(st.fallback_samples, 2u);
    EXPECT_EQ(st.staged_samples, 10u * n - 5u);

    // The silence oracle tracks the current and previous tick only.
    long dark_server = cluster.serverOf(0);
    EXPECT_TRUE(feed.silent(dark_server, 9));
    EXPECT_TRUE(feed.silent(dark_server, 8));
    EXPECT_EQ(feed.silentCount(9), 1u);
    EXPECT_EQ(feed.silentCount(8), 1u);
    for (long sid = 0; sid < static_cast<long>(cluster.numServers());
         ++sid) {
        if (sid != dark_server) {
            EXPECT_FALSE(feed.silent(sid, 9)) << "server " << sid;
            EXPECT_FALSE(feed.silent(sid, 8)) << "server " << sid;
        }
    }
}

TEST(ClusterFeed, FallbackImmediatelyWhenHoldDisabled)
{
    sim::Cluster cluster = nps_test::smallCluster(0.3);
    WindowSource src(cluster.numVms(), /*dark_from=*/2,
                     /*dark_stream=*/1);

    StreamConfig cfg;
    cfg.hold_last = false;
    cfg.fallback_util = 0.05;
    ClusterFeed feed(cluster, src, cfg);

    for (size_t t = 0; t < 4; ++t)
        ASSERT_TRUE(feed.beginTick(t));
    EXPECT_EQ(cluster.stagedDemand()[1], 0.05);
    EXPECT_EQ(feed.stats().held_samples, 0u);
    EXPECT_EQ(feed.stats().fallback_samples, 2u);
}

} // namespace
