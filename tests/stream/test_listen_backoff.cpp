/**
 * @file
 * Socket plumbing for the distributed control plane
 * (docs/NETWORK_FAULTS.md): listenOn's ephemeral-port reporting and
 * EADDRINUSE patience, and connectWithBackoff's bounded, jittered
 * reconnect loop — a rank must survive a hub that binds late and give
 * up loudly against one that never appears.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "stream/net.h"

using namespace nps;

namespace {

std::string
tcpSpec(int port)
{
    return "tcp:" + std::to_string(port);
}

TEST(ListenOnTest, EphemeralPortIsReportedAndAccepts)
{
    int port = -1;
    int listener = stream::listenOn("tcp:0", 8, &port);
    ASSERT_GE(listener, 0);
    ASSERT_GT(port, 0);
    ASSERT_LE(port, 65535);

    std::thread peer([port] {
        int fd = stream::connectTo(tcpSpec(port), 2000);
        char byte = 'x';
        ASSERT_TRUE(stream::writeAll(fd, &byte, 1));
        ::close(fd);
    });
    int conn = stream::acceptOne(listener);
    ASSERT_GE(conn, 0);
    char got = 0;
    ASSERT_EQ(::read(conn, &got, 1), 1);
    EXPECT_EQ(got, 'x');
    peer.join();
    ::close(conn);
    ::close(listener);
}

TEST(ListenOnTest, FixedPortRoundTripsThroughBoundPort)
{
    // Learn a free port from the kernel, release it, and re-listen on
    // it as a fixed port: bound_port must echo the request.
    int port = -1;
    int probe = stream::listenOn("tcp:0", 1, &port);
    ::close(probe);
    int got = -1;
    int listener = stream::listenOn(tcpSpec(port), 8, &got);
    EXPECT_EQ(got, port);
    ::close(listener);
}

TEST(ListenOnTest, UnixSocketReportsPortZero)
{
    std::string path =
        "/tmp/nps-listen-test-" + std::to_string(::getpid()) + ".sock";
    int port = -1;
    int listener = stream::listenOn("unix:" + path, 8, &port);
    ASSERT_GE(listener, 0);
    EXPECT_EQ(port, 0); // no TCP port to report
    ::close(listener);
    ::unlink(path.c_str());
}

TEST(ConnectWithBackoffTest, RidesOutALateBindingHub)
{
    // Reserve a port, close it, and re-open it only after a delay: the
    // first connect attempts land on ECONNREFUSED and the backoff loop
    // must carry the rank through to the late listener.
    int port = -1;
    int probe = stream::listenOn("tcp:0", 1, &port);
    ::close(probe);

    std::thread hub([port] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        int listener = stream::listenOn(tcpSpec(port), 8, nullptr);
        int conn = stream::acceptOne(listener);
        char byte = 'h';
        stream::writeAll(conn, &byte, 1);
        ::close(conn);
        ::close(listener);
    });

    int fd = stream::connectWithBackoff(tcpSpec(port), /*attempts=*/12,
                                        /*base_ms=*/20, /*max_ms=*/200,
                                        /*jitter_seed=*/3);
    ASSERT_GE(fd, 0);
    char got = 0;
    ASSERT_EQ(::read(fd, &got, 1), 1);
    EXPECT_EQ(got, 'h');
    ::close(fd);
    hub.join();
}

TEST(ConnectWithBackoffTest, ConnectsImmediatelyWhenTheHubIsUp)
{
    int port = -1;
    int listener = stream::listenOn("tcp:0", 8, &port);
    int fd = stream::connectWithBackoff(tcpSpec(port), 3, 50, 500, 1);
    ASSERT_GE(fd, 0);
    int conn = stream::acceptOne(listener);
    ::close(conn);
    ::close(fd);
    ::close(listener);
}

TEST(ConnectWithBackoffTest, JitterSeedsDrawDistinctSchedules)
{
    // Not a socket test: two ranks with different seeds must not sleep
    // in lockstep. Approximate by timing two failing loops against a
    // dead port — both give up, but the loop is exercised end to end.
    int port = -1;
    int probe = stream::listenOn("tcp:0", 1, &port);
    ::close(probe);
    EXPECT_DEATH(stream::connectWithBackoff(tcpSpec(port), 2, 1, 4, 0),
                 "cannot connect to .* after 2 attempts");
}

TEST(ConnectWithBackoffTest, ZeroAttemptsStillTriesOnce)
{
    int port = -1;
    int listener = stream::listenOn("tcp:0", 8, &port);
    int fd = stream::connectWithBackoff(tcpSpec(port), 0, 10, 100, 7);
    ASSERT_GE(fd, 0);
    int conn = stream::acceptOne(listener);
    ::close(conn);
    ::close(fd);
    ::close(listener);
}

} // namespace
