/**
 * @file
 * Codec tests for the distributed-control-plane NPSF frames
 * (docs/DISTRIBUTED.md): bit-exact round-trips of the control-message
 * tags ('G'/'V'/'R'/'Y') and the supervision frames ('K'/'D'/'P'/'U'/
 * 'J'), arbitrary input splits, and corruption resync — the same
 * robustness contract the telemetry frames already honor
 * (tests/stream/test_frame.cpp), extended to the frames a distributed
 * run's barrier and liveness ride on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "stream/frame.h"

namespace {

using namespace nps::stream;

std::vector<Frame>
decodeAll(FrameDecoder &dec, const std::vector<uint8_t> &bytes)
{
    dec.feed(bytes.data(), bytes.size());
    std::vector<Frame> out;
    Frame f;
    while (dec.next(f))
        out.push_back(f);
    return out;
}

nps::bus::WireMsg
sampleMsg()
{
    nps::bus::WireMsg m;
    m.link = 42;
    m.tick = 123456789ull;
    m.seq = std::numeric_limits<uint64_t>::max(); // edge: about to wrap
    m.value = 187.5;
    m.aux = -0.0; // signed zero must survive bit-exactly
    m.trace = 0xC0FFEEu;
    m.flags = nps::bus::kWireDelivered | nps::bus::kWireStale;
    return m;
}

TEST(DistFrames, CtrlTagsRoundTripBitExactly)
{
    const FrameType tags[] = {FrameType::Budget, FrameType::Violation,
                              FrameType::Reference,
                              FrameType::Telemetry};
    FrameWriter w;
    nps::bus::WireMsg m = sampleMsg();
    for (FrameType t : tags) {
        ASSERT_TRUE(isCtrlFrame(t));
        w.ctrl(t, m);
        m.link++; // vary the payload per tag
        m.value += 0.125;
    }
    FrameDecoder dec;
    auto frames = decodeAll(dec, w.buffer());
    ASSERT_EQ(frames.size(), 4u);
    nps::bus::WireMsg expect = sampleMsg();
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(frames[i].type, tags[i]);
        EXPECT_EQ(frames[i].ctrl.link, expect.link);
        EXPECT_EQ(frames[i].ctrl.tick, expect.tick);
        EXPECT_EQ(frames[i].ctrl.seq, expect.seq);
        // Bit-level equality, not numeric: -0.0 == 0.0 would pass a
        // numeric check while corrupting the replica cross-check.
        EXPECT_EQ(0, std::memcmp(&frames[i].ctrl.value, &expect.value,
                                 sizeof(double)));
        EXPECT_EQ(0, std::memcmp(&frames[i].ctrl.aux, &expect.aux,
                                 sizeof(double)));
        EXPECT_EQ(frames[i].ctrl.flags, expect.flags);
        EXPECT_EQ(frames[i].ctrl.trace, expect.trace);
        expect.link++;
        expect.value += 0.125;
    }
    EXPECT_EQ(dec.stats().bad_crc, 0u);
    EXPECT_EQ(dec.stats().resync_bytes, 0u);
}

TEST(DistFrames, TelemetryTagsAreNotCtrlFrames)
{
    EXPECT_FALSE(isCtrlFrame(FrameType::Hello));
    EXPECT_FALSE(isCtrlFrame(FrameType::Sample));
    EXPECT_FALSE(isCtrlFrame(FrameType::TickEnd));
    EXPECT_FALSE(isCtrlFrame(FrameType::Bye));
    EXPECT_FALSE(isCtrlFrame(FrameType::TickStart));
    EXPECT_FALSE(isCtrlFrame(FrameType::TickDone));
    EXPECT_FALSE(isCtrlFrame(FrameType::PeerDown));
    EXPECT_FALSE(isCtrlFrame(FrameType::PeerUp));
    EXPECT_FALSE(isCtrlFrame(FrameType::Join));
    EXPECT_FALSE(isCtrlFrame(FrameType::Metrics));
}

TEST(DistFrames, MetricsSnapshotRoundTrips)
{
    std::vector<uint8_t> blob(300);
    for (size_t i = 0; i < blob.size(); ++i)
        blob[i] = static_cast<uint8_t>(i * 7);
    FrameWriter w;
    w.metrics(3, 4200, blob.data(), blob.size());
    w.metrics(1, 4200, nullptr, 0); // empty payload is legal
    w.tickDone(4200, 3);            // fixed-size frame follows cleanly

    FrameDecoder dec;
    auto frames = decodeAll(dec, w.buffer());
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, FrameType::Metrics);
    EXPECT_EQ(frames[0].rank, 3u);
    EXPECT_EQ(frames[0].tick, 4200u);
    EXPECT_EQ(frames[0].bytes, blob);
    EXPECT_EQ(frames[1].type, FrameType::Metrics);
    EXPECT_EQ(frames[1].rank, 1u);
    EXPECT_TRUE(frames[1].bytes.empty());
    EXPECT_EQ(frames[2].type, FrameType::TickDone);
    EXPECT_EQ(dec.stats().resync_bytes, 0u);
}

TEST(DistFrames, MetricsSnapshotDecodesByteByByte)
{
    std::vector<uint8_t> blob = {9, 8, 7, 6, 5};
    FrameWriter w;
    w.metrics(2, 17, blob.data(), blob.size());

    FrameDecoder dec;
    std::vector<Frame> frames;
    Frame f;
    for (uint8_t byte : w.buffer()) {
        dec.feed(&byte, 1);
        while (dec.next(f))
            frames.push_back(f);
    }
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].rank, 2u);
    EXPECT_EQ(frames[0].tick, 17u);
    EXPECT_EQ(frames[0].bytes, blob);
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST(DistFrames, ImplausibleMetricsLengthResyncsInsteadOfAllocating)
{
    FrameWriter w;
    w.metrics(1, 5, nullptr, 0);
    std::vector<uint8_t> bytes = w.buffer();
    // Corrupt the length prefix to an absurd count: the decoder must
    // treat the frame as garbage and recover the frame behind it.
    bytes[5 + 12] = 0xFF;
    bytes[5 + 13] = 0xFF;
    bytes[5 + 14] = 0xFF;
    bytes[5 + 15] = 0x7F;
    w.clear();
    w.tickStart(6);
    bytes.insert(bytes.end(), w.buffer().begin(), w.buffer().end());

    FrameDecoder dec;
    auto frames = decodeAll(dec, bytes);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, FrameType::TickStart);
    EXPECT_GT(dec.stats().resync_bytes, 0u);
}

TEST(DistFrames, SupervisionFramesRoundTrip)
{
    FrameWriter w;
    w.tickStart(77);
    w.tickDone(76, 3);
    w.peerDown(2);
    w.peerUp(1, 300);
    JoinFrame j;
    j.rank = 4;
    j.links = 1234;
    j.digest = 0xDEADBEEFu;
    w.join(j);
    w.bye(480);

    FrameDecoder dec;
    auto frames = decodeAll(dec, w.buffer());
    ASSERT_EQ(frames.size(), 6u);

    EXPECT_EQ(frames[0].type, FrameType::TickStart);
    EXPECT_EQ(frames[0].tick, 77u);

    EXPECT_EQ(frames[1].type, FrameType::TickDone);
    EXPECT_EQ(frames[1].tick, 76u);
    EXPECT_EQ(frames[1].rank, 3u);

    EXPECT_EQ(frames[2].type, FrameType::PeerDown);
    EXPECT_EQ(frames[2].rank, 2u);

    EXPECT_EQ(frames[3].type, FrameType::PeerUp);
    EXPECT_EQ(frames[3].rank, 1u);
    EXPECT_EQ(frames[3].tick, 300u);

    EXPECT_EQ(frames[4].type, FrameType::Join);
    EXPECT_EQ(frames[4].join.rank, 4u);
    EXPECT_EQ(frames[4].join.version, kProtocolVersion);
    EXPECT_EQ(frames[4].join.links, 1234u);
    EXPECT_EQ(frames[4].join.digest, 0xDEADBEEFu);

    EXPECT_EQ(frames[5].type, FrameType::Bye);
    EXPECT_EQ(frames[5].tick, 480u);
}

TEST(DistFrames, DecodesAcrossArbitrarySplits)
{
    FrameWriter w;
    w.join(JoinFrame{1, kProtocolVersion, 10, 0x1234u});
    w.ctrl(FrameType::Budget, sampleMsg());
    w.tickDone(5, 1);
    w.tickStart(6);

    // Feed one byte at a time: a frame may straddle any read boundary.
    FrameDecoder dec;
    std::vector<Frame> frames;
    Frame f;
    for (uint8_t byte : w.buffer()) {
        dec.feed(&byte, 1);
        while (dec.next(f))
            frames.push_back(f);
    }
    ASSERT_EQ(frames.size(), 4u);
    EXPECT_EQ(frames[0].type, FrameType::Join);
    EXPECT_EQ(frames[1].type, FrameType::Budget);
    EXPECT_EQ(frames[1].ctrl.link, 42u);
    EXPECT_EQ(frames[2].type, FrameType::TickDone);
    EXPECT_EQ(frames[3].type, FrameType::TickStart);
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST(DistFrames, CorruptedCtrlFrameIsDroppedAndDecodingResyncs)
{
    FrameWriter w;
    w.ctrl(FrameType::Budget, sampleMsg());
    size_t first = w.size();
    w.ctrl(FrameType::Reference, sampleMsg());
    w.tickStart(9);

    std::vector<uint8_t> bytes = w.buffer();
    // Flip one payload byte in the middle frame: its CRC fails, the
    // decoder hunts forward and recovers the tick-start behind it.
    bytes[first + 10] ^= 0xFF;

    FrameDecoder dec;
    auto frames = decodeAll(dec, bytes);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, FrameType::Budget);
    EXPECT_EQ(frames[1].type, FrameType::TickStart);
    EXPECT_EQ(frames[1].tick, 9u);
    EXPECT_EQ(dec.stats().bad_crc, 1u);
    EXPECT_GT(dec.stats().resync_bytes, 0u);
}

TEST(DistFrames, TruncatedFrameStaysBuffered)
{
    FrameWriter w;
    w.peerUp(3, 120);
    std::vector<uint8_t> bytes = w.buffer();
    bytes.resize(bytes.size() - 3); // cut mid-CRC

    FrameDecoder dec;
    auto frames = decodeAll(dec, bytes);
    EXPECT_TRUE(frames.empty());
    EXPECT_GT(dec.buffered(), 0u); // the cut is visible, not silent
}

TEST(DistFrames, GarbageBetweenFramesIsSkippedAndCounted)
{
    FrameWriter w;
    w.tickDone(1, 1);
    std::vector<uint8_t> bytes = w.buffer();
    const uint8_t junk[] = {0x00, 0xFF, 'N', 'P', 0x13, 0x37};
    bytes.insert(bytes.begin(), junk, junk + sizeof(junk));
    w.clear();
    w.tickStart(2);
    bytes.insert(bytes.end(), w.buffer().begin(), w.buffer().end());

    FrameDecoder dec;
    auto frames = decodeAll(dec, bytes);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, FrameType::TickDone);
    EXPECT_EQ(frames[1].type, FrameType::TickStart);
    EXPECT_EQ(dec.stats().resync_bytes, sizeof(junk));
}

} // namespace
