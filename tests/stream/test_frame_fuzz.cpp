/**
 * @file
 * FrameDecoder resync fuzz (docs/NETWORK_FAULTS.md): flip every single
 * byte of a multi-frame NPSF buffer — including the variable-length 'M'
 * frame's length field — and assert the hard decoder contract:
 *
 *   - no crash, ever;
 *   - no fabricated frame: every decoded frame is byte-identical to a
 *     frame that was actually written (CRC32 catches every single-byte
 *     flip, magic damage only hides a frame);
 *   - every byte accounted: fed == decoded-frame bytes + resync_bytes
 *     + buffered(), for any corruption and any chunking.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bus/transport.h"
#include "stream/frame.h"

using namespace nps;
using stream::DecodeStats;
using stream::Frame;
using stream::FrameDecoder;
using stream::FrameType;
using stream::FrameWriter;

namespace {

/** Re-encode a decoded frame; used to prove it was actually sent. */
std::vector<uint8_t>
reencode(const Frame &f)
{
    FrameWriter w;
    switch (f.type) {
    case FrameType::Hello:
        w.hello(f.hello);
        break;
    case FrameType::Sample:
        w.sample(f.sample);
        break;
    case FrameType::TickEnd:
        w.tickEnd(f.tick);
        break;
    case FrameType::Bye:
        w.bye(f.tick);
        break;
    case FrameType::Budget:
    case FrameType::Violation:
    case FrameType::Reference:
    case FrameType::Telemetry:
        w.ctrl(f.type, f.ctrl);
        break;
    case FrameType::TickStart:
        w.tickStart(f.tick);
        break;
    case FrameType::TickDone:
        w.tickDone(f.tick, f.rank);
        break;
    case FrameType::PeerDown:
        w.peerDown(f.rank);
        break;
    case FrameType::PeerUp:
        w.peerUp(f.rank, f.tick);
        break;
    case FrameType::Join:
        w.join(f.join);
        break;
    case FrameType::Metrics:
        w.metrics(f.rank, f.tick, f.bytes.data(), f.bytes.size());
        break;
    case FrameType::Heartbeat:
        w.heartbeat(f.rank, f.tick);
        break;
    }
    return w.buffer();
}

/** One frame of every type, 'M' with a non-trivial payload. */
std::vector<uint8_t>
cleanBuffer()
{
    FrameWriter w;
    stream::HelloFrame h;
    h.streams = 3;
    h.start_tick = 5;
    h.total_ticks = 100;
    w.hello(h);
    w.sample({7, 1, 0.625});
    w.sample({7, 2, 0.25});
    bus::WireMsg m;
    m.link = 3;
    m.tick = 7;
    m.seq = 41;
    m.value = 123.5;
    m.aux = 130.0;
    m.flags = bus::kWireDelivered;
    m.trace = 9;
    w.ctrl(FrameType::Budget, m);
    m.seq = 42;
    w.ctrl(FrameType::Violation, m);
    w.tickStart(8);
    w.tickDone(8, 2);
    w.heartbeat(1, 8);
    w.peerDown(2);
    w.peerUp(2, 9);
    w.join({2, stream::kProtocolVersion, 14, 0xdeadbeef});
    std::vector<uint8_t> snapshot(24);
    for (size_t i = 0; i < snapshot.size(); ++i)
        snapshot[i] = static_cast<uint8_t>(i); // never spells "NPSF"
    w.metrics(2, 8, snapshot.data(), snapshot.size());
    w.tickEnd(8);
    w.bye(9);
    return w.buffer();
}

struct DecodeResult
{
    std::vector<std::vector<uint8_t>> frames; //!< re-encoded bytes
    size_t frame_bytes = 0;
    DecodeStats stats;
    size_t buffered = 0;
};

DecodeResult
decodeAll(const std::vector<uint8_t> &buf, size_t chunk)
{
    FrameDecoder d;
    DecodeResult out;
    Frame f;
    for (size_t off = 0; off < buf.size(); off += chunk) {
        size_t n = std::min(chunk, buf.size() - off);
        d.feed(buf.data() + off, n);
        while (d.next(f)) {
            std::vector<uint8_t> bytes = reencode(f);
            out.frame_bytes += bytes.size();
            out.frames.push_back(std::move(bytes));
        }
    }
    out.stats = d.stats();
    out.buffered = d.buffered();
    return out;
}

/** Is @p needle a contiguous run of @p hay? */
bool
contains(const std::vector<uint8_t> &hay, const std::vector<uint8_t> &needle)
{
    return std::search(hay.begin(), hay.end(), needle.begin(),
                       needle.end()) != hay.end();
}

TEST(FrameFuzzTest, CleanBufferRoundTrips)
{
    std::vector<uint8_t> clean = cleanBuffer();
    DecodeResult r = decodeAll(clean, clean.size());
    EXPECT_EQ(r.frames.size(), 14u);
    EXPECT_EQ(r.frame_bytes, clean.size());
    EXPECT_EQ(r.stats.resync_bytes, 0u);
    EXPECT_EQ(r.stats.bad_crc, 0u);
    EXPECT_EQ(r.stats.bad_type, 0u);
    EXPECT_EQ(r.buffered, 0u);
    // Re-encoding reproduces the input byte for byte.
    std::vector<uint8_t> cat;
    for (const auto &f : r.frames)
        cat.insert(cat.end(), f.begin(), f.end());
    EXPECT_EQ(cat, clean);
}

TEST(FrameFuzzTest, EverySingleByteFlipIsSurvivedAndAccounted)
{
    std::vector<uint8_t> clean = cleanBuffer();
    size_t n_clean = decodeAll(clean, clean.size()).frames.size();

    for (size_t i = 0; i < clean.size(); ++i) {
        std::vector<uint8_t> mut = clean;
        mut[i] ^= 0xFF;
        DecodeResult r = decodeAll(mut, mut.size());

        // Contract 1: nothing fabricated — every decoded frame is a
        // byte run of the clean stream (CRC32 rejects every
        // single-byte-corrupted frame, so survivors are originals).
        for (const auto &f : r.frames)
            EXPECT_TRUE(contains(clean, f)) << "flip at byte " << i;

        // Contract 2: a flip costs frames it overlaps, nothing more. A
        // flipped 'M' length can also swallow the tail as a phantom
        // partial frame, never more than the frames behind it.
        EXPECT_LE(r.frames.size(), n_clean) << "flip at byte " << i;
        EXPECT_GE(r.frames.size() + 3, n_clean) << "flip at byte " << i;

        // Contract 3: every byte accounted — consumed by a good frame,
        // skipped hunting for magic, or parked as an incomplete tail.
        EXPECT_EQ(r.frame_bytes + r.stats.resync_bytes + r.buffered,
                  mut.size())
            << "flip at byte " << i;

        // A lost frame leaves a trace: bytes skipped hunting for magic,
        // or a phantom partial frame parked in the buffer.
        if (r.frames.size() < n_clean)
            EXPECT_GT(r.stats.resync_bytes + r.buffered, 0u)
                << "flip at byte " << i;
    }
}

TEST(FrameFuzzTest, ChunkingNeverChangesTheDecode)
{
    // The decoder must be bitwise indifferent to how the corrupted
    // stream is split: re-run a spread of flips byte-at-a-time and in
    // ragged 7-byte chunks and demand the identical result.
    std::vector<uint8_t> clean = cleanBuffer();
    for (size_t i = 0; i < clean.size(); i += 11) {
        std::vector<uint8_t> mut = clean;
        mut[i] ^= 0xFF;
        DecodeResult whole = decodeAll(mut, mut.size());
        DecodeResult bytewise = decodeAll(mut, 1);
        DecodeResult ragged = decodeAll(mut, 7);
        for (const DecodeResult *r : {&bytewise, &ragged}) {
            EXPECT_EQ(r->frames, whole.frames) << "flip at byte " << i;
            EXPECT_EQ(r->stats.resync_bytes, whole.stats.resync_bytes)
                << "flip at byte " << i;
            EXPECT_EQ(r->stats.bad_crc, whole.stats.bad_crc)
                << "flip at byte " << i;
            EXPECT_EQ(r->stats.bad_type, whole.stats.bad_type)
                << "flip at byte " << i;
            EXPECT_EQ(r->buffered, whole.buffered) << "flip at byte " << i;
        }
    }
}

TEST(FrameFuzzTest, TruncationParksTheTailWithoutLoss)
{
    // Cut the stream at every byte boundary: everything before the cut
    // decodes, the partial tail stays buffered, accounting holds.
    std::vector<uint8_t> clean = cleanBuffer();
    for (size_t cut = 0; cut <= clean.size(); cut += 13) {
        std::vector<uint8_t> head(clean.begin(),
                                  clean.begin() + static_cast<long>(cut));
        DecodeResult r = decodeAll(head, head.size() ? head.size() : 1);
        for (const auto &f : r.frames)
            EXPECT_TRUE(contains(clean, f)) << "cut at " << cut;
        EXPECT_EQ(r.frame_bytes + r.stats.resync_bytes + r.buffered, cut)
            << "cut at " << cut;
        EXPECT_EQ(r.stats.bad_crc, 0u) << "cut at " << cut;
    }
}

} // namespace
