/**
 * @file
 * Shared helpers for building small clusters and synthetic traces in
 * tests. Header-only; included by the sim/controllers/core/integration
 * test binaries.
 */

#ifndef NPS_TESTS_COMMON_FIXTURES_H
#define NPS_TESTS_COMMON_FIXTURES_H

#include <string>
#include <vector>

#include "model/machine.h"
#include "sim/cluster.h"
#include "trace/generator.h"
#include "trace/trace.h"

namespace nps_test {

/** A constant-demand trace of the given length. */
inline nps::trace::UtilizationTrace
flatTrace(const std::string &name, double util, size_t length = 64)
{
    return nps::trace::UtilizationTrace(
        name, nps::trace::WorkloadClass::WebServer,
        std::vector<double>(length, util));
}

/** n constant-demand traces. */
inline std::vector<nps::trace::UtilizationTrace>
flatTraces(size_t n, double util, size_t length = 64)
{
    std::vector<nps::trace::UtilizationTrace> out;
    for (size_t i = 0; i < n; ++i)
        out.push_back(flatTrace("flat" + std::to_string(i), util,
                                length));
    return out;
}

/** A square-wave trace alternating lo/hi every half period. */
inline nps::trace::UtilizationTrace
squareTrace(const std::string &name, double lo, double hi,
            size_t half_period, size_t length)
{
    std::vector<double> v(length);
    for (size_t t = 0; t < length; ++t)
        v[t] = (t / half_period) % 2 == 0 ? lo : hi;
    return nps::trace::UtilizationTrace(
        name, nps::trace::WorkloadClass::Database, std::move(v));
}

/** A small realistic trace set from the generator. */
inline std::vector<nps::trace::UtilizationTrace>
generatedTraces(size_t n, size_t length = 512, uint64_t seed = 11)
{
    nps::trace::GeneratorConfig cfg;
    cfg.trace_length = length;
    cfg.seed = seed;
    nps::trace::TraceGenerator gen(cfg);
    std::vector<nps::trace::UtilizationTrace> out;
    for (size_t i = 0; i < n; ++i) {
        auto wc = static_cast<nps::trace::WorkloadClass>(
            i % nps::trace::kNumWorkloadClasses);
        out.push_back(gen.generate(static_cast<unsigned>(i % 9),
                                   static_cast<unsigned>(i),
                                   nps::trace::defaultProfile(wc)));
    }
    return out;
}

/**
 * A small paper-shaped cluster: one 4-blade enclosure plus 2 standalone
 * servers (6 servers total), Blade A, one VM per server.
 */
inline nps::sim::Cluster
smallCluster(double util = 0.3,
             const nps::sim::BudgetConfig &budgets =
                 nps::sim::BudgetConfig::paper201510())
{
    nps::sim::Topology topo{6, 1, 4};
    return nps::sim::Cluster(topo, nps::model::bladeA(),
                             flatTraces(6, util), budgets, 0.10, 0.10);
}

} // namespace nps_test

#endif // NPS_TESTS_COMMON_FIXTURES_H
