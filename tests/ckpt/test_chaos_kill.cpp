/**
 * @file
 * Kill-and-resume chaos harness. A child process runs the simulation
 * tick by tick, writing a checkpoint every few ticks, and SIGKILLs
 * itself at a randomized tick — including one variant that dies "mid
 * checkpoint" with a partial temp file on disk. The parent then plays
 * operator: scan the checkpoint directory newest-first, skip anything
 * that fails validation (with the real loader, not a mock), restore the
 * newest valid snapshot, finish the run, and require every artifact to
 * match an uninterrupted reference byte for byte.
 *
 * Everything runs single-threaded: the engine spawns no pool at
 * threads=1, so fork() is safe, and thread-count independence has its
 * own coverage in test_resume.cpp.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "ckpt/ckpt_test_util.h"

namespace {

using namespace nps_ckpt_test;

constexpr size_t kTotal = 360;
constexpr size_t kEvery = 25; // checkpoint cadence (ticks)

/** The campaign for the faulty variant: activity on both sides of any
 *  kill tick in [kEvery, kTotal). */
constexpr const char *kFaults = "outage sm 2 40 150\n"
                                "drop gm-em * 100 200 0.5\n"
                                "stale em-sm 1 120 240\n"
                                "outage ec 0 220 300";

std::string
makeTempDir()
{
    std::string tmpl = ::testing::TempDir() + "/nps_chaos_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (!::mkdtemp(buf.data()))
        ADD_FAILURE() << "mkdtemp failed for " << tmpl;
    return buf.data();
}

void
removeTree(const std::string &dir)
{
    for (const std::string &n : listCkpts(dir))
        std::remove((dir + "/" + n).c_str());
    std::remove((dir + "/" + ckptName(9999999999ull) + ".tmp").c_str());
    ::rmdir(dir.c_str());
}

/**
 * Child body: run @p c tick by tick, checkpointing every kEvery ticks,
 * and die by SIGKILL at @p kill_tick. When @p partial_tmp, also leave a
 * half-written temp file behind first, as if the kill landed in the
 * middle of the next checkpoint's write. Never returns.
 */
[[noreturn]] void
childRun(const CkptCase &c, const std::string &dir, size_t kill_tick,
         bool partial_tmp)
{
    Sim s = buildSim(c, 1);
    for (size_t t = 0; t < kTotal;) {
        s.coord->run(1);
        ++t;
        if (t % kEvery == 0)
            writeCheckpoint(s, dir + "/" + ckptName(t));
        if (t == kill_tick) {
            if (partial_tmp) {
                nps::ckpt::SnapshotWriter w;
                s.coord->saveState(w);
                std::string bytes = w.serialize();
                std::ofstream out(dir + "/" + ckptName(9999999999ull) +
                                      ".tmp",
                                  std::ios::binary);
                out.write(bytes.data(),
                          static_cast<std::streamsize>(bytes.size() / 2));
            }
            ::raise(SIGKILL);
        }
    }
    ::_exit(0); // kill_tick past the end: nothing to test, but be clean
}

/** Fork the child, wait, and assert it really died by SIGKILL. */
void
runAndKill(const CkptCase &c, const std::string &dir, size_t kill_tick,
           bool partial_tmp = false)
{
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0)
        childRun(c, dir, kill_tick, partial_tmp); // never returns
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

/**
 * The operator's recovery procedure: newest valid checkpoint wins,
 * corrupt ones are skipped. @return the tick resumed from, or SIZE_MAX
 * when no checkpoint in @p dir validates.
 */
size_t
resumeNewestValid(const CkptCase &c, const std::string &dir, Sim &out)
{
    for (const std::string &name : listCkpts(dir)) {
        nps::ckpt::SnapshotReader snap;
        std::string err;
        if (!snap.load(dir + "/" + name, err))
            continue; // npsim warns here; the test just moves on
        out = buildSim(c, 1);
        restoreSim(out, snap);
        return ckptTick(name);
    }
    return static_cast<size_t>(-1);
}

/** Kill at @p kill_tick, recover, finish, compare against @p want. */
void
killResumeCompare(const CkptCase &c, size_t kill_tick,
                  const Artifacts &want, bool partial_tmp = false)
{
    std::string dir = makeTempDir();
    runAndKill(c, dir, kill_tick, partial_tmp);

    Sim resumed;
    size_t from = resumeNewestValid(c, dir, resumed);
    ASSERT_NE(from, static_cast<size_t>(-1))
        << "no valid checkpoint after kill at tick " << kill_tick;
    EXPECT_EQ(from, kill_tick / kEvery * kEvery)
        << "resumed from an unexpected checkpoint";
    resumed.coord->run(kTotal - from);
    expectIdentical(want, collect(resumed));
    removeTree(dir);
}

TEST(ChaosKillTest, RandomizedKillPointsResumeIdentically)
{
    CkptCase c;
    Sim ref = buildSim(c, 1);
    ref.coord->run(kTotal);
    Artifacts want = collect(ref);

    // Fixed seed: the campaign is random-looking but reproducible.
    std::mt19937 rng(20080301u);
    std::uniform_int_distribution<size_t> pick(kEvery, kTotal - 1);
    for (int i = 0; i < 4; ++i)
        killResumeCompare(c, pick(rng), want);
    // And the worst cases by construction: right after a checkpoint
    // completes, and right before the next one starts.
    killResumeCompare(c, kEvery, want);
    killResumeCompare(c, 2 * kEvery - 1, want);
}

TEST(ChaosKillTest, FaultCampaignReplaysIdenticallyAcrossKill)
{
    CkptCase c;
    c.faults = kFaults;
    Sim ref = buildSim(c, 1);
    ref.coord->run(kTotal);
    Artifacts want = collect(ref);

    std::mt19937 rng(42u);
    std::uniform_int_distribution<size_t> pick(kEvery, kTotal - 1);
    for (int i = 0; i < 3; ++i)
        killResumeCompare(c, pick(rng), want);
    // A kill inside the outage/stale windows specifically.
    killResumeCompare(c, 130, want);
}

TEST(ChaosKillTest, KillMidCheckpointLeavesRecoverableState)
{
    // The child dies with a half-written .tmp on disk. The scan must
    // ignore it and resume from the last completed checkpoint.
    CkptCase c;
    Sim ref = buildSim(c, 1);
    ref.coord->run(kTotal);
    Artifacts want = collect(ref);
    killResumeCompare(c, 137, want, /*partial_tmp=*/true);
}

TEST(ChaosKillTest, CorruptedNewestFallsBackToPrevious)
{
    CkptCase c;
    Sim ref = buildSim(c, 1);
    ref.coord->run(kTotal);
    Artifacts want = collect(ref);

    std::string dir = makeTempDir();
    runAndKill(c, dir, 137); // checkpoints at 25,50,...,125
    std::vector<std::string> names = listCkpts(dir);
    ASSERT_GE(names.size(), 2u);

    // Flip one payload byte in the newest checkpoint: CRC catches it.
    {
        std::string path = dir + "/" + names[0];
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary | std::ios::ate);
        ASSERT_TRUE(f.good());
        auto size = static_cast<std::streamoff>(f.tellg());
        f.seekg(size - 5);
        char b = 0;
        f.get(b);
        f.seekp(size - 5);
        f.put(static_cast<char>(b ^ 0x40));
    }

    Sim resumed;
    size_t from = resumeNewestValid(c, dir, resumed);
    ASSERT_EQ(from, ckptTick(names[1])) << "did not fall back";
    resumed.coord->run(kTotal - from);
    expectIdentical(want, collect(resumed));
    removeTree(dir);
}

TEST(ChaosKillTest, TruncatedNewestFallsBackToPrevious)
{
    CkptCase c;
    Sim ref = buildSim(c, 1);
    ref.coord->run(kTotal);
    Artifacts want = collect(ref);

    std::string dir = makeTempDir();
    runAndKill(c, dir, 112);
    std::vector<std::string> names = listCkpts(dir);
    ASSERT_GE(names.size(), 2u);

    // Chop the newest checkpoint roughly in half.
    {
        std::string path = dir + "/" + names[0];
        std::ifstream in(path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        in.close();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }

    Sim resumed;
    size_t from = resumeNewestValid(c, dir, resumed);
    ASSERT_EQ(from, ckptTick(names[1])) << "did not fall back";
    resumed.coord->run(kTotal - from);
    expectIdentical(want, collect(resumed));
    removeTree(dir);
}

TEST(ChaosKillTest, AllCheckpointsCorruptMeansNoResume)
{
    CkptCase c;
    std::string dir = makeTempDir();
    runAndKill(c, dir, 60); // checkpoints at 25, 50
    std::vector<std::string> names = listCkpts(dir);
    ASSERT_GE(names.size(), 2u);
    for (const std::string &n : names) {
        std::ofstream out(dir + "/" + n,
                          std::ios::binary | std::ios::trunc);
        out << "garbage";
    }
    Sim resumed;
    EXPECT_EQ(resumeNewestValid(c, dir, resumed),
              static_cast<size_t>(-1))
        << "corrupt checkpoints must not validate";
    removeTree(dir);
}

} // namespace
