/**
 * @file
 * Shared plumbing for the checkpoint/restore suites: build a fully
 * instrumented simulation (controllers + recorder + control log + obs),
 * snapshot it to bytes or disk, restore into a freshly built twin, and
 * collect every exported artifact for byte-exact comparison.
 */

#ifndef NPS_TESTS_CKPT_CKPT_TEST_UTIL_H
#define NPS_TESTS_CKPT_CKPT_TEST_UTIL_H

#include <gtest/gtest.h>

#include <algorithm>
#include <dirent.h>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"
#include "core/coordinator.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "golden/golden_cases.h"
#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "sim/recorder.h"
#include "util/logging.h"

namespace nps_ckpt_test {

/** One resume-equality scenario. */
struct CkptCase
{
    nps::core::Scenario scenario = nps::core::Scenario::Coordinated;
    bool tree = false;        //!< run on the 3-level GM-of-GMs topology
    bool cap_mem = false;     //!< enable electrical cappers + memory mgrs
    const char *faults = nullptr; //!< fault script, or null = fault-free
    bool stream = false;      //!< online run: arms the budget leases
};

/** A built simulation: coordinator + attached recorder. */
struct Sim
{
    std::unique_ptr<nps::core::Coordinator> coord;
    std::shared_ptr<nps::sim::Recorder> recorder;
};

inline Sim
buildSim(const CkptCase &c, unsigned threads)
{
    nps::core::CoordinationConfig cfg =
        nps::core::scenarioConfig(c.scenario);
    cfg.budgets = nps::sim::BudgetConfig::paper201510();
    cfg.threads = threads;
    cfg.log_control_plane = true;
    cfg.observability.metrics = true;
    cfg.observability.trace = true;
    if (c.cap_mem) {
        cfg.enable_cap = true;
        cfg.enable_mem = true;
    }
    if (c.faults) {
        cfg.faults.script = c.faults;
        cfg.faults.enabled = true;
    }
    cfg.stream.enabled = c.stream;
    nps::sim::Topology topo =
        c.tree ? nps::sim::Topology::tiered(2, 3, 1, 8, 2)
               : nps::core::ExperimentRunner::topologyFor(
                     nps::trace::Mix::Mid60);

    Sim s;
    s.coord = std::make_unique<nps::core::Coordinator>(
        cfg, topo, nps::model::machineByName("BladeA"),
        nps_golden::goldenTraces(), /*keep_series=*/true);
    nps::sim::Recorder::Options opts;
    opts.stride = 2;
    s.recorder = std::make_shared<nps::sim::Recorder>(s.coord->cluster(),
                                                      opts);
    s.recorder->setFaultInjector(s.coord->faultInjector());
    s.coord->engine().addActor(s.recorder);
    return s;
}

/** Serialize the full state (coordinator + recorder) to bytes. */
inline std::string
snapshotBytes(const Sim &s)
{
    nps::ckpt::SnapshotWriter w;
    s.coord->saveState(w);
    s.recorder->saveState(w.section("recorder"));
    return w.serialize();
}

/** Restore @p s (freshly built, never run) from @p snap. */
inline void
restoreSim(Sim &s, const nps::ckpt::SnapshotReader &snap)
{
    s.coord->loadState(snap);
    nps::ckpt::SectionReader r = snap.section("recorder");
    s.recorder->loadState(r);
    r.expectEnd();
}

/** Serialize the full state and write it crash-safely to @p path. */
inline void
writeCheckpoint(const Sim &s, const std::string &path)
{
    nps::ckpt::SnapshotWriter w;
    s.coord->saveState(w);
    s.recorder->saveState(w.section("recorder"));
    w.writeFile(path);
}

inline void
restoreSimFromBytes(Sim &s, const std::string &bytes)
{
    nps::ckpt::SnapshotReader snap;
    std::string err;
    if (!snap.loadBytes(bytes, "<memory>", err))
        nps::util::fatal("test snapshot failed to parse: %s",
                         err.c_str());
    restoreSim(s, snap);
}

/** Every artifact a run exports, for byte-exact comparison. */
struct Artifacts
{
    std::string recorder_csv;
    std::string control_csv;
    std::string metrics_prom;
    std::string trace_csv;
    std::vector<double> power_series;
    std::vector<double> perf_series;
    nps::sim::MetricsSummary summary;
};

inline Artifacts
collect(const Sim &s)
{
    Artifacts a;
    std::ostringstream rec, ctl, met, trc;
    s.recorder->writeCsv(rec);
    a.recorder_csv = rec.str();
    s.coord->controlLog()->writeCsv(ctl);
    a.control_csv = ctl.str();
    s.coord->metricsRegistry()->writeProm(met);
    a.metrics_prom = met.str();
    s.coord->traceSink()->writeCsv(trc);
    a.trace_csv = trc.str();
    a.power_series = s.coord->metrics().powerSeries();
    a.perf_series = s.coord->metrics().perfSeries();
    a.summary = s.coord->summary();
    return a;
}

/** Require two runs' exported artifacts to match byte for byte. */
inline void
expectIdentical(const Artifacts &ref, const Artifacts &got)
{
    EXPECT_EQ(ref.recorder_csv, got.recorder_csv);
    EXPECT_EQ(ref.control_csv, got.control_csv);
    EXPECT_EQ(ref.metrics_prom, got.metrics_prom);
    EXPECT_EQ(ref.trace_csv, got.trace_csv);
    EXPECT_EQ(ref.power_series, got.power_series);
    EXPECT_EQ(ref.perf_series, got.perf_series);
    EXPECT_EQ(ref.summary.ticks, got.summary.ticks);
    // Exact equality on purpose: resume must be bit-identical, not close.
    EXPECT_EQ(ref.summary.energy, got.summary.energy);
    EXPECT_EQ(ref.summary.mean_power, got.summary.mean_power);
    EXPECT_EQ(ref.summary.peak_power, got.summary.peak_power);
    EXPECT_EQ(ref.summary.sm_violation, got.summary.sm_violation);
    EXPECT_EQ(ref.summary.em_violation, got.summary.em_violation);
    EXPECT_EQ(ref.summary.gm_violation, got.summary.gm_violation);
    EXPECT_EQ(ref.summary.perf_loss, got.summary.perf_loss);
    EXPECT_EQ(ref.summary.degrade.outage_ticks,
              got.summary.degrade.outage_ticks);
    EXPECT_EQ(ref.summary.degrade.outage_steps,
              got.summary.degrade.outage_steps);
    EXPECT_EQ(ref.summary.degrade.restarts, got.summary.degrade.restarts);
    EXPECT_EQ(ref.summary.degrade.lease_expiries,
              got.summary.degrade.lease_expiries);
    EXPECT_EQ(ref.summary.degrade.lease_fallback_steps,
              got.summary.degrade.lease_fallback_steps);
    EXPECT_EQ(ref.summary.degrade.ec_fallback_steps,
              got.summary.degrade.ec_fallback_steps);
    EXPECT_EQ(ref.summary.degrade.dropped_budgets,
              got.summary.degrade.dropped_budgets);
    EXPECT_EQ(ref.summary.degrade.stale_budgets,
              got.summary.degrade.stale_budgets);
    EXPECT_EQ(ref.summary.degrade.stuck_actuations,
              got.summary.degrade.stuck_actuations);
    EXPECT_EQ(ref.summary.degrade.noisy_reads,
              got.summary.degrade.noisy_reads);
}

/** Checkpoint file name for tick @p tick (zero-padded = sortable). */
inline std::string
ckptName(size_t tick)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "ckpt-%010zu.nps", tick);
    return buf;
}

/** ckpt-*.nps names in @p dir, newest first (mirrors npsim's scan). */
inline std::vector<std::string>
listCkpts(const std::string &dir)
{
    std::vector<std::string> names;
    if (DIR *d = ::opendir(dir.c_str())) {
        while (struct dirent *e = ::readdir(d)) {
            std::string n = e->d_name;
            if (n.size() > 9 && n.compare(0, 5, "ckpt-") == 0 &&
                n.compare(n.size() - 4, 4, ".nps") == 0)
                names.push_back(n);
        }
        ::closedir(d);
    }
    std::sort(names.rbegin(), names.rend());
    return names;
}

/** Tick number encoded in a ckpt-<tick>.nps name. */
inline size_t
ckptTick(const std::string &name)
{
    return static_cast<size_t>(
        std::strtoull(name.c_str() + 5, nullptr, 10));
}

} // namespace nps_ckpt_test

#endif // NPS_TESTS_CKPT_CKPT_TEST_UTIL_H
