/**
 * @file
 * Resume-equals-uninterrupted, in process. For each scenario in the
 * matrix: run a reference simulation straight through, then run a twin
 * up to a split tick, snapshot it, restore the snapshot into a freshly
 * built simulation, finish the remaining ticks, and require every
 * exported artifact — recorder CSV, control-plane log, metrics export,
 * decision trace, power/perf series, summary — to match byte for byte.
 * Thread counts differ across the split in several cases because
 * determinism must not depend on the worker count.
 */

#include <gtest/gtest.h>

#include "ckpt/ckpt_test_util.h"

namespace {

using namespace nps_ckpt_test;
using nps::core::Scenario;

constexpr size_t kTotal = 360; // < trace length so the tail still moves

/** The fault campaign used by the fault-carrying cases: an SM outage
 *  spanning the split, lossy and stale links, and an EC outage after
 *  the split, so degraded behaviour exists on both sides of it. */
constexpr const char *kFaults = "outage sm 2 40 150\n"
                                "drop gm-em * 100 200 0.5\n"
                                "stale em-sm 1 120 240\n"
                                "outage ec 0 220 300";

/**
 * Run @p c straight through at @p ref_threads; run it again at
 * @p threads_a up to @p split, checkpoint, restore into a fresh build
 * at @p threads_b, finish, and compare everything.
 */
void
checkResume(const CkptCase &c, size_t split, unsigned ref_threads,
            unsigned threads_a, unsigned threads_b)
{
    Sim ref = buildSim(c, ref_threads);
    ref.coord->run(kTotal);
    Artifacts want = collect(ref);

    Sim first = buildSim(c, threads_a);
    first.coord->run(split);
    std::string bytes = snapshotBytes(first);

    Sim second = buildSim(c, threads_b);
    restoreSimFromBytes(second, bytes);
    second.coord->run(kTotal - split);
    expectIdentical(want, collect(second));
}

TEST(ResumeTest, CoordinatedSerial)
{
    checkResume({}, 163, 1, 1, 1);
}

TEST(ResumeTest, CoordinatedAcrossThreadCounts)
{
    // Checkpoint under 8 workers, resume serial, reference at 8: the
    // snapshot is thread-count independent in both directions.
    checkResume({}, 163, 8, 8, 1);
}

TEST(ResumeTest, CoordinatedWithFaultCampaign)
{
    // The fault schedule is rebuilt from config on resume, and the kill
    // point sits inside an outage AND a stale window — link replay
    // slots, restart bookkeeping, and degrade counters all cross the
    // checkpoint. Serial checkpoint, threaded resume.
    CkptCase c;
    c.faults = kFaults;
    checkResume(c, 163, 1, 1, 8);
}

TEST(ResumeTest, VmcOnlyScenario)
{
    CkptCase c;
    c.scenario = Scenario::VmcOnly;
    checkResume(c, 100, 1, 1, 1);
}

TEST(ResumeTest, UncoordinatedScenario)
{
    CkptCase c;
    c.scenario = Scenario::Uncoordinated;
    checkResume(c, 163, 1, 1, 1);
}

TEST(ResumeTest, ThreeLevelGmTree)
{
    CkptCase c;
    c.tree = true;
    checkResume(c, 163, 1, 1, 1);
}

TEST(ResumeTest, TreeWithFaultsAcrossThreads)
{
    CkptCase c;
    c.tree = true;
    c.faults = kFaults;
    checkResume(c, 163, 1, 8, 1);
}

TEST(ResumeTest, CapperAndMemoryManagers)
{
    CkptCase c;
    c.cap_mem = true;
    checkResume(c, 163, 1, 1, 1);
}

TEST(ResumeTest, SplitAtTickZero)
{
    // Checkpoint before the first tick: restore must reproduce the whole
    // run, including controller warm-up.
    checkResume({}, 0, 1, 1, 1);
}

TEST(ResumeTest, SplitAtFinalTick)
{
    // Checkpoint after the last tick: restore runs zero ticks and the
    // artifacts must already be complete.
    checkResume({}, kTotal, 1, 1, 1);
}

TEST(ResumeTest, RestoreIntoWrongTopologyDies)
{
    Sim flat = buildSim({}, 1);
    flat.coord->run(20);
    std::string bytes = snapshotBytes(flat);

    CkptCase tree_case;
    tree_case.tree = true;
    EXPECT_DEATH(
        {
            Sim tree = buildSim(tree_case, 1);
            restoreSimFromBytes(tree, bytes);
        },
        "snapshot");
}

} // namespace
