/**
 * @file
 * Tests for the snapshot container itself: typed round trips, the
 * on-disk layout guarantees, and — most importantly — that every way a
 * file can be damaged (bit flip, truncation, wrong magic, future
 * version, trailing garbage) is *detected* at load with a reason,
 * instead of silently resuming from garbage.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "ckpt/atomic_io.h"
#include "ckpt/snapshot.h"

namespace {

using namespace nps::ckpt;

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

/** A writer with one section exercising every typed put. */
SnapshotWriter
sampleSnapshot()
{
    SnapshotWriter w;
    SectionWriter &s = w.section("alpha");
    s.putU32(0xdeadbeefu);
    s.putU64(0x0123456789abcdefull);
    s.putI64(-42);
    s.putDouble(0.1 + 0.2); // not representable in 6 digits
    s.putDouble(-std::numeric_limits<double>::infinity());
    s.putBool(true);
    s.putBool(false);
    s.putString("hello checkpoint");
    s.putDoubleVec({1.5, -2.5, 1e-300});
    s.putU64Vec({7, 8, 9});
    w.section("beta").putU32(1);
    return w;
}

TEST(SnapshotFormat, TypedRoundTripIsExact)
{
    SnapshotWriter w = sampleSnapshot();
    SnapshotReader snap;
    std::string err;
    ASSERT_TRUE(snap.loadBytes(w.serialize(), "mem", err)) << err;

    ASSERT_TRUE(snap.has("alpha"));
    ASSERT_TRUE(snap.has("beta"));
    EXPECT_FALSE(snap.has("gamma"));
    // Section order is preserved.
    ASSERT_EQ(snap.names().size(), 2u);
    EXPECT_EQ(snap.names()[0], "alpha");

    SectionReader r = snap.section("alpha");
    EXPECT_EQ(r.getU32(), 0xdeadbeefu);
    EXPECT_EQ(r.getU64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.getI64(), -42);
    EXPECT_EQ(r.getDouble(), 0.1 + 0.2); // bit-exact, not near
    EXPECT_TRUE(std::isinf(r.getDouble()));
    EXPECT_TRUE(r.getBool());
    EXPECT_FALSE(r.getBool());
    EXPECT_EQ(r.getString(), "hello checkpoint");
    EXPECT_EQ(r.getDoubleVec(), (std::vector<double>{1.5, -2.5, 1e-300}));
    EXPECT_EQ(r.getU64Vec(), (std::vector<uint64_t>{7, 8, 9}));
    r.expectEnd();
}

TEST(SnapshotFormat, FileRoundTripMatchesMemory)
{
    std::string path = tempPath("nps_snap_roundtrip.nps");
    SnapshotWriter w = sampleSnapshot();
    w.writeFile(path);

    SnapshotReader snap;
    std::string err;
    ASSERT_TRUE(snap.load(path, err)) << err;
    SectionReader r = snap.section("beta");
    EXPECT_EQ(r.getU32(), 1u);
    r.expectEnd();
    // The crash-safe write leaves no temp file behind.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(SnapshotFormat, BitFlipFailsCrcWithSectionName)
{
    std::string bytes = sampleSnapshot().serialize();
    bytes[bytes.size() - 3] ^= 0x01; // inside the last payload
    SnapshotReader snap;
    std::string err;
    EXPECT_FALSE(snap.loadBytes(bytes, "mem", err));
    EXPECT_NE(err.find("CRC mismatch"), std::string::npos) << err;
    EXPECT_NE(err.find("beta"), std::string::npos) << err;
    EXPECT_NE(err.find("corrupt"), std::string::npos) << err;
}

TEST(SnapshotFormat, EveryTruncationPointIsDetected)
{
    std::string bytes = sampleSnapshot().serialize();
    SnapshotReader snap;
    std::string err;
    // Chop at every prefix length: nothing may load successfully, and
    // nothing may crash — only clean "truncated"/"magic" rejections.
    for (size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(snap.loadBytes(bytes.substr(0, len), "mem", err))
            << "prefix of " << len << " bytes parsed as valid";
    }
}

TEST(SnapshotFormat, BadMagicRejected)
{
    SnapshotReader snap;
    std::string err;
    EXPECT_FALSE(snap.loadBytes("NOTACKPTxxxxxxxxxxxx", "mem", err));
    EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
}

TEST(SnapshotFormat, FutureVersionRejected)
{
    std::string bytes = sampleSnapshot().serialize();
    bytes[8] = 99; // version u32 (little-endian) follows the 8-byte magic
    SnapshotReader snap;
    std::string err;
    EXPECT_FALSE(snap.loadBytes(bytes, "mem", err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(SnapshotFormat, TrailingGarbageRejected)
{
    std::string bytes = sampleSnapshot().serialize() + "junk";
    SnapshotReader snap;
    std::string err;
    EXPECT_FALSE(snap.loadBytes(bytes, "mem", err));
    EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(SnapshotFormat, MissingFileIsNonFatal)
{
    SnapshotReader snap;
    std::string err;
    EXPECT_FALSE(snap.load(tempPath("nps_does_not_exist.nps"), err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST(SnapshotFormat, DuplicateSectionNameDies)
{
    SnapshotWriter w;
    w.section("dup");
    EXPECT_DEATH(w.section("dup"), "duplicate");
}

TEST(SnapshotFormat, UnderrunReadDiesNamingSection)
{
    SnapshotWriter w;
    w.section("small").putU32(1);
    SnapshotReader snap;
    std::string err;
    ASSERT_TRUE(snap.loadBytes(w.serialize(), "mem", err)) << err;
    EXPECT_DEATH(
        {
            SectionReader r = snap.section("small");
            r.getU64(); // 4 bytes there, 8 wanted
        },
        "small");
}

TEST(SnapshotFormat, LeftoverBytesDieOnExpectEnd)
{
    SnapshotWriter w;
    w.section("long").putU64(1);
    SnapshotReader snap;
    std::string err;
    ASSERT_TRUE(snap.loadBytes(w.serialize(), "mem", err)) << err;
    EXPECT_DEATH(
        {
            SectionReader r = snap.section("long");
            r.getU32();
            r.expectEnd(); // 4 bytes still unread
        },
        "long");
}

TEST(AtomicIo, WriteFailureIsFatalWithPath)
{
    EXPECT_DEATH(
        writeFileAtomic(tempPath("no_such_dir/file.out"), "data"),
        "no_such_dir");
}

TEST(AtomicIo, OverwriteReplacesWholeFile)
{
    std::string path = tempPath("nps_atomic_overwrite.txt");
    writeFileAtomic(path, "first version, longer");
    writeFileAtomic(path, "second");
    std::ifstream in(path);
    std::string got((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(got, "second");
    std::remove(path.c_str());
}

} // namespace
