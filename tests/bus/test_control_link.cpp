/**
 * @file
 * Tests for the typed control links: sequencing, budget drop/stale
 * fault semantics, the delivery clamp, reset, and deterministic
 * mirroring into the control-plane log.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "bus/control_link.h"
#include "bus/control_log.h"
#include "fault/injector.h"

namespace {

using namespace nps;
using bus::BudgetLink;
using bus::ControlPlaneLog;
using bus::ReferenceLink;
using bus::TelemetryLink;
using bus::ViolationChannel;

struct SinkRecord
{
    std::vector<bus::BudgetGrant> grants;
};

BudgetLink
makeLink(SinkRecord &rec, fault::Link link = fault::Link::EmToSm,
         long child = 9)
{
    return BudgetLink(link, child, "EM/0->SM/9",
                      [&rec](const bus::BudgetGrant &g) {
                          rec.grants.push_back(g);
                      });
}

TEST(BudgetLinkTest, SequencesAndDeliversFaultFree)
{
    SinkRecord rec;
    BudgetLink link = makeLink(rec);
    EXPECT_TRUE(link.send(120.0, 5));
    EXPECT_TRUE(link.send(130.0, 10));
    ASSERT_EQ(rec.grants.size(), 2u);
    EXPECT_DOUBLE_EQ(rec.grants[0].watts, 120.0);
    EXPECT_EQ(rec.grants[0].tick, 5u);
    EXPECT_EQ(rec.grants[0].seq, 1u);
    EXPECT_EQ(rec.grants[1].seq, 2u);
    EXPECT_EQ(link.sent(), 2u);
    EXPECT_EQ(link.delivered(), 2u);
}

TEST(BudgetLinkTest, ClampsDeliveryToPositiveFloor)
{
    SinkRecord rec;
    BudgetLink link = makeLink(rec);
    link.send(0.0, 1);
    link.send(-5.0, 2);
    ASSERT_EQ(rec.grants.size(), 2u);
    EXPECT_DOUBLE_EQ(rec.grants[0].watts, BudgetLink::kMinGrant);
    EXPECT_DOUBLE_EQ(rec.grants[1].watts, BudgetLink::kMinGrant);
}

TEST(BudgetLinkTest, DropWindowSuppressesDeliveryAndCounts)
{
    SinkRecord rec;
    BudgetLink link = makeLink(rec);
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("drop em-sm 9 10 20 1"), 1);
    fault::DegradeStats stats;
    link.setFaultInjector(&inj, &stats);

    EXPECT_TRUE(link.send(100.0, 5));   // before the window
    EXPECT_FALSE(link.send(110.0, 12)); // inside: dropped
    EXPECT_TRUE(link.send(120.0, 25));  // after
    ASSERT_EQ(rec.grants.size(), 2u);
    EXPECT_DOUBLE_EQ(rec.grants[1].watts, 120.0);
    EXPECT_EQ(stats.dropped_budgets, 1u);
    EXPECT_EQ(link.sent(), 3u);
    EXPECT_EQ(link.delivered(), 2u);
}

TEST(BudgetLinkTest, DropTargetsOnlyTheNamedChild)
{
    SinkRecord rec9, rec7;
    BudgetLink hit = makeLink(rec9, fault::Link::EmToSm, 9);
    BudgetLink miss(fault::Link::EmToSm, 7, "EM/0->SM/7",
                    [&rec7](const bus::BudgetGrant &g) {
                        rec7.grants.push_back(g);
                    });
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("drop em-sm 9 0 100 1"), 1);
    fault::DegradeStats stats;
    hit.setFaultInjector(&inj, &stats);
    miss.setFaultInjector(&inj, &stats);
    hit.send(100.0, 10);
    miss.send(100.0, 10);
    EXPECT_TRUE(rec9.grants.empty());
    ASSERT_EQ(rec7.grants.size(), 1u);
}

TEST(BudgetLinkTest, StaleReplaysPreviousEpochOnly)
{
    SinkRecord rec;
    BudgetLink link = makeLink(rec);
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("stale em-sm 9 10 20"), 1);
    fault::DegradeStats stats;
    link.setFaultInjector(&inj, &stats);

    link.send(100.0, 5);  // fresh; becomes the replayable epoch
    link.send(200.0, 12); // stale window: replays 100
    link.send(300.0, 15); // still stale: replays 200 (prev advanced)
    link.send(400.0, 25); // fresh again
    ASSERT_EQ(rec.grants.size(), 4u);
    EXPECT_DOUBLE_EQ(rec.grants[0].watts, 100.0);
    EXPECT_DOUBLE_EQ(rec.grants[1].watts, 100.0);
    EXPECT_DOUBLE_EQ(rec.grants[2].watts, 200.0);
    EXPECT_DOUBLE_EQ(rec.grants[3].watts, 400.0);
    EXPECT_EQ(stats.stale_budgets, 2u);
}

TEST(BudgetLinkTest, StaleWithNoHistoryDeliversFreshUncounted)
{
    SinkRecord rec;
    BudgetLink link = makeLink(rec);
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("stale em-sm 9 0 20"), 1);
    fault::DegradeStats stats;
    link.setFaultInjector(&inj, &stats);

    link.send(100.0, 5); // first ever send: nothing old to replay
    ASSERT_EQ(rec.grants.size(), 1u);
    EXPECT_DOUBLE_EQ(rec.grants[0].watts, 100.0);
    EXPECT_EQ(stats.stale_budgets, 0u);
}

TEST(BudgetLinkTest, ResetForgetsReplayHistory)
{
    SinkRecord rec;
    BudgetLink link = makeLink(rec);
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("stale em-sm 9 10 20"), 1);
    fault::DegradeStats stats;
    link.setFaultInjector(&inj, &stats);

    link.send(100.0, 5);
    link.reset(); // sender restarted cold
    link.send(200.0, 12); // stale window, but history gone: fresh
    ASSERT_EQ(rec.grants.size(), 2u);
    EXPECT_DOUBLE_EQ(rec.grants[1].watts, 200.0);
    EXPECT_EQ(stats.stale_budgets, 0u);
}

TEST(BudgetLinkTest, DroppedSendStillAdvancesReplayEpoch)
{
    // PR 2 semantics: prev_grants_[slot] was updated even when the send
    // was dropped, so a stale fault right after a drop replays the
    // *dropped* value, not the one before it.
    SinkRecord rec;
    BudgetLink link = makeLink(rec);
    fault::FaultInjector inj(fault::FaultSchedule::parse(
                                 "drop em-sm 9 10 14 1; "
                                 "stale em-sm 9 15 20"),
                             1);
    fault::DegradeStats stats;
    link.setFaultInjector(&inj, &stats);

    link.send(100.0, 5);
    link.send(200.0, 12); // dropped, but recorded as previous epoch
    link.send(300.0, 16); // stale: replays 200
    ASSERT_EQ(rec.grants.size(), 2u);
    EXPECT_DOUBLE_EQ(rec.grants[1].watts, 200.0);
}

TEST(ViolationChannelTest, PollsAndDrainsTheSource)
{
    bus::ViolationTracker tracker;
    tracker.record(true);
    tracker.record(false);
    ViolationChannel ch("loc0->VMC", &tracker);
    bus::ViolationReport r = ch.poll(100);
    EXPECT_DOUBLE_EQ(r.epoch_rate, 0.5);
    EXPECT_EQ(r.tick, 100u);
    EXPECT_EQ(r.seq, 1u);
    ch.drain();
    EXPECT_DOUBLE_EQ(ch.poll(101).epoch_rate, 0.0);
}

TEST(ReferenceLinkTest, DeliversSequencedUpdates)
{
    std::vector<bus::ReferenceUpdate> seen;
    ReferenceLink link("SM/0->EC/0", [&](const bus::ReferenceUpdate &u) {
        seen.push_back(u);
    });
    link.send(0.72, 4);
    link.send(0.68, 9);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_DOUBLE_EQ(seen[0].r_ref, 0.72);
    EXPECT_EQ(seen[1].seq, 2u);
}

TEST(ControlLogTest, MirrorsDeliveredAndDroppedTraffic)
{
    ControlPlaneLog log;
    SinkRecord rec;
    BudgetLink link = makeLink(rec);
    link.attachLog(&log);
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("drop em-sm 9 10 20 1"), 1);
    fault::DegradeStats stats;
    link.setFaultInjector(&inj, &stats);

    link.send(100.0, 5);
    link.send(110.0, 12); // dropped, still mirrored
    ASSERT_EQ(log.totalEvents(), 2u);
    auto merged = log.merged();
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_TRUE(merged[0].event->delivered);
    EXPECT_FALSE(merged[1].event->delivered);
    EXPECT_DOUBLE_EQ(merged[1].event->aux, 110.0);
}

TEST(ControlLogTest, MergedOrderIsIndependentOfRegistration)
{
    // Two logs with opposite registration order must merge identically:
    // the order is (tick, link name, seq), never insertion.
    auto run = [](bool flip) {
        auto log = std::make_unique<ControlPlaneLog>();
        TelemetryLink a("CAP/0.clamp");
        TelemetryLink b("MM/1.memmode");
        if (flip) {
            b.attachLog(log.get());
            a.attachLog(log.get());
        } else {
            a.attachLog(log.get());
            b.attachLog(log.get());
        }
        b.emit(1.0, 0.5, 7);
        a.emit(1.0, 0.2, 3);
        a.emit(0.0, 0.1, 7);
        std::ostringstream out;
        log->writeCsv(out);
        return out.str();
    };
    std::string forward = run(false);
    EXPECT_EQ(forward, run(true));
    // Tick order first: the tick-3 clamp precedes both tick-7 events
    // (the tick is the leading CSV column).
    EXPECT_LT(forward.find("\n3,"), forward.find("\n7,"));
}

} // namespace
