/**
 * @file
 * ControlLink sequence-number edge cases through the transport seam
 * (docs/DISTRIBUTED.md): wraparound, duplicate delivery and
 * stale-vs-drop ordering must behave identically whether messages
 * resolve through the in-process transport or over a real socket.
 *
 * One parameterized rig drives both shapes. The in-process rig is a
 * single link behind an InProcTransport. The socket rig is a faithful
 * two-replica miniature of a distributed run: a hub SocketTransport
 * (rank 0) and a leaf SocketTransport (rank 1) joined by a socketpair,
 * each side holding its own replica of one leaf-owned BudgetLink. Every
 * send happens on both replicas in lockstep — the leaf broadcasts its
 * frame, the hub consumes and cross-checks it — so a passing test also
 * proves the desync detector stayed quiet. A dup() of the leaf's socket
 * lets tests inject raw re-delivered frames under the hub's nose.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "bus/control_link.h"
#include "bus/transport.h"
#include "ckpt/snapshot.h"
#include "fault/injector.h"
#include "stream/frame.h"
#include "stream/socket_transport.h"

namespace {

using namespace nps;
using bus::BudgetLink;

/** One logical budget link resolved through some transport. */
class Rig
{
  public:
    virtual ~Rig() = default;

    /** Send on every replica in lockstep.
     * @return delivered, as seen by the consumer side. */
    virtual bool send(double watts, size_t tick) = 0;

    /** Consumer-side deliveries. */
    virtual const std::vector<bus::BudgetGrant> &grants() const = 0;

    /** Consumer-side degradation counters. */
    virtual const fault::DegradeStats &stats() const = 0;

    /** Seed every replica's sequence counter (checkpoint-restore path). */
    virtual void seedSeq(uint64_t seq) = 0;

    /** Attach the same (pure) fault oracle to every replica. */
    virtual void attachFaults(const fault::FaultInjector *inj) = 0;

    /** Re-deliver the last sent frame on the wire, if there is a wire.
     * @return false when the transport has no wire to duplicate on. */
    virtual bool redeliverLast() { return false; }

    /** Duplicate frames the consumer discarded. */
    virtual uint64_t duplicates() const { return 0; }
};

/** Round-trip a link's serialized state with the seq counter replaced. */
void
reseedLink(BudgetLink &link, uint64_t seq)
{
    ckpt::SectionWriter w;
    link.saveState(w);
    ckpt::SectionReader peek("link", w.bytes());
    peek.getU64(); // the old seq
    ckpt::SectionWriter patched;
    patched.putU64(seq);
    patched.putDouble(peek.getDouble());
    patched.putBool(peek.getBool());
    patched.putU64(peek.getU64());
    patched.putU64(peek.getU64()); // reorder window: last sunk seq
    patched.putBool(peek.getBool()); // reorder window armed
    ckpt::SectionReader r("link", patched.bytes());
    link.loadState(r);
}

class InProcRig : public Rig
{
  public:
    InProcRig()
        : link_(fault::Link::EmToSm, 9, "EM/0->SM/9",
                [this](const bus::BudgetGrant &g) {
                    grants_.push_back(g);
                })
    {
        link_.setTransport(&transport_, 0);
        link_.attachDegradeStats(&stats_);
    }

    bool send(double watts, size_t tick) override
    {
        return link_.send(watts, tick);
    }
    const std::vector<bus::BudgetGrant> &grants() const override
    {
        return grants_;
    }
    const fault::DegradeStats &stats() const override { return stats_; }
    void seedSeq(uint64_t seq) override { reseedLink(link_, seq); }
    void attachFaults(const fault::FaultInjector *inj) override
    {
        link_.setFaultInjector(inj, &stats_);
    }

  private:
    bus::InProcTransport transport_;
    std::vector<bus::BudgetGrant> grants_;
    fault::DegradeStats stats_;
    BudgetLink link_;
};

class SocketRig : public Rig
{
  public:
    SocketRig()
    {
        int fds[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        tap_ = ::dup(fds[1]); // writes arrive at the hub "from rank 1"
        hub_ = std::make_unique<stream::SocketTransport>(5000u);
        leaf_ = std::make_unique<stream::SocketTransport>(1, fds[1],
                                                          5000u);
        hub_->addPeer(1, fds[0]);
        hub_link_ = makeReplica(hub_grants_);
        leaf_link_ = makeReplica(leaf_grants_);
        hub_link_->setTransport(hub_.get(), 1);
        leaf_link_->setTransport(leaf_.get(), 1);
        hub_link_->attachDegradeStats(&hub_stats_);
        leaf_link_->attachDegradeStats(&leaf_stats_);
    }

    ~SocketRig() override { ::close(tap_); }

    bool send(double watts, size_t tick) override
    {
        // Owner first (frames the outcome), consumer second (blocks for
        // the frame and cross-checks it against its own computation).
        bool owner = leaf_link_->send(watts, tick);
        bool consumer = hub_link_->send(watts, tick);
        EXPECT_EQ(owner, consumer);
        last_ = bus::WireMsg{};
        last_.link = hub_link_->wireId();
        last_.tick = tick;
        last_.seq = leaf_link_->sent();
        last_.value = std::max(watts, BudgetLink::kMinGrant);
        last_.aux = watts;
        last_.flags = bus::kWireDelivered;
        have_last_ = owner;
        return consumer;
    }

    const std::vector<bus::BudgetGrant> &grants() const override
    {
        return hub_grants_;
    }
    const fault::DegradeStats &stats() const override
    {
        return hub_stats_;
    }

    void seedSeq(uint64_t seq) override
    {
        reseedLink(*hub_link_, seq);
        reseedLink(*leaf_link_, seq);
    }

    void attachFaults(const fault::FaultInjector *inj) override
    {
        // The oracle is a pure function of (seed, link, target, tick),
        // so sharing one instance across replicas mirrors how every
        // process of a real run computes identical faults.
        hub_link_->setFaultInjector(inj, &hub_stats_);
        leaf_link_->setFaultInjector(inj, &leaf_stats_);
    }

    bool redeliverLast() override
    {
        if (!have_last_)
            return false;
        stream::FrameWriter w;
        w.ctrl(stream::FrameType::Budget, last_);
        EXPECT_EQ(::write(tap_, w.data(), w.size()),
                  static_cast<ssize_t>(w.size()));
        return true;
    }

    uint64_t duplicates() const override
    {
        return hub_->stats().duplicates;
    }

  private:
    std::unique_ptr<BudgetLink>
    makeReplica(std::vector<bus::BudgetGrant> &sink)
    {
        return std::make_unique<BudgetLink>(
            fault::Link::EmToSm, 9, "EM/0->SM/9",
            [&sink](const bus::BudgetGrant &g) { sink.push_back(g); });
    }

    std::unique_ptr<stream::SocketTransport> hub_;
    std::unique_ptr<stream::SocketTransport> leaf_;
    int tap_ = -1;
    std::vector<bus::BudgetGrant> hub_grants_;
    std::vector<bus::BudgetGrant> leaf_grants_;
    fault::DegradeStats hub_stats_;
    fault::DegradeStats leaf_stats_;
    std::unique_ptr<BudgetLink> hub_link_;
    std::unique_ptr<BudgetLink> leaf_link_;
    bus::WireMsg last_;
    bool have_last_ = false;
};

enum class Kind
{
    InProc,
    Socket,
};

class TransportSeqTest : public ::testing::TestWithParam<Kind>
{
  protected:
    void SetUp() override
    {
        if (GetParam() == Kind::InProc)
            rig_ = std::make_unique<InProcRig>();
        else
            rig_ = std::make_unique<SocketRig>();
    }

    std::unique_ptr<Rig> rig_;
};

INSTANTIATE_TEST_SUITE_P(
    Transports, TransportSeqTest,
    ::testing::Values(Kind::InProc, Kind::Socket),
    [](const ::testing::TestParamInfo<Kind> &info) {
        return info.param == Kind::InProc ? "InProc" : "Socket";
    });

TEST_P(TransportSeqTest, SequencesAndDelivers)
{
    EXPECT_TRUE(rig_->send(120.0, 5));
    EXPECT_TRUE(rig_->send(130.0, 10));
    EXPECT_TRUE(rig_->send(140.0, 15));
    ASSERT_EQ(rig_->grants().size(), 3u);
    EXPECT_EQ(rig_->grants()[0].seq, 1u);
    EXPECT_EQ(rig_->grants()[2].seq, 3u);
    EXPECT_DOUBLE_EQ(rig_->grants()[1].watts, 130.0);
    EXPECT_EQ(rig_->duplicates(), 0u);
}

TEST_P(TransportSeqTest, SequenceNumberWrapsAround)
{
    // A restored replica whose counter sits at the edge of u64 must
    // wrap without tripping the socket transport's desync check: the
    // expectation is the locally computed seq, which wraps identically
    // on every replica.
    const uint64_t kMax = std::numeric_limits<uint64_t>::max();
    rig_->seedSeq(kMax - 2);
    EXPECT_TRUE(rig_->send(100.0, 1)); // seq kMax - 1
    EXPECT_TRUE(rig_->send(110.0, 2)); // seq kMax
    EXPECT_TRUE(rig_->send(120.0, 3)); // seq wraps to 0
    EXPECT_TRUE(rig_->send(130.0, 4)); // seq 1
    ASSERT_EQ(rig_->grants().size(), 4u);
    EXPECT_EQ(rig_->grants()[0].seq, kMax - 1);
    EXPECT_EQ(rig_->grants()[1].seq, kMax);
    EXPECT_EQ(rig_->grants()[2].seq, 0u);
    EXPECT_EQ(rig_->grants()[3].seq, 1u);
    EXPECT_EQ(rig_->duplicates(), 0u);
}

TEST_P(TransportSeqTest, DuplicateDeliveryIsDiscardedAndCounted)
{
    EXPECT_TRUE(rig_->send(100.0, 1));
    // Re-inject the tick-1 frame on the wire (socket rigs only; the
    // in-process transport has no wire and trivially never duplicates).
    bool injected = rig_->redeliverLast();
    EXPECT_EQ(injected, GetParam() == Kind::Socket);
    EXPECT_TRUE(rig_->send(110.0, 2));
    ASSERT_EQ(rig_->grants().size(), 2u);
    EXPECT_EQ(rig_->grants()[1].seq, 2u);
    EXPECT_DOUBLE_EQ(rig_->grants()[1].watts, 110.0);
    EXPECT_EQ(rig_->duplicates(), injected ? 1u : 0u);
}

TEST_P(TransportSeqTest, RepeatedDuplicatesAllLandInTheWindow)
{
    if (GetParam() != Kind::Socket)
        GTEST_SKIP() << "duplicate injection needs a wire";
    rig_->send(100.0, 1);
    rig_->redeliverLast();
    rig_->redeliverLast();
    rig_->redeliverLast();
    EXPECT_TRUE(rig_->send(110.0, 2));
    ASSERT_EQ(rig_->grants().size(), 2u);
    EXPECT_EQ(rig_->duplicates(), 3u);
}

TEST_P(TransportSeqTest, StaleAfterDropReplaysTheDroppedEpoch)
{
    // The stale-after-drop ordering contract (PR 2 semantics): a drop
    // still advances the replay epoch, so the stale window replays the
    // *dropped* value. Over a socket the drop is computed identically
    // on every replica and stays off the wire entirely — the consumer
    // must come to the same answer without ever seeing a frame.
    fault::FaultInjector inj(fault::FaultSchedule::parse(
                                 "drop em-sm 9 10 14 1; "
                                 "stale em-sm 9 15 20"),
                             1);
    rig_->attachFaults(&inj);

    EXPECT_TRUE(rig_->send(100.0, 5));   // fresh
    EXPECT_FALSE(rig_->send(200.0, 12)); // dropped, epoch advances
    EXPECT_TRUE(rig_->send(300.0, 16));  // stale: replays 200
    EXPECT_TRUE(rig_->send(400.0, 25));  // fresh again
    ASSERT_EQ(rig_->grants().size(), 3u);
    EXPECT_DOUBLE_EQ(rig_->grants()[0].watts, 100.0);
    EXPECT_DOUBLE_EQ(rig_->grants()[1].watts, 200.0);
    EXPECT_DOUBLE_EQ(rig_->grants()[2].watts, 400.0);
    EXPECT_EQ(rig_->grants()[1].seq, 3u); // the drop consumed seq 2
    EXPECT_EQ(rig_->stats().dropped_budgets, 1u);
    EXPECT_EQ(rig_->stats().stale_budgets, 1u);
}

TEST_P(TransportSeqTest, DropsDoNotDesequenceLaterTraffic)
{
    // Sends inside a drop window burn sequence numbers without putting
    // anything on the wire; the first send after the window must still
    // line up on every replica.
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("drop em-sm 9 10 20 1"), 1);
    rig_->attachFaults(&inj);
    EXPECT_TRUE(rig_->send(100.0, 5));
    EXPECT_FALSE(rig_->send(110.0, 12));
    EXPECT_FALSE(rig_->send(120.0, 15));
    EXPECT_TRUE(rig_->send(130.0, 25));
    ASSERT_EQ(rig_->grants().size(), 2u);
    EXPECT_EQ(rig_->grants()[0].seq, 1u);
    EXPECT_EQ(rig_->grants()[1].seq, 4u);
    EXPECT_EQ(rig_->stats().dropped_budgets, 2u);
    EXPECT_EQ(rig_->duplicates(), 0u);
}

TEST(SocketTransportTest, DeadOwnerDegradesSendsToDrops)
{
    // When the owning rank dies, every send on its links resolves as an
    // undelivered drop on the surviving replicas — same observable
    // behavior as an injected link fault, counted separately.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    stream::SocketTransport hub(5000u);
    hub.addPeer(1, fds[0]);
    std::vector<bus::BudgetGrant> grants;
    BudgetLink link(fault::Link::EmToSm, 9, "EM/0->SM/9",
                    [&grants](const bus::BudgetGrant &g) {
                        grants.push_back(g);
                    });
    link.setTransport(&hub, 1);
    fault::DegradeStats stats;
    link.attachDegradeStats(&stats);

    // Peer 1 hangs up before ever producing a frame.
    ::close(fds[1]);
    EXPECT_FALSE(link.send(100.0, 1));
    EXPECT_FALSE(link.send(110.0, 2));
    EXPECT_TRUE(grants.empty());
    EXPECT_EQ(link.sent(), 2u);
    EXPECT_EQ(hub.stats().peer_drops, 2u);
    EXPECT_EQ(stats.dropped_budgets, 2u);
    EXPECT_FALSE(hub.alive(1));
}

TEST(SocketTransportTest, WiringDigestSeparatesDifferentTopologies)
{
    // The join handshake compares link-name digests; two transports
    // that registered different wirings must disagree.
    stream::SocketTransport a(100u);
    stream::SocketTransport b(100u);
    std::vector<bus::BudgetGrant> sink;
    BudgetLink l1(fault::Link::EmToSm, 1, "EM/0->SM/1",
                  [&sink](const bus::BudgetGrant &g) {
                      sink.push_back(g);
                  });
    BudgetLink l2(fault::Link::EmToSm, 2, "EM/0->SM/2",
                  [&sink](const bus::BudgetGrant &g) {
                      sink.push_back(g);
                  });
    l1.setTransport(&a, 0);
    l2.setTransport(&b, 0);
    EXPECT_NE(a.wiringDigest(), b.wiringDigest());
    EXPECT_EQ(a.numLinks(), 1u);

    stream::SocketTransport c(100u);
    BudgetLink l3(fault::Link::EmToSm, 1, "EM/0->SM/1",
                  [&sink](const bus::BudgetGrant &g) {
                      sink.push_back(g);
                  });
    l3.setTransport(&c, 0);
    EXPECT_EQ(a.wiringDigest(), c.wiringDigest());
}

} // namespace
