/**
 * @file
 * BudgetLink stale-replay slot tests around the edges the coarse fault
 * suite does not pin: the very first send of a run (nothing to replay),
 * and the checkpoint boundary — a restored link must carry its sequence
 * number, delivery count, and previous-epoch slot so a stale fault
 * replays the same value it would have replayed in the uninterrupted
 * run.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bus/control_link.h"
#include "ckpt/snapshot.h"
#include "fault/injector.h"

namespace {

using namespace nps;
using bus::BudgetLink;

struct SinkRecord
{
    std::vector<bus::BudgetGrant> grants;
};

BudgetLink
makeLink(SinkRecord &rec)
{
    return BudgetLink(fault::Link::EmToSm, 9, "EM/0->SM/9",
                      [&rec](const bus::BudgetGrant &g) {
                          rec.grants.push_back(g);
                      });
}

/** Copy one link's checkpoint state into another. */
void
transfer(const BudgetLink &from, BudgetLink &to)
{
    ckpt::SnapshotWriter w;
    from.saveState(w.section("link"));
    ckpt::SnapshotReader snap;
    std::string err;
    ASSERT_TRUE(snap.loadBytes(w.serialize(), "mem", err)) << err;
    ckpt::SectionReader r = snap.section("link");
    to.loadState(r);
    r.expectEnd();
}

TEST(LinkReplayTest, FirstTickStaleDeliversFreshAndUncounted)
{
    // A stale window covering tick 0 — the first send of the whole run
    // has no previous epoch, so the fresh value passes through and the
    // event is NOT counted as a stale delivery.
    SinkRecord rec;
    BudgetLink link = makeLink(rec);
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("stale em-sm 9 0 100"), 1);
    fault::DegradeStats stats;
    link.setFaultInjector(&inj, &stats);

    EXPECT_TRUE(link.send(100.0, 0));
    ASSERT_EQ(rec.grants.size(), 1u);
    EXPECT_DOUBLE_EQ(rec.grants[0].watts, 100.0);
    EXPECT_EQ(stats.stale_budgets, 0u);
    EXPECT_EQ(rec.grants[0].seq, 1u);

    // The second send inside the same window replays the first.
    link.send(200.0, 10);
    ASSERT_EQ(rec.grants.size(), 2u);
    EXPECT_DOUBLE_EQ(rec.grants[1].watts, 100.0);
    EXPECT_EQ(stats.stale_budgets, 1u);
}

TEST(LinkReplayTest, RestoredLinkReplaysPreCheckpointEpoch)
{
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("stale em-sm 9 10 20"), 1);
    fault::DegradeStats stats;

    // Original run: one fresh send before the window, checkpoint, then
    // a stale send that replays the pre-checkpoint value.
    SinkRecord ref;
    BudgetLink original = makeLink(ref);
    original.setFaultInjector(&inj, &stats);
    original.send(100.0, 5);

    SinkRecord resumed_rec;
    BudgetLink resumed = makeLink(resumed_rec);
    resumed.setFaultInjector(&inj, &stats);
    transfer(original, resumed);

    original.send(200.0, 12);
    resumed.send(200.0, 12);
    ASSERT_EQ(ref.grants.size(), 2u);
    ASSERT_EQ(resumed_rec.grants.size(), 1u);
    // Same replayed value, same sequence number: the resumed link is
    // indistinguishable from the uninterrupted one.
    EXPECT_DOUBLE_EQ(resumed_rec.grants[0].watts, ref.grants[1].watts);
    EXPECT_EQ(resumed_rec.grants[0].seq, ref.grants[1].seq);
    EXPECT_EQ(resumed.sent(), original.sent());
    EXPECT_EQ(resumed.delivered(), original.delivered());
}

TEST(LinkReplayTest, RestoredNeverUsedLinkStillDeliversFreshUncounted)
{
    // Checkpoint taken before the link ever sent: has_prev_ must round
    // trip as false, so the first post-restore send under a stale fault
    // is the first-tick case again — fresh and uncounted.
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("stale em-sm 9 0 100"), 1);
    fault::DegradeStats stats;

    SinkRecord rec0;
    BudgetLink fresh = makeLink(rec0);

    SinkRecord rec1;
    BudgetLink resumed = makeLink(rec1);
    resumed.setFaultInjector(&inj, &stats);
    transfer(fresh, resumed);

    EXPECT_TRUE(resumed.send(100.0, 3));
    ASSERT_EQ(rec1.grants.size(), 1u);
    EXPECT_DOUBLE_EQ(rec1.grants[0].watts, 100.0);
    EXPECT_EQ(stats.stale_budgets, 0u);
    EXPECT_EQ(rec1.grants[0].seq, 1u);
}

TEST(LinkReplayTest, RestoreAfterColdResetKeepsTheResetSemantics)
{
    // reset() (sender restart) forgets the replay slot; a checkpoint
    // taken after the reset must preserve that forgetting.
    fault::FaultInjector inj(
        fault::FaultSchedule::parse("stale em-sm 9 10 20"), 1);
    fault::DegradeStats stats;

    SinkRecord rec0;
    BudgetLink original = makeLink(rec0);
    original.setFaultInjector(&inj, &stats);
    original.send(100.0, 5);
    original.reset();

    SinkRecord rec1;
    BudgetLink resumed = makeLink(rec1);
    resumed.setFaultInjector(&inj, &stats);
    transfer(original, resumed);

    EXPECT_TRUE(resumed.send(200.0, 12)); // stale window, no history
    ASSERT_EQ(rec1.grants.size(), 1u);
    EXPECT_DOUBLE_EQ(rec1.grants[0].watts, 200.0);
    EXPECT_EQ(stats.stale_budgets, 0u);
}

} // namespace
