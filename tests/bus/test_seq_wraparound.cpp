/**
 * @file
 * Sequence-number wraparound × the netem reorder window: link sequence
 * numbers are u64 and compared with serial-number arithmetic (seqNewer,
 * RFC 1982 style), so a link that wraps past 2^64 keeps delivering.
 * Regression for the pairing of the two features — the reorder window
 * (docs/NETWORK_FAULTS.md) must classify a wrapped-but-fresh grant as
 * newer, not as a stale replay to discard.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "bus/control_link.h"
#include "bus/transport.h"
#include "fault/injector.h"

using namespace nps;
using bus::BudgetGrant;
using bus::BudgetLink;
using bus::seqNewer;
using bus::WireMsg;

namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

TEST(SeqNewerTest, OrdersPlainSequences)
{
    EXPECT_TRUE(seqNewer(2, 1));
    EXPECT_FALSE(seqNewer(1, 2));
    EXPECT_FALSE(seqNewer(7, 7));
    EXPECT_TRUE(seqNewer(1000000, 999999));
}

TEST(SeqNewerTest, OrdersAcrossTheWraparound)
{
    // 0 follows kMax: the wrapped sequence is newer, not 2^64 older.
    EXPECT_TRUE(seqNewer(0, kMax));
    EXPECT_FALSE(seqNewer(kMax, 0));
    EXPECT_TRUE(seqNewer(1, kMax - 1));
    EXPECT_TRUE(seqNewer(5, kMax - 5));
    // Within the old epoch the order is unchanged.
    EXPECT_TRUE(seqNewer(kMax, kMax - 1));
    EXPECT_FALSE(seqNewer(kMax - 1, kMax));
}

/** A BudgetLink with its counters pushed to the edge of the u64 range. */
struct WrapRig
{
    explicit WrapRig(uint64_t seq)
        : link(fault::Link::EmToSm, 0, "EM/0->SM/0",
               [this](const BudgetGrant &g) { grants.push_back(g); })
    {
        link.attachDegradeStats(&stats);
        // Rewind the sequence counter through the checkpoint layer, as
        // tests/bus/test_transport_seq.cpp does: serialize, patch the
        // leading seq field, restore.
        ckpt::SectionWriter probe;
        link.saveState(probe);
        ckpt::SectionReader peek("link", probe.bytes());
        peek.getU64(); // seq, to be replaced
        ckpt::SectionWriter patched;
        patched.putU64(seq);
        patched.putDouble(peek.getDouble()); // prev_
        patched.putBool(peek.getBool());     // has_prev_
        patched.putU64(peek.getU64());       // delivered_
        patched.putU64(peek.getU64());       // last sunk seq
        patched.putBool(peek.getBool());     // reorder window armed
        peek.expectEnd();
        ckpt::SectionReader r("link", patched.bytes());
        link.loadState(r);
        r.expectEnd();
    }

    std::vector<BudgetGrant> grants;
    fault::DegradeStats stats;
    BudgetLink link;
};

TEST(SeqWraparoundTest, LinkKeepsDeliveringAcrossTheWrap)
{
    WrapRig rig(kMax - 2);
    EXPECT_TRUE(rig.link.send(100.0, 1)); // seq kMax - 1
    EXPECT_TRUE(rig.link.send(110.0, 2)); // seq kMax
    EXPECT_TRUE(rig.link.send(120.0, 3)); // seq 0 (wrapped)
    EXPECT_TRUE(rig.link.send(130.0, 4)); // seq 1
    ASSERT_EQ(rig.grants.size(), 4u);
    EXPECT_EQ(rig.grants[1].seq, kMax);
    EXPECT_EQ(rig.grants[2].seq, 0u);
    EXPECT_EQ(rig.grants[3].seq, 1u);
    EXPECT_EQ(rig.link.delivered(), 4u);
}

TEST(SeqWraparoundTest, WrappedLateGrantIsFreshNotStale)
{
    // The sink last saw seq kMax; a delayed grant with wrapped seq 0
    // arrives late. Serial-number order says it is newer — it must be
    // delivered, not counted as a reorder drop.
    WrapRig rig(kMax - 1);
    EXPECT_TRUE(rig.link.send(100.0, 10)); // seq kMax sinks
    ASSERT_EQ(rig.grants.size(), 1u);
    EXPECT_EQ(rig.grants[0].seq, kMax);

    WireMsg late;
    late.link = rig.link.wireId();
    late.tick = 11;
    late.seq = 0; // wrapped successor of kMax
    late.value = 140.0;
    late.aux = 140.0;
    late.flags = bus::kWireDelivered | bus::kWireDelayed;
    EXPECT_TRUE(rig.link.deliverLate(late, 13));
    ASSERT_EQ(rig.grants.size(), 2u);
    EXPECT_EQ(rig.grants[1].seq, 0u);
    EXPECT_DOUBLE_EQ(rig.grants[1].watts, 140.0);
    EXPECT_EQ(rig.grants[1].tick, 11u); // original send tick preserved
    EXPECT_EQ(rig.stats.netem_reorder_drops, 0u);
    EXPECT_EQ(rig.stats.netem_late_deliveries, 1u);
}

TEST(SeqWraparoundTest, TrulyOldGrantIsStillDiscardedAfterTheWrap)
{
    // After the window advances past the wrap (last sunk seq 1), a
    // pre-wrap straggler (seq kMax) is old and must be discarded.
    WrapRig rig(kMax);
    EXPECT_TRUE(rig.link.send(100.0, 10)); // seq 0 (wrapped)
    EXPECT_TRUE(rig.link.send(110.0, 11)); // seq 1
    ASSERT_EQ(rig.grants.size(), 2u);

    WireMsg late;
    late.link = rig.link.wireId();
    late.tick = 9;
    late.seq = kMax; // sent before the wrap, overtaken twice
    late.value = 90.0;
    late.aux = 90.0;
    late.flags = bus::kWireDelivered | bus::kWireDelayed;
    EXPECT_FALSE(rig.link.deliverLate(late, 13));
    EXPECT_EQ(rig.grants.size(), 2u);
    EXPECT_EQ(rig.stats.netem_reorder_drops, 1u);
    EXPECT_EQ(rig.stats.netem_late_deliveries, 0u);
}

TEST(SeqWraparoundTest, ReorderWindowSurvivesCheckpointAcrossTheWrap)
{
    // Save mid-wrap (window at seq 0), restore into a fresh link: the
    // restored window must still order a late kMax straggler as old.
    WrapRig rig(kMax);
    EXPECT_TRUE(rig.link.send(100.0, 10)); // seq 0, window at 0

    ckpt::SectionWriter w;
    rig.link.saveState(w);
    WrapRig fresh(0);
    ckpt::SectionReader r("link", w.bytes());
    fresh.link.loadState(r);
    r.expectEnd();

    WireMsg late;
    late.link = fresh.link.wireId();
    late.tick = 9;
    late.seq = kMax;
    late.value = 90.0;
    late.aux = 90.0;
    late.flags = bus::kWireDelivered | bus::kWireDelayed;
    EXPECT_FALSE(fresh.link.deliverLate(late, 12));
    EXPECT_EQ(fresh.stats.netem_reorder_drops, 1u);
}

} // namespace
