/**
 * @file
 * NetemTransport over the in-process transport: delay queueing and
 * barrier drains, partition drops, deadline expiry, the reorder window,
 * bit-transparency with an empty schedule, and queue save/restore
 * (docs/NETWORK_FAULTS.md).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bus/control_link.h"
#include "bus/transport.h"
#include "ckpt/snapshot.h"
#include "fault/netem/netem.h"
#include "fault/netem/transport.h"

using namespace nps;
using bus::BudgetGrant;
using bus::BudgetLink;
using fault::netem::NetemModel;
using fault::netem::NetemSchedule;
using fault::netem::NetemTransport;

namespace {

/** One budget link wired through netem over InProc. */
struct Rig
{
    explicit Rig(const std::string &script, uint64_t seed = 7,
                 size_t deadline = 0)
        : netem(NetemModel(NetemSchedule::parse(script), seed, deadline),
                &inproc),
          link(fault::Link::EmToSm, 3, "EM/0->SM/3",
               [this](const BudgetGrant &g) { grants.push_back(g); })
    {
        link.setFaultInjector(nullptr, &stats);
        link.setTransport(&netem, /*owner_rank=*/1);
    }

    bus::InProcTransport inproc;
    NetemTransport netem;
    std::vector<BudgetGrant> grants;
    fault::DegradeStats stats;
    BudgetLink link;
};

TEST(NetemTransportTest, EmptyScheduleIsBitTransparent)
{
    Rig rig("");
    EXPECT_TRUE(rig.link.send(100.0, 1));
    EXPECT_TRUE(rig.link.send(110.0, 2));
    ASSERT_EQ(rig.grants.size(), 2u);
    EXPECT_DOUBLE_EQ(rig.grants[0].watts, 100.0);
    EXPECT_EQ(rig.netem.queued(), 0u);
    EXPECT_EQ(rig.netem.stats().delayed, 0u);
    EXPECT_EQ(rig.stats.netem_delayed, 0u);
    EXPECT_TRUE(rig.stats.none());
}

TEST(NetemTransportTest, DelayedSendArrivesAtTheBarrier)
{
    Rig rig("delay em-sm 0 100 2"); // fixed 2-tick latency
    EXPECT_FALSE(rig.link.send(100.0, 10)); // parked, not sunk
    EXPECT_EQ(rig.grants.size(), 0u);
    EXPECT_EQ(rig.netem.queued(), 1u);
    EXPECT_EQ(rig.stats.netem_delayed, 1u);
    EXPECT_EQ(rig.stats.dropped_budgets, 0u);

    rig.netem.drainDue(11); // not due yet
    EXPECT_EQ(rig.grants.size(), 0u);
    rig.netem.drainDue(12);
    ASSERT_EQ(rig.grants.size(), 1u);
    // The grant keeps its original send tick: leases age by latency.
    EXPECT_EQ(rig.grants[0].tick, 10u);
    EXPECT_DOUBLE_EQ(rig.grants[0].watts, 100.0);
    EXPECT_EQ(rig.netem.queued(), 0u);
    EXPECT_EQ(rig.stats.netem_late_deliveries, 1u);
}

TEST(NetemTransportTest, ReorderWindowDiscardsOvertakenGrants)
{
    Rig rig("delay em-sm 0 20 5"); // storm ends at tick 20
    EXPECT_FALSE(rig.link.send(100.0, 18)); // seq 1, due 23
    EXPECT_FALSE(rig.link.send(110.0, 19)); // seq 2, due 24
    // Past the storm: seq 3 sinks immediately, overtaking both.
    EXPECT_TRUE(rig.link.send(120.0, 21));
    ASSERT_EQ(rig.grants.size(), 1u);
    EXPECT_EQ(rig.grants[0].seq, 3u);

    rig.netem.drainDue(24);
    // Both late copies are older than the sunk seq 3: discarded.
    EXPECT_EQ(rig.grants.size(), 1u);
    EXPECT_EQ(rig.stats.netem_reorder_drops, 2u);
    EXPECT_EQ(rig.netem.stats().reorder_drops, 2u);
    EXPECT_EQ(rig.netem.stats().late_deliveries, 0u);
}

TEST(NetemTransportTest, PartitionDropsFeedTheDegradeLadder)
{
    Rig rig("partition em-sm 10 20");
    EXPECT_TRUE(rig.link.send(100.0, 9)); // before the partition
    EXPECT_FALSE(rig.link.send(110.0, 10));
    EXPECT_FALSE(rig.link.send(120.0, 19));
    EXPECT_TRUE(rig.link.send(130.0, 20)); // heal (half-open end)
    EXPECT_EQ(rig.grants.size(), 2u);
    EXPECT_EQ(rig.stats.netem_partition_drops, 2u);
    // A partitioned send is a wire loss: the drop ladder counts it too.
    EXPECT_EQ(rig.stats.dropped_budgets, 2u);
    EXPECT_EQ(rig.netem.stats().partition_drops, 2u);
    EXPECT_EQ(rig.netem.queued(), 0u);
}

TEST(NetemTransportTest, DeadlineExpiresSlowSends)
{
    // Delay 4 with deadline 3: every send inside the window expires.
    Rig rig("delay em-sm 0 100 4", /*seed=*/7, /*deadline=*/3);
    EXPECT_FALSE(rig.link.send(100.0, 10));
    EXPECT_EQ(rig.netem.queued(), 0u);
    EXPECT_EQ(rig.stats.netem_expired, 1u);
    EXPECT_EQ(rig.stats.dropped_budgets, 1u);
    EXPECT_EQ(rig.netem.stats().expired, 1u);

    // Delay 3 == deadline 3: still within budget, queued not expired.
    Rig ok("delay em-sm 0 100 3", 7, 3);
    EXPECT_FALSE(ok.link.send(100.0, 10));
    EXPECT_EQ(ok.netem.queued(), 1u);
    EXPECT_EQ(ok.stats.netem_expired, 0u);
}

TEST(NetemTransportTest, DrainOrderIsDeterministic)
{
    // Two links, interleaved delayed sends due at the same barrier:
    // delivery happens in (due, wire id, seq) order regardless of the
    // send interleave.
    std::vector<std::pair<uint32_t, uint64_t>> order;
    bus::InProcTransport inproc;
    NetemTransport netem(
        NetemModel(NetemSchedule::parse("delay * 0 100 2"), 7, 0),
        &inproc);
    fault::DegradeStats stats;
    BudgetLink a(fault::Link::EmToSm, 1, "EM/0->SM/1",
                 [&](const BudgetGrant &g) {
                     order.push_back({1, g.seq});
                 });
    BudgetLink b(fault::Link::EmToSm, 2, "EM/0->SM/2",
                 [&](const BudgetGrant &g) {
                     order.push_back({2, g.seq});
                 });
    a.setFaultInjector(nullptr, &stats);
    b.setFaultInjector(nullptr, &stats);
    a.setTransport(&netem, 1);
    b.setTransport(&netem, 1);

    b.send(100.0, 10); // link b seq 1
    a.send(110.0, 10); // link a seq 1
    b.send(120.0, 11); // link b seq 2 (due one tick later)
    a.send(130.0, 11);
    netem.drainDue(13); // everything due
    ASSERT_EQ(order.size(), 4u);
    // due 12 before due 13; within a due, link a (lower wire id) first.
    EXPECT_EQ(order[0], (std::pair<uint32_t, uint64_t>{1, 1}));
    EXPECT_EQ(order[1], (std::pair<uint32_t, uint64_t>{2, 1}));
    EXPECT_EQ(order[2], (std::pair<uint32_t, uint64_t>{1, 2}));
    EXPECT_EQ(order[3], (std::pair<uint32_t, uint64_t>{2, 2}));
}

TEST(NetemTransportTest, QueueSurvivesSaveRestore)
{
    Rig rig("delay em-sm 0 100 3");
    rig.link.send(100.0, 10); // due 13
    rig.link.send(110.0, 11); // due 14
    ASSERT_EQ(rig.netem.queued(), 2u);

    ckpt::SectionWriter w;
    rig.netem.saveState(w);

    // A second rig (the restarted process) with identical wiring.
    Rig fresh("delay em-sm 0 100 3");
    ckpt::SectionReader r("netem", w.bytes());
    fresh.netem.loadState(r);
    r.expectEnd();
    EXPECT_EQ(fresh.netem.queued(), 2u);
    EXPECT_EQ(fresh.netem.stats().delayed, 2u);

    fresh.netem.drainDue(14);
    ASSERT_EQ(fresh.grants.size(), 2u);
    EXPECT_EQ(fresh.grants[0].tick, 10u);
    EXPECT_DOUBLE_EQ(fresh.grants[1].watts, 110.0);
}

TEST(NetemTransportTest, NonBudgetLinksPassThrough)
{
    // A reference link (not a BudgetLink) under a wildcard delay: netem
    // must leave it untouched — only budget links ride the virtual wire.
    bus::InProcTransport inproc;
    NetemTransport netem(
        NetemModel(NetemSchedule::parse("delay * 0 100 5"), 7, 0),
        &inproc);
    double seen = 0.0;
    bus::ReferenceLink ref(
        "SM/3->EC/0",
        [&](const bus::ReferenceUpdate &u) { seen = u.r_ref; });
    ref.setTransport(&netem, 1);
    ref.send(0.5, 10);
    EXPECT_DOUBLE_EQ(seen, 0.5);
    EXPECT_EQ(netem.queued(), 0u);
}

} // namespace
