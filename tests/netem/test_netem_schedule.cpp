/**
 * @file
 * NetemSchedule parsing and the NetemModel query surface
 * (docs/NETWORK_FAULTS.md): grammar round-trips, target matching, and
 * the determinism contract — every verdict a pure function of
 * (schedule, seed, link, seq), indifferent to who asks or when.
 */

#include <gtest/gtest.h>

#include <set>

#include "fault/netem/netem.h"

using namespace nps;
using fault::Link;
using fault::netem::NetemEvent;
using fault::netem::NetemKind;
using fault::netem::NetemModel;
using fault::netem::NetemSchedule;

namespace {

TEST(NetemScheduleTest, ParsesEveryVerbAndTarget)
{
    NetemSchedule s = NetemSchedule::parse(
        "delay gm-em 10 20 2 3\n"
        "dup em-sm 5 15 0.5; corrupt rank:2 0 8\n"
        "# a comment line\n"
        "partition * 30 40   # trailing comment\n");
    ASSERT_EQ(s.events().size(), 4u);

    const NetemEvent &delay = s.events()[0];
    EXPECT_EQ(delay.kind, NetemKind::Delay);
    EXPECT_FALSE(delay.all);
    EXPECT_FALSE(delay.by_rank);
    EXPECT_EQ(delay.link, Link::GmToEm);
    EXPECT_EQ(delay.start, 10u);
    EXPECT_EQ(delay.end, 20u);
    EXPECT_DOUBLE_EQ(delay.a, 2.0);
    EXPECT_DOUBLE_EQ(delay.b, 3.0);

    const NetemEvent &dup = s.events()[1];
    EXPECT_EQ(dup.kind, NetemKind::Duplicate);
    EXPECT_DOUBLE_EQ(dup.a, 0.5);

    const NetemEvent &corrupt = s.events()[2];
    EXPECT_EQ(corrupt.kind, NetemKind::Corrupt);
    EXPECT_TRUE(corrupt.by_rank);
    EXPECT_EQ(corrupt.rank, 2);
    EXPECT_DOUBLE_EQ(corrupt.a, 1.0); // default probability

    const NetemEvent &part = s.events()[3];
    EXPECT_EQ(part.kind, NetemKind::Partition);
    EXPECT_TRUE(part.all);

    EXPECT_EQ(s.lastEnd(), 40u);
}

TEST(NetemScheduleTest, ToTextRoundTrips)
{
    const std::string script =
        "delay gm-sm 1 9 4 0; dup * 2 6 0.25; partition rank:1 3 7";
    NetemSchedule a = NetemSchedule::parse(script);
    NetemSchedule b = NetemSchedule::parse(a.toText("\n"));
    ASSERT_EQ(a.events().size(), b.events().size());
    EXPECT_EQ(a.toText("; "), b.toText("; "));
}

TEST(NetemScheduleTest, MalformedScriptsDie)
{
    EXPECT_DEATH(NetemSchedule::parse("warp gm-em 0 10"), "unknown verb");
    EXPECT_DEATH(NetemSchedule::parse("delay nowhere 0 10 1"),
                 "unknown target");
    EXPECT_DEATH(NetemSchedule::parse("delay gm-em 10 10 1"),
                 "empty interval");
    EXPECT_DEATH(NetemSchedule::parse("dup gm-em 0 10 1.5"),
                 "probability");
    EXPECT_DEATH(NetemSchedule::parse("partition gm-em 0 10 0.5"),
                 "arity");
    EXPECT_DEATH(NetemSchedule::parse("delay gm-em 0 10"), "arity");
}

TEST(NetemModelTest, TargetsMatchClassRankAndWildcard)
{
    NetemModel m(NetemSchedule::parse("partition gm-em 10 20\n"
                                      "partition rank:2 30 40\n"
                                      "partition * 50 60"),
                 /*seed=*/7, /*deadline=*/0);

    // Link-class target: only gm-em, only inside the window.
    EXPECT_TRUE(m.partitioned(Link::GmToEm, 1, 15));
    EXPECT_FALSE(m.partitioned(Link::EmToSm, 1, 15));
    EXPECT_FALSE(m.partitioned(Link::GmToEm, 1, 9));
    EXPECT_FALSE(m.partitioned(Link::GmToEm, 1, 20)); // half-open end

    // Rank target: any class owned by rank 2.
    EXPECT_TRUE(m.partitioned(Link::EmToSm, 2, 35));
    EXPECT_FALSE(m.partitioned(Link::EmToSm, 1, 35));

    // Wildcard: everything.
    EXPECT_TRUE(m.partitioned(Link::GmToGm, 3, 55));

    // The supervisor-side health view.
    EXPECT_TRUE(m.rankPartitioned(2, 35));
    EXPECT_FALSE(m.rankPartitioned(1, 35));
    EXPECT_TRUE(m.rankPartitioned(1, 55)); // wildcard covers everyone
    // A link-class event does not name a rank.
    EXPECT_FALSE(m.rankPartitioned(1, 15));
}

TEST(NetemModelTest, DelayDrawsStayInRangeAndAreSeqKeyed)
{
    NetemModel m(NetemSchedule::parse("delay gm-em 0 100 2 3"), 42, 0);
    std::set<size_t> seen;
    for (uint64_t seq = 1; seq <= 200; ++seq) {
        size_t d = m.delayTicks(Link::GmToEm, 1, 5, seq, 10);
        EXPECT_GE(d, 2u);
        EXPECT_LE(d, 5u);
        seen.insert(d);
        // Same (link, seq) at another tick inside the window: same draw.
        EXPECT_EQ(d, m.delayTicks(Link::GmToEm, 1, 5, seq, 60));
    }
    // The jitter span is actually exercised.
    EXPECT_EQ(seen.size(), 4u);
    // Outside the window: no delay.
    EXPECT_EQ(m.delayTicks(Link::GmToEm, 1, 5, 1, 100), 0u);
}

TEST(NetemModelTest, VerdictsAreReplicaIndependent)
{
    // Two models built from the same (schedule, seed) — as two replicas
    // would — agree on every per-send verdict.
    const std::string script =
        "delay * 0 50 1 4; dup em-sm 0 50 0.3; corrupt gm-em 0 50 0.4";
    NetemModel a(NetemSchedule::parse(script), 99, 0);
    NetemModel b(NetemSchedule::parse(script), 99, 0);
    for (uint64_t seq = 1; seq <= 100; ++seq) {
        EXPECT_EQ(a.delayTicks(Link::EmToSm, 2, 3, seq, 10),
                  b.delayTicks(Link::EmToSm, 2, 3, seq, 10));
        EXPECT_EQ(a.duplicated(Link::EmToSm, 2, 3, seq, 10),
                  b.duplicated(Link::EmToSm, 2, 3, seq, 10));
        size_t off_a = 0, off_b = 0;
        EXPECT_EQ(a.corrupted(Link::GmToEm, 1, 1, seq, 10, &off_a),
                  b.corrupted(Link::GmToEm, 1, 1, seq, 10, &off_b));
        EXPECT_EQ(off_a, off_b);
    }
    // A different seed decorrelates the coin flips.
    NetemModel c(NetemSchedule::parse(script), 100, 0);
    size_t differs = 0;
    for (uint64_t seq = 1; seq <= 100; ++seq)
        differs += a.delayTicks(Link::EmToSm, 2, 3, seq, 10) !=
                   c.delayTicks(Link::EmToSm, 2, 3, seq, 10);
    EXPECT_GT(differs, 0u);
}

TEST(NetemModelTest, ActiveCountFollowsTheWindows)
{
    NetemModel m(NetemSchedule::parse("delay gm-em 10 20 1\n"
                                      "partition em-sm 15 25"),
                 1, 0);
    EXPECT_EQ(m.activeCount(5), 0u);
    EXPECT_EQ(m.activeCount(12), 1u);
    EXPECT_EQ(m.activeCount(17), 2u);
    EXPECT_EQ(m.activeCount(22), 1u);
    EXPECT_EQ(m.activeCount(25), 0u);
}

TEST(NetemModelTest, EmptyModelIsInert)
{
    NetemModel m;
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.partitioned(Link::GmToEm, 1, 0));
    EXPECT_EQ(m.delayTicks(Link::GmToEm, 1, 0, 1, 0), 0u);
    EXPECT_FALSE(m.duplicated(Link::GmToEm, 1, 0, 1, 0));
    EXPECT_FALSE(m.corrupted(Link::GmToEm, 1, 0, 1, 0, nullptr));
}

} // namespace
