/**
 * @file
 * Netem chaos campaigns over the full coordinator (the network analogue
 * of tests/fault/test_chaos.cpp): invariants that must hold for whole
 * runs under scripted wire faults —
 *
 *   (a) a partition outliving the budget lease drives the documented
 *       ladder (lease expiry → fallback cap) and, once healed, the run
 *       recovers: past heal + one lease the degraded run violates its
 *       caps no more than a fault-free run;
 *   (b) under the same netem campaign, the coordinated stack leaks no
 *       more violations than the uncoordinated one (the paper's
 *       Figure 6 claim, extended to network degradation);
 *   (c) a netem run is bit-identical across engine thread counts —
 *       every verdict is keyed by (seed, link, seq) and every late
 *       delivery lands at the tick barrier, never mid-tick;
 *   (d) an attached-but-empty netem layer is bit-transparent.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bus/transport.h"
#include "common/fixtures.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "fault/netem/netem.h"
#include "fault/netem/transport.h"
#include "model/machine.h"

namespace {

using namespace nps;

constexpr size_t kTicks = 900;
// gm-em dark for 200 ticks (beyond the 150-tick lease), plus a latency
// storm with loss pressure on the em-sm fan-out. All clear by tick 400.
const char *kCampaign =
    "partition gm-em 150 350\n"
    "delay em-sm 100 400 1 3\n";
constexpr size_t kHealed = 350;
constexpr size_t kLease = 150;
constexpr size_t kRecovered = kHealed + kLease + 50;

struct NetemRun
{
    std::vector<double> power;
    std::vector<double> perf;
    sim::MetricsSummary summary;
    fault::DegradeStats degrade;
};

NetemRun
runScenario(core::Scenario scenario, const std::string &script,
            unsigned threads, size_t deadline = 0)
{
    core::CoordinationConfig cfg = core::scenarioConfig(scenario);
    cfg.threads = threads;
    // Netem decorates the distributed control plane; the distributed
    // flag arms the budget leases (resolved() leaves them off in plain
    // batch runs), exactly as every [netem] plan run does.
    cfg.distributed = true;
    sim::Topology topo{6, 1, 4};
    core::Coordinator coord(cfg, topo, model::bladeA(),
                            nps_test::flatTraces(6, 0.8, kTicks + 8),
                            /*keep_series=*/true);
    bus::InProcTransport inproc;
    fault::netem::NetemTransport netem(
        fault::netem::NetemModel(fault::netem::NetemSchedule::parse(script),
                                 /*seed=*/7, deadline),
        &inproc);
    coord.attachTransport(&netem, bus::localOwner());
    fault::netem::NetemGate gate(netem);
    coord.engine().setTickSource(&gate);
    coord.run(kTicks);
    coord.engine().setTickSource(nullptr);
    return {coord.metrics().powerSeries(), coord.metrics().perfSeries(),
            coord.summary(), coord.degradeStats()};
}

/** Fraction of ticks in [from, to) whose group power exceeds @p cap. */
double
violationRate(const std::vector<double> &power, size_t from, size_t to,
              double cap)
{
    size_t hits = 0, n = 0;
    for (size_t t = from; t < to && t < power.size(); ++t) {
        ++n;
        if (power[t] > cap + 1e-9)
            ++hits;
    }
    return n == 0 ? 0.0 : static_cast<double>(hits) / n;
}

double
groupCap()
{
    sim::Topology topo{6, 1, 4};
    core::Coordinator coord(core::coordinatedConfig(), topo,
                            model::bladeA(),
                            nps_test::flatTraces(6, 0.8, 8));
    return coord.cluster().capGrp();
}

class NetemCampaignTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(NetemCampaignTest, PartitionDrivesLeaseLadderThenRecovers)
{
    unsigned threads = GetParam();
    NetemRun faulted =
        runScenario(core::Scenario::Coordinated, kCampaign, threads);
    NetemRun clean = runScenario(core::Scenario::Coordinated, "", threads);

    // The partition outlives the lease: the ladder must fire end to end.
    EXPECT_GT(faulted.degrade.netem_partition_drops, 0u)
        << "threads=" << threads;
    EXPECT_GT(faulted.degrade.lease_expiries, 0u) << "threads=" << threads;
    EXPECT_GT(faulted.degrade.lease_fallback_steps, 0u)
        << "threads=" << threads;
    // And the latency storm exercised the virtual wire.
    EXPECT_GT(faulted.degrade.netem_delayed, 0u) << "threads=" << threads;
    EXPECT_GT(faulted.degrade.netem_late_deliveries, 0u)
        << "threads=" << threads;

    // Property (a): past heal + one lease, enforcement is back.
    double cap = groupCap();
    double after_faulted =
        violationRate(faulted.power, kRecovered, kTicks, cap);
    double after_clean =
        violationRate(clean.power, kRecovered, kTicks, cap);
    EXPECT_LE(after_faulted, after_clean + 1e-9) << "threads=" << threads;
}

TEST_P(NetemCampaignTest, CoordinatedLeaksFewerViolationsThanUncoordinated)
{
    unsigned threads = GetParam();
    NetemRun coord =
        runScenario(core::Scenario::Coordinated, kCampaign, threads);
    NetemRun uncoord =
        runScenario(core::Scenario::Uncoordinated, kCampaign, threads);

    // Property (b): same wire chaos, same demand — coordination with
    // leases must not leak more violations than the solo stack.
    EXPECT_LE(coord.summary.sm_violation,
              uncoord.summary.sm_violation + 1e-9)
        << "threads=" << threads;
    EXPECT_LE(coord.summary.gm_violation,
              uncoord.summary.gm_violation + 1e-9)
        << "threads=" << threads;
}

TEST_P(NetemCampaignTest, DeadlineExpiryFeedsTheDropLadder)
{
    unsigned threads = GetParam();
    // Jittered delay 1..5 against a 2-tick grant deadline: draws above
    // the deadline degrade to drops at the sender.
    NetemRun run = runScenario(core::Scenario::Coordinated,
                               "delay em-sm 100 500 1 4", threads,
                               /*deadline=*/2);
    EXPECT_GT(run.degrade.netem_expired, 0u) << "threads=" << threads;
    EXPECT_GT(run.degrade.netem_delayed, 0u) << "threads=" << threads;
    EXPECT_EQ(run.degrade.netem_expired + run.degrade.netem_partition_drops,
              run.degrade.dropped_budgets)
        << "threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(Threads, NetemCampaignTest,
                         ::testing::Values(1u, 4u));

TEST(NetemCampaignDeterminism, StormRunIsBitIdenticalAcrossThreads)
{
    // Property (c): serial and sharded engines agree per tick while the
    // wire misbehaves — netem randomness is keyed by (seed, link, seq),
    // and delayed grants land only at the barrier.
    NetemRun serial = runScenario(core::Scenario::Coordinated, kCampaign, 1);
    EXPECT_FALSE(serial.degrade.none());
    for (unsigned threads : {2u, 4u}) {
        NetemRun parallel =
            runScenario(core::Scenario::Coordinated, kCampaign, threads);
        ASSERT_EQ(serial.power.size(), parallel.power.size());
        for (size_t t = 0; t < serial.power.size(); ++t) {
            ASSERT_EQ(serial.power[t], parallel.power[t])
                << "power diverged at tick " << t << " threads=" << threads;
            ASSERT_EQ(serial.perf[t], parallel.perf[t])
                << "perf diverged at tick " << t << " threads=" << threads;
        }
        EXPECT_EQ(serial.summary.energy, parallel.summary.energy);
        EXPECT_EQ(serial.degrade.netem_delayed,
                  parallel.degrade.netem_delayed);
        EXPECT_EQ(serial.degrade.netem_late_deliveries,
                  parallel.degrade.netem_late_deliveries);
        EXPECT_EQ(serial.degrade.netem_partition_drops,
                  parallel.degrade.netem_partition_drops);
        EXPECT_EQ(serial.degrade.netem_reorder_drops,
                  parallel.degrade.netem_reorder_drops);
        EXPECT_EQ(serial.degrade.lease_expiries,
                  parallel.degrade.lease_expiries);
        EXPECT_EQ(serial.degrade.dropped_budgets,
                  parallel.degrade.dropped_budgets);
    }
}

TEST(NetemCampaignDeterminism, EmptyNetemLayerIsBitTransparent)
{
    // Property (d): wiring the decorator with no schedule must not move
    // a single bit relative to the plain in-process run.
    NetemRun netem = runScenario(core::Scenario::Coordinated, "", 1);

    core::CoordinationConfig cfg =
        core::scenarioConfig(core::Scenario::Coordinated);
    cfg.threads = 1;
    cfg.distributed = true;
    sim::Topology topo{6, 1, 4};
    core::Coordinator plain(cfg, topo, model::bladeA(),
                            nps_test::flatTraces(6, 0.8, kTicks + 8),
                            /*keep_series=*/true);
    plain.run(kTicks);

    ASSERT_EQ(netem.power.size(), plain.metrics().powerSeries().size());
    for (size_t t = 0; t < netem.power.size(); ++t)
        ASSERT_EQ(netem.power[t], plain.metrics().powerSeries()[t])
            << "tick " << t;
    EXPECT_EQ(netem.summary.energy, plain.summary().energy);
    EXPECT_TRUE(netem.degrade.none());
}

} // namespace
