/**
 * @file
 * Tests for the ASCII table renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.h"

namespace {

using nps::util::Table;

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
    EXPECT_EQ(Table::num(-1.25, 1), "-1.2");
}

TEST(Table, PctFormatting)
{
    EXPECT_EQ(Table::pct(0.5), "50.0");
    EXPECT_EQ(Table::pct(0.123, 2), "12.30");
}

TEST(Table, RendersCaptionHeaderAndRows)
{
    Table t("My Caption");
    t.header({"col1", "longer col"});
    t.row({"a", "b"});
    t.row({"ccc", "d"});
    std::ostringstream out;
    t.print(out);
    std::string s = out.str();
    EXPECT_NE(s.find("My Caption"), std::string::npos);
    EXPECT_NE(s.find("col1"), std::string::npos);
    EXPECT_NE(s.find("ccc"), std::string::npos);
}

TEST(Table, ColumnsAligned)
{
    Table t("");
    t.header({"a", "b"});
    t.row({"xxxx", "y"});
    std::ostringstream out;
    t.print(out);
    // Every rendered line of the table body has the same width.
    std::istringstream in(out.str());
    std::string line;
    size_t width = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(Table, SeparatorRendersRule)
{
    Table t("");
    t.header({"h"});
    t.row({"1"});
    t.separator();
    t.row({"2"});
    std::ostringstream out;
    t.print(out);
    // Expect at least 4 horizontal rules (top, under header, separator,
    // bottom).
    std::istringstream in(out.str());
    std::string line;
    int rules = 0;
    while (std::getline(in, line))
        rules += !line.empty() && line[0] == '+' ? 1 : 0;
    EXPECT_GE(rules, 4);
}

TEST(Table, RaggedRowsHandled)
{
    Table t("");
    t.header({"a", "b", "c"});
    t.row({"only-one"});
    std::ostringstream out;
    t.print(out);
    EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

} // namespace
