/**
 * @file
 * Unit tests for util::ChunkedVector: chunked growth, stable element
 * addresses across appends, clear()-keeps-storage reuse, and iteration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "util/chunked_vector.h"

namespace {

using nps::util::ChunkedVector;

TEST(ChunkedVector, GrowsAcrossChunkBoundaries)
{
    ChunkedVector<int, 8> v;
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 100; ++i)
        v.push_back(i);
    EXPECT_FALSE(v.empty());
    ASSERT_EQ(v.size(), 100u);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(v[i], static_cast<int>(i));
    EXPECT_EQ(v.back(), 99);
}

TEST(ChunkedVector, AddressesStableAcrossAppends)
{
    ChunkedVector<int, 4> v;
    std::vector<const int *> addrs;
    for (int i = 0; i < 64; ++i) {
        v.push_back(i);
        addrs.push_back(&v[static_cast<size_t>(i)]);
    }
    // Unlike std::vector, no append may have relocated earlier elements.
    for (size_t i = 0; i < addrs.size(); ++i) {
        EXPECT_EQ(addrs[i], &v[i]);
        EXPECT_EQ(*addrs[i], static_cast<int>(i));
    }
}

TEST(ChunkedVector, ClearKeepsStorageForReuse)
{
    ChunkedVector<int, 4> v;
    for (int i = 0; i < 16; ++i)
        v.push_back(i);
    const int *first = &v[0];
    v.clear();
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 16; ++i)
        v.push_back(100 + i);
    // Refill lands in the retained chunks: same address, new values.
    EXPECT_EQ(&v[0], first);
    EXPECT_EQ(v[0], 100);
    EXPECT_EQ(v[15], 115);
}

TEST(ChunkedVector, ReservePreallocatesWithoutChangingSize)
{
    ChunkedVector<int, 8> v;
    v.reserve(100);
    EXPECT_EQ(v.size(), 0u);
    for (int i = 0; i < 100; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v[99], 99);
}

TEST(ChunkedVector, EmplaceBackReturnsStableReference)
{
    ChunkedVector<std::string, 2> v;
    std::string &a = v.emplace_back(3, 'x');
    EXPECT_EQ(a, "xxx");
    for (int i = 0; i < 20; ++i)
        v.emplace_back("s" + std::to_string(i));
    EXPECT_EQ(a, "xxx"); // still valid after 10 chunk allocations
    EXPECT_EQ(v[0], "xxx");
    EXPECT_EQ(v.back(), "s19");
}

TEST(ChunkedVector, IterationCoversAllElementsInOrder)
{
    ChunkedVector<int, 8> v;
    for (int i = 0; i < 37; ++i)
        v.push_back(i);

    int expect = 0;
    for (int x : v)
        EXPECT_EQ(x, expect++);
    EXPECT_EQ(expect, 37);

    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 37 * 36 / 2);
    auto it = std::find(v.begin(), v.end(), 20);
    ASSERT_NE(it, v.end());
    EXPECT_EQ(*it, 20);

    ChunkedVector<int, 8> empty;
    EXPECT_EQ(empty.begin(), empty.end());
}

} // namespace
