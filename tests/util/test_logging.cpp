/**
 * @file
 * Tests for logging: formatting, level gating, and the fatal/panic
 * termination contracts.
 */

#include <gtest/gtest.h>

#include <cstdarg>

#include "util/logging.h"

namespace {

using namespace nps::util;

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

TEST(Logging, VFormatBasic)
{
    EXPECT_EQ(format("x=%d", 42), "x=42");
    EXPECT_EQ(format("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(Logging, VFormatLongString)
{
    std::string big(10000, 'z');
    EXPECT_EQ(format("%s", big.c_str()), big);
}

TEST(Logging, LevelRoundTrip)
{
    LogLevel prev = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(prev);
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_DEATH(fatal("bad config %d", 7), "bad config 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant %s broken", "x"), "invariant x broken");
}

} // namespace
