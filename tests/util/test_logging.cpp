/**
 * @file
 * Tests for logging: formatting, level gating, and the fatal/panic
 * termination contracts.
 */

#include <gtest/gtest.h>

#include <cstdarg>

#include "util/logging.h"

namespace {

using namespace nps::util;

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

TEST(Logging, VFormatBasic)
{
    EXPECT_EQ(format("x=%d", 42), "x=42");
    EXPECT_EQ(format("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(Logging, VFormatLongString)
{
    std::string big(10000, 'z');
    EXPECT_EQ(format("%s", big.c_str()), big);
}

TEST(Logging, LevelRoundTrip)
{
    LogLevel prev = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(prev);
}

TEST(Logging, LevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
}

TEST(Logging, LevelFromName)
{
    for (LogLevel level : {LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Error}) {
        LogLevel parsed = LogLevel::Warn;
        EXPECT_TRUE(logLevelFromName(logLevelName(level), parsed));
        EXPECT_EQ(parsed, level);
    }
}

TEST(Logging, LevelFromNameRejectsUnknown)
{
    LogLevel parsed = LogLevel::Info;
    EXPECT_FALSE(logLevelFromName("verbose", parsed));
    EXPECT_FALSE(logLevelFromName("", parsed));
    EXPECT_FALSE(logLevelFromName("WARN", parsed));
    EXPECT_EQ(parsed, LogLevel::Info) << "failed parse must not write";
}

TEST(Logging, LevelFiltering)
{
    LogLevel prev = logLevel();

    setLogLevel(LogLevel::Error);
    testing::internal::CaptureStderr();
    warn("should be filtered %d", 1);
    inform("and this too");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Debug);
    testing::internal::CaptureStderr();
    warn("now visible %d", 2);
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("warn"), std::string::npos);
    EXPECT_NE(out.find("now visible 2"), std::string::npos);

    setLogLevel(prev);
}

TEST(Logging, LogfHonorsLevelAndFormats)
{
    LogLevel prev = logLevel();
    setLogLevel(LogLevel::Info);

    testing::internal::CaptureStderr();
    logf(LogLevel::Debug, "hidden %s", "detail");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    testing::internal::CaptureStderr();
    logf(LogLevel::Info, "tick %d at %.1f W", 7, 42.5);
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("info"), std::string::npos);
    EXPECT_NE(out.find("tick 7 at 42.5 W"), std::string::npos);

    setLogLevel(prev);
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_DEATH(fatal("bad config %d", 7), "bad config 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant %s broken", "x"), "invariant x broken");
}

} // namespace
