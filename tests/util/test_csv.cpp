/**
 * @file
 * Tests for the CSV reader/writer: RFC-4180 quoting, line endings, and
 * write/parse round-trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"

namespace {

using nps::util::CsvWriter;
using nps::util::csvEscape;
using nps::util::parseCsv;

TEST(ParseCsv, SimpleRows)
{
    auto doc = parseCsv("a,b,c\n1,2,3\n");
    ASSERT_EQ(doc.numRows(), 2u);
    EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ParseCsv, MissingTrailingNewline)
{
    auto doc = parseCsv("a,b\n1,2");
    ASSERT_EQ(doc.numRows(), 2u);
    EXPECT_EQ(doc.rows[1][1], "2");
}

TEST(ParseCsv, CrLfEndings)
{
    auto doc = parseCsv("a,b\r\n1,2\r\n");
    ASSERT_EQ(doc.numRows(), 2u);
    EXPECT_EQ(doc.rows[0][0], "a");
    EXPECT_EQ(doc.rows[1][1], "2");
}

TEST(ParseCsv, BareCrEndsRow)
{
    auto doc = parseCsv("a,b\r1,2");
    ASSERT_EQ(doc.numRows(), 2u);
}

TEST(ParseCsv, QuotedFieldWithComma)
{
    auto doc = parseCsv("\"x,y\",z\n");
    ASSERT_EQ(doc.numRows(), 1u);
    EXPECT_EQ(doc.rows[0][0], "x,y");
    EXPECT_EQ(doc.rows[0][1], "z");
}

TEST(ParseCsv, EscapedQuote)
{
    auto doc = parseCsv("\"he said \"\"hi\"\"\"\n");
    ASSERT_EQ(doc.numRows(), 1u);
    EXPECT_EQ(doc.rows[0][0], "he said \"hi\"");
}

TEST(ParseCsv, QuotedNewline)
{
    auto doc = parseCsv("\"a\nb\",c\n");
    ASSERT_EQ(doc.numRows(), 1u);
    EXPECT_EQ(doc.rows[0][0], "a\nb");
}

TEST(ParseCsv, EmptyFields)
{
    auto doc = parseCsv(",,\n");
    ASSERT_EQ(doc.numRows(), 1u);
    EXPECT_EQ(doc.rows[0].size(), 3u);
    for (const auto &f : doc.rows[0])
        EXPECT_TRUE(f.empty());
}

TEST(ParseCsv, EmptyDocument)
{
    EXPECT_EQ(parseCsv("").numRows(), 0u);
}

TEST(ParseCsv, UnterminatedQuoteDies)
{
    EXPECT_DEATH(parseCsv("\"abc"), "unterminated");
}

TEST(CsvEscape, PlainPassThrough)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
}

TEST(CsvEscape, QuotesWhenNeeded)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("a\"b"), "\"a\"\"b\"");
    EXPECT_EQ(csvEscape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, MixedTypes)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.row("name", 3, 2.5);
    EXPECT_EQ(out.str(), "name,3,2.5\n");
}

TEST(CsvWriter, RoundTrip)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.row("x,y", "plain", "q\"q");
    w.row(1, 2, 3);
    auto doc = parseCsv(out.str());
    ASSERT_EQ(doc.numRows(), 2u);
    EXPECT_EQ(doc.rows[0][0], "x,y");
    EXPECT_EQ(doc.rows[0][2], "q\"q");
    EXPECT_EQ(doc.rows[1][0], "1");
}

TEST(CsvWriter, RowFromFields)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.rowFromFields({"a", "b,c"});
    EXPECT_EQ(out.str(), "a,\"b,c\"\n");
}

} // namespace
