/**
 * @file
 * Known-answer tests pinning util::crc32 to the IEEE 802.3 /
 * zlib-compatible CRC32. Both durable formats (the NPSCKPT1 snapshot
 * container and the NPSF wire format) seal their bytes with this
 * function, so these vectors are a compatibility contract: a change
 * that shifts any of them would silently orphan every existing
 * checkpoint and break the framed-stream protocol.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "ckpt/snapshot.h"
#include "util/crc32.h"

namespace {

using nps::util::crc32;
using nps::util::crc32Update;

TEST(Crc32Test, PinnedKnownVectors)
{
    // The catalogue check value: CRC32("123456789") = 0xCBF43926.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    // Empty input is the identity.
    EXPECT_EQ(crc32("", 0), 0x00000000u);
    // Classic zlib vectors.
    EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
    EXPECT_EQ(crc32("abc", 3), 0x352441C2u);
    EXPECT_EQ(crc32("hello world", 11), 0x0D4A1185u);
    const unsigned char zeros[4] = {0, 0, 0, 0};
    EXPECT_EQ(crc32(zeros, sizeof zeros), 0x2144DF1Cu);
    const unsigned char ff[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    EXPECT_EQ(crc32(ff, sizeof ff), 0xFFFFFFFFu);
}

TEST(Crc32Test, IncrementalMatchesOneShot)
{
    const std::string text = "The quick brown fox jumps over the lazy dog";
    uint32_t whole = crc32(text.data(), text.size());
    for (size_t split = 0; split <= text.size(); ++split) {
        uint32_t part = crc32Update(0, text.data(), split);
        part = crc32Update(part, text.data() + split, text.size() - split);
        EXPECT_EQ(part, whole) << "split at " << split;
    }
}

TEST(Crc32Test, CkptAliasIsByteCompatible)
{
    // ckpt::crc32 must stay the same function: existing snapshots carry
    // its section checksums, and the NPSF decoder validates frames the
    // ckpt-side writer of an older build produced.
    const char blob[] = "NPSCKPT1-section-payload\x00\x7f\xff";
    EXPECT_EQ(nps::ckpt::crc32(blob, sizeof blob),
              crc32(blob, sizeof blob));
    EXPECT_EQ(nps::ckpt::crc32("123456789", 9), 0xCBF43926u);
}

} // namespace
