/**
 * @file
 * Tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/stats.h"

namespace {

using nps::util::RunningStats;
using nps::util::RateCounter;
using nps::util::SampleSet;

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        double x = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    RunningStats copy = a;
    a.merge(b);
    EXPECT_EQ(a.mean(), copy.mean());
    b.merge(copy);
    EXPECT_EQ(b.mean(), copy.mean());
}

TEST(RunningStats, Clear)
{
    RunningStats s;
    s.add(1.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RateCounter, Basics)
{
    RateCounter c;
    EXPECT_EQ(c.rate(), 0.0);
    c.record(true);
    c.record(false);
    c.record(false);
    c.record(true);
    EXPECT_EQ(c.total(), 4u);
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_DOUBLE_EQ(c.rate(), 0.5);
}

TEST(RateCounter, MergeAndClear)
{
    RateCounter a, b;
    a.record(true);
    b.record(false);
    b.record(false);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.hits(), 1u);
    a.clear();
    EXPECT_EQ(a.total(), 0u);
}

TEST(SampleSet, QuantilesOfKnownSet)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
    EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, QuantileInterpolates)
{
    SampleSet s;
    s.add(0.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(SampleSet, EmptyIsZero)
{
    SampleSet s;
    EXPECT_EQ(s.quantile(0.5), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSet, AddAfterQuantile)
{
    SampleSet s;
    s.add(5.0);
    EXPECT_EQ(s.quantile(0.5), 5.0);
    s.add(1.0);
    EXPECT_EQ(s.quantile(0.0), 1.0);
}

TEST(SampleSet, QuantileOutOfRangeDies)
{
    SampleSet s;
    s.add(1.0);
    EXPECT_DEATH(s.quantile(1.5), "quantile");
}

TEST(Helpers, Clamp)
{
    EXPECT_EQ(nps::util::clamp(5.0, 0.0, 10.0), 5.0);
    EXPECT_EQ(nps::util::clamp(-1.0, 0.0, 10.0), 0.0);
    EXPECT_EQ(nps::util::clamp(11.0, 0.0, 10.0), 10.0);
}

TEST(Helpers, ClampBadRangeDies)
{
    EXPECT_DEATH(nps::util::clamp(0.0, 2.0, 1.0), "clamp");
}

TEST(Helpers, Lerp)
{
    EXPECT_DOUBLE_EQ(nps::util::lerp(0.0, 10.0, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(nps::util::lerp(5.0, 5.0, 0.9), 5.0);
}

TEST(Helpers, NearlyEqual)
{
    EXPECT_TRUE(nps::util::nearlyEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(nps::util::nearlyEqual(1.0, 1.1));
    EXPECT_TRUE(nps::util::nearlyEqual(1.0, 1.05, 0.1));
}

} // namespace
