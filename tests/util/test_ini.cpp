/**
 * @file
 * Tests for the INI parser/writer.
 */

#include <gtest/gtest.h>

#include "util/ini.h"

namespace {

using namespace nps::util;

TEST(Ini, BasicParse)
{
    auto ini = parseIni("[a]\nx = 1\ny = hello world\n[b]\nz=2\n");
    EXPECT_TRUE(ini.has("a", "x"));
    EXPECT_EQ(ini.get("a", "x"), "1");
    EXPECT_EQ(ini.get("a", "y"), "hello world");
    EXPECT_EQ(ini.get("b", "z"), "2");
    EXPECT_FALSE(ini.has("a", "z"));
    EXPECT_EQ(ini.get("a", "missing", "dflt"), "dflt");
}

TEST(Ini, CommentsAndBlanksIgnored)
{
    auto ini = parseIni("# top comment\n\n[s]\n; note\nk = v\n");
    EXPECT_EQ(ini.get("s", "k"), "v");
    EXPECT_EQ(ini.sections().size(), 1u);
}

TEST(Ini, WhitespaceTrimmed)
{
    auto ini = parseIni("[ s ]\n  key\t =  value with spaces  \n");
    EXPECT_EQ(ini.get("s", "key"), "value with spaces");
}

TEST(Ini, DuplicateKeyTakesLast)
{
    auto ini = parseIni("[s]\nk = 1\nk = 2\n");
    EXPECT_EQ(ini.get("s", "k"), "2");
    EXPECT_EQ(ini.keys("s").size(), 1u);
}

TEST(Ini, SectionsMerge)
{
    auto ini = parseIni("[s]\na = 1\n[t]\nb = 2\n[s]\nc = 3\n");
    EXPECT_EQ(ini.get("s", "a"), "1");
    EXPECT_EQ(ini.get("s", "c"), "3");
    EXPECT_EQ(ini.sections().size(), 2u);
}

TEST(Ini, EmptySectionRegistered)
{
    auto ini = parseIni("[empty]\n[full]\nk = v\n");
    ASSERT_EQ(ini.sections().size(), 2u);
    EXPECT_EQ(ini.sections()[0], "empty");
    EXPECT_TRUE(ini.keys("empty").empty());
}

TEST(Ini, TypedGetters)
{
    auto ini = parseIni("[s]\nd = 2.5\ni = -7\nb1 = true\nb2 = off\n");
    EXPECT_DOUBLE_EQ(ini.getDouble("s", "d", 0.0), 2.5);
    EXPECT_EQ(ini.getInt("s", "i", 0), -7);
    EXPECT_TRUE(ini.getBool("s", "b1", false));
    EXPECT_FALSE(ini.getBool("s", "b2", true));
    // Fallbacks for missing keys.
    EXPECT_DOUBLE_EQ(ini.getDouble("s", "nope", 9.5), 9.5);
    EXPECT_EQ(ini.getInt("s", "nope", 3), 3);
    EXPECT_TRUE(ini.getBool("s", "nope", true));
}

TEST(Ini, BoolSpellings)
{
    auto ini = parseIni("[s]\na = YES\nb = On\nc = 1\nd = No\ne = 0\n");
    EXPECT_TRUE(ini.getBool("s", "a", false));
    EXPECT_TRUE(ini.getBool("s", "b", false));
    EXPECT_TRUE(ini.getBool("s", "c", false));
    EXPECT_FALSE(ini.getBool("s", "d", true));
    EXPECT_FALSE(ini.getBool("s", "e", true));
}

TEST(Ini, MalformedValuesDie)
{
    auto ini = parseIni("[s]\nd = abc\nb = maybe\ni = 1.5\n");
    EXPECT_DEATH(ini.getDouble("s", "d", 0.0), "not a number");
    EXPECT_DEATH(ini.getBool("s", "b", false), "not a boolean");
    EXPECT_DEATH(ini.getInt("s", "i", 0), "not an integer");
}

TEST(Ini, MalformedSyntaxDies)
{
    EXPECT_DEATH(parseIni("[unclosed\nk = v\n"), "malformed section");
    EXPECT_DEATH(parseIni("[s]\nno equals sign\n"), "expected");
    EXPECT_DEATH(parseIni("k = v\n"), "outside any section");
    EXPECT_DEATH(parseIni("[]\n"), "section");
    EXPECT_DEATH(parseIni("[s]\n= v\n"), "empty key");
}

TEST(Ini, RoundTrip)
{
    IniDocument doc;
    doc.set("alpha", "x", "1");
    doc.set("alpha", "y", "two words");
    doc.set("beta", "z", "3.5");
    auto back = parseIni(doc.toText());
    EXPECT_EQ(back.get("alpha", "x"), "1");
    EXPECT_EQ(back.get("alpha", "y"), "two words");
    EXPECT_DOUBLE_EQ(back.getDouble("beta", "z", 0.0), 3.5);
}

TEST(Ini, KeysPreserveInsertionOrder)
{
    auto ini = parseIni("[s]\nb = 1\na = 2\nc = 3\n");
    auto keys = ini.keys("s");
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "b");
    EXPECT_EQ(keys[1], "a");
    EXPECT_EQ(keys[2], "c");
}

TEST(Ini, MissingFileDies)
{
    EXPECT_DEATH(readIniFile("/nonexistent/x.ini"), "cannot open");
}

} // namespace
