/**
 * @file
 * Tests for the deterministic PRNG: reproducibility, ranges, statistical
 * sanity, and the named-substream derivation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/random.h"

namespace {

using nps::util::Rng;
using nps::util::hashString;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(42);
    Rng b(43);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, NamedStreamsAreIndependent)
{
    Rng a(7, "trace");
    Rng b(7, "policy");
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, NamedStreamIsDeterministic)
{
    Rng a(7, "trace");
    Rng b(7, "trace");
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndVariance)
{
    Rng rng(2);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        sum += u;
        sum_sq += u * u;
    }
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.01);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-5.0, 5.0);
        EXPECT_GE(u, -5.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(4);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(5);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(10)];
    for (int c : counts) {
        EXPECT_GT(c, n / 10 * 0.9);
        EXPECT_LT(c, n / 10 * 1.1);
    }
}

TEST(Rng, BelowOne)
{
    Rng rng(6);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(7);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    double mean = sum / n;
    double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliEdges)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-0.5));
        EXPECT_TRUE(rng.bernoulli(1.5));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng rng(10);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(11);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<int> orig = v;
    rng.shuffle(v.begin(), v.end());
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyShuffles)
{
    Rng rng(12);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    std::vector<int> orig = v;
    rng.shuffle(v.begin(), v.end());
    EXPECT_NE(v, orig);
}

TEST(HashString, DistinctInputsDistinctHashes)
{
    std::set<uint64_t> hashes;
    hashes.insert(hashString("a"));
    hashes.insert(hashString("b"));
    hashes.insert(hashString("ab"));
    hashes.insert(hashString("ba"));
    hashes.insert(hashString(""));
    EXPECT_EQ(hashes.size(), 5u);
}

TEST(HashString, Deterministic)
{
    EXPECT_EQ(hashString("trace"), hashString("trace"));
}

} // namespace
