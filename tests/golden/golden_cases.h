/**
 * @file
 * The golden-master case catalogue: the Figure 7/8/9/10 scenario
 * configurations at a reduced horizon, with one shared runner used by
 * both the regression test (tests/golden/test_golden_master.cpp) and
 * the regeneration tool (tools/golden_gen.cpp).
 *
 * The catalogue pins the simulator's observable behavior: any refactor
 * — including the parallel tick engine — must reproduce the checked-in
 * MetricsSummary of every case bit-for-bit, at any thread count.
 *
 * Regenerating after an *intentional* behavior change:
 *
 *     cmake --build build -j && build/tools/npsgolden \
 *         > tests/golden/golden_values.h
 *
 * and state the reason for the drift in the commit message.
 */

#ifndef NPS_TESTS_GOLDEN_GOLDEN_CASES_H
#define NPS_TESTS_GOLDEN_GOLDEN_CASES_H

#include <cstddef>
#include <vector>

#include "core/coordinator.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "trace/workload.h"
#include "util/logging.h"

namespace nps_golden {

/** One pinned scenario. */
struct GoldenCase
{
    const char *name;              //!< stable identifier, used in output
    nps::core::Scenario scenario;  //!< deployment under test
    const char *budgets;           //!< "20-15-10" | "25-20-15" | "30-25-20"
    /**
     * When true the case runs on the 3-level tiered(2,3,1,8,2) topology
     * (60 servers under a GM-of-GMs tree) instead of the flat Mid60
     * shape, pinning the nested control plane.
     */
    bool tree = false;
};

/** Reduced horizon: fast enough for every CI run, long enough that the
 * VMC has acted several times and budgets have been redistributed. */
inline constexpr size_t kGoldenTicks = 480;

/** Trace-campaign seed (the npsim default). */
inline constexpr uint64_t kGoldenSeed = 20080301;

/** The pinned catalogue, in checked-in value order. */
inline const GoldenCase kGoldenCases[] = {
    {"fig7_coordinated", nps::core::Scenario::Coordinated, "20-15-10"},
    {"fig7_uncoordinated", nps::core::Scenario::Uncoordinated,
     "20-15-10"},
    {"fig7_baseline", nps::core::Scenario::Baseline, "20-15-10"},
    {"fig8_novmc", nps::core::Scenario::NoVmc, "20-15-10"},
    {"fig8_vmconly", nps::core::Scenario::VmcOnly, "20-15-10"},
    {"fig9_appr_util", nps::core::Scenario::CoordApparentUtil,
     "20-15-10"},
    {"fig9_no_feedback", nps::core::Scenario::CoordNoFeedback,
     "20-15-10"},
    {"fig9_no_budget_limits", nps::core::Scenario::CoordNoBudgetLimits,
     "20-15-10"},
    {"fig10_coordinated_252015", nps::core::Scenario::Coordinated,
     "25-20-15"},
    {"fig10_coordinated_302520", nps::core::Scenario::Coordinated,
     "30-25-20"},
    // The N-level control plane: the same workloads under a
    // datacenter -> zone -> rack GM tree (new cases append here so the
    // values above stay byte-identical across regenerations).
    {"tree3_coordinated", nps::core::Scenario::Coordinated, "20-15-10",
     true},
    {"tree3_uncoordinated", nps::core::Scenario::Uncoordinated,
     "20-15-10", true},
};

inline constexpr size_t kNumGoldenCases =
    sizeof(kGoldenCases) / sizeof(kGoldenCases[0]);

inline nps::sim::BudgetConfig
goldenBudgets(const std::string &label)
{
    if (label == "20-15-10")
        return nps::sim::BudgetConfig::paper201510();
    if (label == "25-20-15")
        return nps::sim::BudgetConfig::paper252015();
    if (label == "30-25-20")
        return nps::sim::BudgetConfig::paper302520();
    nps::util::fatal("golden: unknown budgets '%s'", label.c_str());
}

/** The shared Mid60 trace set (built once per process). */
inline const std::vector<nps::trace::UtilizationTrace> &
goldenTraces()
{
    static const std::vector<nps::trace::UtilizationTrace> traces = [] {
        nps::trace::GeneratorConfig gen;
        gen.seed = kGoldenSeed;
        gen.trace_length = kGoldenTicks;
        nps::trace::WorkloadLibrary library(gen);
        return library.mix(nps::trace::Mix::Mid60);
    }();
    return traces;
}

/** Run one case at @p threads workers and return its summary. */
inline nps::sim::MetricsSummary
runGoldenCase(const GoldenCase &c, unsigned threads)
{
    nps::core::CoordinationConfig cfg =
        nps::core::scenarioConfig(c.scenario);
    cfg.budgets = goldenBudgets(c.budgets);
    cfg.threads = threads;
    nps::sim::Topology topo =
        c.tree ? nps::sim::Topology::tiered(2, 3, 1, 8, 2)
               : nps::core::ExperimentRunner::topologyFor(
                     nps::trace::Mix::Mid60);
    nps::core::Coordinator coord(cfg, topo,
                                 nps::model::machineByName("BladeA"),
                                 goldenTraces());
    coord.run(kGoldenTicks);
    return coord.summary();
}

} // namespace nps_golden

#endif // NPS_TESTS_GOLDEN_GOLDEN_CASES_H
