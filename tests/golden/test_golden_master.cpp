/**
 * @file
 * Golden-master regression suite: every Figure 7/8/9/10 scenario runs
 * at a reduced horizon and its MetricsSummary must match the checked-in
 * expected values exactly — at threads = 1 (the legacy serial path),
 * threads = 4 and threads = 8 (the parallel tick engine) alike. A drift
 * in any field
 * fails with the full-precision expected/actual pair, so a refactor
 * that changes simulation behavior is caught (and diagnosable) at once.
 *
 * Intentional changes: regenerate with build/tools/npsgolden (see
 * golden_cases.h).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "golden/golden_cases.h"
#include "golden/golden_values.h"

namespace {

using namespace nps;
using nps_golden::GoldenCase;

void
checkField(const char *case_name, const char *field, double expected,
           double actual, ::testing::AssertionResult &result)
{
    // Exact tolerance: the engine is deterministic and the parallel
    // path guarantees bit-identical arithmetic, so any difference at
    // all is a behavior change.
    if (expected == actual ||
        (std::isnan(expected) && std::isnan(actual)))
        return;
    std::ostringstream ss;
    ss.precision(17);
    ss << "\n  " << case_name << "." << field << " drifted:"
       << "\n    expected " << expected << " (" << std::hexfloat
       << expected << std::defaultfloat << ")"
       << "\n    actual   " << actual << " (" << std::hexfloat << actual
       << std::defaultfloat << ")"
       << "\n    delta    " << actual - expected;
    result = ::testing::AssertionResult(false) << result.message()
                                               << ss.str();
}

::testing::AssertionResult
summaryMatches(const char *case_name, const sim::MetricsSummary &expected,
               const sim::MetricsSummary &actual)
{
    auto result = ::testing::AssertionSuccess();
    if (expected.ticks != actual.ticks) {
        result = ::testing::AssertionResult(false)
                 << "\n  " << case_name << ".ticks drifted: expected "
                 << expected.ticks << ", actual " << actual.ticks;
    }
    checkField(case_name, "energy", expected.energy, actual.energy,
               result);
    checkField(case_name, "mean_power", expected.mean_power,
               actual.mean_power, result);
    checkField(case_name, "peak_power", expected.peak_power,
               actual.peak_power, result);
    checkField(case_name, "sm_violation", expected.sm_violation,
               actual.sm_violation, result);
    checkField(case_name, "em_violation", expected.em_violation,
               actual.em_violation, result);
    checkField(case_name, "gm_violation", expected.gm_violation,
               actual.gm_violation, result);
    checkField(case_name, "perf_loss", expected.perf_loss,
               actual.perf_loss, result);
    return result;
}

/** Parameterized over the engine worker-thread count. */
class GoldenMaster : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GoldenMaster, AllScenariosMatchCheckedInValues)
{
    const unsigned threads = GetParam();
    for (size_t i = 0; i < nps_golden::kNumGoldenCases; ++i) {
        const GoldenCase &c = nps_golden::kGoldenCases[i];
        sim::MetricsSummary actual = nps_golden::runGoldenCase(c, threads);
        EXPECT_TRUE(summaryMatches(c.name, nps_golden::kGoldenExpected[i],
                                   actual))
            << "\n  (threads=" << threads
            << "; regenerate with build/tools/npsgolden only if the "
               "change is intentional)";
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, GoldenMaster,
                         ::testing::Values(1u, 4u, 8u),
                         [](const auto &info) {
                             return "threads" +
                                    std::to_string(info.param);
                         });

} // namespace

