/**
 * @file
 * Tests for the clamped integral controller.
 */

#include <gtest/gtest.h>

#include "control/integral.h"

namespace {

using nps::ctl::IntegralController;

TEST(IntegralController, UpdateAccumulates)
{
    IntegralController c(0.0, -10.0, 10.0);
    EXPECT_DOUBLE_EQ(c.update(1.0, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(c.update(1.0, 2.0), 4.0);
    EXPECT_DOUBLE_EQ(c.update(0.5, -2.0), 3.0);
}

TEST(IntegralController, ClampsToRange)
{
    IntegralController c(0.0, -1.0, 1.0);
    c.update(1.0, 100.0);
    EXPECT_DOUBLE_EQ(c.value(), 1.0);
    EXPECT_TRUE(c.saturated());
    c.update(1.0, -300.0);
    EXPECT_DOUBLE_EQ(c.value(), -1.0);
    EXPECT_TRUE(c.saturated());
}

TEST(IntegralController, AntiWindup)
{
    // After saturating high, a single negative error must immediately
    // move the value (no windup to unwind).
    IntegralController c(0.0, 0.0, 1.0);
    for (int i = 0; i < 100; ++i)
        c.update(1.0, 5.0);
    EXPECT_DOUBLE_EQ(c.value(), 1.0);
    c.update(1.0, -0.25);
    EXPECT_DOUBLE_EQ(c.value(), 0.75);
}

TEST(IntegralController, InitialValueClamped)
{
    IntegralController c(5.0, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(c.value(), 1.0);
}

TEST(IntegralController, SetValueClamps)
{
    IntegralController c(0.5, 0.0, 1.0);
    c.setValue(-3.0);
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
    c.setValue(0.7);
    EXPECT_DOUBLE_EQ(c.value(), 0.7);
    EXPECT_FALSE(c.saturated());
}

TEST(IntegralController, SetRangeReclamps)
{
    IntegralController c(0.9, 0.0, 1.0);
    c.setRange(0.0, 0.5);
    EXPECT_DOUBLE_EQ(c.value(), 0.5);
    EXPECT_DOUBLE_EQ(c.hi(), 0.5);
}

TEST(IntegralController, BadRangeDies)
{
    EXPECT_DEATH(IntegralController(0.0, 1.0, 0.0), "lo");
    IntegralController c(0.0, 0.0, 1.0);
    EXPECT_DEATH(c.setRange(2.0, 1.0), "lo");
}

} // namespace
