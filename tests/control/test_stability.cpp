/**
 * @file
 * Tests for the Appendix A stability bounds and sequence diagnostics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "control/stability.h"

namespace {

using namespace nps::ctl;

TEST(StabilityBounds, EcLambda)
{
    EXPECT_DOUBLE_EQ(ecLambdaBound(0.5), 2.0);
    EXPECT_DOUBLE_EQ(ecLambdaBound(0.75), 1.0 / 0.75);
    EXPECT_DOUBLE_EQ(ecLambdaLocalBound(0.5), 4.0);
    EXPECT_DEATH(ecLambdaBound(0.0), "out of");
    EXPECT_DEATH(ecLambdaBound(1.0), "out of");
}

TEST(StabilityBounds, EcGainStable)
{
    EXPECT_TRUE(ecGainStable(0.8, 0.75));   // the Figure 5 baseline
    EXPECT_TRUE(ecGainStable(1.3, 0.75));
    EXPECT_FALSE(ecGainStable(1.4, 0.75));  // above 1/0.75
    EXPECT_FALSE(ecGainStable(0.0, 0.75));
    EXPECT_FALSE(ecGainStable(-0.5, 0.75));
}

TEST(StabilityBounds, SmBeta)
{
    EXPECT_DOUBLE_EQ(smBetaBound(0.5), 4.0);
    EXPECT_TRUE(smGainStable(1.0, 0.5));
    EXPECT_FALSE(smGainStable(5.0, 0.5));
    EXPECT_FALSE(smGainStable(0.0, 0.5));
    EXPECT_DEATH(smBetaBound(0.0), "positive");
}

TEST(Converged, DetectsSettledTail)
{
    std::vector<double> s{5.0, 3.0, 1.1, 1.0, 1.01, 0.99, 1.0};
    EXPECT_TRUE(converged(s, 1.0, 0.05, 4));
    EXPECT_FALSE(converged(s, 1.0, 0.05, 6));
    EXPECT_FALSE(converged(s, 2.0, 0.05, 4));
}

TEST(Converged, ShortSeriesIsFalse)
{
    EXPECT_FALSE(converged({1.0}, 1.0, 0.1, 5));
}

TEST(Converged, ZeroWindowDies)
{
    EXPECT_DEATH(converged({1.0}, 1.0, 0.1, 0), "zero window");
}

TEST(TailAmplitude, PeakToPeak)
{
    std::vector<double> s{0.0, 9.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(tailAmplitude(s, 3), 2.0);
    EXPECT_DOUBLE_EQ(tailAmplitude(s, 5), 9.0);
    EXPECT_DOUBLE_EQ(tailAmplitude(s, 6), 0.0);
}

TEST(Oscillating, DetectsLimitCycle)
{
    std::vector<double> s;
    for (int i = 0; i < 40; ++i)
        s.push_back(std::sin(i * 1.3) * 2.0);
    EXPECT_TRUE(oscillating(s, 20, 1.0, 4));
}

TEST(Oscillating, MonotoneIsNot)
{
    std::vector<double> s;
    for (int i = 0; i < 40; ++i)
        s.push_back(static_cast<double>(i));
    EXPECT_FALSE(oscillating(s, 20, 1.0, 2));
}

TEST(Oscillating, SmallRippleIsNot)
{
    std::vector<double> s;
    for (int i = 0; i < 40; ++i)
        s.push_back(std::sin(i) * 0.001);
    EXPECT_FALSE(oscillating(s, 20, 0.5, 2));
}

TEST(Oscillating, ConstantIsNot)
{
    std::vector<double> s(40, 1.0);
    EXPECT_FALSE(oscillating(s, 20, 0.0, 1));
}

} // namespace
