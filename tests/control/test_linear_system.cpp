/**
 * @file
 * Tests for the first-order linear system and the Appendix A closed-loop
 * analysis of the SM: pow(k) = (1 - beta c) pow(k-1) + beta c cap is
 * stable iff |1 - beta c| < 1 and converges to the cap.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "control/linear_system.h"
#include "control/stability.h"

namespace {

using namespace nps::ctl;

TEST(FirstOrderSystem, StableConvergesToFixedPoint)
{
    FirstOrderSystem sys(0.5, 2.0, 0.0);
    EXPECT_TRUE(sys.stable());
    EXPECT_DOUBLE_EQ(sys.fixedPoint(), 4.0);
    sys.run(100);
    EXPECT_NEAR(sys.state(), 4.0, 1e-9);
}

TEST(FirstOrderSystem, UnstableDiverges)
{
    FirstOrderSystem sys(1.5, 0.0, 1.0);
    EXPECT_FALSE(sys.stable());
    sys.run(50);
    EXPECT_GT(std::fabs(sys.state()), 1e6);
}

TEST(FirstOrderSystem, NegativePoleOscillatesButConverges)
{
    FirstOrderSystem sys(-0.8, 1.8, 10.0);
    EXPECT_TRUE(sys.stable());
    auto states = sys.run(200);
    EXPECT_NEAR(states.back(), 1.0, 1e-6);
    // Early deviations alternate sign around the fixed point and shrink.
    double fp = sys.fixedPoint();
    EXPECT_LT((states[0] - fp) * (states[1] - fp), 0.0);
    EXPECT_LT((states[1] - fp) * (states[2] - fp), 0.0);
    EXPECT_LT(std::fabs(states[2] - fp), std::fabs(states[0] - fp));
}

TEST(FirstOrderSystem, SettlingTimeShrinksWithSmallerPole)
{
    FirstOrderSystem fast(0.2, 1.0, 100.0);
    FirstOrderSystem slow(0.9, 0.125, 100.0);
    size_t t_fast = fast.settlingTime(0.01, 10000);
    size_t t_slow = slow.settlingTime(0.01, 10000);
    EXPECT_LT(t_fast, t_slow);
}

TEST(FirstOrderSystem, FixedPointAtPoleOneDies)
{
    FirstOrderSystem sys(1.0, 1.0, 0.0);
    EXPECT_DEATH(sys.fixedPoint(), "pole");
}

TEST(FirstOrderSystem, SettlingTimeOnUnstableDies)
{
    FirstOrderSystem sys(2.0, 0.0, 1.0);
    EXPECT_DEATH(sys.settlingTime(0.01, 100), "unstable");
}

TEST(SmClosedLoop, PoleFormula)
{
    EXPECT_DOUBLE_EQ(smClosedLoopPole(1.0, 0.5), 0.5);
    EXPECT_DOUBLE_EQ(smClosedLoopPole(4.0, 0.5), -1.0);
}

TEST(SmClosedLoop, ConvergesToCapWhenStable)
{
    // beta within (0, 2/c): power must converge to the cap.
    double c = 0.6, cap = 70.0;
    FirstOrderSystem loop = smClosedLoop(1.5, c, cap, 90.0);
    EXPECT_TRUE(loop.stable());
    loop.run(300);
    EXPECT_NEAR(loop.state(), cap, 1e-6);
}

/**
 * Appendix A property sweep: the closed SM loop is stable exactly when
 * 0 < beta < 2 / c.
 */
class SmBetaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SmBetaSweep, StabilityMatchesAnalyticalBound)
{
    double beta = GetParam();
    double c = 0.8, cap = 60.0;
    FirstOrderSystem loop = smClosedLoop(beta, c, cap, 100.0);
    bool analytic = smGainStable(beta, c);
    EXPECT_EQ(loop.stable(), analytic) << "beta=" << beta;
    if (analytic) {
        loop.run(2000);
        EXPECT_NEAR(loop.state(), cap, 1e-3) << "beta=" << beta;
    } else {
        loop.run(200);
        EXPECT_GT(std::fabs(loop.state() - cap), 30.0) << "beta=" << beta;
    }
}

INSTANTIATE_TEST_SUITE_P(BetaGrid, SmBetaSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 1.5, 2.0, 2.4,
                                           2.6, 3.0, 5.0));

} // namespace
