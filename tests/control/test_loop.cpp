/**
 * @file
 * Tests for the ControlLoop skeleton: the measure/control/actuate cycle
 * and the reference channel used for coordination.
 */

#include <gtest/gtest.h>

#include <vector>

#include "control/loop.h"

namespace {

using nps::ctl::ControlLoop;

/** A loop over a trivially controllable scalar plant. */
class ScalarLoop : public ControlLoop
{
  public:
    ScalarLoop() : ControlLoop("scalar") {}

    double plant = 0.0;
    std::vector<double> measured;

  protected:
    double
    measure() override
    {
        measured.push_back(plant);
        return plant;
    }

    double
    control(double error, double measurement) override
    {
        (void)measurement;
        return plant + 0.5 * error;
    }

    void actuate(double value) override { plant = value; }
};

TEST(ControlLoop, StepRunsCycle)
{
    ScalarLoop loop;
    loop.setReference(10.0);
    double u = loop.step();
    EXPECT_DOUBLE_EQ(u, 5.0);
    EXPECT_DOUBLE_EQ(loop.plant, 5.0);
    EXPECT_EQ(loop.steps(), 1u);
    EXPECT_DOUBLE_EQ(loop.lastMeasurement(), 0.0);
    EXPECT_DOUBLE_EQ(loop.lastError(), 10.0);
}

TEST(ControlLoop, ConvergesToReference)
{
    ScalarLoop loop;
    loop.setReference(10.0);
    for (int i = 0; i < 50; ++i)
        loop.step();
    EXPECT_NEAR(loop.plant, 10.0, 1e-6);
}

TEST(ControlLoop, ReferenceChannelRetargets)
{
    ScalarLoop loop;
    loop.setReference(4.0);
    for (int i = 0; i < 50; ++i)
        loop.step();
    EXPECT_NEAR(loop.plant, 4.0, 1e-6);
    // An outer controller re-targets the loop; it must follow.
    loop.setReference(-2.0);
    for (int i = 0; i < 50; ++i)
        loop.step();
    EXPECT_NEAR(loop.plant, -2.0, 1e-6);
    EXPECT_DOUBLE_EQ(loop.reference(), -2.0);
}

TEST(ControlLoop, ResetClearsHistoryKeepsReference)
{
    ScalarLoop loop;
    loop.setReference(3.0);
    loop.step();
    loop.reset();
    EXPECT_EQ(loop.steps(), 0u);
    EXPECT_DOUBLE_EQ(loop.lastError(), 0.0);
    EXPECT_DOUBLE_EQ(loop.reference(), 3.0);
}

TEST(ControlLoop, Name)
{
    ScalarLoop loop;
    EXPECT_EQ(loop.name(), "scalar");
}

} // namespace
