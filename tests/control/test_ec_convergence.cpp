/**
 * @file
 * Numerical verification of Appendix A, Proposition A: under the
 * idealized continuous-frequency plant
 *
 *     r(k)   = min(1, f_D / f(k)),     f_C(k) = min(f(k), f_D),
 *     f(k+1) = f(k) - lambda * (f_C(k) / r_ref) * (r_ref - r(k)),
 *
 * the utilization r converges to r_ref for every 0 < lambda < 1 / r_ref
 * (global bound), for any constant demand and initial frequency. Beyond
 * the local bound 2 / r_ref the loop must not converge.
 *
 * This exercises the *equation*, independent of the simulator; the
 * controllers/test_efficiency.cpp suite covers the quantized
 * implementation on a simulated server.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "control/stability.h"

namespace {

/** One step of the idealized EC recurrence. */
double
ecStep(double f, double f_d, double lambda, double r_ref)
{
    double f_c = std::min(f, f_d);
    double r = std::min(1.0, f_d / f);
    return f - lambda * (f_c / r_ref) * (r_ref - r);
}

/** Run the loop and return the utilization series. */
std::vector<double>
runEc(double f0, double f_d, double lambda, double r_ref, int steps)
{
    std::vector<double> util;
    double f = f0;
    for (int k = 0; k < steps; ++k) {
        util.push_back(std::min(1.0, f_d / f));
        f = ecStep(f, f_d, lambda, r_ref);
        // Physical actuator range (wide enough not to bind in the
        // stable cases).
        f = std::max(1.0, std::min(f, 1e7));
    }
    return util;
}

/** (lambda_fraction_of_bound, r_ref, f_demand, f_initial). */
using EcCase = std::tuple<double, double, double, double>;

class EcConvergence : public ::testing::TestWithParam<EcCase>
{
};

TEST_P(EcConvergence, UtilizationTracksReference)
{
    auto [frac, r_ref, f_d, f0] = GetParam();
    double lambda = frac * nps::ctl::ecLambdaBound(r_ref);
    auto util = runEc(f0, f_d, lambda, r_ref, 3000);
    EXPECT_TRUE(nps::ctl::converged(util, r_ref, 1e-4, 50))
        << "lambda=" << lambda << " r_ref=" << r_ref << " f_d=" << f_d
        << " f0=" << f0 << " tail=" << util.back();
}

INSTANTIATE_TEST_SUITE_P(
    StableGrid, EcConvergence,
    ::testing::Combine(
        ::testing::Values(0.2, 0.5, 0.8, 0.95),   // fraction of 1/r_ref
        ::testing::Values(0.3, 0.5, 0.75, 0.9),   // r_ref
        ::testing::Values(200.0, 1000.0),         // demand (MHz)
        ::testing::Values(500.0, 1000.0, 4000.0)  // initial frequency
        ));

TEST(EcConvergence, ZeroTrackingError)
{
    // Fixed point: r == r_ref exactly (f = f_D / r_ref).
    double r_ref = 0.75, f_d = 600.0, lambda = 0.8;
    double f = f_d / r_ref;
    double f_next = ecStep(f, f_d, lambda, r_ref);
    EXPECT_NEAR(f_next, f, 1e-9);
}

TEST(EcConvergence, SaturatedRegionRampsUp)
{
    // When capacity is below demand (r saturated at 1 > r_ref), the law
    // must monotonically raise frequency until capacity covers demand.
    double f = 100.0, f_d = 1000.0;
    for (int i = 0; i < 100; ++i) {
        double next = ecStep(f, f_d, 0.8, 0.75);
        EXPECT_GT(next, f);
        f = next;
        if (f >= f_d)
            break;
    }
    EXPECT_GE(f, 900.0);
}

TEST(EcConvergence, BeyondLocalBoundDiverges)
{
    // lambda far above 2 / r_ref: the loop must fail to settle.
    double r_ref = 0.75;
    double lambda = 2.5 * nps::ctl::ecLambdaLocalBound(r_ref);
    auto util = runEc(900.0, 600.0, lambda, r_ref, 3000);
    EXPECT_FALSE(nps::ctl::converged(util, r_ref, 1e-3, 50));
    EXPECT_TRUE(nps::ctl::oscillating(util, 100, 0.05, 10));
}

TEST(EcConvergence, SlowDemandChangesAreTracked)
{
    // Proposition A assumes demand changing slowly relative to the loop;
    // drift the demand and verify tracking error stays small after an
    // initial transient.
    double r_ref = 0.75, lambda = 0.8;
    double f = 2000.0;
    double worst = 0.0;
    for (int k = 0; k < 4000; ++k) {
        double f_d = 600.0 + 200.0 * std::sin(k / 500.0);
        double r = std::min(1.0, f_d / f);
        if (k > 200)
            worst = std::max(worst, std::fabs(r - r_ref));
        f = ecStep(f, f_d, lambda, r_ref);
    }
    EXPECT_LT(worst, 0.02);
}

} // namespace
