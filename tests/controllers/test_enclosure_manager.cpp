/**
 * @file
 * Tests for the Enclosure Manager: budget division across blades, the
 * min() interface with the GM's recommendation, and violation exposure.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "common/fixtures.h"
#include "controllers/enclosure_manager.h"

namespace {

using namespace nps;
using controllers::EfficiencyController;
using controllers::EnclosureManager;
using controllers::ServerManager;

class EmTest : public ::testing::Test
{
  protected:
    EmTest() : cluster_(nps_test::smallCluster(0.3))
    {
        for (auto &srv : cluster_.servers()) {
            ecs_.push_back(std::make_unique<EfficiencyController>(
                srv, EfficiencyController::Params{}));
            sms_.push_back(std::make_unique<ServerManager>(
                srv, ecs_.back().get(), cluster_.capLoc(srv.id()),
                ServerManager::Params{}));
        }
    }

    EnclosureManager
    makeEm(EnclosureManager::Params p = {})
    {
        std::vector<ServerManager *> blades;
        for (sim::ServerId s : cluster_.enclosure(0).members())
            blades.push_back(sms_[s].get());
        return EnclosureManager(cluster_, 0, std::move(blades),
                                cluster_.capEnc(0), p);
    }

    sim::Cluster cluster_;
    std::vector<std::unique_ptr<EfficiencyController>> ecs_;
    std::vector<std::unique_ptr<ServerManager>> sms_;
};

TEST_F(EmTest, GrantsSumToBudgetAndReachSms)
{
    auto em = makeEm();
    // Give the EM a few observations to form demand estimates.
    for (size_t t = 0; t < 30; ++t) {
        cluster_.evaluateTick(t);
        em.observe(t);
    }
    em.step(25);
    const auto &grants = em.lastGrants();
    ASSERT_EQ(grants.size(), 4u);
    double total = std::accumulate(grants.begin(), grants.end(), 0.0);
    EXPECT_NEAR(total, em.effectiveCap(), 1e-6);
    // Every blade SM received its grant (identical power -> equal
    // proportional shares, all below CAP_LOC).
    for (sim::ServerId s : cluster_.enclosure(0).members()) {
        EXPECT_NEAR(sms_[s]->effectiveCap(),
                    std::min(cluster_.capLoc(s), grants[s]), 1e-9);
        EXPECT_NEAR(grants[s], total / 4.0, 1e-6);
    }
}

TEST_F(EmTest, ProportionalFollowsDemand)
{
    // Heat up blade 0 by co-locating another VM.
    cluster_.placeVm(1, 0);
    auto em = makeEm();
    for (size_t t = 0; t < 60; ++t) {
        cluster_.evaluateTick(t);
        em.observe(t);
    }
    em.step(50);
    const auto &grants = em.lastGrants();
    EXPECT_GT(grants[0], grants[2]);
    EXPECT_GT(grants[0], grants[3]);
    // Blade 1 is now empty (its VM moved to blade 0) and idles: smallest
    // grant, but never below its floor.
    const auto &m = cluster_.server(1).model();
    EXPECT_GE(grants[1],
              m.idlePower(m.pstates().slowestIndex()) - 1e-9);
}

TEST_F(EmTest, MinWithGmRecommendation)
{
    auto em = makeEm();
    EXPECT_DOUBLE_EQ(em.effectiveCap(), cluster_.capEnc(0));
    em.setBudget(cluster_.capEnc(0) * 0.5);
    EXPECT_DOUBLE_EQ(em.effectiveCap(), cluster_.capEnc(0) * 0.5);
    em.setBudget(cluster_.capEnc(0) * 2.0);
    EXPECT_DOUBLE_EQ(em.effectiveCap(), cluster_.capEnc(0));
    EXPECT_DEATH(em.setBudget(0.0), "budget");
}

TEST_F(EmTest, ViolationExposureAgainstStaticCap)
{
    auto em = makeEm();
    cluster_.evaluateTick(0);
    em.observe(0);
    EXPECT_DOUBLE_EQ(em.epochViolationRate(), 0.0);
    // A tighter dynamic budget does not create *physical* violations.
    em.setBudget(1.0e-3 + 1.0);
    em.observe(1);
    EXPECT_DOUBLE_EQ(em.epochViolationRate(), 0.0);
}

TEST_F(EmTest, HistoryPolicyUsesLongHorizon)
{
    EnclosureManager::Params p;
    p.policy = controllers::DivisionPolicy::History;
    auto em = makeEm(p);
    for (size_t t = 0; t < 30; ++t) {
        cluster_.evaluateTick(t);
        em.observe(t);
    }
    em.step(25);
    double total = std::accumulate(em.lastGrants().begin(),
                                   em.lastGrants().end(), 0.0);
    EXPECT_NEAR(total, em.effectiveCap(), 1e-6);
}

TEST_F(EmTest, PriorityPolicyValidation)
{
    EnclosureManager::Params p;
    p.policy = controllers::DivisionPolicy::Priority;
    EXPECT_DEATH(makeEm(p), "one priority per blade");
    p.priorities = {3, 2, 1, 0};
    auto em = makeEm(p);
    for (size_t t = 0; t < 30; ++t) {
        cluster_.evaluateTick(t);
        em.observe(t);
    }
    em.step(25);
    // Highest priority blade gets the biggest grant under a tight cap.
    EXPECT_GE(em.lastGrants()[0], em.lastGrants()[3]);
}

TEST_F(EmTest, ConstructionValidation)
{
    std::vector<ServerManager *> blades;
    EXPECT_DEATH(EnclosureManager(cluster_, 0, blades, 100.0, {}),
                 "no blades");
    blades = {sms_[0].get()};
    EXPECT_DEATH(EnclosureManager(cluster_, 0, blades, 0.0, {}),
                 "static cap");
    blades = {nullptr};
    EXPECT_DEATH(EnclosureManager(cluster_, 0, blades, 100.0, {}),
                 "null blade");
}

TEST_F(EmTest, ActorInterface)
{
    auto em = makeEm();
    EXPECT_EQ(em.name(), "EM/0");
    EXPECT_EQ(em.period(), 25u);
    EXPECT_EQ(em.enclosureId(), 0u);
    EXPECT_DOUBLE_EQ(em.staticCap(), cluster_.capEnc(0));
}

} // namespace
