/**
 * @file
 * Tests for the Cooling Manager: temperature tracking, energy
 * accounting, and composition with the power-management stack (less IT
 * power must mean less cooling energy, with no explicit interface).
 */

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "controllers/cooling_manager.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "trace/workload.h"

namespace {

using namespace nps;
using controllers::CoolingManager;

sim::CoolingZoneParams
zoneParams()
{
    sim::CoolingZoneParams p;
    p.thermal_mass = 300.0;
    p.crac_capacity = 2000.0;
    return p;
}

/** One zone covering the whole small cluster. */
std::vector<sim::CoolingZone>
wholeClusterZone(const sim::Cluster &cluster)
{
    std::vector<sim::ServerId> members;
    for (const auto &srv : cluster.servers())
        members.push_back(srv.id());
    std::vector<sim::CoolingZone> zones;
    zones.emplace_back("room", std::move(members), zoneParams());
    return zones;
}

TEST(CoolingManager, TracksTemperatureTarget)
{
    auto cluster = nps_test::smallCluster(0.4);
    CoolingManager cm(cluster, wholeClusterZone(cluster), {});
    for (size_t t = 0; t < 4000; ++t) {
        cluster.evaluateTick(t);
        cm.observe(t);
        if (t > 0 && t % cm.period() == 0)
            cm.step(t);
    }
    EXPECT_NEAR(cm.hottestZone(), 27.0, 1.5);
    EXPECT_FALSE(cm.anyRedline());
    EXPECT_GT(cm.coolingEnergy(), 0.0);
}

TEST(CoolingManager, RespondsToLoadStep)
{
    auto cluster = nps_test::smallCluster(0.2);
    CoolingManager cm(cluster, wholeClusterZone(cluster), {});
    auto drive = [&](size_t from, size_t to) {
        for (size_t t = from; t < to; ++t) {
            cluster.evaluateTick(t);
            cm.observe(t);
            if (t > 0 && t % cm.period() == 0)
                cm.step(t);
        }
    };
    drive(0, 2000);
    double cool_power = cm.lastCoolingPower();
    // Demand triples: the CRACs must ramp extraction (and electricity).
    for (auto &vm : cluster.vms())
        vm = sim::VirtualMachine(vm.id(),
                                 nps_test::flatTrace("hot", 0.8, 8));
    drive(2000, 5000);
    EXPECT_GT(cm.lastCoolingPower(), cool_power * 1.2);
    EXPECT_NEAR(cm.hottestZone(), 27.0, 2.0);
}

TEST(CoolingManager, LessItPowerMeansLessCoolingEnergy)
{
    // The composition claim: the cooling side follows the power side
    // with no explicit coordination interface.
    auto run = [&](bool managed) {
        trace::GeneratorConfig gen;
        gen.trace_length = 1440;
        trace::WorkloadLibrary lib(gen);
        core::Coordinator c(managed ? core::coordinatedConfig()
                                    : core::baselineConfig(),
                            sim::Topology{12, 2, 4}, model::bladeA(),
                            [&] {
                                auto t = lib.mix(trace::Mix::Mid60);
                                t.resize(12);
                                return t;
                            }());
        std::vector<sim::ServerId> members;
        for (const auto &srv : c.cluster().servers())
            members.push_back(srv.id());
        std::vector<sim::CoolingZone> zones;
        zones.emplace_back("room", std::move(members), zoneParams());
        auto cm = std::make_shared<CoolingManager>(
            c.cluster(), std::move(zones), CoolingManager::Params{});
        c.engine().addActor(cm);
        c.run(1440);
        return std::pair<double, double>(c.summary().energy,
                                         cm->coolingEnergy());
    };
    auto [it_managed, cool_managed] = run(true);
    auto [it_base, cool_base] = run(false);
    EXPECT_LT(it_managed, it_base);
    EXPECT_LT(cool_managed, cool_base * 0.95);
}

TEST(CoolingManager, ConstructionValidation)
{
    auto cluster = nps_test::smallCluster(0.3);
    EXPECT_DEATH(CoolingManager(cluster, {}, {}), "no cooling zones");

    std::vector<sim::CoolingZone> bad;
    bad.emplace_back("z", std::vector<sim::ServerId>{99}, zoneParams());
    EXPECT_DEATH(CoolingManager(cluster, std::move(bad), {}),
                 "outside the cluster");

    std::vector<sim::CoolingZone> zone2;
    zone2.emplace_back("z", std::vector<sim::ServerId>{0}, zoneParams());
    CoolingManager::Params p;
    p.target_c = 50.0;  // above the 35 C redline
    EXPECT_DEATH(CoolingManager(cluster, std::move(zone2), p),
                 "redline");

    std::vector<sim::CoolingZone> zone3;
    zone3.emplace_back("z", std::vector<sim::ServerId>{0}, zoneParams());
    CoolingManager::Params q;
    q.gain = 0.0;
    EXPECT_DEATH(CoolingManager(cluster, std::move(zone3), q), "gain");
}

TEST(CoolingManager, ActorInterface)
{
    auto cluster = nps_test::smallCluster(0.3);
    CoolingManager cm(cluster, wholeClusterZone(cluster), {});
    EXPECT_EQ(cm.name(), "CM");
    EXPECT_EQ(cm.period(), 10u);
    EXPECT_EQ(cm.zones().size(), 1u);
}

} // namespace
