/**
 * @file
 * Tests for the Server Manager: budget-min semantics, the nested
 * (coordinated) capping loop driving power under the cap through the
 * EC's reference, the solo direct-P-state mode, and the violation
 * exposure interface.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/fixtures.h"
#include "controllers/server_manager.h"

namespace {

using namespace nps;
using controllers::EfficiencyController;
using controllers::ServerManager;
using controllers::ViolationTracker;

class SmTest : public ::testing::Test
{
  protected:
    SmTest()
        : spec_(std::make_shared<const model::MachineSpec>(
              model::bladeA())),
          server_(0, spec_, 0.10, 0.10)
    {
    }

    void
    host(double demand)
    {
        vms_.clear();
        if (!server_.vms().empty())
            server_.removeVm(0);
        vms_.emplace_back(0, nps_test::flatTrace("vm", demand, 4));
        server_.addVm(0);
    }

    /** Run the nested EC+SM stack for n ticks. */
    void
    run(EfficiencyController &ec, ServerManager &sm, int n)
    {
        for (int t = 0; t < n; ++t) {
            auto tick = static_cast<size_t>(t);
            server_.evaluate(tick, vms_);
            sm.observe(tick + 1);
            if ((t + 1) % static_cast<int>(sm.period()) == 0)
                sm.step(tick + 1);
            ec.step(tick + 1);
        }
        server_.evaluate(static_cast<size_t>(n), vms_);
    }

    std::shared_ptr<const model::MachineSpec> spec_;
    sim::Server server_;
    std::vector<sim::VirtualMachine> vms_;
};

TEST_F(SmTest, BudgetMinSemanticsCoordinated)
{
    EfficiencyController ec(server_, {});
    ServerManager sm(server_, &ec, 76.5, {});
    EXPECT_DOUBLE_EQ(sm.effectiveCap(), 76.5);
    sm.setBudget(60.0);
    EXPECT_DOUBLE_EQ(sm.effectiveCap(), 60.0);
    sm.setBudget(100.0);
    // Coordinated: min(static, recommendation) keeps the local limit.
    EXPECT_DOUBLE_EQ(sm.effectiveCap(), 76.5);
    EXPECT_DOUBLE_EQ(sm.staticCap(), 76.5);
}

TEST_F(SmTest, UncoordinatedAdoptsRecommendationVerbatim)
{
    ServerManager::Params p;
    p.mode = ServerManager::Mode::DirectPState;
    ServerManager sm(server_, nullptr, 76.5, p);
    sm.setBudget(100.0);
    // The solo capper trusts its console even above the physical limit —
    // this is exactly how uncoordinated stacks leak violations.
    EXPECT_DOUBLE_EQ(sm.effectiveCap(), 100.0);
}

TEST_F(SmTest, CoordinatedCappingMeetsBudget)
{
    // Demand high enough that unmanaged power (P0, util ~1.0) violates a
    // 60 W cap; the nested stack must settle at or below the cap.
    host(0.85);
    EfficiencyController ec(server_, {});
    ServerManager sm(server_, &ec, 60.0, {});
    run(ec, sm, 600);
    EXPECT_LE(server_.lastPower(), 60.0 + 1.0);
    // And the EC's reference was raised above its floor to get there.
    EXPECT_GT(ec.reference(), 0.75);
}

TEST_F(SmTest, CapReleasesWhenDemandDrops)
{
    host(0.85);
    EfficiencyController ec(server_, {});
    ServerManager sm(server_, &ec, 60.0, {});
    run(ec, sm, 600);
    double throttled_freq = server_.frequencyMhz();
    host(0.10);
    run(ec, sm, 2000);
    // Back under budget: the reference decays to its floor and the EC
    // returns to efficiency tracking.
    EXPECT_NEAR(ec.reference(), 0.75, 0.02);
    (void)throttled_freq;
}

TEST_F(SmTest, DirectModeClampsImmediately)
{
    host(0.9);
    ServerManager::Params p;
    p.mode = ServerManager::Mode::DirectPState;
    ServerManager sm(server_, nullptr, 60.0, p);
    server_.evaluate(0, vms_);
    EXPECT_GT(server_.lastPower(), 60.0);
    sm.step(1);
    // One step must jump straight to a state predicted to respect the
    // cap for this load (hardware-capper behavior).
    server_.evaluate(1, vms_);
    EXPECT_LE(server_.lastPower(), 60.0 + 1e-9);
}

TEST_F(SmTest, DirectModeUnthrottlesWithMargin)
{
    host(0.2);
    ServerManager::Params p;
    p.mode = ServerManager::Mode::DirectPState;
    ServerManager sm(server_, nullptr, 76.5, p);
    server_.setPState(4);
    server_.evaluate(0, vms_);
    sm.step(1);
    EXPECT_EQ(server_.pstate(), 3u);  // one step back up per interval
}

TEST_F(SmTest, ViolationExposure)
{
    host(0.9);
    EfficiencyController ec(server_, {});
    ServerManager sm(server_, &ec, 60.0, {});
    // Power starts above the cap: early observations record violations.
    server_.evaluate(0, vms_);
    for (int t = 1; t <= 10; ++t)
        sm.observe(static_cast<size_t>(t));
    EXPECT_GT(sm.epochViolationRate(), 0.99);
    EXPECT_GT(sm.lifetimeViolationRate(), 0.99);
    sm.drainEpoch();
    EXPECT_DOUBLE_EQ(sm.epochViolationRate(), 0.0);
    EXPECT_GT(sm.lifetimeViolationRate(), 0.99);
}

TEST_F(SmTest, ViolationsMeasuredAgainstStaticCap)
{
    host(0.5);
    EfficiencyController ec(server_, {});
    ServerManager sm(server_, &ec, 76.5, {});
    server_.evaluate(0, vms_);
    // A tight dynamic grant below current power is not a *physical*
    // violation; the exposed interface reports against CAP_LOC.
    sm.setBudget(10.0);
    sm.observe(1);
    EXPECT_DOUBLE_EQ(sm.epochViolationRate(), 0.0);
}

TEST_F(SmTest, OffServersNotRecorded)
{
    EfficiencyController ec(server_, {});
    ServerManager sm(server_, &ec, 60.0, {});
    server_.powerOff();
    for (int t = 0; t < 5; ++t)
        sm.observe(static_cast<size_t>(t));
    EXPECT_DOUBLE_EQ(sm.epochViolationRate(), 0.0);
    sm.step(5);  // must be a no-op, not a crash
}

TEST_F(SmTest, CoordinatedRequiresEc)
{
    EXPECT_DEATH(ServerManager(server_, nullptr, 60.0, {}),
                 "requires a nested EC");
}

TEST_F(SmTest, BadBudgetsDie)
{
    EfficiencyController ec(server_, {});
    EXPECT_DEATH(ServerManager(server_, &ec, 0.0, {}), "static cap");
    ServerManager sm(server_, &ec, 60.0, {});
    EXPECT_DEATH(sm.setBudget(-5.0), "budget");
}

TEST(ViolationTrackerTest, RatesAndDrain)
{
    ViolationTracker t;
    EXPECT_DOUBLE_EQ(t.epochViolationRate(), 0.0);
    t.record(true);
    t.record(false);
    t.record(false);
    t.record(false);
    EXPECT_DOUBLE_EQ(t.epochViolationRate(), 0.25);
    EXPECT_DOUBLE_EQ(t.lifetimeViolationRate(), 0.25);
    t.drainEpoch();
    t.record(true);
    EXPECT_DOUBLE_EQ(t.epochViolationRate(), 1.0);
    EXPECT_DOUBLE_EQ(t.lifetimeViolationRate(), 0.4);
}

} // namespace
