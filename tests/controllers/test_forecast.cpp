/**
 * @file
 * Tests for the demand forecasters.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "controllers/forecast.h"

namespace {

using namespace nps::controllers;

DemandForecaster
make(ForecastMethod method, double alpha = 0.4, double beta = 0.2)
{
    DemandForecaster::Params p;
    p.method = method;
    p.alpha = alpha;
    p.beta = beta;
    return DemandForecaster(p);
}

TEST(Forecast, EmptyForecastsZero)
{
    auto f = make(ForecastMethod::Ewma);
    EXPECT_DOUBLE_EQ(f.forecast(1), 0.0);
    EXPECT_EQ(f.observations(), 0u);
}

TEST(Forecast, LastValueTracksExactly)
{
    auto f = make(ForecastMethod::LastValue);
    f.observe(0.3);
    f.observe(0.7);
    EXPECT_DOUBLE_EQ(f.forecast(1), 0.7);
    EXPECT_DOUBLE_EQ(f.forecast(5), 0.7);
}

TEST(Forecast, EwmaConvergesToConstant)
{
    auto f = make(ForecastMethod::Ewma, 0.3);
    for (int i = 0; i < 100; ++i)
        f.observe(0.6);
    EXPECT_NEAR(f.forecast(1), 0.6, 1e-9);
}

TEST(Forecast, EwmaSmoothsSteps)
{
    auto f = make(ForecastMethod::Ewma, 0.5);
    f.observe(0.0);
    f.observe(1.0);
    EXPECT_DOUBLE_EQ(f.forecast(1), 0.5);
    f.observe(1.0);
    EXPECT_DOUBLE_EQ(f.forecast(1), 0.75);
}

TEST(Forecast, HoltCapturesLinearTrend)
{
    auto f = make(ForecastMethod::HoltLinear, 0.6, 0.4);
    for (int i = 0; i <= 50; ++i)
        f.observe(0.1 + 0.01 * i);
    // After convergence the one-step forecast is close to the next
    // value and the trend estimate close to the true slope.
    EXPECT_NEAR(f.trend(), 0.01, 0.003);
    EXPECT_NEAR(f.forecast(1), 0.1 + 0.01 * 51, 0.01);
    // Multi-step extrapolation scales with the horizon.
    EXPECT_NEAR(f.forecast(10) - f.forecast(1), 9.0 * f.trend(), 1e-9);
}

TEST(Forecast, HoltBeatsEwmaOnRamps)
{
    auto holt = make(ForecastMethod::HoltLinear, 0.5, 0.3);
    auto ewma = make(ForecastMethod::Ewma, 0.5);
    double holt_err = 0.0, ewma_err = 0.0;
    for (int i = 0; i < 60; ++i) {
        double value = 0.2 + 0.005 * i;
        if (i > 10) {
            holt_err += std::fabs(holt.forecast(1) - value);
            ewma_err += std::fabs(ewma.forecast(1) - value);
        }
        holt.observe(value);
        ewma.observe(value);
    }
    EXPECT_LT(holt_err, ewma_err);
}

TEST(Forecast, ClampedAtZero)
{
    auto f = make(ForecastMethod::HoltLinear, 0.9, 0.9);
    f.observe(1.0);
    f.observe(0.1);  // steep downward trend
    EXPECT_GE(f.forecast(50), 0.0);
}

TEST(Forecast, Reset)
{
    auto f = make(ForecastMethod::Ewma);
    f.observe(0.5);
    f.reset();
    EXPECT_EQ(f.observations(), 0u);
    EXPECT_DOUBLE_EQ(f.forecast(1), 0.0);
}

TEST(Forecast, BadParamsDie)
{
    DemandForecaster::Params p;
    p.alpha = 0.0;
    EXPECT_DEATH(DemandForecaster f(p), "alpha");
    DemandForecaster::Params q;
    q.beta = 1.5;
    EXPECT_DEATH(DemandForecaster f(q), "beta");
}

TEST(Forecast, ZeroHorizonDies)
{
    auto f = make(ForecastMethod::Ewma);
    f.observe(0.5);
    EXPECT_DEATH(f.forecast(0), "horizon");
}

TEST(Forecast, MethodNames)
{
    EXPECT_STREQ(forecastMethodName(ForecastMethod::LastValue), "last");
    EXPECT_STREQ(forecastMethodName(ForecastMethod::Ewma), "ewma");
    EXPECT_STREQ(forecastMethodName(ForecastMethod::HoltLinear), "holt");
}

} // namespace
