/**
 * @file
 * Tests for the Efficiency Controller on a simulated server: tracking,
 * quantization, the reference channel, and the energy-delay variant.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/fixtures.h"
#include "controllers/efficiency.h"

namespace {

using namespace nps;
using controllers::EfficiencyController;
using controllers::EcObjective;

class EcTest : public ::testing::Test
{
  protected:
    EcTest()
        : spec_(std::make_shared<const model::MachineSpec>(
              model::bladeA())),
          server_(0, spec_, 0.10, 0.10)
    {
    }

    /** Run EC/server alternation for n ticks with one VM of demand d. */
    void
    runWith(EfficiencyController &ec, double demand, int n)
    {
        if (vms_.empty()) {
            vms_.emplace_back(0, nps_test::flatTrace("vm", demand, 4));
            server_.addVm(0);
        } else {
            vms_[0] = sim::VirtualMachine(
                0, nps_test::flatTrace("vm", demand, 4));
        }
        for (int t = 0; t < n; ++t) {
            server_.evaluate(static_cast<size_t>(t), vms_);
            ec.step(static_cast<size_t>(t + 1));
        }
        server_.evaluate(static_cast<size_t>(n), vms_);
    }

    std::shared_ptr<const model::MachineSpec> spec_;
    sim::Server server_;
    std::vector<sim::VirtualMachine> vms_;
};

TEST_F(EcTest, ThrottlesLowUtilizationTowardTarget)
{
    EfficiencyController ec(server_, {});
    runWith(ec, 0.2, 200);
    // Demand 0.22 at 75% target wants f = 0.293: below the slowest
    // state, so the EC must sit at the deepest P-state.
    EXPECT_EQ(server_.pstate(), spec_->pstates().slowestIndex());
    EXPECT_GT(server_.lastApparentUtil(), 0.22);
}

TEST_F(EcTest, SettlesIntoQuantizationBandAroundTarget)
{
    EfficiencyController ec(server_, {});
    // Demand 0.6 (load 0.66): the continuous target f* = 880 MHz lies
    // between P1 (833) and P0 (1000), so the quantized loop settles into
    // a bounded limit cycle spanning exactly those two states — it must
    // neither run away to the extremes nor lose work.
    runWith(ec, 0.6, 400);
    for (int t = 0; t < 50; ++t) {
        runWith(ec, 0.6, 1);
        EXPECT_LE(server_.pstate(), 1u);
        EXPECT_GE(ec.continuousFreq(), 750.0);
        EXPECT_LE(ec.continuousFreq(), 1000.0);
        EXPECT_NEAR(server_.last().served_useful, 0.6, 1e-9);
    }
}

TEST_F(EcTest, RampsUpUnderLoad)
{
    EfficiencyController ec(server_, {});
    runWith(ec, 0.2, 200);
    ASSERT_EQ(server_.pstate(), spec_->pstates().slowestIndex());
    runWith(ec, 0.85, 50);
    EXPECT_EQ(server_.pstate(), 0u);
    EXPECT_NEAR(server_.lastApparentUtil(), 0.85 * 1.1, 1e-9);
}

TEST_F(EcTest, ReferenceChannelChangesOperatingPoint)
{
    EfficiencyController ec(server_, {});
    runWith(ec, 0.5, 300);
    double f_at_75 = ec.continuousFreq();
    // An outer loop (the SM) raises the target: the EC must shrink the
    // container further.
    ec.setReference(0.95);
    runWith(ec, 0.5, 300);
    EXPECT_LT(ec.continuousFreq(), f_at_75);
    EXPECT_NEAR(ec.continuousFreq(), 0.55 / 0.95 * 1000.0, 30.0);
}

TEST_F(EcTest, IdleServerDoesNotMove)
{
    EfficiencyController ec(server_, {});
    // No VMs: utilization 0, consumed frequency 0 -> self-tuning gain 0.
    for (int t = 0; t < 20; ++t) {
        server_.evaluate(static_cast<size_t>(t), vms_);
        ec.step(static_cast<size_t>(t + 1));
    }
    EXPECT_EQ(server_.pstate(), 0u);
    EXPECT_DOUBLE_EQ(ec.continuousFreq(), 1000.0);
}

TEST_F(EcTest, OffServerResetsToFullSpeed)
{
    EfficiencyController ec(server_, {});
    runWith(ec, 0.2, 200);
    EXPECT_LT(ec.continuousFreq(), 1000.0);
    // Drain + power off; the EC must reset its state like firmware does.
    server_.removeVm(0);
    vms_.clear();
    server_.powerOff();
    ec.step(300);
    EXPECT_DOUBLE_EQ(ec.continuousFreq(), 1000.0);
}

TEST_F(EcTest, QuantizeNearestOption)
{
    EfficiencyController::Params p;
    p.quantize_up = false;
    EfficiencyController ec(server_, p);
    runWith(ec, 0.6, 400);
    // f* = 880: nearest state is 833 (P1), not 1000.
    EXPECT_EQ(server_.pstate(), 1u);
}

TEST_F(EcTest, UnstableLambdaWarnsButRuns)
{
    EfficiencyController::Params p;
    p.lambda = 5.0;  // far beyond 1/r_ref
    EfficiencyController ec(server_, p);
    runWith(ec, 0.5, 50);  // must not crash; P-state stays in range
    EXPECT_LT(server_.pstate(), spec_->pstates().size());
}

TEST_F(EcTest, BadReferenceDies)
{
    EfficiencyController::Params p;
    p.r_ref = 1.5;
    EXPECT_DEATH(EfficiencyController(server_, p), "out of");
}

TEST_F(EcTest, EnergyDelayPicksEfficientState)
{
    EfficiencyController::Params p;
    p.objective = EcObjective::EnergyDelay;
    EfficiencyController ec(server_, p);
    runWith(ec, 0.3, 50);
    // The chosen state minimizes power/relSpeed among states whose
    // apparent utilization stays under the reference.
    const auto &m = server_.model();
    double demand = server_.lastRealUtil();
    size_t chosen = server_.pstate();
    double chosen_score = m.powerForDemand(chosen, demand) /
                          m.pstates().relSpeed(chosen);
    for (size_t q = 0; q < m.pstates().size(); ++q) {
        if (m.apparentUtil(q, demand) <= 0.75) {
            EXPECT_GE(m.powerForDemand(q, demand) /
                          m.pstates().relSpeed(q) + 1e-12, chosen_score);
        }
    }
}

TEST_F(EcTest, ActorInterface)
{
    EfficiencyController ec(server_, {});
    EXPECT_EQ(ec.name(), "EC/0");
    EXPECT_EQ(ec.period(), 1u);
    EXPECT_DOUBLE_EQ(ec.reference(), 0.75);
}

} // namespace
