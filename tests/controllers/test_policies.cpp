/**
 * @file
 * Tests for the budget-division policies: the safety guarantees every
 * policy must provide, plus each policy's characteristic ordering.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "controllers/policies.h"

namespace {

using namespace nps::controllers;
using nps::util::Rng;

DivisionInput
basicInput()
{
    DivisionInput in;
    in.budget = 100.0;
    in.demands = {10.0, 30.0, 60.0};
    in.maxima = {80.0, 80.0, 80.0};
    in.floors = {5.0, 5.0, 5.0};
    in.priorities = {0, 1, 2};
    return in;
}

double
sum(const std::vector<double> &v)
{
    return std::accumulate(v.begin(), v.end(), 0.0);
}

/** Safety properties every policy must satisfy on every input. */
void
checkSafety(DivisionPolicy policy, const DivisionInput &in)
{
    Rng rng(7);
    auto g = divideBudget(policy, in, &rng);
    ASSERT_EQ(g.size(), in.demands.size());
    EXPECT_LE(sum(g), in.budget + 1e-9) << policyName(policy);
    double total_floor = std::accumulate(in.floors.begin(),
                                         in.floors.end(), 0.0);
    for (size_t i = 0; i < g.size(); ++i) {
        EXPECT_LE(g[i], in.maxima[i] + 1e-9) << policyName(policy);
        EXPECT_GE(g[i], -1e-9) << policyName(policy);
        if (total_floor <= in.budget) {
            EXPECT_GE(g[i], in.floors[i] - 1e-9) << policyName(policy);
        }
    }
}

class PolicySafety : public ::testing::TestWithParam<DivisionPolicy>
{
};

TEST_P(PolicySafety, BasicInput)
{
    checkSafety(GetParam(), basicInput());
}

TEST_P(PolicySafety, ScarceBudget)
{
    auto in = basicInput();
    in.budget = 20.0;
    in.priorities = {2, 1, 0};
    checkSafety(GetParam(), in);
}

TEST_P(PolicySafety, AbundantBudget)
{
    auto in = basicInput();
    in.budget = 1000.0;
    in.priorities = {2, 1, 0};
    checkSafety(GetParam(), in);
}

TEST_P(PolicySafety, ZeroDemands)
{
    auto in = basicInput();
    in.demands = {0.0, 0.0, 0.0};
    in.priorities = {0, 0, 0};
    checkSafety(GetParam(), in);
}

TEST_P(PolicySafety, InfeasibleFloorsScaledDown)
{
    auto in = basicInput();
    in.budget = 10.0;  // below the 15.0 total floor
    in.priorities = {0, 1, 2};
    Rng rng(9);
    auto g = divideBudget(GetParam(), in, &rng);
    EXPECT_NEAR(sum(g), 10.0, 1e-9);
    for (size_t i = 0; i < g.size(); ++i)
        EXPECT_LT(g[i], in.floors[i]);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySafety,
    ::testing::Values(DivisionPolicy::Proportional, DivisionPolicy::Equal,
                      DivisionPolicy::Priority, DivisionPolicy::Fifo,
                      DivisionPolicy::Random, DivisionPolicy::History),
    [](const auto &info) { return policyName(info.param); });

TEST(Proportional, FollowsDemandRatios)
{
    auto in = basicInput();
    auto g = divideBudget(DivisionPolicy::Proportional, in);
    // Floors (15 W) come off the top; the remaining 85 W splits
    // 10:30:60.
    EXPECT_NEAR(g[0], 5.0 + 8.5, 1e-9);
    EXPECT_NEAR(g[1], 5.0 + 25.5, 1e-9);
    EXPECT_NEAR(g[2], 5.0 + 51.0, 1e-9);
}

TEST(Proportional, RedistributesAfterMaxClamp)
{
    auto in = basicInput();
    in.maxima = {80.0, 80.0, 40.0};
    auto g = divideBudget(DivisionPolicy::Proportional, in);
    EXPECT_NEAR(g[2], 40.0, 1e-9);
    // The leftover flows to the other children; total budget is used.
    EXPECT_NEAR(g[0] + g[1] + g[2], 100.0, 1e-9);
    EXPECT_GT(g[1], 5.0 + 28.5);
}

TEST(Equal, SplitsEvenly)
{
    auto in = basicInput();
    auto g = divideBudget(DivisionPolicy::Equal, in);
    EXPECT_NEAR(g[0], 100.0 / 3.0, 1e-9);
    EXPECT_NEAR(g[1], 100.0 / 3.0, 1e-9);
    EXPECT_NEAR(g[2], 100.0 / 3.0, 1e-9);
}

TEST(Priority, HighPriorityFirst)
{
    auto in = basicInput();
    in.budget = 90.0;
    in.priorities = {0, 5, 1};
    auto g = divideBudget(DivisionPolicy::Priority, in);
    // Child 1 (highest priority) gets its max; child 2 next; child 0
    // the scraps (its floor).
    EXPECT_NEAR(g[1], 80.0, 1e-9);
    EXPECT_NEAR(g[2], 5.0, 1e-9);
    EXPECT_NEAR(g[0], 5.0, 1e-9);
}

TEST(Priority, NeedsPriorities)
{
    auto in = basicInput();
    in.priorities.clear();
    EXPECT_DEATH(divideBudget(DivisionPolicy::Priority, in),
                 "priorities");
}

TEST(Fifo, IndexOrderGreedy)
{
    auto in = basicInput();
    in.budget = 90.0;
    auto g = divideBudget(DivisionPolicy::Fifo, in);
    EXPECT_NEAR(g[0], 80.0, 1e-9);
    EXPECT_NEAR(g[1], 5.0, 1e-9);
    EXPECT_NEAR(g[2], 5.0, 1e-9);
}

TEST(Random, NeedsRng)
{
    auto in = basicInput();
    EXPECT_DEATH(divideBudget(DivisionPolicy::Random, in), "Rng");
}

TEST(Random, DeterministicGivenSeed)
{
    auto in = basicInput();
    in.budget = 90.0;
    Rng a(3), b(3);
    EXPECT_EQ(divideBudget(DivisionPolicy::Random, in, &a),
              divideBudget(DivisionPolicy::Random, in, &b));
}

TEST(History, SameMathAsProportional)
{
    auto in = basicInput();
    EXPECT_EQ(divideBudget(DivisionPolicy::History, in),
              divideBudget(DivisionPolicy::Proportional, in));
}

TEST(DivideBudget, BadInputsDie)
{
    DivisionInput empty;
    EXPECT_DEATH(divideBudget(DivisionPolicy::Equal, empty),
                 "no children");

    auto in = basicInput();
    in.maxima.pop_back();
    EXPECT_DEATH(divideBudget(DivisionPolicy::Equal, in), "sizes");

    auto neg = basicInput();
    neg.budget = -1.0;
    EXPECT_DEATH(divideBudget(DivisionPolicy::Equal, neg), "negative");

    auto bad_floor = basicInput();
    bad_floor.floors[0] = 200.0;  // above max
    EXPECT_DEATH(divideBudget(DivisionPolicy::Equal, bad_floor),
                 "floor");
}

TEST(DivideBudget, PolicyNames)
{
    EXPECT_STREQ(policyName(DivisionPolicy::Proportional), "prop");
    EXPECT_STREQ(policyName(DivisionPolicy::Random), "random");
}

} // namespace
