/**
 * @file
 * Tests for the Memory Manager (the Section 6 MIMO second actuator).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/fixtures.h"
#include "controllers/memory_manager.h"

namespace {

using namespace nps;
using controllers::MemoryManager;

class MmTest : public ::testing::Test
{
  protected:
    MmTest()
        : spec_(std::make_shared<const model::MachineSpec>(
              model::bladeA())),
          server_(0, spec_, 0.10, 0.10)
    {
    }

    void
    host(double demand)
    {
        if (!server_.vms().empty())
            server_.removeVm(0);
        vms_.clear();
        vms_.emplace_back(0, nps_test::flatTrace("vm", demand, 8));
        server_.addVm(0);
    }

    void
    run(MemoryManager &mm, int steps)
    {
        for (int i = 0; i < steps; ++i) {
            server_.evaluate(static_cast<size_t>(i), vms_);
            mm.step(static_cast<size_t>(i + 1));
        }
        server_.evaluate(static_cast<size_t>(steps), vms_);
    }

    std::shared_ptr<const model::MachineSpec> spec_;
    sim::Server server_;
    std::vector<sim::VirtualMachine> vms_;
};

TEST_F(MmTest, EngagesAfterPatienceOnQuietServer)
{
    host(0.2);
    MemoryManager mm(server_, {});
    run(mm, 2);
    EXPECT_FALSE(server_.memLowPower());  // patience not yet reached
    run(mm, 2);
    EXPECT_TRUE(server_.memLowPower());
    EXPECT_EQ(mm.engagements(), 1u);
}

TEST_F(MmTest, EngagingTrimsPower)
{
    host(0.2);
    MemoryManager mm(server_, {});
    server_.evaluate(0, vms_);
    double before = server_.lastPower();
    run(mm, 5);
    EXPECT_LT(server_.lastPower(), before);
}

TEST_F(MmTest, ReleasesUnderLoadWithHysteresis)
{
    host(0.2);
    MemoryManager mm(server_, {});
    run(mm, 5);
    ASSERT_TRUE(server_.memLowPower());
    // Utilization between the thresholds: hysteresis holds the mode.
    host(0.6);
    run(mm, 5);
    EXPECT_TRUE(server_.memLowPower());
    // Heavy load: release.
    host(0.9);
    run(mm, 2);
    EXPECT_FALSE(server_.memLowPower());
}

TEST_F(MmTest, BurstResetsPatience)
{
    host(0.2);
    MemoryManager mm(server_, {});
    run(mm, 2);
    host(0.9);  // burst interrupts the quiet streak
    run(mm, 1);
    host(0.2);
    run(mm, 2);
    EXPECT_FALSE(server_.memLowPower());  // patience restarted
    run(mm, 1);
    EXPECT_TRUE(server_.memLowPower());
}

TEST_F(MmTest, OffServerClearsMode)
{
    host(0.2);
    MemoryManager mm(server_, {});
    run(mm, 5);
    ASSERT_TRUE(server_.memLowPower());
    server_.removeVm(0);
    server_.powerOff();
    mm.step(100);
    EXPECT_FALSE(server_.memLowPower());
}

TEST_F(MmTest, BadThresholdsDie)
{
    MemoryManager::Params p;
    p.engage_below = 0.9;
    p.release_above = 0.8;
    EXPECT_DEATH(MemoryManager(server_, p), "threshold");
}

TEST_F(MmTest, ActorInterface)
{
    MemoryManager mm(server_, {});
    EXPECT_EQ(mm.name(), "MM/0");
    EXPECT_EQ(mm.period(), 10u);
}

} // namespace
