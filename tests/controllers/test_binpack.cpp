/**
 * @file
 * Tests for the greedy bin-packing placement optimizer: consolidation,
 * every constraint class (capacity, local/enclosure/group power), the
 * migration-avoiding tie-break, and infeasibility handling.
 */

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "controllers/binpack.h"
#include "model/machine.h"

namespace {

using namespace nps::controllers;
using nps::model::PowerModel;
using nps::sim::kNoServer;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr unsigned kNoEnc = std::numeric_limits<unsigned>::max();

class BinpackTest : public ::testing::Test
{
  protected:
    BinpackTest() : model_(nps::model::bladeA().pstates()) {}

    PackBin
    bin(unsigned id, unsigned enclosure = kNoEnc, bool on = true)
    {
        PackBin b;
        b.id = id;
        b.power = &model_;
        b.enclosure = enclosure;
        b.on = on;
        b.capacity = 0.9;
        b.power_cap = kInf;
        b.unused_watts = 2.0;
        b.util_limit = 0.75;
        return b;
    }

    PackItem
    item(unsigned vm, double load, unsigned current)
    {
        return PackItem{vm, load, current};
    }

    PowerModel model_;
};

TEST_F(BinpackTest, EstimateBinPowerUnusedAndLoaded)
{
    auto b = bin(0);
    EXPECT_DOUBLE_EQ(estimateBinPower(b, 0.0), 2.0);
    // Load 0.3 at util limit 0.75 -> deepest feasible state wins.
    size_t best = model_.bestStateForDemand(0.3, 0.75);
    EXPECT_DOUBLE_EQ(estimateBinPower(b, 0.3),
                     model_.powerForDemand(best, 0.3));
}

TEST_F(BinpackTest, ConsolidatesSmallItems)
{
    std::vector<PackBin> bins{bin(0), bin(1), bin(2), bin(3)};
    std::vector<PackItem> items{item(0, 0.2, 0), item(1, 0.2, 1),
                                item(2, 0.2, 2), item(3, 0.2, 3)};
    auto r = packGreedy(items, bins, {});
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.bins_used, 1u);
    // All four land on one bin.
    std::set<unsigned> used(r.assignment.begin(), r.assignment.end());
    EXPECT_EQ(used.size(), 1u);
}

TEST_F(BinpackTest, RespectsCapacity)
{
    std::vector<PackBin> bins{bin(0), bin(1)};
    std::vector<PackItem> items{item(0, 0.5, 0), item(1, 0.5, 1)};
    auto r = packGreedy(items, bins, {});
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.bins_used, 2u);  // 1.0 > 0.9 capacity
}

TEST_F(BinpackTest, RespectsLocalPowerCap)
{
    auto constrained = bin(0);
    // Cap below the power of two items together (load 0.6 at P0 ~ 67.8W
    // for Blade A) but above one item (0.3 at the best state).
    constrained.power_cap = 55.0;
    std::vector<PackBin> bins{constrained, bin(1)};
    bins[1].power_cap = 55.0;
    std::vector<PackItem> items{item(0, 0.3, 0), item(1, 0.3, 1)};
    auto r = packGreedy(items, bins, {});
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.bins_used, 2u);
}

TEST_F(BinpackTest, RespectsEnclosureCap)
{
    // Two bins in enclosure 0; enclosure cap allows only one loaded bin.
    std::vector<PackBin> bins{bin(0, 0), bin(1, 0), bin(2)};
    PackConstraints c;
    double one_loaded = estimateBinPower(bins[0], 0.5) + 2.0;
    c.enclosure_caps = {one_loaded + 1.0};
    std::vector<PackItem> items{item(0, 0.5, 0), item(1, 0.5, 1)};
    auto r = packGreedy(items, bins, c);
    EXPECT_TRUE(r.feasible);
    // One item stays in the enclosure, the other must go to bin 2.
    int in_enc = 0;
    for (auto a : r.assignment)
        in_enc += (a == 0 || a == 1) ? 1 : 0;
    EXPECT_EQ(in_enc, 1);
}

TEST_F(BinpackTest, RespectsGroupCap)
{
    std::vector<PackBin> bins{bin(0), bin(1)};
    PackConstraints c;
    // Allow only one loaded bin plus one unused bin.
    c.group_cap = estimateBinPower(bins[0], 0.5) + 2.0 + 0.5;
    std::vector<PackItem> items{item(0, 0.5, 0), item(1, 0.5, 1)};
    auto r = packGreedy(items, bins, c);
    EXPECT_FALSE(r.feasible);  // second item cannot be placed anywhere
}

TEST_F(BinpackTest, InfeasibleItemStaysPut)
{
    std::vector<PackBin> bins{bin(0), bin(1)};
    std::vector<PackItem> items{item(0, 2.0, 1)};  // beyond any capacity
    auto r = packGreedy(items, bins, {});
    EXPECT_FALSE(r.feasible);
    EXPECT_EQ(r.assignment[0], 1u);  // left on its current host
}

TEST_F(BinpackTest, PrefersCurrentHostWhenOpen)
{
    // Three items; the big one opens bin 2 (its host). The small item
    // already on bin 2 must stay there rather than migrate.
    std::vector<PackBin> bins{bin(0), bin(1), bin(2)};
    std::vector<PackItem> items{item(0, 0.5, 2), item(1, 0.3, 2),
                                item(2, 0.1, 0)};
    auto r = packGreedy(items, bins, {});
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.assignment[0], 2u);
    EXPECT_EQ(r.assignment[1], 2u);
    EXPECT_EQ(r.assignment[2], 2u);  // consolidated into the open bin
    EXPECT_EQ(r.bins_used, 1u);
}

TEST_F(BinpackTest, PrefersOnBinsOverOffBins)
{
    std::vector<PackBin> bins{bin(0, kNoEnc, false), bin(1, kNoEnc, true)};
    // Item currently on the off bin 0 (e.g. it was parked): opening
    // prefers its current host first, so give it no current host.
    std::vector<PackItem> items{item(0, 0.4, kNoServer)};
    auto r = packGreedy(items, bins, {});
    EXPECT_EQ(r.assignment[0], 1u);
}

TEST_F(BinpackTest, EstPowerAccountsUnusedBins)
{
    std::vector<PackBin> bins{bin(0), bin(1)};
    std::vector<PackItem> items{item(0, 0.2, 0)};
    auto r = packGreedy(items, bins, {});
    double expect = estimateBinPower(bins[0], 0.22) -
                    estimateBinPower(bins[0], 0.22) +
                    estimateBinPower(bins[0], 0.2) + 2.0;
    EXPECT_NEAR(r.est_power, expect, 1e-9);
}

TEST_F(BinpackTest, DuplicateBinIdsDie)
{
    std::vector<PackBin> bins{bin(0), bin(0)};
    std::vector<PackItem> items{item(0, 0.1, 0)};
    EXPECT_DEATH(packGreedy(items, bins, {}), "duplicate bin");
}

TEST_F(BinpackTest, EvaluateAssignmentPowerAndFeasibility)
{
    std::vector<PackBin> bins{bin(0), bin(1)};
    bins[0].power_cap = 50.0;
    std::vector<PackItem> items{item(0, 0.4, 0), item(1, 0.4, 0)};
    std::vector<nps::sim::ServerId> both_on_zero{0, 0};
    auto eval = evaluateAssignment(items, bins, both_on_zero, {});
    // 0.8 load on bin 0 at util limit 0.75 -> P0 power ~76 > cap 50.
    EXPECT_FALSE(eval.feasible);
    std::vector<nps::sim::ServerId> split{0, 1};
    auto eval2 = evaluateAssignment(items, bins, split, {});
    EXPECT_TRUE(eval2.feasible);
    EXPECT_LT(eval2.est_power, eval.est_power + 100.0);
}

TEST_F(BinpackTest, EvaluateAssignmentChecksGroupCap)
{
    std::vector<PackBin> bins{bin(0), bin(1)};
    std::vector<PackItem> items{item(0, 0.4, 0)};
    std::vector<nps::sim::ServerId> a{0};
    PackConstraints c;
    c.group_cap = 10.0;
    EXPECT_FALSE(evaluateAssignment(items, bins, a, c).feasible);
}

TEST_F(BinpackTest, EvaluateAssignmentSizeMismatchDies)
{
    std::vector<PackBin> bins{bin(0)};
    std::vector<PackItem> items{item(0, 0.4, 0)};
    std::vector<nps::sim::ServerId> wrong{0, 1};
    EXPECT_DEATH(evaluateAssignment(items, bins, wrong, {}), "mismatch");
}

TEST_F(BinpackTest, LargeInstanceTerminatesAndConsolidates)
{
    std::vector<PackBin> bins;
    std::vector<PackItem> items;
    for (unsigned i = 0; i < 120; ++i) {
        bins.push_back(bin(i, i / 20));
        items.push_back(item(i, 0.15 + 0.002 * (i % 40), i));
    }
    PackConstraints c;
    c.enclosure_caps.assign(6, 6.0 * 85.0 * 0.85);
    c.group_cap = 120.0 * 85.0 * 0.8;
    auto r = packGreedy(items, bins, c);
    EXPECT_TRUE(r.feasible);
    // Roughly total_load / capacity bins: ~ 21-ish of 120.
    EXPECT_LT(r.bins_used, 40u);
    EXPECT_GE(r.bins_used, 20u);
}

} // namespace
