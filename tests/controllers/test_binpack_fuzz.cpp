/**
 * @file
 * Randomized property tests for the bin-packing optimizer: over many
 * random instances, the safety invariants must hold unconditionally —
 * every item assigned (or the result flagged infeasible), no capacity
 * or power cap exceeded by the placements the packer claims feasible,
 * and the estimator consistent with the per-bin model.
 */

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "controllers/binpack.h"
#include "model/machine.h"
#include "util/random.h"

namespace {

using namespace nps::controllers;
using nps::model::PowerModel;
using nps::util::Rng;

constexpr unsigned kNoEnc = std::numeric_limits<unsigned>::max();

struct Instance
{
    std::vector<PackBin> bins;
    std::vector<PackItem> items;
    PackConstraints constraints;
};

Instance
randomInstance(Rng &rng, const PowerModel &blade, const PowerModel &server)
{
    Instance inst;
    size_t n_bins = 2 + rng.below(40);
    size_t n_enc = 1 + rng.below(4);
    bool use_caps = rng.bernoulli(0.7);

    for (unsigned b = 0; b < n_bins; ++b) {
        PackBin bin;
        bin.id = b;
        bin.power = rng.bernoulli(0.5) ? &blade : &server;
        bin.enclosure = rng.bernoulli(0.6)
                            ? static_cast<unsigned>(rng.below(n_enc))
                            : kNoEnc;
        bin.on = rng.bernoulli(0.8);
        bin.capacity = rng.uniform(0.4, 1.0);
        bin.unused_watts = rng.uniform(1.0, 30.0);
        bin.util_limit = rng.uniform(0.5, 1.0);
        if (use_caps) {
            bin.power_cap = rng.uniform(0.6, 1.1) *
                            bin.power->maxPower();
        }
        inst.bins.push_back(bin);
    }

    size_t n_items = 1 + rng.below(60);
    for (unsigned j = 0; j < n_items; ++j) {
        PackItem item;
        item.vm = j;
        item.load = rng.uniform(0.02, 1.2);
        item.current = rng.bernoulli(0.9)
                           ? static_cast<unsigned>(rng.below(n_bins))
                           : nps::sim::kNoServer;
        inst.items.push_back(item);
    }

    if (use_caps) {
        for (size_t e = 0; e < n_enc; ++e) {
            inst.constraints.enclosure_caps.push_back(
                rng.uniform(100.0, 3000.0));
        }
        if (rng.bernoulli(0.5))
            inst.constraints.group_cap = rng.uniform(500.0, 10000.0);
    }
    return inst;
}

class BinpackFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BinpackFuzz, InvariantsHoldOnRandomInstances)
{
    Rng rng(GetParam(), "binpack-fuzz");
    PowerModel blade(nps::model::bladeA().pstates());
    PowerModel server(nps::model::serverB().pstates());

    for (int round = 0; round < 40; ++round) {
        Instance inst = randomInstance(rng, blade, server);
        PackResult r = packGreedy(inst.items, inst.bins,
                                  inst.constraints);

        ASSERT_EQ(r.assignment.size(), inst.items.size());

        // Aggregate loads/powers per bin from the assignment.
        std::map<unsigned, double> load;
        for (size_t i = 0; i < inst.items.size(); ++i) {
            unsigned dst = r.assignment[i];
            if (dst == nps::sim::kNoServer) {
                // Only legal when the item had no current host and the
                // instance was infeasible for it.
                EXPECT_FALSE(r.feasible);
                EXPECT_EQ(inst.items[i].current, nps::sim::kNoServer);
                continue;
            }
            load[dst] += inst.items[i].load;
        }

        double group = 0.0;
        std::vector<double> enc_power(
            inst.constraints.enclosure_caps.size(), 0.0);
        size_t used = 0;
        for (const auto &bin : inst.bins) {
            auto it = load.find(bin.id);
            double l = it == load.end() ? 0.0 : it->second;
            double p = estimateBinPower(bin, l);
            group += p;
            if (bin.enclosure != kNoEnc &&
                bin.enclosure < enc_power.size()) {
                enc_power[bin.enclosure] += p;
            }
            used += l > 0.0 ? 1 : 0;
            if (r.feasible && l > 0.0) {
                EXPECT_LE(l, bin.capacity + 1e-9);
                EXPECT_LE(p, bin.power_cap + 1e-9);
            }
        }
        EXPECT_EQ(r.bins_used, used);
        EXPECT_NEAR(r.est_power, group, 1e-6);
        if (r.feasible) {
            EXPECT_LE(group, inst.constraints.group_cap + 1e-6);
            for (size_t e = 0; e < enc_power.size(); ++e) {
                EXPECT_LE(enc_power[e],
                          inst.constraints.enclosure_caps[e] + 1e-6);
            }
        }

        // The same-assignment evaluator agrees with the packer.
        auto eval = evaluateAssignment(inst.items, inst.bins,
                                       r.assignment, inst.constraints);
        EXPECT_NEAR(eval.est_power, r.est_power, 1e-6);
        if (r.feasible) {
            EXPECT_TRUE(eval.feasible);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinpackFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
