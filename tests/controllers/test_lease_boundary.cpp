/**
 * @file
 * Lease-expiry boundary tests for every level that leases its parent's
 * budget (SM, EM, GM): a grant stamped at tick t with lease L is
 * trusted through tick t + L exactly — still valid AT the boundary,
 * lapsed first at t + L + 1. Off-by-one drift here would either revoke
 * grants a tick early (spurious fallback steps, extra conservative
 * capping) or honor a silent parent a tick too long.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/fixtures.h"
#include "controllers/enclosure_manager.h"
#include "controllers/group_manager.h"
#include "controllers/server_manager.h"

namespace {

using namespace nps;
using controllers::EfficiencyController;
using controllers::EnclosureManager;
using controllers::GroupManager;
using controllers::ServerManager;

constexpr unsigned kLease = 50;
constexpr size_t kGrantTick = 100;

class LeaseBoundaryTest : public ::testing::Test
{
  protected:
    LeaseBoundaryTest() : cluster_(nps_test::smallCluster(0.3))
    {
        for (auto &srv : cluster_.servers()) {
            ecs_.push_back(std::make_unique<EfficiencyController>(
                srv, EfficiencyController::Params{}));
            sms_.push_back(std::make_unique<ServerManager>(
                srv, ecs_.back().get(), cluster_.capLoc(srv.id()),
                smParams()));
        }
    }

    static ServerManager::Params
    smParams()
    {
        ServerManager::Params p;
        p.lease_ticks = kLease;
        p.lease_fallback = 0.5;
        return p;
    }

    EnclosureManager
    makeEm()
    {
        EnclosureManager::Params p;
        p.lease_ticks = kLease;
        p.lease_fallback = 0.5;
        std::vector<ServerManager *> blades;
        for (sim::ServerId s : cluster_.enclosure(0).members())
            blades.push_back(sms_[s].get());
        return EnclosureManager(cluster_, 0, std::move(blades),
                                cluster_.capEnc(0), p);
    }

    sim::Cluster cluster_;
    std::vector<std::unique_ptr<EfficiencyController>> ecs_;
    std::vector<std::unique_ptr<ServerManager>> sms_;
};

TEST_F(LeaseBoundaryTest, SmValidAtBoundaryLapsedOnePast)
{
    ServerManager &sm = *sms_[0];
    double static_cap = sm.staticCap();
    double grant = static_cap * 0.8;
    sm.setBudget(grant, kGrantTick);

    // Trusted through kGrantTick + kLease inclusive...
    EXPECT_DOUBLE_EQ(sm.currentCap(kGrantTick + kLease), grant);
    // ...and conservative exactly one tick later.
    EXPECT_DOUBLE_EQ(sm.currentCap(kGrantTick + kLease + 1),
                     0.5 * static_cap);
}

TEST_F(LeaseBoundaryTest, SmExpiryCountersFlipExactlyAtBoundary)
{
    ServerManager &sm = *sms_[0];
    sm.setBudget(sm.staticCap() * 0.8, kGrantTick);

    sm.step(kGrantTick + kLease);
    EXPECT_EQ(sm.degradeStats().lease_expiries, 0ul);
    EXPECT_EQ(sm.degradeStats().lease_fallback_steps, 0ul);

    sm.step(kGrantTick + kLease + 1);
    EXPECT_EQ(sm.degradeStats().lease_expiries, 1ul);
    EXPECT_EQ(sm.degradeStats().lease_fallback_steps, 1ul);

    // A fresh grant recovers the lease; the next lapse is a *new*
    // expiry event, again one past its own boundary.
    size_t regrant = kGrantTick + kLease + 2;
    sm.setBudget(sm.staticCap() * 0.8, regrant);
    sm.step(regrant + kLease);
    EXPECT_EQ(sm.degradeStats().lease_expiries, 1ul);
    sm.step(regrant + kLease + 1);
    EXPECT_EQ(sm.degradeStats().lease_expiries, 2ul);
}

TEST_F(LeaseBoundaryTest, EmValidAtBoundaryLapsedOnePast)
{
    EnclosureManager em = makeEm();
    double static_cap = em.staticCap();
    double grant = static_cap * 0.8;
    em.setBudget(grant, kGrantTick);

    EXPECT_DOUBLE_EQ(em.currentCap(kGrantTick + kLease), grant);
    EXPECT_DOUBLE_EQ(em.currentCap(kGrantTick + kLease + 1),
                     0.5 * static_cap);
}

TEST_F(LeaseBoundaryTest, EmExpiryCounterFlipsExactlyAtBoundary)
{
    EnclosureManager em = makeEm();
    em.setBudget(em.staticCap() * 0.8, kGrantTick);
    for (size_t t = 0; t < 30; ++t) {
        cluster_.evaluateTick(t);
        em.observe(t);
    }

    em.step(kGrantTick + kLease);
    EXPECT_EQ(em.degradeStats().lease_expiries, 0ul);
    em.step(kGrantTick + kLease + 1);
    EXPECT_EQ(em.degradeStats().lease_expiries, 1ul);
}

TEST_F(LeaseBoundaryTest, NestedGmValidAtBoundaryLapsedOnePast)
{
    // A child GM under a parent: the only GM configuration that leases
    // anything (a root has no parent to go silent on it).
    GroupManager::Params p;
    p.lease_ticks = kLease;
    p.lease_fallback = 0.5;

    std::vector<ServerManager *> all;
    for (auto &sm : sms_)
        all.push_back(sm.get());

    GroupManager::Children leaf_children;
    leaf_children.standalone = all;
    leaf_children.all_servers = all;
    GroupManager leaf(cluster_, 1, "GM/leaf", leaf_children, 200.0, p);

    GroupManager::Children root_children;
    root_children.groups = {&leaf};
    root_children.all_servers = all;
    GroupManager root(cluster_, 0, "GM/root", root_children, 200.0, p);

    double grant = 150.0;
    leaf.setBudget(grant, kGrantTick);
    EXPECT_DOUBLE_EQ(leaf.currentCap(kGrantTick + kLease), grant);
    EXPECT_DOUBLE_EQ(leaf.currentCap(kGrantTick + kLease + 1),
                     0.5 * 200.0);

    // The root has no parent: its "lease" never lapses, however stale.
    root.setBudget(grant, kGrantTick);
    EXPECT_DOUBLE_EQ(root.currentCap(kGrantTick + 10 * kLease), grant);
}

TEST_F(LeaseBoundaryTest, ZeroLeaseNeverLapses)
{
    // lease_ticks = 0 disables leasing outright (the paper's
    // fault-free deployment): grants are trusted forever.
    ServerManager::Params p;
    ServerManager sm(cluster_.servers()[1], ecs_[1].get(),
                     cluster_.capLoc(1), p);
    double grant = sm.staticCap() * 0.8;
    sm.setBudget(grant, kGrantTick);
    EXPECT_DOUBLE_EQ(sm.currentCap(kGrantTick + 1000000), grant);
}

} // namespace
