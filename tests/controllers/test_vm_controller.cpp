/**
 * @file
 * Tests for the VM Controller: consolidation, power-off, budget
 * constraints, violation-feedback buffers, and the real-vs-apparent
 * utilization inputs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/fixtures.h"
#include "controllers/vm_controller.h"

namespace {

using namespace nps;
using controllers::VmController;

class VmcTest : public ::testing::Test
{
  protected:
    VmcTest() : cluster_(nps_test::smallCluster(0.15, {})) {}

    VmController::Params
    fastParams()
    {
        VmController::Params p;
        p.period = 20;
        // Keep the per-epoch feedback gain at its nominal value so the
        // buffer arithmetic in these unit tests stays exact; the
        // per-unit-time scaling has its own test below.
        p.gain_ref_period = 20;
        p.migration_ticks = 5;
        return p;
    }

    /** Run cluster + VMC for n ticks (no other controllers). */
    void
    run(VmController &vmc, size_t n, size_t start = 0)
    {
        for (size_t t = start; t < start + n; ++t) {
            vmc.observe(t);
            if (t > 0 && t % vmc.period() == 0)
                vmc.step(t);
            cluster_.evaluateTick(t);
        }
    }

    sim::Cluster cluster_;
};

TEST_F(VmcTest, ConsolidatesAndPowersOff)
{
    VmController vmc(cluster_, {}, fastParams());
    run(vmc, 100);
    EXPECT_GT(vmc.stats().migrations, 0u);
    EXPECT_GT(vmc.stats().adoptions, 0u);
    size_t off = 0;
    for (const auto &srv : cluster_.servers())
        off += srv.platformPower(99) == sim::PlatformPower::Off ? 1 : 0;
    EXPECT_GT(off, 0u);
    // 6 VMs of ~0.17 load fit comfortably on one server at 0.9 capacity.
    EXPECT_GE(off, 4u);
}

TEST_F(VmcTest, PowerOffDisabledKeepsMachinesOn)
{
    auto p = fastParams();
    p.allow_power_off = false;
    VmController vmc(cluster_, {}, p);
    run(vmc, 100);
    for (const auto &srv : cluster_.servers())
        EXPECT_TRUE(srv.isOn(99));
}

TEST_F(VmcTest, ConsolidationReducesPower)
{
    double before = cluster_.evaluateTick(0).total_power;
    VmController vmc(cluster_, {}, fastParams());
    run(vmc, 100);
    double after = cluster_.evaluateTick(100).total_power;
    EXPECT_LT(after, before * 0.6);
}

TEST_F(VmcTest, BudgetConstraintsLimitPacking)
{
    // Six VMs at 0.4: without budgets three fit per server (1.2+ load >
    // capacity, so two per server at 0.88); with a tight local cap only
    // lighter packing is feasible.
    for (auto &vm : cluster_.vms())
        vm = sim::VirtualMachine(vm.id(),
                                 nps_test::flatTrace("m", 0.4, 8));
    auto p = fastParams();
    p.use_budget_constraints = true;
    VmController vmc(cluster_, {}, p);
    run(vmc, 100);
    // Local cap 76.5 W at P0 allows util (76.5-42)/43 = 0.80: a pair of
    // 0.44 loads (0.88) estimated at P0 exceeds it, so servers host at
    // most one VM each... unless estimated at a deeper state. Verify no
    // server's estimated packed load breaks the cap instead:
    for (const auto &srv : cluster_.servers()) {
        if (!srv.isOn(99))
            continue;
        double load = 0.44 * static_cast<double>(srv.vms().size());
        double est = srv.model().powerForDemand(
            srv.model().bestStateForDemand(load, 0.75), load);
        EXPECT_LE(est, cluster_.capLoc(srv.id()) + 1e-6);
    }
}

TEST_F(VmcTest, NoBudgetConstraintsPacksTighter)
{
    for (auto &vm : cluster_.vms())
        vm = sim::VirtualMachine(vm.id(),
                                 nps_test::flatTrace("m", 0.4, 8));
    auto constrained = fastParams();
    auto unconstrained = fastParams();
    unconstrained.use_budget_constraints = false;

    auto cluster2 = nps_test::smallCluster(0.4, {});
    VmController vmc1(cluster_, {}, constrained);
    VmController vmc2(cluster2, {}, unconstrained);
    run(vmc1, 100);
    for (size_t t = 0; t < 100; ++t) {
        vmc2.observe(t);
        if (t > 0 && t % vmc2.period() == 0)
            vmc2.step(t);
        cluster2.evaluateTick(t);
    }
    size_t on1 = 0, on2 = 0;
    for (const auto &s : cluster_.servers())
        on1 += s.isOn(99) ? 1 : 0;
    for (const auto &s : cluster2.servers())
        on2 += s.isOn(99) ? 1 : 0;
    EXPECT_LE(on2, on1);
}

TEST_F(VmcTest, FeedbackBuffersRespondToViolations)
{
    /** A synthetic violation feed. */
    class FakeSource : public controllers::ViolationSource
    {
      public:
        double rate = 0.0;
        double epochViolationRate() const override { return rate; }
        void drainEpoch() override { drained = true; }
        double lifetimeViolationRate() const override { return rate; }
        bool drained = false;
    };

    FakeSource local;
    local.rate = 0.4;
    VmController::Feedback feedback;
    feedback.local = {&local};
    auto p = fastParams();
    VmController vmc(cluster_, feedback, p);
    EXPECT_DOUBLE_EQ(vmc.bufferLoc(), p.buffer_init);
    run(vmc, 21);
    // b = decay*init + gain*rate = 0.5*0.02 + 0.5*0.4 = 0.21.
    EXPECT_NEAR(vmc.bufferLoc(), 0.21, 1e-9);
    EXPECT_TRUE(local.drained);
    // Quiet epochs decay the buffer back towards the floor.
    local.rate = 0.0;
    run(vmc, 40, 21);
    EXPECT_LT(vmc.bufferLoc(), 0.12);
    EXPECT_GE(vmc.bufferLoc(), p.buffer_init);
}

TEST_F(VmcTest, FeedbackGainScalesWithEpochRate)
{
    // Per-unit-time feedback (Section 5.4): halving the epoch doubles
    // the per-epoch gain, so the same violation rate drives a larger
    // buffer.
    class FixedSource : public controllers::ViolationSource
    {
      public:
        double epochViolationRate() const override { return 0.2; }
        void drainEpoch() override {}
        double lifetimeViolationRate() const override { return 0.2; }
    };
    FixedSource src;
    VmController::Feedback feedback;
    feedback.local = {&src};

    auto slow_p = fastParams();
    slow_p.gain_ref_period = 40;  // epoch is half the reference
    VmController fast_vmc(cluster_, feedback, slow_p);
    auto base_p = fastParams();   // epoch equals the reference
    auto cluster2 = nps_test::smallCluster(0.15, {});
    VmController base_vmc(cluster2, feedback, base_p);

    run(fast_vmc, 21);
    for (size_t t = 0; t < 21; ++t) {
        base_vmc.observe(t);
        if (t > 0 && t % base_vmc.period() == 0)
            base_vmc.step(t);
        cluster2.evaluateTick(t);
    }
    EXPECT_GT(fast_vmc.bufferLoc(), base_vmc.bufferLoc());
}

TEST_F(VmcTest, FeedbackDisabledKeepsBuffersAtZero)
{
    auto p = fastParams();
    p.use_violation_feedback = false;
    VmController vmc(cluster_, {}, p);
    run(vmc, 50);
    EXPECT_DOUBLE_EQ(vmc.bufferLoc(), 0.0);
    EXPECT_DOUBLE_EQ(vmc.bufferEnc(), 0.0);
    EXPECT_DOUBLE_EQ(vmc.bufferGrp(), 0.0);
}

TEST_F(VmcTest, MigrationsTaxTheMovedVms)
{
    VmController vmc(cluster_, {}, fastParams());
    run(vmc, 21);
    ASSERT_GT(vmc.stats().migrations, 0u);
    bool someone_migrating = false;
    for (const auto &vm : cluster_.vms())
        someone_migrating |= vm.migrating(21);
    EXPECT_TRUE(someone_migrating);
}

TEST_F(VmcTest, ApparentUtilPacksDifferently)
{
    // Throttle every server to the deepest state: apparent shares are
    // inflated ~1.9x, so the apparent-mode VMC sees much bigger VMs and
    // consolidates less.
    for (auto &srv : cluster_.servers())
        srv.setPState(4);
    auto real_p = fastParams();
    auto appr_p = fastParams();
    appr_p.use_real_util = false;

    auto cluster2 = nps_test::smallCluster(0.15, {});
    for (auto &srv : cluster2.servers())
        srv.setPState(4);

    VmController real_vmc(cluster_, {}, real_p);
    VmController appr_vmc(cluster2, {}, appr_p);
    run(real_vmc, 100);
    for (size_t t = 0; t < 100; ++t) {
        appr_vmc.observe(t);
        if (t > 0 && t % appr_vmc.period() == 0)
            appr_vmc.step(t);
        cluster2.evaluateTick(t);
    }
    size_t on_real = 0, on_appr = 0;
    for (const auto &s : cluster_.servers())
        on_real += s.isOn(99) ? 1 : 0;
    for (const auto &s : cluster2.servers())
        on_appr += s.isOn(99) ? 1 : 0;
    EXPECT_LE(on_real, on_appr);
}

TEST_F(VmcTest, BootsTargetsBeforeMigration)
{
    // Force everything off except server 0, then raise demand so the
    // VMC must re-open machines.
    VmController vmc(cluster_, {}, fastParams());
    run(vmc, 100);
    size_t off_before = 0;
    for (const auto &s : cluster_.servers())
        off_before += s.isOn(99) ? 0 : 1;
    ASSERT_GT(off_before, 0u);
    for (auto &vm : cluster_.vms())
        vm = sim::VirtualMachine(vm.id(),
                                 nps_test::flatTrace("hot", 0.6, 8));
    run(vmc, 100, 100);
    size_t on_after = 0;
    for (const auto &s : cluster_.servers())
        on_after += s.isOn(199) ? 1 : 0;
    EXPECT_GT(on_after, 1u);
}

TEST_F(VmcTest, ForecastAnticipatesRamps)
{
    // Demand steps up each epoch; the Holt-forecasting VMC must end up
    // with more servers on (it packs for where demand is going) than
    // the reactive one at the same instant.
    auto make_ramp = [](sim::Cluster &cl) {
        for (auto &vm : cl.vms()) {
            std::vector<double> v(120);
            for (size_t t = 0; t < v.size(); ++t)
                v[t] = 0.10 + 0.15 * static_cast<double>(t / 20);
            vm = sim::VirtualMachine(
                vm.id(), trace::UtilizationTrace(
                             "ramp", trace::WorkloadClass::Batch,
                             std::move(v)));
        }
    };
    auto reactive_p = fastParams();
    auto forecast_p = fastParams();
    forecast_p.use_forecast = true;
    forecast_p.forecast.method = controllers::ForecastMethod::HoltLinear;
    forecast_p.forecast.alpha = 0.8;
    forecast_p.forecast.beta = 0.8;

    auto cluster2 = nps_test::smallCluster(0.1, {});
    make_ramp(cluster_);
    make_ramp(cluster2);
    VmController reactive(cluster_, {}, reactive_p);
    VmController forecast(cluster2, {}, forecast_p);
    run(reactive, 101);
    for (size_t t = 0; t < 101; ++t) {
        forecast.observe(t);
        if (t > 0 && t % forecast.period() == 0)
            forecast.step(t);
        cluster2.evaluateTick(t);
    }
    // Compare the total packed headroom: the forecasting plan reserves
    // at least as much capacity (>= because quantization may tie).
    size_t on_reactive = 0, on_forecast = 0;
    for (const auto &s : cluster_.servers())
        on_reactive += s.isOn(100) ? 1 : 0;
    for (const auto &s : cluster2.servers())
        on_forecast += s.isOn(100) ? 1 : 0;
    EXPECT_GE(on_forecast, on_reactive);
}

TEST_F(VmcTest, StatsAccumulate)
{
    VmController vmc(cluster_, {}, fastParams());
    run(vmc, 100);
    EXPECT_EQ(vmc.stats().epochs, 4u);  // steps at 20, 40, 60, 80
    EXPECT_GT(vmc.stats().last_est_power, 0.0);
}

TEST_F(VmcTest, BadParamsDie)
{
    auto p = fastParams();
    p.capacity_target = 0.0;
    EXPECT_DEATH(VmController(cluster_, {}, p), "capacity target");
    auto q = fastParams();
    q.buffer_max = 1.0;
    EXPECT_DEATH(VmController(cluster_, {}, q), "buffer max");
}

} // namespace
