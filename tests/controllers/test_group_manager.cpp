/**
 * @file
 * Tests for the Group Manager: coordinated (hierarchical) and
 * uncoordinated (direct-to-server) budget provisioning.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "common/fixtures.h"
#include "controllers/group_manager.h"

namespace {

using namespace nps;
using controllers::EfficiencyController;
using controllers::EnclosureManager;
using controllers::GroupManager;
using controllers::ServerManager;

class GmTest : public ::testing::Test
{
  protected:
    GmTest() : cluster_(nps_test::smallCluster(0.3))
    {
        for (auto &srv : cluster_.servers()) {
            ecs_.push_back(std::make_unique<EfficiencyController>(
                srv, EfficiencyController::Params{}));
            sms_.push_back(std::make_unique<ServerManager>(
                srv, ecs_.back().get(), cluster_.capLoc(srv.id()),
                ServerManager::Params{}));
        }
        std::vector<ServerManager *> blades;
        for (sim::ServerId s : cluster_.enclosure(0).members())
            blades.push_back(sms_[s].get());
        em_ = std::make_unique<EnclosureManager>(
            cluster_, 0, std::move(blades), cluster_.capEnc(0),
            EnclosureManager::Params{});
    }

    GroupManager
    makeGm(GroupManager::Params p = {})
    {
        std::vector<ServerManager *> standalone;
        for (sim::ServerId s : cluster_.standaloneServers())
            standalone.push_back(sms_[s].get());
        std::vector<ServerManager *> all;
        for (auto &sm : sms_)
            all.push_back(sm.get());
        return GroupManager(cluster_, {em_.get()}, std::move(standalone),
                            std::move(all), cluster_.capGrp(), p);
    }

    void
    warm(GroupManager &gm, size_t ticks)
    {
        for (size_t t = 0; t < ticks; ++t) {
            cluster_.evaluateTick(t);
            gm.observe(t);
        }
    }

    sim::Cluster cluster_;
    std::vector<std::unique_ptr<EfficiencyController>> ecs_;
    std::vector<std::unique_ptr<ServerManager>> sms_;
    std::unique_ptr<EnclosureManager> em_;
};

TEST_F(GmTest, CoordinatedGrantsSumToBudget)
{
    auto gm = makeGm();
    warm(gm, 60);
    gm.step(50);
    const auto &grants = gm.lastGrants();
    ASSERT_EQ(grants.size(), 3u);  // 1 enclosure + 2 standalone
    double total = std::accumulate(grants.begin(), grants.end(), 0.0);
    EXPECT_NEAR(total, cluster_.capGrp(), 1e-6);
    // The enclosure (4 equal blades) must get roughly 2x a standalone
    // server's grant... actually 4x the demand share.
    EXPECT_GT(grants[0], grants[1] * 3.0);
}

TEST_F(GmTest, CoordinatedPushesThroughHierarchy)
{
    auto gm = makeGm();
    warm(gm, 60);
    gm.step(50);
    // The EM's dynamic cap was set to its grant (capped at static).
    EXPECT_NEAR(em_->effectiveCap(),
                std::min(cluster_.capEnc(0), gm.lastGrants()[0]), 1e-9);
    // Standalone SMs received budgets directly.
    for (size_t i = 0; i < cluster_.standaloneServers().size(); ++i) {
        sim::ServerId s = cluster_.standaloneServers()[i];
        EXPECT_LE(sms_[s]->effectiveCap(), cluster_.capLoc(s) + 1e-9);
    }
}

TEST_F(GmTest, UncoordinatedBypassesEms)
{
    GroupManager::Params p;
    p.mode = GroupManager::Mode::Uncoordinated;
    auto gm = makeGm(p);
    warm(gm, 60);
    double em_cap_before = em_->effectiveCap();
    gm.step(50);
    // The EM was not consulted...
    EXPECT_DOUBLE_EQ(em_->effectiveCap(), em_cap_before);
    // ...but every server's SM budget was overwritten, including the
    // enclosed blades the EM thinks it owns.
    ASSERT_EQ(gm.lastGrants().size(), cluster_.numServers());
    double total = std::accumulate(gm.lastGrants().begin(),
                                   gm.lastGrants().end(), 0.0);
    EXPECT_NEAR(total, cluster_.capGrp(), 1e-6);
}

TEST_F(GmTest, UncoordinatedGrantsCanExceedLocalCaps)
{
    // With few hot servers, proportional shares of the group budget can
    // exceed CAP_LOC; a solo SM adopts them verbatim (the correctness
    // hazard). Make server 5 hot and others idle.
    for (sim::VmId v = 0; v < 5; ++v)
        cluster_.placeVm(v, 5);
    GroupManager::Params p;
    p.mode = GroupManager::Mode::Uncoordinated;
    // Uncoordinated deployments pair with DirectPState SMs; rebuild SM 5
    // in that mode to observe cap adoption.
    ServerManager::Params sp;
    sp.mode = ServerManager::Mode::DirectPState;
    sms_[5] = std::make_unique<ServerManager>(cluster_.server(5), nullptr,
                                              cluster_.capLoc(5), sp);
    auto gm = makeGm(p);
    warm(gm, 80);
    gm.step(50);
    // The hot server's grant is clamped only by its *max power*, above
    // its static cap.
    EXPECT_GT(gm.lastGrants()[5], cluster_.capLoc(5));
    EXPECT_GT(sms_[5]->effectiveCap(), cluster_.capLoc(5));
}

TEST_F(GmTest, ViolationExposure)
{
    auto gm = makeGm();
    cluster_.evaluateTick(0);
    gm.observe(0);
    EXPECT_DOUBLE_EQ(gm.epochViolationRate(), 0.0);
    // Saturate everything: group power above CAP_GRP.
    for (auto &vm : cluster_.vms())
        vm = sim::VirtualMachine(vm.id(),
                                 nps_test::flatTrace("hot", 1.0, 8));
    cluster_.evaluateTick(1);
    gm.observe(1);
    EXPECT_DOUBLE_EQ(gm.epochViolationRate(), 0.5);
}

TEST_F(GmTest, ConstructionValidation)
{
    std::vector<ServerManager *> all;
    for (auto &sm : sms_)
        all.push_back(sm.get());
    EXPECT_DEATH(GroupManager(cluster_, {}, {}, {}, 100.0, {}),
                 "no servers");
    EXPECT_DEATH(GroupManager(cluster_, {}, {}, all, 0.0, {}),
                 "static cap");
    EXPECT_DEATH(GroupManager(cluster_, {nullptr}, {}, all, 100.0, {}),
                 "null EM");
}

TEST_F(GmTest, ActorInterface)
{
    auto gm = makeGm();
    EXPECT_EQ(gm.name(), "GM");
    EXPECT_EQ(gm.period(), 50u);
    EXPECT_DOUBLE_EQ(gm.staticCap(), cluster_.capGrp());
}

} // namespace
