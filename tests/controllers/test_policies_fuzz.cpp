/**
 * @file
 * Randomized property tests for the budget-division policies: across
 * random inputs every policy must keep its safety contract — grants in
 * [0, max_i], sum within the budget, floors honored when feasible, and
 * determinism for a fixed RNG seed.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "controllers/policies.h"
#include "util/random.h"

namespace {

using namespace nps::controllers;
using nps::util::Rng;

DivisionInput
randomInput(Rng &rng)
{
    DivisionInput in;
    size_t n = 1 + rng.below(30);
    for (size_t i = 0; i < n; ++i) {
        double max = rng.uniform(10.0, 300.0);
        in.maxima.push_back(max);
        in.floors.push_back(rng.uniform(0.0, max * 0.6));
        in.demands.push_back(rng.uniform(0.0, max));
        in.priorities.push_back(static_cast<int>(rng.below(10)));
    }
    double total_max = std::accumulate(in.maxima.begin(),
                                       in.maxima.end(), 0.0);
    in.budget = rng.uniform(0.0, total_max * 1.2);
    return in;
}

class PolicyFuzz : public ::testing::TestWithParam<DivisionPolicy>
{
};

TEST_P(PolicyFuzz, SafetyContractOnRandomInputs)
{
    Rng rng(99, "policy-fuzz");
    for (int round = 0; round < 200; ++round) {
        DivisionInput in = randomInput(rng);
        Rng policy_rng(static_cast<uint64_t>(round), "grants");
        auto g = divideBudget(GetParam(), in, &policy_rng);

        ASSERT_EQ(g.size(), in.demands.size());
        double sum = std::accumulate(g.begin(), g.end(), 0.0);
        EXPECT_LE(sum, in.budget + 1e-6);

        double total_floor = std::accumulate(in.floors.begin(),
                                             in.floors.end(), 0.0);
        bool floors_feasible = total_floor <= in.budget;
        for (size_t i = 0; i < g.size(); ++i) {
            EXPECT_GE(g[i], -1e-9);
            EXPECT_LE(g[i], in.maxima[i] + 1e-9);
            if (floors_feasible) {
                EXPECT_GE(g[i], in.floors[i] - 1e-9);
            }
        }

        // Budget is not needlessly wasted: if every child could take
        // more, the whole budget (up to the total maxima) is granted.
        double total_max = std::accumulate(in.maxima.begin(),
                                           in.maxima.end(), 0.0);
        if (floors_feasible) {
            EXPECT_GE(sum, std::min(in.budget, total_max) - 1e-4)
                << policyName(GetParam());
        }
    }
}

TEST_P(PolicyFuzz, DeterministicForFixedSeed)
{
    Rng rng(7, "det");
    DivisionInput in = randomInput(rng);
    Rng a(11), b(11);
    EXPECT_EQ(divideBudget(GetParam(), in, &a),
              divideBudget(GetParam(), in, &b));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyFuzz,
    ::testing::Values(DivisionPolicy::Proportional, DivisionPolicy::Equal,
                      DivisionPolicy::Priority, DivisionPolicy::Fifo,
                      DivisionPolicy::Random, DivisionPolicy::History),
    [](const auto &info) { return policyName(info.param); });

} // namespace
