/**
 * @file
 * Tests for the electrical capper: hard clamping above the limit and
 * hysteretic release.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/fixtures.h"
#include "controllers/electrical_capper.h"

namespace {

using namespace nps;
using controllers::ElectricalCapper;

class CapTest : public ::testing::Test
{
  protected:
    CapTest()
        : spec_(std::make_shared<const model::MachineSpec>(
              model::bladeA())),
          server_(0, spec_, 0.10, 0.10)
    {
        vms_.emplace_back(0, nps_test::flatTrace("vm", 0.9, 4));
        server_.addVm(0);
    }

    std::shared_ptr<const model::MachineSpec> spec_;
    sim::Server server_;
    std::vector<sim::VirtualMachine> vms_;
};

TEST_F(CapTest, ClampsAboveLimit)
{
    ElectricalCapper cap(server_, 70.0, {});
    server_.evaluate(0, vms_);
    ASSERT_GT(server_.lastPower(), 70.0);
    cap.observe(1);
    cap.step(1);
    EXPECT_TRUE(cap.clamping());
    server_.evaluate(1, vms_);
    EXPECT_LE(server_.lastPower(), 70.0 + 1e-9);
    EXPECT_GT(cap.epochViolationRate(), 0.0);
}

TEST_F(CapTest, FallsBackToSlowestWhenNothingFits)
{
    ElectricalCapper cap(server_, 10.0, {});
    server_.evaluate(0, vms_);
    cap.step(1);
    EXPECT_EQ(server_.pstate(), spec_->pstates().slowestIndex());
    EXPECT_TRUE(cap.clamping());
}

TEST_F(CapTest, ReleasesWithMarginWhenLoadDrops)
{
    ElectricalCapper cap(server_, 70.0, {});
    server_.evaluate(0, vms_);
    cap.step(1);
    ASSERT_TRUE(cap.clamping());
    // Load collapses: the clamp releases gradually, one state per
    // interval, and clears once P0 itself is safe.
    server_.removeVm(0);
    vms_.clear();
    vms_.emplace_back(0, nps_test::flatTrace("light", 0.05, 4));
    server_.addVm(0);
    for (size_t t = 1; t <= 6 && cap.clamping(); ++t) {
        server_.evaluate(t, vms_);
        cap.step(t + 1);
    }
    EXPECT_FALSE(cap.clamping());
    EXPECT_EQ(server_.pstate(), 0u);
}

TEST_F(CapTest, HoldsClampNearTheLimit)
{
    ElectricalCapper cap(server_, 70.0, {});
    server_.evaluate(0, vms_);
    cap.step(1);
    ASSERT_TRUE(cap.clamping());
    // Demand unchanged: the release can creep up at most to a state
    // where one step faster would breach the margin; authority is not
    // handed back to the EC.
    for (size_t t = 1; t <= 6; ++t) {
        server_.evaluate(t, vms_);
        cap.step(t + 1);
    }
    EXPECT_TRUE(cap.clamping());
    EXPECT_NE(server_.pstate(), 0u);
    EXPECT_LE(server_.lastPower(), 70.0 + 1e-9);
}

TEST_F(CapTest, OffServerClearsClamp)
{
    ElectricalCapper cap(server_, 70.0, {});
    server_.evaluate(0, vms_);
    cap.step(1);
    server_.removeVm(0);
    server_.powerOff();
    cap.observe(2);
    cap.step(2);
    EXPECT_FALSE(cap.clamping());
}

TEST_F(CapTest, NonPositiveLimitDies)
{
    EXPECT_DEATH(ElectricalCapper(server_, 0.0, {}), "limit");
}

TEST_F(CapTest, ActorInterface)
{
    ElectricalCapper cap(server_, 70.0, {});
    EXPECT_EQ(cap.name(), "CAP/0");
    EXPECT_EQ(cap.period(), 1u);
    EXPECT_DOUBLE_EQ(cap.limit(), 70.0);
}

} // namespace
