/**
 * @file
 * FaultInjector: the runtime query surface. Every query must be a pure
 * function of (schedule, seed, target, tick) — that purity is what makes
 * the chaos layer safe to call from sharded worker threads — so the
 * suite leans on repeat-query determinism as much as on the matching
 * semantics themselves.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fault/fault.h"
#include "fault/injector.h"

namespace {

using namespace nps;
using fault::DegradeStats;
using fault::FaultEvent;
using fault::FaultInjector;
using fault::FaultSchedule;
using fault::Level;
using fault::Link;

FaultInjector
makeInjector(const std::string &script, uint64_t seed = 1)
{
    return FaultInjector(FaultSchedule::parse(script), seed);
}

TEST(FaultInjector, OutageMatchesLevelIdAndWindow)
{
    FaultInjector inj = makeInjector("outage em 1 100 200\n");
    EXPECT_FALSE(inj.down(Level::EM, 1, 99));
    EXPECT_TRUE(inj.down(Level::EM, 1, 100));
    EXPECT_TRUE(inj.down(Level::EM, 1, 199));
    EXPECT_FALSE(inj.down(Level::EM, 1, 200));
    // Wrong id or wrong level never matches.
    EXPECT_FALSE(inj.down(Level::EM, 0, 150));
    EXPECT_FALSE(inj.down(Level::SM, 1, 150));
    EXPECT_FALSE(inj.down(Level::GM, 0, 150));
}

TEST(FaultInjector, WildcardIdMatchesEveryInstance)
{
    FaultInjector inj = makeInjector("outage sm * 10 20\n");
    for (long id : {0l, 1l, 5l, 42l})
        EXPECT_TRUE(inj.down(Level::SM, id, 15)) << "id " << id;
    EXPECT_FALSE(inj.down(Level::EC, 0, 15));
}

TEST(FaultInjector, DropProbabilityOneDropsEverySend)
{
    FaultInjector inj = makeInjector("drop em-sm 2 0 100\n");
    for (size_t tick = 0; tick < 100; tick += 5) {
        EXPECT_TRUE(inj.budgetDropped(Link::EmToSm, 2, tick));
        EXPECT_FALSE(inj.budgetDropped(Link::EmToSm, 3, tick));
        EXPECT_FALSE(inj.budgetDropped(Link::GmToSm, 2, tick));
    }
    EXPECT_FALSE(inj.budgetDropped(Link::EmToSm, 2, 100));
}

TEST(FaultInjector, DropProbabilityZeroDropsNothing)
{
    FaultInjector inj = makeInjector("drop gm-em * 0 1000 0.0\n");
    for (size_t tick = 0; tick < 1000; tick += 10)
        EXPECT_FALSE(inj.budgetDropped(Link::GmToEm, 0, tick));
}

TEST(FaultInjector, FractionalDropIsDeterministicAndRoughlyCalibrated)
{
    FaultInjector inj = makeInjector("drop gm-sm * 0 10000 0.3\n", 7);
    size_t dropped = 0;
    for (size_t tick = 0; tick < 10000; ++tick) {
        bool a = inj.budgetDropped(Link::GmToSm, 1, tick);
        bool b = inj.budgetDropped(Link::GmToSm, 1, tick);
        EXPECT_EQ(a, b) << "coin flip not reproducible at tick " << tick;
        if (a)
            ++dropped;
    }
    // 10000 Bernoulli(0.3) draws: expect ~3000, allow a wide margin.
    EXPECT_GT(dropped, 2500u);
    EXPECT_LT(dropped, 3500u);
}

TEST(FaultInjector, DropCoinsDifferAcrossTargetsAndSeeds)
{
    FaultInjector a = makeInjector("drop gm-sm * 0 2000 0.5\n", 1);
    FaultInjector b = makeInjector("drop gm-sm * 0 2000 0.5\n", 2);
    size_t diff_target = 0, diff_seed = 0;
    for (size_t tick = 0; tick < 2000; ++tick) {
        if (a.budgetDropped(Link::GmToSm, 0, tick) !=
            a.budgetDropped(Link::GmToSm, 1, tick))
            ++diff_target;
        if (a.budgetDropped(Link::GmToSm, 0, tick) !=
            b.budgetDropped(Link::GmToSm, 0, tick))
            ++diff_seed;
    }
    // Distinct targets and distinct seeds must see distinct coin streams.
    EXPECT_GT(diff_target, 500u);
    EXPECT_GT(diff_seed, 500u);
}

TEST(FaultInjector, StaleMatchesLinkAndChild)
{
    FaultInjector inj = makeInjector("stale gm-em 0 50 60\n");
    EXPECT_TRUE(inj.budgetStale(Link::GmToEm, 0, 55));
    EXPECT_FALSE(inj.budgetStale(Link::GmToEm, 1, 55));
    EXPECT_FALSE(inj.budgetStale(Link::EmToSm, 0, 55));
    EXPECT_FALSE(inj.budgetStale(Link::GmToEm, 0, 60));
}

TEST(FaultInjector, StuckAndFrozenMatchServerId)
{
    FaultInjector inj = makeInjector("stuck 3 10 20\nfreeze 4 10 20\n");
    EXPECT_TRUE(inj.pstateStuck(3, 15));
    EXPECT_FALSE(inj.pstateStuck(4, 15));
    EXPECT_TRUE(inj.utilFrozen(4, 15));
    EXPECT_FALSE(inj.utilFrozen(3, 15));
}

TEST(FaultInjector, UtilNoiseIsZeroOutsideAndDeterministicInside)
{
    FaultInjector inj = makeInjector("noise 2 100 200 0.1\n", 3);
    EXPECT_EQ(inj.utilNoise(2, 99), 0.0);
    EXPECT_EQ(inj.utilNoise(2, 200), 0.0);
    EXPECT_EQ(inj.utilNoise(1, 150), 0.0);

    double sum = 0.0, sumsq = 0.0;
    size_t n = 0, nonzero = 0;
    for (size_t tick = 100; tick < 200; ++tick) {
        double d1 = inj.utilNoise(2, tick);
        double d2 = inj.utilNoise(2, tick);
        EXPECT_EQ(d1, d2) << "noise not reproducible at tick " << tick;
        sum += d1;
        sumsq += d1 * d1;
        ++n;
        if (d1 != 0.0)
            ++nonzero;
    }
    EXPECT_GT(nonzero, 90u);
    // Sample mean near 0 and sample sigma near 0.1, loose 100-draw bounds.
    EXPECT_LT(std::abs(sum / n), 0.05);
    double sigma = std::sqrt(sumsq / n - (sum / n) * (sum / n));
    EXPECT_GT(sigma, 0.05);
    EXPECT_LT(sigma, 0.2);
}

TEST(FaultInjector, ActiveCountTracksOverlap)
{
    FaultInjector inj = makeInjector(
        "outage sm 0 10 30\nstuck 1 20 40\nfreeze 2 25 26\n");
    EXPECT_EQ(inj.activeCount(5), 0u);
    EXPECT_EQ(inj.activeCount(15), 1u);
    EXPECT_EQ(inj.activeCount(25), 3u);
    EXPECT_EQ(inj.activeCount(35), 1u);
    EXPECT_EQ(inj.activeCount(40), 0u);
}

TEST(FaultInjector, EmptyScheduleAnswersNoToEverything)
{
    FaultInjector inj(FaultSchedule(), 1);
    for (size_t tick : {0u, 1u, 100u}) {
        EXPECT_FALSE(inj.down(Level::GM, 0, tick));
        EXPECT_FALSE(inj.budgetDropped(Link::EmToSm, 0, tick));
        EXPECT_FALSE(inj.budgetStale(Link::GmToEm, 0, tick));
        EXPECT_FALSE(inj.pstateStuck(0, tick));
        EXPECT_FALSE(inj.utilFrozen(0, tick));
        EXPECT_EQ(inj.utilNoise(0, tick), 0.0);
        EXPECT_EQ(inj.activeCount(tick), 0u);
    }
}

TEST(DegradeStatsTest, AccumulatesAndReportsNone)
{
    DegradeStats a;
    EXPECT_TRUE(a.none());
    a.outage_ticks = 3;
    a.dropped_budgets = 2;
    EXPECT_FALSE(a.none());

    DegradeStats b;
    b.outage_ticks = 1;
    b.restarts = 4;
    b += a;
    EXPECT_EQ(b.outage_ticks, 4u);
    EXPECT_EQ(b.restarts, 4u);
    EXPECT_EQ(b.dropped_budgets, 2u);
}

} // namespace
