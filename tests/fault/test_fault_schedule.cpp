/**
 * @file
 * FaultSchedule: the script grammar, the text round-trip, and the
 * seeded-random campaign generator. The schedule is the ground truth the
 * whole chaos layer stands on, so its parsing and determinism get their
 * own suite.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fault/fault.h"

namespace {

using namespace nps;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultSchedule;
using fault::Level;
using fault::Link;
using fault::RandomFaultConfig;

TEST(FaultSchedule, ParsesEveryClauseKind)
{
    FaultSchedule s = FaultSchedule::parse(
        "outage em 0 100 200\n"
        "drop em-sm 3 50 80 0.5\n"
        "stale gm-em * 10 20\n"
        "stuck 2 5 30\n"
        "noise * 0 40 0.25\n"
        "freeze 1 15 25\n");
    ASSERT_EQ(s.events().size(), 6u);

    const auto &e = s.events();
    EXPECT_EQ(e[0].kind, FaultKind::Outage);
    EXPECT_EQ(e[0].level, Level::EM);
    EXPECT_EQ(e[0].id, 0);
    EXPECT_EQ(e[0].start, 100u);
    EXPECT_EQ(e[0].end, 200u);

    EXPECT_EQ(e[1].kind, FaultKind::DropBudget);
    EXPECT_EQ(e[1].link, Link::EmToSm);
    EXPECT_EQ(e[1].id, 3);
    EXPECT_DOUBLE_EQ(e[1].magnitude, 0.5);

    EXPECT_EQ(e[2].kind, FaultKind::StaleBudget);
    EXPECT_EQ(e[2].link, Link::GmToEm);
    EXPECT_EQ(e[2].id, FaultEvent::kAll);

    EXPECT_EQ(e[3].kind, FaultKind::StuckPState);
    EXPECT_EQ(e[3].id, 2);

    EXPECT_EQ(e[4].kind, FaultKind::UtilNoise);
    EXPECT_EQ(e[4].id, FaultEvent::kAll);
    EXPECT_DOUBLE_EQ(e[4].magnitude, 0.25);

    EXPECT_EQ(e[5].kind, FaultKind::UtilFreeze);
    EXPECT_EQ(e[5].id, 1);
}

TEST(FaultSchedule, AcceptsCommentsSemicolonsAndBlankLines)
{
    FaultSchedule s = FaultSchedule::parse(
        "# a campaign\n"
        "\n"
        "outage gm * 10 20; stuck 0 5 8   # two clauses, trailing note\n"
        "  \n");
    ASSERT_EQ(s.events().size(), 2u);
    EXPECT_EQ(s.events()[0].level, Level::GM);
    EXPECT_EQ(s.events()[1].kind, FaultKind::StuckPState);
}

TEST(FaultSchedule, EmptyTextParsesToEmptySchedule)
{
    EXPECT_TRUE(FaultSchedule::parse("").empty());
    EXPECT_TRUE(FaultSchedule::parse("# only comments\n\n").empty());
    EXPECT_EQ(FaultSchedule().lastEnd(), 0u);
}

TEST(FaultSchedule, TextRoundTripIsExact)
{
    const std::string script =
        "outage ec 4 100 250\n"
        "drop gm-sm * 0 500 0.25\n"
        "stale em-sm 1 40 90\n"
        "stuck * 10 20\n"
        "noise 3 0 1000 0.1\n"
        "freeze * 7 19\n";
    FaultSchedule a = FaultSchedule::parse(script);
    std::string text = a.toText();
    FaultSchedule b = FaultSchedule::parse(text);
    // write -> read -> write must be a fixed point.
    EXPECT_EQ(text, b.toText());
    ASSERT_EQ(a.events().size(), b.events().size());
    for (size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].id, b.events()[i].id);
        EXPECT_EQ(a.events()[i].start, b.events()[i].start);
        EXPECT_EQ(a.events()[i].end, b.events()[i].end);
        EXPECT_DOUBLE_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
    }
}

TEST(FaultSchedule, InlineSeparatorRoundTrips)
{
    FaultSchedule a =
        FaultSchedule::parse("outage sm 1 5 10\nfreeze 2 6 9\n");
    std::string inline_form = a.toText("; ");
    EXPECT_EQ(inline_form.find('\n'), std::string::npos);
    FaultSchedule b = FaultSchedule::parse(inline_form);
    ASSERT_EQ(b.events().size(), 2u);
    EXPECT_EQ(b.toText(), a.toText());
}

TEST(FaultSchedule, ActiveAtIsHalfOpen)
{
    FaultSchedule s = FaultSchedule::parse("outage sm 0 10 20\n");
    const FaultEvent &e = s.events()[0];
    EXPECT_FALSE(e.activeAt(9));
    EXPECT_TRUE(e.activeAt(10));
    EXPECT_TRUE(e.activeAt(19));
    EXPECT_FALSE(e.activeAt(20));
}

TEST(FaultSchedule, LastEndIsCampaignHorizon)
{
    FaultSchedule s = FaultSchedule::parse(
        "outage sm 0 10 20\nstuck 1 5 300\nfreeze * 2 8\n");
    EXPECT_EQ(s.lastEnd(), 300u);
}

TEST(FaultSchedule, MergeAppends)
{
    FaultSchedule a = FaultSchedule::parse("outage gm * 0 5\n");
    FaultSchedule b = FaultSchedule::parse("stuck 1 2 3\n");
    a.merge(b);
    ASSERT_EQ(a.events().size(), 2u);
    EXPECT_EQ(a.events()[1].kind, FaultKind::StuckPState);
}

TEST(FaultScheduleDeath, RejectsMalformedClauses)
{
    EXPECT_DEATH(FaultSchedule::parse("outage nowhere 0 1 2\n"), "");
    EXPECT_DEATH(FaultSchedule::parse("drop gm-em 0 1\n"), "");
    EXPECT_DEATH(FaultSchedule::parse("wobble 0 1 2\n"), "");
    EXPECT_DEATH(FaultSchedule::parse("outage sm 0 20 10\n"), "");
    EXPECT_DEATH(FaultSchedule::parse("noise 0 1 2\n"), "");
}

// ---------------------------------------------------------------------
// Seeded-random campaign.

RandomFaultConfig
fullCampaign()
{
    RandomFaultConfig cfg;
    cfg.horizon = 600;
    cfg.outages = 3;
    cfg.drops = 2;
    cfg.drop_prob = 0.5;
    cfg.stales = 2;
    cfg.stucks = 2;
    cfg.noises = 2;
    cfg.noise_sigma = 0.2;
    cfg.freezes = 1;
    return cfg;
}

TEST(RandomCampaign, IsDeterministicInSeed)
{
    RandomFaultConfig cfg = fullCampaign();
    FaultSchedule a = FaultSchedule::randomized(cfg, 77, 6, 1);
    FaultSchedule b = FaultSchedule::randomized(cfg, 77, 6, 1);
    EXPECT_EQ(a.toText(), b.toText());

    FaultSchedule c = FaultSchedule::randomized(cfg, 78, 6, 1);
    EXPECT_NE(a.toText(), c.toText());
}

TEST(RandomCampaign, GeneratesRequestedEventCounts)
{
    RandomFaultConfig cfg = fullCampaign();
    FaultSchedule s = FaultSchedule::randomized(cfg, 5, 6, 1);
    size_t counts[6] = {0, 0, 0, 0, 0, 0};
    for (const auto &e : s.events())
        ++counts[static_cast<int>(e.kind)];
    EXPECT_EQ(counts[static_cast<int>(FaultKind::Outage)], cfg.outages);
    EXPECT_EQ(counts[static_cast<int>(FaultKind::DropBudget)], cfg.drops);
    EXPECT_EQ(counts[static_cast<int>(FaultKind::StaleBudget)],
              cfg.stales);
    EXPECT_EQ(counts[static_cast<int>(FaultKind::StuckPState)],
              cfg.stucks);
    EXPECT_EQ(counts[static_cast<int>(FaultKind::UtilNoise)], cfg.noises);
    EXPECT_EQ(counts[static_cast<int>(FaultKind::UtilFreeze)],
              cfg.freezes);
}

TEST(RandomCampaign, EventsAreWellFormedAndInRange)
{
    RandomFaultConfig cfg = fullCampaign();
    const size_t servers = 6, enclosures = 1;
    for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        FaultSchedule s =
            FaultSchedule::randomized(cfg, seed, servers, enclosures);
        for (const auto &e : s.events()) {
            EXPECT_LT(e.start, e.end);
            EXPECT_LE(e.start, cfg.horizon);
            if (e.kind == FaultKind::DropBudget) {
                EXPECT_DOUBLE_EQ(e.magnitude, cfg.drop_prob);
            }
            if (e.kind == FaultKind::UtilNoise) {
                EXPECT_DOUBLE_EQ(e.magnitude, cfg.noise_sigma);
            }
            if (e.kind == FaultKind::StuckPState ||
                e.kind == FaultKind::UtilNoise ||
                e.kind == FaultKind::UtilFreeze) {
                EXPECT_GE(e.id, 0);
                EXPECT_LT(e.id, static_cast<long>(servers));
            }
        }
        // The generated campaign must itself survive the text round-trip.
        EXPECT_EQ(FaultSchedule::parse(s.toText()).toText(), s.toText());
    }
}

TEST(RandomCampaign, ZeroConfigGeneratesNothing)
{
    RandomFaultConfig cfg;
    EXPECT_FALSE(cfg.any());
    EXPECT_TRUE(FaultSchedule::randomized(cfg, 9, 6, 1).empty());
}

} // namespace
