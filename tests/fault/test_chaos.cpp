/**
 * @file
 * Chaos properties: invariants that must hold for *whole campaigns*, not
 * single scripted faults —
 *
 *   (a) once the campaign ends, enforcement recovers within one lease
 *       expiry: past that point the degraded run violates its caps no
 *       more than the fault-free run does;
 *   (b) the system returns to the no-fault steady state after the last
 *       fault clears;
 *   (c) under the same fault schedule, the coordinated stack leaks fewer
 *       violations than the uncoordinated one (the paper's Figure 6
 *       claim, extended to degraded operation);
 *   (d) a faulted run is bit-identical across engine thread counts —
 *       fault randomness is keyed by (seed, target, tick), never by
 *       thread.
 *
 * Every property is checked at threads = 1 and threads = 4.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/fixtures.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "fault/fault.h"
#include "model/machine.h"

namespace {

using namespace nps;

constexpr size_t kTicks = 1200;
// The campaign: a mid-run storm across levels and links, all clear by
// tick 600. Default leases are 150 ticks, so by tick 800 every level has
// either received a fresh grant or refreshed its lease several times.
const char *kCampaign =
    "outage em 0 100 350\n"
    "outage ec 1 150 400\n"
    "drop em-sm 2 100 500 0.8\n"
    "stale gm-em 0 200 450\n"
    "stuck 3 100 300\n"
    "noise 4 100 400 0.15\n"
    "freeze 5 150 350\n"
    "outage sm 0 450 550\n";
constexpr size_t kCampaignEnd = 600;
constexpr size_t kLease = 150;  // 3 * max(T_em, T_gm) from resolved()
constexpr size_t kRecovered = kCampaignEnd + kLease + 50;

struct ChaosRun
{
    std::vector<double> power;
    std::vector<double> perf;
    sim::MetricsSummary summary;
    fault::DegradeStats degrade;
};

ChaosRun
runScenario(core::Scenario scenario, const std::string &faults,
            unsigned threads)
{
    core::CoordinationConfig cfg = core::scenarioConfig(scenario);
    cfg.threads = threads;
    if (!faults.empty()) {
        cfg.faults.enabled = true;
        cfg.faults.script = faults;
    }
    sim::Topology topo{6, 1, 4};
    core::Coordinator coord(cfg, topo, model::bladeA(),
                            nps_test::flatTraces(6, 0.8, kTicks + 8),
                            /*keep_series=*/true);
    coord.run(kTicks);
    return {coord.metrics().powerSeries(), coord.metrics().perfSeries(),
            coord.summary(), coord.degradeStats()};
}

/** Fraction of ticks in [from, to) whose group power exceeds @p cap. */
double
violationRate(const std::vector<double> &power, size_t from, size_t to,
              double cap)
{
    size_t hits = 0, n = 0;
    for (size_t t = from; t < to && t < power.size(); ++t) {
        ++n;
        if (power[t] > cap + 1e-9)
            ++hits;
    }
    return n == 0 ? 0.0 : static_cast<double>(hits) / n;
}

double
groupCap()
{
    // The small fixture cluster's group budget, read off one build.
    sim::Topology topo{6, 1, 4};
    core::Coordinator coord(core::coordinatedConfig(), topo,
                            model::bladeA(),
                            nps_test::flatTraces(6, 0.8, 8));
    return coord.cluster().capGrp();
}

class ChaosTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ChaosTest, CapsRecoverWithinOneLeaseOfCampaignEnd)
{
    unsigned threads = GetParam();
    ChaosRun faulted =
        runScenario(core::Scenario::Coordinated, kCampaign, threads);
    ChaosRun clean = runScenario(core::Scenario::Coordinated, "", threads);
    ASSERT_GT(faulted.degrade.restarts, 0u);

    // Property (a): past campaign end + one lease, the degraded run's
    // group-cap violation rate is no worse than the fault-free run's.
    double cap = groupCap();
    double after_faulted =
        violationRate(faulted.power, kRecovered, kTicks, cap);
    double after_clean =
        violationRate(clean.power, kRecovered, kTicks, cap);
    EXPECT_LE(after_faulted, after_clean + 1e-9)
        << "threads=" << threads;
}

TEST_P(ChaosTest, SteadyStateReturnsAfterFaultsClear)
{
    unsigned threads = GetParam();
    ChaosRun faulted =
        runScenario(core::Scenario::Coordinated, kCampaign, threads);
    ChaosRun clean = runScenario(core::Scenario::Coordinated, "", threads);

    // Property (b): the tail of the faulted run matches the fault-free
    // run — same demand, same controllers, integrator state reconverged.
    double sum_f = 0.0, sum_c = 0.0;
    size_t n = 0;
    for (size_t t = kRecovered; t < kTicks; ++t) {
        sum_f += faulted.power[t];
        sum_c += clean.power[t];
        ++n;
    }
    ASSERT_GT(n, 100u);
    double mean_f = sum_f / n, mean_c = sum_c / n;
    EXPECT_NEAR(mean_f, mean_c, 0.02 * mean_c) << "threads=" << threads;
}

TEST_P(ChaosTest, CoordinatedLeaksFewerViolationsThanUncoordinated)
{
    unsigned threads = GetParam();
    ChaosRun coord =
        runScenario(core::Scenario::Coordinated, kCampaign, threads);
    ChaosRun uncoord =
        runScenario(core::Scenario::Uncoordinated, kCampaign, threads);

    // Property (c): same schedule, same demand — coordination with
    // leases must not leak more violations than the solo stack.
    EXPECT_LE(coord.summary.sm_violation,
              uncoord.summary.sm_violation + 1e-9)
        << "threads=" << threads;
    EXPECT_LE(coord.summary.gm_violation,
              uncoord.summary.gm_violation + 1e-9)
        << "threads=" << threads;
}

TEST_P(ChaosTest, RandomCampaignRunsAndReproduces)
{
    unsigned threads = GetParam();
    auto run = [&](uint64_t seed) {
        core::CoordinationConfig cfg = core::coordinatedConfig();
        cfg.threads = threads;
        cfg.faults.enabled = true;
        cfg.faults.seed = seed;
        cfg.faults.random.horizon = 800;
        cfg.faults.random.outages = 4;
        cfg.faults.random.drops = 3;
        cfg.faults.random.drop_prob = 0.5;
        cfg.faults.random.stales = 2;
        cfg.faults.random.stucks = 2;
        cfg.faults.random.noises = 2;
        cfg.faults.random.freezes = 2;
        sim::Topology topo{6, 1, 4};
        core::Coordinator coord(cfg, topo, model::bladeA(),
                                nps_test::flatTraces(6, 0.8, kTicks + 8),
                                /*keep_series=*/true);
        coord.run(kTicks);
        return ChaosRun{coord.metrics().powerSeries(),
                   coord.metrics().perfSeries(), coord.summary(),
                   coord.degradeStats()};
    };
    ChaosRun a = run(11);
    ChaosRun b = run(11);
    // Same seed: bit-identical chaos.
    ASSERT_EQ(a.power.size(), b.power.size());
    for (size_t t = 0; t < a.power.size(); ++t)
        ASSERT_EQ(a.power[t], b.power[t]) << "tick " << t;
    EXPECT_EQ(a.summary.energy, b.summary.energy);
    EXPECT_FALSE(a.degrade.none());

    // Different seed: a different campaign.
    ChaosRun c = run(12);
    EXPECT_NE(a.summary.energy, c.summary.energy);
}

INSTANTIATE_TEST_SUITE_P(Threads, ChaosTest, ::testing::Values(1u, 4u));

TEST(ChaosDeterminism, FaultedRunIsBitIdenticalAcrossThreads)
{
    // Property (d), the PR 1 contract extended under chaos: the serial
    // and sharded engines must agree per tick while faults fire.
    ChaosRun serial = runScenario(core::Scenario::Coordinated, kCampaign, 1);
    EXPECT_FALSE(serial.degrade.none());
    for (unsigned threads : {2u, 4u}) {
        ChaosRun parallel =
            runScenario(core::Scenario::Coordinated, kCampaign, threads);
        ASSERT_EQ(serial.power.size(), parallel.power.size());
        for (size_t t = 0; t < serial.power.size(); ++t) {
            ASSERT_EQ(serial.power[t], parallel.power[t])
                << "power diverged at tick " << t << " threads="
                << threads;
            ASSERT_EQ(serial.perf[t], parallel.perf[t])
                << "perf diverged at tick " << t << " threads="
                << threads;
        }
        EXPECT_EQ(serial.summary.energy, parallel.summary.energy);
        // The degradation bookkeeping itself is part of the contract.
        EXPECT_EQ(serial.degrade.outage_ticks,
                  parallel.degrade.outage_ticks);
        EXPECT_EQ(serial.degrade.restarts, parallel.degrade.restarts);
        EXPECT_EQ(serial.degrade.lease_expiries,
                  parallel.degrade.lease_expiries);
        EXPECT_EQ(serial.degrade.dropped_budgets,
                  parallel.degrade.dropped_budgets);
        EXPECT_EQ(serial.degrade.stale_budgets,
                  parallel.degrade.stale_budgets);
        EXPECT_EQ(serial.degrade.stuck_actuations,
                  parallel.degrade.stuck_actuations);
        EXPECT_EQ(serial.degrade.noisy_reads, parallel.degrade.noisy_reads);
    }
}

} // namespace
