/**
 * @file
 * Graceful degradation under scripted faults, exercised through the full
 * Coordinator stack: budget leases expiring into conservative local
 * caps, the SM's direct-P-state fallback while its EC is down, cold
 * restarts after outages, and the per-level degradation counters that
 * surface it all — plus the bit-transparency guarantee that an idle
 * fault layer changes nothing.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/fixtures.h"
#include "core/coordinator.h"
#include "core/scenarios.h"
#include "model/machine.h"

namespace {

using namespace nps;

constexpr size_t kTicks = 800;

/** A coordinated config over the small 6-server cluster, high demand so
 * the caps actually bind, with per-tick series retained. */
core::CoordinationConfig
faultTestConfig()
{
    core::CoordinationConfig cfg = core::coordinatedConfig();
    cfg.threads = 1;
    return cfg;
}

std::unique_ptr<core::Coordinator>
runCluster(const core::CoordinationConfig &cfg, double util = 0.7,
           size_t ticks = kTicks)
{
    sim::Topology topo{6, 1, 4};
    auto coord = std::make_unique<core::Coordinator>(
        cfg, topo, model::bladeA(),
        nps_test::flatTraces(6, util, ticks + 8), /*keep_series=*/true);
    coord->run(ticks);
    return coord;
}

TEST(FaultTransparency, DisabledFaultsLeaveZeroCounters)
{
    auto coord = runCluster(faultTestConfig());
    EXPECT_EQ(coord->faultInjector(), nullptr);
    EXPECT_TRUE(coord->degradeStats().none());
    EXPECT_TRUE(coord->summary().degrade.none());
}

TEST(FaultTransparency, IdleFaultLayerIsBitTransparent)
{
    // Reference: fault layer fully disabled.
    auto plain = runCluster(faultTestConfig());

    // Faults enabled, injector built — but every event lies beyond the
    // run horizon, so no query ever fires and the leases (armed by
    // resolved()) are always refreshed in time. The series must be
    // bit-identical, not merely close.
    core::CoordinationConfig cfg = faultTestConfig();
    cfg.faults.enabled = true;
    cfg.faults.script = "outage em 0 100000 100100\n";
    auto armed = runCluster(cfg);
    ASSERT_NE(armed->faultInjector(), nullptr);
    EXPECT_TRUE(armed->degradeStats().none());

    const auto &p = plain->metrics().powerSeries();
    const auto &a = armed->metrics().powerSeries();
    ASSERT_EQ(p.size(), a.size());
    for (size_t t = 0; t < p.size(); ++t)
        ASSERT_EQ(p[t], a[t]) << "power diverged at tick " << t;
    EXPECT_EQ(plain->summary().energy, armed->summary().energy);
    EXPECT_EQ(plain->summary().sm_violation, armed->summary().sm_violation);
}

TEST(FaultDegradation, EmOutageExpiresBladeLeases)
{
    core::CoordinationConfig cfg = faultTestConfig();
    cfg.faults.enabled = true;
    // EM 0 down for 300 ticks: far longer than the default lease of
    // 3 * max(T_em, T_gm) = 150 ticks, so every blade SM must see its
    // lease lapse and degrade to the conservative local cap.
    cfg.faults.script = "outage em 0 100 400\n";
    cfg.sm.lease_fallback = 0.9;
    auto coord = runCluster(cfg);

    const auto &em = *coord->ems()[0];
    EXPECT_GT(em.degradeStats().outage_ticks, 250u);
    EXPECT_GT(em.degradeStats().outage_steps, 8u);
    EXPECT_EQ(em.degradeStats().restarts, 1u);

    // Blade SMs (servers 0..3) ride out the silence on the fallback cap.
    for (size_t sid = 0; sid < 4; ++sid) {
        const auto &sm = *coord->sms()[sid];
        EXPECT_EQ(sm.degradeStats().lease_expiries, 1u) << "sm " << sid;
        EXPECT_GT(sm.degradeStats().lease_fallback_steps, 10u)
            << "sm " << sid;
    }
    // Standalone servers (4, 5) are fed by the GM and never lapse.
    for (size_t sid = 4; sid < 6; ++sid) {
        EXPECT_EQ(coord->sms()[sid]->degradeStats().lease_expiries, 0u)
            << "sm " << sid;
    }

    // The aggregate summary surfaces the same counters.
    fault::DegradeStats total = coord->summary().degrade;
    EXPECT_EQ(total.restarts, 1u);
    EXPECT_GE(total.lease_expiries, 4u);
}

TEST(FaultDegradation, ExpiredLeaseEnforcesFallbackCap)
{
    core::CoordinationConfig cfg = faultTestConfig();
    cfg.faults.enabled = true;
    // The outage outlives the run: the blade rides the fallback cap to
    // the end, so the post-run state still shows the degraded regime.
    cfg.faults.script = "outage em 0 100 2000\n";
    cfg.sm.lease_fallback = 0.8;
    auto coord = runCluster(cfg, 0.9);

    // While degraded, the enforced cap is the conservative fraction of
    // CAP_LOC, not the (stale) dynamic grant.
    const auto &sm = *coord->sms()[0];
    EXPECT_GT(sm.degradeStats().lease_fallback_steps, 0u);
    double fallback_cap = 0.8 * sm.staticCap();
    EXPECT_DOUBLE_EQ(sm.currentCap(kTicks - 1), fallback_cap);
    EXPECT_NE(sm.currentCap(kTicks - 1), sm.effectiveCap());
    // Power under the degraded cap converged to it (within the usual
    // P-state quantization slack).
    EXPECT_LE(coord->cluster().servers()[0].lastPower(),
              fallback_cap + 6.0);
}

TEST(FaultDegradation, EcOutageFallsBackToDirectCapping)
{
    core::CoordinationConfig cfg = faultTestConfig();
    cfg.faults.enabled = true;
    cfg.faults.script = "outage ec 0 100 600\n";
    auto coord = runCluster(cfg, 0.9);

    const auto &ec = *coord->ecs()[0];
    EXPECT_GT(ec.degradeStats().outage_ticks, 400u);
    EXPECT_EQ(ec.degradeStats().restarts, 1u);

    // The SM noticed the dead EC and capped P-states directly.
    const auto &sm = *coord->sms()[0];
    EXPECT_GT(sm.degradeStats().ec_fallback_steps, 10u);

    // Untouched servers never fell back.
    EXPECT_EQ(coord->sms()[1]->degradeStats().ec_fallback_steps, 0u);
    EXPECT_EQ(coord->ecs()[1]->degradeStats().outage_ticks, 0u);
}

TEST(FaultDegradation, DroppedAndStaleBudgetsAreCounted)
{
    core::CoordinationConfig cfg = faultTestConfig();
    cfg.faults.enabled = true;
    cfg.faults.script =
        "drop em-sm 0 100 400\n"
        "stale gm-em 0 100 400\n";
    auto coord = runCluster(cfg);

    // EM 0 drops every send to blade 0 in the window: one per T_em step.
    EXPECT_GT(coord->ems()[0]->degradeStats().dropped_budgets, 8u);
    // The GM's sends to EM 0 are delivered stale: one per T_gm step.
    EXPECT_GT(coord->gm()->degradeStats().stale_budgets, 3u);
    EXPECT_EQ(coord->gm()->degradeStats().dropped_budgets, 0u);
}

TEST(FaultDegradation, DropsBeyondLeaseDegradeTheBlade)
{
    core::CoordinationConfig cfg = faultTestConfig();
    cfg.faults.enabled = true;
    // Every EM->SM send to blade 2 lost for 400 ticks: indistinguishable,
    // from the SM's seat, from a dead parent — the lease must lapse.
    cfg.faults.script = "drop em-sm 2 100 500\n";
    auto coord = runCluster(cfg);
    EXPECT_EQ(coord->sms()[2]->degradeStats().lease_expiries, 1u);
    EXPECT_GT(coord->sms()[2]->degradeStats().lease_fallback_steps, 0u);
    EXPECT_EQ(coord->sms()[3]->degradeStats().lease_expiries, 0u);
}

TEST(FaultDegradation, StuckActuatorIsCounted)
{
    core::CoordinationConfig cfg = faultTestConfig();
    cfg.faults.enabled = true;
    cfg.faults.script = "stuck 1 50 300\n";
    // Square-wave demand so the EC keeps trying to move the P-state.
    sim::Topology topo{6, 1, 4};
    std::vector<trace::UtilizationTrace> traces;
    for (size_t i = 0; i < 6; ++i) {
        traces.push_back(nps_test::squareTrace(
            "sq" + std::to_string(i), 0.2, 0.9, 40, kTicks + 8));
    }
    core::Coordinator coord(cfg, topo, model::bladeA(), traces);
    coord.run(kTicks);
    EXPECT_GT(coord.ecs()[1]->degradeStats().stuck_actuations, 0u);
    EXPECT_EQ(coord.ecs()[0]->degradeStats().stuck_actuations, 0u);
}

TEST(FaultDegradation, NoisyAndFrozenTelemetryAreCounted)
{
    core::CoordinationConfig cfg = faultTestConfig();
    cfg.faults.enabled = true;
    cfg.faults.script =
        "noise 0 100 300 0.2\n"
        "freeze 1 100 300\n";
    auto coord = runCluster(cfg);
    EXPECT_GT(coord->ecs()[0]->degradeStats().noisy_reads, 100u);
    EXPECT_GT(coord->ecs()[1]->degradeStats().noisy_reads, 100u);
    EXPECT_EQ(coord->ecs()[2]->degradeStats().noisy_reads, 0u);
}

TEST(FaultDegradation, GmAndVmcOutagesRestartOnce)
{
    core::CoordinationConfig cfg = faultTestConfig();
    cfg.faults.enabled = true;
    cfg.faults.script =
        "outage gm 0 100 300\n"
        "outage vmc 0 100 300\n";
    auto coord = runCluster(cfg);
    EXPECT_GT(coord->gm()->degradeStats().outage_ticks, 150u);
    EXPECT_EQ(coord->gm()->degradeStats().restarts, 1u);
    EXPECT_GT(coord->vmc()->degradeStats().outage_ticks, 150u);
    EXPECT_EQ(coord->vmc()->degradeStats().restarts, 1u);
    // While the GM was silent past the EM lease, the EM degraded too.
    EXPECT_GE(coord->ems()[0]->degradeStats().lease_expiries, 1u);
}

TEST(FaultDegradation, RecoveryRefreshesLeases)
{
    core::CoordinationConfig cfg = faultTestConfig();
    cfg.faults.enabled = true;
    cfg.faults.script = "outage em 0 100 400\n";
    cfg.sm.lease_fallback = 0.9;
    auto coord = runCluster(cfg);
    // Well after the restart the blade SM is back on a live grant: its
    // enforced cap is the effective (dynamic) cap again, not the
    // fallback.
    const auto &sm = *coord->sms()[0];
    EXPECT_DOUBLE_EQ(sm.currentCap(kTicks), sm.effectiveCap());
    EXPECT_NE(sm.currentCap(kTicks), 0.9 * sm.staticCap());
}

} // namespace
