#include "bus/control_log.h"

#include <algorithm>

#include "util/csv.h"
#include "util/logging.h"

namespace nps {
namespace bus {

EventBuffer *
ControlPlaneLog::channel(const std::string &name, ChannelKind kind)
{
    for (const auto &l : links_) {
        if (l->name == name)
            util::fatal("control log: link '%s' registered twice",
                        name.c_str());
    }
    links_.push_back(std::make_unique<LinkLog>());
    links_.back()->name = name;
    links_.back()->kind = kind;
    return &links_.back()->events;
}

size_t
ControlPlaneLog::totalEvents() const
{
    size_t n = 0;
    for (const auto &l : links_)
        n += l->events.size();
    return n;
}

std::vector<ControlPlaneLog::Entry>
ControlPlaneLog::merged() const
{
    std::vector<Entry> out;
    out.reserve(totalEvents());
    for (const auto &l : links_) {
        for (const auto &e : l->events)
            out.push_back({l.get(), &e});
    }
    std::sort(out.begin(), out.end(), [](const Entry &a, const Entry &b) {
        if (a.event->tick != b.event->tick)
            return a.event->tick < b.event->tick;
        if (a.link->name != b.link->name)
            return a.link->name < b.link->name;
        return a.event->seq < b.event->seq;
    });
    return out;
}

void
ControlPlaneLog::writeCsv(std::ostream &out) const
{
    util::CsvWriter w(out);
    w.row("tick", "link", "kind", "seq", "value", "aux", "delivered",
          "stale");
    for (const Entry &e : merged()) {
        w.row(static_cast<unsigned long>(e.event->tick), e.link->name,
              channelKindName(e.event->kind),
              static_cast<unsigned long>(e.event->seq), e.event->value,
              e.event->aux, e.event->delivered ? 1 : 0,
              e.event->stale ? 1 : 0);
    }
}

void
ControlPlaneLog::saveState(ckpt::SectionWriter &w) const
{
    w.putU64(links_.size());
    for (const auto &l : links_) {
        w.putString(l->name);
        w.putU32(static_cast<uint32_t>(l->kind));
        w.putU64(l->events.size());
        for (const auto &e : l->events) {
            w.putU64(e.tick);
            w.putU64(e.seq);
            w.putU32(static_cast<uint32_t>(e.kind));
            w.putDouble(e.value);
            w.putDouble(e.aux);
            w.putBool(e.delivered);
            w.putBool(e.stale);
        }
    }
}

void
ControlPlaneLog::loadState(ckpt::SectionReader &r)
{
    uint64_t n = r.getU64();
    if (n != links_.size())
        util::fatal("control log restore: snapshot has %llu links, "
                    "rebuilt wiring has %zu — config/topology mismatch",
                    static_cast<unsigned long long>(n), links_.size());
    for (uint64_t i = 0; i < n; ++i) {
        std::string name = r.getString();
        auto kind = static_cast<ChannelKind>(r.getU32());
        LinkLog *target = nullptr;
        for (const auto &l : links_) {
            if (l->name == name) {
                target = l.get();
                break;
            }
        }
        if (!target)
            util::fatal("control log restore: snapshot link '%s' not "
                        "present in rebuilt wiring — config/topology "
                        "mismatch",
                        name.c_str());
        if (target->kind != kind)
            util::fatal("control log restore: link '%s' kind mismatch",
                        name.c_str());
        uint64_t events = r.getU64();
        target->events.clear();
        target->events.reserve(events);
        for (uint64_t j = 0; j < events; ++j) {
            ControlEvent e;
            e.tick = static_cast<size_t>(r.getU64());
            e.seq = r.getU64();
            e.kind = static_cast<ChannelKind>(r.getU32());
            e.value = r.getDouble();
            e.aux = r.getDouble();
            e.delivered = r.getBool();
            e.stale = r.getBool();
            target->events.push_back(e);
        }
    }
}

} // namespace bus
} // namespace nps
