#include "bus/control_log.h"

#include <algorithm>

#include "util/csv.h"
#include "util/logging.h"

namespace nps {
namespace bus {

std::vector<ControlEvent> *
ControlPlaneLog::channel(const std::string &name, ChannelKind kind)
{
    for (const auto &l : links_) {
        if (l->name == name)
            util::fatal("control log: link '%s' registered twice",
                        name.c_str());
    }
    links_.push_back(std::make_unique<LinkLog>());
    links_.back()->name = name;
    links_.back()->kind = kind;
    return &links_.back()->events;
}

size_t
ControlPlaneLog::totalEvents() const
{
    size_t n = 0;
    for (const auto &l : links_)
        n += l->events.size();
    return n;
}

std::vector<ControlPlaneLog::Entry>
ControlPlaneLog::merged() const
{
    std::vector<Entry> out;
    out.reserve(totalEvents());
    for (const auto &l : links_) {
        for (const auto &e : l->events)
            out.push_back({l.get(), &e});
    }
    std::sort(out.begin(), out.end(), [](const Entry &a, const Entry &b) {
        if (a.event->tick != b.event->tick)
            return a.event->tick < b.event->tick;
        if (a.link->name != b.link->name)
            return a.link->name < b.link->name;
        return a.event->seq < b.event->seq;
    });
    return out;
}

void
ControlPlaneLog::writeCsv(std::ostream &out) const
{
    util::CsvWriter w(out);
    w.row("tick", "link", "kind", "seq", "value", "aux", "delivered",
          "stale");
    for (const Entry &e : merged()) {
        w.row(static_cast<unsigned long>(e.event->tick), e.link->name,
              channelKindName(e.event->kind),
              static_cast<unsigned long>(e.event->seq), e.event->value,
              e.event->aux, e.event->delivered ? 1 : 0,
              e.event->stale ? 1 : 0);
    }
}

} // namespace bus
} // namespace nps
