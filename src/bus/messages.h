/**
 * @file
 * Typed control-plane messages: the vocabulary of the Figure 4
 * coordination channels, made explicit.
 *
 * The paper coordinates its federated controllers by overloading
 * classical control interfaces — budgets flow down, violation feedback
 * flows up, references flow into nested loops. This header names those
 * flows as message types so every link in the hierarchy (GM→GM, GM→EM,
 * GM→SM, EM→SM, SM→EC, capper/VMC telemetry) speaks one typed,
 * sequence-numbered protocol instead of ad-hoc method calls.
 */

#ifndef NPS_BUS_MESSAGES_H
#define NPS_BUS_MESSAGES_H

#include <cstddef>
#include <cstdint>

namespace nps {
namespace bus {

/** What a channel carries. */
enum class ChannelKind
{
    Budget,    //!< downstream power budget grants (watts)
    Violation, //!< upstream budget-violation feedback (rates)
    Reference, //!< nested-loop reference updates (e.g. the EC's r_ref)
    Telemetry, //!< one-way observability samples (clamps, mode changes)
};

/** Diagnostic name of a channel kind. */
const char *channelKindName(ChannelKind kind);

/** A power budget grant flowing down the capping hierarchy. */
struct BudgetGrant
{
    double watts = 0.0; //!< the granted budget
    size_t tick = 0;    //!< send tick (refreshes the receiver's lease)
    uint64_t seq = 0;   //!< per-link sequence number (1-based)
    uint32_t trace = 0; //!< cascade trace id (0 = untraced)
};

/** Budget-violation feedback flowing up to the consolidator. */
struct ViolationReport
{
    double epoch_rate = 0.0;    //!< violations per tick since last drain
    double lifetime_rate = 0.0; //!< violations per tick since start
    size_t tick = 0;            //!< poll tick
    uint64_t seq = 0;           //!< per-link sequence number (1-based)
};

/** A reference update on a nested control loop (SM → EC). */
struct ReferenceUpdate
{
    double r_ref = 0.0; //!< the new utilization reference
    size_t tick = 0;    //!< send tick
    uint64_t seq = 0;   //!< per-link sequence number (1-based)
};

/** A one-way observability sample (CAP clamps, MM mode switches). */
struct TelemetrySample
{
    double value = 0.0; //!< primary reading (kind-specific)
    double aux = 0.0;   //!< secondary reading (kind-specific)
    size_t tick = 0;    //!< sample tick
    uint64_t seq = 0;   //!< per-link sequence number (1-based)
};

/**
 * One mirrored control-plane event, as stored by the ControlPlaneLog:
 * the union of all message types flattened into (value, aux) plus the
 * delivery outcome the fault layer decided.
 */
struct ControlEvent
{
    size_t tick = 0;    //!< send/poll tick
    uint64_t seq = 0;   //!< per-link sequence number (1-based)
    ChannelKind kind = ChannelKind::Budget;
    double value = 0.0; //!< delivered payload (watts, rate, r_ref, ...)
    double aux = 0.0;   //!< secondary payload (intended watts, ...)
    bool delivered = true; //!< false when a fault dropped the message
    bool stale = false;    //!< true when a fault replayed the previous one
};

} // namespace bus
} // namespace nps

#endif // NPS_BUS_MESSAGES_H
