/**
 * @file
 * ControlPlaneLog: optional mirror of every message delivered on the
 * control bus, for observability.
 *
 * Each ControlLink that is attached to the log owns a private per-link
 * event buffer, registered once at wiring time (single-threaded). At
 * runtime a link appends only to its own buffer, so shardable senders
 * (SMs, CAPs, MMs) can mirror from worker threads without contention or
 * nondeterminism; merged() produces one deterministic, thread-count-
 * independent ordering afterwards by sorting on (tick, link name, seq).
 *
 * Disabled (detached) links skip mirroring entirely, so the log is
 * strictly pay-for-use and the default build is bit-identical to one
 * without it.
 */

#ifndef NPS_BUS_CONTROL_LOG_H
#define NPS_BUS_CONTROL_LOG_H

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "bus/messages.h"
#include "ckpt/snapshot.h"
#include "util/chunked_vector.h"

namespace nps {
namespace bus {

/** Per-link event buffer: chunk-pooled so high-rate mirroring appends
 * without vector doubling/moves, and element addresses stay stable for
 * the merged view (util/chunked_vector.h). */
using EventBuffer = util::ChunkedVector<ControlEvent, 256>;

/**
 * The event log of the whole control plane.
 */
class ControlPlaneLog
{
  public:
    /** One link's registration: its name and its private buffer. */
    struct LinkLog
    {
        std::string name;
        ChannelKind kind = ChannelKind::Budget;
        EventBuffer events;
    };

    /** One entry of the merged view. */
    struct Entry
    {
        const LinkLog *link = nullptr;
        const ControlEvent *event = nullptr;
    };

    /**
     * Register link @p name and return its private event buffer. Must be
     * called at wiring time, before the engine runs — registration is
     * not thread-safe (appending to the returned buffer from the owning
     * sender is). Registering the same name twice is fatal.
     */
    EventBuffer *channel(const std::string &name, ChannelKind kind);

    /** Number of registered links. */
    size_t numLinks() const { return links_.size(); }

    /** Total mirrored events across all links. */
    size_t totalEvents() const;

    /** The registered links, in registration order. */
    const std::vector<std::unique_ptr<LinkLog>> &links() const
    {
        return links_;
    }

    /**
     * All events merged into one deterministic order: by (tick, link
     * name, seq). Independent of registration order, engine thread
     * count, and scheduling.
     */
    std::vector<Entry> merged() const;

    /** Write the merged view as CSV (tick,link,kind,seq,...). */
    void writeCsv(std::ostream &out) const;

    /** Serialize every link's buffered events (checkpointing). */
    void saveState(ckpt::SectionWriter &w) const;

    /**
     * Restore buffered events into the already-registered links, matched
     * by name. Fatal when the snapshot's link set differs from the
     * rebuilt wiring (topology/config mismatch).
     */
    void loadState(ckpt::SectionReader &r);

  private:
    std::vector<std::unique_ptr<LinkLog>> links_;
};

} // namespace bus
} // namespace nps

#endif // NPS_BUS_CONTROL_LOG_H
