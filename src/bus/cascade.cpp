#include "bus/cascade.h"

#include <algorithm>

#include "util/csv.h"
#include "util/logging.h"

namespace nps {
namespace bus {

HopBuffer *
CascadeTracer::channel(const std::string &name, ChannelKind kind)
{
    for (const auto &l : links_) {
        if (l->name == name)
            util::fatal("cascade tracer: link '%s' registered twice",
                        name.c_str());
    }
    links_.push_back(std::make_unique<LinkTrace>());
    links_.back()->name = name;
    links_.back()->kind = kind;
    return &links_.back()->hops;
}

size_t
CascadeTracer::totalHops() const
{
    size_t n = 0;
    for (const auto &l : links_)
        n += l->hops.size();
    return n;
}

std::vector<CascadeTracer::Entry>
CascadeTracer::merged() const
{
    std::vector<Entry> out;
    out.reserve(totalHops());
    for (const auto &l : links_) {
        for (const auto &h : l->hops)
            out.push_back({l.get(), &h});
    }
    std::sort(out.begin(), out.end(), [](const Entry &a, const Entry &b) {
        if (a.hop->tick != b.hop->tick)
            return a.hop->tick < b.hop->tick;
        if (a.link->name != b.link->name)
            return a.link->name < b.link->name;
        return a.hop->seq < b.hop->seq;
    });
    return out;
}

void
CascadeTracer::writeCsv(std::ostream &out) const
{
    util::CsvWriter w(out);
    w.row("tick", "link", "kind", "seq", "trace", "root_tick",
          "hop_latency", "value", "delivered");
    for (const Entry &e : merged()) {
        // trace is root tick + 1 and never 0 here (untraced hops are
        // not recorded), so the subtraction cannot underflow.
        unsigned long root = static_cast<unsigned long>(e.hop->trace - 1);
        w.row(static_cast<unsigned long>(e.hop->tick), e.link->name,
              channelKindName(e.link->kind),
              static_cast<unsigned long>(e.hop->seq),
              static_cast<unsigned long>(e.hop->trace), root,
              static_cast<unsigned long>(e.hop->tick - root),
              e.hop->value, e.hop->delivered ? 1 : 0);
    }
}

} // namespace bus
} // namespace nps
