#include "bus/control_link.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace bus {

double
ViolationTracker::epochViolationRate() const
{
    if (epoch_total_ == 0)
        return 0.0;
    return static_cast<double>(epoch_hits_) /
           static_cast<double>(epoch_total_);
}

void
ViolationTracker::drainEpoch()
{
    epoch_total_ = 0;
    epoch_hits_ = 0;
}

double
ViolationTracker::lifetimeViolationRate() const
{
    if (life_total_ == 0)
        return 0.0;
    return static_cast<double>(life_hits_) /
           static_cast<double>(life_total_);
}

const char *
channelKindName(ChannelKind kind)
{
    switch (kind) {
    case ChannelKind::Budget: return "budget";
    case ChannelKind::Violation: return "violation";
    case ChannelKind::Reference: return "reference";
    case ChannelKind::Telemetry: return "telemetry";
    }
    return "?";
}

ControlLink::ControlLink(ChannelKind kind, std::string name)
    : kind_(kind), name_(std::move(name))
{
}

void
ControlLink::attachLog(ControlPlaneLog *log)
{
    events_ = log ? log->channel(name_, kind_) : nullptr;
}

void
ControlLink::attachCascade(CascadeTracer *tracer)
{
    cascade_ = tracer ? tracer->channel(name_, kind_) : nullptr;
}

void
ControlLink::traceHop(size_t tick, uint64_t seq, uint32_t trace,
                      double value, bool delivered)
{
    if (!cascade_ || trace == 0)
        return;
    CascadeHop h;
    h.tick = tick;
    h.seq = seq;
    h.trace = trace;
    h.value = value;
    h.delivered = delivered;
    cascade_->push_back(h);
}

void
ControlLink::setTransport(Transport *transport, int owner_rank)
{
    transport_ = transport;
    owner_rank_ = transport ? owner_rank : 0;
    wire_id_ = transport ? transport->registerLink(this, owner_rank_) : 0;
}

void
ControlLink::saveState(ckpt::SectionWriter &w) const
{
    w.putU64(seq_);
}

void
ControlLink::loadState(ckpt::SectionReader &r)
{
    seq_ = r.getU64();
}

void
ControlLink::mirror(size_t tick, uint64_t seq, double value, double aux,
                    bool delivered, bool stale)
{
    if (!events_)
        return;
    ControlEvent e;
    e.tick = tick;
    e.seq = seq;
    e.kind = kind_;
    e.value = value;
    e.aux = aux;
    e.delivered = delivered;
    e.stale = stale;
    events_->push_back(e);
}

BudgetLink::BudgetLink(fault::Link link, long child, std::string name,
                       Sink sink)
    : ControlLink(ChannelKind::Budget, std::move(name)),
      link_(link),
      child_(child),
      sink_(std::move(sink))
{
    if (!sink_)
        util::fatal("BudgetLink %s: null sink", this->name().c_str());
}

void
BudgetLink::setFaultInjector(const fault::FaultInjector *faults,
                             fault::DegradeStats *stats)
{
    faults_ = faults;
    stats_ = stats;
}

void
BudgetLink::setStreamHealth(const fault::StreamHealth *health,
                            fault::DegradeStats *stats)
{
    health_ = health;
    if (stats)
        stats_ = stats;
}

bool
BudgetLink::send(double watts, size_t tick)
{
    uint64_t seq = nextSeq();
    double deliver = watts;
    bool dropped = false;
    bool stale = false;
    if (health_ && health_->silent(child_, tick)) {
        // The child's telemetry stream is silent: treat the send as
        // lost on the wire, byte-for-byte the injected-drop path below
        // (counted, mirrored undelivered, lease keeps aging).
        dropped = true;
    } else if (faults_) {
        if (faults_->budgetDropped(link_, child_, tick)) {
            // Lost on the wire: the receiver's lease keeps aging.
            dropped = true;
        } else if (faults_->budgetStale(link_, child_, tick) &&
                   has_prev_) {
            // The link delivered the previous epoch's grant.
            stale = true;
            deliver = prev_;
        }
    }
    // The fresh value becomes the next epoch's stale candidate whether
    // or not this send made it through.
    prev_ = watts;
    has_prev_ = true;
    deliver = std::max(deliver, kMinGrant);
    uint32_t trace = traceStamp();
    bool delayed = false;
    uint8_t netem = 0;
    if (!dropped) {
        // A locally dropped send never reaches the transport: over a
        // socket an injected link fault is real wire silence (every
        // replica computes the same drop, so no receiver waits for the
        // frame). The transport may still degrade a computed delivery
        // to a drop — the process hosting this link is down — or, under
        // netem, park it on the virtual wire or drop it for cause.
        WireMsg m = resolveOutcome(wireMsg(
            tick, seq, deliver, watts,
            static_cast<uint8_t>(kWireDelivered |
                                 (stale ? kWireStale : 0))));
        trace = m.trace;
        netem = m.flags &
                (kWireDelayed | kWirePartitioned | kWireExpired);
        if (m.flags & kWireDelayed) {
            // Queued on the virtual wire: the transport owns the copy
            // and hands it back through deliverLate() at a later tick
            // barrier. Not a drop — the grant may still arrive within
            // its lease — but nothing reaches the sink now.
            delayed = true;
            stale = false;
        } else if (!(m.flags & kWireDelivered)) {
            dropped = true;
            stale = false;
        } else {
            stale = (m.flags & kWireStale) != 0;
            deliver = m.value;
        }
    }
    if (stats_) {
        if (delayed)
            ++stats_->netem_delayed;
        if (netem & kWirePartitioned)
            ++stats_->netem_partition_drops;
        if (netem & kWireExpired)
            ++stats_->netem_expired;
    }
    if (dropped) {
        if (stats_)
            ++stats_->dropped_budgets;
    } else if (stale) {
        if (stats_)
            ++stats_->stale_budgets;
    }
    bool sunk = !dropped && !delayed;
    mirror(tick, seq, sunk ? deliver : 0.0, watts, sunk, stale);
    traceHop(tick, seq, trace, sunk ? deliver : 0.0, sunk);
    if (!sunk)
        return false;
    ++delivered_;
    if (!sank_any_ || seqNewer(seq, last_sink_seq_)) {
        last_sink_seq_ = seq;
        sank_any_ = true;
    }
    sink_(BudgetGrant{deliver, tick, seq, trace});
    return true;
}

bool
BudgetLink::deliverLate(const WireMsg &m, size_t now_tick)
{
    bool stale = (m.flags & kWireStale) != 0;
    if (sank_any_ && !seqNewer(m.seq, last_sink_seq_)) {
        // Overtaken on the virtual wire: a fresher grant already
        // reached the sink. The sink must never see budgets move
        // backwards in epoch order, so the late copy is discarded.
        if (stats_)
            ++stats_->netem_reorder_drops;
        mirror(now_tick, m.seq, 0.0, m.aux, false, stale);
        traceHop(now_tick, m.seq, m.trace, 0.0, false);
        return false;
    }
    double deliver = std::max(m.value, kMinGrant);
    if (stats_) {
        ++stats_->netem_late_deliveries;
        if (stale)
            ++stats_->stale_budgets;
    }
    mirror(now_tick, m.seq, deliver, m.aux, true, stale);
    traceHop(now_tick, m.seq, m.trace, deliver, true);
    ++delivered_;
    last_sink_seq_ = m.seq;
    sank_any_ = true;
    // The grant keeps its original send tick: a receiver arming a lease
    // from it sees the lease aged by the wire latency, exactly as a
    // real delayed management message would.
    sink_(BudgetGrant{deliver, static_cast<size_t>(m.tick), m.seq,
                      m.trace});
    return true;
}

void
BudgetLink::reset()
{
    prev_ = 0.0;
    has_prev_ = false;
}

void
BudgetLink::saveState(ckpt::SectionWriter &w) const
{
    ControlLink::saveState(w);
    w.putDouble(prev_);
    w.putBool(has_prev_);
    w.putU64(delivered_);
    w.putU64(last_sink_seq_);
    w.putBool(sank_any_);
}

void
BudgetLink::loadState(ckpt::SectionReader &r)
{
    ControlLink::loadState(r);
    prev_ = r.getDouble();
    has_prev_ = r.getBool();
    delivered_ = r.getU64();
    last_sink_seq_ = r.getU64();
    sank_any_ = r.getBool();
}

ViolationChannel::ViolationChannel(std::string name,
                                   ViolationSource *source)
    : ControlLink(ChannelKind::Violation, std::move(name)),
      source_(source)
{
    if (!source_)
        util::fatal("ViolationChannel %s: null source",
                    this->name().c_str());
}

ViolationReport
ViolationChannel::poll(size_t tick)
{
    ViolationReport r;
    r.epoch_rate = source_->epochViolationRate();
    r.lifetime_rate = source_->lifetimeViolationRate();
    r.tick = tick;
    r.seq = nextSeq();
    // Upward feedback answers the last budget epoch the polled source
    // received: stamp the report with that epoch's cascade trace id.
    setTraceStamp(source_->cascadeStamp());
    WireMsg m = resolveOutcome(wireMsg(tick, r.seq, r.epoch_rate,
                                       r.lifetime_rate, kWireDelivered));
    bool delivered = (m.flags & kWireDelivered) != 0;
    // A dead source reports no violations: zero rates, mirrored as an
    // undelivered poll, until the hosting process rejoins.
    r.epoch_rate = delivered ? m.value : 0.0;
    r.lifetime_rate = delivered ? m.aux : 0.0;
    mirror(tick, r.seq, r.epoch_rate, r.lifetime_rate, delivered, false);
    traceHop(tick, r.seq, m.trace, r.epoch_rate, delivered);
    return r;
}

void
ViolationChannel::drain()
{
    source_->drainEpoch();
}

ReferenceLink::ReferenceLink(std::string name, Sink sink)
    : ControlLink(ChannelKind::Reference, std::move(name)),
      sink_(std::move(sink))
{
    if (!sink_)
        util::fatal("ReferenceLink %s: null sink", this->name().c_str());
}

void
ReferenceLink::send(double r_ref, size_t tick)
{
    uint64_t seq = nextSeq();
    WireMsg m = resolveOutcome(wireMsg(tick, seq, r_ref, 0.0,
                                       kWireDelivered));
    bool delivered = (m.flags & kWireDelivered) != 0;
    mirror(tick, seq, m.value, 0.0, delivered, false);
    if (delivered)
        sink_(ReferenceUpdate{m.value, tick, seq});
}

TelemetryLink::TelemetryLink(std::string name)
    : ControlLink(ChannelKind::Telemetry, std::move(name))
{
}

void
TelemetryLink::emit(double value, double aux, size_t tick)
{
    uint64_t seq = nextSeq();
    WireMsg m = resolveOutcome(wireMsg(tick, seq, value, aux,
                                       kWireDelivered));
    mirror(tick, seq, m.value, m.aux, (m.flags & kWireDelivered) != 0,
           false);
}

} // namespace bus
} // namespace nps
