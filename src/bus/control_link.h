/**
 * @file
 * ControlLink: the per-link abstraction every coordination channel of
 * the hierarchy speaks through.
 *
 * A link binds one (sender, receiver) pair to one typed channel and
 * gives the whole stack a single uniform hook point:
 *
 *   - sequence numbers: every message on a link is numbered, so logs
 *     and tests can reason about ordering and loss;
 *   - fault injection: drop/stale faults on budget links are applied
 *     here, once, instead of being re-implemented per controller;
 *   - observability: delivered (and dropped) messages can be mirrored
 *     into an optional ControlPlaneLog.
 *
 * The fault semantics reproduce the per-controller plumbing they
 * replace exactly: a dropped grant is counted and not delivered (the
 * receiver's lease keeps aging); a stale grant delivers the previous
 * epoch's value when one exists (and is counted), otherwise the fresh
 * value passes through uncounted; delivered budgets are clamped to a
 * tiny positive floor. FaultInjector queries are pure functions of
 * (seed, kind, target, tick), so routing them through the link cannot
 * perturb any other random stream.
 */

#ifndef NPS_BUS_CONTROL_LINK_H
#define NPS_BUS_CONTROL_LINK_H

#include <functional>
#include <string>
#include <vector>

#include "bus/cascade.h"
#include "bus/control_log.h"
#include "bus/messages.h"
#include "bus/transport.h"
#include "bus/violation.h"
#include "fault/health.h"
#include "fault/injector.h"

namespace nps {
namespace bus {

/**
 * Common identity, sequencing and mirroring of every channel.
 */
class ControlLink
{
  public:
    ControlLink(ChannelKind kind, std::string name);
    virtual ~ControlLink() = default;

    /** The link's unique name, e.g. "EM/2->SM/9". */
    const std::string &name() const { return name_; }

    /** What the link carries. */
    ChannelKind kind() const { return kind_; }

    /** Messages sent so far (dropped ones included). */
    uint64_t sent() const { return seq_; }

    /**
     * Mirror this link's traffic into @p log (null detaches). Must be
     * called at wiring time, before the engine runs.
     */
    void attachLog(ControlPlaneLog *log);

    /**
     * Record this link's trace-stamped hops into @p tracer (null
     * detaches). Must be called at wiring time, before the engine runs.
     * Only messages carrying a non-zero trace id are recorded.
     */
    void attachCascade(CascadeTracer *tracer);

    /**
     * Stamp every subsequent message with cascade trace id @p trace
     * (0 = untraced). Senders set this right before send/poll; the
     * stamp is derived from serialized controller state, so it needs no
     * checkpointing of its own.
     */
    void setTraceStamp(uint32_t trace) { trace_stamp_ = trace; }

    /** The current cascade trace stamp. */
    uint32_t traceStamp() const { return trace_stamp_; }

    /**
     * Route this link's messages through @p transport (null detaches,
     * restoring the inline fast path — the two are bit-identical for
     * an in-process transport). @p owner_rank is the process rank
     * hosting this link's sender (docs/DISTRIBUTED.md); a
     * single-process run passes 0. Must be called at wiring time,
     * before the engine runs.
     */
    void setTransport(Transport *transport, int owner_rank);

    /** The attached transport, or nullptr. */
    Transport *transport() const { return transport_; }

    /** The rank owning this link under the attached transport. */
    int ownerRank() const { return owner_rank_; }

    /** The wire id assigned at registration (transport attached only). */
    uint32_t wireId() const { return wire_id_; }

    /** Serialize the sequence counter (checkpointing). */
    virtual void saveState(ckpt::SectionWriter &w) const;

    /** Restore the sequence counter (checkpoint restore). */
    virtual void loadState(ckpt::SectionReader &r);

  protected:
    /** Claim the next sequence number (1-based). */
    uint64_t nextSeq() { return ++seq_; }

    /** Append one event to the attached log, if any. */
    void mirror(size_t tick, uint64_t seq, double value, double aux,
                bool delivered, bool stale);

    /**
     * Record one resolved hop into the attached cascade buffer, if any.
     * Untraced messages (trace 0) are skipped.
     */
    void traceHop(size_t tick, uint64_t seq, uint32_t trace, double value,
                  bool delivered);

    /**
     * Resolve @p local through the attached transport, or return it
     * unchanged when none is attached. Subclasses call this between
     * computing a message's local outcome and acting on it.
     */
    WireMsg resolveOutcome(const WireMsg &local)
    {
        if (!transport_)
            return local;
        return transport_->resolve(*this, local);
    }

    /** Build a WireMsg stamped with this link's wire id. */
    WireMsg wireMsg(size_t tick, uint64_t seq, double value, double aux,
                    uint8_t flags) const
    {
        WireMsg m;
        m.link = wire_id_;
        m.tick = tick;
        m.seq = seq;
        m.value = value;
        m.aux = aux;
        m.trace = trace_stamp_;
        m.flags = flags;
        return m;
    }

  private:
    ChannelKind kind_;
    std::string name_;
    uint64_t seq_ = 0;
    EventBuffer *events_ = nullptr;
    HopBuffer *cascade_ = nullptr;
    uint32_t trace_stamp_ = 0;
    Transport *transport_ = nullptr;
    int owner_rank_ = 0;
    uint32_t wire_id_ = 0;
};

/**
 * A downstream budget channel (GM→GM, GM→EM, GM→SM, EM→SM): the only
 * channel the fault layer's drop/stale modes target.
 */
class BudgetLink : public ControlLink
{
  public:
    /** Delivery floor: grants are clamped to at least this (watts). */
    static constexpr double kMinGrant = 1e-6;

    using Sink = std::function<void(const BudgetGrant &)>;

    /**
     * @param link  Which fault-model link class this instance is.
     * @param child Receiver instance id (the fault target id).
     * @param name  Unique link name for logs and diagnostics.
     * @param sink  Delivery callback into the receiver.
     */
    BudgetLink(fault::Link link, long child, std::string name, Sink sink);

    /**
     * Attach the fault oracle and the sender's degradation counters
     * (either may be null; both null = fault-free).
     */
    void setFaultInjector(const fault::FaultInjector *faults,
                          fault::DegradeStats *stats);

    /**
     * Attach a stream-liveness oracle (online engine): a send to a
     * child whose telemetry stream is silent at the send tick is
     * treated exactly like an injected drop — counted in @p stats,
     * mirrored as undelivered, the receiver's lease keeps aging. Only
     * meaningful on links whose child id is a server id (EM→SM, GM→SM);
     * null detaches.
     */
    void setStreamHealth(const fault::StreamHealth *health,
                         fault::DegradeStats *stats);

    /**
     * Attach the sender's degradation counters without touching the
     * fault or liveness oracles. A distributed run needs drops counted
     * even when no fault campaign is scheduled: a grant addressed to a
     * killed peer process resolves as undelivered and must age the
     * receiver's lease ladder visibly (docs/DISTRIBUTED.md). Null is
     * ignored (an earlier attachment stays).
     */
    void attachDegradeStats(fault::DegradeStats *stats)
    {
        if (stats)
            stats_ = stats;
    }

    /**
     * Send a grant of @p watts at @p tick. Applies any active drop or
     * stale fault, mirrors the outcome, and invokes the sink on
     * delivery. @return false when the send was dropped.
     */
    bool send(double watts, size_t tick);

    /**
     * Deliver a netem-delayed grant at the tick barrier of @p now_tick
     * (docs/NETWORK_FAULTS.md): @p m is the resolved outcome a
     * transport queued instead of delivering, with its original send
     * tick/seq/value intact. A late grant older than one the sink has
     * already seen is discarded (the reorder window, compared with
     * seqNewer so a wrapped sequence stays fresh); otherwise it is
     * mirrored, counted and sunk like an on-time delivery.
     * @return false when the reorder window discarded it.
     */
    bool deliverLate(const WireMsg &m, size_t now_tick);

    /**
     * Forget the previous-epoch grant (sender restarted cold): the next
     * stale fault has nothing old to replay and delivers fresh.
     */
    void reset();

    /** Messages actually delivered (sent() minus drops). */
    uint64_t delivered() const { return delivered_; }

    /** Serialize seq + stale-replay slot + delivery + reorder window. */
    void saveState(ckpt::SectionWriter &w) const override;

    /** Restore seq + stale-replay slot + delivery + reorder window. */
    void loadState(ckpt::SectionReader &r) override;

    /** The fault-model link class. */
    fault::Link link() const { return link_; }

    /** The receiver's fault target id. */
    long child() const { return child_; }

  private:
    fault::Link link_;
    long child_;
    Sink sink_;
    const fault::FaultInjector *faults_ = nullptr;
    fault::DegradeStats *stats_ = nullptr;
    const fault::StreamHealth *health_ = nullptr;
    double prev_ = 0.0;      //!< previous epoch's grant (stale replay)
    bool has_prev_ = false;
    uint64_t delivered_ = 0;
    uint64_t last_sink_seq_ = 0; //!< newest seq the sink has seen
    bool sank_any_ = false;      //!< arms the reorder window
};

/**
 * An upstream violation-feedback channel: wraps one ViolationSource so
 * the consolidator's reads become typed, numbered messages.
 */
class ViolationChannel : public ControlLink
{
  public:
    ViolationChannel(std::string name, ViolationSource *source);

    /** Read the source's current rates as a report (and mirror it). */
    ViolationReport poll(size_t tick);

    /** Reset the source's epoch window (after consuming a report). */
    void drain();

    /** The wrapped source. */
    ViolationSource *source() const { return source_; }

  private:
    ViolationSource *source_;
};

/**
 * A nested-loop reference channel (SM → EC r_ref actuation).
 */
class ReferenceLink : public ControlLink
{
  public:
    using Sink = std::function<void(const ReferenceUpdate &)>;

    ReferenceLink(std::string name, Sink sink);

    /** Send a reference update of @p r_ref at @p tick. */
    void send(double r_ref, size_t tick);

  private:
    Sink sink_;
};

/**
 * A one-way telemetry channel: no receiver, mirror-only. Used by the
 * electrical cappers and memory managers to publish actuation events.
 */
class TelemetryLink : public ControlLink
{
  public:
    explicit TelemetryLink(std::string name);

    /** Publish one sample. */
    void emit(double value, double aux, size_t tick);
};

} // namespace bus
} // namespace nps

#endif // NPS_BUS_CONTROL_LINK_H
