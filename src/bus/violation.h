/**
 * @file
 * Violation feedback interface: the exposure of budget-violation history
 * across controllers, the stand-in for the paper's "extend current CIM
 * models exposed through DMTF interfaces" (Section 3.1).
 *
 * Lives in the bus layer because it is the payload contract of the
 * Violation channel: every capping level implements ViolationSource, and
 * the consolidator polls it through a ViolationChannel.
 */

#ifndef NPS_BUS_VIOLATION_H
#define NPS_BUS_VIOLATION_H

#include <cstdint>

#include "ckpt/snapshot.h"

namespace nps {
namespace bus {

/**
 * Exposure of budget-violation history across controllers. The VMC
 * consumes this to tune consolidation aggressiveness.
 */
class ViolationSource
{
  public:
    virtual ~ViolationSource() = default;

    /** Fraction of observed ticks over budget since the last drain. */
    virtual double epochViolationRate() const = 0;

    /** Reset the epoch window (called by the consumer after reading). */
    virtual void drainEpoch() = 0;

    /** Lifetime fraction of observed ticks over budget. */
    virtual double lifetimeViolationRate() const = 0;

    /**
     * Cascade trace id of the last budget grant this source received
     * (0 when untraced or never granted). The ViolationChannel stamps
     * polled reports with it so upward feedback joins the GM→EM→SM
     * cascade it causally answers (docs/OBSERVABILITY.md).
     */
    virtual uint32_t cascadeStamp() const { return 0; }
};

/** Accumulator implementing ViolationSource bookkeeping. */
class ViolationTracker : public ViolationSource
{
  public:
    /** Record one observation. */
    void
    record(bool violated)
    {
        ++epoch_total_;
        ++life_total_;
        if (violated) {
            ++epoch_hits_;
            ++life_hits_;
        }
    }

    double epochViolationRate() const override;
    void drainEpoch() override;
    double lifetimeViolationRate() const override;

    /** Serialize the four counters (checkpointing). */
    void
    saveState(ckpt::SectionWriter &w) const
    {
        w.putU64(epoch_total_);
        w.putU64(epoch_hits_);
        w.putU64(life_total_);
        w.putU64(life_hits_);
    }

    /** Restore the four counters (checkpoint restore). */
    void
    loadState(ckpt::SectionReader &r)
    {
        epoch_total_ = static_cast<unsigned long>(r.getU64());
        epoch_hits_ = static_cast<unsigned long>(r.getU64());
        life_total_ = static_cast<unsigned long>(r.getU64());
        life_hits_ = static_cast<unsigned long>(r.getU64());
    }

  private:
    unsigned long epoch_total_ = 0;
    unsigned long epoch_hits_ = 0;
    unsigned long life_total_ = 0;
    unsigned long life_hits_ = 0;
};

} // namespace bus
} // namespace nps

#endif // NPS_BUS_VIOLATION_H
