/**
 * @file
 * CascadeTracer: causal tracing of the GM→EM→SM budget cascade
 * (docs/OBSERVABILITY.md).
 *
 * Every root budget epoch a group manager opens is stamped with a
 * deterministic trace id (the epoch tick + 1, so id 0 means untraced).
 * The id rides in bus::WireMsg across every hop the epoch causally
 * produces — nested GM grants, EM re-grants, and the violation reports
 * that answer them — including across process boundaries, where the
 * socket transport carries it inside the NPSF ctrl frame. Attached
 * links record each stamped hop into a private per-link buffer, the
 * exact determinism recipe of ControlPlaneLog: registration is
 * single-threaded at wiring time, recording is contention-free, and
 * merged() sorts on (tick, link name, seq) so the CSV is byte-identical
 * at any thread count and between the single-process oracle and a
 * distributed run.
 *
 * The per-hop latency column is the causal depth in ticks: how long
 * after the root epoch opened this hop happened (tick − root tick).
 */

#ifndef NPS_BUS_CASCADE_H
#define NPS_BUS_CASCADE_H

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "bus/messages.h"
#include "util/chunked_vector.h"

namespace nps {
namespace bus {

/** One recorded hop of a budget cascade. */
struct CascadeHop
{
    size_t tick = 0;     //!< send/poll tick of the hop
    uint64_t seq = 0;    //!< the link's sequence number
    uint32_t trace = 0;  //!< cascade trace id (root tick + 1, never 0)
    double value = 0.0;  //!< delivered payload (watts or epoch rate)
    bool delivered = true; //!< false when the hop was dropped
};

/** Per-link hop buffer (see bus/control_log.h for the chunking why). */
using HopBuffer = util::ChunkedVector<CascadeHop, 256>;

/**
 * The cascade trace of the whole control plane.
 */
class CascadeTracer
{
  public:
    /** One link's registration: its name and its private buffer. */
    struct LinkTrace
    {
        std::string name;
        ChannelKind kind = ChannelKind::Budget;
        HopBuffer hops;
    };

    /** One entry of the merged view. */
    struct Entry
    {
        const LinkTrace *link = nullptr;
        const CascadeHop *hop = nullptr;
    };

    /**
     * Register link @p name and return its private hop buffer. Must be
     * called at wiring time, before the engine runs; registering the
     * same name twice is fatal.
     */
    HopBuffer *channel(const std::string &name, ChannelKind kind);

    /** Number of registered links. */
    size_t numLinks() const { return links_.size(); }

    /** Total recorded hops across all links. */
    size_t totalHops() const;

    /**
     * All hops merged into one deterministic order: by (tick, link
     * name, seq). Independent of registration order, engine thread
     * count, and process layout.
     */
    std::vector<Entry> merged() const;

    /**
     * Write the merged view as CSV:
     * tick,link,kind,seq,trace,root_tick,hop_latency,value,delivered.
     */
    void writeCsv(std::ostream &out) const;

  private:
    std::vector<std::unique_ptr<LinkTrace>> links_;
};

} // namespace bus
} // namespace nps

#endif // NPS_BUS_CASCADE_H
