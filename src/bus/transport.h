/**
 * @file
 * The transport seam of the control plane (docs/DISTRIBUTED.md).
 *
 * Every ControlLink subclass (budget, violation, reference, telemetry,
 * gm-gm) first computes its message outcome exactly as the in-process
 * bus always has — sequence number, fault drop/stale resolution, the
 * delivery clamp — and then, when a Transport is attached, hands that
 * locally computed outcome to Transport::resolve() for the
 * *authoritative* outcome. The seam is what makes the management
 * levels deployable as separate processes:
 *
 *   - InProcTransport (here) resolves every message to its local
 *     outcome, bit-identically to having no transport at all. It is
 *     the default everywhere and the oracle the distributed runtime is
 *     tested against.
 *   - stream::SocketTransport serializes messages of remotely-hosted
 *     links as NPSF frames over unix/tcp sockets. The processes run in
 *     deterministic lockstep (every replica computes every link's
 *     message), so in a healthy run resolve() returns exactly the
 *     local outcome — verified frame by frame — and when the hosting
 *     process dies its links' sends resolve as drops, feeding the
 *     existing lease/fallback degradation ladder.
 *
 * Link ownership: each link belongs to the management level of its
 * *sender* (a GM owns its grant links, the VMC's violation channels
 * belong to the polled source's level, an SM owns its r_ref link).
 * Controllers report that owner through an OwnerFn when the transport
 * is attached; links owned by rank 0 (the supervisor, which can never
 * outlive the run) resolve locally in every process and put nothing on
 * the wire.
 */

#ifndef NPS_BUS_TRANSPORT_H
#define NPS_BUS_TRANSPORT_H

#include <atomic>
#include <cstdint>
#include <functional>

namespace nps {
namespace bus {

class ControlLink;

/** Management level a link's sender belongs to (transport ownership). */
enum class OwnerLevel
{
    Gm,
    Em,
    Sm,
    Ec,
    Vmc,
    Cap,
    Mem,
};

/**
 * Maps a link's owning (level, instance id) to the process rank that
 * hosts it. Rank 0 is always the supervisor; a single-process run maps
 * everything to 0.
 */
using OwnerFn = std::function<int(OwnerLevel, long)>;

/** An OwnerFn mapping every level to the local process (rank 0). */
inline OwnerFn
localOwner()
{
    return [](OwnerLevel, long) { return 0; };
}

/// @name WireMsg flags
/// @{
inline constexpr uint8_t kWireDelivered = 0x1; //!< message reached the sink
inline constexpr uint8_t kWireStale = 0x2;     //!< stale-fault replay
inline constexpr uint8_t kWireDelayed = 0x4;   //!< netem: queued for later
inline constexpr uint8_t kWirePartitioned = 0x8; //!< netem: partition drop
inline constexpr uint8_t kWireExpired = 0x10; //!< netem: missed the deadline
/// @}

/**
 * Serial-arithmetic sequence comparison: @return true when @p a is
 * newer than @p b even across a u64 wraparound (RFC 1982 style). The
 * netem reorder window uses this so a wrapped-but-fresh message is
 * never misclassified as stale.
 */
inline bool
seqNewer(uint64_t a, uint64_t b)
{
    return static_cast<int64_t>(a - b) > 0;
}

/**
 * One control-plane message in transport form — the exact payload the
 * socket transport frames on the wire ('G'/'V'/'R'/'Y' NPSF types).
 * `value`/`aux` carry the channel-specific pair (delivered watts and
 * requested watts for budgets, epoch and lifetime rate for violations,
 * r_ref for references, value/aux for telemetry).
 */
struct WireMsg
{
    uint32_t link = 0; //!< dense wire id from Transport::registerLink
    uint64_t tick = 0;
    uint64_t seq = 0;
    double value = 0.0;
    double aux = 0.0;
    //! cascade trace id (docs/OBSERVABILITY.md): the GM budget epoch
    //! this message causally descends from, 0 when untraced. Computed
    //! deterministically from simulation state, so replicas agree on it
    //! bit-for-bit and the lockstep cross-check covers it.
    uint32_t trace = 0;
    uint8_t flags = 0;
};

/**
 * Pluggable message mover behind every ControlLink.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Register @p link as the next wire id. Called once per link at
     * wiring time (before the engine runs), in the deterministic
     * Coordinator::attachTransport order — every process of a
     * distributed run therefore assigns identical ids, which the join
     * handshake verifies with a digest of the registered names.
     * @return the id the link must stamp into its messages.
     */
    virtual uint32_t registerLink(ControlLink *link, int owner_rank) = 0;

    /**
     * Resolve the authoritative outcome of one message whose locally
     * computed outcome is @p local. In-process this is the identity. A
     * socket transport broadcasts messages of links it owns, blocks for
     * the owner's frame on links it does not, and degrades the message
     * to an undelivered drop when the owning process is down.
     */
    virtual WireMsg resolve(const ControlLink &link, const WireMsg &local) = 0;
};

/**
 * The default transport: every message resolves to its local outcome,
 * bit-identically to the transport-less bus. Keeps per-kind tallies so
 * tests can assert traffic volumes; counters are atomic because
 * rank-0-owned links send from sharded worker threads.
 */
class InProcTransport : public Transport
{
  public:
    uint32_t registerLink(ControlLink *link, int owner_rank) override;

    WireMsg resolve(const ControlLink &link, const WireMsg &local) override;

    /** Links registered so far. */
    uint32_t links() const { return next_id_.load(); }

    /** Messages resolved so far (delivered and dropped). */
    uint64_t messages() const { return messages_.load(); }

    /** Messages resolved as delivered. */
    uint64_t delivered() const { return delivered_.load(); }

  private:
    std::atomic<uint32_t> next_id_{0};
    std::atomic<uint64_t> messages_{0};
    std::atomic<uint64_t> delivered_{0};
};

} // namespace bus
} // namespace nps

#endif // NPS_BUS_TRANSPORT_H
