#include "bus/transport.h"

#include "bus/control_link.h"

namespace nps {
namespace bus {

uint32_t
InProcTransport::registerLink(ControlLink *link, int owner_rank)
{
    (void)link;
    (void)owner_rank;
    return next_id_.fetch_add(1, std::memory_order_relaxed);
}

WireMsg
InProcTransport::resolve(const ControlLink &link, const WireMsg &local)
{
    (void)link;
    messages_.fetch_add(1, std::memory_order_relaxed);
    if (local.flags & kWireDelivered)
        delivered_.fetch_add(1, std::memory_order_relaxed);
    return local;
}

} // namespace bus
} // namespace nps
