#include "control/loop.h"

namespace nps {
namespace ctl {

ControlLoop::ControlLoop(std::string name)
    : name_(std::move(name))
{
}

void
ControlLoop::setReference(double reference)
{
    reference_ = reference;
}

double
ControlLoop::step()
{
    last_measurement_ = measure();
    last_error_ = reference_ - last_measurement_;
    double u = control(last_error_, last_measurement_);
    actuate(u);
    ++steps_;
    return u;
}

void
ControlLoop::reset()
{
    last_measurement_ = 0.0;
    last_error_ = 0.0;
    steps_ = 0;
}

} // namespace ctl
} // namespace nps
