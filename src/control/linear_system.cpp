#include "control/linear_system.h"

#include <cmath>

#include "util/logging.h"

namespace nps {
namespace ctl {

FirstOrderSystem::FirstOrderSystem(double a, double b, double x0)
    : a_(a), b_(b), x_(x0)
{
}

bool
FirstOrderSystem::stable() const
{
    return std::fabs(a_) < 1.0;
}

double
FirstOrderSystem::fixedPoint() const
{
    if (a_ == 1.0)
        util::fatal("FirstOrderSystem::fixedPoint: pole at 1");
    return b_ / (1.0 - a_);
}

double
FirstOrderSystem::step()
{
    x_ = a_ * x_ + b_;
    return x_;
}

std::vector<double>
FirstOrderSystem::run(size_t n)
{
    std::vector<double> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(step());
    return out;
}

size_t
FirstOrderSystem::settlingTime(double tol, size_t max_steps)
{
    if (!stable())
        util::fatal("FirstOrderSystem::settlingTime on unstable system");
    double target = fixedPoint();
    for (size_t k = 0; k < max_steps; ++k) {
        step();
        if (std::fabs(x_ - target) < tol)
            return k + 1;
    }
    return max_steps;
}

double
smClosedLoopPole(double beta, double c)
{
    return 1.0 - beta * c;
}

FirstOrderSystem
smClosedLoop(double beta, double c, double cap, double pow0)
{
    // pow(k) = (1 - beta c) pow(k-1) + beta c cap  (Appendix A, Eq. 9)
    return FirstOrderSystem(smClosedLoopPole(beta, c), beta * c * cap,
                            pow0);
}

} // namespace ctl
} // namespace nps
