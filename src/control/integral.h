/**
 * @file
 * Integral control law with anti-windup clamping.
 *
 * The EC and SM are both integral controllers: the actuator moves by an
 * amount proportional to the current error, accumulating over time so the
 * steady-state error is driven to zero. The IntegralController here is the
 * reusable core: u(k) = clamp(u(k-1) + gain(k) * error(k)), where gain(k)
 * may be supplied per step (the EC's gain is self-tuning; see Figure 6).
 */

#ifndef NPS_CONTROL_INTEGRAL_H
#define NPS_CONTROL_INTEGRAL_H

namespace nps {
namespace ctl {

/**
 * Clamped discrete-time integral control law.
 */
class IntegralController
{
  public:
    /**
     * @param initial Initial actuator value u(0).
     * @param lo      Lower clamp for the actuator.
     * @param hi      Upper clamp for the actuator.
     */
    IntegralController(double initial, double lo, double hi);

    /** @return the current actuator value. */
    double value() const { return value_; }

    /** Force the actuator value (clamped). */
    void setValue(double value);

    /**
     * Integrate one step: value += gain * error, then clamp.
     * @return the new actuator value.
     */
    double update(double gain, double error);

    /** @return lower clamp. */
    double lo() const { return lo_; }

    /** @return upper clamp. */
    double hi() const { return hi_; }

    /** Change the clamp range (re-clamps the current value). */
    void setRange(double lo, double hi);

    /** @return true when the current value sits on either clamp. */
    bool saturated() const;

  private:
    double value_;
    double lo_;
    double hi_;
};

} // namespace ctl
} // namespace nps

#endif // NPS_CONTROL_INTEGRAL_H
