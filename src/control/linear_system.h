/**
 * @file
 * First-order discrete-time linear system models used by the stability
 * analysis and its tests.
 *
 * Appendix A linearizes the nested EC/SM loops into scalar recurrences of
 * the form x(k) = a * x(k-1) + b; FirstOrderSystem simulates exactly that
 * recurrence so the analytical claims (|a| < 1 implies convergence to the
 * fixed point b / (1 - a)) can be cross-checked numerically.
 */

#ifndef NPS_CONTROL_LINEAR_SYSTEM_H
#define NPS_CONTROL_LINEAR_SYSTEM_H

#include <cstddef>
#include <vector>

namespace nps {
namespace ctl {

/**
 * The scalar recurrence x(k) = a * x(k-1) + b.
 */
class FirstOrderSystem
{
  public:
    /** @param a pole; @param b constant input; @param x0 initial state. */
    FirstOrderSystem(double a, double b, double x0);

    /** @return the pole a. */
    double pole() const { return a_; }

    /** @return true when |a| < 1, i.e. the recurrence converges. */
    bool stable() const;

    /** Fixed point b / (1 - a). @pre a != 1 */
    double fixedPoint() const;

    /** @return current state x(k). */
    double state() const { return x_; }

    /** Advance one step; @return the new state. */
    double step();

    /** Run @p n steps and return the visited states (x(1)..x(n)). */
    std::vector<double> run(size_t n);

    /**
     * Number of steps for |x(k) - fixedPoint| to fall below @p tol,
     * capped at @p max_steps (returns max_steps when not reached).
     * @pre stable()
     */
    size_t settlingTime(double tol, size_t max_steps);

  private:
    double a_;
    double b_;
    double x_;
};

/**
 * Closed-loop pole of the linearized SM power loop (Appendix A, Eq. 9):
 * pow(k) = (1 - beta * c) * pow(k-1) + beta * c * cap. The loop is stable
 * iff |1 - beta*c| < 1.
 */
double smClosedLoopPole(double beta, double c);

/**
 * Build the SM linearized closed loop: state is the power, input the cap.
 */
FirstOrderSystem smClosedLoop(double beta, double c, double cap,
                              double pow0);

} // namespace ctl
} // namespace nps

#endif // NPS_CONTROL_LINEAR_SYSTEM_H
