/**
 * @file
 * The classical feedback-control skeleton of Figure 3: a measured output is
 * compared with a reference; a controller maps the error to an actuator
 * setting.
 *
 * The paper's coordination trick is to *overload* these interfaces: one
 * controller's actuator is another controller's reference input (the SM
 * actuates the EC's r_ref; the EM/GM actuate the SM's power budget). The
 * ControlLoop base class therefore exposes setReference() as a first-class
 * channel that outer loops may drive.
 */

#ifndef NPS_CONTROL_LOOP_H
#define NPS_CONTROL_LOOP_H

#include <string>

namespace nps {
namespace ctl {

/**
 * Base class for feedback loops (Figure 3 of the paper).
 *
 * A step performs: measure -> compute error against the reference ->
 * control law -> actuate. Subclasses supply the three hooks.
 */
class ControlLoop
{
  public:
    /** @param name Diagnostic name of the loop. */
    explicit ControlLoop(std::string name);

    virtual ~ControlLoop() = default;

    ControlLoop(const ControlLoop &) = delete;
    ControlLoop &operator=(const ControlLoop &) = delete;

    /** @return diagnostic name. */
    const std::string &name() const { return name_; }

    /**
     * Set the reference (target) value. This is the coordination channel:
     * outer controllers drive inner loops exclusively through it.
     */
    virtual void setReference(double reference);

    /** @return the current reference. */
    double reference() const { return reference_; }

    /** @return the most recent measured output (0 before the first step). */
    double lastMeasurement() const { return last_measurement_; }

    /** @return reference() - lastMeasurement() of the most recent step. */
    double lastError() const { return last_error_; }

    /** @return number of completed steps. */
    unsigned long steps() const { return steps_; }

    /**
     * Run one control interval: measure, compute the error, apply the
     * control law, actuate. @return the actuator value that was applied.
     */
    double step();

    /** Reset error history; keeps the reference. */
    virtual void reset();

    /**
     * Overwrite the loop's history verbatim (checkpoint restore only).
     * Bypasses setReference() on purpose: subclass side effects already
     * happened in the original run and are restored separately.
     */
    void
    restoreLoopState(double reference, double last_measurement,
                     double last_error, unsigned long steps)
    {
        reference_ = reference;
        last_measurement_ = last_measurement;
        last_error_ = last_error;
        steps_ = steps;
    }

  protected:
    /** Read the sensor. */
    virtual double measure() = 0;

    /**
     * Control law: map (error, measurement) to an actuator value.
     * @param error      reference - measurement
     * @param measurement the raw sensor reading
     */
    virtual double control(double error, double measurement) = 0;

    /** Apply the actuator value to the system. */
    virtual void actuate(double value) = 0;

  private:
    std::string name_;
    double reference_ = 0.0;
    double last_measurement_ = 0.0;
    double last_error_ = 0.0;
    unsigned long steps_ = 0;
};

} // namespace ctl
} // namespace nps

#endif // NPS_CONTROL_LOOP_H
