#include "control/stability.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace nps {
namespace ctl {

double
ecLambdaBound(double r_ref)
{
    if (r_ref <= 0.0 || r_ref >= 1.0)
        util::fatal("ecLambdaBound: r_ref %f out of (0,1)", r_ref);
    return 1.0 / r_ref;
}

double
ecLambdaLocalBound(double r_ref)
{
    if (r_ref <= 0.0 || r_ref >= 1.0)
        util::fatal("ecLambdaLocalBound: r_ref %f out of (0,1)", r_ref);
    return 2.0 / r_ref;
}

double
smBetaBound(double c_max)
{
    if (c_max <= 0.0)
        util::fatal("smBetaBound: c_max %f must be positive", c_max);
    return 2.0 / c_max;
}

bool
ecGainStable(double lambda, double r_ref)
{
    return lambda > 0.0 && lambda < ecLambdaBound(r_ref);
}

bool
smGainStable(double beta, double c_max)
{
    return beta > 0.0 && beta < smBetaBound(c_max);
}

bool
converged(const std::vector<double> &series, double target, double tol,
          size_t window)
{
    if (window == 0)
        util::fatal("converged: zero window");
    if (series.size() < window)
        return false;
    for (size_t i = series.size() - window; i < series.size(); ++i) {
        if (std::fabs(series[i] - target) > tol)
            return false;
    }
    return true;
}

double
tailAmplitude(const std::vector<double> &series, size_t window)
{
    if (series.size() < window || window == 0)
        return 0.0;
    auto begin = series.end() - static_cast<long>(window);
    auto [mn, mx] = std::minmax_element(begin, series.end());
    return *mx - *mn;
}

bool
oscillating(const std::vector<double> &series, size_t window,
            double min_amplitude, unsigned min_reversals)
{
    if (series.size() < window || window < 3)
        return false;
    if (tailAmplitude(series, window) < min_amplitude)
        return false;

    unsigned reversals = 0;
    size_t start = series.size() - window;
    int prev_dir = 0;
    for (size_t i = start + 1; i < series.size(); ++i) {
        double delta = series[i] - series[i - 1];
        int dir = delta > 0.0 ? 1 : (delta < 0.0 ? -1 : 0);
        if (dir != 0) {
            if (prev_dir != 0 && dir != prev_dir)
                ++reversals;
            prev_dir = dir;
        }
    }
    return reversals >= min_reversals;
}

} // namespace ctl
} // namespace nps
