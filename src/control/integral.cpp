#include "control/integral.h"

#include "util/logging.h"
#include "util/stats.h"

namespace nps {
namespace ctl {

IntegralController::IntegralController(double initial, double lo, double hi)
    : value_(initial), lo_(lo), hi_(hi)
{
    if (lo_ > hi_)
        util::fatal("IntegralController: lo %f > hi %f", lo_, hi_);
    value_ = util::clamp(value_, lo_, hi_);
}

void
IntegralController::setValue(double value)
{
    value_ = util::clamp(value, lo_, hi_);
}

double
IntegralController::update(double gain, double error)
{
    value_ = util::clamp(value_ + gain * error, lo_, hi_);
    return value_;
}

void
IntegralController::setRange(double lo, double hi)
{
    if (lo > hi)
        util::fatal("IntegralController::setRange: lo %f > hi %f", lo, hi);
    lo_ = lo;
    hi_ = hi;
    value_ = util::clamp(value_, lo_, hi_);
}

bool
IntegralController::saturated() const
{
    return value_ <= lo_ || value_ >= hi_;
}

} // namespace ctl
} // namespace nps
