/**
 * @file
 * Stability analysis helpers from Appendix A of the paper.
 *
 * Provides the closed-form gain bounds that guarantee stability of the two
 * nested server loops, plus sequence diagnostics (convergence detection,
 * oscillation measurement) used by the property tests to verify those
 * bounds empirically.
 */

#ifndef NPS_CONTROL_STABILITY_H
#define NPS_CONTROL_STABILITY_H

#include <cstddef>
#include <vector>

namespace nps {
namespace ctl {

/**
 * Global-stability bound for the efficiency controller's scaling parameter
 * lambda (Proposition A): 0 < lambda < 1 / r_ref.
 * @pre 0 < r_ref < 1
 */
double ecLambdaBound(double r_ref);

/**
 * Local-stability bound for lambda, the weaker condition from [35]:
 * 0 < lambda < 2 / r_ref.
 */
double ecLambdaLocalBound(double r_ref);

/**
 * Stability bound for the server manager's gain beta_loc:
 * 0 < beta < 2 / c_max, where c_max is an upper bound on the slope of
 * server power with respect to the utilization target.
 * @pre c_max > 0
 */
double smBetaBound(double c_max);

/** @return true when (lambda, r_ref) satisfies the EC global bound. */
bool ecGainStable(double lambda, double r_ref);

/** @return true when (beta, c_max) satisfies the SM bound. */
bool smGainStable(double beta, double c_max);

/**
 * Convergence detector: true when every value in the last @p window
 * entries of @p series is within @p tol of @p target.
 * @pre window > 0; returns false when the series is shorter than window.
 */
bool converged(const std::vector<double> &series, double target,
               double tol, size_t window);

/**
 * Peak-to-peak amplitude over the last @p window entries (0 when the
 * series is shorter than window).
 */
double tailAmplitude(const std::vector<double> &series, size_t window);

/**
 * True when the tail of the series oscillates: its tail amplitude exceeds
 * @p min_amplitude AND it changes direction at least @p min_reversals
 * times within the window.
 */
bool oscillating(const std::vector<double> &series, size_t window,
                 double min_amplitude, unsigned min_reversals);

} // namespace ctl
} // namespace nps

#endif // NPS_CONTROL_STABILITY_H
