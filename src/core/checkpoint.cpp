/**
 * @file
 * Coordinator checkpoint/restore: gathers every component's saveState()
 * into one versioned snapshot and overlays a snapshot onto a
 * freshly-built Coordinator (docs/CHECKPOINTING.md).
 *
 * Section layout (names are the restore contract):
 *   engine        clock + actor-roster consistency check
 *   cluster       VM placement, per-server/per-VM state, last tick
 *   metrics       the MetricsCollector accumulators and series
 *   ec/<i> sm/<i> em/<i> gm/<i> cap/<i> mm/<i>   per controller
 *   vmc           the consolidation controller
 *   controllog    mirrored control-plane events (when enabled)
 *   obs/metrics obs/trace   observability instruments (when enabled)
 *
 * The FaultInjector is deliberately absent: it is immutable after
 * construction and every query is a pure function of (seed, kind,
 * target, tick), so rebuilding it from the same config reproduces the
 * campaign exactly — fault injection replays identically across the
 * resume boundary. The EngineProfiler is also absent: it measures wall
 * clock, which is not simulation state.
 */

#include <cstdio>

#include "ckpt/snapshot.h"
#include "controllers/efficiency.h"
#include "controllers/electrical_capper.h"
#include "controllers/enclosure_manager.h"
#include "controllers/group_manager.h"
#include "controllers/memory_manager.h"
#include "controllers/server_manager.h"
#include "controllers/vm_controller.h"
#include "core/coordinator.h"
#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace nps {
namespace core {

namespace {

std::string
indexed(const char *prefix, size_t i)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s/%zu", prefix, i);
    return buf;
}

/**
 * Open section @p name for restore, with a mismatch diagnosis when the
 * snapshot and the rebuilt Coordinator disagree about its existence.
 */
ckpt::SectionReader
requireSection(const ckpt::SnapshotReader &snap, const std::string &name)
{
    if (!snap.has(name))
        util::fatal("checkpoint %s: section '%s' missing — the snapshot "
                    "was taken with a different config/topology than this "
                    "run rebuilt",
                    snap.path().c_str(), name.c_str());
    return snap.section(name);
}

} // namespace

void
Coordinator::saveState(ckpt::SnapshotWriter &snap) const
{
    engine_->saveState(snap.section("engine"));
    cluster_->saveState(snap.section("cluster"));
    metrics_.saveState(snap.section("metrics"));

    for (size_t i = 0; i < ecs_.size(); ++i)
        ecs_[i]->saveState(snap.section(indexed("ec", i)));
    for (size_t i = 0; i < sms_.size(); ++i)
        sms_[i]->saveState(snap.section(indexed("sm", i)));
    for (size_t i = 0; i < ems_.size(); ++i)
        ems_[i]->saveState(snap.section(indexed("em", i)));
    for (size_t i = 0; i < gms_.size(); ++i)
        gms_[i]->saveState(snap.section(indexed("gm", i)));
    for (size_t i = 0; i < caps_.size(); ++i)
        caps_[i]->saveState(snap.section(indexed("cap", i)));
    for (size_t i = 0; i < mems_.size(); ++i)
        mems_[i]->saveState(snap.section(indexed("mm", i)));
    if (vmc_)
        vmc_->saveState(snap.section("vmc"));

    if (control_log_)
        control_log_->saveState(snap.section("controllog"));
    if (obs_ && obs_->metrics())
        obs_->metrics()->saveState(snap.section("obs/metrics"));
    if (obs_ && obs_->trace())
        obs_->trace()->saveState(snap.section("obs/trace"));
}

void
Coordinator::loadState(const ckpt::SnapshotReader &snap)
{
    {
        auto r = requireSection(snap, "engine");
        engine_->loadState(r);
        r.expectEnd();
    }
    {
        auto r = requireSection(snap, "cluster");
        cluster_->loadState(r);
        r.expectEnd();
    }
    {
        auto r = requireSection(snap, "metrics");
        metrics_.loadState(r);
        r.expectEnd();
    }

    auto restoreAll = [&snap](const char *prefix, auto &vec) {
        for (size_t i = 0; i < vec.size(); ++i) {
            auto r = requireSection(snap, indexed(prefix, i));
            vec[i]->loadState(r);
            r.expectEnd();
        }
        // One extra section of this kind in the snapshot means the run
        // that wrote it had more controllers than this rebuild.
        std::string next = indexed(prefix, vec.size());
        if (snap.has(next))
            util::fatal("checkpoint %s: unexpected section '%s' — the "
                        "snapshot has more %s controllers than this "
                        "config rebuilds",
                        snap.path().c_str(), next.c_str(), prefix);
    };
    restoreAll("ec", ecs_);
    restoreAll("sm", sms_);
    restoreAll("em", ems_);
    restoreAll("gm", gms_);
    restoreAll("cap", caps_);
    restoreAll("mm", mems_);

    if (vmc_) {
        auto r = requireSection(snap, "vmc");
        vmc_->loadState(r);
        r.expectEnd();
    } else if (snap.has("vmc")) {
        util::fatal("checkpoint %s: snapshot has a VMC section but this "
                    "config disables the VMC",
                    snap.path().c_str());
    }

    if (control_log_) {
        auto r = requireSection(snap, "controllog");
        control_log_->loadState(r);
        r.expectEnd();
    }
    if (obs_ && obs_->metrics()) {
        auto r = requireSection(snap, "obs/metrics");
        obs_->metrics()->loadState(r);
        r.expectEnd();
    }
    if (obs_ && obs_->trace()) {
        auto r = requireSection(snap, "obs/trace");
        obs_->trace()->loadState(r);
        r.expectEnd();
    }
    // Run-summary gauges mirror summary(); refresh them so a metrics
    // export taken right after restore matches the original run's.
    updateRunGauges();
}

} // namespace core
} // namespace nps
