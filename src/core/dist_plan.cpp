#include "core/dist_plan.h"

#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "fault/netem/netem.h"
#include "util/logging.h"

namespace nps {
namespace core {

namespace {

using util::IniDocument;

const char *
levelName(bus::OwnerLevel level)
{
    switch (level) {
    case bus::OwnerLevel::Gm: return "gm";
    case bus::OwnerLevel::Em: return "em";
    case bus::OwnerLevel::Sm: return "sm";
    case bus::OwnerLevel::Ec: return "ec";
    case bus::OwnerLevel::Vmc: return "vmc";
    case bus::OwnerLevel::Cap: return "cap";
    case bus::OwnerLevel::Mem: return "mem";
    }
    return "?";
}

std::string
trim(const std::string &s)
{
    size_t begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    size_t end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= text.size()) {
        size_t comma = text.find(',', start);
        std::string item =
            trim(comma == std::string::npos
                     ? text.substr(start)
                     : text.substr(start, comma - start));
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

long
parseLong(const std::string &raw, const char *what,
          const std::string &context)
{
    char *end = nullptr;
    long value = std::strtol(raw.c_str(), &end, 10);
    if (raw.empty() || end == raw.c_str() || *end != '\0' || value < 0)
        util::fatal("plan: bad %s '%s' in '%s'", what, raw.c_str(),
                    context.c_str());
    return value;
}

DistPlan::Selector
parseSelector(const std::string &text, const std::string &node)
{
    static const std::map<std::string, bus::OwnerLevel> global{
        {"gm", bus::OwnerLevel::Gm},
        {"em", bus::OwnerLevel::Em},
        {"vmc", bus::OwnerLevel::Vmc},
    };
    static const std::set<std::string> sharded{"sm", "ec", "cap", "mem"};

    std::string level = text;
    std::string inst;
    size_t colon = text.find(':');
    if (colon != std::string::npos) {
        level = trim(text.substr(0, colon));
        inst = trim(text.substr(colon + 1));
    }
    auto it = global.find(level);
    if (it == global.end()) {
        if (sharded.count(level))
            util::fatal("plan: [node %s] claims '%s' — per-server "
                        "levels (sm, ec, cap, mem) are sharded across "
                        "worker threads and must stay on the "
                        "supervisor; only gm, em and vmc can be "
                        "distributed (docs/DISTRIBUTED.md)",
                        node.c_str(), text.c_str());
        util::fatal("plan: [node %s] has unknown level in '%s' (want "
                    "gm, em or vmc)", node.c_str(), text.c_str());
    }

    DistPlan::Selector sel;
    sel.level = it->second;
    if (inst.empty() || inst == "*")
        sel.all = true; // bare 'vmc' and 'gm:*' both mean every instance
    else
        sel.id = parseLong(inst, "instance id", text);
    return sel;
}

DistPlan::Kill
parseKill(const std::string &text)
{
    size_t at = text.find('@');
    if (at == std::string::npos)
        util::fatal("plan: bad kill '%s' (want RANK@TICK)", text.c_str());
    DistPlan::Kill kill;
    kill.rank = static_cast<int>(
        parseLong(trim(text.substr(0, at)), "rank", text));
    kill.tick = static_cast<uint64_t>(
        parseLong(trim(text.substr(at + 1)), "tick", text));
    return kill;
}

/** Fatal when two selectors could claim the same controller. */
void
checkOverlap(const DistPlan &plan)
{
    // (level, id) -> claiming node name; id -1 stands for '*'.
    std::map<std::pair<int, long>, std::string> claims;
    for (const auto &node : plan.nodes) {
        for (const auto &sel : node.selectors) {
            int lv = static_cast<int>(sel.level);
            long id = sel.all ? -1 : sel.id;
            auto ins = claims.emplace(std::make_pair(lv, id), node.name);
            bool clash = !ins.second;
            if (!clash && sel.all) {
                // A new '*' collides with any existing specific claim.
                for (const auto &c : claims)
                    if (c.first.first == lv && c.first.second >= 0)
                        clash = true;
            }
            if (!clash && !sel.all)
                clash = claims.count(std::make_pair(lv, -1L)) > 0;
            if (clash)
                util::fatal("plan: [node %s] claims %s:%s, which "
                            "overlaps an earlier claim — each "
                            "controller instance can live in exactly "
                            "one process", node.name.c_str(),
                            levelName(sel.level),
                            sel.all ? "*"
                                    : std::to_string(sel.id).c_str());
        }
    }
}

} // namespace

int
DistPlan::ownerOf(bus::OwnerLevel level, long id) const
{
    for (size_t n = 0; n < nodes.size(); ++n) {
        for (const auto &sel : nodes[n].selectors) {
            if (sel.level == level && (sel.all || sel.id == id))
                return static_cast<int>(n) + 1;
        }
    }
    return 0;
}

std::string
DistPlan::obsHttpFor(int rank) const
{
    std::string out = obs_http;
    size_t at = out.find("%r");
    if (at != std::string::npos)
        out.replace(at, 2, std::to_string(rank));
    return out;
}

bus::OwnerFn
DistPlan::ownerFn() const
{
    DistPlan copy = *this;
    return [copy](bus::OwnerLevel level, long id) {
        return copy.ownerOf(level, id);
    };
}

DistPlan
planFromIni(const IniDocument &ini)
{
    static const std::set<std::string> dist_keys{
        "transport",      "socket",
        "timeout_ms",     "restart_after",
        "hb_ms",          "peer_timeout_ms",
        "reconnect_attempts", "reconnect_base_ms",
        "reconnect_max_ms"};
    static const std::set<std::string> run_keys{
        "scenario", "machine", "mix", "budgets", "ticks", "seed",
        "threads", "record_stride"};

    DistPlan plan;
    for (const auto &section : ini.sections()) {
        if (section == "dist") {
            for (const auto &key : ini.keys(section))
                if (!dist_keys.count(key))
                    util::fatal("plan: unknown key '%s' in [dist]",
                                key.c_str());
        } else if (section == "run") {
            for (const auto &key : ini.keys(section))
                if (!run_keys.count(key))
                    util::fatal("plan: unknown key '%s' in [run]",
                                key.c_str());
        } else if (section == "obs") {
            static const std::set<std::string> obs_keys{
                "metrics_every", "http", "http_linger_ms", "cascade"};
            for (const auto &key : ini.keys(section))
                if (!obs_keys.count(key))
                    util::fatal("plan: unknown key '%s' in [obs]",
                                key.c_str());
            // Presence of the section switches the replicated
            // registries on; the knobs below only tune it.
            plan.obs_metrics = true;
        } else if (section == "chaos") {
            for (const auto &key : ini.keys(section))
                if (key != "kill")
                    util::fatal("plan: unknown key '%s' in [chaos]",
                                key.c_str());
        } else if (section == "netem") {
            static const std::set<std::string> netem_keys{
                "seed", "deadline_ticks", "script"};
            for (const auto &key : ini.keys(section))
                if (!netem_keys.count(key))
                    util::fatal("plan: unknown key '%s' in [netem]",
                                key.c_str());
            // Presence switches the layer on, even with an empty
            // script: the (bit-transparent) transport still wires in,
            // which is handy for A/B-ing the plumbing itself.
            plan.netem = true;
        } else if (section.rfind("node ", 0) == 0) {
            DistPlan::Node node;
            node.name = trim(section.substr(5));
            if (node.name.empty())
                util::fatal("plan: [node] section needs a name");
            for (const auto &key : ini.keys(section))
                if (key != "levels")
                    util::fatal("plan: unknown key '%s' in [node %s]",
                                key.c_str(), node.name.c_str());
            for (const auto &item :
                 splitList(ini.get(section, "levels", "")))
                node.selectors.push_back(parseSelector(item, node.name));
            if (node.selectors.empty())
                util::fatal("plan: [node %s] claims no levels",
                            node.name.c_str());
            for (const auto &prev : plan.nodes)
                if (prev.name == node.name)
                    util::fatal("plan: duplicate [node %s]",
                                node.name.c_str());
            plan.nodes.push_back(std::move(node));
        } else {
            util::fatal("plan: unknown section [%s]", section.c_str());
        }
    }

    plan.transport = ini.get("dist", "transport", plan.transport);
    if (plan.transport != "unix" && plan.transport != "tcp")
        util::fatal("plan: [dist] transport must be unix or tcp, not "
                    "'%s'", plan.transport.c_str());
    plan.socket = ini.get("dist", "socket", plan.socket);
    if (plan.socket.empty())
        util::fatal("plan: [dist] socket is required (a path for unix, "
                    "a port for tcp)");
    plan.timeout_ms = static_cast<unsigned>(ini.getInt(
        "dist", "timeout_ms", static_cast<long>(plan.timeout_ms)));
    if (plan.timeout_ms == 0)
        util::fatal("plan: [dist] timeout_ms must be positive");
    plan.restart_after = static_cast<unsigned>(ini.getInt(
        "dist", "restart_after", static_cast<long>(plan.restart_after)));
    plan.hb_ms = static_cast<unsigned>(
        ini.getInt("dist", "hb_ms", static_cast<long>(plan.hb_ms)));
    plan.peer_timeout_ms = static_cast<unsigned>(ini.getInt(
        "dist", "peer_timeout_ms",
        static_cast<long>(plan.peer_timeout_ms)));
    if (plan.peer_timeout_ms && plan.peer_timeout_ms >= plan.timeout_ms)
        util::fatal("plan: [dist] peer_timeout_ms (%u) must stay below "
                    "timeout_ms (%u) — per-peer detection is pointless "
                    "once the whole-socket guard has already fired",
                    plan.peer_timeout_ms, plan.timeout_ms);
    plan.reconnect_attempts = static_cast<unsigned>(ini.getInt(
        "dist", "reconnect_attempts",
        static_cast<long>(plan.reconnect_attempts)));
    plan.reconnect_base_ms = static_cast<unsigned>(ini.getInt(
        "dist", "reconnect_base_ms",
        static_cast<long>(plan.reconnect_base_ms)));
    plan.reconnect_max_ms = static_cast<unsigned>(ini.getInt(
        "dist", "reconnect_max_ms",
        static_cast<long>(plan.reconnect_max_ms)));

    plan.scenario = ini.get("run", "scenario", plan.scenario);
    plan.machine = ini.get("run", "machine", plan.machine);
    plan.mix = ini.get("run", "mix", plan.mix);
    plan.budgets = ini.get("run", "budgets", plan.budgets);
    plan.ticks = static_cast<size_t>(
        ini.getInt("run", "ticks", static_cast<long>(plan.ticks)));
    if (plan.ticks == 0)
        util::fatal("plan: [run] ticks must be positive");
    plan.seed = static_cast<uint64_t>(
        ini.getInt("run", "seed", static_cast<long>(plan.seed)));
    plan.threads = static_cast<unsigned>(
        ini.getInt("run", "threads", static_cast<long>(plan.threads)));
    plan.record_stride = static_cast<unsigned>(ini.getInt(
        "run", "record_stride", static_cast<long>(plan.record_stride)));
    if (plan.record_stride == 0)
        util::fatal("plan: [run] record_stride must be at least 1");

    plan.obs_metrics_every = static_cast<unsigned>(
        ini.getInt("obs", "metrics_every",
                   static_cast<long>(plan.obs_metrics_every)));
    if (plan.obs_metrics && plan.obs_metrics_every == 0)
        util::fatal("plan: [obs] metrics_every must be at least 1");
    plan.obs_http = ini.get("obs", "http", plan.obs_http);
    plan.obs_http_linger_ms = static_cast<unsigned>(
        ini.getInt("obs", "http_linger_ms",
                   static_cast<long>(plan.obs_http_linger_ms)));
    plan.obs_cascade = ini.getBool("obs", "cascade", plan.obs_cascade);

    plan.netem_seed = static_cast<uint64_t>(ini.getInt(
        "netem", "seed", static_cast<long>(plan.netem_seed)));
    plan.netem_deadline = static_cast<unsigned>(ini.getInt(
        "netem", "deadline_ticks",
        static_cast<long>(plan.netem_deadline)));
    plan.netem_script = ini.get("netem", "script", plan.netem_script);
    if (plan.netem) {
        // Parse now so a malformed script dies at plan load, and check
        // rank targets against the node table.
        fault::netem::NetemSchedule sched =
            fault::netem::NetemSchedule::parse(plan.netem_script);
        for (const auto &ev : sched.events()) {
            if (ev.by_rank &&
                (ev.rank < 0 ||
                 ev.rank > static_cast<int>(plan.nodes.size())))
                util::fatal("plan: [netem] event '%s' targets rank %d, "
                            "but the plan has ranks 0..%zu",
                            ev.toText().c_str(), ev.rank,
                            plan.nodes.size());
            if (ev.start >= plan.ticks)
                util::fatal("plan: [netem] event '%s' starts at tick "
                            "%zu, past the run's %zu ticks",
                            ev.toText().c_str(), ev.start, plan.ticks);
        }
    }

    checkOverlap(plan);

    for (const auto &item : splitList(ini.get("chaos", "kill", ""))) {
        DistPlan::Kill kill = parseKill(item);
        if (kill.rank < 1 ||
            kill.rank > static_cast<int>(plan.nodes.size()))
            util::fatal("plan: [chaos] kill '%s' names rank %d, but "
                        "the plan has ranks 1..%zu (rank 0, the "
                        "supervisor, cannot be killed)", item.c_str(),
                        kill.rank, plan.nodes.size());
        if (kill.tick == 0 || kill.tick >= plan.ticks)
            util::fatal("plan: [chaos] kill '%s' is outside ticks "
                        "1..%zu", item.c_str(), plan.ticks - 1);
        plan.kills.push_back(kill);
    }

    return plan;
}

DistPlan
loadPlanFile(const std::string &path)
{
    return planFromIni(util::readIniFile(path));
}

} // namespace core
} // namespace nps
