/**
 * @file
 * Configuration file binding: load and save a CoordinationConfig (and
 * the experiment-level knobs around it) as an INI document, so a whole
 * deployment can be described declaratively:
 *
 *     [deployment]
 *     coordinated = true
 *     enable_cap = false
 *     [ec]
 *     lambda = 0.8
 *     r_ref = 0.75
 *     [budgets]
 *     group_off = 0.20
 *     ...
 *
 * Loading is strict: unknown sections or keys are fatal errors, so a
 * typo cannot silently fall back to a default.
 */

#ifndef NPS_CORE_CONFIG_IO_H
#define NPS_CORE_CONFIG_IO_H

#include <string>

#include "core/config.h"
#include "util/ini.h"

namespace nps {
namespace core {

/**
 * Parse a CoordinationConfig from an INI document. Keys not present
 * keep their Figure 5 defaults; unknown sections/keys are fatal.
 */
CoordinationConfig configFromIni(const util::IniDocument &ini);

/** Load a configuration from an INI file. */
CoordinationConfig loadConfigFile(const std::string &path);

/** Render a configuration (all knobs, current values) as INI text. */
util::IniDocument configToIni(const CoordinationConfig &config);

} // namespace core
} // namespace nps

#endif // NPS_CORE_CONFIG_IO_H
