/**
 * @file
 * Configuration file binding: load and save a CoordinationConfig (and
 * the experiment-level knobs around it) as an INI document, so a whole
 * deployment can be described declaratively:
 *
 *     [deployment]
 *     coordinated = true
 *     enable_cap = false
 *     [ec]
 *     lambda = 0.8
 *     r_ref = 0.75
 *     [budgets]
 *     group_off = 0.20
 *     ...
 *
 * Loading is strict: unknown sections or keys are fatal errors, so a
 * typo cannot silently fall back to a default.
 */

#ifndef NPS_CORE_CONFIG_IO_H
#define NPS_CORE_CONFIG_IO_H

#include <string>

#include "core/config.h"
#include "sim/topology.h"
#include "util/ini.h"

namespace nps {
namespace core {

/**
 * Parse a CoordinationConfig from an INI document. Keys not present
 * keep their Figure 5 defaults; unknown sections/keys are fatal.
 */
CoordinationConfig configFromIni(const util::IniDocument &ini);

/** Load a configuration from an INI file. */
CoordinationConfig loadConfigFile(const std::string &path);

/** Render a configuration (all knobs, current values) as INI text. */
util::IniDocument configToIni(const CoordinationConfig &config);

/**
 * Parse a sim::Topology from an INI document holding one [topology]
 * section:
 *
 *     [topology]
 *     servers = 60
 *     enclosures = 6
 *     enclosure_size = 8
 *     tree = dc(z0(z0r0(e0,s48),...),...)
 *
 * Keys not present keep the paper-180 defaults; 'tree' uses the
 * sim::Topology::treeText() grammar and may be omitted for the flat
 * Figure 2 shape. Unknown sections/keys are fatal; the result is
 * validate()d before it is returned.
 */
sim::Topology topologyFromIni(const util::IniDocument &ini);

/** Load a topology from an INI file. */
sim::Topology loadTopologyFile(const std::string &path);

/**
 * Render a topology as INI text. topologyFromIni() round-trips the
 * output exactly (write-read-write is a fixed point).
 */
util::IniDocument topologyToIni(const sim::Topology &topo);

} // namespace core
} // namespace nps

#endif // NPS_CORE_CONFIG_IO_H
