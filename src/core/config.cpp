#include "core/config.h"

#include "util/logging.h"

namespace nps {
namespace core {

CoordinationConfig
CoordinationConfig::resolved() const
{
    CoordinationConfig out = *this;

    if (out.coordinated) {
        out.sm.mode = controllers::ServerManager::Mode::Coordinated;
        out.gm.mode = controllers::GroupManager::Mode::Coordinated;
    } else {
        out.sm.mode = controllers::ServerManager::Mode::DirectPState;
        out.gm.mode = controllers::GroupManager::Mode::Uncoordinated;
        out.vmc.use_real_util = false;
        out.vmc.use_budget_constraints = false;
        out.vmc.use_violation_feedback = false;
        // A power-naive consolidator maximizes utilization; leaving
        // statistical headroom for the cappers is a coordination feature
        // (Section 3.1), so the solo product packs means to the hilt.
        out.vmc.capacity_target = 0.95;
        out.vmc.spread_sigma = 0.0;
    }
    if (!out.enable_ec) {
        // Nothing to nest on: the capper falls back to direct actuation.
        out.sm.mode = controllers::ServerManager::Mode::DirectPState;
    }
    if (!out.enable_sm && !out.enable_em && !out.enable_gm) {
        // No capping levels to provide feedback.
        out.vmc.use_violation_feedback = false;
    }

    out.vmc.alpha_v = out.alpha_v;
    out.vmc.alpha_m = out.alpha_m;
    // The VMC packs to the EC's utilization target so consolidated
    // servers land at the efficient operating point.
    out.vmc.util_limit = out.ec.r_ref;

    if (out.alpha_v < 0.0 || out.alpha_m < 0.0)
        util::fatal("CoordinationConfig: negative overheads");
    if (out.cap_limit_frac <= 0.0 || out.cap_limit_frac > 1.0)
        util::fatal("CoordinationConfig: cap_limit_frac out of (0,1]");
    return out;
}

} // namespace core
} // namespace nps
