#include "core/config.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace core {

CoordinationConfig
CoordinationConfig::resolved() const
{
    CoordinationConfig out = *this;

    if (out.coordinated) {
        out.sm.mode = controllers::ServerManager::Mode::Coordinated;
        out.gm.mode = controllers::GroupManager::Mode::Coordinated;
    } else {
        out.sm.mode = controllers::ServerManager::Mode::DirectPState;
        out.gm.mode = controllers::GroupManager::Mode::Uncoordinated;
        out.vmc.use_real_util = false;
        out.vmc.use_budget_constraints = false;
        out.vmc.use_violation_feedback = false;
        // A power-naive consolidator maximizes utilization; leaving
        // statistical headroom for the cappers is a coordination feature
        // (Section 3.1), so the solo product packs means to the hilt.
        out.vmc.capacity_target = 0.95;
        out.vmc.spread_sigma = 0.0;
    }
    if (!out.enable_ec) {
        // Nothing to nest on: the capper falls back to direct actuation.
        out.sm.mode = controllers::ServerManager::Mode::DirectPState;
    }
    if (!out.enable_sm && !out.enable_em && !out.enable_gm) {
        // No capping levels to provide feedback.
        out.vmc.use_violation_feedback = false;
    }

    out.vmc.alpha_v = out.alpha_v;
    out.vmc.alpha_m = out.alpha_m;
    // The VMC packs to the EC's utilization target so consolidated
    // servers land at the efficient operating point.
    out.vmc.util_limit = out.ec.r_ref;

    if (out.faults.enabled || out.stream.enabled || out.distributed) {
        // Default budget leases to three parent epochs: generous enough
        // that a healthy parent (or one missing a couple of sends) never
        // trips them, tight enough that an outage degrades within the
        // same order of magnitude as the parent's control interval.
        // Armed for fault campaigns, online runs AND distributed runs —
        // a silent telemetry stream or a killed peer process must age
        // leases exactly like a lossy budget link (docs/STREAMING.md,
        // docs/DISTRIBUTED.md). Leases stay off otherwise, keeping
        // the fault-free batch arithmetic bit-identical to the
        // pre-fault engine; armed-but-refreshed leases are themselves
        // bit-transparent (tests/stream/test_replay_equiv.cpp).
        unsigned parent = std::max(out.em.period, out.gm.period);
        if (out.sm.lease_ticks == 0)
            out.sm.lease_ticks = 3 * parent;
        if (out.em.lease_ticks == 0)
            out.em.lease_ticks = 3 * out.gm.period;
        // Nested GMs are fed by a parent GM running on the same period;
        // the root ignores the lease (it has no parent).
        if (out.gm.lease_ticks == 0)
            out.gm.lease_ticks = 3 * out.gm.period;
    }

    if (out.alpha_v < 0.0 || out.alpha_m < 0.0)
        util::fatal("CoordinationConfig: negative overheads");
    if (out.cap_limit_frac <= 0.0 || out.cap_limit_frac > 1.0)
        util::fatal("CoordinationConfig: cap_limit_frac out of (0,1]");
    return out;
}

} // namespace core
} // namespace nps
