/**
 * @file
 * The named deployment scenarios evaluated in the paper's Section 5:
 * configuration factories for the coordinated solution, the uncoordinated
 * strawman, the controller-isolation variants (Figure 8), and the
 * interface ablations (Figure 9).
 */

#ifndef NPS_CORE_SCENARIOS_H
#define NPS_CORE_SCENARIOS_H

#include <string>
#include <vector>

#include "core/config.h"

namespace nps {
namespace core {

/** The scenario catalogue. */
enum class Scenario
{
    Baseline,            //!< no power management at all
    Coordinated,         //!< the proposed architecture (Figure 2)
    Uncoordinated,       //!< five solo products side by side
    NoVmc,               //!< coordinated, VMC off (Figure 8)
    VmcOnly,             //!< only the VMC on (Figure 8)
    CoordApparentUtil,   //!< coordinated, VMC reads apparent util (Fig. 9)
    CoordNoFeedback,     //!< coordinated, violation feedback off (Fig. 9)
    CoordNoBudgetLimits, //!< coordinated, VMC ignores budgets (Fig. 9)
};

/** @return the paper's row label for a scenario. */
const char *scenarioName(Scenario s);

/** @return the scenarios of the Figure 9 ablation table, in row order. */
std::vector<Scenario> figure9Scenarios();

/** @return the configuration of a named scenario (Figure 5 baselines). */
CoordinationConfig scenarioConfig(Scenario s);

/** The fully coordinated baseline configuration. */
CoordinationConfig coordinatedConfig();

/** The uncoordinated (solo products) configuration. */
CoordinationConfig uncoordinatedConfig();

/** Everything off: the normalization baseline. */
CoordinationConfig baselineConfig();

/**
 * The fully coordinated stack tuned for synthetic fleets at 10k+ servers
 * (sim/fleetgen.h): VM migration off (the bin-packing consolidation pass
 * is cluster-global and O(VMs log VMs) per step — the scaling studies
 * measure the per-tick control plane, not placement search) and all
 * observation layers off so the hot path is what bench/macro_fleet
 * times.
 */
CoordinationConfig fleetConfig();

/** @return @p base with machine power-off disabled (Section 5.4). */
CoordinationConfig withoutPowerOff(CoordinationConfig base);

/** @return @p base with different static budgets (Figure 10). */
CoordinationConfig withBudgets(CoordinationConfig base,
                               const sim::BudgetConfig &budgets);

/**
 * @return @p base with scaled control intervals (Section 5.4 time-constant
 * study). Values of 0 keep the Figure 5 default.
 */
CoordinationConfig withTimeConstants(CoordinationConfig base, unsigned t_ec,
                                     unsigned t_sm, unsigned t_em,
                                     unsigned t_gm, unsigned t_vmc);

/** @return @p base with one division policy at both the EM and GM. */
CoordinationConfig withPolicy(CoordinationConfig base,
                              controllers::DivisionPolicy policy);

} // namespace core
} // namespace nps

#endif // NPS_CORE_SCENARIOS_H
