/**
 * @file
 * CoordinationConfig: every tunable of the architecture in one place —
 * the programmatic rendering of the paper's Figure 5 parameter table.
 */

#ifndef NPS_CORE_CONFIG_H
#define NPS_CORE_CONFIG_H

#include <string>

#include "controllers/efficiency.h"
#include "controllers/electrical_capper.h"
#include "controllers/enclosure_manager.h"
#include "controllers/group_manager.h"
#include "controllers/memory_manager.h"
#include "controllers/server_manager.h"
#include "controllers/vm_controller.h"
#include "fault/fault.h"
#include "obs/observability.h"
#include "sim/cluster.h"
#include "stream/stream_config.h"

namespace nps {
namespace core {

/**
 * Complete configuration of a deployment: which controllers exist, how
 * they are wired (coordinated or not), and all their parameters.
 */
struct CoordinationConfig
{
    /// @name Deployment switches
    /// @{
    bool enable_ec = true;   //!< per-server efficiency controllers
    bool enable_sm = true;   //!< per-server power cappers
    bool enable_em = true;   //!< enclosure managers
    bool enable_gm = true;   //!< the group manager
    bool enable_vmc = true;  //!< the consolidation controller
    bool enable_cap = false; //!< optional electrical cappers (Section 6)
    bool enable_mem = false; //!< optional memory managers (Section 6 MIMO)
    /**
     * Mirror every control-plane message (budget grants, violation
     * reports, r_ref references, actuation telemetry) into an event log
     * readable after the run (Coordinator::controlLog()). Observation
     * only: the simulation arithmetic is bit-identical either way.
     */
    bool log_control_plane = false;
    /// @}

    /**
     * Master coordination switch. When false, every controller runs in
     * its solo-commercial configuration: the SM actuates P-states
     * directly (fighting the EC), the GM pushes per-server budgets
     * around the EMs, and the VMC reads apparent utilization with no
     * budget awareness.
     */
    bool coordinated = true;

    /// @name Per-controller parameters (Figure 5 baselines)
    /// @{
    controllers::EfficiencyController::Params ec;
    controllers::ServerManager::Params sm;
    controllers::EnclosureManager::Params em;
    controllers::GroupManager::Params gm;
    controllers::VmController::Params vmc;
    controllers::ElectricalCapper::Params cap;
    controllers::MemoryManager::Params mem;
    /// @}

    /** Electrical limit as a fraction of each server's max power. */
    double cap_limit_frac = 0.97;

    /** Static thermal budget configuration (the 20-15-10 of Figure 5). */
    sim::BudgetConfig budgets = sim::BudgetConfig::paper201510();

    /** Virtualization overhead fraction alpha_V. */
    double alpha_v = 0.10;

    /** Migration overhead fraction alpha_mu. */
    double alpha_m = 0.10;

    /**
     * Worker threads for the tick engine: 0 picks the hardware
     * concurrency, 1 forces the legacy single-threaded path. Purely a
     * throughput knob — simulation results are bit-identical for every
     * value (docs/PARALLELISM.md).
     */
    unsigned threads = 0;

    /**
     * Fault-injection setup (docs/FAULTS.md). Disabled by default; when
     * disabled the run is bit-identical to a configuration without the
     * fault layer at all.
     */
    fault::FaultSetup faults;

    /**
     * Observability setup (docs/OBSERVABILITY.md): metrics registry,
     * decision traces, and the engine profiler. All off by default;
     * every instrument is observation-only, so the simulation arithmetic
     * is bit-identical whether they are on or off.
     */
    obs::ObsConfig observability;

    /**
     * Online-telemetry setup (docs/STREAMING.md): whether the run is
     * driven by a live feed (`npsim --serve`) and the late/missing-
     * sample policy. Disabled by default; a batch run is bit-identical
     * to a build without the stream layer at all.
     */
    stream::StreamConfig stream;

    /**
     * Distributed control plane (docs/DISTRIBUTED.md): set by the plan
     * runtime — both for `npsim --distributed` runs *and* for the
     * single-process oracle (`npsim --plan`) they are diffed against —
     * never from an INI file. Arms the same budget leases a fault
     * campaign would, so a killed peer process degrades through the
     * lease/fallback ladder; with every lease refreshed the armed run
     * stays bit-identical to an unarmed one.
     */
    bool distributed = false;

    /**
     * Validate invariants and resolve derived settings: propagates the
     * coordination switch and the overhead constants into the controller
     * parameter blocks, and downgrades the SM to DirectPState when no EC
     * exists to nest on. @return the resolved copy.
     */
    CoordinationConfig resolved() const;
};

} // namespace core
} // namespace nps

#endif // NPS_CORE_CONFIG_H
