#include "core/scenarios.h"

#include "util/logging.h"

namespace nps {
namespace core {

const char *
scenarioName(Scenario s)
{
    switch (s) {
      case Scenario::Baseline:            return "Baseline";
      case Scenario::Coordinated:         return "Coordinated";
      case Scenario::Uncoordinated:       return "Uncoordinated";
      case Scenario::NoVmc:               return "NoVMC";
      case Scenario::VmcOnly:             return "VMCOnly";
      case Scenario::CoordApparentUtil:   return "Coordinated, appr util";
      case Scenario::CoordNoFeedback:     return "Coordinated, no feedback";
      case Scenario::CoordNoBudgetLimits:
        return "Coordinated, no budget limits";
    }
    return "?";
}

std::vector<Scenario>
figure9Scenarios()
{
    return {Scenario::Coordinated, Scenario::Uncoordinated,
            Scenario::CoordApparentUtil, Scenario::CoordNoFeedback,
            Scenario::CoordNoBudgetLimits};
}

CoordinationConfig
coordinatedConfig()
{
    return CoordinationConfig{};
}

CoordinationConfig
uncoordinatedConfig()
{
    CoordinationConfig cfg;
    cfg.coordinated = false;
    return cfg;
}

CoordinationConfig
baselineConfig()
{
    CoordinationConfig cfg;
    cfg.enable_ec = false;
    cfg.enable_sm = false;
    cfg.enable_em = false;
    cfg.enable_gm = false;
    cfg.enable_vmc = false;
    cfg.enable_cap = false;
    return cfg;
}

CoordinationConfig
fleetConfig()
{
    CoordinationConfig cfg = coordinatedConfig();
    cfg.enable_vmc = false;
    cfg.log_control_plane = false;
    return cfg;
}

CoordinationConfig
scenarioConfig(Scenario s)
{
    switch (s) {
      case Scenario::Baseline:
        return baselineConfig();
      case Scenario::Coordinated:
        return coordinatedConfig();
      case Scenario::Uncoordinated:
        return uncoordinatedConfig();
      case Scenario::NoVmc: {
        CoordinationConfig cfg = coordinatedConfig();
        cfg.enable_vmc = false;
        return cfg;
      }
      case Scenario::VmcOnly: {
        CoordinationConfig cfg = coordinatedConfig();
        cfg.enable_ec = false;
        cfg.enable_sm = false;
        cfg.enable_em = false;
        cfg.enable_gm = false;
        return cfg;
      }
      case Scenario::CoordApparentUtil: {
        CoordinationConfig cfg = coordinatedConfig();
        cfg.vmc.use_real_util = false;
        return cfg;
      }
      case Scenario::CoordNoFeedback: {
        CoordinationConfig cfg = coordinatedConfig();
        cfg.vmc.use_violation_feedback = false;
        return cfg;
      }
      case Scenario::CoordNoBudgetLimits: {
        CoordinationConfig cfg = coordinatedConfig();
        cfg.vmc.use_budget_constraints = false;
        return cfg;
      }
    }
    util::panic("scenarioConfig: unreachable");
}

CoordinationConfig
withoutPowerOff(CoordinationConfig base)
{
    base.vmc.allow_power_off = false;
    return base;
}

CoordinationConfig
withBudgets(CoordinationConfig base, const sim::BudgetConfig &budgets)
{
    base.budgets = budgets;
    return base;
}

CoordinationConfig
withTimeConstants(CoordinationConfig base, unsigned t_ec, unsigned t_sm,
                  unsigned t_em, unsigned t_gm, unsigned t_vmc)
{
    if (t_ec)
        base.ec.period = t_ec;
    if (t_sm)
        base.sm.period = t_sm;
    if (t_em)
        base.em.period = t_em;
    if (t_gm)
        base.gm.period = t_gm;
    if (t_vmc)
        base.vmc.period = t_vmc;
    return base;
}

CoordinationConfig
withPolicy(CoordinationConfig base, controllers::DivisionPolicy policy)
{
    base.em.policy = policy;
    base.gm.policy = policy;
    return base;
}

} // namespace core
} // namespace nps
