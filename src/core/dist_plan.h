/**
 * @file
 * DistPlan: the declarative description of a distributed control-plane
 * run (docs/DISTRIBUTED.md) — which experiment to run, which socket the
 * process tree meets on, and which management levels live in which
 * child process:
 *
 *     [dist]
 *     transport = unix            # unix | tcp
 *     socket = /tmp/nps-dist.sock # path (unix) or port (tcp)
 *     timeout_ms = 30000
 *     restart_after = 40          # restart killed ranks after N ticks
 *
 *     [run]
 *     scenario = coordinated
 *     mix = 60M
 *     ticks = 480
 *
 *     [node group]
 *     levels = gm:*
 *
 *     [node enclosures]
 *     levels = em:*, vmc
 *
 *     [chaos]
 *     kill = 1@120                # SIGKILL rank 1 at the tick-120 barrier
 *
 *     [netem]
 *     seed = 7
 *     deadline_ticks = 3
 *     script = delay gm-em 100 200 1 2; partition em-sm 240 300
 *
 * Each [node] section becomes one npsnode child; ranks are assigned
 * 1..N in file order (rank 0 is the supervisor, which hosts everything
 * not claimed by a node). Only the *global* levels — gm, em, vmc — may
 * be claimed: they run on the engine thread in every process, which is
 * what lets the socket transport work without locks and keeps results
 * byte-identical across thread counts (stream/socket_transport.h). The
 * per-server levels (sm, ec, cap, mem) are sharded across worker
 * threads and always stay on the supervisor.
 *
 * Loading is strict in the config_io style: unknown sections, keys,
 * level names, malformed selectors, overlapping claims and out-of-range
 * kills are all fatal at parse time.
 */

#ifndef NPS_CORE_DIST_PLAN_H
#define NPS_CORE_DIST_PLAN_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bus/transport.h"
#include "util/ini.h"

namespace nps {
namespace core {

/**
 * A parsed, validated distributed-run plan.
 */
struct DistPlan
{
    /** One `level:id` (or `level:*`) claim inside a [node] section. */
    struct Selector
    {
        bus::OwnerLevel level = bus::OwnerLevel::Gm;
        long id = 0;      //!< instance id; meaningless when all is set
        bool all = false; //!< `level:*` — every instance of the level
    };

    /** One [node NAME] section; rank = its index in nodes + 1. */
    struct Node
    {
        std::string name;
        std::vector<Selector> selectors;
    };

    /** One scheduled SIGKILL from the [chaos] section. */
    struct Kill
    {
        int rank = 0;
        uint64_t tick = 0;
    };

    /// @name [dist]
    /// @{
    std::string transport = "unix"; //!< unix | tcp
    std::string socket;             //!< path (unix) or port (tcp)
    unsigned timeout_ms = 30000;    //!< barrier/socket silence guard
    /** Ticks a killed rank stays down before the supervisor restarts
     * it from a snapshot; 0 leaves dead ranks down for good. */
    unsigned restart_after = 0;
    /** Wall-clock keepalive period per socket; 0 disables heartbeats
     * (the wire protocol is then byte-identical to earlier versions). */
    unsigned hb_ms = 0;
    /** Per-rank silence budget before the supervisor declares the rank
     * dead (soft failure, same recovery path as a detected kill);
     * 0 disables and only the hard timeout_ms guard applies. */
    unsigned peer_timeout_ms = 0;
    /** Connect retries a rank makes before giving up on the hub. */
    unsigned reconnect_attempts = 10;
    /** First reconnect backoff (doubles per attempt, plus jitter). */
    unsigned reconnect_base_ms = 50;
    /** Backoff ceiling. */
    unsigned reconnect_max_ms = 2000;
    /// @}

    /// @name [netem] — deterministic wire chaos (docs/NETWORK_FAULTS.md)
    /// @{
    /** Set when a [netem] section is present: the netem layer is wired
     * into every process (and into --plan runs of the same file, which
     * is what keeps the two byte-identical). */
    bool netem = false;
    /** Seed of the per-(link, seq) counter-mode randomness. */
    uint64_t netem_seed = 1;
    /** Grant deadline in ticks: a delayed send due later than this is
     * dropped as expired (0 = no deadline). */
    unsigned netem_deadline = 0;
    /** The event script (';'-separated clauses; NetemSchedule::parse
     * grammar). Validated at plan load. */
    std::string netem_script;
    /// @}

    /// @name [run] — the same experiment knobs npsim takes as flags
    /// @{
    std::string scenario = "coordinated";
    std::string machine = "BladeA";
    std::string mix = "180";
    std::string budgets = "20-15-10";
    size_t ticks = 2880;
    uint64_t seed = 20080301;
    unsigned threads = 0;
    unsigned record_stride = 1;
    /// @}

    /// @name [obs] — the live observability plane (docs/OBSERVABILITY.md)
    /// @{
    /** Metrics on in *every* process (the registries must be replicated
     * for the cross-rank digest check, so this lives in the plan, not
     * in a per-process flag). Set when an [obs] section is present. */
    bool obs_metrics = false;
    /** Ticks between registry snapshots shipped to the supervisor. */
    unsigned obs_metrics_every = 1;
    /** Live endpoint spec per process ("%r" expands to the rank);
     * empty runs without endpoints. */
    std::string obs_http;
    /** Post-run serving window so scripts can take the final scrape. */
    unsigned obs_http_linger_ms = 0;
    /** Causal budget-cascade tracing in every process. */
    bool obs_cascade = false;
    /// @}

    std::vector<Node> nodes;
    std::vector<Kill> kills;

    /** obs_http with "%r" expanded for @p rank ("" stays ""). */
    std::string obsHttpFor(int rank) const;

    /** The endpoint spec for stream::listenOn / stream::connectTo. */
    std::string endpoint() const { return transport + ":" + socket; }

    /** Rank hosting instance @p id of @p level (0 = supervisor). */
    int ownerOf(bus::OwnerLevel level, long id) const;

    /** ownerOf as the callable Coordinator::attachTransport expects.
     * The returned closure copies the node table, so it outlives this
     * plan object. */
    bus::OwnerFn ownerFn() const;
};

/**
 * Parse and validate a DistPlan from an INI document. Keys not present
 * keep their defaults; unknown sections/keys, bad selectors, levels
 * that cannot be distributed, overlapping claims and out-of-range
 * [chaos] kills are fatal.
 */
DistPlan planFromIni(const util::IniDocument &ini);

/** Load a plan from an INI file. */
DistPlan loadPlanFile(const std::string &path);

} // namespace core
} // namespace nps

#endif // NPS_CORE_DIST_PLAN_H
