#include "core/dist.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <signal.h>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>
#include <utility>
#include <vector>

#include "ckpt/atomic_io.h"
#include "ckpt/snapshot.h"
#include "core/coordinator.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "fault/netem/netem.h"
#include "fault/netem/transport.h"
#include "model/machine.h"
#include "obs/live/agg.h"
#include "obs/live/exporter.h"
#include "obs/live/publisher.h"
#include "sim/recorder.h"
#include "stream/net.h"
#include "stream/socket_transport.h"
#include "trace/workload.h"
#include "util/logging.h"

namespace nps {
namespace core {
namespace dist {

namespace {

/**
 * The materialized experiment every process of a distributed run builds
 * identically: one plan in, the same config, topology, machine and
 * traces out everywhere — the precondition for lockstep replication.
 */
struct Experiment
{
    CoordinationConfig cfg;
    sim::Topology topo;
    model::MachineSpec machine;
    std::vector<trace::UtilizationTrace> traces;
};

CoordinationConfig
configForScenario(const std::string &name)
{
    // The same scenario catalogue npsim exposes as --scenario; a plan
    // must not accept names the flag would reject.
    if (name == "coordinated")
        return coordinatedConfig();
    if (name == "uncoordinated")
        return uncoordinatedConfig();
    if (name == "baseline")
        return baselineConfig();
    if (name == "novmc")
        return scenarioConfig(Scenario::NoVmc);
    if (name == "vmconly")
        return scenarioConfig(Scenario::VmcOnly);
    if (name == "appr-util")
        return scenarioConfig(Scenario::CoordApparentUtil);
    if (name == "no-feedback")
        return scenarioConfig(Scenario::CoordNoFeedback);
    if (name == "no-budget-limits")
        return scenarioConfig(Scenario::CoordNoBudgetLimits);
    util::fatal("plan: unknown scenario '%s'", name.c_str());
}

sim::BudgetConfig
budgetsForName(const std::string &name)
{
    if (name == "20-15-10")
        return sim::BudgetConfig::paper201510();
    if (name == "25-20-15")
        return sim::BudgetConfig::paper252015();
    if (name == "30-25-20")
        return sim::BudgetConfig::paper302520();
    util::fatal("plan: unknown budgets '%s'", name.c_str());
}

trace::Mix
mixForName(const std::string &name)
{
    for (auto mix : trace::allMixes()) {
        if (name == trace::mixName(mix))
            return mix;
    }
    util::fatal("plan: unknown mix '%s'", name.c_str());
}

Experiment
materialize(const DistPlan &plan, unsigned threads_override)
{
    CoordinationConfig cfg = configForScenario(plan.scenario);
    cfg.budgets = budgetsForName(plan.budgets);
    cfg.threads = threads_override ? threads_override : plan.threads;
    // Arm the budget leases in *every* process of the plan, the oracle
    // included: identical configs are what make the oracle's CSV a
    // meaningful byte-for-byte reference (core/config.cpp).
    cfg.distributed = true;
    // Observability is likewise plan-wide: every replica must register
    // the identical instrument set or the cross-rank digest check
    // (obs/live/agg.h) would report a desync that is really a config
    // mismatch.
    if (plan.obs_metrics)
        cfg.observability.metrics = true;
    if (plan.obs_cascade)
        cfg.observability.cascade = true;

    trace::GeneratorConfig gen;
    gen.seed = plan.seed;
    trace::WorkloadLibrary library(gen);
    trace::Mix mix = mixForName(plan.mix);

    Experiment ex{std::move(cfg), ExperimentRunner::topologyFor(mix),
                  model::machineByName(plan.machine), library.mix(mix)};
    ex.topo.validate();
    return ex;
}

/**
 * Every runtime attaches a Recorder unconditionally (output may be
 * discarded): the engine roster must be identical across the oracle,
 * the supervisor and every child, or a restart snapshot taken in one
 * process could not restore into another.
 */
std::shared_ptr<sim::Recorder>
attachRecorder(Coordinator &coordinator, const DistPlan &plan)
{
    sim::Recorder::Options opts;
    opts.stride = plan.record_stride;
    auto recorder = std::make_shared<sim::Recorder>(coordinator.cluster(),
                                                    opts);
    recorder->setFaultInjector(coordinator.faultInjector());
    coordinator.engine().addActor(recorder);
    return recorder;
}

void
writeRecordCsv(const sim::Recorder &recorder, const std::string &path)
{
    if (path.empty())
        return;
    std::ostringstream out;
    recorder.writeCsv(out);
    ckpt::writeFileAtomic(path, out.str());
    std::printf("record: wrote %zu samples to %s\n", recorder.samples(),
                path.c_str());
}

/**
 * One process's half of the live observability plane: the optional
 * HTTP exporter plus the per-tick publisher (also the owner of the
 * always-on runtime tick-latency histogram). Everything is null when
 * the plan has no metrics registry.
 */
struct LivePlane
{
    std::unique_ptr<obs::live::LiveExporter> exporter;
    std::unique_ptr<obs::live::LivePublisher> publisher;
    unsigned linger_ms = 0;
};

LivePlane
attachLivePlane(Coordinator &coordinator, const DistPlan &plan,
                const ObsOutputs &obs, int rank)
{
    LivePlane lp;
    obs::MetricsRegistry *reg =
        coordinator.observability()
            ? coordinator.observability()->metrics()
            : nullptr;
    if (!reg)
        return lp;
    const std::string spec =
        !obs.http.empty() ? obs.http : plan.obsHttpFor(rank);
    if (!spec.empty())
        lp.exporter =
            std::make_unique<obs::live::LiveExporter>(spec, rank);
    lp.publisher = std::make_unique<obs::live::LivePublisher>(
        reg, coordinator.profiler(),
        [&coordinator] { coordinator.updateRunGauges(); },
        lp.exporter.get(), plan.obs_metrics_every, rank);
    coordinator.engine().setTickObserver(lp.publisher.get());
    lp.linger_ms =
        obs.http_linger_ms ? obs.http_linger_ms : plan.obs_http_linger_ms;
    return lp;
}

/**
 * End-of-run observability epilogue, shared by all three runtimes:
 * refresh the run gauges one last time, publish the final snapshot
 * (so the last scrape and the export files agree byte for byte),
 * write the requested exports, then linger for late scrapers.
 */
void
finishObs(Coordinator &coordinator, const LivePlane &lp,
          const ObsOutputs &obs, uint64_t final_tick)
{
    coordinator.updateRunGauges();
    if (lp.publisher)
        lp.publisher->publishFinal(final_tick);
    if (!obs.metrics_path.empty()) {
        if (!lp.publisher)
            util::fatal("dist: --metrics needs an [obs] section in the "
                        "plan (every replica must carry the registry)");
        ckpt::writeFileAtomic(obs.metrics_path,
                              lp.publisher->render(final_tick, true).prom);
        std::printf("metrics: wrote %s\n", obs.metrics_path.c_str());
    }
    if (!obs.cascade_path.empty()) {
        const bus::CascadeTracer *tracer = coordinator.cascadeTracer();
        if (!tracer)
            util::fatal("dist: --cascade needs cascade = true in the "
                        "plan's [obs] section");
        std::ostringstream out;
        tracer->writeCsv(out);
        ckpt::writeFileAtomic(obs.cascade_path, out.str());
        std::printf("cascade: wrote %zu hops to %s\n",
                    tracer->totalHops(), obs.cascade_path.c_str());
    }
    if (lp.exporter)
        lp.exporter->linger(lp.linger_ms);
    coordinator.engine().setTickObserver(nullptr);
}

/** Milliseconds elapsed since @p start (runtime instrumentation). */
double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
printSummary(const Coordinator &coordinator, const DistPlan &plan,
             size_t ran)
{
    sim::MetricsSummary m = coordinator.summary();
    std::printf("plan: scenario=%s machine=%s mix=%s budgets=%s "
                "ticks=%zu ranks=%zu\n",
                plan.scenario.c_str(), plan.machine.c_str(),
                plan.mix.c_str(), plan.budgets.c_str(), ran,
                plan.nodes.size() + 1);
    std::printf("power:  mean %.1f W, peak %.1f W\n", m.mean_power,
                m.peak_power);
    std::printf("perf:   loss %.3f %%\n", m.perf_loss * 100.0);
    const fault::DegradeStats &d = m.degrade;
    std::printf("degrade: %llu dropped, %llu stale, %llu lease "
                "expiries, %llu fallback steps, %llu restarts\n",
                (unsigned long long)d.dropped_budgets,
                (unsigned long long)d.stale_budgets,
                (unsigned long long)d.lease_expiries,
                (unsigned long long)d.lease_fallback_steps,
                (unsigned long long)d.restarts);
    if (plan.netem)
        std::printf("netem:  %llu delayed, %llu late, %llu expired, "
                    "%llu partition drops, %llu reorder drops\n",
                    (unsigned long long)d.netem_delayed,
                    (unsigned long long)d.netem_late_deliveries,
                    (unsigned long long)d.netem_expired,
                    (unsigned long long)d.netem_partition_drops,
                    (unsigned long long)d.netem_reorder_drops);
}

/** The plan's netem oracle (empty model when the plan has no [netem]). */
fault::netem::NetemModel
netemModelFor(const DistPlan &plan)
{
    return fault::netem::NetemModel(
        fault::netem::NetemSchedule::parse(plan.netem_script),
        plan.netem_seed, plan.netem_deadline);
}

/**
 * The after-drain hook publishing the deterministic netem gauges.
 * Registered on every rank — and on the --plan oracle — whenever the
 * plan has both [netem] and [obs], so the instrument set (and the
 * cross-rank digest) stays aligned. Values are set at the drain point
 * of each tick, which every replica reaches with identical counters:
 * the gauges are digest-comparable, unlike the wire-local dup/corrupt
 * tallies, which stay out of this set (they only tick on the one
 * process that wrote the mangled frame).
 */
std::function<void(size_t)>
netemGaugeHook(fault::netem::NetemTransport &net,
               obs::MetricsRegistry *reg)
{
    if (!reg)
        return nullptr;
    obs::Gauge *delayed =
        reg->gauge("nps_net_delayed", "wire",
                   "Sends parked on the netem virtual wire so far");
    obs::Gauge *late =
        reg->gauge("nps_net_late_deliveries", "wire",
                   "Delayed sends that reached their sink late");
    obs::Gauge *expired =
        reg->gauge("nps_net_expired", "wire",
                   "Delayed sends dropped for missing the deadline");
    obs::Gauge *partition =
        reg->gauge("nps_net_partition_drops", "wire",
                   "Sends dropped by a scripted partition");
    obs::Gauge *reorder =
        reg->gauge("nps_net_reorder_drops", "wire",
                   "Late sends discarded because a fresher one landed");
    obs::Gauge *queued =
        reg->gauge("nps_net_queue_depth", "wire",
                   "Sends currently parked on the virtual wire");
    obs::Gauge *active =
        reg->gauge("nps_net_active_events", "wire",
                   "Netem schedule events active this tick");
    return [&net, delayed, late, expired, partition, reorder, queued,
            active](size_t tick) {
        const fault::netem::NetemTransport::Stats &s = net.stats();
        delayed->set(static_cast<double>(s.delayed));
        late->set(static_cast<double>(s.late_deliveries));
        expired->set(static_cast<double>(s.expired));
        partition->set(static_cast<double>(s.partition_drops));
        reorder->set(static_cast<double>(s.reorder_drops));
        queued->set(static_cast<double>(net.queued()));
        active->set(static_cast<double>(net.model().activeCount(tick)));
    };
}

/** Directory holding the running binary (to find npsnode next to it). */
std::string
selfDir()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        util::fatal("dist: readlink(/proc/self/exe): %s",
                    std::strerror(errno));
    buf[n] = '\0';
    std::string path(buf);
    std::string::size_type slash = path.rfind('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

/** Leaf tick gate: report the previous tick, wait for this one. */
class NodeGate : public sim::TickSource
{
  public:
    /**
     * @p on_report fires for every completed tick right before its
     * tick-done goes out (the metrics-snapshot hook: an 'M' frame must
     * precede its barrier 'D' on the wire). @p barrier_ms, when
     * non-null, records the wall time spent waiting for each release.
     */
    NodeGate(stream::SocketTransport &transport,
             std::function<void(uint64_t)> on_report = nullptr,
             obs::Histogram *barrier_ms = nullptr)
        : transport_(transport), on_report_(std::move(on_report)),
          barrier_ms_(barrier_ms)
    {
    }

    bool beginTick(size_t tick) override
    {
        // The first gated tick has nothing to report: a fresh child
        // reported nothing yet, a restored one resumes at a tick whose
        // predecessor the supervisor's own replica already covered.
        if (started_) {
            if (on_report_)
                on_report_(tick - 1);
            transport_.sendTickDone(tick - 1);
        }
        started_ = true;
        auto start = std::chrono::steady_clock::now();
        bool released = transport_.waitTickStart(tick);
        if (barrier_ms_)
            barrier_ms_->observe(msSince(start));
        return released;
    }

  private:
    stream::SocketTransport &transport_;
    std::function<void(uint64_t)> on_report_;
    obs::Histogram *barrier_ms_;
    bool started_ = false;
};

/**
 * Rank 0's tick gate and process manager: collects the barrier,
 * executes scheduled kills, restarts dead ranks from snapshots, and
 * releases each tick to the children.
 */
class SupervisorGate : public sim::TickSource
{
  public:
    SupervisorGate(const DistPlan &plan, const std::string &plan_path,
                   Coordinator &coordinator, sim::Recorder &recorder,
                   stream::SocketTransport &transport, int listener)
        : plan_(plan), plan_path_(plan_path), coordinator_(coordinator),
          recorder_(recorder), transport_(transport), listener_(listener)
    {
    }

    /** Spawn every [node] child and collect their join handshakes. */
    void spawnAll()
    {
        for (size_t n = 0; n < plan_.nodes.size(); ++n)
            spawn(static_cast<int>(n) + 1, "");
        for (size_t n = 0; n < plan_.nodes.size(); ++n) {
            int rank = transport_.acceptPeer(listener_);
            std::fprintf(stderr, "npsim: rank %d (%s) joined\n", rank,
                         plan_.nodes[static_cast<size_t>(rank) - 1]
                             .name.c_str());
        }
    }

    /** Record barrier waits into @p barrier_ms (may stay null). */
    void setBarrierHistogram(obs::Histogram *barrier_ms)
    {
        barrier_ms_ = barrier_ms;
    }

    /**
     * Run @p hook at every barrier, after all alive ranks reported the
     * completed tick (its argument) and this replica has finished it
     * too — the only point where every rank's metrics snapshot of that
     * tick is both present and comparable against local state.
     */
    void setBarrierHook(std::function<void(uint64_t)> hook)
    {
        barrier_hook_ = std::move(hook);
    }

    /**
     * Include the netem delivery queue in restart snapshots. The gate
     * runs *inside* the NetemGate wrapper, so a snapshot taken here
     * captures the queue before this tick's drain — and the restored
     * child, whose first drain covers the same tick, replays exactly
     * the deliveries this replica is about to make.
     */
    void setNetem(fault::netem::NetemTransport *netem) { netem_ = netem; }

    bool beginTick(size_t tick) override
    {
        if (started_) {
            auto start = std::chrono::steady_clock::now();
            for (size_t n = 0; n < plan_.nodes.size(); ++n) {
                int rank = static_cast<int>(n) + 1;
                if (transport_.alive(rank))
                    transport_.waitTickDone(rank, tick - 1);
            }
            if (barrier_ms_)
                barrier_ms_->observe(msSince(start));
            if (barrier_hook_)
                barrier_hook_(tick - 1);
        }
        started_ = true;
        for (const auto &kill : plan_.kills) {
            if (kill.tick == tick)
                executeKill(kill.rank, tick);
        }
        for (auto it = restart_at_.begin(); it != restart_at_.end();) {
            if (it->second == tick) {
                restart(it->first, tick);
                it = restart_at_.erase(it);
            } else {
                ++it;
            }
        }
        transport_.broadcastTickStart(tick);
        return true;
    }

    /** Final barrier: collect the last tick, say bye, reap children. */
    void finish(uint64_t final_tick)
    {
        for (size_t n = 0; n < plan_.nodes.size(); ++n) {
            int rank = static_cast<int>(n) + 1;
            if (transport_.alive(rank))
                transport_.waitTickDone(rank, final_tick);
        }
        if (barrier_hook_)
            barrier_hook_(final_tick);
        transport_.broadcastBye(final_tick + 1);
        for (auto &entry : pids_) {
            int status = 0;
            ::waitpid(entry.second, &status, 0);
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                util::fatal("dist: rank %d (pid %ld) exited "
                            "abnormally", entry.first,
                            static_cast<long>(entry.second));
        }
        pids_.clear();
    }

  private:
    void spawn(int rank, const std::string &restore)
    {
        const std::string npsnode = selfDir() + "/npsnode";
        const std::string rank_str = std::to_string(rank);
        pid_t pid = ::fork();
        if (pid < 0)
            util::fatal("dist: fork: %s", std::strerror(errno));
        if (pid == 0) {
            std::vector<const char *> argv{
                npsnode.c_str(), "--plan", plan_path_.c_str(), "--rank",
                rank_str.c_str()};
            if (!restore.empty()) {
                argv.push_back("--restore");
                argv.push_back(restore.c_str());
            }
            argv.push_back(nullptr);
            ::execv(npsnode.c_str(),
                    const_cast<char *const *>(argv.data()));
            std::fprintf(stderr, "npsim: cannot exec %s: %s\n",
                         npsnode.c_str(), std::strerror(errno));
            ::_exit(127);
        }
        pids_[rank] = pid;
    }

    void executeKill(int rank, size_t tick)
    {
        auto it = pids_.find(rank);
        if (it == pids_.end())
            return; // already dead (two kills on one rank)
        ::kill(it->second, SIGKILL);
        int status = 0;
        ::waitpid(it->second, &status, 0);
        std::fprintf(stderr, "npsim: killed rank %d (pid %ld) at tick "
                             "%zu\n",
                     rank, static_cast<long>(it->second), tick);
        pids_.erase(it);
        if (plan_.restart_after > 0 &&
            tick + plan_.restart_after < plan_.ticks)
            restart_at_[rank] = tick + plan_.restart_after;
    }

    void restart(int rank, size_t tick)
    {
        // The supervisor's replica *is* the authoritative state of a
        // dead rank's levels: snapshot it and let the fresh child
        // restore the whole engine, seq counters included, so it
        // rejoins the lockstep mid-run.
        const std::string snap = snapshotPath(rank);
        ckpt::SnapshotWriter out;
        coordinator_.saveState(out);
        recorder_.saveState(out.section("recorder"));
        if (netem_)
            netem_->saveState(out.section("netem"));
        out.writeFile(snap);
        spawn(rank, snap);
        int joined = transport_.acceptPeer(listener_);
        if (joined != rank)
            util::fatal("dist: expected restarted rank %d, got %d",
                        rank, joined);
        transport_.syncLiveness(rank);
        transport_.broadcastPeerUp(rank, tick);
        std::fprintf(stderr, "npsim: restarted rank %d at tick %zu "
                             "from %s\n",
                     rank, tick, snap.c_str());
    }

    std::string snapshotPath(int rank) const
    {
        // Unix plans park snapshots next to the socket (the run's
        // scratch directory); tcp plans fall back to the cwd.
        const std::string stem = plan_.transport == "unix"
                                     ? plan_.socket
                                     : std::string("npsdist");
        return stem + ".restart-r" + std::to_string(rank) + ".nps";
    }

    const DistPlan &plan_;
    std::string plan_path_;
    Coordinator &coordinator_;
    sim::Recorder &recorder_;
    stream::SocketTransport &transport_;
    int listener_;
    fault::netem::NetemTransport *netem_ = nullptr;
    obs::Histogram *barrier_ms_ = nullptr;
    std::function<void(uint64_t)> barrier_hook_;
    bool started_ = false;
    std::map<int, pid_t> pids_;
    std::map<int, uint64_t> restart_at_;
};

} // namespace

int
runPlanSingle(const DistPlan &plan, const std::string &record_path,
              unsigned threads, const ObsOutputs &obs)
{
    Experiment ex = materialize(plan, threads);
    Coordinator coordinator(ex.cfg, ex.topo, ex.machine, ex.traces);
    auto recorder = attachRecorder(coordinator, plan);

    // The netem oracle: the same model the distributed runtime applies,
    // over the identity transport. Owners come from the plan's node
    // table (not localOwner) so rank:N netem targets resolve to the
    // same links they would in the process tree — the precondition for
    // the byte-identity this runtime is the reference for.
    bus::InProcTransport inproc;
    std::unique_ptr<fault::netem::NetemTransport> netem;
    std::unique_ptr<fault::netem::NetemGate> netem_gate;
    if (plan.netem) {
        netem = std::make_unique<fault::netem::NetemTransport>(
            netemModelFor(plan), &inproc);
        coordinator.attachTransport(netem.get(), plan.ownerFn());
    }

    LivePlane lp = attachLivePlane(coordinator, plan, obs, 0);
    if (netem) {
        obs::MetricsRegistry *reg =
            coordinator.observability()
                ? coordinator.observability()->metrics()
                : nullptr;
        netem_gate = std::make_unique<fault::netem::NetemGate>(
            *netem, nullptr, netemGaugeHook(*netem, reg));
        coordinator.engine().setTickSource(netem_gate.get());
    }
    size_t ran = coordinator.run(plan.ticks);
    if (netem_gate)
        coordinator.engine().setTickSource(nullptr);
    finishObs(coordinator, lp, obs, ran ? ran - 1 : 0);
    printSummary(coordinator, plan, ran);
    writeRecordCsv(*recorder, record_path);
    return 0;
}

int
runSupervisor(const DistPlan &plan, const std::string &plan_path,
              const std::string &record_path, unsigned threads,
              const ObsOutputs &obs)
{
    // A write to a freshly-killed peer must surface as an error the
    // transport turns into a peer-down, not as a fatal SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);
    Experiment ex = materialize(plan, threads);
    const int listener = stream::listenOn(plan.endpoint());
    stream::SocketTransport transport(plan.timeout_ms);
    transport.setHeartbeat(plan.hb_ms);
    transport.setPeerTimeout(plan.peer_timeout_ms);
    Coordinator coordinator(ex.cfg, ex.topo, ex.machine, ex.traces);
    auto recorder = attachRecorder(coordinator, plan);
    std::unique_ptr<fault::netem::NetemTransport> netem;
    if (plan.netem) {
        netem = std::make_unique<fault::netem::NetemTransport>(
            netemModelFor(plan), &transport);
        transport.setWireMangler(netem.get());
        coordinator.attachTransport(netem.get(), plan.ownerFn());
    } else {
        coordinator.attachTransport(&transport, plan.ownerFn());
    }

    // Cross-rank aggregation (obs/live/agg.h): each 'M' frame is
    // digest-checked against this replica — the metrics-level desync
    // detector — then merged into the fleet view the live endpoint
    // and the end-of-run export serve.
    obs::MetricsRegistry *reg =
        coordinator.observability()
            ? coordinator.observability()->metrics()
            : nullptr;
    obs::live::FleetView fleet;
    std::map<uint32_t, std::pair<uint64_t, std::vector<uint8_t>>> pending;
    if (reg) {
        // An 'M' frame can surface mid-tick: the transport drains the
        // socket whenever a link blocks for an owner frame, possibly
        // while this replica is still stepping the same tick its
        // children already finished. Comparing registries at that
        // moment would race half-written local counters against the
        // child's completed-tick state, so the sink only buffers the
        // raw payload; the barrier hook below merges once both sides
        // have completed the tick.
        transport.setMetricsSink(
            [&pending](uint32_t rank, uint64_t tick,
                       const std::vector<uint8_t> &bytes) {
                pending[rank] = {tick, bytes};
            });
    }
    auto merge_fleet = [&](uint64_t done_tick) {
        if (!reg || pending.empty())
            return;
        coordinator.updateRunGauges();
        const std::string own = obs::live::encodeSnapshot(*reg);
        obs::live::RankSnapshot self = obs::live::decodeSnapshot(
            0, done_tick, reinterpret_cast<const uint8_t *>(own.data()),
            own.size());
        for (const auto &entry : pending) {
            if (entry.second.first != done_tick)
                util::fatal("dist: rank %u metrics snapshot is for tick "
                            "%llu at the tick-%llu barrier",
                            entry.first,
                            (unsigned long long)entry.second.first,
                            (unsigned long long)done_tick);
            obs::live::RankSnapshot snap = obs::live::decodeSnapshot(
                entry.first, entry.second.first,
                entry.second.second.data(), entry.second.second.size());
            if (snap.digest != self.digest) {
                std::string what = obs::live::diffSnapshots(snap, self);
                util::fatal("dist: metrics desync at tick %llu: rank %u "
                            "digest %08x != supervisor digest %08x — "
                            "the replicas diverged%s%s",
                            (unsigned long long)done_tick, entry.first,
                            snap.digest, self.digest,
                            what.empty() ? "" : "; first ",
                            what.c_str());
            }
            fleet.update(std::move(snap));
        }
        pending.clear();
        fleet.update(std::move(self));
    };

    LivePlane lp = attachLivePlane(coordinator, plan, obs, 0);
    if (lp.publisher)
        lp.publisher->setFleet(&fleet);
    obs::Histogram *barrier_ms =
        reg ? reg->histogram("nps_rt_barrier_wait_ms", "rank0",
                             "Wall-clock wait at the per-tick barrier "
                             "(ms)",
                             obs::MetricsRegistry::runtimeMsBounds())
            : nullptr;

    // Supervisor-side health ladder: the netem schedule names who is
    // *partitioned* (deterministic), the socket names who is live,
    // degraded (silent past the grace window) or dead (runtime). The
    // per-rank gauges are runtime families — each rank's view is
    // different by construction — and /healthz carries the same states.
    std::vector<obs::Gauge *> peer_state;
    if (reg && (plan.hb_ms || plan.peer_timeout_ms || plan.netem)) {
        for (size_t n = 0; n <= plan.nodes.size(); ++n)
            peer_state.push_back(
                reg->gauge("nps_rt_net_peer_state",
                           "rank" + std::to_string(n),
                           "Supervisor view of each rank: 0 live, "
                           "1 degraded, 2 partitioned, 3 dead"));
    }
    auto rank_state = [&](int rank, size_t tick) -> const char * {
        if (netem && netem->model().rankPartitioned(rank, tick))
            return "partitioned";
        return stream::peerHealthName(transport.peerHealth(rank));
    };
    auto update_peer_state = [&](size_t tick) {
        for (size_t n = 0; n < peer_state.size(); ++n) {
            const char *state = rank_state(static_cast<int>(n), tick);
            double code = 0.0;
            if (std::strcmp(state, "degraded") == 0)
                code = 1.0;
            else if (std::strcmp(state, "partitioned") == 0)
                code = 2.0;
            else if (std::strcmp(state, "dead") == 0)
                code = 3.0;
            peer_state[n]->set(code);
        }
    };
    if (lp.publisher && (plan.hb_ms || plan.peer_timeout_ms || plan.netem))
        lp.publisher->setHealthExtra([&]() {
            std::ostringstream out;
            out << "\"peers\": [";
            size_t tick = coordinator.engine().now();
            for (size_t n = 0; n <= plan.nodes.size(); ++n)
                out << (n ? ", " : "") << "{\"rank\": " << n
                    << ", \"state\": \""
                    << rank_state(static_cast<int>(n), tick) << "\"}";
            out << "]";
            return out.str();
        });

    SupervisorGate gate(plan, plan_path, coordinator, *recorder,
                        transport, listener);
    gate.setBarrierHistogram(barrier_ms);
    gate.setBarrierHook([&](uint64_t done_tick) {
        merge_fleet(done_tick);
        // Without a netem gate the per-rank health gauges refresh here;
        // with one, its after-drain hook owns them.
        if (!netem)
            update_peer_state(done_tick);
    });
    gate.setNetem(netem.get());
    std::unique_ptr<fault::netem::NetemGate> netem_gate;
    if (netem) {
        std::function<void(size_t)> gauges = netemGaugeHook(*netem, reg);
        netem_gate = std::make_unique<fault::netem::NetemGate>(
            *netem, &gate,
            [gauges, update_peer_state](size_t tick) {
                if (gauges)
                    gauges(tick);
                update_peer_state(tick);
            });
    }
    gate.spawnAll();
    coordinator.engine().setTickSource(
        netem_gate ? static_cast<sim::TickSource *>(netem_gate.get())
                   : &gate);
    size_t ran = coordinator.run(plan.ticks);
    if (ran != plan.ticks)
        util::fatal("dist: supervisor stopped after %zu of %zu ticks",
                    ran, plan.ticks);
    gate.finish(plan.ticks - 1);
    coordinator.engine().setTickSource(nullptr);
    ::close(listener);
    if (plan.transport == "unix")
        ::unlink(plan.socket.c_str());

    finishObs(coordinator, lp, obs, plan.ticks - 1);
    printSummary(coordinator, plan, ran);
    writeRecordCsv(*recorder, record_path);
    return 0;
}

int
runNode(const DistPlan &plan, int rank, const std::string &restore_path,
        const ObsOutputs &obs)
{
    if (rank < 1 || rank > static_cast<int>(plan.nodes.size()))
        util::fatal("npsnode: rank %d out of range 1..%zu", rank,
                    plan.nodes.size());
    ::signal(SIGPIPE, SIG_IGN); // see runSupervisor
    Experiment ex = materialize(plan, 0);
    // Bounded-backoff connect: a restarted rank may race the hub's
    // accept loop (or a netem-delayed restart may find the hub briefly
    // busy), so the join retries with exponential backoff and per-rank
    // jitter instead of a fixed poll.
    const int fd =
        plan.reconnect_attempts
            ? stream::connectWithBackoff(
                  plan.endpoint(), plan.reconnect_attempts,
                  plan.reconnect_base_ms, plan.reconnect_max_ms,
                  static_cast<uint64_t>(rank))
            : stream::connectTo(plan.endpoint(), plan.timeout_ms);
    stream::SocketTransport transport(rank, fd, plan.timeout_ms);
    transport.setHeartbeat(plan.hb_ms);
    Coordinator coordinator(ex.cfg, ex.topo, ex.machine, ex.traces);
    auto recorder = attachRecorder(coordinator, plan);
    std::unique_ptr<fault::netem::NetemTransport> netem;
    if (plan.netem) {
        netem = std::make_unique<fault::netem::NetemTransport>(
            netemModelFor(plan), &transport);
        transport.setWireMangler(netem.get());
        coordinator.attachTransport(netem.get(), plan.ownerFn());
    } else {
        coordinator.attachTransport(&transport, plan.ownerFn());
    }

    obs::MetricsRegistry *reg =
        coordinator.observability()
            ? coordinator.observability()->metrics()
            : nullptr;
    LivePlane lp = attachLivePlane(coordinator, plan, obs, rank);
    obs::Histogram *barrier_ms =
        reg ? reg->histogram("nps_rt_barrier_wait_ms",
                             "rank" + std::to_string(rank),
                             "Wall-clock wait at the per-tick barrier "
                             "(ms)",
                             obs::MetricsRegistry::runtimeMsBounds())
            : nullptr;
    // Registry snapshot shipped right before each barrier report, at
    // the plan's cadence — the supervisor consumes it at the matching
    // tick of its own replica (runSupervisor's sink). The last tick
    // always ships so the fleet view the export renders is end-of-run
    // state, whatever the cadence.
    auto ship = [&](uint64_t done_tick, bool force) {
        if (!reg ||
            (!force && done_tick % plan.obs_metrics_every != 0))
            return;
        coordinator.updateRunGauges();
        const std::string bytes = obs::live::encodeSnapshot(*reg);
        transport.sendMetricsSnapshot(
            done_tick, reinterpret_cast<const uint8_t *>(bytes.data()),
            bytes.size());
    };

    size_t done = 0;
    if (!restore_path.empty()) {
        ckpt::SnapshotReader snap;
        std::string err;
        if (!snap.load(restore_path, err))
            util::fatal("npsnode: cannot restore %s: %s",
                        restore_path.c_str(), err.c_str());
        coordinator.loadState(snap);
        ckpt::SectionReader r = snap.section("recorder");
        recorder->loadState(r);
        r.expectEnd();
        if (netem) {
            ckpt::SectionReader nr = snap.section("netem");
            netem->loadState(nr);
            nr.expectEnd();
        }
        done = coordinator.engine().now();
        std::fprintf(stderr, "npsnode: rank %d restored at tick %zu\n",
                     rank, done);
    }
    if (done >= plan.ticks)
        util::fatal("npsnode: snapshot %s is at tick %zu, beyond the "
                    "plan's %zu ticks",
                    restore_path.c_str(), done, plan.ticks);

    transport.sendJoin();
    NodeGate gate(transport,
                  [&ship](uint64_t t) { ship(t, /*force=*/false); },
                  barrier_ms);
    std::unique_ptr<fault::netem::NetemGate> netem_gate;
    if (netem)
        netem_gate = std::make_unique<fault::netem::NetemGate>(
            *netem, &gate, netemGaugeHook(*netem, reg));
    coordinator.engine().setTickSource(
        netem_gate ? static_cast<sim::TickSource *>(netem_gate.get())
                   : &gate);
    size_t ran = coordinator.run(plan.ticks - done);
    coordinator.engine().setTickSource(nullptr);
    if (transport.byeSeen())
        util::fatal("npsnode: rank %d dismissed after %zu of %zu "
                    "ticks", rank, done + ran, plan.ticks);

    // Final handshake: report the last tick, then wait for the bye so
    // the supervisor controls when the socket goes down.
    ship(plan.ticks - 1, /*force=*/true);
    transport.sendTickDone(plan.ticks - 1);
    if (transport.waitTickStart(plan.ticks))
        util::fatal("npsnode: supervisor released tick %zu past the "
                    "end of the run", plan.ticks);
    finishObs(coordinator, lp, obs, plan.ticks - 1);
    return 0;
}

} // namespace dist
} // namespace core
} // namespace nps
