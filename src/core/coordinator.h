/**
 * @file
 * Coordinator: the public entry point of the library.
 *
 * Builds the control-plane architecture over a cluster — per-server ECs
 * and SMs (nested), EMs per enclosure, a tree of GMs shaped by the
 * topology (one flat GM by default, exactly Figure 2), the VMC, and
 * optional electrical cappers — wiring every coordination channel
 * described in Figure 4 through typed bus links:
 *
 *   EC  : receives r_ref over the SM's reference link;
 *   SM  : receives budget grants from the EM/GM and exposes its
 *         violation history to the VMC;
 *   EM  : receives grants from its GM, subdivides over per-blade budget
 *         links, and exposes violations to the VMC;
 *   GM  : receives grants from a parent GM (when nested), subdivides
 *         over GM/EM/SM budget links, and exposes violations;
 *   VMC : consumes real utilization, budget constraints and violation
 *         feedback over per-source violation channels.
 *
 * When the topology carries a management tree (sim::Topology::tree) the
 * builder realizes one GM per tree node: the root keeps the paper's cap
 * CAP_GRP, inner nodes cap their own scope, and grants cascade down
 * GM→GM links with the same min(static, grant) rule as every other
 * level. The same constructor also realizes the *uncoordinated*
 * deployment (all five solutions from different vendors side by side)
 * when the config's coordination switch is off.
 */

#ifndef NPS_CORE_COORDINATOR_H
#define NPS_CORE_COORDINATOR_H

#include <memory>
#include <utility>
#include <vector>

#include "bus/cascade.h"
#include "bus/control_log.h"
#include "core/config.h"
#include "fault/injector.h"
#include "obs/observability.h"
#include "sim/engine.h"

namespace nps {
namespace core {

/**
 * Owns a cluster, its controller stack, metrics, and the engine.
 */
class Coordinator
{
  public:
    /**
     * Build the architecture over a homogeneous cluster.
     *
     * @param config  Deployment configuration (resolved internally).
     * @param topo    Cluster shape.
     * @param spec    Machine spec used for every server.
     * @param traces  One workload per VM.
     * @param keep_series Retain per-tick series in the metrics collector.
     */
    Coordinator(const CoordinationConfig &config,
                const sim::Topology &topo, const model::MachineSpec &spec,
                const std::vector<trace::UtilizationTrace> &traces,
                bool keep_series = false);

    /** Heterogeneous variant: one spec per server. */
    Coordinator(const CoordinationConfig &config,
                const sim::Topology &topo,
                const std::vector<std::shared_ptr<const model::MachineSpec>>
                    &specs,
                const std::vector<trace::UtilizationTrace> &traces,
                bool keep_series = false);

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /**
     * Advance the simulation by @p ticks.
     * @return ticks actually simulated — fewer than @p ticks only when
     *         a TickSource (an online telemetry feed) ended the run.
     */
    size_t run(size_t ticks);

    /** The resolved configuration in force. */
    const CoordinationConfig &config() const { return config_; }

    /** The managed cluster. */
    sim::Cluster &cluster() { return *cluster_; }
    const sim::Cluster &cluster() const { return *cluster_; }

    /**
     * Aggregated metrics so far, including the degradation counters
     * gathered from every controller.
     */
    sim::MetricsSummary summary() const;

    /**
     * The fault injector, or nullptr when the config schedules no faults.
     * Built from config.faults: the inline script plus the seeded random
     * campaign, materialized once at construction.
     */
    const fault::FaultInjector *faultInjector() const
    {
        return injector_.get();
    }

    /** Degradation counters summed across all controllers. */
    fault::DegradeStats degradeStats() const;

    /**
     * Attach the stream-liveness oracle of an online run (src/stream/)
     * to every server-targeting budget link in the hierarchy: grants to
     * a server whose telemetry stream is silent are then dropped exactly
     * like an injected link-drop fault, with the same DegradeStats and
     * the same lease-expiry fallback downstream. Null detaches; batch
     * runs never call this.
     */
    void attachStreamHealth(const fault::StreamHealth *health);

    /**
     * Route every control link of the hierarchy through @p transport
     * (null detaches, restoring the inline in-process fast path). The
     * attach order — SMs, EMs, GMs, cappers, memory managers, VMC — is
     * the canonical wire-id assignment order: every process of a
     * distributed run walks it identically, so link ids and the wiring
     * digest agree across ranks (docs/DISTRIBUTED.md). @p owner maps
     * each link's owning (level, id) to its hosting process rank;
     * bus::localOwner() pins everything to rank 0. Wiring time only,
     * before the engine runs.
     */
    void attachTransport(bus::Transport *transport,
                         const bus::OwnerFn &owner);

    /** The metrics collector (for series access). */
    const sim::MetricsCollector &metrics() const { return metrics_; }

    /** The VMC, or nullptr when disabled. */
    const controllers::VmController *vmc() const { return vmc_.get(); }

    /** The per-server ECs (empty when disabled), in server-id order. */
    const std::vector<std::shared_ptr<controllers::EfficiencyController>> &
    ecs() const
    {
        return ecs_;
    }

    /** The per-server SMs (empty when disabled), in server-id order. */
    const std::vector<std::shared_ptr<controllers::ServerManager>> &
    sms() const
    {
        return sms_;
    }

    /** The EMs (empty when disabled), in enclosure order. */
    const std::vector<std::shared_ptr<controllers::EnclosureManager>> &
    ems() const
    {
        return ems_;
    }

    /** The root GM, or nullptr when disabled. */
    const controllers::GroupManager *gm() const
    {
        return gms_.empty() ? nullptr : gms_.front().get();
    }

    /**
     * Every GM in pre-order (root first, then subtrees in topology
     * order); exactly one entry for the default flat topology.
     */
    const std::vector<std::shared_ptr<controllers::GroupManager>> &
    gms() const
    {
        return gms_;
    }

    /**
     * The control-plane event log, or nullptr unless the config set
     * log_control_plane.
     */
    const bus::ControlPlaneLog *controlLog() const
    {
        return control_log_.get();
    }

    /**
     * The budget-cascade hop trace, or nullptr unless the config set
     * observability.cascade. Records every stamped budget/violation hop
     * so a run's GM→EM→SM→VMC cascades can be reconstructed offline
     * with per-hop latency (docs/OBSERVABILITY.md).
     */
    const bus::CascadeTracer *cascadeTracer() const
    {
        return cascade_.get();
    }

    /** The electrical cappers (empty when disabled), in server order. */
    const std::vector<std::shared_ptr<controllers::ElectricalCapper>> &
    caps() const
    {
        return caps_;
    }

    /** The memory managers (empty when disabled), in server order. */
    const std::vector<std::shared_ptr<controllers::MemoryManager>> &
    mems() const
    {
        return mems_;
    }

    /** The engine (for adding custom actors before running). */
    sim::Engine &engine() { return *engine_; }

    /**
     * The observability bundle, or nullptr when config.observability
     * enables no instrument. Everything in it is observation-only: the
     * simulation results are bit-identical with it on or off, and the
     * metrics export and merged trace are byte-identical across thread
     * counts (docs/OBSERVABILITY.md).
     */
    const obs::Observability *observability() const { return obs_.get(); }
    obs::Observability *observability() { return obs_.get(); }

    /** The metrics registry, or nullptr when metrics are off. */
    const obs::MetricsRegistry *metricsRegistry() const
    {
        return obs_ ? obs_->metrics() : nullptr;
    }

    /** The decision-trace sink, or nullptr when tracing is off. */
    const obs::TraceSink *traceSink() const
    {
        return obs_ ? obs_->trace() : nullptr;
    }

    /** The engine profiler, or nullptr when profiling is off. */
    const obs::EngineProfiler *profiler() const
    {
        return obs_ ? obs_->profiler() : nullptr;
    }

    /// @name Checkpointing (src/core/checkpoint.cpp)
    /// @{

    /**
     * Serialize the complete mutable simulation state into @p snap: the
     * engine clock and roster, the cluster (placement, server/VM state),
     * metrics, every controller's internal state (integrators, leases,
     * grants, links), the control-plane log, and the obs instruments.
     * Structure and immutable inputs (config, topology, traces, the
     * FaultInjector) are NOT serialized — restore rebuilds them from the
     * same config and overlays this state (docs/CHECKPOINTING.md).
     */
    void saveState(ckpt::SnapshotWriter &snap) const;

    /**
     * Restore state saved by saveState() into this freshly-built
     * Coordinator. The Coordinator must have been constructed from the
     * same config and topology; mismatches are fatal with an actionable
     * message. After restore, run() continues byte-identically to the
     * original uninterrupted run at any thread count.
     */
    void loadState(const ckpt::SnapshotReader &snap);

    /// @}

  private:
    void buildControllers();
    void buildFaultInjector();

    /// @name Per-level builders (split of buildControllers)
    /// @{

    /** ECs + SMs + electrical cappers + memory managers, per server. */
    void buildServerLevel();

    /** EMs over the blade SMs, per enclosure. */
    void buildEnclosureLevel();

    /** The GM level: one flat GM, or the topology's whole GM tree. */
    void buildGroupManagers();

    /** The VMC over the violation feeds of every capping level. */
    void buildVmController();

    /// @}

    /**
     * Recursively realize @p node as a GM (children first); the GM is
     * stored at its pre-order slot in gms_ and returned.
     */
    controllers::GroupManager *buildGroupNode(const sim::TopologyNode &node,
                                              long &next_id);

    void attachControlLog();
    void attachCascade();
    void attachObservability();

  public:
    /**
     * Refresh the run-summary gauges from the collector. run() calls it
     * after every batch; the live plane calls it mid-run so scrapes see
     * current aggregates. Deterministic given the tick it runs at.
     */
    void updateRunGauges();

  private:

    CoordinationConfig config_;
    sim::Topology topo_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<sim::Cluster> cluster_;
    sim::MetricsCollector metrics_;
    std::unique_ptr<sim::Engine> engine_;
    std::unique_ptr<bus::ControlPlaneLog> control_log_;
    std::unique_ptr<bus::CascadeTracer> cascade_;
    std::vector<std::shared_ptr<controllers::EfficiencyController>> ecs_;
    std::vector<std::shared_ptr<controllers::ServerManager>> sms_;
    std::vector<std::shared_ptr<controllers::EnclosureManager>> ems_;
    /** All GMs in pre-order; gms_[0] is the root. */
    std::vector<std::shared_ptr<controllers::GroupManager>> gms_;
    std::shared_ptr<controllers::VmController> vmc_;
    std::vector<std::shared_ptr<controllers::ElectricalCapper>> caps_;
    std::vector<std::shared_ptr<controllers::MemoryManager>> mems_;

    std::unique_ptr<obs::Observability> obs_;
    /** Run-summary gauges (null when metrics are off). */
    obs::Gauge *obs_ticks_ = nullptr;
    obs::Gauge *obs_energy_ = nullptr;
    obs::Gauge *obs_mean_power_ = nullptr;
    obs::Gauge *obs_peak_power_ = nullptr;
    obs::Gauge *obs_viol_sm_ = nullptr;
    obs::Gauge *obs_viol_em_ = nullptr;
    obs::Gauge *obs_viol_gm_ = nullptr;
    obs::Gauge *obs_perf_loss_ = nullptr;
    obs::Gauge *obs_trace_dropped_ = nullptr;
    /** (gauge, DegradeStats field) pairs mirrored after each run. */
    std::vector<std::pair<obs::Gauge *,
                          unsigned long fault::DegradeStats::*>>
        obs_degrade_;
};

} // namespace core
} // namespace nps

#endif // NPS_CORE_COORDINATOR_H
