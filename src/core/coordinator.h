/**
 * @file
 * Coordinator: the public entry point of the library.
 *
 * Builds the full Figure 2 architecture over a cluster — per-server ECs
 * and SMs (nested), EMs per enclosure, one GM, the VMC, and optional
 * electrical cappers — wiring every coordination channel described in
 * Figure 4:
 *
 *   EC  : exposes setReference() to the SM;
 *   SM  : exposes setBudget() to the EM/GM and its violation history to
 *         the VMC;
 *   EM  : exposes setBudget() to the GM and violations to the VMC;
 *   GM  : exposes violations to the VMC;
 *   VMC : consumes real utilization, budget constraints and violation
 *         feedback.
 *
 * The same constructor also realizes the *uncoordinated* deployment (all
 * five solutions from different vendors side by side) when the config's
 * coordination switch is off.
 */

#ifndef NPS_CORE_COORDINATOR_H
#define NPS_CORE_COORDINATOR_H

#include <memory>
#include <vector>

#include "core/config.h"
#include "fault/injector.h"
#include "sim/engine.h"

namespace nps {
namespace core {

/**
 * Owns a cluster, its controller stack, metrics, and the engine.
 */
class Coordinator
{
  public:
    /**
     * Build the architecture over a homogeneous cluster.
     *
     * @param config  Deployment configuration (resolved internally).
     * @param topo    Cluster shape.
     * @param spec    Machine spec used for every server.
     * @param traces  One workload per VM.
     * @param keep_series Retain per-tick series in the metrics collector.
     */
    Coordinator(const CoordinationConfig &config,
                const sim::Topology &topo, const model::MachineSpec &spec,
                const std::vector<trace::UtilizationTrace> &traces,
                bool keep_series = false);

    /** Heterogeneous variant: one spec per server. */
    Coordinator(const CoordinationConfig &config,
                const sim::Topology &topo,
                const std::vector<std::shared_ptr<const model::MachineSpec>>
                    &specs,
                const std::vector<trace::UtilizationTrace> &traces,
                bool keep_series = false);

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** Advance the simulation by @p ticks. */
    void run(size_t ticks);

    /** The resolved configuration in force. */
    const CoordinationConfig &config() const { return config_; }

    /** The managed cluster. */
    sim::Cluster &cluster() { return *cluster_; }
    const sim::Cluster &cluster() const { return *cluster_; }

    /**
     * Aggregated metrics so far, including the degradation counters
     * gathered from every controller.
     */
    sim::MetricsSummary summary() const;

    /**
     * The fault injector, or nullptr when the config schedules no faults.
     * Built from config.faults: the inline script plus the seeded random
     * campaign, materialized once at construction.
     */
    const fault::FaultInjector *faultInjector() const
    {
        return injector_.get();
    }

    /** Degradation counters summed across all controllers. */
    fault::DegradeStats degradeStats() const;

    /** The metrics collector (for series access). */
    const sim::MetricsCollector &metrics() const { return metrics_; }

    /** The VMC, or nullptr when disabled. */
    const controllers::VmController *vmc() const { return vmc_.get(); }

    /** The per-server ECs (empty when disabled), in server-id order. */
    const std::vector<std::shared_ptr<controllers::EfficiencyController>> &
    ecs() const
    {
        return ecs_;
    }

    /** The per-server SMs (empty when disabled), in server-id order. */
    const std::vector<std::shared_ptr<controllers::ServerManager>> &
    sms() const
    {
        return sms_;
    }

    /** The EMs (empty when disabled), in enclosure order. */
    const std::vector<std::shared_ptr<controllers::EnclosureManager>> &
    ems() const
    {
        return ems_;
    }

    /** The GM, or nullptr when disabled. */
    const controllers::GroupManager *gm() const { return gm_.get(); }

    /** The electrical cappers (empty when disabled), in server order. */
    const std::vector<std::shared_ptr<controllers::ElectricalCapper>> &
    caps() const
    {
        return caps_;
    }

    /** The memory managers (empty when disabled), in server order. */
    const std::vector<std::shared_ptr<controllers::MemoryManager>> &
    mems() const
    {
        return mems_;
    }

    /** The engine (for adding custom actors before running). */
    sim::Engine &engine() { return *engine_; }

  private:
    void buildControllers();
    void buildFaultInjector();

    CoordinationConfig config_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<sim::Cluster> cluster_;
    sim::MetricsCollector metrics_;
    std::unique_ptr<sim::Engine> engine_;
    std::vector<std::shared_ptr<controllers::EfficiencyController>> ecs_;
    std::vector<std::shared_ptr<controllers::ServerManager>> sms_;
    std::vector<std::shared_ptr<controllers::EnclosureManager>> ems_;
    std::shared_ptr<controllers::GroupManager> gm_;
    std::shared_ptr<controllers::VmController> vmc_;
    std::vector<std::shared_ptr<controllers::ElectricalCapper>> caps_;
    std::vector<std::shared_ptr<controllers::MemoryManager>> mems_;
};

} // namespace core
} // namespace nps

#endif // NPS_CORE_COORDINATOR_H
