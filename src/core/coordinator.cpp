#include "core/coordinator.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace core {

namespace {

/** One shared spec replicated per server (homogeneous fleet). */
std::vector<std::shared_ptr<const model::MachineSpec>>
replicateSpec(const model::MachineSpec &spec, unsigned num_servers)
{
    return std::vector<std::shared_ptr<const model::MachineSpec>>(
        num_servers, std::make_shared<const model::MachineSpec>(spec));
}

} // namespace

Coordinator::Coordinator(const CoordinationConfig &config,
                         const sim::Topology &topo,
                         const model::MachineSpec &spec,
                         const std::vector<trace::UtilizationTrace> &traces,
                         bool keep_series)
    : Coordinator(config, topo, replicateSpec(spec, topo.num_servers),
                  traces, keep_series)
{
}

Coordinator::Coordinator(
    const CoordinationConfig &config, const sim::Topology &topo,
    const std::vector<std::shared_ptr<const model::MachineSpec>> &specs,
    const std::vector<trace::UtilizationTrace> &traces, bool keep_series)
    : config_(config.resolved()),
      topo_(topo),
      cluster_(std::make_unique<sim::Cluster>(topo, specs, traces,
                                              config_.budgets,
                                              config_.alpha_v,
                                              config_.alpha_m)),
      metrics_(keep_series),
      engine_(std::make_unique<sim::Engine>(*cluster_, metrics_))
{
    engine_->setThreads(config_.threads);
    buildControllers();
}

void
Coordinator::buildFaultInjector()
{
    if (!config_.faults.anyFaults())
        return;
    // Materialize the whole campaign up front: the injector is immutable
    // afterwards, which is what keeps fault queries thread-safe and the
    // run bit-identical across thread counts (docs/FAULTS.md).
    fault::FaultSchedule schedule;
    if (!config_.faults.script.empty())
        schedule = fault::FaultSchedule::parse(config_.faults.script);
    if (config_.faults.random.any()) {
        schedule.merge(fault::FaultSchedule::randomized(
            config_.faults.random, config_.faults.seed,
            cluster_->numServers(), cluster_->numEnclosures()));
    }
    injector_ = std::make_unique<fault::FaultInjector>(
        std::move(schedule), config_.faults.seed);
}

void
Coordinator::buildControllers()
{
    buildFaultInjector();

    // Innermost levels first, exactly the pre-split construction order:
    // the per-server loops, then the enclosure level above them, then
    // the GM tree, then the VMC consuming every level's feeds. Each
    // level is its own builder so a hosting runtime (core/dist.cpp) can
    // reason about — and a reader can find — one management level at a
    // time.
    buildServerLevel();
    buildEnclosureLevel();
    if (config_.enable_gm && config_.enable_sm)
        buildGroupManagers();
    buildVmController();

    if (config_.log_control_plane) {
        control_log_ = std::make_unique<bus::ControlPlaneLog>();
        attachControlLog();
    }

    if (config_.observability.any()) {
        obs_ = std::make_unique<obs::Observability>(config_.observability);
        attachObservability();
    }

    if (config_.observability.cascade) {
        cascade_ = std::make_unique<bus::CascadeTracer>();
        attachCascade();
    }
}

void
Coordinator::buildServerLevel()
{
    sim::Cluster &cl = *cluster_;
    const fault::FaultInjector *inj = injector_.get();

    // Innermost first: one EC per server.
    if (config_.enable_ec) {
        for (auto &srv : cl.servers()) {
            auto ec = std::make_shared<controllers::EfficiencyController>(
                srv, config_.ec);
            ec->setFaultInjector(inj);
            ecs_.push_back(ec);
            engine_->addActor(ec);
        }
    }

    // SMs nested on the ECs (or standalone direct cappers).
    if (config_.enable_sm) {
        for (auto &srv : cl.servers()) {
            controllers::EfficiencyController *ec =
                config_.enable_ec ? ecs_[srv.id()].get() : nullptr;
            auto sm = std::make_shared<controllers::ServerManager>(
                srv, ec, cl.capLoc(srv.id()), config_.sm);
            sm->setFaultInjector(inj);
            sms_.push_back(sm);
            engine_->addActor(sm);
        }
    }

    // Optional electrical cappers, parallel to the ECs.
    if (config_.enable_cap) {
        for (auto &srv : cl.servers()) {
            auto cap = std::make_shared<controllers::ElectricalCapper>(
                srv, config_.cap_limit_frac * srv.model().maxPower(),
                config_.cap);
            cap->setFaultInjector(inj);
            caps_.push_back(cap);
            engine_->addActor(cap);
        }
    }

    // Optional memory managers: the second per-server actuator.
    if (config_.enable_mem) {
        for (auto &srv : cl.servers()) {
            auto mm = std::make_shared<controllers::MemoryManager>(
                srv, config_.mem);
            mems_.push_back(mm);
            engine_->addActor(mm);
        }
    }
}

void
Coordinator::buildEnclosureLevel()
{
    sim::Cluster &cl = *cluster_;

    // EMs need the blade SMs to push budgets into.
    if (config_.enable_em && config_.enable_sm) {
        for (const auto &enc : cl.enclosures()) {
            std::vector<controllers::ServerManager *> blades;
            for (sim::ServerId sid : enc.members())
                blades.push_back(sms_[sid].get());
            auto em = std::make_shared<controllers::EnclosureManager>(
                cl, enc.id(), std::move(blades), cl.capEnc(enc.id()),
                config_.em);
            em->setFaultInjector(injector_.get());
            ems_.push_back(em);
            engine_->addActor(em);
        }
    }
}

void
Coordinator::buildVmController()
{
    if (!config_.enable_vmc)
        return;

    // The VMC consumes the violation feeds of every capping level.
    controllers::VmController::Feedback feedback;
    if (config_.vmc.use_violation_feedback) {
        for (auto &sm : sms_)
            feedback.local.push_back(sm.get());
        for (auto &em : ems_)
            feedback.enclosure.push_back(em.get());
        if (!gms_.empty()) {
            feedback.group = gms_.front().get();
            for (size_t g = 1; g < gms_.size(); ++g)
                feedback.subgroup.push_back(gms_[g].get());
        }
    }
    vmc_ = std::make_shared<controllers::VmController>(
        *cluster_, std::move(feedback), config_.vmc);
    vmc_->setFaultInjector(injector_.get());
    engine_->addActor(vmc_);
}

void
Coordinator::buildGroupManagers()
{
    sim::Cluster &cl = *cluster_;

    if (!topo_.hasTree()) {
        // The paper's flat Figure 2: one GM over every EM and every
        // standalone SM.
        std::vector<controllers::EnclosureManager *> em_ptrs;
        for (auto &em : ems_)
            em_ptrs.push_back(em.get());
        std::vector<controllers::ServerManager *> standalone;
        if (ems_.empty()) {
            // Without EMs every server is a direct child of the GM.
            for (auto &sm : sms_)
                standalone.push_back(sm.get());
        } else {
            for (sim::ServerId sid : cl.standaloneServers())
                standalone.push_back(sms_[sid].get());
        }
        std::vector<controllers::ServerManager *> all;
        for (auto &sm : sms_)
            all.push_back(sm.get());
        auto gm = std::make_shared<controllers::GroupManager>(
            cl, std::move(em_ptrs), std::move(standalone), std::move(all),
            cl.capGrp(), config_.gm);
        gm->setFaultInjector(injector_.get());
        gms_.push_back(gm);
        engine_->addActor(gm);
        return;
    }

    long next_id = 0;
    buildGroupNode(topo_.tree.front(), next_id);

    // Pre-order registration: GMs share one period, and the engine steps
    // same-period actors in insertion order, so a parent's grant always
    // lands before its children subdivide within the same tick.
    for (auto &gm : gms_)
        engine_->addActor(gm);
}

controllers::GroupManager *
Coordinator::buildGroupNode(const sim::TopologyNode &node, long &next_id)
{
    sim::Cluster &cl = *cluster_;
    const long id = next_id++;
    const bool is_root = id == 0;
    const size_t slot = gms_.size();
    gms_.push_back(nullptr); // reserve the pre-order slot

    controllers::GroupManager::Children ch;
    for (const sim::TopologyNode &child : node.children)
        ch.groups.push_back(buildGroupNode(child, next_id));
    std::vector<sim::ServerId> scope;
    for (auto *g : ch.groups) {
        for (auto *sm : g->allServers())
            scope.push_back(sm->server().id());
    }
    for (unsigned e : node.enclosures) {
        const auto &members = cl.enclosure(e).members();
        scope.insert(scope.end(), members.begin(), members.end());
        if (!ems_.empty()) {
            ch.enclosures.push_back(ems_[e].get());
        } else {
            // No EM level deployed: the blades report directly to this
            // GM, mirroring the flat builder's fallback.
            for (sim::ServerId sid : members)
                ch.standalone.push_back(sms_[sid].get());
        }
    }
    for (unsigned s : node.servers) {
        scope.push_back(s);
        ch.standalone.push_back(sms_[s].get());
    }
    std::sort(scope.begin(), scope.end());
    for (sim::ServerId sid : scope)
        ch.all_servers.push_back(sms_[sid].get());

    // The root enforces the paper's CAP_GRP; an inner node caps its own
    // scope with the same fractional savings off its maximum power.
    double cap;
    if (is_root) {
        cap = cl.capGrp();
    } else {
        double max_pow = 0.0;
        for (sim::ServerId sid : scope)
            max_pow += cl.serverMaxPower(sid);
        cap = (1.0 - config_.budgets.grp_off_frac) * max_pow;
    }

    auto gm = std::make_shared<controllers::GroupManager>(
        cl, id, is_root ? "GM" : "GM/" + node.name, std::move(ch), cap,
        config_.gm);
    gm->setFaultInjector(injector_.get());
    gms_[slot] = gm;
    return gm.get();
}

void
Coordinator::attachStreamHealth(const fault::StreamHealth *health)
{
    // Stream liveness is a per-server property, so only the links that
    // terminate at a server consult the oracle: the EMs' per-blade
    // grants and the GMs' standalone / direct-to-server channels.
    for (auto &em : ems_)
        em->setStreamHealth(health);
    for (auto &gm : gms_)
        gm->setStreamHealth(health);
}

void
Coordinator::attachControlLog()
{
    bus::ControlPlaneLog *log = control_log_.get();
    for (auto &sm : sms_)
        sm->attachControlLog(log);
    for (auto &em : ems_)
        em->attachControlLog(log);
    for (auto &gm : gms_)
        gm->attachControlLog(log);
    for (auto &cap : caps_)
        cap->attachControlLog(log);
    for (auto &mm : mems_)
        mm->attachControlLog(log);
    if (vmc_)
        vmc_->attachControlLog(log);
}

/**
 * Register the cascade-traced channels in the canonical wiring order
 * (the budget-granting levels, then the VMC's violation polls), so the
 * tracer's channel roster — and therefore the merged CSV — is the same
 * in every process and at every thread count. SMs send only untraced
 * r_ref references and register nothing.
 */
void
Coordinator::attachCascade()
{
    bus::CascadeTracer *tracer = cascade_.get();
    for (auto &em : ems_)
        em->attachCascade(tracer);
    for (auto &gm : gms_)
        gm->attachCascade(tracer);
    if (vmc_)
        vmc_->attachCascade(tracer);
}

void
Coordinator::attachTransport(bus::Transport *transport,
                             const bus::OwnerFn &owner)
{
    // Canonical wire-id assignment order (mirrors attachControlLog):
    // every process of a distributed run registers links in exactly
    // this sequence, which is what lets the dense ids agree across
    // ranks without any id-exchange protocol.
    for (auto &sm : sms_)
        sm->attachTransport(transport, owner);
    for (auto &em : ems_)
        em->attachTransport(transport, owner);
    for (auto &gm : gms_)
        gm->attachTransport(transport, owner);
    for (auto &cap : caps_)
        cap->attachTransport(transport, owner);
    for (auto &mm : mems_)
        mm->attachTransport(transport, owner);
    if (vmc_)
        vmc_->attachTransport(transport, owner);
}

/**
 * Hand every controller its metrics cells and trace channel, register
 * the run-summary series, and point the engine at the profiler. Runs
 * once at construction, single-threaded, before any tick — the
 * registration side of the determinism recipe (docs/OBSERVABILITY.md).
 */
void
Coordinator::attachObservability()
{
    obs::MetricsRegistry *reg = obs_->metrics();
    obs::TraceSink *trace = obs_->trace();

    for (auto &ec : ecs_)
        ec->attachObs(reg, trace);
    for (auto &sm : sms_)
        sm->attachObs(reg, trace);
    for (auto &em : ems_)
        em->attachObs(reg, trace);
    for (auto &gm : gms_)
        gm->attachObs(reg, trace);
    for (auto &cap : caps_)
        cap->attachObs(reg, trace);
    for (auto &mm : mems_)
        mm->attachObs(reg, trace);
    if (vmc_)
        vmc_->attachObs(reg, trace);

    if (reg) {
        obs_ticks_ = reg->gauge("nps_run_ticks", "",
                                "Simulated ticks so far");
        obs_energy_ = reg->gauge("nps_run_energy_watt_ticks", "",
                                 "Total energy consumed (watt-ticks)");
        obs_mean_power_ = reg->gauge("nps_run_mean_power_watts", "",
                                     "Mean group power");
        obs_peak_power_ = reg->gauge("nps_run_peak_power_watts", "",
                                     "Peak group power in any tick");
        const char *viol_help =
            "Fraction of scope-ticks spent over the level's budget";
        obs_viol_sm_ = reg->gauge("nps_run_violation_frac", "sm",
                                  viol_help);
        obs_viol_em_ = reg->gauge("nps_run_violation_frac", "em",
                                  viol_help);
        obs_viol_gm_ = reg->gauge("nps_run_violation_frac", "gm",
                                  viol_help);
        obs_perf_loss_ = reg->gauge("nps_run_perf_loss_frac", "",
                                    "1 - served / demanded useful work");
        if (trace) {
            obs_trace_dropped_ = reg->gauge(
                "nps_trace_dropped_total", "",
                "Decision-trace events evicted by the ring capacity");
        }
        using DS = fault::DegradeStats;
        const char *deg_help =
            "Graceful-degradation counters summed across controllers";
        const std::pair<const char *, unsigned long DS::*> fields[] = {
            {"outage_ticks", &DS::outage_ticks},
            {"outage_steps", &DS::outage_steps},
            {"restarts", &DS::restarts},
            {"lease_expiries", &DS::lease_expiries},
            {"lease_fallback_steps", &DS::lease_fallback_steps},
            {"ec_fallback_steps", &DS::ec_fallback_steps},
            {"dropped_budgets", &DS::dropped_budgets},
            {"stale_budgets", &DS::stale_budgets},
            {"stuck_actuations", &DS::stuck_actuations},
            {"noisy_reads", &DS::noisy_reads},
        };
        for (const auto &f : fields) {
            obs_degrade_.emplace_back(
                reg->gauge("nps_degrade_total", f.first, deg_help),
                f.second);
        }
    }

    if (obs_->profiler())
        engine_->setProfiler(obs_->profiler());
}

/** Refresh the run-summary gauges from the collector. */
void
Coordinator::updateRunGauges()
{
    if (!obs_ticks_)
        return;
    const sim::MetricsSummary s = summary();
    obs_ticks_->set(static_cast<double>(s.ticks));
    obs_energy_->set(s.energy);
    obs_mean_power_->set(s.mean_power);
    obs_peak_power_->set(s.peak_power);
    obs_viol_sm_->set(s.sm_violation);
    obs_viol_em_->set(s.em_violation);
    obs_viol_gm_->set(s.gm_violation);
    obs_perf_loss_->set(s.perf_loss);
    if (obs_trace_dropped_) {
        obs_trace_dropped_->set(
            static_cast<double>(obs_->trace()->totalDropped()));
    }
    for (const auto &g : obs_degrade_)
        g.first->set(static_cast<double>(s.degrade.*(g.second)));
}

size_t
Coordinator::run(size_t ticks)
{
    size_t done = engine_->run(ticks);
    updateRunGauges();
    return done;
}

fault::DegradeStats
Coordinator::degradeStats() const
{
    fault::DegradeStats total;
    for (const auto &ec : ecs_)
        total += ec->degradeStats();
    for (const auto &sm : sms_)
        total += sm->degradeStats();
    for (const auto &em : ems_)
        total += em->degradeStats();
    for (const auto &cap : caps_)
        total += cap->degradeStats();
    for (const auto &gm : gms_)
        total += gm->degradeStats();
    if (vmc_)
        total += vmc_->degradeStats();
    return total;
}

sim::MetricsSummary
Coordinator::summary() const
{
    sim::MetricsSummary s = metrics_.summary();
    s.degrade = degradeStats();
    return s;
}

} // namespace core
} // namespace nps
