#include "core/coordinator.h"

#include "util/logging.h"

namespace nps {
namespace core {

Coordinator::Coordinator(const CoordinationConfig &config,
                         const sim::Topology &topo,
                         const model::MachineSpec &spec,
                         const std::vector<trace::UtilizationTrace> &traces,
                         bool keep_series)
    : config_(config.resolved()),
      cluster_(std::make_unique<sim::Cluster>(topo, spec, traces,
                                              config_.budgets,
                                              config_.alpha_v,
                                              config_.alpha_m)),
      metrics_(keep_series),
      engine_(std::make_unique<sim::Engine>(*cluster_, metrics_))
{
    engine_->setThreads(config_.threads);
    buildControllers();
}

Coordinator::Coordinator(
    const CoordinationConfig &config, const sim::Topology &topo,
    const std::vector<std::shared_ptr<const model::MachineSpec>> &specs,
    const std::vector<trace::UtilizationTrace> &traces, bool keep_series)
    : config_(config.resolved()),
      cluster_(std::make_unique<sim::Cluster>(topo, specs, traces,
                                              config_.budgets,
                                              config_.alpha_v,
                                              config_.alpha_m)),
      metrics_(keep_series),
      engine_(std::make_unique<sim::Engine>(*cluster_, metrics_))
{
    engine_->setThreads(config_.threads);
    buildControllers();
}

void
Coordinator::buildFaultInjector()
{
    if (!config_.faults.anyFaults())
        return;
    // Materialize the whole campaign up front: the injector is immutable
    // afterwards, which is what keeps fault queries thread-safe and the
    // run bit-identical across thread counts (docs/FAULTS.md).
    fault::FaultSchedule schedule;
    if (!config_.faults.script.empty())
        schedule = fault::FaultSchedule::parse(config_.faults.script);
    if (config_.faults.random.any()) {
        schedule.merge(fault::FaultSchedule::randomized(
            config_.faults.random, config_.faults.seed,
            cluster_->numServers(), cluster_->numEnclosures()));
    }
    injector_ = std::make_unique<fault::FaultInjector>(
        std::move(schedule), config_.faults.seed);
}

void
Coordinator::buildControllers()
{
    sim::Cluster &cl = *cluster_;
    buildFaultInjector();
    const fault::FaultInjector *inj = injector_.get();

    // Innermost first: one EC per server.
    if (config_.enable_ec) {
        for (auto &srv : cl.servers()) {
            auto ec = std::make_shared<controllers::EfficiencyController>(
                srv, config_.ec);
            ec->setFaultInjector(inj);
            ecs_.push_back(ec);
            engine_->addActor(ec);
        }
    }

    // SMs nested on the ECs (or standalone direct cappers).
    if (config_.enable_sm) {
        for (auto &srv : cl.servers()) {
            controllers::EfficiencyController *ec =
                config_.enable_ec ? ecs_[srv.id()].get() : nullptr;
            auto sm = std::make_shared<controllers::ServerManager>(
                srv, ec, cl.capLoc(srv.id()), config_.sm);
            sm->setFaultInjector(inj);
            sms_.push_back(sm);
            engine_->addActor(sm);
        }
    }

    // Optional electrical cappers, parallel to the ECs.
    if (config_.enable_cap) {
        for (auto &srv : cl.servers()) {
            auto cap = std::make_shared<controllers::ElectricalCapper>(
                srv, config_.cap_limit_frac * srv.model().maxPower(),
                config_.cap);
            cap->setFaultInjector(inj);
            caps_.push_back(cap);
            engine_->addActor(cap);
        }
    }

    // Optional memory managers: the second per-server actuator.
    if (config_.enable_mem) {
        for (auto &srv : cl.servers()) {
            auto mm = std::make_shared<controllers::MemoryManager>(
                srv, config_.mem);
            mems_.push_back(mm);
            engine_->addActor(mm);
        }
    }

    // EMs need the blade SMs to push budgets into.
    if (config_.enable_em && config_.enable_sm) {
        for (const auto &enc : cl.enclosures()) {
            std::vector<controllers::ServerManager *> blades;
            for (sim::ServerId sid : enc.members())
                blades.push_back(sms_[sid].get());
            auto em = std::make_shared<controllers::EnclosureManager>(
                cl, enc.id(), std::move(blades), cl.capEnc(enc.id()),
                config_.em);
            em->setFaultInjector(inj);
            ems_.push_back(em);
            engine_->addActor(em);
        }
    }

    // The GM federates EMs and standalone SMs.
    if (config_.enable_gm && config_.enable_sm) {
        std::vector<controllers::EnclosureManager *> em_ptrs;
        for (auto &em : ems_)
            em_ptrs.push_back(em.get());
        std::vector<controllers::ServerManager *> standalone;
        if (ems_.empty()) {
            // Without EMs every server is a direct child of the GM.
            for (auto &sm : sms_)
                standalone.push_back(sm.get());
        } else {
            for (sim::ServerId sid : cl.standaloneServers())
                standalone.push_back(sms_[sid].get());
        }
        std::vector<controllers::ServerManager *> all;
        for (auto &sm : sms_)
            all.push_back(sm.get());
        gm_ = std::make_shared<controllers::GroupManager>(
            cl, std::move(em_ptrs), std::move(standalone), std::move(all),
            cl.capGrp(), config_.gm);
        gm_->setFaultInjector(inj);
        engine_->addActor(gm_);
    }

    // The VMC consumes the violation feeds of every capping level.
    if (config_.enable_vmc) {
        controllers::VmController::Feedback feedback;
        if (config_.vmc.use_violation_feedback) {
            for (auto &sm : sms_)
                feedback.local.push_back(sm.get());
            for (auto &em : ems_)
                feedback.enclosure.push_back(em.get());
            feedback.group = gm_.get();
        }
        vmc_ = std::make_shared<controllers::VmController>(
            cl, std::move(feedback), config_.vmc);
        vmc_->setFaultInjector(inj);
        engine_->addActor(vmc_);
    }
}

void
Coordinator::run(size_t ticks)
{
    engine_->run(ticks);
}

fault::DegradeStats
Coordinator::degradeStats() const
{
    fault::DegradeStats total;
    for (const auto &ec : ecs_)
        total += ec->degradeStats();
    for (const auto &sm : sms_)
        total += sm->degradeStats();
    for (const auto &em : ems_)
        total += em->degradeStats();
    for (const auto &cap : caps_)
        total += cap->degradeStats();
    if (gm_)
        total += gm_->degradeStats();
    if (vmc_)
        total += vmc_->degradeStats();
    return total;
}

sim::MetricsSummary
Coordinator::summary() const
{
    sim::MetricsSummary s = metrics_.summary();
    s.degrade = degradeStats();
    return s;
}

} // namespace core
} // namespace nps
