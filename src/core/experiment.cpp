#include "core/experiment.h"

#include "core/coordinator.h"
#include "core/scenarios.h"
#include "util/logging.h"

namespace nps {
namespace core {

ExperimentRunner::ExperimentRunner()
    : library_(trace::GeneratorConfig{})
{
}

ExperimentRunner::ExperimentRunner(const trace::GeneratorConfig &gen)
    : library_(gen)
{
}

model::MachineSpec
ExperimentRunner::machineFor(const ExperimentSpec &spec) const
{
    model::MachineSpec machine =
        spec.custom_machine ? *spec.custom_machine
                            : model::machineByName(spec.machine);
    if (spec.two_pstates)
        return machine.extremesOnly();
    return machine;
}

sim::Topology
ExperimentRunner::topologyFor(trace::Mix mix)
{
    return mix == trace::Mix::All180 ? sim::Topology::paper180()
                                     : sim::Topology::paper60();
}

sim::MetricsSummary
ExperimentRunner::baselineFor(const ExperimentSpec &spec)
{
    // Baseline energy is independent of the P-state table reduction
    // (everything runs at P0) and of the budget configuration (no
    // controller is on), so the cache key is machine/mix/horizon.
    std::string machine_key = spec.custom_machine
                                  ? spec.custom_machine->name()
                                  : spec.machine;
    std::string key = machine_key + "/" + trace::mixName(spec.mix) +
                      "/" + std::to_string(spec.ticks);
    auto it = baseline_cache_.find(key);
    if (it != baseline_cache_.end())
        return it->second;

    CoordinationConfig cfg = baselineConfig();
    cfg.budgets = spec.config.budgets;
    Coordinator base(cfg, topologyFor(spec.mix),
                     spec.custom_machine
                         ? *spec.custom_machine
                         : model::machineByName(spec.machine),
                     library_.mix(spec.mix));
    base.run(spec.ticks);
    sim::MetricsSummary summary = base.summary();
    baseline_cache_[key] = summary;
    return summary;
}

ExperimentResult
ExperimentRunner::run(const ExperimentSpec &spec)
{
    if (spec.ticks == 0)
        util::fatal("ExperimentRunner: zero-tick experiment '%s'",
                    spec.label.c_str());

    ExperimentResult result;
    result.label = spec.label;
    result.baseline = baselineFor(spec);

    Coordinator coord(spec.config, topologyFor(spec.mix), machineFor(spec),
                      library_.mix(spec.mix));
    coord.run(spec.ticks);
    result.scenario = coord.summary();
    result.power_savings = sim::powerSavings(result.baseline,
                                             result.scenario);
    if (coord.vmc())
        result.vmc = coord.vmc()->stats();
    return result;
}

} // namespace core
} // namespace nps
