/**
 * @file
 * The distributed-run runtimes (docs/DISTRIBUTED.md): three entry
 * points that all materialize the same experiment from one DistPlan.
 *
 *   - runPlanSingle: the single-process oracle. Builds the plan's
 *     experiment with the distributed config switch armed and runs it
 *     inline — no sockets, no children. Its recorder CSV is the
 *     byte-exact reference a distributed run is diffed against.
 *   - runSupervisor: rank 0 of `npsim --distributed`. Hosts every
 *     level no [node] claims, listens on the plan's socket, spawns one
 *     npsnode child per [node], drives the per-tick barrier, executes
 *     [chaos] kills (and snapshot-based restarts), and writes the same
 *     outputs runPlanSingle would.
 *   - runNode: one npsnode child. Builds the identical replica,
 *     connects to the supervisor, and steps in lockstep behind the
 *     barrier; with --restore it resumes from a supervisor snapshot
 *     after a kill.
 *
 * All three build the full Coordinator from the plan — distribution is
 * deterministic lockstep replication, not state partitioning — which is
 * why the supervisor's CSV matches the oracle byte for byte and why a
 * desync (divergent replicas) is detectable frame by frame
 * (stream/socket_transport.h).
 */

#ifndef NPS_CORE_DIST_H
#define NPS_CORE_DIST_H

#include <string>

#include "core/dist_plan.h"

namespace nps {
namespace core {
namespace dist {

/**
 * Observability outputs of one process of a plan run — the flags npsim
 * forwards (--metrics/--cascade/--http). Anything empty is skipped.
 * The [obs] *section* of the plan controls what every replica computes
 * (it must be identical fleet-wide); this struct only controls what
 * this one process writes or serves.
 */
struct ObsOutputs
{
    std::string metrics_path; //!< end-of-run Prometheus export
    std::string cascade_path; //!< cascade-trace CSV (bus/cascade.h)
    std::string http;         //!< live endpoint override for this rank
    unsigned http_linger_ms = 0; //!< linger override (0 = plan's value)
};

/**
 * Run the plan's experiment in this process, no sockets involved.
 * @param plan        The validated plan.
 * @param record_path Recorder CSV output ("" skips the write; the
 *                    recorder still runs so the engine roster matches
 *                    distributed snapshots).
 * @param threads     Engine-thread override (0 keeps the plan's value).
 * @param obs         Observability outputs of this process.
 * @return process exit code.
 */
int runPlanSingle(const DistPlan &plan, const std::string &record_path,
                  unsigned threads = 0, const ObsOutputs &obs = {});

/**
 * Run the plan as a process tree: this process becomes rank 0.
 * @param plan        The validated plan.
 * @param plan_path   Path of the plan file (re-parsed by each child).
 * @param record_path Recorder CSV output ("" skips the write).
 * @param threads     Engine-thread override for rank 0 (0 keeps the
 *                    plan's value; children always use the plan's).
 * @param obs         Observability outputs of rank 0. With [obs] in
 *                    the plan, /metrics and the metrics export carry
 *                    the merged fleet view (rank-labelled series).
 * @return process exit code.
 */
int runSupervisor(const DistPlan &plan, const std::string &plan_path,
                  const std::string &record_path, unsigned threads = 0,
                  const ObsOutputs &obs = {});

/**
 * Run one child replica (the npsnode main).
 * @param plan         The validated plan.
 * @param rank         This child's rank (1-based index into plan.nodes).
 * @param restore_path Supervisor snapshot to resume from ("" starts
 *                     fresh at tick 0).
 * @param obs          Observability outputs of this child (its live
 *                     endpoint defaults to the plan's [obs] http with
 *                     %r expanded to the rank).
 * @return process exit code.
 */
int runNode(const DistPlan &plan, int rank,
            const std::string &restore_path, const ObsOutputs &obs = {});

} // namespace dist
} // namespace core
} // namespace nps

#endif // NPS_CORE_DIST_H
