#include "core/config_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/logging.h"

namespace nps {
namespace core {

namespace {

using util::IniDocument;

std::string
boolStr(bool v)
{
    return v ? "true" : "false";
}

std::string
numStr(double v)
{
    // Prefer the short %g form, but only when it parses back to the
    // exact same double: checkpoint resume embeds the config as INI and
    // rebuilds from it, so every value must round-trip bit-exactly.
    char buf[40];
    std::snprintf(buf, sizeof buf, "%g", v);
    if (std::strtod(buf, nullptr) != v)
        std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

const std::map<std::string, controllers::DivisionPolicy> &
policyNames()
{
    static const std::map<std::string, controllers::DivisionPolicy> map{
        {"prop", controllers::DivisionPolicy::Proportional},
        {"equal", controllers::DivisionPolicy::Equal},
        {"prio", controllers::DivisionPolicy::Priority},
        {"fifo", controllers::DivisionPolicy::Fifo},
        {"random", controllers::DivisionPolicy::Random},
        {"history", controllers::DivisionPolicy::History},
    };
    return map;
}

controllers::DivisionPolicy
policyFromName(const std::string &name)
{
    auto it = policyNames().find(name);
    if (it == policyNames().end())
        util::fatal("config: unknown policy '%s'", name.c_str());
    return it->second;
}

controllers::ForecastMethod
forecastFromName(const std::string &name)
{
    for (auto m : {controllers::ForecastMethod::LastValue,
                   controllers::ForecastMethod::Ewma,
                   controllers::ForecastMethod::HoltLinear}) {
        if (name == controllers::forecastMethodName(m))
            return m;
    }
    util::fatal("config: unknown forecast method '%s'", name.c_str());
}

/** The complete key schema: section -> allowed keys. */
const std::map<std::string, std::set<std::string>> &
schema()
{
    static const std::map<std::string, std::set<std::string>> s{
        {"deployment",
         {"coordinated", "enable_ec", "enable_sm", "enable_em",
          "enable_gm", "enable_vmc", "enable_cap", "enable_mem",
          "alpha_v", "alpha_m", "cap_limit_frac", "threads",
          "log_control_plane"}},
        {"ec", {"lambda", "r_ref", "period", "objective",
                "quantize_up"}},
        {"sm", {"beta", "r_ref_min", "r_ref_max", "period",
                "unthrottle_margin", "release_gain_ratio",
                "lease_ticks", "lease_fallback"}},
        {"em", {"period", "policy", "demand_horizon",
                "history_horizon", "seed", "lease_ticks",
                "lease_fallback"}},
        {"gm", {"period", "policy", "demand_horizon",
                "history_horizon", "seed", "lease_ticks",
                "lease_fallback"}},
        {"vmc",
         {"period", "allow_power_off", "capacity_target",
          "migration_ticks", "buffer_gain", "gain_ref_period",
          "buffer_decay", "buffer_max", "buffer_init",
          "adoption_margin", "spread_sigma", "use_real_util",
          "use_budget_constraints", "use_violation_feedback",
          "use_forecast", "forecast_method", "forecast_alpha",
          "forecast_beta"}},
        {"cap", {"period", "release_margin"}},
        {"mem", {"period", "engage_below", "release_above",
                 "engage_patience"}},
        {"budgets", {"group_off", "enclosure_off", "local_off"}},
        {"obs", {"metrics", "trace", "trace_filter", "trace_capacity",
                 "profile", "cascade", "http", "http_linger_ms",
                 "publish_every"}},
        {"faults",
         {"enabled", "seed", "script", "horizon", "outages",
          "outage_len", "drops", "drop_len", "drop_prob", "stales",
          "stale_len", "stucks", "stuck_len", "noises", "noise_len",
          "noise_sigma", "freezes", "freeze_len"}},
        {"stream",
         {"enabled", "timeout_ms", "max_pending", "hold_last",
          "hold_ticks", "fallback_util"}},
    };
    return s;
}

void
validateSchema(const IniDocument &ini)
{
    for (const auto &section : ini.sections()) {
        auto it = schema().find(section);
        if (it == schema().end())
            util::fatal("config: unknown section [%s]", section.c_str());
        for (const auto &key : ini.keys(section)) {
            if (!it->second.count(key))
                util::fatal("config: unknown key '%s' in [%s]",
                            key.c_str(), section.c_str());
        }
    }
}

} // namespace

CoordinationConfig
configFromIni(const IniDocument &ini)
{
    validateSchema(ini);
    CoordinationConfig cfg;

    cfg.coordinated = ini.getBool("deployment", "coordinated",
                                  cfg.coordinated);
    cfg.enable_ec = ini.getBool("deployment", "enable_ec",
                                cfg.enable_ec);
    cfg.enable_sm = ini.getBool("deployment", "enable_sm",
                                cfg.enable_sm);
    cfg.enable_em = ini.getBool("deployment", "enable_em",
                                cfg.enable_em);
    cfg.enable_gm = ini.getBool("deployment", "enable_gm",
                                cfg.enable_gm);
    cfg.enable_vmc = ini.getBool("deployment", "enable_vmc",
                                 cfg.enable_vmc);
    cfg.enable_cap = ini.getBool("deployment", "enable_cap",
                                 cfg.enable_cap);
    cfg.enable_mem = ini.getBool("deployment", "enable_mem",
                                 cfg.enable_mem);
    cfg.alpha_v = ini.getDouble("deployment", "alpha_v", cfg.alpha_v);
    cfg.alpha_m = ini.getDouble("deployment", "alpha_m", cfg.alpha_m);
    cfg.cap_limit_frac = ini.getDouble("deployment", "cap_limit_frac",
                                       cfg.cap_limit_frac);
    cfg.threads = static_cast<unsigned>(
        ini.getInt("deployment", "threads",
                   static_cast<long>(cfg.threads)));
    cfg.log_control_plane = ini.getBool("deployment",
                                        "log_control_plane",
                                        cfg.log_control_plane);

    cfg.ec.lambda = ini.getDouble("ec", "lambda", cfg.ec.lambda);
    cfg.ec.r_ref = ini.getDouble("ec", "r_ref", cfg.ec.r_ref);
    cfg.ec.period = static_cast<unsigned>(
        ini.getInt("ec", "period", cfg.ec.period));
    cfg.ec.quantize_up = ini.getBool("ec", "quantize_up",
                                     cfg.ec.quantize_up);
    std::string objective = ini.get("ec", "objective", "tracking");
    if (objective == "tracking")
        cfg.ec.objective = controllers::EcObjective::UtilizationTracking;
    else if (objective == "energy-delay")
        cfg.ec.objective = controllers::EcObjective::EnergyDelay;
    else
        util::fatal("config: unknown EC objective '%s'",
                    objective.c_str());

    cfg.sm.beta = ini.getDouble("sm", "beta", cfg.sm.beta);
    cfg.sm.r_ref_min = ini.getDouble("sm", "r_ref_min",
                                     cfg.sm.r_ref_min);
    cfg.sm.r_ref_max = ini.getDouble("sm", "r_ref_max",
                                     cfg.sm.r_ref_max);
    cfg.sm.period = static_cast<unsigned>(
        ini.getInt("sm", "period", cfg.sm.period));
    cfg.sm.unthrottle_margin = ini.getDouble(
        "sm", "unthrottle_margin", cfg.sm.unthrottle_margin);
    cfg.sm.release_gain_ratio = ini.getDouble(
        "sm", "release_gain_ratio", cfg.sm.release_gain_ratio);
    cfg.sm.lease_ticks = static_cast<unsigned>(
        ini.getInt("sm", "lease_ticks", cfg.sm.lease_ticks));
    cfg.sm.lease_fallback = ini.getDouble("sm", "lease_fallback",
                                          cfg.sm.lease_fallback);

    cfg.em.period = static_cast<unsigned>(
        ini.getInt("em", "period", cfg.em.period));
    if (ini.has("em", "policy"))
        cfg.em.policy = policyFromName(ini.get("em", "policy"));
    cfg.em.demand_horizon = ini.getDouble("em", "demand_horizon",
                                          cfg.em.demand_horizon);
    cfg.em.history_horizon = ini.getDouble("em", "history_horizon",
                                           cfg.em.history_horizon);
    cfg.em.seed = static_cast<uint64_t>(
        ini.getInt("em", "seed", static_cast<long>(cfg.em.seed)));
    cfg.em.lease_ticks = static_cast<unsigned>(
        ini.getInt("em", "lease_ticks", cfg.em.lease_ticks));
    cfg.em.lease_fallback = ini.getDouble("em", "lease_fallback",
                                          cfg.em.lease_fallback);

    cfg.gm.period = static_cast<unsigned>(
        ini.getInt("gm", "period", cfg.gm.period));
    if (ini.has("gm", "policy"))
        cfg.gm.policy = policyFromName(ini.get("gm", "policy"));
    cfg.gm.demand_horizon = ini.getDouble("gm", "demand_horizon",
                                          cfg.gm.demand_horizon);
    cfg.gm.history_horizon = ini.getDouble("gm", "history_horizon",
                                           cfg.gm.history_horizon);
    cfg.gm.seed = static_cast<uint64_t>(
        ini.getInt("gm", "seed", static_cast<long>(cfg.gm.seed)));
    cfg.gm.lease_ticks = static_cast<unsigned>(
        ini.getInt("gm", "lease_ticks", cfg.gm.lease_ticks));
    cfg.gm.lease_fallback = ini.getDouble("gm", "lease_fallback",
                                          cfg.gm.lease_fallback);

    auto &vmc = cfg.vmc;
    vmc.period = static_cast<unsigned>(
        ini.getInt("vmc", "period", vmc.period));
    vmc.allow_power_off = ini.getBool("vmc", "allow_power_off",
                                      vmc.allow_power_off);
    vmc.capacity_target = ini.getDouble("vmc", "capacity_target",
                                        vmc.capacity_target);
    vmc.migration_ticks = static_cast<size_t>(ini.getInt(
        "vmc", "migration_ticks",
        static_cast<long>(vmc.migration_ticks)));
    vmc.buffer_gain = ini.getDouble("vmc", "buffer_gain",
                                    vmc.buffer_gain);
    vmc.gain_ref_period = static_cast<unsigned>(ini.getInt(
        "vmc", "gain_ref_period", vmc.gain_ref_period));
    vmc.buffer_decay = ini.getDouble("vmc", "buffer_decay",
                                     vmc.buffer_decay);
    vmc.buffer_max = ini.getDouble("vmc", "buffer_max", vmc.buffer_max);
    vmc.buffer_init = ini.getDouble("vmc", "buffer_init",
                                    vmc.buffer_init);
    vmc.adoption_margin = ini.getDouble("vmc", "adoption_margin",
                                        vmc.adoption_margin);
    vmc.spread_sigma = ini.getDouble("vmc", "spread_sigma",
                                     vmc.spread_sigma);
    vmc.use_real_util = ini.getBool("vmc", "use_real_util",
                                    vmc.use_real_util);
    vmc.use_budget_constraints = ini.getBool(
        "vmc", "use_budget_constraints", vmc.use_budget_constraints);
    vmc.use_violation_feedback = ini.getBool(
        "vmc", "use_violation_feedback", vmc.use_violation_feedback);
    vmc.use_forecast = ini.getBool("vmc", "use_forecast",
                                   vmc.use_forecast);
    if (ini.has("vmc", "forecast_method")) {
        vmc.forecast.method = forecastFromName(
            ini.get("vmc", "forecast_method"));
    }
    vmc.forecast.alpha = ini.getDouble("vmc", "forecast_alpha",
                                       vmc.forecast.alpha);
    vmc.forecast.beta = ini.getDouble("vmc", "forecast_beta",
                                      vmc.forecast.beta);

    cfg.cap.period = static_cast<unsigned>(
        ini.getInt("cap", "period", cfg.cap.period));
    cfg.cap.release_margin = ini.getDouble("cap", "release_margin",
                                           cfg.cap.release_margin);

    cfg.mem.period = static_cast<unsigned>(
        ini.getInt("mem", "period", cfg.mem.period));
    cfg.mem.engage_below = ini.getDouble("mem", "engage_below",
                                         cfg.mem.engage_below);
    cfg.mem.release_above = ini.getDouble("mem", "release_above",
                                          cfg.mem.release_above);
    cfg.mem.engage_patience = static_cast<unsigned>(ini.getInt(
        "mem", "engage_patience", cfg.mem.engage_patience));

    cfg.budgets.grp_off_frac = ini.getDouble(
        "budgets", "group_off", cfg.budgets.grp_off_frac);
    cfg.budgets.enc_off_frac = ini.getDouble(
        "budgets", "enclosure_off", cfg.budgets.enc_off_frac);
    cfg.budgets.loc_off_frac = ini.getDouble(
        "budgets", "local_off", cfg.budgets.loc_off_frac);

    auto &ob = cfg.observability;
    ob.metrics = ini.getBool("obs", "metrics", ob.metrics);
    ob.trace = ini.getBool("obs", "trace", ob.trace);
    ob.trace_filter = ini.get("obs", "trace_filter", ob.trace_filter);
    ob.trace_capacity = static_cast<unsigned>(ini.getInt(
        "obs", "trace_capacity", static_cast<long>(ob.trace_capacity)));
    ob.profile = ini.getBool("obs", "profile", ob.profile);
    ob.cascade = ini.getBool("obs", "cascade", ob.cascade);
    ob.http = ini.get("obs", "http", ob.http);
    ob.http_linger_ms = static_cast<unsigned>(ini.getInt(
        "obs", "http_linger_ms", static_cast<long>(ob.http_linger_ms)));
    ob.publish_every = static_cast<unsigned>(ini.getInt(
        "obs", "publish_every", static_cast<long>(ob.publish_every)));
    if (ob.publish_every == 0)
        util::fatal("config: [obs] publish_every must be at least 1");
    if (!ob.http.empty() && !ob.metrics)
        util::fatal("config: [obs] http needs metrics = true — there "
                    "is no registry to serve without it");

    auto &fl = cfg.faults;
    fl.enabled = ini.getBool("faults", "enabled", fl.enabled);
    fl.seed = static_cast<uint64_t>(
        ini.getInt("faults", "seed", static_cast<long>(fl.seed)));
    fl.script = ini.get("faults", "script", fl.script);
    if (!fl.script.empty()) {
        // Validate eagerly so a typo dies at load, not mid-run.
        fault::FaultSchedule::parse(fl.script);
    }
    auto &rnd = fl.random;
    rnd.horizon = static_cast<size_t>(ini.getInt(
        "faults", "horizon", static_cast<long>(rnd.horizon)));
    rnd.outages = static_cast<unsigned>(
        ini.getInt("faults", "outages", rnd.outages));
    rnd.outage_len = static_cast<unsigned>(
        ini.getInt("faults", "outage_len", rnd.outage_len));
    rnd.drops = static_cast<unsigned>(
        ini.getInt("faults", "drops", rnd.drops));
    rnd.drop_len = static_cast<unsigned>(
        ini.getInt("faults", "drop_len", rnd.drop_len));
    rnd.drop_prob = ini.getDouble("faults", "drop_prob", rnd.drop_prob);
    rnd.stales = static_cast<unsigned>(
        ini.getInt("faults", "stales", rnd.stales));
    rnd.stale_len = static_cast<unsigned>(
        ini.getInt("faults", "stale_len", rnd.stale_len));
    rnd.stucks = static_cast<unsigned>(
        ini.getInt("faults", "stucks", rnd.stucks));
    rnd.stuck_len = static_cast<unsigned>(
        ini.getInt("faults", "stuck_len", rnd.stuck_len));
    rnd.noises = static_cast<unsigned>(
        ini.getInt("faults", "noises", rnd.noises));
    rnd.noise_len = static_cast<unsigned>(
        ini.getInt("faults", "noise_len", rnd.noise_len));
    rnd.noise_sigma = ini.getDouble("faults", "noise_sigma",
                                    rnd.noise_sigma);
    rnd.freezes = static_cast<unsigned>(
        ini.getInt("faults", "freezes", rnd.freezes));
    rnd.freeze_len = static_cast<unsigned>(
        ini.getInt("faults", "freeze_len", rnd.freeze_len));

    auto &st = cfg.stream;
    st.enabled = ini.getBool("stream", "enabled", st.enabled);
    st.timeout_ms = static_cast<unsigned>(ini.getInt(
        "stream", "timeout_ms", static_cast<long>(st.timeout_ms)));
    st.max_pending = static_cast<unsigned>(ini.getInt(
        "stream", "max_pending", static_cast<long>(st.max_pending)));
    st.hold_last = ini.getBool("stream", "hold_last", st.hold_last);
    st.hold_ticks = static_cast<unsigned>(ini.getInt(
        "stream", "hold_ticks", static_cast<long>(st.hold_ticks)));
    st.fallback_util = ini.getDouble("stream", "fallback_util",
                                     st.fallback_util);
    if (st.max_pending == 0)
        util::fatal("config: [stream] max_pending must be at least 1");

    return cfg;
}

CoordinationConfig
loadConfigFile(const std::string &path)
{
    return configFromIni(util::readIniFile(path));
}

sim::Topology
topologyFromIni(const IniDocument &ini)
{
    static const std::set<std::string> keys{
        "servers", "enclosures", "enclosure_size", "tree"};
    for (const auto &section : ini.sections()) {
        if (section != "topology")
            util::fatal("topology: unknown section [%s]",
                        section.c_str());
        for (const auto &key : ini.keys(section)) {
            if (!keys.count(key))
                util::fatal("topology: unknown key '%s' in [topology]",
                            key.c_str());
        }
    }

    sim::Topology topo;
    topo.num_servers = static_cast<unsigned>(
        ini.getInt("topology", "servers", topo.num_servers));
    topo.num_enclosures = static_cast<unsigned>(
        ini.getInt("topology", "enclosures", topo.num_enclosures));
    topo.enclosure_size = static_cast<unsigned>(
        ini.getInt("topology", "enclosure_size", topo.enclosure_size));
    topo.tree = sim::Topology::parseTree(
        ini.get("topology", "tree", ""));
    topo.validate();
    return topo;
}

sim::Topology
loadTopologyFile(const std::string &path)
{
    return topologyFromIni(util::readIniFile(path));
}

util::IniDocument
topologyToIni(const sim::Topology &topo)
{
    IniDocument ini;
    ini.set("topology", "servers", std::to_string(topo.num_servers));
    ini.set("topology", "enclosures",
            std::to_string(topo.num_enclosures));
    ini.set("topology", "enclosure_size",
            std::to_string(topo.enclosure_size));
    if (topo.hasTree())
        ini.set("topology", "tree", topo.treeText());
    return ini;
}

util::IniDocument
configToIni(const CoordinationConfig &cfg)
{
    IniDocument ini;
    ini.set("deployment", "coordinated", boolStr(cfg.coordinated));
    ini.set("deployment", "enable_ec", boolStr(cfg.enable_ec));
    ini.set("deployment", "enable_sm", boolStr(cfg.enable_sm));
    ini.set("deployment", "enable_em", boolStr(cfg.enable_em));
    ini.set("deployment", "enable_gm", boolStr(cfg.enable_gm));
    ini.set("deployment", "enable_vmc", boolStr(cfg.enable_vmc));
    ini.set("deployment", "enable_cap", boolStr(cfg.enable_cap));
    ini.set("deployment", "enable_mem", boolStr(cfg.enable_mem));
    ini.set("deployment", "alpha_v", numStr(cfg.alpha_v));
    ini.set("deployment", "alpha_m", numStr(cfg.alpha_m));
    ini.set("deployment", "cap_limit_frac", numStr(cfg.cap_limit_frac));
    ini.set("deployment", "threads", std::to_string(cfg.threads));
    ini.set("deployment", "log_control_plane",
            boolStr(cfg.log_control_plane));

    ini.set("ec", "lambda", numStr(cfg.ec.lambda));
    ini.set("ec", "r_ref", numStr(cfg.ec.r_ref));
    ini.set("ec", "period", std::to_string(cfg.ec.period));
    ini.set("ec", "objective",
            cfg.ec.objective ==
                    controllers::EcObjective::UtilizationTracking
                ? "tracking"
                : "energy-delay");
    ini.set("ec", "quantize_up", boolStr(cfg.ec.quantize_up));

    ini.set("sm", "beta", numStr(cfg.sm.beta));
    ini.set("sm", "r_ref_min", numStr(cfg.sm.r_ref_min));
    ini.set("sm", "r_ref_max", numStr(cfg.sm.r_ref_max));
    ini.set("sm", "period", std::to_string(cfg.sm.period));
    ini.set("sm", "unthrottle_margin",
            numStr(cfg.sm.unthrottle_margin));
    ini.set("sm", "release_gain_ratio",
            numStr(cfg.sm.release_gain_ratio));
    ini.set("sm", "lease_ticks", std::to_string(cfg.sm.lease_ticks));
    ini.set("sm", "lease_fallback", numStr(cfg.sm.lease_fallback));

    ini.set("em", "period", std::to_string(cfg.em.period));
    ini.set("em", "policy", controllers::policyName(cfg.em.policy));
    ini.set("em", "demand_horizon", numStr(cfg.em.demand_horizon));
    ini.set("em", "history_horizon", numStr(cfg.em.history_horizon));
    ini.set("em", "seed", std::to_string(cfg.em.seed));
    ini.set("em", "lease_ticks", std::to_string(cfg.em.lease_ticks));
    ini.set("em", "lease_fallback", numStr(cfg.em.lease_fallback));

    ini.set("gm", "period", std::to_string(cfg.gm.period));
    ini.set("gm", "policy", controllers::policyName(cfg.gm.policy));
    ini.set("gm", "demand_horizon", numStr(cfg.gm.demand_horizon));
    ini.set("gm", "history_horizon", numStr(cfg.gm.history_horizon));
    ini.set("gm", "seed", std::to_string(cfg.gm.seed));
    ini.set("gm", "lease_ticks", std::to_string(cfg.gm.lease_ticks));
    ini.set("gm", "lease_fallback", numStr(cfg.gm.lease_fallback));

    const auto &vmc = cfg.vmc;
    ini.set("vmc", "period", std::to_string(vmc.period));
    ini.set("vmc", "allow_power_off", boolStr(vmc.allow_power_off));
    ini.set("vmc", "capacity_target", numStr(vmc.capacity_target));
    ini.set("vmc", "migration_ticks",
            std::to_string(vmc.migration_ticks));
    ini.set("vmc", "buffer_gain", numStr(vmc.buffer_gain));
    ini.set("vmc", "gain_ref_period",
            std::to_string(vmc.gain_ref_period));
    ini.set("vmc", "buffer_decay", numStr(vmc.buffer_decay));
    ini.set("vmc", "buffer_max", numStr(vmc.buffer_max));
    ini.set("vmc", "buffer_init", numStr(vmc.buffer_init));
    ini.set("vmc", "adoption_margin", numStr(vmc.adoption_margin));
    ini.set("vmc", "spread_sigma", numStr(vmc.spread_sigma));
    ini.set("vmc", "use_real_util", boolStr(vmc.use_real_util));
    ini.set("vmc", "use_budget_constraints",
            boolStr(vmc.use_budget_constraints));
    ini.set("vmc", "use_violation_feedback",
            boolStr(vmc.use_violation_feedback));
    ini.set("vmc", "use_forecast", boolStr(vmc.use_forecast));
    ini.set("vmc", "forecast_method",
            controllers::forecastMethodName(vmc.forecast.method));
    ini.set("vmc", "forecast_alpha", numStr(vmc.forecast.alpha));
    ini.set("vmc", "forecast_beta", numStr(vmc.forecast.beta));

    ini.set("cap", "period", std::to_string(cfg.cap.period));
    ini.set("cap", "release_margin", numStr(cfg.cap.release_margin));

    ini.set("mem", "period", std::to_string(cfg.mem.period));
    ini.set("mem", "engage_below", numStr(cfg.mem.engage_below));
    ini.set("mem", "release_above", numStr(cfg.mem.release_above));
    ini.set("mem", "engage_patience",
            std::to_string(cfg.mem.engage_patience));

    ini.set("budgets", "group_off", numStr(cfg.budgets.grp_off_frac));
    ini.set("budgets", "enclosure_off",
            numStr(cfg.budgets.enc_off_frac));
    ini.set("budgets", "local_off", numStr(cfg.budgets.loc_off_frac));

    const auto &ob = cfg.observability;
    ini.set("obs", "metrics", boolStr(ob.metrics));
    ini.set("obs", "trace", boolStr(ob.trace));
    if (!ob.trace_filter.empty())
        ini.set("obs", "trace_filter", ob.trace_filter);
    ini.set("obs", "trace_capacity", std::to_string(ob.trace_capacity));
    ini.set("obs", "profile", boolStr(ob.profile));
    ini.set("obs", "cascade", boolStr(ob.cascade));
    if (!ob.http.empty())
        ini.set("obs", "http", ob.http);
    ini.set("obs", "http_linger_ms", std::to_string(ob.http_linger_ms));
    ini.set("obs", "publish_every", std::to_string(ob.publish_every));

    const auto &fl = cfg.faults;
    ini.set("faults", "enabled", boolStr(fl.enabled));
    ini.set("faults", "seed", std::to_string(fl.seed));
    if (!fl.script.empty()) {
        // Re-render through the parser so the stored form is one line of
        // '; '-separated clauses (INI values cannot span lines).
        ini.set("faults", "script",
                fault::FaultSchedule::parse(fl.script).toText("; "));
    }
    const auto &rnd = fl.random;
    ini.set("faults", "horizon", std::to_string(rnd.horizon));
    ini.set("faults", "outages", std::to_string(rnd.outages));
    ini.set("faults", "outage_len", std::to_string(rnd.outage_len));
    ini.set("faults", "drops", std::to_string(rnd.drops));
    ini.set("faults", "drop_len", std::to_string(rnd.drop_len));
    ini.set("faults", "drop_prob", numStr(rnd.drop_prob));
    ini.set("faults", "stales", std::to_string(rnd.stales));
    ini.set("faults", "stale_len", std::to_string(rnd.stale_len));
    ini.set("faults", "stucks", std::to_string(rnd.stucks));
    ini.set("faults", "stuck_len", std::to_string(rnd.stuck_len));
    ini.set("faults", "noises", std::to_string(rnd.noises));
    ini.set("faults", "noise_len", std::to_string(rnd.noise_len));
    ini.set("faults", "noise_sigma", numStr(rnd.noise_sigma));
    ini.set("faults", "freezes", std::to_string(rnd.freezes));
    ini.set("faults", "freeze_len", std::to_string(rnd.freeze_len));

    const auto &st = cfg.stream;
    ini.set("stream", "enabled", boolStr(st.enabled));
    ini.set("stream", "timeout_ms", std::to_string(st.timeout_ms));
    ini.set("stream", "max_pending", std::to_string(st.max_pending));
    ini.set("stream", "hold_last", boolStr(st.hold_last));
    ini.set("stream", "hold_ticks", std::to_string(st.hold_ticks));
    ini.set("stream", "fallback_util", numStr(st.fallback_util));
    return ini;
}

} // namespace core
} // namespace nps
