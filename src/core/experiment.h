/**
 * @file
 * ExperimentRunner: the evaluation harness behind every figure and table.
 *
 * An experiment names a scenario configuration, a machine model, a
 * workload mix, and a horizon; the runner simulates it next to the
 * all-controllers-off baseline over identical traces and reports the
 * paper's metrics (power savings, performance loss, violations per
 * level). Baselines are cached, since the paper normalizes hundreds of
 * configurations against the same handful of baselines.
 */

#ifndef NPS_CORE_EXPERIMENT_H
#define NPS_CORE_EXPERIMENT_H

#include <map>
#include <optional>
#include <string>

#include "core/config.h"
#include "sim/metrics.h"
#include "trace/workload.h"

namespace nps {
namespace core {

/** One experiment to run. */
struct ExperimentSpec
{
    std::string label;                     //!< free-form row label
    CoordinationConfig config;             //!< deployment under test
    std::string machine = "BladeA";        //!< "BladeA" or "ServerB"
    bool two_pstates = false;              //!< Section 5.3 reduction
    /**
     * Optional explicit machine spec (e.g. an idle-scaled or calibrated
     * variant); overrides `machine` when set. Baselines are cached under
     * the spec's name.
     */
    std::optional<model::MachineSpec> custom_machine;
    trace::Mix mix = trace::Mix::All180;   //!< workload mix
    size_t ticks = 2880;                   //!< simulation horizon
};

/** The evaluated outcome of one experiment. */
struct ExperimentResult
{
    std::string label;
    sim::MetricsSummary baseline;  //!< no-power-management run
    sim::MetricsSummary scenario;  //!< the deployment under test
    double power_savings = 0.0;    //!< 1 - energy / baseline energy
    controllers::VmController::Stats vmc;  //!< zeros when VMC disabled
};

/**
 * Runs experiments against a shared workload library.
 */
class ExperimentRunner
{
  public:
    /** Build the shared 180-trace campaign with default generation. */
    ExperimentRunner();

    /** Build with explicit trace-generation configuration. */
    explicit ExperimentRunner(const trace::GeneratorConfig &gen);

    /** The shared workload library. */
    const trace::WorkloadLibrary &library() const { return library_; }

    /** Run one experiment (baseline cached per machine/mix/horizon). */
    ExperimentResult run(const ExperimentSpec &spec);

    /** Resolve the machine spec an experiment uses. */
    model::MachineSpec machineFor(const ExperimentSpec &spec) const;

    /** Topology used for a mix (paper180 for the 180 mix, else paper60). */
    static sim::Topology topologyFor(trace::Mix mix);

  private:
    sim::MetricsSummary baselineFor(const ExperimentSpec &spec);

    trace::WorkloadLibrary library_;
    std::map<std::string, sim::MetricsSummary> baseline_cache_;
};

} // namespace core
} // namespace nps

#endif // NPS_CORE_EXPERIMENT_H
