#include "trace/workload.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace nps {
namespace trace {

const char *
mixName(Mix mix)
{
    switch (mix) {
      case Mix::All180: return "180";
      case Mix::Low60:  return "60L";
      case Mix::Mid60:  return "60M";
      case Mix::High60: return "60H";
      case Mix::HH60:   return "60HH";
      case Mix::HHH60:  return "60HHH";
    }
    return "?";
}

std::vector<Mix>
allMixes()
{
    return {Mix::All180, Mix::Low60, Mix::Mid60, Mix::High60, Mix::HH60,
            Mix::HHH60};
}

size_t
mixSize(Mix mix)
{
    return mix == Mix::All180 ? 180 : 60;
}

WorkloadLibrary::WorkloadLibrary(const GeneratorConfig &config)
    : traces_(TraceGenerator(config).generateAll())
{
}

WorkloadLibrary::WorkloadLibrary(std::vector<UtilizationTrace> traces)
    : traces_(std::move(traces))
{
    if (traces_.empty())
        util::fatal("WorkloadLibrary: empty trace set");
}

std::vector<size_t>
WorkloadLibrary::byMeanUtil() const
{
    std::vector<size_t> order(traces_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return traces_[a].mean() < traces_[b].mean();
                     });
    return order;
}

std::vector<UtilizationTrace>
WorkloadLibrary::mix(Mix mix) const
{
    const size_t n = traces_.size();
    if (mix == Mix::All180)
        return traces_;

    if (n < 180) {
        util::fatal("WorkloadLibrary: need a full 180-trace campaign for "
                    "the 60-trace mixes (have %zu)", n);
    }

    auto order = byMeanUtil();
    auto pick = [&](size_t offset, size_t count) {
        std::vector<UtilizationTrace> out;
        out.reserve(count);
        for (size_t i = 0; i < count; ++i)
            out.push_back(traces_[order[offset + i]]);
        return out;
    };

    switch (mix) {
      case Mix::Low60:
        return pick(0, 60);
      case Mix::Mid60:
        return pick((n - 60) / 2, 60);
      case Mix::High60:
        return pick(n - 60, 60);
      case Mix::HH60: {
        // Stack pairs of traces drawn from across the utilization range so
        // each synthetic workload combines dissimilar behaviors, as the
        // paper's stacking of real traces does.
        std::vector<UtilizationTrace> out;
        out.reserve(60);
        for (size_t i = 0; i < 60; ++i) {
            const auto &a = traces_[order[n - 1 - i]];
            const auto &b = traces_[order[n / 2 - 1 - i]];
            out.push_back(UtilizationTrace::stack(
                {a, b}, "hh" + std::to_string(i)));
        }
        return out;
      }
      case Mix::HHH60: {
        std::vector<UtilizationTrace> out;
        out.reserve(60);
        for (size_t i = 0; i < 60; ++i) {
            const auto &a = traces_[order[n - 1 - i]];
            const auto &b = traces_[order[n / 2 - 1 - i]];
            const auto &c = traces_[order[i]];
            out.push_back(UtilizationTrace::stack(
                {a, b, c}, "hhh" + std::to_string(i)));
        }
        return out;
      }
      case Mix::All180:
        break;
    }
    util::panic("WorkloadLibrary::mix: unreachable");
}

double
WorkloadLibrary::mixMeanUtil(Mix m) const
{
    auto traces = mix(m);
    double sum = 0.0;
    for (const auto &t : traces)
        sum += t.mean();
    return traces.empty() ? 0.0 : sum / static_cast<double>(traces.size());
}

} // namespace trace
} // namespace nps
