#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace nps {
namespace trace {

ClassProfile
defaultProfile(WorkloadClass wc)
{
    ClassProfile p;
    p.wc = wc;
    switch (wc) {
      case WorkloadClass::WebServer:
        // Diurnal, moderate baseline, small bursts.
        p.base_util = 0.24;
        p.diurnal_amp = 0.12;
        p.noise_sigma = 0.025;
        p.ar_coeff = 0.90;
        p.burst_prob = 0.004;
        p.burst_gain = 0.30;
        break;
      case WorkloadClass::Database:
        // Bursty with a higher baseline; weak diurnal pattern.
        p.base_util = 0.32;
        p.diurnal_amp = 0.06;
        p.noise_sigma = 0.045;
        p.ar_coeff = 0.85;
        p.burst_prob = 0.010;
        p.burst_gain = 0.40;
        break;
      case WorkloadClass::ECommerce:
        // Diurnal plus pronounced flash-load spikes.
        p.base_util = 0.26;
        p.diurnal_amp = 0.14;
        p.noise_sigma = 0.030;
        p.ar_coeff = 0.88;
        p.burst_prob = 0.008;
        p.burst_gain = 0.50;
        break;
      case WorkloadClass::RemoteDesktop:
        // Strong business-hours shape, near idle overnight.
        p.base_util = 0.18;
        p.diurnal_amp = 0.16;
        p.noise_sigma = 0.020;
        p.ar_coeff = 0.92;
        p.burst_prob = 0.002;
        p.burst_gain = 0.20;
        break;
      case WorkloadClass::Batch:
        // Low interactive baseline; long, heavy processing windows.
        p.base_util = 0.15;
        p.diurnal_amp = 0.04;
        p.noise_sigma = 0.030;
        p.ar_coeff = 0.95;
        p.burst_prob = 0.006;
        p.burst_gain = 0.55;
        p.burst_len = 40;
        break;
      case WorkloadClass::FileServer:
        // Flat and quiet, mild daily rhythm.
        p.base_util = 0.14;
        p.diurnal_amp = 0.05;
        p.noise_sigma = 0.020;
        p.ar_coeff = 0.90;
        p.burst_prob = 0.003;
        p.burst_gain = 0.25;
        break;
    }
    return p;
}

TraceGenerator::TraceGenerator(GeneratorConfig config)
    : config_(config)
{
    if (config_.trace_length == 0)
        util::fatal("TraceGenerator: zero trace length");
    if (config_.ticks_per_day == 0)
        util::fatal("TraceGenerator: zero ticks per day");
    if (config_.num_enterprises == 0 ||
        config_.servers_per_enterprise == 0) {
        util::fatal("TraceGenerator: empty campaign");
    }
}

UtilizationTrace
TraceGenerator::generate(unsigned enterprise, unsigned server,
                         const ClassProfile &profile) const
{
    // Derive an independent, reproducible stream per (site, server).
    uint64_t stream = config_.seed ^
                      (static_cast<uint64_t>(enterprise) << 32) ^
                      (static_cast<uint64_t>(server) << 8) ^
                      static_cast<uint64_t>(profile.wc);
    util::Rng rng(stream, "trace-gen");

    // Per-site phase: businesses in different time zones / schedules.
    double phase = 2.0 * M_PI *
                   (static_cast<double>(enterprise) /
                    static_cast<double>(config_.num_enterprises));
    // Per-server personality: each machine's baseline differs a little.
    double base = profile.base_util * rng.uniform(0.75, 1.35);
    double amp = profile.diurnal_amp * rng.uniform(0.7, 1.3);

    std::vector<double> samples(config_.trace_length);
    double ar = 0.0;
    unsigned burst_left = 0;
    double burst_amp = 0.0;

    for (size_t t = 0; t < config_.trace_length; ++t) {
        double day_angle = 2.0 * M_PI *
                           (static_cast<double>(t % config_.ticks_per_day) /
                            static_cast<double>(config_.ticks_per_day));
        // Business-hours hump: a raised sinusoid that bottoms out at night.
        double diurnal = amp * std::sin(day_angle + phase);

        ar = profile.ar_coeff * ar +
             rng.gaussian(0.0, profile.noise_sigma);

        if (burst_left == 0 && rng.bernoulli(profile.burst_prob)) {
            burst_left = profile.burst_len;
            burst_amp = profile.burst_gain * rng.uniform(0.5, 1.0);
        }
        double burst = 0.0;
        if (burst_left > 0) {
            // Triangular burst envelope: ramp up then decay.
            double pos = 1.0 - static_cast<double>(burst_left) /
                               static_cast<double>(profile.burst_len);
            burst = burst_amp * (pos < 0.3 ? pos / 0.3
                                           : (1.0 - pos) / 0.7);
            --burst_left;
        }

        samples[t] = util::clamp(base + diurnal + ar + burst,
                                 profile.floor_util, profile.ceil_util);
    }

    std::string name = "site" + std::to_string(enterprise) + "/srv" +
                       std::to_string(server) + "-" +
                       workloadClassName(profile.wc);
    return UtilizationTrace(std::move(name), profile.wc,
                            std::move(samples));
}

std::vector<UtilizationTrace>
TraceGenerator::generateAll(util::ThreadPool *pool) const
{
    // Lay out the campaign plan first; each slot is then an independent
    // generate() call with its own derived RNG stream, so the fill can
    // fan out across workers without perturbing any trace.
    struct Slot
    {
        unsigned site;
        unsigned srv;
        WorkloadClass wc;
    };
    std::vector<Slot> plan;
    plan.reserve(static_cast<size_t>(config_.num_enterprises) *
                 config_.servers_per_enterprise);
    for (unsigned site = 0; site < config_.num_enterprises; ++site) {
        // Each site leans towards two signature classes; the rest of its
        // servers cycle through the full class list.
        auto sig_a = static_cast<WorkloadClass>(site % kNumWorkloadClasses);
        auto sig_b =
            static_cast<WorkloadClass>((site + 2) % kNumWorkloadClasses);
        for (unsigned srv = 0; srv < config_.servers_per_enterprise;
             ++srv) {
            WorkloadClass wc;
            if (srv % 3 == 0)
                wc = sig_a;
            else if (srv % 3 == 1)
                wc = sig_b;
            else
                wc = static_cast<WorkloadClass>(srv % kNumWorkloadClasses);
            plan.push_back({site, srv, wc});
        }
    }

    std::vector<std::optional<UtilizationTrace>> slots(plan.size());
    auto fill = [&](size_t i) {
        slots[i] = generate(plan[i].site, plan[i].srv,
                            defaultProfile(plan[i].wc));
    };
    if (pool != nullptr && pool->size() > 1) {
        const size_t shards = pool->size();
        const size_t block = (plan.size() + shards - 1) / shards;
        pool->parallelFor(shards, [&](size_t s) {
            size_t lo = s * block;
            size_t hi = std::min(lo + block, plan.size());
            for (size_t i = lo; i < hi; ++i)
                fill(i);
        });
    } else {
        for (size_t i = 0; i < plan.size(); ++i)
            fill(i);
    }

    std::vector<UtilizationTrace> traces;
    traces.reserve(slots.size());
    for (auto &slot : slots)
        traces.push_back(std::move(*slot));
    return traces;
}

} // namespace trace
} // namespace nps
