/**
 * @file
 * Utilization traces: the per-interval CPU demand series that drive the
 * data-center simulation, standing in for the paper's 180 real-enterprise
 * server traces.
 *
 * Utilization is expressed as a fraction of a full-speed server's capacity
 * (0.35 = 35%); stacked traces used for the high-activity mixes may exceed
 * 1.0, representing demand one machine cannot serve at any P-state.
 */

#ifndef NPS_TRACE_TRACE_H
#define NPS_TRACE_TRACE_H

#include <cstddef>
#include <string>
#include <vector>

namespace nps {
namespace trace {

/** Workload families observed across the nine enterprise sites. */
enum class WorkloadClass
{
    WebServer,
    Database,
    ECommerce,
    RemoteDesktop,
    Batch,
    FileServer,
};

/** @return a short human-readable name for a workload class. */
const char *workloadClassName(WorkloadClass wc);

/** Number of distinct workload classes. */
inline constexpr size_t kNumWorkloadClasses = 6;

/**
 * One server's demand series plus its provenance metadata.
 */
class UtilizationTrace
{
  public:
    /** Construct an empty, unnamed trace. */
    UtilizationTrace() = default;

    /**
     * @param name    Trace identifier (e.g. "site3/srv07-web").
     * @param wc      Workload family of the traced server.
     * @param samples Per-tick demand, each >= 0.
     */
    UtilizationTrace(std::string name, WorkloadClass wc,
                     std::vector<double> samples);

    /** @return trace identifier. */
    const std::string &name() const { return name_; }

    /** @return the workload family. */
    WorkloadClass workloadClass() const { return class_; }

    /** @return number of samples. */
    size_t length() const { return samples_.size(); }

    /** @return true when the trace holds no samples. */
    bool empty() const { return samples_.empty(); }

    /**
     * Demand at @p tick; ticks beyond the end wrap around so simulations
     * may run longer than the recorded trace. @pre !empty()
     */
    double at(size_t tick) const;

    /** Raw sample vector. */
    const std::vector<double> &samples() const { return samples_; }

    /** Mean demand over the whole trace (0 when empty). */
    double mean() const;

    /** Largest demand sample (0 when empty). */
    double peak() const;

    /**
     * @return a copy with every sample multiplied by @p factor (demand
     * stays clamped at 0 from below). @pre factor >= 0
     */
    UtilizationTrace scaled(double factor) const;

    /**
     * Sum a set of traces sample-by-sample, producing the "stacked"
     * synthetic high-utilization workloads of Section 4.3 (60HH stacks
     * two real traces, 60HHH three). The result has the length of the
     * longest input; shorter inputs wrap. @pre at least one input.
     */
    static UtilizationTrace stack(const std::vector<UtilizationTrace> &parts,
                                  const std::string &name);

  private:
    std::string name_;
    WorkloadClass class_ = WorkloadClass::WebServer;
    std::vector<double> samples_;
};

} // namespace trace
} // namespace nps

#endif // NPS_TRACE_TRACE_H
