/**
 * @file
 * Workload mixes: the six evaluation sets of Section 4.3.
 *
 *   - 180:   all traces from all nine sites;
 *   - 60L:   the 60 lowest-mean-utilization traces;
 *   - 60M:   the 60 middle traces;
 *   - 60H:   the 60 highest traces;
 *   - 60HH:  60 synthetic traces, each stacking 2 real traces;
 *   - 60HHH: 60 synthetic traces, each stacking 3 real traces.
 */

#ifndef NPS_TRACE_WORKLOAD_H
#define NPS_TRACE_WORKLOAD_H

#include <string>
#include <vector>

#include "trace/generator.h"
#include "trace/trace.h"

namespace nps {
namespace trace {

/** The six evaluation mixes of the paper. */
enum class Mix
{
    All180,
    Low60,
    Mid60,
    High60,
    HH60,
    HHH60,
};

/** @return the paper's label for a mix ("180", "60L", ...). */
const char *mixName(Mix mix);

/** @return all mixes in the order the paper's figures list them. */
std::vector<Mix> allMixes();

/** @return the number of workloads in a mix (180 or 60). */
size_t mixSize(Mix mix);

/**
 * Builds the evaluation mixes out of a full 180-trace campaign.
 */
class WorkloadLibrary
{
  public:
    /** Generate the campaign with the given configuration. */
    explicit WorkloadLibrary(const GeneratorConfig &config);

    /** Adopt an externally produced campaign (e.g. loaded from CSV). */
    explicit WorkloadLibrary(std::vector<UtilizationTrace> traces);

    /** @return the full campaign, in generation order. */
    const std::vector<UtilizationTrace> &all() const { return traces_; }

    /** @return the traces of one mix (copies). */
    std::vector<UtilizationTrace> mix(Mix mix) const;

    /** Mean utilization over every trace of a mix. */
    double mixMeanUtil(Mix mix) const;

  private:
    /** Indices of traces_ sorted by ascending mean utilization. */
    std::vector<size_t> byMeanUtil() const;

    std::vector<UtilizationTrace> traces_;
};

} // namespace trace
} // namespace nps

#endif // NPS_TRACE_WORKLOAD_H
