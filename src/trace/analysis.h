/**
 * @file
 * Trace analysis: the statistical characterizations used to validate
 * that a synthetic campaign matches the envelope of the paper's
 * real-enterprise traces, and to size controllers (spread allowances,
 * budget headroom) from workload data.
 */

#ifndef NPS_TRACE_ANALYSIS_H
#define NPS_TRACE_ANALYSIS_H

#include <cstddef>
#include <vector>

#include "trace/trace.h"

namespace nps {
namespace trace {

/** Summary statistics of one trace. */
struct TraceProfile
{
    double mean = 0.0;            //!< mean utilization
    double stddev = 0.0;          //!< standard deviation
    double peak = 0.0;            //!< maximum sample
    double p95 = 0.0;             //!< 95th percentile
    double peak_to_mean = 0.0;    //!< burstiness: peak / mean
    double diurnal_strength = 0.0; //!< daily-period autocorrelation [ -1,1]
    double lag1_autocorr = 0.0;   //!< short-range persistence
};

/**
 * Compute the profile of @p trace. @p ticks_per_day sets the lag used
 * for the diurnal-strength estimate (0 disables it).
 * @pre trace not empty
 */
TraceProfile profileTrace(const UtilizationTrace &trace,
                          size_t ticks_per_day);

/**
 * Autocorrelation of the trace at @p lag (Pearson, biased estimator).
 * Returns 0 for constant traces or when lag >= length.
 */
double autocorrelation(const UtilizationTrace &trace, size_t lag);

/** Exact q-quantile of the trace's samples (q in [0,1]). */
double traceQuantile(const UtilizationTrace &trace, double q);

/**
 * Aggregate (sample-wise sum) of many traces — the cluster's total
 * demand curve, whose peak sizes the power budgets.
 * @pre non-empty input of non-empty traces.
 */
UtilizationTrace aggregateDemand(
    const std::vector<UtilizationTrace> &traces);

/**
 * Suggested per-VM demand-spread allowance (in standard deviations)
 * such that mean + k*sigma covers the q-quantile of the trace —
 * data-driven sizing of VmController::Params::spread_sigma. Returns 0
 * for (near-)constant traces.
 */
double suggestedSpreadSigma(const UtilizationTrace &trace, double q);

} // namespace trace
} // namespace nps

#endif // NPS_TRACE_ANALYSIS_H
