#include "trace/trace.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace trace {

const char *
workloadClassName(WorkloadClass wc)
{
    switch (wc) {
      case WorkloadClass::WebServer:     return "web";
      case WorkloadClass::Database:      return "db";
      case WorkloadClass::ECommerce:     return "ecom";
      case WorkloadClass::RemoteDesktop: return "rdesk";
      case WorkloadClass::Batch:         return "batch";
      case WorkloadClass::FileServer:    return "file";
    }
    return "?";
}

UtilizationTrace::UtilizationTrace(std::string name, WorkloadClass wc,
                                   std::vector<double> samples)
    : name_(std::move(name)), class_(wc), samples_(std::move(samples))
{
    for (double s : samples_) {
        if (s < 0.0)
            util::fatal("UtilizationTrace %s: negative demand sample",
                        name_.c_str());
    }
}

double
UtilizationTrace::at(size_t tick) const
{
    if (samples_.empty())
        util::panic("UtilizationTrace::at on empty trace");
    return samples_[tick % samples_.size()];
}

double
UtilizationTrace::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
UtilizationTrace::peak() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

UtilizationTrace
UtilizationTrace::scaled(double factor) const
{
    if (factor < 0.0)
        util::fatal("UtilizationTrace::scaled: negative factor");
    std::vector<double> out(samples_);
    for (double &s : out)
        s *= factor;
    return UtilizationTrace(name_ + "-x" + std::to_string(factor), class_,
                            std::move(out));
}

UtilizationTrace
UtilizationTrace::stack(const std::vector<UtilizationTrace> &parts,
                        const std::string &name)
{
    if (parts.empty())
        util::fatal("UtilizationTrace::stack: no inputs");
    size_t len = 0;
    for (const auto &p : parts) {
        if (p.empty())
            util::fatal("UtilizationTrace::stack: empty input %s",
                        p.name().c_str());
        len = std::max(len, p.length());
    }
    std::vector<double> out(len, 0.0);
    for (const auto &p : parts) {
        for (size_t t = 0; t < len; ++t)
            out[t] += p.at(t);
    }
    return UtilizationTrace(name, parts.front().workloadClass(),
                            std::move(out));
}

} // namespace trace
} // namespace nps
