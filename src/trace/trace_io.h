/**
 * @file
 * CSV import/export for utilization traces, so externally collected traces
 * (e.g. sar/collectd exports from a real fleet) can drive the simulator,
 * and generated campaigns can be archived and plotted.
 *
 * Format: one header row `name,class,u0,u1,...` is NOT used; instead the
 * file is long-form with a header `name,class,tick,util` — one row per
 * sample — which survives ragged trace lengths and streams well.
 */

#ifndef NPS_TRACE_TRACE_IO_H
#define NPS_TRACE_TRACE_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace nps {
namespace trace {

/** Write traces in long form (`name,class,tick,util`) to a stream. */
void writeTraces(std::ostream &out,
                 const std::vector<UtilizationTrace> &traces);

/** Write traces to a file; fatal() on IO failure. */
void writeTracesFile(const std::string &path,
                     const std::vector<UtilizationTrace> &traces);

/**
 * Parse traces from long-form CSV text. Rows must be grouped by trace and
 * tick-ordered within each trace (the writer's output satisfies this);
 * fatal() on malformed input.
 */
std::vector<UtilizationTrace> parseTraces(const std::string &text);

/** Read traces from a long-form CSV file; fatal() on IO failure. */
std::vector<UtilizationTrace> readTracesFile(const std::string &path);

/** Parse a workload-class name as written by writeTraces(). */
WorkloadClass workloadClassFromName(const std::string &name);

} // namespace trace
} // namespace nps

#endif // NPS_TRACE_TRACE_IO_H
