/**
 * @file
 * Scenario trace builders: parametric demand shapes used by tests,
 * examples, and benches to exercise specific dynamics — surges, ramps,
 * steps, and flash crowds — alongside the statistical campaign the
 * generator produces.
 */

#ifndef NPS_TRACE_SCENARIOS_H
#define NPS_TRACE_SCENARIOS_H

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace nps {
namespace trace {

/** A constant-demand trace. */
UtilizationTrace flatScenario(const std::string &name, double util,
                              size_t length);

/**
 * A square wave alternating @p lo and @p hi every @p half_period ticks
 * (starts at lo).
 */
UtilizationTrace squareScenario(const std::string &name, double lo,
                                double hi, size_t half_period,
                                size_t length);

/**
 * Quiet -> surge -> quiet: @p quiet outside the middle third of the
 * trace, @p surge inside it.
 */
UtilizationTrace surgeScenario(const std::string &name, double quiet,
                               double surge, size_t length);

/**
 * Linear ramp of an existing trace: sample k is scaled by the linear
 * interpolation from @p start_scale to @p end_scale across @p length
 * ticks (the base trace wraps as needed).
 */
UtilizationTrace rampScenario(const UtilizationTrace &base,
                              size_t length, double start_scale,
                              double end_scale);

/**
 * A flash crowd: baseline @p base, with a spike to @p peak at
 * @p at_tick that decays exponentially with time constant @p decay
 * ticks — the e-commerce incident shape.
 */
UtilizationTrace flashCrowdScenario(const std::string &name, double base,
                                    double peak, size_t at_tick,
                                    double decay, size_t length);

/** Apply rampScenario to every trace of a set. */
std::vector<UtilizationTrace> rampAll(
    const std::vector<UtilizationTrace> &base, size_t length,
    double start_scale, double end_scale);

} // namespace trace
} // namespace nps

#endif // NPS_TRACE_SCENARIOS_H
