#include "trace/analysis.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace nps {
namespace trace {

double
autocorrelation(const UtilizationTrace &trace, size_t lag)
{
    const auto &x = trace.samples();
    if (x.empty())
        util::fatal("autocorrelation: empty trace");
    if (lag >= x.size() || lag == 0)
        return lag == 0 ? 1.0 : 0.0;

    double mean = trace.mean();
    double var = 0.0;
    for (double v : x)
        var += (v - mean) * (v - mean);
    if (var < 1e-15)
        return 0.0;
    double cov = 0.0;
    for (size_t t = 0; t + lag < x.size(); ++t)
        cov += (x[t] - mean) * (x[t + lag] - mean);
    // Length-corrected normalization so a perfectly periodic signal
    // scores ~1 at its period regardless of how many periods fit.
    double n = static_cast<double>(x.size());
    double pairs = n - static_cast<double>(lag);
    return (cov / pairs) / (var / n);
}

double
traceQuantile(const UtilizationTrace &trace, double q)
{
    if (trace.empty())
        util::fatal("traceQuantile: empty trace");
    util::SampleSet set;
    for (double v : trace.samples())
        set.add(v);
    return set.quantile(q);
}

TraceProfile
profileTrace(const UtilizationTrace &trace, size_t ticks_per_day)
{
    if (trace.empty())
        util::fatal("profileTrace: empty trace");

    util::RunningStats stats;
    for (double v : trace.samples())
        stats.add(v);

    TraceProfile p;
    p.mean = stats.mean();
    p.stddev = stats.stddev();
    p.peak = stats.max();
    p.p95 = traceQuantile(trace, 0.95);
    p.peak_to_mean = p.mean > 0.0 ? p.peak / p.mean : 0.0;
    p.lag1_autocorr = autocorrelation(trace, 1);
    if (ticks_per_day > 0 && ticks_per_day < trace.length())
        p.diurnal_strength = autocorrelation(trace, ticks_per_day);
    return p;
}

UtilizationTrace
aggregateDemand(const std::vector<UtilizationTrace> &traces)
{
    return UtilizationTrace::stack(traces, "aggregate");
}

double
suggestedSpreadSigma(const UtilizationTrace &trace, double q)
{
    if (q < 0.0 || q > 1.0)
        util::fatal("suggestedSpreadSigma: q %f out of [0,1]", q);
    util::RunningStats stats;
    for (double v : trace.samples())
        stats.add(v);
    if (stats.stddev() < 1e-12)
        return 0.0;
    double quant = traceQuantile(trace, q);
    return std::max(0.0, (quant - stats.mean()) / stats.stddev());
}

} // namespace trace
} // namespace nps
