#include "trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/logging.h"

namespace nps {
namespace trace {

void
writeTraces(std::ostream &out, const std::vector<UtilizationTrace> &traces)
{
    util::CsvWriter w(out);
    w.row("name", "class", "tick", "util");
    for (const auto &t : traces) {
        for (size_t tick = 0; tick < t.length(); ++tick) {
            w.row(t.name(), workloadClassName(t.workloadClass()),
                  static_cast<unsigned long>(tick), t.samples()[tick]);
        }
    }
}

void
writeTracesFile(const std::string &path,
                const std::vector<UtilizationTrace> &traces)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        util::fatal("writeTracesFile: cannot open %s", path.c_str());
    writeTraces(out, traces);
    if (!out)
        util::fatal("writeTracesFile: write to %s failed", path.c_str());
}

WorkloadClass
workloadClassFromName(const std::string &name)
{
    for (size_t i = 0; i < kNumWorkloadClasses; ++i) {
        auto wc = static_cast<WorkloadClass>(i);
        if (name == workloadClassName(wc))
            return wc;
    }
    util::fatal("workloadClassFromName: unknown class '%s'", name.c_str());
}

std::vector<UtilizationTrace>
parseTraces(const std::string &text)
{
    util::CsvDocument doc = util::parseCsv(text);
    if (doc.rows.empty())
        util::fatal("parseTraces: empty document");

    const auto &header = doc.rows[0];
    if (header.size() != 4 || header[0] != "name" || header[1] != "class" ||
        header[2] != "tick" || header[3] != "util") {
        util::fatal("parseTraces: unexpected header");
    }

    std::vector<UtilizationTrace> out;
    std::string cur_name;
    WorkloadClass cur_class = WorkloadClass::WebServer;
    std::vector<double> cur_samples;

    auto flush = [&]() {
        if (!cur_samples.empty()) {
            out.emplace_back(cur_name, cur_class, std::move(cur_samples));
            cur_samples = {};
        }
    };

    for (size_t r = 1; r < doc.rows.size(); ++r) {
        const auto &row = doc.rows[r];
        if (row.size() == 1 && row[0].empty())
            continue;  // trailing blank line
        if (row.size() != 4)
            util::fatal("parseTraces: row %zu has %zu fields", r,
                        row.size());
        if (row[0] != cur_name) {
            flush();
            cur_name = row[0];
            cur_class = workloadClassFromName(row[1]);
        }
        size_t expect_tick = cur_samples.size();
        unsigned long tick = std::stoul(row[2]);
        if (tick != expect_tick)
            util::fatal("parseTraces: trace %s: tick %lu out of order "
                        "(expected %zu)", cur_name.c_str(), tick,
                        expect_tick);
        cur_samples.push_back(std::stod(row[3]));
    }
    flush();
    return out;
}

std::vector<UtilizationTrace>
readTracesFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        util::fatal("readTracesFile: cannot open %s", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseTraces(ss.str());
}

} // namespace trace
} // namespace nps
