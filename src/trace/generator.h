/**
 * @file
 * Synthetic enterprise trace generator.
 *
 * Stands in for the paper's 180 utilization traces collected at nine
 * real-world enterprise sites. Each trace is the sum of
 *
 *   - a workload-class baseline,
 *   - a diurnal sinusoid (business-hours shape, per-site phase),
 *   - a slowly-wandering AR(1) noise component, and
 *   - occasional multiplicative bursts (flash load),
 *
 * clamped to [floor, ceiling]. Class parameters are tuned so the resulting
 * population matches the envelope the paper reports: "relatively low
 * utilization (15-50% in most cases)". Everything is derived from a single
 * seed, so trace generation is fully reproducible.
 */

#ifndef NPS_TRACE_GENERATOR_H
#define NPS_TRACE_GENERATOR_H

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace nps {
namespace util {
class ThreadPool;
} // namespace util

namespace trace {

/** Tunable statistical shape of one workload class. */
struct ClassProfile
{
    WorkloadClass wc = WorkloadClass::WebServer;
    double base_util = 0.25;       //!< long-run baseline utilization
    double diurnal_amp = 0.10;     //!< amplitude of the daily sinusoid
    double noise_sigma = 0.03;     //!< innovation stddev of the AR(1) term
    double ar_coeff = 0.9;         //!< AR(1) persistence, in [0,1)
    double burst_prob = 0.005;     //!< per-tick probability a burst starts
    double burst_gain = 0.35;      //!< additional utilization at burst peak
    unsigned burst_len = 12;       //!< burst duration in ticks
    double floor_util = 0.02;      //!< clamp floor
    double ceil_util = 1.0;        //!< clamp ceiling
};

/** @return the default profile for a workload class. */
ClassProfile defaultProfile(WorkloadClass wc);

/** Configuration of a whole trace-generation campaign. */
struct GeneratorConfig
{
    unsigned num_enterprises = 9;      //!< distinct sites
    unsigned servers_per_enterprise = 20;  //!< traces per site
    size_t trace_length = 2880;        //!< ticks per trace
    size_t ticks_per_day = 288;        //!< diurnal period (e.g. 5-min ticks)
    uint64_t seed = 20080301;          //!< master seed (ASPLOS'08 dates)
};

/**
 * Deterministic enterprise workload synthesizer.
 */
class TraceGenerator
{
  public:
    /** Construct with campaign configuration. */
    explicit TraceGenerator(GeneratorConfig config);

    /** @return the active configuration. */
    const GeneratorConfig &config() const { return config_; }

    /**
     * Generate one trace for server @p server of site @p enterprise with
     * the given profile. Identical arguments always produce an identical
     * trace.
     */
    UtilizationTrace generate(unsigned enterprise, unsigned server,
                              const ClassProfile &profile) const;

    /**
     * Generate the full campaign: servers_per_enterprise traces for each
     * of num_enterprises sites, cycling through the workload classes with
     * per-site emphasis (each site leans towards two "signature" classes,
     * as different businesses do).
     *
     * Each trace derives its own RNG stream from (seed, site, server),
     * so generation is embarrassingly parallel: pass @p pool to fan the
     * campaign out across workers. The result is bit-identical with or
     * without a pool.
     */
    std::vector<UtilizationTrace>
    generateAll(util::ThreadPool *pool = nullptr) const;

  private:
    GeneratorConfig config_;
};

} // namespace trace
} // namespace nps

#endif // NPS_TRACE_GENERATOR_H
