#include "trace/scenarios.h"

#include <cmath>

#include "util/logging.h"

namespace nps {
namespace trace {

UtilizationTrace
flatScenario(const std::string &name, double util, size_t length)
{
    if (length == 0)
        util::fatal("flatScenario: zero length");
    return UtilizationTrace(name, WorkloadClass::WebServer,
                            std::vector<double>(length, util));
}

UtilizationTrace
squareScenario(const std::string &name, double lo, double hi,
               size_t half_period, size_t length)
{
    if (length == 0 || half_period == 0)
        util::fatal("squareScenario: zero length or period");
    std::vector<double> v(length);
    for (size_t t = 0; t < length; ++t)
        v[t] = (t / half_period) % 2 == 0 ? lo : hi;
    return UtilizationTrace(name, WorkloadClass::Database, std::move(v));
}

UtilizationTrace
surgeScenario(const std::string &name, double quiet, double surge,
              size_t length)
{
    if (length == 0)
        util::fatal("surgeScenario: zero length");
    std::vector<double> v(length);
    for (size_t t = 0; t < length; ++t) {
        bool surging = t >= length / 3 && t < 2 * length / 3;
        v[t] = surging ? surge : quiet;
    }
    return UtilizationTrace(name, WorkloadClass::ECommerce,
                            std::move(v));
}

UtilizationTrace
rampScenario(const UtilizationTrace &base, size_t length,
             double start_scale, double end_scale)
{
    if (length == 0)
        util::fatal("rampScenario: zero length");
    if (base.empty())
        util::fatal("rampScenario: empty base trace");
    if (start_scale < 0.0 || end_scale < 0.0)
        util::fatal("rampScenario: negative scale");
    std::vector<double> v(length);
    for (size_t k = 0; k < length; ++k) {
        double scale = start_scale +
                       (end_scale - start_scale) *
                           static_cast<double>(k) /
                           static_cast<double>(length);
        v[k] = base.at(k) * scale;
    }
    return UtilizationTrace(base.name() + "-ramp", base.workloadClass(),
                            std::move(v));
}

UtilizationTrace
flashCrowdScenario(const std::string &name, double base, double peak,
                   size_t at_tick, double decay, size_t length)
{
    if (length == 0)
        util::fatal("flashCrowdScenario: zero length");
    if (decay <= 0.0)
        util::fatal("flashCrowdScenario: non-positive decay");
    std::vector<double> v(length);
    for (size_t t = 0; t < length; ++t) {
        v[t] = base;
        if (t >= at_tick) {
            double age = static_cast<double>(t - at_tick);
            v[t] += (peak - base) * std::exp(-age / decay);
        }
    }
    return UtilizationTrace(name, WorkloadClass::ECommerce,
                            std::move(v));
}

std::vector<UtilizationTrace>
rampAll(const std::vector<UtilizationTrace> &base, size_t length,
        double start_scale, double end_scale)
{
    std::vector<UtilizationTrace> out;
    out.reserve(base.size());
    for (const auto &t : base)
        out.push_back(rampScenario(t, length, start_scale, end_scale));
    return out;
}

} // namespace trace
} // namespace nps
