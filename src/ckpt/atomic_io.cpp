#include "ckpt/atomic_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/logging.h"

namespace nps {
namespace ckpt {

namespace {

/** Directory part of @p path ("." when there is no slash). */
std::string
dirOf(const std::string &path)
{
    auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

void
writeFileAtomic(const std::string &path, const std::string &data)
{
    const std::string tmp = path + ".tmp";

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        util::fatal("cannot open %s for writing: %s", tmp.c_str(),
                    std::strerror(errno));

    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            util::fatal("write failed on %s: %s", tmp.c_str(),
                        std::strerror(err));
        }
        off += static_cast<size_t>(n);
    }

    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        util::fatal("fsync failed on %s: %s", tmp.c_str(),
                    std::strerror(err));
    }
    if (::close(fd) != 0)
        util::fatal("close failed on %s: %s", tmp.c_str(),
                    std::strerror(errno));

    if (::rename(tmp.c_str(), path.c_str()) != 0)
        util::fatal("cannot rename %s to %s: %s", tmp.c_str(), path.c_str(),
                    std::strerror(errno));

    // Make the rename itself durable before reporting success.
    int dfd = ::open(dirOf(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

} // namespace ckpt
} // namespace nps
