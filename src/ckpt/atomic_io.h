/**
 * @file
 * Crash-safe file writes: temp file + fsync + atomic rename.
 *
 * Used for checkpoints and for every user-facing output file (Recorder
 * CSVs, metrics/trace/profile exports), so a crash mid-write never leaves
 * a torn file behind — readers see either the old contents or the new,
 * never a prefix.
 */

#ifndef NPS_CKPT_ATOMIC_IO_H
#define NPS_CKPT_ATOMIC_IO_H

#include <string>

namespace nps {
namespace ckpt {

/**
 * Write @p data to @p path crash-safely: write to "<path>.tmp" in the same
 * directory, fsync the file, rename over @p path, fsync the directory.
 * Fatal (non-zero exit) with the path and errno string on any failure —
 * output I/O errors must never pass silently.
 */
void writeFileAtomic(const std::string &path, const std::string &data);

} // namespace ckpt
} // namespace nps

#endif // NPS_CKPT_ATOMIC_IO_H
