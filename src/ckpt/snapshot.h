/**
 * @file
 * Versioned, CRC-protected snapshot format for crash-safe checkpointing.
 *
 * A snapshot is a flat container of named sections. Each component of the
 * simulator (engine, cluster, each controller, each link log, the obs
 * instruments) serializes its mutable state into its own section through a
 * SectionWriter and restores it through a SectionReader. The container
 * carries a magic string, a format version, and a CRC32 per section, so a
 * truncated or bit-flipped file is detected on load instead of silently
 * resuming from garbage.
 *
 * On-disk layout (all integers little-endian):
 *
 *   8 bytes   magic "NPSCKPT1"
 *   u32       format version
 *   u32       section count
 *   per section:
 *     u32       name length, then name bytes
 *     u64       payload length
 *     u32       CRC32 of the payload bytes
 *     payload
 *
 * Doubles are stored as the bit pattern of the IEEE-754 value (via
 * std::bit_cast to uint64_t) so restore is exact — byte-identical resume
 * depends on it.
 */

#ifndef NPS_CKPT_SNAPSHOT_H
#define NPS_CKPT_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nps {
namespace ckpt {

/**
 * Snapshot container format version (bump on layout change). v2 added
 * the controllers' cascade trace context and made the metrics registry
 * skip runtime (nps_rt_*) families.
 */
inline constexpr uint32_t kFormatVersion = 2;

/**
 * CRC32 (IEEE 802.3 polynomial) of a byte range. Thin alias of
 * util::crc32 (util/crc32.h), kept so every checkpoint call site and
 * snapshot byte stays exactly as before the consolidation.
 */
uint32_t crc32(const void *data, size_t len);

/**
 * Serializes one section's payload. Append-only; typed put* helpers keep
 * the byte layout in one place.
 */
class SectionWriter
{
  public:
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void putI64(int64_t v);
    void putDouble(double v);
    void putBool(bool v);
    void putString(std::string_view s);

    void putDoubleVec(const std::vector<double> &v);
    void putU64Vec(const std::vector<uint64_t> &v);

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Deserializes one section's payload. Reads must mirror the writes exactly;
 * any underrun is a fatal error naming the section, because it means the
 * snapshot and the binary disagree about the layout.
 */
class SectionReader
{
  public:
    SectionReader(std::string_view name, std::string_view bytes);

    uint32_t getU32();
    uint64_t getU64();
    int64_t getI64();
    double getDouble();
    bool getBool();
    std::string getString();

    std::vector<double> getDoubleVec();
    std::vector<uint64_t> getU64Vec();

    /** @return bytes not yet consumed. */
    size_t remaining() const { return bytes_.size() - pos_; }

    /** Fatal if any bytes remain unread (layout mismatch). */
    void expectEnd() const;

  private:
    const unsigned char *take(size_t n);

    std::string name_;
    std::string_view bytes_;
    size_t pos_ = 0;
};

/**
 * Builds a snapshot: components request named sections, the writer
 * serializes the container and writes it crash-safely.
 */
class SnapshotWriter
{
  public:
    /** Open a new section. Fatal on a duplicate name. */
    SectionWriter &section(std::string_view name);

    /** @return the serialized container (magic + version + sections). */
    std::string serialize() const;

    /**
     * Serialize and write crash-safely: temp file in the same directory,
     * fsync, atomic rename over @p path. Fatal with path + errno on any
     * I/O failure.
     */
    void writeFile(const std::string &path) const;

  private:
    std::vector<std::string> order_;
    std::map<std::string, SectionWriter, std::less<>> sections_;
};

/**
 * Loads a snapshot file, verifying magic, version, and per-section CRCs.
 */
class SnapshotReader
{
  public:
    /**
     * Load and validate @p path. @return false with a human-readable
     * reason in @p error on any problem (missing file, bad magic,
     * version mismatch, truncation, CRC mismatch). Non-fatal so callers
     * can fall back to an older checkpoint.
     */
    bool load(const std::string &path, std::string &error);

    /**
     * Parse an already-in-memory serialized container (same validation
     * as load()); @p label stands in for the path in diagnostics.
     */
    bool loadBytes(const std::string &data, const std::string &label,
                   std::string &error);

    bool has(std::string_view name) const;

    /** Open a section for reading. Fatal if the section is missing. */
    SectionReader section(std::string_view name) const;

    /** Names of all sections, in file order. */
    const std::vector<std::string> &names() const { return order_; }

    /** Path the snapshot was loaded from (for diagnostics). */
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::vector<std::string> order_;
    std::map<std::string, std::string, std::less<>> sections_;
};

} // namespace ckpt
} // namespace nps

#endif // NPS_CKPT_SNAPSHOT_H
