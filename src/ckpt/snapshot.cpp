#include "ckpt/snapshot.h"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "ckpt/atomic_io.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace nps {
namespace ckpt {

namespace {

constexpr char kMagic[8] = {'N', 'P', 'S', 'C', 'K', 'P', 'T', '1'};

void
appendLe(std::string &buf, uint64_t v, size_t bytes)
{
    for (size_t i = 0; i < bytes; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

uint64_t
readLe(const unsigned char *p, size_t bytes)
{
    uint64_t v = 0;
    for (size_t i = 0; i < bytes; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

uint32_t
crc32(const void *data, size_t len)
{
    return util::crc32(data, len);
}

void
SectionWriter::putU32(uint32_t v)
{
    appendLe(buf_, v, 4);
}

void
SectionWriter::putU64(uint64_t v)
{
    appendLe(buf_, v, 8);
}

void
SectionWriter::putI64(int64_t v)
{
    appendLe(buf_, static_cast<uint64_t>(v), 8);
}

void
SectionWriter::putDouble(double v)
{
    appendLe(buf_, std::bit_cast<uint64_t>(v), 8);
}

void
SectionWriter::putBool(bool v)
{
    buf_.push_back(v ? '\1' : '\0');
}

void
SectionWriter::putString(std::string_view s)
{
    putU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
}

void
SectionWriter::putDoubleVec(const std::vector<double> &v)
{
    putU64(v.size());
    for (double d : v)
        putDouble(d);
}

void
SectionWriter::putU64Vec(const std::vector<uint64_t> &v)
{
    putU64(v.size());
    for (uint64_t u : v)
        putU64(u);
}

SectionReader::SectionReader(std::string_view name, std::string_view bytes)
    : name_(name), bytes_(bytes)
{
}

const unsigned char *
SectionReader::take(size_t n)
{
    if (pos_ + n > bytes_.size())
        util::fatal("checkpoint section '%s': truncated read at offset %zu "
                    "(want %zu bytes, %zu left) — snapshot layout does not "
                    "match this binary",
                    name_.c_str(), pos_, n, bytes_.size() - pos_);
    const auto *p =
        reinterpret_cast<const unsigned char *>(bytes_.data()) + pos_;
    pos_ += n;
    return p;
}

uint32_t
SectionReader::getU32()
{
    return static_cast<uint32_t>(readLe(take(4), 4));
}

uint64_t
SectionReader::getU64()
{
    return readLe(take(8), 8);
}

int64_t
SectionReader::getI64()
{
    return static_cast<int64_t>(readLe(take(8), 8));
}

double
SectionReader::getDouble()
{
    return std::bit_cast<double>(readLe(take(8), 8));
}

bool
SectionReader::getBool()
{
    return *take(1) != 0;
}

std::string
SectionReader::getString()
{
    uint32_t n = getU32();
    const auto *p = take(n);
    return std::string(reinterpret_cast<const char *>(p), n);
}

std::vector<double>
SectionReader::getDoubleVec()
{
    uint64_t n = getU64();
    if (n > remaining() / 8)
        util::fatal("checkpoint section '%s': vector length %llu exceeds "
                    "remaining payload",
                    name_.c_str(), static_cast<unsigned long long>(n));
    std::vector<double> v;
    v.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        v.push_back(getDouble());
    return v;
}

std::vector<uint64_t>
SectionReader::getU64Vec()
{
    uint64_t n = getU64();
    if (n > remaining() / 8)
        util::fatal("checkpoint section '%s': vector length %llu exceeds "
                    "remaining payload",
                    name_.c_str(), static_cast<unsigned long long>(n));
    std::vector<uint64_t> v;
    v.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        v.push_back(getU64());
    return v;
}

void
SectionReader::expectEnd() const
{
    if (pos_ != bytes_.size())
        util::fatal("checkpoint section '%s': %zu trailing bytes after "
                    "restore — snapshot layout does not match this binary",
                    name_.c_str(), bytes_.size() - pos_);
}

SectionWriter &
SnapshotWriter::section(std::string_view name)
{
    auto [it, inserted] =
        sections_.try_emplace(std::string(name), SectionWriter{});
    if (!inserted)
        util::fatal("checkpoint: duplicate section '%s'",
                    it->first.c_str());
    order_.push_back(it->first);
    return it->second;
}

std::string
SnapshotWriter::serialize() const
{
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    appendLe(out, kFormatVersion, 4);
    appendLe(out, order_.size(), 4);
    for (const auto &name : order_) {
        const std::string &payload = sections_.at(name).bytes();
        appendLe(out, name.size(), 4);
        out.append(name);
        appendLe(out, payload.size(), 8);
        appendLe(out, crc32(payload.data(), payload.size()), 4);
        out.append(payload);
    }
    return out;
}

void
SnapshotWriter::writeFile(const std::string &path) const
{
    writeFileAtomic(path, serialize());
}

bool
SnapshotReader::load(const std::string &path, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
        error = "read error on " + path;
        return false;
    }
    return loadBytes(data, path, error);
}

bool
SnapshotReader::loadBytes(const std::string &data, const std::string &label,
                          std::string &error)
{
    order_.clear();
    sections_.clear();
    path_ = label;
    const std::string &path = label;

    size_t pos = 0;
    auto need = [&](size_t n, const char *what) {
        if (pos + n > data.size()) {
            error = path + ": truncated (" + what + ")";
            return false;
        }
        return true;
    };
    const auto *bytes = reinterpret_cast<const unsigned char *>(data.data());

    if (!need(sizeof(kMagic), "magic"))
        return false;
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
        error = path + ": bad magic (not an npsim checkpoint)";
        return false;
    }
    pos += sizeof(kMagic);

    if (!need(8, "header"))
        return false;
    auto version = static_cast<uint32_t>(readLe(bytes + pos, 4));
    pos += 4;
    if (version != kFormatVersion) {
        error = path + ": format version " + std::to_string(version) +
                " not supported (this binary reads version " +
                std::to_string(kFormatVersion) + ")";
        return false;
    }
    auto count = static_cast<uint32_t>(readLe(bytes + pos, 4));
    pos += 4;

    for (uint32_t i = 0; i < count; ++i) {
        if (!need(4, "section name length"))
            return false;
        auto name_len = static_cast<size_t>(readLe(bytes + pos, 4));
        pos += 4;
        if (!need(name_len, "section name"))
            return false;
        std::string name(data.data() + pos, name_len);
        pos += name_len;
        if (!need(12, "section header"))
            return false;
        auto payload_len = static_cast<size_t>(readLe(bytes + pos, 8));
        pos += 8;
        auto expect_crc = static_cast<uint32_t>(readLe(bytes + pos, 4));
        pos += 4;
        if (!need(payload_len, "section payload"))
            return false;
        uint32_t got_crc = crc32(data.data() + pos, payload_len);
        if (got_crc != expect_crc) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          ": CRC mismatch in section '%s' "
                          "(stored %08x, computed %08x) — file is corrupt",
                          name.c_str(), expect_crc, got_crc);
            error = path + buf;
            return false;
        }
        auto [it, inserted] = sections_.try_emplace(
            std::move(name), data.substr(pos, payload_len));
        if (!inserted) {
            error = path + ": duplicate section '" + it->first + "'";
            return false;
        }
        order_.push_back(it->first);
        pos += payload_len;
    }
    if (pos != data.size()) {
        error = path + ": " + std::to_string(data.size() - pos) +
                " trailing bytes after last section";
        return false;
    }
    return true;
}

bool
SnapshotReader::has(std::string_view name) const
{
    return sections_.find(name) != sections_.end();
}

SectionReader
SnapshotReader::section(std::string_view name) const
{
    auto it = sections_.find(name);
    if (it == sections_.end())
        util::fatal("checkpoint %s: missing section '%.*s'", path_.c_str(),
                    static_cast<int>(name.size()), name.data());
    return SectionReader(it->first, it->second);
}

} // namespace ckpt
} // namespace nps
