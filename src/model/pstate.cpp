#include "model/pstate.h"

#include <cmath>

#include "util/logging.h"

namespace nps {
namespace model {

double
PState::powerAt(double util) const
{
    if (util < 0.0 || util > 1.0)
        util::panic("PState::powerAt(%f): utilization out of [0,1]", util);
    return dyn_watts * util + idle_watts;
}

PStateTable::PStateTable(std::vector<PState> states)
    : states_(std::move(states))
{
    if (states_.empty())
        util::fatal("PStateTable: empty state list");
    for (size_t i = 1; i < states_.size(); ++i) {
        if (states_[i].freq_mhz >= states_[i - 1].freq_mhz) {
            util::fatal("PStateTable: frequencies must strictly decrease "
                        "(state %zu: %f >= state %zu: %f)",
                        i, states_[i].freq_mhz, i - 1,
                        states_[i - 1].freq_mhz);
        }
        if (states_[i].peakPower() > states_[i - 1].peakPower()) {
            util::fatal("PStateTable: peak power must not increase with "
                        "state index (state %zu)", i);
        }
        if (states_[i].idle_watts > states_[i - 1].idle_watts) {
            util::fatal("PStateTable: idle power must not increase with "
                        "state index (state %zu)", i);
        }
    }
    for (const auto &s : states_) {
        if (s.freq_mhz <= 0.0 || s.idle_watts < 0.0 || s.dyn_watts < 0.0)
            util::fatal("PStateTable: invalid state parameters");
    }
}

const PState &
PStateTable::at(size_t index) const
{
    if (index >= states_.size())
        util::panic("PStateTable::at(%zu): out of range", index);
    return states_[index];
}

size_t
PStateTable::quantizeUp(double freq_mhz) const
{
    // States are sorted by decreasing frequency; find the slowest state
    // that still provides at least freq_mhz.
    size_t chosen = 0;
    for (size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].freq_mhz >= freq_mhz)
            chosen = i;
        else
            break;
    }
    return chosen;
}

size_t
PStateTable::quantizeNearest(double freq_mhz) const
{
    size_t best = 0;
    double best_dist = std::fabs(states_[0].freq_mhz - freq_mhz);
    for (size_t i = 1; i < states_.size(); ++i) {
        double dist = std::fabs(states_[i].freq_mhz - freq_mhz);
        if (dist < best_dist) {
            best = i;
            best_dist = dist;
        }
    }
    return best;
}

double
PStateTable::relSpeed(size_t index) const
{
    return at(index).freq_mhz / fastest().freq_mhz;
}

PStateTable
PStateTable::subset(const std::vector<size_t> &indices) const
{
    if (indices.empty())
        util::fatal("PStateTable::subset: empty index list");
    std::vector<PState> chosen;
    size_t prev = 0;
    bool first = true;
    for (size_t idx : indices) {
        if (idx >= states_.size())
            util::fatal("PStateTable::subset: index %zu out of range", idx);
        if (!first && idx <= prev)
            util::fatal("PStateTable::subset: indices must increase");
        chosen.push_back(states_[idx]);
        prev = idx;
        first = false;
    }
    return PStateTable(std::move(chosen));
}

PStateTable
PStateTable::extremesOnly() const
{
    if (states_.size() <= 2)
        return *this;
    return subset({0, states_.size() - 1});
}

} // namespace model
} // namespace nps
