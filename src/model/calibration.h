/**
 * @file
 * Model calibration: reproduce the paper's flow of running workloads at
 * controlled utilization levels on real hardware, measuring power, and
 * curve-fitting linear per-P-state models (Section 4.1).
 *
 * Since the authors' testbed is unavailable, a MeasurementSource abstracts
 * "the machine under test": production code could wire a real power meter,
 * while the shipped SimulatedMachine replays a ground-truth spec with
 * configurable measurement noise, letting tests verify the fit recovers
 * the underlying model.
 */

#ifndef NPS_MODEL_CALIBRATION_H
#define NPS_MODEL_CALIBRATION_H

#include <cstddef>
#include <vector>

#include "model/machine.h"
#include "util/random.h"

namespace nps {
namespace model {

/** One calibration observation: utilization level and measured power. */
struct PowerSample
{
    double util = 0.0;   //!< apparent utilization the load generator held
    double watts = 0.0;  //!< measured wall power
};

/** Result of fitting one P-state's linear power model. */
struct LinearFit
{
    double slope = 0.0;      //!< fitted c_p (watts per unit utilization)
    double intercept = 0.0;  //!< fitted d_p (idle watts)
    double r2 = 0.0;         //!< coefficient of determination of the fit
};

/**
 * Ordinary least-squares fit of watts = slope * util + intercept.
 * @pre at least two samples with distinct utilizations.
 */
LinearFit fitLine(const std::vector<PowerSample> &samples);

/**
 * Abstract machine-under-test: something that can be pinned to a P-state
 * and loaded to a target utilization while its power is measured.
 */
class MeasurementSource
{
  public:
    virtual ~MeasurementSource() = default;

    /** Number of P-states the machine exposes. */
    virtual size_t numPStates() const = 0;

    /** Frequency (MHz) of P-state @p state. */
    virtual double freqMhz(size_t state) const = 0;

    /**
     * Hold the machine at @p state and drive apparent utilization
     * @p util; @return the measured power in watts.
     */
    virtual double measure(size_t state, double util) = 0;
};

/**
 * A simulated machine under test: answers measurements from a ground-truth
 * MachineSpec plus zero-mean Gaussian meter noise.
 */
class SimulatedMachine : public MeasurementSource
{
  public:
    /**
     * @param truth       Ground-truth spec generating the measurements.
     * @param noise_watts Standard deviation of additive meter noise.
     * @param seed        RNG seed for the noise stream.
     */
    SimulatedMachine(MachineSpec truth, double noise_watts, uint64_t seed);

    size_t numPStates() const override;
    double freqMhz(size_t state) const override;
    double measure(size_t state, double util) override;

  private:
    MachineSpec truth_;
    double noise_watts_;
    util::Rng rng_;
};

/**
 * Calibration campaign: sweeps every P-state over a grid of utilization
 * levels, takes repeated measurements, and fits the linear models.
 */
class Calibrator
{
  public:
    /**
     * @param levels  Utilization grid, e.g. {0, 0.25, 0.5, 0.75, 1.0}.
     * @param repeats Measurements averaged per grid point.
     */
    Calibrator(std::vector<double> levels, unsigned repeats);

    /** Fit all P-states of @p source. @return one fit per state. */
    std::vector<LinearFit> calibrate(MeasurementSource &source) const;

    /**
     * Build a complete MachineSpec from a calibration run.
     * @param source     machine under test
     * @param name       name for the produced spec
     * @param off_watts  off power (not measurable through the load loop)
     * @param boot_ticks boot latency for the produced spec
     */
    MachineSpec buildSpec(MeasurementSource &source, const std::string &name,
                          double off_watts, unsigned boot_ticks) const;

  private:
    std::vector<double> levels_;
    unsigned repeats_;
};

} // namespace model
} // namespace nps

#endif // NPS_MODEL_CALIBRATION_H
