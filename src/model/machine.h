/**
 * @file
 * Machine specifications: named server models with their P-state tables and
 * platform-level parameters (off power, boot cost).
 *
 * Two reference machines reproduce the paper's studied systems:
 *  - Blade A: a low-power blade with 5 non-uniformly clustered P-states
 *    (1 GHz .. 533 MHz) and a *large* dynamic power range;
 *  - Server B: an entry-level 2U server with 6 relatively uniform P-states
 *    (2.6 GHz .. 1.0 GHz), high idle power, and a *small* dynamic range.
 *
 * The absolute wattages are synthetic stand-ins for the paper's proprietary
 * calibration data; they preserve every qualitative property the paper
 * states (see DESIGN.md, substitution table).
 */

#ifndef NPS_MODEL_MACHINE_H
#define NPS_MODEL_MACHINE_H

#include <map>
#include <memory>
#include <string>

#include "model/power_model.h"

namespace nps {
namespace model {

/** Static description of one server model. */
class MachineSpec
{
  public:
    /**
     * @param name      Human-readable model name (e.g. "BladeA").
     * @param table     Calibrated P-state table.
     * @param off_watts Residual power when the machine is powered off
     *                  (management controller etc.).
     * @param boot_ticks Simulation ticks a power-on transition takes,
     *                  during which the machine burns idle power but
     *                  serves no work.
     */
    MachineSpec(std::string name, PStateTable table, double off_watts,
                unsigned boot_ticks);

    /** @return model name. */
    const std::string &name() const { return name_; }

    /** @return the power/performance model. */
    const PowerModel &model() const { return model_; }

    /** @return the P-state table. */
    const PStateTable &pstates() const { return model_.pstates(); }

    /** @return residual power when off (watts). */
    double offWatts() const { return off_watts_; }

    /** @return boot latency in simulation ticks. */
    unsigned bootTicks() const { return boot_ticks_; }

    /**
     * @return a copy of this spec with only the extreme P-states (P0 and
     * the slowest), for the Section 5.3 simplification study. The copy is
     * named "<name>-2p".
     */
    MachineSpec extremesOnly() const;

    /** @return a copy with idle power scaled by @p factor at every state,
     * named "<name>-idleX", used for idle-power sensitivity studies. */
    MachineSpec withIdleScaled(double factor) const;

  private:
    std::string name_;
    PowerModel model_;
    double off_watts_;
    unsigned boot_ticks_;
};

/** The paper's low-power blade: 5 P-states, wide power range. */
MachineSpec bladeA();

/** The paper's entry 2U server: 6 P-states, high idle, narrow range. */
MachineSpec serverB();

/** Look up a reference machine by name ("BladeA" or "ServerB"). */
MachineSpec machineByName(const std::string &name);

/**
 * Registry of machine specs used to build heterogeneous clusters: maps a
 * model name to a shared spec so hundreds of servers can reference the same
 * immutable description.
 */
class MachineRegistry
{
  public:
    /** Register (or replace) a spec under its own name. */
    void add(const MachineSpec &spec);

    /** @return the spec registered under @p name; fatal() if missing. */
    std::shared_ptr<const MachineSpec> get(const std::string &name) const;

    /** @return true when a spec with @p name exists. */
    bool contains(const std::string &name) const;

    /** @return a registry preloaded with BladeA and ServerB. */
    static MachineRegistry standard();

  private:
    std::map<std::string, std::shared_ptr<const MachineSpec>> specs_;
};

} // namespace model
} // namespace nps

#endif // NPS_MODEL_MACHINE_H
