/**
 * @file
 * Utilization-based power and performance models for a whole server.
 *
 * Wraps a PStateTable with the conversions the controllers need:
 * power at a (state, utilization) operating point, served work, real vs.
 * apparent utilization, and the per-state slope bounds used by the SM
 * stability analysis (Appendix A).
 */

#ifndef NPS_MODEL_POWER_MODEL_H
#define NPS_MODEL_POWER_MODEL_H

#include <cstddef>

#include "model/pstate.h"

namespace nps {
namespace model {

/**
 * Power/performance model of one server, parameterized by P-state.
 *
 * Utilization conventions used throughout the simulator:
 *  - "real" utilization: demand or consumption expressed as a fraction of
 *    the machine's *full-speed* (P0) capacity; can exceed 1 for demand.
 *  - "apparent" utilization: consumption as a fraction of capacity *at the
 *    current P-state*; saturates at 1.
 */
class PowerModel
{
  public:
    /** Construct over a P-state table (copied in). */
    explicit PowerModel(PStateTable table);

    /** @return the underlying P-state table. */
    const PStateTable &pstates() const { return table_; }

    /** Power (watts) at @p state with apparent utilization @p util. */
    double powerAt(size_t state, double util) const;

    /** Peak power of the machine: P0 at full utilization. */
    double maxPower() const;

    /** Idle power at @p state. */
    double idlePower(size_t state) const;

    /**
     * Served work given real demand @p real_demand (fraction of full-speed
     * capacity, may exceed 1) at @p state. Work is capped by the state's
     * relative speed: served = min(real_demand, relSpeed(state)).
     */
    double servedWork(size_t state, double real_demand) const;

    /**
     * Apparent utilization at @p state for real demand @p real_demand:
     * min(1, real_demand / relSpeed(state)).
     */
    double apparentUtil(size_t state, double real_demand) const;

    /**
     * Translate an apparent utilization measured at @p state back to real
     * (full-speed) utilization: apparent * relSpeed(state). This is the
     * "simple model" the coordinated VMC uses to compare servers running
     * at different power states (Section 3.1).
     */
    double realUtil(size_t state, double apparent_util) const;

    /**
     * Apparent utilization at which power at @p state reaches @p watts;
     * clamped to [0, 1]. Used to invert the power model when allocating
     * budgets. Returns 1 if the state's dynamic range is zero.
     */
    double utilForPower(size_t state, double watts) const;

    /**
     * Estimated power of serving real demand @p real_demand at @p state
     * (combines apparentUtil() and powerAt()).
     */
    double powerForDemand(size_t state, double real_demand) const;

    /**
     * Lowest-power state able to serve @p real_demand without saturating
     * beyond apparent utilization @p util_limit. Falls back to P0 when no
     * state satisfies the limit.
     */
    size_t bestStateForDemand(double real_demand, double util_limit) const;

    /**
     * Upper bound c_max on the power-vs-r_ref slope used by the SM
     * stability condition 0 < beta < 2 / c_max (Appendix A). Conservatively
     * the largest dynamic slope over all states, scaled by the largest
     * relative frequency step.
     */
    double maxPowerSlope() const;

  private:
    PStateTable table_;
};

} // namespace model
} // namespace nps

#endif // NPS_MODEL_POWER_MODEL_H
