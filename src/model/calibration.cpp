#include "model/calibration.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace nps {
namespace model {

LinearFit
fitLine(const std::vector<PowerSample> &samples)
{
    if (samples.size() < 2)
        util::fatal("fitLine: need at least two samples");

    double n = static_cast<double>(samples.size());
    double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
    for (const auto &s : samples) {
        sum_x += s.util;
        sum_y += s.watts;
        sum_xx += s.util * s.util;
        sum_xy += s.util * s.watts;
    }
    double denom = n * sum_xx - sum_x * sum_x;
    if (std::fabs(denom) < 1e-12)
        util::fatal("fitLine: degenerate utilization grid");

    LinearFit fit;
    fit.slope = (n * sum_xy - sum_x * sum_y) / denom;
    fit.intercept = (sum_y - fit.slope * sum_x) / n;

    // R^2 = 1 - SS_res / SS_tot.
    double mean_y = sum_y / n;
    double ss_tot = 0.0, ss_res = 0.0;
    for (const auto &s : samples) {
        double pred = fit.slope * s.util + fit.intercept;
        ss_tot += (s.watts - mean_y) * (s.watts - mean_y);
        ss_res += (s.watts - pred) * (s.watts - pred);
    }
    fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

SimulatedMachine::SimulatedMachine(MachineSpec truth, double noise_watts,
                                   uint64_t seed)
    : truth_(std::move(truth)),
      noise_watts_(noise_watts),
      rng_(seed, "calibration-noise")
{
}

size_t
SimulatedMachine::numPStates() const
{
    return truth_.pstates().size();
}

double
SimulatedMachine::freqMhz(size_t state) const
{
    return truth_.pstates().at(state).freq_mhz;
}

double
SimulatedMachine::measure(size_t state, double util)
{
    double truth = truth_.model().powerAt(state, util);
    double noisy = truth + rng_.gaussian(0.0, noise_watts_);
    return std::max(0.0, noisy);
}

Calibrator::Calibrator(std::vector<double> levels, unsigned repeats)
    : levels_(std::move(levels)), repeats_(repeats)
{
    if (levels_.size() < 2)
        util::fatal("Calibrator: need at least two utilization levels");
    if (repeats_ == 0)
        util::fatal("Calibrator: repeats must be positive");
    for (double l : levels_) {
        if (l < 0.0 || l > 1.0)
            util::fatal("Calibrator: level %f out of [0,1]", l);
    }
}

std::vector<LinearFit>
Calibrator::calibrate(MeasurementSource &source) const
{
    std::vector<LinearFit> fits;
    for (size_t state = 0; state < source.numPStates(); ++state) {
        std::vector<PowerSample> samples;
        for (double level : levels_) {
            double acc = 0.0;
            for (unsigned r = 0; r < repeats_; ++r)
                acc += source.measure(state, level);
            samples.push_back(
                {level, acc / static_cast<double>(repeats_)});
        }
        fits.push_back(fitLine(samples));
    }
    return fits;
}

MachineSpec
Calibrator::buildSpec(MeasurementSource &source, const std::string &name,
                      double off_watts, unsigned boot_ticks) const
{
    auto fits = calibrate(source);
    std::vector<PState> states;
    double prev_peak = 0.0;
    double prev_idle = 0.0;
    for (size_t i = 0; i < fits.size(); ++i) {
        PState s;
        s.freq_mhz = source.freqMhz(i);
        s.dyn_watts = std::max(0.0, fits[i].slope);
        s.idle_watts = std::max(0.0, fits[i].intercept);
        if (i > 0) {
            // Measurement noise can produce tiny monotonicity violations
            // the PStateTable invariants would reject; pin the fitted
            // curves back under the faster state's envelope.
            s.idle_watts = std::min(s.idle_watts, prev_idle);
            if (s.idle_watts + s.dyn_watts > prev_peak)
                s.dyn_watts = std::max(0.0, prev_peak - s.idle_watts);
        }
        prev_peak = s.idle_watts + s.dyn_watts;
        prev_idle = s.idle_watts;
        states.push_back(s);
    }
    return MachineSpec(name, PStateTable(std::move(states)), off_watts,
                       boot_ticks);
}

} // namespace model
} // namespace nps
