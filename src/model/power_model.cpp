#include "model/power_model.h"

#include <algorithm>

#include "util/logging.h"
#include "util/stats.h"

namespace nps {
namespace model {

PowerModel::PowerModel(PStateTable table)
    : table_(std::move(table))
{
}

double
PowerModel::powerAt(size_t state, double util) const
{
    return table_.at(state).powerAt(util);
}

double
PowerModel::maxPower() const
{
    return table_.fastest().peakPower();
}

double
PowerModel::idlePower(size_t state) const
{
    return table_.at(state).idle_watts;
}

double
PowerModel::servedWork(size_t state, double real_demand) const
{
    if (real_demand < 0.0)
        util::panic("servedWork: negative demand %f", real_demand);
    return std::min(real_demand, table_.relSpeed(state));
}

double
PowerModel::apparentUtil(size_t state, double real_demand) const
{
    if (real_demand < 0.0)
        util::panic("apparentUtil: negative demand %f", real_demand);
    return std::min(1.0, real_demand / table_.relSpeed(state));
}

double
PowerModel::realUtil(size_t state, double apparent_util) const
{
    return apparent_util * table_.relSpeed(state);
}

double
PowerModel::utilForPower(size_t state, double watts) const
{
    const PState &s = table_.at(state);
    if (s.dyn_watts <= 0.0)
        return 1.0;
    return util::clamp((watts - s.idle_watts) / s.dyn_watts, 0.0, 1.0);
}

double
PowerModel::powerForDemand(size_t state, double real_demand) const
{
    return powerAt(state, apparentUtil(state, real_demand));
}

size_t
PowerModel::bestStateForDemand(double real_demand, double util_limit) const
{
    size_t best = 0;
    double best_power = powerForDemand(0, real_demand);
    bool found = apparentUtil(0, real_demand) <= util_limit;
    for (size_t i = 1; i < table_.size(); ++i) {
        if (apparentUtil(i, real_demand) > util_limit)
            continue;
        double p = powerForDemand(i, real_demand);
        if (!found || p < best_power) {
            best = i;
            best_power = p;
            found = true;
        }
    }
    return best;
}

double
PowerModel::maxPowerSlope() const
{
    // pow depends on r_ref through the EC's frequency choice; the chain
    // rule slope is bounded by the steepest dynamic slope amplified by the
    // largest frequency ratio between adjacent states.
    double max_dyn = 0.0;
    for (size_t i = 0; i < table_.size(); ++i)
        max_dyn = std::max(max_dyn, table_.at(i).dyn_watts);
    double max_step = 1.0;
    for (size_t i = 1; i < table_.size(); ++i) {
        double step = table_.at(i - 1).freq_mhz / table_.at(i).freq_mhz;
        max_step = std::max(max_step, step);
    }
    return max_dyn * max_step;
}

} // namespace model
} // namespace nps
