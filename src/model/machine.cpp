#include "model/machine.h"

#include "util/logging.h"

namespace nps {
namespace model {

MachineSpec::MachineSpec(std::string name, PStateTable table,
                         double off_watts, unsigned boot_ticks)
    : name_(std::move(name)),
      model_(std::move(table)),
      off_watts_(off_watts),
      boot_ticks_(boot_ticks)
{
    if (off_watts_ < 0.0)
        util::fatal("MachineSpec %s: negative off power", name_.c_str());
}

MachineSpec
MachineSpec::extremesOnly() const
{
    return MachineSpec(name_ + "-2p", pstates().extremesOnly(), off_watts_,
                       boot_ticks_);
}

MachineSpec
MachineSpec::withIdleScaled(double factor) const
{
    std::vector<PState> states;
    for (size_t i = 0; i < pstates().size(); ++i) {
        PState s = pstates().at(i);
        s.idle_watts *= factor;
        states.push_back(s);
    }
    return MachineSpec(name_ + "-idleX", PStateTable(std::move(states)),
                       off_watts_ * factor, boot_ticks_);
}

MachineSpec
bladeA()
{
    // 5 non-uniformly clustered P-states; wide dynamic range (peak power
    // falls ~40% from P0 to P4) and moderate idle fraction. Frequencies
    // are the paper's: 1 GHz, 833, 700, 600, 533 MHz.
    std::vector<PState> states = {
        {1000.0, 43.0, 42.0},  // P0: 85 W peak
        { 833.0, 36.0, 36.0},  // P1: 72 W
        { 700.0, 30.0, 32.0},  // P2: 62 W
        { 600.0, 26.0, 29.0},  // P3: 55 W
        { 533.0, 23.0, 27.0},  // P4: 50 W
    };
    return MachineSpec("BladeA", PStateTable(std::move(states)), 2.0, 8);
}

MachineSpec
serverB()
{
    // 6 relatively uniform P-states; high idle power and a narrow dynamic
    // range (peak power falls only ~21% from P0 to P5, roughly half of
    // Blade A's relative range). Frequencies are the paper's: 2.6, 2.4,
    // 2.2, 2.0, 1.8, 1.0 GHz.
    std::vector<PState> states = {
        {2600.0, 65.0, 195.0},  // P0: 260 W peak
        {2400.0, 61.0, 191.0},  // P1: 252 W
        {2200.0, 57.0, 188.0},  // P2: 245 W
        {2000.0, 54.0, 185.0},  // P3: 239 W
        {1800.0, 51.0, 182.0},  // P4: 233 W
        {1000.0, 40.0, 165.0},  // P5: 205 W
    };
    return MachineSpec("ServerB", PStateTable(std::move(states)), 5.0, 12);
}

MachineSpec
machineByName(const std::string &name)
{
    if (name == "BladeA")
        return bladeA();
    if (name == "ServerB")
        return serverB();
    util::fatal("machineByName: unknown machine '%s'", name.c_str());
}

void
MachineRegistry::add(const MachineSpec &spec)
{
    specs_[spec.name()] = std::make_shared<const MachineSpec>(spec);
}

std::shared_ptr<const MachineSpec>
MachineRegistry::get(const std::string &name) const
{
    auto it = specs_.find(name);
    if (it == specs_.end())
        util::fatal("MachineRegistry: unknown machine '%s'", name.c_str());
    return it->second;
}

bool
MachineRegistry::contains(const std::string &name) const
{
    return specs_.count(name) > 0;
}

MachineRegistry
MachineRegistry::standard()
{
    MachineRegistry reg;
    reg.add(bladeA());
    reg.add(serverB());
    return reg;
}

} // namespace model
} // namespace nps
