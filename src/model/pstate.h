/**
 * @file
 * P-state (ACPI performance state) definitions.
 *
 * A P-state couples a clock frequency with a calibrated linear power model
 * and a linear performance model, following the paper's "Models" equations:
 *
 *     pow  = g_p(r) = c_p * r + d_p        (watts, r = utilization in [0,1])
 *     perf = h_p(r) = a_p * r              (fraction of max machine work)
 *
 * where p indexes the P-state, c_p is the dynamic power slope, d_p the idle
 * power, and a_p = f_p / f_0 the relative throughput of the state.
 */

#ifndef NPS_MODEL_PSTATE_H
#define NPS_MODEL_PSTATE_H

#include <cstddef>
#include <string>
#include <vector>

namespace nps {
namespace model {

/** One ACPI performance state with its calibrated linear models. */
struct PState
{
    /** Clock frequency in MHz. P0 has the highest frequency. */
    double freq_mhz = 0.0;

    /** Dynamic power slope c_p in watts per unit utilization. */
    double dyn_watts = 0.0;

    /** Idle power d_p in watts (power at zero utilization). */
    double idle_watts = 0.0;

    /** Power at utilization @p util in [0,1]: c_p * util + d_p. */
    double powerAt(double util) const;

    /** Peak power of this state (utilization 1). */
    double peakPower() const { return dyn_watts + idle_watts; }
};

/**
 * Ordered set of P-states for one processor: index 0 is P0 (highest
 * frequency); indices increase as frequency decreases.
 *
 * Maintains the monotonicity invariants the controllers rely on: strictly
 * decreasing frequency and non-increasing power envelope across states.
 */
class PStateTable
{
  public:
    /**
     * Build from a list of states.
     * Calls fatal() if the list is empty, frequencies are not strictly
     * decreasing, or any state's peak power exceeds that of a faster state
     * (which would break controller monotonicity assumptions).
     */
    explicit PStateTable(std::vector<PState> states);

    /** @return number of P-states. */
    size_t size() const { return states_.size(); }

    /** @return the state at @p index. @pre index < size() */
    const PState &at(size_t index) const;

    /** @return P0, the highest-frequency state. */
    const PState &fastest() const { return states_.front(); }

    /** @return the lowest-frequency state. */
    const PState &slowest() const { return states_.back(); }

    /** Index of the lowest-frequency state. */
    size_t slowestIndex() const { return states_.size() - 1; }

    /**
     * Quantize a desired continuous frequency (MHz) to a P-state index.
     * Picks the slowest state whose frequency still covers @p freq_mhz
     * (i.e., rounds capacity up so demand can still be served); clamps to
     * the table's range.
     */
    size_t quantizeUp(double freq_mhz) const;

    /** Quantize to the state with the nearest frequency. */
    size_t quantizeNearest(double freq_mhz) const;

    /** Relative throughput a_p = f_p / f_0 of state @p index. */
    double relSpeed(size_t index) const;

    /**
     * @return a reduced table containing only the states at the given
     * indices (used by the Section 5.3 "number of P-states" study).
     * Indices must be valid and strictly increasing.
     */
    PStateTable subset(const std::vector<size_t> &indices) const;

    /**
     * @return a two-state table with only the extreme states (P0 and the
     * slowest), the simplified design Section 5.3 advocates.
     */
    PStateTable extremesOnly() const;

  private:
    std::vector<PState> states_;
};

} // namespace model
} // namespace nps

#endif // NPS_MODEL_PSTATE_H
