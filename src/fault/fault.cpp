#include "fault/fault.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "util/logging.h"
#include "util/random.h"

namespace nps {
namespace fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Outage: return "outage";
    case FaultKind::DropBudget: return "drop";
    case FaultKind::StaleBudget: return "stale";
    case FaultKind::StuckPState: return "stuck";
    case FaultKind::UtilNoise: return "noise";
    case FaultKind::UtilFreeze: return "freeze";
    }
    return "?";
}

const char *
levelName(Level level)
{
    switch (level) {
    case Level::GM: return "gm";
    case Level::EM: return "em";
    case Level::SM: return "sm";
    case Level::EC: return "ec";
    case Level::VMC: return "vmc";
    case Level::CAP: return "cap";
    }
    return "?";
}

const char *
linkName(Link link)
{
    switch (link) {
    case Link::GmToEm: return "gm-em";
    case Link::GmToSm: return "gm-sm";
    case Link::EmToSm: return "em-sm";
    case Link::GmToGm: return "gm-gm";
    }
    return "?";
}

namespace {

std::string
idText(long id)
{
    return id == FaultEvent::kAll ? "*" : std::to_string(id);
}

std::string
numText(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

Level
levelFromName(const std::string &name)
{
    for (Level l : {Level::GM, Level::EM, Level::SM, Level::EC,
                    Level::VMC, Level::CAP}) {
        if (name == levelName(l))
            return l;
    }
    util::fatal("faults: unknown level '%s'", name.c_str());
}

Link
linkFromName(const std::string &name)
{
    for (Link l : {Link::GmToEm, Link::GmToSm, Link::EmToSm,
                   Link::GmToGm}) {
        if (name == linkName(l))
            return l;
    }
    util::fatal("faults: unknown link '%s'", name.c_str());
}

long
idFromText(const std::string &text)
{
    if (text == "*")
        return FaultEvent::kAll;
    try {
        return std::stol(text);
    } catch (...) {
        util::fatal("faults: bad target id '%s'", text.c_str());
    }
}

size_t
tickFromText(const std::string &text)
{
    try {
        return static_cast<size_t>(std::stoull(text));
    } catch (...) {
        util::fatal("faults: bad tick '%s'", text.c_str());
    }
}

double
magFromText(const std::string &text)
{
    try {
        return std::stod(text);
    } catch (...) {
        util::fatal("faults: bad magnitude '%s'", text.c_str());
    }
}

/** Parse one whitespace-separated clause into an event. */
FaultEvent
parseClause(const std::vector<std::string> &tok, const std::string &raw)
{
    auto want = [&](size_t lo, size_t hi) {
        if (tok.size() < lo || tok.size() > hi)
            util::fatal("faults: malformed clause '%s'", raw.c_str());
    };
    FaultEvent e;
    const std::string &verb = tok[0];
    if (verb == "outage") {
        want(5, 5);
        e.kind = FaultKind::Outage;
        e.level = levelFromName(tok[1]);
        e.id = idFromText(tok[2]);
        e.start = tickFromText(tok[3]);
        e.end = tickFromText(tok[4]);
    } else if (verb == "drop" || verb == "stale") {
        want(5, verb == "drop" ? 6 : 5);
        e.kind = verb == "drop" ? FaultKind::DropBudget
                                : FaultKind::StaleBudget;
        e.link = linkFromName(tok[1]);
        e.id = idFromText(tok[2]);
        e.start = tickFromText(tok[3]);
        e.end = tickFromText(tok[4]);
        if (tok.size() == 6)
            e.magnitude = magFromText(tok[5]);
    } else if (verb == "stuck" || verb == "freeze") {
        want(4, 4);
        e.kind = verb == "stuck" ? FaultKind::StuckPState
                                 : FaultKind::UtilFreeze;
        e.id = idFromText(tok[1]);
        e.start = tickFromText(tok[2]);
        e.end = tickFromText(tok[3]);
    } else if (verb == "noise") {
        want(5, 5);
        e.kind = FaultKind::UtilNoise;
        e.id = idFromText(tok[1]);
        e.start = tickFromText(tok[2]);
        e.end = tickFromText(tok[3]);
        e.magnitude = magFromText(tok[4]);
    } else {
        util::fatal("faults: unknown fault verb '%s'", verb.c_str());
    }
    if (e.end < e.start)
        util::fatal("faults: event ends before it starts: '%s'",
                    raw.c_str());
    return e;
}

} // namespace

std::string
FaultEvent::toText() const
{
    std::ostringstream out;
    out << faultKindName(kind) << ' ';
    switch (kind) {
    case FaultKind::Outage:
        out << levelName(level) << ' ' << idText(id) << ' ' << start
            << ' ' << end;
        break;
    case FaultKind::DropBudget:
        out << linkName(link) << ' ' << idText(id) << ' ' << start << ' '
            << end << ' ' << numText(magnitude);
        break;
    case FaultKind::StaleBudget:
        out << linkName(link) << ' ' << idText(id) << ' ' << start << ' '
            << end;
        break;
    case FaultKind::StuckPState:
    case FaultKind::UtilFreeze:
        out << idText(id) << ' ' << start << ' ' << end;
        break;
    case FaultKind::UtilNoise:
        out << idText(id) << ' ' << start << ' ' << end << ' '
            << numText(magnitude);
        break;
    }
    return out.str();
}

bool
RandomFaultConfig::any() const
{
    return outages > 0 || drops > 0 || stales > 0 || stucks > 0 ||
           noises > 0 || freezes > 0;
}

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events))
{
}

FaultSchedule
FaultSchedule::parse(const std::string &text)
{
    FaultSchedule out;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        // Strip comments, then split the remainder into ';' clauses.
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream clauses(line);
        std::string clause;
        while (std::getline(clauses, clause, ';')) {
            std::istringstream in(clause);
            std::vector<std::string> tok;
            std::string t;
            while (in >> t)
                tok.push_back(t);
            if (!tok.empty())
                out.add(parseClause(tok, clause));
        }
    }
    return out;
}

FaultSchedule
FaultSchedule::randomized(const RandomFaultConfig &cfg, uint64_t seed,
                          size_t num_servers, size_t num_enclosures)
{
    if (num_servers == 0)
        util::fatal("faults: randomized campaign over zero servers");
    FaultSchedule out;
    util::Rng rng(seed, "fault-campaign");
    size_t horizon = cfg.horizon > 0 ? cfg.horizon : 1;

    auto window = [&](unsigned mean_len) {
        size_t start = 1 + rng.below(horizon);
        size_t len = 1 + rng.below(std::max(1u, 2 * mean_len));
        return std::pair<size_t, size_t>(start, start + len);
    };
    auto pickLink = [&](FaultEvent &e) {
        // Links into enclosures exist only when enclosures do.
        switch (num_enclosures > 0 ? rng.below(3) : 1) {
        case 0:
            e.link = Link::GmToEm;
            e.id = static_cast<long>(rng.below(num_enclosures));
            break;
        case 1:
            e.link = Link::GmToSm;
            e.id = static_cast<long>(rng.below(num_servers));
            break;
        default:
            e.link = Link::EmToSm;
            e.id = static_cast<long>(rng.below(num_servers));
            break;
        }
    };

    for (unsigned i = 0; i < cfg.outages; ++i) {
        FaultEvent e;
        e.kind = FaultKind::Outage;
        // Per-server levels dominate the draw so campaigns over large
        // fleets exercise many distinct controllers.
        switch (rng.below(num_enclosures > 0 ? 5 : 4)) {
        case 0: e.level = Level::GM; e.id = 0; break;
        case 1: e.level = Level::VMC; e.id = 0; break;
        case 2:
            e.level = Level::SM;
            e.id = static_cast<long>(rng.below(num_servers));
            break;
        case 3:
            e.level = Level::EC;
            e.id = static_cast<long>(rng.below(num_servers));
            break;
        default:
            e.level = Level::EM;
            e.id = static_cast<long>(rng.below(num_enclosures));
            break;
        }
        std::tie(e.start, e.end) = window(cfg.outage_len);
        out.add(e);
    }
    for (unsigned i = 0; i < cfg.drops; ++i) {
        FaultEvent e;
        e.kind = FaultKind::DropBudget;
        pickLink(e);
        std::tie(e.start, e.end) = window(cfg.drop_len);
        e.magnitude = cfg.drop_prob;
        out.add(e);
    }
    for (unsigned i = 0; i < cfg.stales; ++i) {
        FaultEvent e;
        e.kind = FaultKind::StaleBudget;
        pickLink(e);
        std::tie(e.start, e.end) = window(cfg.stale_len);
        out.add(e);
    }
    for (unsigned i = 0; i < cfg.stucks; ++i) {
        FaultEvent e;
        e.kind = FaultKind::StuckPState;
        e.id = static_cast<long>(rng.below(num_servers));
        std::tie(e.start, e.end) = window(cfg.stuck_len);
        out.add(e);
    }
    for (unsigned i = 0; i < cfg.noises; ++i) {
        FaultEvent e;
        e.kind = FaultKind::UtilNoise;
        e.id = static_cast<long>(rng.below(num_servers));
        std::tie(e.start, e.end) = window(cfg.noise_len);
        e.magnitude = cfg.noise_sigma;
        out.add(e);
    }
    for (unsigned i = 0; i < cfg.freezes; ++i) {
        FaultEvent e;
        e.kind = FaultKind::UtilFreeze;
        e.id = static_cast<long>(rng.below(num_servers));
        std::tie(e.start, e.end) = window(cfg.freeze_len);
        out.add(e);
    }
    return out;
}

void
FaultSchedule::add(const FaultEvent &event)
{
    events_.push_back(event);
}

void
FaultSchedule::merge(const FaultSchedule &other)
{
    events_.insert(events_.end(), other.events_.begin(),
                   other.events_.end());
}

size_t
FaultSchedule::lastEnd() const
{
    size_t last = 0;
    for (const auto &e : events_)
        last = std::max(last, e.end);
    return last;
}

std::string
FaultSchedule::toText(const std::string &sep) const
{
    std::string out;
    for (size_t i = 0; i < events_.size(); ++i) {
        if (i > 0)
            out += sep;
        out += events_[i].toText();
    }
    return out;
}

} // namespace fault
} // namespace nps
