/**
 * @file
 * FaultInjector: the runtime query surface of a materialized
 * FaultSchedule, plus the degradation bookkeeping the controllers keep
 * while riding out faults.
 *
 * Determinism contract (preserves PR 1's bit-identity across thread
 * counts): the injector is immutable after construction and every query
 * is a pure function of (schedule, seed, target, tick). Probabilistic
 * faults (per-send budget drops, sensor noise) derive their randomness
 * from a counter-mode RNG keyed by (seed, kind, target, tick) — never
 * from shared mutable RNG state, wall clock, or thread identity — so a
 * shardable actor on any worker thread sees exactly the serial answer.
 */

#ifndef NPS_FAULT_INJECTOR_H
#define NPS_FAULT_INJECTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ckpt/snapshot.h"
#include "fault/fault.h"

namespace nps {
namespace fault {

/**
 * Degradation counters of one controller (or, aggregated, of a whole
 * deployment): how often the graceful-degradation paths fired. Surfaced
 * through sim::MetricsSummary and the Coordinator.
 */
struct DegradeStats
{
    unsigned long outage_ticks = 0;    //!< ticks spent down
    unsigned long outage_steps = 0;    //!< control steps skipped while down
    unsigned long restarts = 0;        //!< cold restarts after an outage
    unsigned long lease_expiries = 0;  //!< budget leases that lapsed
    unsigned long lease_fallback_steps = 0; //!< steps on the expired-lease cap
    unsigned long ec_fallback_steps = 0; //!< SM direct-P-state steps (EC down)
    unsigned long dropped_budgets = 0; //!< budget sends lost on a link
    unsigned long stale_budgets = 0;   //!< budget sends delivered stale
    unsigned long stuck_actuations = 0; //!< P-state writes swallowed
    unsigned long noisy_reads = 0;     //!< sensor reads perturbed/frozen
    /// @name netem wire degradation (docs/NETWORK_FAULTS.md)
    /// @{
    unsigned long netem_delayed = 0;   //!< sends parked on the virtual wire
    unsigned long netem_late_deliveries = 0; //!< delayed sends that arrived
    unsigned long netem_expired = 0;   //!< delayed past the grant deadline
    unsigned long netem_partition_drops = 0; //!< sends lost to a partition
    unsigned long netem_reorder_drops = 0; //!< late sends a fresher one beat
    /// @}

    DegradeStats &operator+=(const DegradeStats &o);

    /** @return true when every counter is zero. */
    bool none() const;

    /** Serialize all counters (checkpointing). */
    void saveState(ckpt::SectionWriter &w) const;

    /** Restore all counters (checkpoint restore). */
    void loadState(ckpt::SectionReader &r);
};

/**
 * Read-only fault oracle handed to the controllers and the recorder.
 */
class FaultInjector
{
  public:
    /**
     * @param schedule The materialized campaign.
     * @param seed     Seed of the per-(target, tick) randomness streams.
     */
    FaultInjector(FaultSchedule schedule, uint64_t seed);

    /** The campaign. */
    const FaultSchedule &schedule() const { return schedule_; }

    /** @return true when controller @p id at @p level is down at @p tick. */
    bool down(Level level, long id, size_t tick) const;

    /**
     * Roll the per-send drop coin for the budget message to child @p id
     * on @p link at @p tick. Deterministic in its arguments.
     */
    bool budgetDropped(Link link, long id, size_t tick) const;

    /** @return true when @p link delivers child @p id a stale grant. */
    bool budgetStale(Link link, long id, size_t tick) const;

    /** @return true when server @p id's P-state actuator ignores writes. */
    bool pstateStuck(long id, size_t tick) const;

    /** @return true when server @p id's utilization sensor is frozen. */
    bool utilFrozen(long id, size_t tick) const;

    /**
     * Additive sensor-noise deviate for server @p id at @p tick: a
     * Gaussian draw scaled by the active UtilNoise event's sigma, 0.0
     * when no such event is active. Deterministic in its arguments.
     */
    double utilNoise(long id, size_t tick) const;

    /** Number of schedule events active at @p tick (for telemetry). */
    size_t activeCount(size_t tick) const;

  private:
    const FaultEvent *find(FaultKind kind, size_t tick, Level level,
                           Link link, long id) const;

    FaultSchedule schedule_;
    uint64_t seed_;
    /** Events bucketed by kind for cheap scans. */
    std::vector<FaultEvent> by_kind_[6];
};

} // namespace fault
} // namespace nps

#endif // NPS_FAULT_INJECTOR_H
