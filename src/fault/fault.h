/**
 * @file
 * Fault model of the coordination stack: the failure scenarios a real
 * deployment of the paper's GM→EM→SM→EC→VMC hierarchy must survive.
 *
 * Faults are *events*: half-open tick intervals [start, end) during which
 * one failure mode is active against one target (or a whole level). The
 * supported modes are
 *
 *   Outage      — a controller at any level (GM, EM, SM, EC, VMC, CAP) is
 *                 down: it neither observes nor steps, and restarts cold
 *                 when the interval ends;
 *   DropBudget  — budget recommendations on a GM→EM, GM→SM, EM→SM, or
 *                 GM→GM link are lost with a given probability per send;
 *   StaleBudget — the link delivers the *previous* epoch's grant instead
 *                 of the fresh one (a delayed/stale management message);
 *   StuckPState — the P-state actuator of a server ignores writes (a
 *                 stuck/lagged firmware actuator);
 *   UtilNoise   — the utilization sensor reads with additive Gaussian
 *                 noise of the event's sigma;
 *   UtilFreeze  — the utilization sensor is frozen at its last pre-fault
 *                 reading (stale telemetry).
 *
 * A FaultSchedule is the complete campaign: scripted events, plus events
 * generated from a seeded random campaign description. Schedules are
 * fully materialized before the run, so every runtime query is read-only
 * and the PR 1 bit-identity guarantee holds across thread counts
 * (docs/FAULTS.md).
 */

#ifndef NPS_FAULT_FAULT_H
#define NPS_FAULT_FAULT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nps {
namespace fault {

/** Failure modes (see file comment). */
enum class FaultKind
{
    Outage,
    DropBudget,
    StaleBudget,
    StuckPState,
    UtilNoise,
    UtilFreeze,
};

/** Controller levels an Outage can target. */
enum class Level
{
    GM,
    EM,
    SM,
    EC,
    VMC,
    CAP,
};

/** Budget-message links DropBudget/StaleBudget can target. */
enum class Link
{
    GmToEm,  //!< group manager -> enclosure manager (child = enclosure id)
    GmToSm,  //!< group manager -> server manager (child = server id)
    EmToSm,  //!< enclosure manager -> blade SM (child = server id)
    GmToGm,  //!< parent GM -> child GM (child = child GM id)
};

/** Script/diagnostic name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** Script/diagnostic name of a level. */
const char *levelName(Level level);

/** Script/diagnostic name of a link. */
const char *linkName(Link link);

/**
 * One fault event: @p kind active against one target during the half-open
 * tick interval [start, end).
 */
struct FaultEvent
{
    /** Wildcard id: the event applies to every instance of the target. */
    static constexpr long kAll = -1;

    FaultKind kind = FaultKind::Outage;
    Level level = Level::SM;  //!< Outage / StuckPState / Util* target level
    Link link = Link::EmToSm; //!< DropBudget / StaleBudget target link
    long id = kAll;           //!< target instance id, or kAll
    size_t start = 0;         //!< first tick the fault is active
    size_t end = 0;           //!< first tick the fault is inactive
    /**
     * Kind-specific magnitude: drop probability per send (DropBudget),
     * sensor noise sigma (UtilNoise); unused otherwise.
     */
    double magnitude = 1.0;

    /** @return true when the event is active at @p tick. */
    bool activeAt(size_t tick) const { return tick >= start && tick < end; }

    /** @return the one-line script form (parseable by parseSchedule). */
    std::string toText() const;
};

/**
 * Seeded-random campaign description: how many events of each kind to
 * scatter over a horizon. All zero (the default) generates nothing.
 */
struct RandomFaultConfig
{
    size_t horizon = 1000;    //!< ticks the campaign spreads over
    unsigned outages = 0;     //!< controller outages (any level)
    unsigned outage_len = 50; //!< mean outage duration (ticks)
    unsigned drops = 0;       //!< budget-drop windows (any link)
    unsigned drop_len = 50;   //!< mean drop-window duration
    double drop_prob = 1.0;   //!< per-send drop probability in a window
    unsigned stales = 0;      //!< stale-budget windows (any link)
    unsigned stale_len = 50;  //!< mean stale-window duration
    unsigned stucks = 0;      //!< stuck-P-state windows
    unsigned stuck_len = 25;  //!< mean stuck-window duration
    unsigned noises = 0;      //!< noisy-telemetry windows
    unsigned noise_len = 50;  //!< mean noise-window duration
    double noise_sigma = 0.1; //!< sensor noise sigma in a window
    unsigned freezes = 0;     //!< frozen-telemetry windows
    unsigned freeze_len = 50; //!< mean freeze-window duration

    /** @return true when any event count is non-zero. */
    bool any() const;
};

/**
 * A complete, materialized fault campaign.
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /** A schedule holding exactly @p events. */
    explicit FaultSchedule(std::vector<FaultEvent> events);

    /**
     * Parse the event script @p text: one event per line (or per
     * ';'-separated clause), '#' comments. Grammar (docs/FAULTS.md):
     *
     *   outage <gm|em|sm|ec|vmc|cap> <id|*> <start> <end>
     *   drop   <gm-em|gm-sm|em-sm|gm-gm> <id|*> <start> <end> [prob]
     *   stale  <gm-em|gm-sm|em-sm|gm-gm> <id|*> <start> <end>
     *   stuck  <id|*> <start> <end>
     *   noise  <id|*> <start> <end> <sigma>
     *   freeze <id|*> <start> <end>
     *
     * fatal() on malformed input.
     */
    static FaultSchedule parse(const std::string &text);

    /**
     * Generate a seeded-random campaign over a cluster of @p num_servers
     * servers and @p num_enclosures enclosures. Deterministic in
     * (@p cfg, @p seed): wall clock and thread count never enter.
     */
    static FaultSchedule randomized(const RandomFaultConfig &cfg,
                                    uint64_t seed, size_t num_servers,
                                    size_t num_enclosures);

    /** Append one event. */
    void add(const FaultEvent &event);

    /** Append every event of @p other. */
    void merge(const FaultSchedule &other);

    /** The events, in insertion order. */
    const std::vector<FaultEvent> &events() const { return events_; }

    /** @return true when the schedule holds no events. */
    bool empty() const { return events_.empty(); }

    /** First tick at which no event is active anymore (0 when empty). */
    size_t lastEnd() const;

    /**
     * Render as a script parse() accepts, clauses joined by @p sep
     * (use "\n" for files, "; " for inline INI values).
     */
    std::string toText(const std::string &sep = "\n") const;

  private:
    std::vector<FaultEvent> events_;
};

/**
 * The [faults] configuration block: everything needed to build the
 * injector for one deployment. Carried inside core::CoordinationConfig.
 */
struct FaultSetup
{
    /** Master switch: when false the fault layer is entirely absent and
     * the simulation is bit-identical to a build without it. */
    bool enabled = false;

    /** Seed of the fault RNG streams (random campaign, drop coin flips,
     * sensor noise). Independent of the trace seed. */
    uint64_t seed = 1;

    /** Inline event script (FaultSchedule::parse grammar). */
    std::string script;

    /** Seeded-random campaign generated on top of the script. */
    RandomFaultConfig random;

    /** @return true when enabled with at least one fault source. */
    bool
    anyFaults() const
    {
        return enabled && (!script.empty() || random.any());
    }
};

} // namespace fault
} // namespace nps

#endif // NPS_FAULT_FAULT_H
