/**
 * @file
 * StreamHealth: the liveness oracle of an online telemetry feed
 * (src/stream/), expressed in the fault layer's vocabulary so the
 * degradation machinery treats a silent stream exactly like a lost
 * budget link.
 *
 * The online engine's missing-sample policy (docs/STREAMING.md) is
 * deliberately not a new mechanism: when a server's telemetry stream
 * has no sample for the current tick, every budget link targeting that
 * server treats its sends as dropped — counted in the sender's
 * DegradeStats like a wire loss, never delivered — so the receiving
 * ServerManager's budget lease ages and eventually falls back to its
 * conservative local cap, precisely the PR-2 drop-campaign behavior.
 * The recorder's `faults` column likewise adds the number of silent
 * streams to the injector's active-event count.
 *
 * Implemented by stream::ClusterFeed; queried on the engine thread only
 * (budget links send from global actors, the recorder observes
 * serially), and per-tick answers are precomputed when the tick is
 * staged, so queries are pure reads.
 */

#ifndef NPS_FAULT_HEALTH_H
#define NPS_FAULT_HEALTH_H

#include <cstddef>

namespace nps {
namespace fault {

/**
 * Read-only per-tick stream-liveness oracle.
 */
class StreamHealth
{
  public:
    virtual ~StreamHealth() = default;

    /**
     * @return true when server @p server_id's telemetry stream supplied
     * no sample for @p tick (its hosted VMs' demand had to be filled by
     * the missing-sample policy).
     */
    virtual bool silent(long server_id, size_t tick) const = 0;

    /** Number of silent streams at @p tick (telemetry / recorder). */
    virtual size_t silentCount(size_t tick) const = 0;
};

} // namespace fault
} // namespace nps

#endif // NPS_FAULT_HEALTH_H
