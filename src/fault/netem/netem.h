/**
 * @file
 * Deterministic network emulation for the control plane
 * (docs/NETWORK_FAULTS.md).
 *
 * Where the fault layer (fault/fault.h) models *logical* failures —
 * messages silently lost or replayed stale — netem models the *wire*:
 * latency, reordering, duplication, byte corruption, and partitions on
 * the budget links of the GM→EM→SM hierarchy. Events are half-open tick
 * intervals [start, end) targeting a link class (gm-em, gm-sm, em-sm,
 * gm-gm), a process rank's links (rank:N), or everything (*).
 *
 *   delay     — each send is queued and delivered base..base+jitter
 *               ticks later at the tick barrier (never mid-tick);
 *   dup       — each send is additionally written to the wire a second
 *               time (the receiver's duplicate window discards it);
 *   corrupt   — a byte-flipped copy of the frame precedes the clean
 *               one on the wire (the NPSF CRC rejects it and the
 *               decoder resyncs);
 *   partition — every send on the target is dropped outright, feeding
 *               the lease/fallback degradation ladder until the heal.
 *
 * Determinism contract: NetemModel is immutable and every query is a
 * pure function of (schedule, seed, link, seq) — per-send randomness
 * is counter-mode keyed exactly like FaultInjector, so a schedule
 * resolves identically at any thread count and under any process
 * layout, and `--plan` stays byte-identical to `--distributed`.
 */

#ifndef NPS_FAULT_NETEM_NETEM_H
#define NPS_FAULT_NETEM_NETEM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"

namespace nps {
namespace fault {
namespace netem {

/** Wire-failure modes (see file comment). */
enum class NetemKind
{
    Delay,
    Duplicate,
    Corrupt,
    Partition,
};

/** Script/diagnostic name of a netem kind. */
const char *netemKindName(NetemKind kind);

/**
 * One netem event: @p kind active against one target during the
 * half-open tick interval [start, end).
 */
struct NetemEvent
{
    NetemKind kind = NetemKind::Delay;
    /** Target selector: exactly one of (all, by_rank, link class). */
    bool all = false;     //!< '*': every eligible link
    bool by_rank = false; //!< 'rank:N': links owned by process rank N
    Link link = Link::GmToEm; //!< link-class target (when !all && !by_rank)
    int rank = 0;             //!< rank target (when by_rank)
    size_t start = 0;         //!< first tick the event is active
    size_t end = 0;           //!< first tick the event is inactive
    /**
     * Kind-specific magnitudes: base delay in ticks and jitter span
     * (Delay draws base..base+jitter inclusive); per-send probability
     * in `a` (Duplicate, Corrupt); unused for Partition.
     */
    double a = 0.0;
    double b = 0.0;

    /** @return true when the event is active at @p tick. */
    bool activeAt(size_t tick) const { return tick >= start && tick < end; }

    /** @return true when the event targets (@p cls, @p owner_rank). */
    bool
    matches(Link cls, int owner_rank) const
    {
        if (all)
            return true;
        if (by_rank)
            return rank == owner_rank;
        return link == cls;
    }

    /** @return the one-line script form (parseable by parse()). */
    std::string toText() const;
};

/**
 * A complete, materialized netem campaign.
 */
class NetemSchedule
{
  public:
    NetemSchedule() = default;

    /** A schedule holding exactly @p events. */
    explicit NetemSchedule(std::vector<NetemEvent> events);

    /**
     * Parse the event script @p text: one event per line (or per
     * ';'-separated clause), '#' comments. Grammar
     * (docs/NETWORK_FAULTS.md):
     *
     *   delay     <target> <start> <end> <base> [jitter]
     *   dup       <target> <start> <end> [prob]
     *   corrupt   <target> <start> <end> [prob]
     *   partition <target> <start> <end>
     *
     * with <target> one of gm-em | gm-sm | em-sm | gm-gm | rank:N | *.
     * fatal() on malformed input.
     */
    static NetemSchedule parse(const std::string &text);

    /** Append one event. */
    void add(const NetemEvent &event);

    /** The events, in insertion order. */
    const std::vector<NetemEvent> &events() const { return events_; }

    /** @return true when the schedule holds no events. */
    bool empty() const { return events_.empty(); }

    /** First tick at which no event is active anymore (0 when empty). */
    size_t lastEnd() const;

    /**
     * Render as a script parse() accepts, clauses joined by @p sep
     * (use "\n" for files, "; " for inline INI values).
     */
    std::string toText(const std::string &sep = "\n") const;

  private:
    std::vector<NetemEvent> events_;
};

/**
 * Read-only netem oracle: the pure query surface of a materialized
 * schedule. Immutable after construction; see the file comment for the
 * determinism contract.
 */
class NetemModel
{
  public:
    NetemModel() = default;

    /**
     * @param schedule       The materialized campaign.
     * @param seed           Seed of the per-(link, seq) randomness.
     * @param deadline_ticks Grant deadline: a delayed send due more
     *                       than this many ticks after its send tick is
     *                       dropped as expired instead of queued
     *                       (0 = no deadline).
     */
    NetemModel(NetemSchedule schedule, uint64_t seed,
               size_t deadline_ticks);

    /** The campaign. */
    const NetemSchedule &schedule() const { return schedule_; }

    /** The grant deadline in ticks (0 = none). */
    size_t deadlineTicks() const { return deadline_; }

    /** @return true when the schedule holds no events. */
    bool empty() const { return schedule_.empty(); }

    /** @return true when (@p cls, @p owner_rank) is partitioned. */
    bool partitioned(Link cls, int owner_rank, size_t tick) const;

    /**
     * @return true when a partition event targets process rank @p rank
     * at @p tick (rank:N or '*' selectors; used for supervisor-side
     * health states, not message resolution).
     */
    bool rankPartitioned(int rank, size_t tick) const;

    /**
     * Extra delivery latency in ticks for the send (@p wire_id, @p seq)
     * on (@p cls, @p owner_rank) at @p tick: a uniform draw in
     * [base, base+jitter] of the first matching active Delay event, 0
     * when none. Deterministic in (seed, wire_id, seq).
     */
    size_t delayTicks(Link cls, int owner_rank, uint32_t wire_id,
                      uint64_t seq, size_t tick) const;

    /** Roll the per-send duplicate coin. Deterministic as delayTicks. */
    bool duplicated(Link cls, int owner_rank, uint32_t wire_id,
                    uint64_t seq, size_t tick) const;

    /**
     * Roll the per-send corruption coin; on hit also yields the byte
     * offset to flip (reduced modulo frame size by the caller).
     */
    bool corrupted(Link cls, int owner_rank, uint32_t wire_id,
                   uint64_t seq, size_t tick, size_t *byte_off) const;

    /** Number of schedule events active at @p tick (for telemetry). */
    size_t activeCount(size_t tick) const;

  private:
    const NetemEvent *find(NetemKind kind, Link cls, int owner_rank,
                           size_t tick) const;

    NetemSchedule schedule_;
    uint64_t seed_ = 1;
    size_t deadline_ = 0;
    /** Events bucketed by kind for cheap scans. */
    std::vector<NetemEvent> by_kind_[4];
};

} // namespace netem
} // namespace fault
} // namespace nps

#endif // NPS_FAULT_NETEM_NETEM_H
