/**
 * @file
 * NetemTransport: the network-emulation decorator of the transport seam
 * (docs/NETWORK_FAULTS.md).
 *
 * Sits between every ControlLink and the real transport (InProc for
 * `--plan`, SocketTransport for `--distributed`) and applies a
 * NetemModel to the budget links of the hierarchy:
 *
 *   - a partitioned send never reaches the inner transport: every
 *     replica computes the identical verdict from the schedule, so no
 *     owner broadcasts and no receiver blocks — the send resolves as a
 *     kWirePartitioned drop and feeds the lease/fallback ladder;
 *   - a delayed send first resolves through the inner transport (the
 *     lockstep broadcast/cross-check is preserved bit for bit), then
 *     the resolved outcome is parked on a virtual-time delivery queue
 *     instead of reaching the sink; a send due past the grant deadline
 *     is dropped as kWireExpired instead;
 *   - queued sends are drained at the tick barrier (NetemGate), in
 *     (due, link, seq) order, through BudgetLink::deliverLate — never
 *     mid-tick, which is what keeps `--plan` and `--distributed`
 *     byte-identical at any thread count;
 *   - duplication and corruption are *wire-level*: the decorator
 *     doubles as the socket transport's WireMangler, so a duplicated
 *     frame really is written twice (the receiver's duplicate window
 *     discards it) and a corrupted frame really is a byte-flipped copy
 *     preceding the clean one (the NPSF CRC rejects it and the decoder
 *     resyncs). Neither changes any delivered outcome, so the in-proc
 *     oracle — which has no wire — stays byte-identical.
 *
 * Threading: netem state (queue, counters) is mutated only on the
 * engine thread. Eligible links are budget links, all sent by global
 * levels (GM, EM) which the plan validator pins to the engine thread;
 * every other link passes through untouched on whatever thread it
 * resolves from.
 */

#ifndef NPS_FAULT_NETEM_TRANSPORT_H
#define NPS_FAULT_NETEM_TRANSPORT_H

#include <cstdint>
#include <functional>
#include <vector>

#include "bus/control_link.h"
#include "bus/transport.h"
#include "ckpt/snapshot.h"
#include "fault/netem/netem.h"
#include "sim/engine.h"
#include "stream/socket_transport.h"

namespace nps {
namespace fault {
namespace netem {

/**
 * The decorator. Construct with the inner transport *before* wiring:
 * registerLink forwards to the inner transport, so the dense wire ids
 * and the wiring digest are exactly what they would be without netem.
 */
class NetemTransport : public bus::Transport, public stream::WireMangler
{
  public:
    /** Netem tallies (engine-thread only; diagnostics, not digest). */
    struct Stats
    {
        uint64_t delayed = 0;         //!< sends parked on the queue
        uint64_t late_deliveries = 0; //!< queue entries that reached a sink
        uint64_t expired = 0;         //!< sends due past the deadline
        uint64_t partition_drops = 0; //!< sends lost to a partition
        uint64_t reorder_drops = 0;   //!< late sends a fresher one beat
        uint64_t dup_frames = 0;      //!< wire frames written twice
        uint64_t corrupt_frames = 0;  //!< corrupted copies written
    };

    NetemTransport(NetemModel model, bus::Transport *inner);

    /// @name bus::Transport
    /// @{
    uint32_t registerLink(bus::ControlLink *link, int owner_rank) override;
    bus::WireMsg resolve(const bus::ControlLink &link,
                         const bus::WireMsg &local) override;
    /// @}

    /// @name stream::WireMangler (socket runs only)
    /// @{
    bool duplicateCtrl(const bus::WireMsg &msg) override;
    bool corruptCtrl(const bus::WireMsg &msg, size_t *byte_off) override;
    /// @}

    /**
     * Deliver every queued send due at or before @p tick, in
     * (due, link, seq) order. Engine thread, at the tick barrier
     * (NetemGate), before any actor observes the tick.
     */
    void drainDue(size_t tick);

    /** Sends currently parked on the virtual wire. */
    size_t queued() const { return queue_.size(); }

    /** The model. */
    const NetemModel &model() const { return model_; }

    /** The tallies. */
    const Stats &stats() const { return stats_; }

    /** Serialize the delivery queue (restart snapshots). */
    void saveState(ckpt::SectionWriter &w) const;

    /** Restore the delivery queue (rank restart). */
    void loadState(ckpt::SectionReader &r);

  private:
    /** Netem identity of one registered link (empty when ineligible). */
    struct LinkInfo
    {
        bus::BudgetLink *budget = nullptr;
        Link cls = Link::GmToEm;
        int owner = 0;
    };

    /** One send parked on the virtual wire. */
    struct Pending
    {
        uint64_t due = 0;
        bus::WireMsg msg;
    };

    const LinkInfo *eligible(uint32_t wire_id) const;

    NetemModel model_;
    bus::Transport *inner_;
    std::vector<LinkInfo> info_; //!< by wire id
    std::vector<Pending> queue_;
    Stats stats_;
};

/**
 * TickSource that drains the netem delivery queue at the top of every
 * tick, after the wrapped gate (the distributed barrier, when there is
 * one) releases it. The optional @p after_drain hook runs last — the
 * point where every rank's DegradeStats agree, used to publish the
 * nps_net_* gauges digest-safely.
 */
class NetemGate : public sim::TickSource
{
  public:
    NetemGate(NetemTransport &net, sim::TickSource *inner = nullptr,
              std::function<void(size_t)> after_drain = nullptr)
        : net_(net), inner_(inner), after_drain_(std::move(after_drain))
    {
    }

    bool
    beginTick(size_t tick) override
    {
        if (inner_ && !inner_->beginTick(tick))
            return false;
        net_.drainDue(tick);
        if (after_drain_)
            after_drain_(tick);
        return true;
    }

  private:
    NetemTransport &net_;
    sim::TickSource *inner_;
    std::function<void(size_t)> after_drain_;
};

} // namespace netem
} // namespace fault
} // namespace nps

#endif // NPS_FAULT_NETEM_TRANSPORT_H
