#include "fault/netem/netem.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"
#include "util/random.h"

namespace nps {
namespace fault {
namespace netem {

const char *
netemKindName(NetemKind kind)
{
    switch (kind) {
    case NetemKind::Delay: return "delay";
    case NetemKind::Duplicate: return "dup";
    case NetemKind::Corrupt: return "corrupt";
    case NetemKind::Partition: return "partition";
    }
    return "?";
}

namespace {

std::string
targetText(const NetemEvent &e)
{
    if (e.all)
        return "*";
    if (e.by_rank)
        return "rank:" + std::to_string(e.rank);
    return linkName(e.link);
}

} // namespace

std::string
NetemEvent::toText() const
{
    char buf[160];
    std::string target = targetText(*this);
    switch (kind) {
    case NetemKind::Delay:
        std::snprintf(buf, sizeof(buf), "delay %s %zu %zu %g %g",
                      target.c_str(), start, end, a, b);
        break;
    case NetemKind::Duplicate:
        std::snprintf(buf, sizeof(buf), "dup %s %zu %zu %g",
                      target.c_str(), start, end, a);
        break;
    case NetemKind::Corrupt:
        std::snprintf(buf, sizeof(buf), "corrupt %s %zu %zu %g",
                      target.c_str(), start, end, a);
        break;
    case NetemKind::Partition:
        std::snprintf(buf, sizeof(buf), "partition %s %zu %zu",
                      target.c_str(), start, end);
        break;
    }
    return buf;
}

NetemSchedule::NetemSchedule(std::vector<NetemEvent> events)
    : events_(std::move(events))
{
}

namespace {

void
parseTarget(const std::string &t, const std::string &clause, NetemEvent *e)
{
    if (t == "*") {
        e->all = true;
        return;
    }
    if (t.rfind("rank:", 0) == 0) {
        e->by_rank = true;
        try {
            e->rank = std::stoi(t.substr(5));
        } catch (...) {
            util::fatal("netem script: bad rank '%s' in '%s'", t.c_str(),
                        clause.c_str());
        }
        if (e->rank < 0)
            util::fatal("netem script: negative rank in '%s'",
                        clause.c_str());
        return;
    }
    if (t == "gm-em")
        e->link = Link::GmToEm;
    else if (t == "gm-sm")
        e->link = Link::GmToSm;
    else if (t == "em-sm")
        e->link = Link::EmToSm;
    else if (t == "gm-gm")
        e->link = Link::GmToGm;
    else
        util::fatal("netem script: unknown target '%s' in '%s' "
                    "(want gm-em|gm-sm|em-sm|gm-gm|rank:N|*)",
                    t.c_str(), clause.c_str());
}

size_t
parseTick(const std::string &t, const std::string &clause)
{
    try {
        return static_cast<size_t>(std::stoull(t));
    } catch (...) {
        util::fatal("netem script: bad tick '%s' in '%s'", t.c_str(),
                    clause.c_str());
    }
    return 0;
}

double
parseNum(const std::string &t, const std::string &clause)
{
    try {
        return std::stod(t);
    } catch (...) {
        util::fatal("netem script: bad number '%s' in '%s'", t.c_str(),
                    clause.c_str());
    }
    return 0.0;
}

NetemEvent
parseClause(const std::vector<std::string> &tok, const std::string &clause)
{
    NetemEvent e;
    const std::string &verb = tok[0];
    size_t min_tok = 4, max_tok = 4;
    if (verb == "delay") {
        e.kind = NetemKind::Delay;
        min_tok = 5;
        max_tok = 6;
    } else if (verb == "dup") {
        e.kind = NetemKind::Duplicate;
        e.a = 1.0;
        max_tok = 5;
    } else if (verb == "corrupt") {
        e.kind = NetemKind::Corrupt;
        e.a = 1.0;
        max_tok = 5;
    } else if (verb == "partition") {
        e.kind = NetemKind::Partition;
    } else {
        util::fatal("netem script: unknown verb '%s' in '%s' "
                    "(want delay|dup|corrupt|partition)",
                    verb.c_str(), clause.c_str());
    }
    if (tok.size() < min_tok || tok.size() > max_tok)
        util::fatal("netem script: wrong arity for '%s' in '%s'",
                    verb.c_str(), clause.c_str());
    parseTarget(tok[1], clause, &e);
    e.start = parseTick(tok[2], clause);
    e.end = parseTick(tok[3], clause);
    if (e.end <= e.start)
        util::fatal("netem script: empty interval [%zu, %zu) in '%s'",
                    e.start, e.end, clause.c_str());
    if (tok.size() > 4)
        e.a = parseNum(tok[4], clause);
    if (tok.size() > 5)
        e.b = parseNum(tok[5], clause);
    if (e.kind == NetemKind::Delay) {
        if (e.a < 0.0 || e.b < 0.0)
            util::fatal("netem script: negative delay in '%s'",
                        clause.c_str());
    } else if (e.kind != NetemKind::Partition) {
        if (e.a < 0.0 || e.a > 1.0)
            util::fatal("netem script: probability %g outside [0,1] "
                        "in '%s'",
                        e.a, clause.c_str());
    }
    return e;
}

} // namespace

NetemSchedule
NetemSchedule::parse(const std::string &text)
{
    NetemSchedule out;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        // Strip comments, then split the remainder into ';' clauses.
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream clauses(line);
        std::string clause;
        while (std::getline(clauses, clause, ';')) {
            std::istringstream in(clause);
            std::vector<std::string> tok;
            std::string t;
            while (in >> t)
                tok.push_back(t);
            if (!tok.empty())
                out.add(parseClause(tok, clause));
        }
    }
    return out;
}

void
NetemSchedule::add(const NetemEvent &event)
{
    events_.push_back(event);
}

size_t
NetemSchedule::lastEnd() const
{
    size_t last = 0;
    for (const auto &e : events_)
        last = std::max(last, e.end);
    return last;
}

std::string
NetemSchedule::toText(const std::string &sep) const
{
    std::string out;
    for (const auto &e : events_) {
        if (!out.empty())
            out += sep;
        out += e.toText();
    }
    return out;
}

namespace {

/** SplitMix64 finalizer: decorrelates the packed query key. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Counter-mode stream key for one (kind, link, seq) query. Keyed per
 * send, not per tick: a send keeps its verdict whether it is resolved
 * by rank 0 or rank 3, on the engine thread or a worker.
 */
uint64_t
queryKey(uint64_t seed, NetemKind kind, uint32_t wire_id, uint64_t seq)
{
    uint64_t k = mix(seed ^ (static_cast<uint64_t>(kind) << 56));
    k = mix(k ^ wire_id);
    return mix(k ^ seq);
}

} // namespace

NetemModel::NetemModel(NetemSchedule schedule, uint64_t seed,
                       size_t deadline_ticks)
    : schedule_(std::move(schedule)), seed_(seed),
      deadline_(deadline_ticks)
{
    for (const auto &e : schedule_.events())
        by_kind_[static_cast<size_t>(e.kind)].push_back(e);
}

const NetemEvent *
NetemModel::find(NetemKind kind, Link cls, int owner_rank,
                 size_t tick) const
{
    for (const auto &e : by_kind_[static_cast<size_t>(kind)]) {
        if (e.activeAt(tick) && e.matches(cls, owner_rank))
            return &e;
    }
    return nullptr;
}

bool
NetemModel::partitioned(Link cls, int owner_rank, size_t tick) const
{
    return find(NetemKind::Partition, cls, owner_rank, tick) != nullptr;
}

bool
NetemModel::rankPartitioned(int rank, size_t tick) const
{
    for (const auto &e :
         by_kind_[static_cast<size_t>(NetemKind::Partition)]) {
        if (!e.activeAt(tick))
            continue;
        if (e.all || (e.by_rank && e.rank == rank))
            return true;
    }
    return false;
}

size_t
NetemModel::delayTicks(Link cls, int owner_rank, uint32_t wire_id,
                       uint64_t seq, size_t tick) const
{
    const NetemEvent *e = find(NetemKind::Delay, cls, owner_rank, tick);
    if (!e)
        return 0;
    size_t base = static_cast<size_t>(e->a);
    size_t jitter = static_cast<size_t>(e->b);
    if (jitter == 0)
        return base;
    util::Rng rng(queryKey(seed_, NetemKind::Delay, wire_id, seq));
    return base + static_cast<size_t>(rng.below(jitter + 1));
}

bool
NetemModel::duplicated(Link cls, int owner_rank, uint32_t wire_id,
                       uint64_t seq, size_t tick) const
{
    const NetemEvent *e =
        find(NetemKind::Duplicate, cls, owner_rank, tick);
    if (!e)
        return false;
    if (e->a >= 1.0)
        return true;
    util::Rng rng(queryKey(seed_, NetemKind::Duplicate, wire_id, seq));
    return rng.bernoulli(e->a);
}

bool
NetemModel::corrupted(Link cls, int owner_rank, uint32_t wire_id,
                      uint64_t seq, size_t tick, size_t *byte_off) const
{
    const NetemEvent *e = find(NetemKind::Corrupt, cls, owner_rank, tick);
    if (!e)
        return false;
    util::Rng rng(queryKey(seed_, NetemKind::Corrupt, wire_id, seq));
    if (e->a < 1.0 && !rng.bernoulli(e->a))
        return false;
    if (byte_off)
        *byte_off = static_cast<size_t>(rng.next());
    return true;
}

size_t
NetemModel::activeCount(size_t tick) const
{
    size_t n = 0;
    for (const auto &e : schedule_.events())
        n += e.activeAt(tick) ? 1 : 0;
    return n;
}

} // namespace netem
} // namespace fault
} // namespace nps
