#include "fault/netem/transport.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace fault {
namespace netem {

NetemTransport::NetemTransport(NetemModel model, bus::Transport *inner)
    : model_(std::move(model)), inner_(inner)
{
    if (!inner_)
        util::fatal("netem: null inner transport");
}

uint32_t
NetemTransport::registerLink(bus::ControlLink *link, int owner_rank)
{
    uint32_t id = inner_->registerLink(link, owner_rank);
    if (id >= info_.size())
        info_.resize(id + 1);
    LinkInfo &li = info_[id];
    // Only budget links ride the virtual wire: they are the channel the
    // degradation ladder (drop → lease → fallback) is built around, and
    // they are sent by global levels the plan validator pins to the
    // engine thread — the invariant that keeps netem state lock-free.
    if (auto *budget = dynamic_cast<bus::BudgetLink *>(link)) {
        li.budget = budget;
        li.cls = budget->link();
        li.owner = owner_rank;
    }
    return id;
}

const NetemTransport::LinkInfo *
NetemTransport::eligible(uint32_t wire_id) const
{
    if (model_.empty() || wire_id >= info_.size() ||
        !info_[wire_id].budget)
        return nullptr;
    return &info_[wire_id];
}

bus::WireMsg
NetemTransport::resolve(const bus::ControlLink &link,
                        const bus::WireMsg &local)
{
    const LinkInfo *li = eligible(local.link);
    if (!li)
        return inner_->resolve(link, local);
    size_t tick = static_cast<size_t>(local.tick);
    if (model_.partitioned(li->cls, li->owner, tick)) {
        // Dropped before the wire: every replica computes the identical
        // verdict from the schedule, so the owner never broadcasts and
        // no receiver waits for a frame that will not come.
        ++stats_.partition_drops;
        bus::WireMsg m = local;
        m.flags = bus::kWirePartitioned;
        return m;
    }
    // The lockstep broadcast/cross-check happens on the *send*: the
    // latency model only defers when the resolved outcome reaches the
    // sink, so replicas stay frame-by-frame verified even mid-storm.
    bus::WireMsg m = inner_->resolve(link, local);
    if (!(m.flags & bus::kWireDelivered))
        return m; // the inner transport degraded it (owner rank dead)
    size_t d = model_.delayTicks(li->cls, li->owner, local.link, m.seq,
                                 tick);
    if (d == 0)
        return m;
    if (model_.deadlineTicks() && d > model_.deadlineTicks()) {
        // Would arrive after the grant deadline: the receiver would
        // discard it anyway, so it degrades to a drop at the sender and
        // the lease ladder takes over.
        ++stats_.expired;
        bus::WireMsg out = local;
        out.flags = bus::kWireExpired;
        return out;
    }
    ++stats_.delayed;
    Pending p;
    p.due = local.tick + d;
    p.msg = m; // resolved outcome, original send tick/seq/value intact
    queue_.push_back(p);
    bus::WireMsg out = m;
    out.flags = bus::kWireDelayed;
    return out;
}

bool
NetemTransport::duplicateCtrl(const bus::WireMsg &msg)
{
    const LinkInfo *li = eligible(msg.link);
    if (!li ||
        !model_.duplicated(li->cls, li->owner, msg.link, msg.seq,
                           static_cast<size_t>(msg.tick)))
        return false;
    ++stats_.dup_frames;
    return true;
}

bool
NetemTransport::corruptCtrl(const bus::WireMsg &msg, size_t *byte_off)
{
    const LinkInfo *li = eligible(msg.link);
    if (!li ||
        !model_.corrupted(li->cls, li->owner, msg.link, msg.seq,
                          static_cast<size_t>(msg.tick), byte_off))
        return false;
    ++stats_.corrupt_frames;
    return true;
}

void
NetemTransport::drainDue(size_t tick)
{
    if (queue_.empty())
        return;
    // Deterministic delivery order whatever the insertion pattern was:
    // due tick first, then wire id, then sequence.
    std::stable_sort(queue_.begin(), queue_.end(),
                     [](const Pending &a, const Pending &b) {
                         if (a.due != b.due)
                             return a.due < b.due;
                         if (a.msg.link != b.msg.link)
                             return a.msg.link < b.msg.link;
                         return a.msg.seq < b.msg.seq;
                     });
    size_t kept = 0;
    for (size_t i = 0; i < queue_.size(); ++i) {
        Pending &p = queue_[i];
        if (p.due > tick) {
            queue_[kept++] = p;
            continue;
        }
        bus::BudgetLink *budget = info_[p.msg.link].budget;
        if (budget->deliverLate(p.msg, tick))
            ++stats_.late_deliveries;
        else
            ++stats_.reorder_drops;
    }
    queue_.resize(kept);
}

void
NetemTransport::saveState(ckpt::SectionWriter &w) const
{
    w.putU64(queue_.size());
    for (const Pending &p : queue_) {
        w.putU64(p.due);
        w.putU64(p.msg.link);
        w.putU64(p.msg.tick);
        w.putU64(p.msg.seq);
        w.putDouble(p.msg.value);
        w.putDouble(p.msg.aux);
        w.putU64(p.msg.trace);
        w.putU64(p.msg.flags);
    }
    w.putU64(stats_.delayed);
    w.putU64(stats_.late_deliveries);
    w.putU64(stats_.expired);
    w.putU64(stats_.partition_drops);
    w.putU64(stats_.reorder_drops);
}

void
NetemTransport::loadState(ckpt::SectionReader &r)
{
    queue_.clear();
    size_t n = static_cast<size_t>(r.getU64());
    queue_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        Pending p;
        p.due = r.getU64();
        p.msg.link = static_cast<uint32_t>(r.getU64());
        p.msg.tick = r.getU64();
        p.msg.seq = r.getU64();
        p.msg.value = r.getDouble();
        p.msg.aux = r.getDouble();
        p.msg.trace = static_cast<uint32_t>(r.getU64());
        p.msg.flags = static_cast<uint8_t>(r.getU64());
        if (p.msg.link >= info_.size() || !info_[p.msg.link].budget)
            util::fatal("netem: restored queue entry for wire id %u, "
                        "which is not an eligible link",
                        p.msg.link);
        queue_.push_back(p);
    }
    stats_.delayed = r.getU64();
    stats_.late_deliveries = r.getU64();
    stats_.expired = r.getU64();
    stats_.partition_drops = r.getU64();
    stats_.reorder_drops = r.getU64();
}

} // namespace netem
} // namespace fault
} // namespace nps
