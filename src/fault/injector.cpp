#include "fault/injector.h"

#include "util/random.h"

namespace nps {
namespace fault {

DegradeStats &
DegradeStats::operator+=(const DegradeStats &o)
{
    outage_ticks += o.outage_ticks;
    outage_steps += o.outage_steps;
    restarts += o.restarts;
    lease_expiries += o.lease_expiries;
    lease_fallback_steps += o.lease_fallback_steps;
    ec_fallback_steps += o.ec_fallback_steps;
    dropped_budgets += o.dropped_budgets;
    stale_budgets += o.stale_budgets;
    stuck_actuations += o.stuck_actuations;
    noisy_reads += o.noisy_reads;
    netem_delayed += o.netem_delayed;
    netem_late_deliveries += o.netem_late_deliveries;
    netem_expired += o.netem_expired;
    netem_partition_drops += o.netem_partition_drops;
    netem_reorder_drops += o.netem_reorder_drops;
    return *this;
}

bool
DegradeStats::none() const
{
    return outage_ticks == 0 && outage_steps == 0 && restarts == 0 &&
           lease_expiries == 0 && lease_fallback_steps == 0 &&
           ec_fallback_steps == 0 && dropped_budgets == 0 &&
           stale_budgets == 0 && stuck_actuations == 0 &&
           noisy_reads == 0 && netem_delayed == 0 &&
           netem_late_deliveries == 0 && netem_expired == 0 &&
           netem_partition_drops == 0 && netem_reorder_drops == 0;
}

void
DegradeStats::saveState(ckpt::SectionWriter &w) const
{
    w.putU64(outage_ticks);
    w.putU64(outage_steps);
    w.putU64(restarts);
    w.putU64(lease_expiries);
    w.putU64(lease_fallback_steps);
    w.putU64(ec_fallback_steps);
    w.putU64(dropped_budgets);
    w.putU64(stale_budgets);
    w.putU64(stuck_actuations);
    w.putU64(noisy_reads);
    w.putU64(netem_delayed);
    w.putU64(netem_late_deliveries);
    w.putU64(netem_expired);
    w.putU64(netem_partition_drops);
    w.putU64(netem_reorder_drops);
}

void
DegradeStats::loadState(ckpt::SectionReader &r)
{
    outage_ticks = static_cast<unsigned long>(r.getU64());
    outage_steps = static_cast<unsigned long>(r.getU64());
    restarts = static_cast<unsigned long>(r.getU64());
    lease_expiries = static_cast<unsigned long>(r.getU64());
    lease_fallback_steps = static_cast<unsigned long>(r.getU64());
    ec_fallback_steps = static_cast<unsigned long>(r.getU64());
    dropped_budgets = static_cast<unsigned long>(r.getU64());
    stale_budgets = static_cast<unsigned long>(r.getU64());
    stuck_actuations = static_cast<unsigned long>(r.getU64());
    noisy_reads = static_cast<unsigned long>(r.getU64());
    netem_delayed = static_cast<unsigned long>(r.getU64());
    netem_late_deliveries = static_cast<unsigned long>(r.getU64());
    netem_expired = static_cast<unsigned long>(r.getU64());
    netem_partition_drops = static_cast<unsigned long>(r.getU64());
    netem_reorder_drops = static_cast<unsigned long>(r.getU64());
}

namespace {

/** SplitMix64 finalizer: decorrelates the packed query key. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Counter-mode stream key for one (kind, target, tick) query. */
uint64_t
queryKey(uint64_t seed, FaultKind kind, long id, size_t tick)
{
    uint64_t k = mix(seed ^ (static_cast<uint64_t>(kind) << 56));
    k = mix(k ^ static_cast<uint64_t>(id));
    return mix(k ^ static_cast<uint64_t>(tick));
}

} // namespace

FaultInjector::FaultInjector(FaultSchedule schedule, uint64_t seed)
    : schedule_(std::move(schedule)), seed_(seed)
{
    for (const auto &e : schedule_.events())
        by_kind_[static_cast<size_t>(e.kind)].push_back(e);
}

const FaultEvent *
FaultInjector::find(FaultKind kind, size_t tick, Level level,
                    Link link, long id) const
{
    for (const auto &e : by_kind_[static_cast<size_t>(kind)]) {
        if (!e.activeAt(tick))
            continue;
        if (e.id != FaultEvent::kAll && e.id != id)
            continue;
        if (kind == FaultKind::Outage) {
            if (e.level != level)
                continue;
        } else if (kind == FaultKind::DropBudget ||
                   kind == FaultKind::StaleBudget) {
            if (e.link != link)
                continue;
        }
        return &e;
    }
    return nullptr;
}

bool
FaultInjector::down(Level level, long id, size_t tick) const
{
    return find(FaultKind::Outage, tick, level, Link::EmToSm, id) !=
           nullptr;
}

bool
FaultInjector::budgetDropped(Link link, long id, size_t tick) const
{
    const FaultEvent *e = find(FaultKind::DropBudget, tick, Level::SM, link, id);
    if (!e)
        return false;
    if (e->magnitude >= 1.0)
        return true;
    // Per-send coin flip, keyed so the answer is a pure function of the
    // query — identical on every thread and on every repeat.
    uint64_t key = queryKey(seed_, FaultKind::DropBudget,
                            id * 4 + static_cast<long>(link), tick);
    util::Rng rng(key);
    return rng.bernoulli(e->magnitude);
}

bool
FaultInjector::budgetStale(Link link, long id, size_t tick) const
{
    return find(FaultKind::StaleBudget, tick, Level::SM, link, id) != nullptr;
}

bool
FaultInjector::pstateStuck(long id, size_t tick) const
{
    return find(FaultKind::StuckPState, tick, Level::SM, Link::EmToSm, id) != nullptr;
}

bool
FaultInjector::utilFrozen(long id, size_t tick) const
{
    return find(FaultKind::UtilFreeze, tick, Level::SM, Link::EmToSm, id) != nullptr;
}

double
FaultInjector::utilNoise(long id, size_t tick) const
{
    const FaultEvent *e = find(FaultKind::UtilNoise, tick, Level::SM, Link::EmToSm, id);
    if (!e || e->magnitude <= 0.0)
        return 0.0;
    util::Rng rng(queryKey(seed_, FaultKind::UtilNoise, id, tick));
    return rng.gaussian(0.0, e->magnitude);
}

size_t
FaultInjector::activeCount(size_t tick) const
{
    size_t n = 0;
    for (const auto &e : schedule_.events())
        n += e.activeAt(tick) ? 1 : 0;
    return n;
}

} // namespace fault
} // namespace nps
