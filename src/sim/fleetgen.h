/**
 * @file
 * FleetGen: deterministic synthetic fleets beyond the paper's 180-server
 * testbed (docs/PERFORMANCE.md).
 *
 * The paper validates on 180 servers; the scaling work (ROADMAP item 1)
 * needs tiered topologies and workload campaigns at 10k/100k/1M servers.
 * FleetGen builds both from one seed: a regular zone/rack/enclosure tree
 * via Topology::tiered, and one utilization trace per VM reusing the
 * enterprise trace synthesizer's per-(site, server) streams — so a given
 * (seed, vm) pair always yields the identical trace regardless of fleet
 * size, generation order, or thread count.
 *
 * Traces are deliberately short (trace_length, default 128 ticks) and
 * rely on UtilizationTrace::at()'s wrap-around: a 1M-server fleet at the
 * paper's 2880-tick traces would hold ~46 GB of samples; at 128 ticks it
 * is ~2 GB and the tick loop behaviour is unchanged in kind.
 */

#ifndef NPS_SIM_FLEETGEN_H
#define NPS_SIM_FLEETGEN_H

#include <cstdint>
#include <vector>

#include "sim/topology.h"
#include "trace/trace.h"

namespace nps {
namespace util {
class ThreadPool;
} // namespace util

namespace sim {

/**
 * Shape and seed of a synthetic fleet. The rack is the fixed building
 * block: enclosures_per_rack blade enclosures of enclosure_size plus
 * standalone_per_rack standalone servers (defaults: 2x20 + 10 = 50
 * servers per rack, 10 racks per zone = 500 per zone). `servers` must be
 * a whole number of zones.
 */
struct FleetSpec
{
    unsigned servers = 10000;          //!< total servers; multiple of zone size
    unsigned enclosure_size = 20;      //!< blades per enclosure
    unsigned enclosures_per_rack = 2;  //!< enclosures per rack
    unsigned standalone_per_rack = 10; //!< standalone servers per rack
    unsigned racks_per_zone = 10;      //!< racks per zone
    size_t trace_length = 128;         //!< ticks per VM trace (wraps)
    size_t ticks_per_day = 288;        //!< diurnal period of the traces
    uint64_t seed = 20080301;          //!< master seed
    double vm_fill = 1.0;              //!< fraction of servers given a VM

    /** Servers per rack. */
    unsigned
    rackSize() const
    {
        return enclosures_per_rack * enclosure_size + standalone_per_rack;
    }

    /** Servers per zone. */
    unsigned zoneSize() const { return rackSize() * racks_per_zone; }
};

/**
 * Builds the topology and workload campaign of one synthetic fleet.
 */
class FleetGen
{
  public:
    /** @param spec Fleet shape; fatal when servers is not a whole number
     * of zones or any dimension is zero. */
    explicit FleetGen(FleetSpec spec);

    /** The validated spec. */
    const FleetSpec &spec() const { return spec_; }

    /** Number of zones (servers / zoneSize()). */
    unsigned zones() const { return zones_; }

    /** Number of VMs (servers * vm_fill, floored). */
    unsigned numVms() const;

    /**
     * The tiered management topology: dc -> zones -> racks, each rack
     * owning its enclosures and standalone servers. validate()-clean by
     * construction.
     */
    Topology topology() const;

    /**
     * One trace per VM, in VM-id order. Each trace is a pure function of
     * (seed, vm): generation is campaign-size independent and may fan
     * out over @p pool with bit-identical results for any thread count.
     * Samples are clamped to [0, 1].
     */
    std::vector<trace::UtilizationTrace>
    traces(util::ThreadPool *pool = nullptr) const;

  private:
    FleetSpec spec_;
    unsigned zones_ = 0;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_FLEETGEN_H
