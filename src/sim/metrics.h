/**
 * @file
 * Metric collection: the paper's evaluation metrics (Section 4.2) —
 * aggregate power (energy), performance loss, and power-budget violations
 * at the server (SM), enclosure (EM), and group (GM) levels.
 */

#ifndef NPS_SIM_METRICS_H
#define NPS_SIM_METRICS_H

#include <vector>

#include "fault/injector.h"
#include "sim/cluster.h"
#include "util/stats.h"

namespace nps {
namespace sim {

/** Final aggregated metrics of one simulation run. */
struct MetricsSummary
{
    size_t ticks = 0;            //!< simulated ticks
    double energy = 0.0;         //!< total watt-ticks consumed
    double mean_power = 0.0;     //!< average group power (watts)
    double peak_power = 0.0;     //!< highest group power in any tick
    double sm_violation = 0.0;   //!< fraction of server-ticks over CAP_LOC
    double em_violation = 0.0;   //!< fraction of enclosure-ticks over CAP_ENC
    double gm_violation = 0.0;   //!< fraction of ticks over CAP_GRP
    double perf_loss = 0.0;      //!< 1 - served / demanded useful work
    /**
     * Aggregate graceful-degradation counters across all controllers
     * (all zero on a fault-free run; see src/fault/).
     */
    fault::DegradeStats degrade;
};

/**
 * Fractional power savings of @p scenario relative to @p baseline
 * (positive when the scenario consumed less energy).
 */
double powerSavings(const MetricsSummary &baseline,
                    const MetricsSummary &scenario);

/**
 * Streaming collector fed once per simulated tick.
 */
class MetricsCollector
{
  public:
    /**
     * @param keep_series When true, retains the per-tick group power and
     * performance series for plotting (memory grows with run length).
     */
    explicit MetricsCollector(bool keep_series = false);

    /** Record one evaluated tick of @p cluster. */
    void record(const Cluster &cluster, size_t tick);

    /** @return the aggregate summary so far. */
    MetricsSummary summary() const;

    /** Per-tick group power (empty unless keep_series). */
    const std::vector<double> &powerSeries() const { return power_series_; }

    /** Per-tick served/demanded ratio (empty unless keep_series). */
    const std::vector<double> &perfSeries() const { return perf_series_; }

    /** Reset all accumulated state. */
    void clear();

    /**
     * Longest run of consecutive ticks (so far) in which the group budget
     * was violated — the "bounded transient violation" property thermal
     * capping relies on.
     */
    size_t longestGroupViolationRun() const { return longest_grp_run_; }

    /** Serialize all accumulators and retained series (checkpointing). */
    void
    saveState(ckpt::SectionWriter &w) const
    {
        w.putU64(ticks_);
        w.putDouble(energy_);
        w.putDouble(peak_power_);
        w.putDouble(demanded_);
        w.putDouble(served_);
        w.putU64(sm_violations_.total());
        w.putU64(sm_violations_.hits());
        w.putU64(em_violations_.total());
        w.putU64(em_violations_.hits());
        w.putU64(gm_violations_.total());
        w.putU64(gm_violations_.hits());
        w.putU64(cur_grp_run_);
        w.putU64(longest_grp_run_);
        w.putDoubleVec(power_series_);
        w.putDoubleVec(perf_series_);
    }

    /** Restore all accumulators and series (checkpoint restore). */
    void
    loadState(ckpt::SectionReader &r)
    {
        ticks_ = static_cast<size_t>(r.getU64());
        energy_ = r.getDouble();
        peak_power_ = r.getDouble();
        demanded_ = r.getDouble();
        served_ = r.getDouble();
        auto restoreRate = [&r](util::RateCounter &c) {
            auto total = static_cast<size_t>(r.getU64());
            auto hits = static_cast<size_t>(r.getU64());
            c.restore(total, hits);
        };
        restoreRate(sm_violations_);
        restoreRate(em_violations_);
        restoreRate(gm_violations_);
        cur_grp_run_ = static_cast<size_t>(r.getU64());
        longest_grp_run_ = static_cast<size_t>(r.getU64());
        power_series_ = r.getDoubleVec();
        perf_series_ = r.getDoubleVec();
    }

  private:
    bool keep_series_;
    size_t ticks_ = 0;
    double energy_ = 0.0;
    double peak_power_ = 0.0;
    double demanded_ = 0.0;
    double served_ = 0.0;
    util::RateCounter sm_violations_;
    util::RateCounter em_violations_;
    util::RateCounter gm_violations_;
    size_t cur_grp_run_ = 0;
    size_t longest_grp_run_ = 0;
    std::vector<double> power_series_;
    std::vector<double> perf_series_;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_METRICS_H
