#include "sim/engine.h"

#include <algorithm>

#include "obs/profiler.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace nps {
namespace sim {

Engine::Engine(Cluster &cluster, MetricsCollector &metrics)
    : cluster_(cluster), metrics_(metrics),
      threads_(util::ThreadPool::hardwareThreads())
{
}

Engine::~Engine() = default;

void
Engine::addActor(std::shared_ptr<Actor> actor)
{
    if (!actor)
        util::fatal("Engine::addActor: null actor");
    if (actor->period() == 0)
        util::fatal("Engine::addActor: actor %s has zero period",
                    actor->name().c_str());
    // Re-registering a name (replacing a controller instance after a
    // fault-driven restart) swaps the actor into the original slot
    // instead of appending. The slot, not the registration time, is what
    // the stable coarse-first sort uses to break period ties, so the
    // replacement steps exactly where its predecessor did and the
    // schedule stays deterministic. The name index keeps both paths
    // O(1); preparePlan rebuilds it after the sort moves slots.
    auto it = slot_of_.find(actor->name());
    if (it != slot_of_.end()) {
        actors_[it->second] = std::move(actor);
        plan_dirty_ = true;
        return;
    }
    slot_of_.emplace(actor->name(), actors_.size());
    actors_.push_back(std::move(actor));
    plan_dirty_ = true;
}

void
Engine::setThreads(unsigned threads)
{
    unsigned resolved =
        threads == 0 ? util::ThreadPool::hardwareThreads() : threads;
    if (resolved == threads_)
        return;
    threads_ = resolved;
    pool_.reset();
    plan_dirty_ = true;
}

void
Engine::preparePlan()
{
    if (!plan_dirty_)
        return;

    // Coarse loops first so inner loops react to fresh outer references
    // within the same tick. Sorting is deferred to here so that actor
    // registration stays O(1) per insert at fleet scale.
    std::stable_sort(actors_.begin(), actors_.end(),
                     [](const auto &a, const auto &b) {
                         return a->period() > b->period();
                     });
    for (size_t i = 0; i < actors_.size(); ++i)
        slot_of_[actors_[i]->name()] = i;

    if (threads_ > 1 && !pool_)
        pool_ = std::make_unique<util::ThreadPool>(threads_);

    // Dispatch caches: raw pointers and periods in schedule order.
    // period() is a constant of the actor (the paper's T_* control
    // intervals), so hoisting the virtual call out of the tick loop is
    // behaviour-preserving.
    raw_.resize(actors_.size());
    period_.resize(actors_.size());
    for (size_t i = 0; i < actors_.size(); ++i) {
        raw_[i] = actors_[i].get();
        period_[i] = actors_[i]->period();
    }

    // Static shard assignment: contiguous server-id blocks, one per
    // worker. Keys beyond the server count land in the last shard.
    // Shardable runs are flattened shard-major so each worker walks one
    // contiguous slice of indices per tick.
    plan_.clear();
    const size_t shards = threads_;
    const size_t servers = cluster_.numServers();
    const size_t block =
        std::max<size_t>(1, (servers + shards - 1) / shards);
    std::vector<std::vector<size_t>> scratch;
    auto flush = [&]() {
        if (scratch.empty())
            return;
        Segment seg;
        seg.shardable = true;
        seg.begin.reserve(scratch.size() + 1);
        seg.begin.push_back(0);
        for (const auto &list : scratch) {
            for (size_t idx : list) {
                seg.flat.push_back(idx);
                if (std::find(seg.fire.begin(), seg.fire.end(),
                              period_[idx]) == seg.fire.end())
                    seg.fire.push_back(period_[idx]);
            }
            seg.begin.push_back(seg.flat.size());
        }
        plan_.push_back(std::move(seg));
        scratch.clear();
    };
    for (size_t i = 0; i < actors_.size(); ++i) {
        long key = raw_[i]->shardKey();
        if (key < 0) {
            flush();
            Segment seg;
            seg.shardable = false;
            seg.actor = i;
            plan_.push_back(std::move(seg));
            continue;
        }
        if (scratch.empty())
            scratch.resize(shards);
        size_t shard = std::min(static_cast<size_t>(key) / block,
                                shards - 1);
        scratch[shard].push_back(i);
    }
    flush();
    plan_dirty_ = false;
}

/** True when any of the segment's distinct periods fires at @p tick. */
static bool
segmentFires(const std::vector<unsigned> &fire, size_t tick)
{
    for (unsigned p : fire)
        if (tick % p == 0)
            return true;
    return false;
}

size_t
Engine::runSerial(size_t ticks)
{
    const size_t count = raw_.size();
    for (size_t i = 0; i < ticks; ++i) {
        size_t tick = now_;
        if (source_ && !source_->beginTick(tick))
            return i;
        for (Actor *actor : raw_)
            actor->observe(tick);
        if (tick > 0) {
            for (size_t a = 0; a < count; ++a) {
                if (tick % period_[a] == 0)
                    raw_[a]->step(tick);
            }
        }
        cluster_.evaluateTick(tick);
        metrics_.record(cluster_, tick);
        if (observer_)
            observer_->endTick(tick);
        ++now_;
    }
    return ticks;
}

size_t
Engine::runParallel(size_t ticks)
{
    util::ThreadPool &pool = *pool_;
    for (size_t i = 0; i < ticks; ++i) {
        size_t tick = now_;
        if (source_ && !source_->beginTick(tick))
            return i;
        for (const Segment &seg : plan_) {
            if (!seg.shardable) {
                raw_[seg.actor]->observe(tick);
                continue;
            }
            pool.parallelFor(seg.begin.size() - 1, [&](size_t s) {
                for (size_t k = seg.begin[s]; k < seg.begin[s + 1]; ++k)
                    raw_[seg.flat[k]]->observe(tick);
            });
        }
        if (tick > 0) {
            for (const Segment &seg : plan_) {
                if (!seg.shardable) {
                    if (tick % period_[seg.actor] == 0)
                        raw_[seg.actor]->step(tick);
                    continue;
                }
                // Skipping the dispatch when no member period divides
                // the tick is exact: every worker would have fired zero
                // steps.
                if (!segmentFires(seg.fire, tick))
                    continue;
                pool.parallelFor(seg.begin.size() - 1, [&](size_t s) {
                    for (size_t k = seg.begin[s]; k < seg.begin[s + 1];
                         ++k) {
                        size_t idx = seg.flat[k];
                        if (tick % period_[idx] == 0)
                            raw_[idx]->step(tick);
                    }
                });
            }
        }
        cluster_.evaluateTick(tick, &pool);
        metrics_.record(cluster_, tick);
        if (observer_)
            observer_->endTick(tick);
        ++now_;
    }
    return ticks;
}

void
Engine::setProfiler(obs::EngineProfiler *profiler)
{
    profiler_ = profiler;
}

void
Engine::announceSchedule()
{
    if (!profiler_)
        return;
    std::vector<obs::EngineProfiler::ActorInfo> infos;
    infos.reserve(actors_.size());
    for (const auto &a : actors_) {
        obs::EngineProfiler::ActorInfo info;
        info.name = a->name();
        info.shard_key = a->shardKey();
        infos.push_back(std::move(info));
    }
    profiler_->setSchedule(std::move(infos), threads_);
}

size_t
Engine::runSerialProfiled(size_t ticks)
{
    using Clock = obs::EngineProfiler::Clock;
    obs::EngineProfiler &prof = *profiler_;
    Clock::time_point run_start = Clock::now();
    size_t done = 0;
    for (size_t i = 0; i < ticks; ++i) {
        size_t tick = now_;
        if (source_ && !source_->beginTick(tick))
            break;
        for (size_t a = 0; a < raw_.size(); ++a) {
            Clock::time_point t0 = Clock::now();
            raw_[a]->observe(tick);
            prof.addObserve(a, obs::EngineProfiler::sinceNs(t0), 0);
        }
        if (tick > 0) {
            for (size_t a = 0; a < raw_.size(); ++a) {
                if (tick % period_[a] != 0)
                    continue;
                Clock::time_point t0 = Clock::now();
                raw_[a]->step(tick);
                prof.addStep(a, obs::EngineProfiler::sinceNs(t0), 0);
            }
        }
        Clock::time_point t0 = Clock::now();
        cluster_.evaluateTick(tick);
        prof.addPhase(obs::EnginePhase::Evaluate,
                      obs::EngineProfiler::sinceNs(t0));
        t0 = Clock::now();
        metrics_.record(cluster_, tick);
        prof.addPhase(obs::EnginePhase::Record,
                      obs::EngineProfiler::sinceNs(t0));
        if (observer_)
            observer_->endTick(tick);
        ++now_;
        ++done;
    }
    prof.addRun(done, obs::EngineProfiler::sinceNs(run_start));
    return done;
}

size_t
Engine::runParallelProfiled(size_t ticks)
{
    using Clock = obs::EngineProfiler::Clock;
    obs::EngineProfiler &prof = *profiler_;
    util::ThreadPool &pool = *pool_;
    Clock::time_point run_start = Clock::now();
    size_t done = 0;
    for (size_t i = 0; i < ticks; ++i) {
        size_t tick = now_;
        if (source_ && !source_->beginTick(tick))
            break;
        for (const Segment &seg : plan_) {
            if (!seg.shardable) {
                Clock::time_point t0 = Clock::now();
                raw_[seg.actor]->observe(tick);
                prof.addObserve(seg.actor,
                                obs::EngineProfiler::sinceNs(t0), 0);
                continue;
            }
            pool.parallelFor(seg.begin.size() - 1, [&](size_t s) {
                for (size_t k = seg.begin[s]; k < seg.begin[s + 1]; ++k) {
                    size_t idx = seg.flat[k];
                    Clock::time_point t0 = Clock::now();
                    raw_[idx]->observe(tick);
                    prof.addObserve(idx, obs::EngineProfiler::sinceNs(t0),
                                    static_cast<unsigned>(s));
                }
            });
        }
        if (tick > 0) {
            for (const Segment &seg : plan_) {
                if (!seg.shardable) {
                    if (tick % period_[seg.actor] == 0) {
                        Clock::time_point t0 = Clock::now();
                        raw_[seg.actor]->step(tick);
                        prof.addStep(seg.actor,
                                     obs::EngineProfiler::sinceNs(t0), 0);
                    }
                    continue;
                }
                if (!segmentFires(seg.fire, tick))
                    continue;
                pool.parallelFor(seg.begin.size() - 1, [&](size_t s) {
                    for (size_t k = seg.begin[s]; k < seg.begin[s + 1];
                         ++k) {
                        size_t idx = seg.flat[k];
                        if (tick % period_[idx] != 0)
                            continue;
                        Clock::time_point t0 = Clock::now();
                        raw_[idx]->step(tick);
                        prof.addStep(idx,
                                     obs::EngineProfiler::sinceNs(t0),
                                     static_cast<unsigned>(s));
                    }
                });
            }
        }
        Clock::time_point t0 = Clock::now();
        cluster_.evaluateTick(tick, &pool);
        prof.addPhase(obs::EnginePhase::Evaluate,
                      obs::EngineProfiler::sinceNs(t0));
        t0 = Clock::now();
        metrics_.record(cluster_, tick);
        prof.addPhase(obs::EnginePhase::Record,
                      obs::EngineProfiler::sinceNs(t0));
        if (observer_)
            observer_->endTick(tick);
        ++now_;
        ++done;
    }
    prof.addRun(done, obs::EngineProfiler::sinceNs(run_start));
    return done;
}

size_t
Engine::run(size_t ticks)
{
    preparePlan();
    announceSchedule();
    if (threads_ <= 1) {
        if (profiler_)
            return runSerialProfiled(ticks);
        return runSerial(ticks);
    }
    if (profiler_)
        return runParallelProfiled(ticks);
    return runParallel(ticks);
}

void
Engine::saveState(ckpt::SectionWriter &w) const
{
    w.putU64(now_);
    std::vector<std::string> names;
    names.reserve(actors_.size());
    for (const auto &a : actors_)
        names.push_back(a->name());
    // Sorted: actors_ order depends on whether run() has executed yet.
    std::sort(names.begin(), names.end());
    w.putU64(names.size());
    for (const auto &n : names)
        w.putString(n);
}

void
Engine::loadState(ckpt::SectionReader &r)
{
    now_ = static_cast<size_t>(r.getU64());
    auto count = static_cast<size_t>(r.getU64());
    std::vector<std::string> expect;
    expect.reserve(count);
    for (size_t i = 0; i < count; ++i)
        expect.push_back(r.getString());
    std::vector<std::string> names;
    names.reserve(actors_.size());
    for (const auto &a : actors_)
        names.push_back(a->name());
    std::sort(names.begin(), names.end());
    if (names != expect) {
        for (const auto &n : expect) {
            if (std::find(names.begin(), names.end(), n) == names.end())
                util::fatal("engine restore: snapshot actor '%s' missing "
                            "from rebuilt roster — config/topology "
                            "mismatch",
                            n.c_str());
        }
        for (const auto &n : names) {
            if (std::find(expect.begin(), expect.end(), n) == expect.end())
                util::fatal("engine restore: rebuilt actor '%s' not in "
                            "snapshot — config/topology mismatch",
                            n.c_str());
        }
        util::fatal("engine restore: actor roster mismatch");
    }
}

} // namespace sim
} // namespace nps
