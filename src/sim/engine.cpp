#include "sim/engine.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace sim {

Engine::Engine(Cluster &cluster, MetricsCollector &metrics)
    : cluster_(cluster), metrics_(metrics)
{
}

void
Engine::addActor(std::shared_ptr<Actor> actor)
{
    if (!actor)
        util::fatal("Engine::addActor: null actor");
    if (actor->period() == 0)
        util::fatal("Engine::addActor: actor %s has zero period",
                    actor->name().c_str());
    actors_.push_back(std::move(actor));
    // Coarse loops first so inner loops react to fresh outer references
    // within the same tick.
    std::stable_sort(actors_.begin(), actors_.end(),
                     [](const auto &a, const auto &b) {
                         return a->period() > b->period();
                     });
}

void
Engine::run(size_t ticks)
{
    for (size_t i = 0; i < ticks; ++i) {
        size_t tick = now_;
        for (auto &actor : actors_)
            actor->observe(tick);
        if (tick > 0) {
            for (auto &actor : actors_) {
                if (tick % actor->period() == 0)
                    actor->step(tick);
            }
        }
        cluster_.evaluateTick(tick);
        metrics_.record(cluster_, tick);
        ++now_;
    }
}

} // namespace sim
} // namespace nps
