/**
 * @file
 * Simulated server: hosts VMs, exposes the P-state actuator and the power
 * and utilization sensors, and evaluates one tick of service.
 *
 * Service model (Section 4.2 of the paper): no queueing — demand that
 * exceeds the current capacity in an interval is lost, which is the
 * performance-loss channel. Capacity is the P-state's relative speed;
 * virtualization adds a fixed fractional overhead to every VM's load, and
 * an in-flight migration adds a further fractional tax.
 *
 * Like VirtualMachine, a Server is a thin view over a struct-of-arrays
 * state store (sim/soa.h): cluster-owned servers share the cluster's
 * store at slot == id, standalone servers own a private single-slot
 * store. The accessors below are the only way state is read or written,
 * so the two modes are indistinguishable to callers.
 */

#ifndef NPS_SIM_SERVER_H
#define NPS_SIM_SERVER_H

#include <memory>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"
#include "model/machine.h"
#include "sim/soa.h"
#include "sim/vm.h"

namespace nps {
namespace sim {

/** Power state of the whole platform. */
enum class PlatformPower
{
    On,
    Off,
    Booting,
};

/** Per-tick evaluation result of one server. */
struct ServerTick
{
    double power = 0.0;           //!< watts consumed this tick
    double apparent_util = 0.0;   //!< utilization at the current P-state
    double real_util = 0.0;       //!< served load in full-speed units
    double demanded_useful = 0.0; //!< useful work requested by hosted VMs
    double served_useful = 0.0;   //!< useful work actually delivered
};

/**
 * One simulated server.
 */
class Server
{
  public:
    /**
     * Standalone view: owns a private single-slot state store.
     *
     * @param id    Unique server id (dense, used as index).
     * @param spec  Immutable machine description (shared across servers).
     * @param alpha_v Virtualization overhead as a fraction of VM load.
     * @param alpha_m Migration overhead as a fraction of VM load.
     */
    Server(ServerId id, std::shared_ptr<const model::MachineSpec> spec,
           double alpha_v, double alpha_m);

    /**
     * Cluster view: state lives at @p slot of the shared @p store.
     * @pre store != nullptr and slot < store->size().
     */
    Server(ServerId id, std::shared_ptr<const model::MachineSpec> spec,
           double alpha_v, double alpha_m,
           std::shared_ptr<ServerStateSoA> store, uint32_t slot);

    /** @return unique id. */
    ServerId id() const { return id_; }

    /** @return the machine spec. */
    const model::MachineSpec &spec() const { return *spec_; }

    /** @return the power/performance model. */
    const model::PowerModel &model() const { return spec_->model(); }

    /// @name Placement
    /// @{

    /** Attach VM @p vm to this server. @pre not already hosted here. */
    void addVm(VmId vm);

    /** Detach VM @p vm. @pre currently hosted here. */
    void removeVm(VmId vm);

    /** Hosted VM ids (unordered). */
    const std::vector<VmId> &vms() const { return vms_; }

    /// @}
    /// @name Platform power state
    /// @{

    /** @return the platform power state as of @p tick (resolves boot). */
    PlatformPower platformPower(size_t tick) const;

    /** @return true when serving at @p tick. */
    bool isOn(size_t tick) const;

    /**
     * Power the platform off. @pre no hosted VMs (powering off a loaded
     * server is a controller bug and panics).
     */
    void powerOff();

    /** Begin power-on at @p tick; the boot takes spec().bootTicks(). */
    void powerOn(size_t tick);

    /** @return true when the platform was ever powered off/on (vs the
     * initial always-on state). */
    bool everOff() const { return store_->ever_off[slot_] != 0; }

    /// @}
    /// @name P-state actuator
    /// @{

    /** Current P-state index. */
    size_t pstate() const { return store_->pstate[slot_]; }

    /** Set the P-state index. @pre valid index */
    void setPState(size_t p);

    /** Clock frequency (MHz) of the current P-state. */
    double frequencyMhz() const;

    /// @}
    /// @name Auxiliary (memory) power actuator — MIMO extension hook
    /// @{

    /**
     * Toggle the platform's memory low-power mode: trims power by a fixed
     * fraction at the cost of a small capacity reduction. A second
     * actuator for the multi-input extension of Section 6.
     */
    void setMemLowPower(bool on) { store_->mem_low_power[slot_] = on; }

    /** @return true when memory low-power mode is engaged. */
    bool memLowPower() const { return store_->mem_low_power[slot_] != 0; }

    /// @}
    /// @name Tick evaluation and sensors
    /// @{

    /**
     * Serve one tick: aggregates hosted VM demand (with virtualization
     * and migration overheads), caps it by the current capacity, computes
     * power, and records per-VM served work into @p vms.
     *
     * @param tick current simulation tick
     * @param vms  the cluster's VM store, indexed by VmId
     * @return the evaluation result (also retained as last*()).
     */
    ServerTick evaluate(size_t tick, std::vector<VirtualMachine> &vms);

    /** Most recent evaluation (zeros before the first). */
    ServerTick
    last() const
    {
        ServerTick t;
        t.power = store_->power[slot_];
        t.apparent_util = store_->apparent_util[slot_];
        t.real_util = store_->real_util[slot_];
        t.demanded_useful = store_->demanded_useful[slot_];
        t.served_useful = store_->served_useful[slot_];
        return t;
    }

    /** Measured power of the last tick (the SM/EM/GM sensor Sp). */
    double lastPower() const { return store_->power[slot_]; }

    /** Measured apparent utilization of the last tick (the EC sensor Sr). */
    double lastApparentUtil() const { return store_->apparent_util[slot_]; }

    /** Served load of the last tick in full-speed units. */
    double lastRealUtil() const { return store_->real_util[slot_]; }

    /// @}

    /**
     * Serialize mutable state (checkpointing). VM placement is restored
     * separately by the Cluster, so vms_ is not included here.
     */
    void
    saveState(ckpt::SectionWriter &w) const
    {
        w.putU32(store_->power_state[slot_]);
        w.putU64(store_->boot_done_tick[slot_]);
        w.putBool(store_->ever_off[slot_] != 0);
        w.putU64(store_->pstate[slot_]);
        w.putBool(store_->mem_low_power[slot_] != 0);
        w.putDouble(store_->power[slot_]);
        w.putDouble(store_->apparent_util[slot_]);
        w.putDouble(store_->real_util[slot_]);
        w.putDouble(store_->demanded_useful[slot_]);
        w.putDouble(store_->served_useful[slot_]);
    }

    /** Restore mutable state (checkpoint restore). */
    void
    loadState(ckpt::SectionReader &r)
    {
        store_->power_state[slot_] = static_cast<uint8_t>(r.getU32());
        store_->boot_done_tick[slot_] = r.getU64();
        store_->ever_off[slot_] = r.getBool() ? 1 : 0;
        store_->pstate[slot_] = static_cast<uint32_t>(r.getU64());
        store_->mem_low_power[slot_] = r.getBool() ? 1 : 0;
        store_->power[slot_] = r.getDouble();
        store_->apparent_util[slot_] = r.getDouble();
        store_->real_util[slot_] = r.getDouble();
        store_->demanded_useful[slot_] = r.getDouble();
        store_->served_useful[slot_] = r.getDouble();
    }

    /** Fractional power trim when memory low-power mode is on. */
    static constexpr double kMemPowerTrim = 0.08;

    /** Fractional capacity cost of memory low-power mode. */
    static constexpr double kMemCapacityCost = 0.05;

  private:
    /** Publish a tick result into the store's sensor arrays. */
    void
    commit(const ServerTick &t)
    {
        store_->power[slot_] = t.power;
        store_->apparent_util[slot_] = t.apparent_util;
        store_->real_util[slot_] = t.real_util;
        store_->demanded_useful[slot_] = t.demanded_useful;
        store_->served_useful[slot_] = t.served_useful;
    }

    PlatformPower
    powerState() const
    {
        return static_cast<PlatformPower>(store_->power_state[slot_]);
    }

    void
    setPowerState(PlatformPower p)
    {
        store_->power_state[slot_] = static_cast<uint8_t>(p);
    }

    ServerId id_;
    std::shared_ptr<const model::MachineSpec> spec_;
    double alpha_v_;
    double alpha_m_;

    std::vector<VmId> vms_;
    std::shared_ptr<ServerStateSoA> store_;
    uint32_t slot_ = 0;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_SERVER_H
