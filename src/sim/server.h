/**
 * @file
 * Simulated server: hosts VMs, exposes the P-state actuator and the power
 * and utilization sensors, and evaluates one tick of service.
 *
 * Service model (Section 4.2 of the paper): no queueing — demand that
 * exceeds the current capacity in an interval is lost, which is the
 * performance-loss channel. Capacity is the P-state's relative speed;
 * virtualization adds a fixed fractional overhead to every VM's load, and
 * an in-flight migration adds a further fractional tax.
 */

#ifndef NPS_SIM_SERVER_H
#define NPS_SIM_SERVER_H

#include <memory>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"
#include "model/machine.h"
#include "sim/vm.h"

namespace nps {
namespace sim {

/** Power state of the whole platform. */
enum class PlatformPower
{
    On,
    Off,
    Booting,
};

/** Per-tick evaluation result of one server. */
struct ServerTick
{
    double power = 0.0;           //!< watts consumed this tick
    double apparent_util = 0.0;   //!< utilization at the current P-state
    double real_util = 0.0;       //!< served load in full-speed units
    double demanded_useful = 0.0; //!< useful work requested by hosted VMs
    double served_useful = 0.0;   //!< useful work actually delivered
};

/**
 * One simulated server.
 */
class Server
{
  public:
    /**
     * @param id    Unique server id (dense, used as index).
     * @param spec  Immutable machine description (shared across servers).
     * @param alpha_v Virtualization overhead as a fraction of VM load.
     * @param alpha_m Migration overhead as a fraction of VM load.
     */
    Server(ServerId id, std::shared_ptr<const model::MachineSpec> spec,
           double alpha_v, double alpha_m);

    /** @return unique id. */
    ServerId id() const { return id_; }

    /** @return the machine spec. */
    const model::MachineSpec &spec() const { return *spec_; }

    /** @return the power/performance model. */
    const model::PowerModel &model() const { return spec_->model(); }

    /// @name Placement
    /// @{

    /** Attach VM @p vm to this server. @pre not already hosted here. */
    void addVm(VmId vm);

    /** Detach VM @p vm. @pre currently hosted here. */
    void removeVm(VmId vm);

    /** Hosted VM ids (unordered). */
    const std::vector<VmId> &vms() const { return vms_; }

    /// @}
    /// @name Platform power state
    /// @{

    /** @return the platform power state as of @p tick (resolves boot). */
    PlatformPower platformPower(size_t tick) const;

    /** @return true when serving at @p tick. */
    bool isOn(size_t tick) const;

    /**
     * Power the platform off. @pre no hosted VMs (powering off a loaded
     * server is a controller bug and panics).
     */
    void powerOff();

    /** Begin power-on at @p tick; the boot takes spec().bootTicks(). */
    void powerOn(size_t tick);

    /** @return true when the platform was ever powered off/on (vs the
     * initial always-on state). */
    bool everOff() const { return ever_off_; }

    /// @}
    /// @name P-state actuator
    /// @{

    /** Current P-state index. */
    size_t pstate() const { return pstate_; }

    /** Set the P-state index. @pre valid index */
    void setPState(size_t p);

    /** Clock frequency (MHz) of the current P-state. */
    double frequencyMhz() const;

    /// @}
    /// @name Auxiliary (memory) power actuator — MIMO extension hook
    /// @{

    /**
     * Toggle the platform's memory low-power mode: trims power by a fixed
     * fraction at the cost of a small capacity reduction. A second
     * actuator for the multi-input extension of Section 6.
     */
    void setMemLowPower(bool on) { mem_low_power_ = on; }

    /** @return true when memory low-power mode is engaged. */
    bool memLowPower() const { return mem_low_power_; }

    /// @}
    /// @name Tick evaluation and sensors
    /// @{

    /**
     * Serve one tick: aggregates hosted VM demand (with virtualization
     * and migration overheads), caps it by the current capacity, computes
     * power, and records per-VM served work into @p vms.
     *
     * @param tick current simulation tick
     * @param vms  the cluster's VM store, indexed by VmId
     * @return the evaluation result (also retained as last*()).
     */
    const ServerTick &evaluate(size_t tick,
                               std::vector<VirtualMachine> &vms);

    /** Most recent evaluation (zeros before the first). */
    const ServerTick &last() const { return last_; }

    /** Measured power of the last tick (the SM/EM/GM sensor Sp). */
    double lastPower() const { return last_.power; }

    /** Measured apparent utilization of the last tick (the EC sensor Sr). */
    double lastApparentUtil() const { return last_.apparent_util; }

    /** Served load of the last tick in full-speed units. */
    double lastRealUtil() const { return last_.real_util; }

    /// @}

    /**
     * Serialize mutable state (checkpointing). VM placement is restored
     * separately by the Cluster, so vms_ is not included here.
     */
    void
    saveState(ckpt::SectionWriter &w) const
    {
        w.putU32(static_cast<uint32_t>(power_state_));
        w.putU64(boot_done_tick_);
        w.putBool(ever_off_);
        w.putU64(pstate_);
        w.putBool(mem_low_power_);
        w.putDouble(last_.power);
        w.putDouble(last_.apparent_util);
        w.putDouble(last_.real_util);
        w.putDouble(last_.demanded_useful);
        w.putDouble(last_.served_useful);
    }

    /** Restore mutable state (checkpoint restore). */
    void
    loadState(ckpt::SectionReader &r)
    {
        power_state_ = static_cast<PlatformPower>(r.getU32());
        boot_done_tick_ = static_cast<size_t>(r.getU64());
        ever_off_ = r.getBool();
        pstate_ = static_cast<size_t>(r.getU64());
        mem_low_power_ = r.getBool();
        last_.power = r.getDouble();
        last_.apparent_util = r.getDouble();
        last_.real_util = r.getDouble();
        last_.demanded_useful = r.getDouble();
        last_.served_useful = r.getDouble();
    }

    /** Fractional power trim when memory low-power mode is on. */
    static constexpr double kMemPowerTrim = 0.08;

    /** Fractional capacity cost of memory low-power mode. */
    static constexpr double kMemCapacityCost = 0.05;

  private:
    ServerId id_;
    std::shared_ptr<const model::MachineSpec> spec_;
    double alpha_v_;
    double alpha_m_;

    std::vector<VmId> vms_;
    PlatformPower power_state_ = PlatformPower::On;
    size_t boot_done_tick_ = 0;
    bool ever_off_ = false;
    size_t pstate_ = 0;
    bool mem_low_power_ = false;

    ServerTick last_;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_SERVER_H
