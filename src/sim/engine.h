/**
 * @file
 * The discrete-time simulation engine.
 *
 * Time advances in unit ticks. Every tick:
 *   1. each registered actor observes the previous tick's measurements
 *      (for controllers that average over long epochs);
 *   2. actors whose control interval divides the tick take a control step
 *      (coarse time constants first, so inner loops see the fresh
 *      references their outer loops just set);
 *   3. the cluster serves demand at the resulting actuator settings;
 *   4. metrics are recorded.
 *
 * Controllers never act at tick 0: the first tick is a pure measurement
 * tick, so every loop starts from a real observation.
 *
 * Parallel execution (docs/PARALLELISM.md): actors declare themselves
 * *shardable* (per-server state only, keyed by server id) or *global*
 * (cross-server reads/writes) via Actor::shardKey(). The engine fans
 * contiguous runs of shardable actors — and the per-server part of the
 * cluster evaluation — across a worker pool using static, contiguous
 * server shards, with a barrier before every global actor and before
 * metrics recording. Results are bit-identical to the serial engine for
 * any thread count.
 */

#ifndef NPS_SIM_ENGINE_H
#define NPS_SIM_ENGINE_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/cluster.h"
#include "sim/metrics.h"

namespace nps {
namespace obs {
class EngineProfiler;
} // namespace obs

namespace util {
class ThreadPool;
} // namespace util

namespace sim {

/**
 * A scheduled participant of the simulation: a controller (EC, SM, EM,
 * GM, VMC, CAP, ...) or any other periodic agent.
 */
class Actor
{
  public:
    /** shardKey() value of a global (non-shardable) actor. */
    static constexpr long kGlobalShard = -1;

    virtual ~Actor() = default;

    /** Diagnostic name. */
    virtual const std::string &name() const = 0;

    /** Control interval in ticks (the paper's T_ec, T_sm, ...). */
    virtual unsigned period() const = 0;

    /**
     * Shard classification. Return a server id to declare the actor
     * *shardable*: both observe() and step() may then run on a worker
     * thread, concurrently with other shardable actors keyed to
     * different servers. A shardable actor must touch only state owned
     * by its server (the server itself, its own controller state, a
     * controller nested on the same server) and must not use a shared
     * RNG. Return kGlobalShard (the default) for anything that reads or
     * writes cross-server state; global actors always run on the engine
     * thread, with a barrier separating them from neighbouring shardable
     * work.
     */
    virtual long shardKey() const { return kGlobalShard; }

    /**
     * Called every tick (before any control steps) so long-epoch
     * controllers can accumulate averaged observations. Default: no-op.
     */
    virtual void observe(size_t tick) { (void)tick; }

    /** One control step at @p tick. */
    virtual void step(size_t tick) = 0;
};

/**
 * Per-tick gate for externally paced simulation (the online engine,
 * src/stream/): when attached, the engine calls beginTick() at the top
 * of every tick — before any actor observes — so a telemetry feed can
 * stage the tick's externally supplied VM demand (or end the run).
 */
class TickSource
{
  public:
    virtual ~TickSource() = default;

    /**
     * Prepare tick @p tick. Return false to stop the run *before* the
     * tick is simulated (end of stream): Engine::run() returns early
     * and now() still names this tick as the next one to simulate.
     * Called on the engine thread at every thread count, so staging is
     * naturally ordered before all actor/cluster work of the tick.
     */
    virtual bool beginTick(size_t tick) = 0;
};

/**
 * Per-tick completion hook for observation-only consumers (the live
 * observability plane, src/obs/live/): when attached, the engine calls
 * endTick() after the tick is fully simulated and recorded — all actor
 * steps, the cluster evaluation and the metrics record have happened —
 * and before the clock advances. Always invoked on the engine thread,
 * at every thread count, so the hook sees a quiescent simulation.
 * Implementations must not mutate simulation state: results are
 * bit-identical with or without an observer.
 */
class TickObserver
{
  public:
    virtual ~TickObserver() = default;

    /** Tick @p tick has been fully simulated and recorded. */
    virtual void endTick(size_t tick) = 0;
};

/**
 * Drives a Cluster and a set of Actors through simulated time.
 */
class Engine
{
  public:
    /**
     * @param cluster The managed system; must outlive the engine.
     * @param metrics Collector fed once per tick; must outlive the engine.
     */
    Engine(Cluster &cluster, MetricsCollector &metrics);

    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Register an actor. Actors are stepped within a tick in descending
     * period order (stable for ties), regardless of insertion order.
     * Registration is allowed between run() calls: the schedule is
     * (re)built lazily at the next run(), so a later-added actor joins
     * the same coarse-first ordering from that run on.
     *
     * Registering an actor whose name() matches an existing registration
     * *replaces* it in place (e.g. a controller instance rebuilt after a
     * fault-driven restart): the replacement inherits its predecessor's
     * slot, and with it the predecessor's position among equal-period
     * actors in the rebuilt schedule. See actors() for the resulting
     * ordering contract.
     */
    void addActor(std::shared_ptr<Actor> actor);

    /**
     * @return registered actors.
     *
     * Ordering contract (the single authoritative statement — the
     * scheduling, batching, and replacement logic all key off it):
     *
     *  - Before the first run(), actors are in *insertion order* —
     *    addActor appends, and a name-matched replacement reuses its
     *    predecessor's slot instead of appending.
     *  - run() lazily rebuilds the schedule, stable-sorting the vector
     *    into *schedule order*: descending period, ties broken by the
     *    pre-sort slot order. From then on actors() returns schedule
     *    order.
     *  - A subsequent addActor() mutates the (now schedule-ordered)
     *    vector — appending a new name, or replacing in place — and the
     *    next run() re-sorts. Because the sort is stable and a
     *    replacement keeps its slot, a replaced actor steps exactly
     *    where its predecessor did among equal-period peers.
     *
     * Callers that need a state-independent order must sort by name
     * (as the checkpoint roster does).
     */
    const std::vector<std::shared_ptr<Actor>> &actors() const
    {
        return actors_;
    }

    /**
     * Set the worker-thread count for subsequent run() calls: 0 picks
     * the hardware concurrency, 1 runs the legacy single-threaded path.
     * Any value yields bit-identical simulation results.
     */
    void setThreads(unsigned threads);

    /** The resolved worker-thread count currently configured. */
    unsigned threads() const { return threads_; }

    /**
     * Attach (or detach, with nullptr) a wall-clock profiler. When
     * attached, every actor observe()/step() call and the engine-level
     * phases are timed; the profiler must outlive the engine or be
     * detached first. Timing is observation-only: simulation results
     * are bit-identical with or without a profiler.
     */
    void setProfiler(obs::EngineProfiler *profiler);

    /**
     * Attach (or detach, with nullptr) a per-tick source gate. The
     * source must outlive the engine or be detached first. With no
     * source attached the tick loops are exactly the offline engine —
     * the online path adds one pointer test per tick.
     */
    void setTickSource(TickSource *source) { source_ = source; }

    /**
     * Attach (or detach, with nullptr) a per-tick completion observer.
     * The observer must outlive the engine or be detached first. With
     * no observer attached the tick loops are exactly the plain engine
     * — the hook adds one pointer test per tick.
     */
    void setTickObserver(TickObserver *observer) { observer_ = observer; }

    /**
     * Advance the simulation by up to @p ticks ticks.
     *
     * @return the number of ticks actually simulated: @p ticks, unless
     * an attached TickSource ended the run early.
     */
    size_t run(size_t ticks);

    /** @return the next tick to be simulated. */
    size_t now() const { return now_; }

    /**
     * Serialize the clock and the actor roster (checkpointing). The
     * roster is stored as a sorted name list and used purely as a
     * consistency check on restore — actors serialize their own state.
     */
    void saveState(ckpt::SectionWriter &w) const;

    /**
     * Restore the clock; fatal when the rebuilt actor roster does not
     * match the snapshot's (config/topology mismatch).
     */
    void loadState(ckpt::SectionReader &r);

  private:
    /**
     * One schedule segment: a maximal run of consecutive same-kind
     * actors in the sorted order. A global segment holds exactly one
     * actor. A shardable segment holds the actor indices partitioned by
     * shard in one flat array (shard-major, each shard's slice in
     * schedule order) with an offsets table — workers walk a contiguous
     * index range instead of chasing a vector-of-vectors, and `fire`
     * (the distinct periods present in the segment) lets the step phase
     * skip the whole dispatch on ticks where no member fires.
     */
    struct Segment
    {
        bool shardable = false;
        size_t actor = 0;            //!< global only
        std::vector<size_t> flat;    //!< shardable: indices, shard-major
        std::vector<size_t> begin;   //!< shardable: shards+1 offsets
        std::vector<unsigned> fire;  //!< shardable: distinct periods
    };

    void preparePlan();
    size_t runSerial(size_t ticks);
    size_t runParallel(size_t ticks);
    size_t runSerialProfiled(size_t ticks);
    size_t runParallelProfiled(size_t ticks);
    void announceSchedule();

    Cluster &cluster_;
    MetricsCollector &metrics_;
    std::vector<std::shared_ptr<Actor>> actors_;
    // name -> current slot in actors_, so the replace-by-name path of
    // addActor stays O(1) at fleet scale (hundreds of thousands of
    // registrations). Rebuilt after the schedule sort moves slots.
    std::unordered_map<std::string, size_t> slot_of_;
    size_t now_ = 0;

    unsigned threads_;
    std::unique_ptr<util::ThreadPool> pool_;
    std::vector<Segment> plan_;
    // Dispatch caches rebuilt with the plan: raw actor pointers and
    // periods indexed like actors_, so the per-tick loops skip the
    // shared_ptr control-block dereference and the virtual period()
    // call. Valid only while plan_dirty_ is false (addActor and
    // setThreads invalidate).
    std::vector<Actor *> raw_;
    std::vector<unsigned> period_;
    bool plan_dirty_ = true;
    obs::EngineProfiler *profiler_ = nullptr;
    TickSource *source_ = nullptr;
    TickObserver *observer_ = nullptr;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_ENGINE_H
