/**
 * @file
 * The discrete-time simulation engine.
 *
 * Time advances in unit ticks. Every tick:
 *   1. each registered actor observes the previous tick's measurements
 *      (for controllers that average over long epochs);
 *   2. actors whose control interval divides the tick take a control step
 *      (coarse time constants first, so inner loops see the fresh
 *      references their outer loops just set);
 *   3. the cluster serves demand at the resulting actuator settings;
 *   4. metrics are recorded.
 *
 * Controllers never act at tick 0: the first tick is a pure measurement
 * tick, so every loop starts from a real observation.
 */

#ifndef NPS_SIM_ENGINE_H
#define NPS_SIM_ENGINE_H

#include <memory>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/metrics.h"

namespace nps {
namespace sim {

/**
 * A scheduled participant of the simulation: a controller (EC, SM, EM,
 * GM, VMC, CAP, ...) or any other periodic agent.
 */
class Actor
{
  public:
    virtual ~Actor() = default;

    /** Diagnostic name. */
    virtual const std::string &name() const = 0;

    /** Control interval in ticks (the paper's T_ec, T_sm, ...). */
    virtual unsigned period() const = 0;

    /**
     * Called every tick (before any control steps) so long-epoch
     * controllers can accumulate averaged observations. Default: no-op.
     */
    virtual void observe(size_t tick) { (void)tick; }

    /** One control step at @p tick. */
    virtual void step(size_t tick) = 0;
};

/**
 * Drives a Cluster and a set of Actors through simulated time.
 */
class Engine
{
  public:
    /**
     * @param cluster The managed system; must outlive the engine.
     * @param metrics Collector fed once per tick; must outlive the engine.
     */
    Engine(Cluster &cluster, MetricsCollector &metrics);

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Register an actor. Actors are stepped within a tick in descending
     * period order (stable for ties), regardless of insertion order.
     */
    void addActor(std::shared_ptr<Actor> actor);

    /** @return registered actors. */
    const std::vector<std::shared_ptr<Actor>> &actors() const
    {
        return actors_;
    }

    /** Advance the simulation by @p ticks ticks. */
    void run(size_t ticks);

    /** @return the next tick to be simulated. */
    size_t now() const { return now_; }

  private:
    Cluster &cluster_;
    MetricsCollector &metrics_;
    std::vector<std::shared_ptr<Actor>> actors_;
    size_t now_ = 0;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_ENGINE_H
