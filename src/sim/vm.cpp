#include "sim/vm.h"

#include "util/logging.h"

namespace nps {
namespace sim {

VirtualMachine::VirtualMachine(VmId id, trace::UtilizationTrace tr)
    : id_(id), trace_(std::move(tr)),
      store_(std::make_shared<VmStateSoA>()), slot_(0)
{
    if (trace_.empty())
        util::fatal("VirtualMachine %u: empty trace", id_);
    store_->resize(1);
}

VirtualMachine::VirtualMachine(VmId id, trace::UtilizationTrace tr,
                               std::shared_ptr<VmStateSoA> store,
                               uint32_t slot)
    : id_(id), trace_(std::move(tr)), store_(std::move(store)), slot_(slot)
{
    if (trace_.empty())
        util::fatal("VirtualMachine %u: empty trace", id_);
    if (!store_ || slot_ >= store_->size())
        util::fatal("VirtualMachine %u: bad state slot %u", id_, slot_);
}

} // namespace sim
} // namespace nps
