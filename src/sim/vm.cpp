#include "sim/vm.h"

#include "util/logging.h"

namespace nps {
namespace sim {

VirtualMachine::VirtualMachine(VmId id, trace::UtilizationTrace tr)
    : id_(id), trace_(std::move(tr))
{
    if (trace_.empty())
        util::fatal("VirtualMachine %u: empty trace", id_);
}

} // namespace sim
} // namespace nps
