#include "sim/enclosure.h"

#include <algorithm>

#include "util/logging.h"

namespace nps {
namespace sim {

Enclosure::Enclosure(EnclosureId id, std::string name,
                     std::vector<ServerId> members)
    : id_(id), name_(std::move(name)), members_(std::move(members))
{
    if (members_.empty())
        util::fatal("Enclosure %s: no members", name_.c_str());
}

bool
Enclosure::contains(ServerId server) const
{
    return std::find(members_.begin(), members_.end(), server) !=
           members_.end();
}

} // namespace sim
} // namespace nps
