#include "sim/thermal.h"

#include "util/logging.h"

namespace nps {
namespace sim {

ThermalModel::ThermalModel(ThermalParams params)
    : params_(params), temp_c_(params.ambient_c)
{
    if (params_.tau_ticks <= 0.0)
        util::fatal("ThermalModel: non-positive time constant");
    if (params_.c_per_watt <= 0.0)
        util::fatal("ThermalModel: non-positive thermal resistance");
}

void
ThermalModel::step(double watts)
{
    if (watts < 0.0)
        util::panic("ThermalModel::step: negative power %f", watts);
    double target = params_.ambient_c + watts * params_.c_per_watt;
    temp_c_ += (target - temp_c_) / params_.tau_ticks;
    ++ticks_;
    if (!failed_over_ && temp_c_ > params_.failover_c) {
        failed_over_ = true;
        failover_tick_ = ticks_;
    }
}

double
ThermalModel::steadyState(double watts) const
{
    return params_.ambient_c + watts * params_.c_per_watt;
}

double
ThermalModel::sustainablePower() const
{
    return (params_.failover_c - params_.ambient_c) / params_.c_per_watt;
}

} // namespace sim
} // namespace nps
