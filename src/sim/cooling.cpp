#include "sim/cooling.h"

#include <algorithm>

#include "util/logging.h"
#include "util/stats.h"

namespace nps {
namespace sim {

double
cracCop(double t_supply_c)
{
    if (t_supply_c < 0.0)
        util::fatal("cracCop: negative supply temperature");
    return 0.0068 * t_supply_c * t_supply_c + 0.0008 * t_supply_c +
           0.458;
}

CoolingZone::CoolingZone(std::string name, std::vector<ServerId> members,
                         CoolingZoneParams params)
    : name_(std::move(name)),
      members_(std::move(members)),
      params_(params),
      temp_c_(params.ambient_c)
{
    if (members_.empty())
        util::fatal("CoolingZone %s: no members", name_.c_str());
    if (params_.thermal_mass <= 0.0)
        util::fatal("CoolingZone %s: non-positive thermal mass",
                    name_.c_str());
    if (params_.crac_capacity <= 0.0)
        util::fatal("CoolingZone %s: non-positive CRAC capacity",
                    name_.c_str());
    if (params_.leak_per_tick < 0.0 || params_.leak_per_tick >= 1.0)
        util::fatal("CoolingZone %s: leak fraction out of [0,1)",
                    name_.c_str());
}

void
CoolingZone::setExtraction(double watts)
{
    extraction_ = util::clamp(watts, 0.0, params_.crac_capacity);
}

void
CoolingZone::step(double it_watts)
{
    if (it_watts < 0.0)
        util::panic("CoolingZone %s: negative IT power", name_.c_str());

    // The CRAC cannot pull the zone below its supply temperature: when
    // the air is already at the floor, extraction is limited to the
    // incoming heat.
    double removable = extraction_;
    if (temp_c_ <= params_.ambient_c + 0.01)
        removable = std::min(removable, it_watts);
    last_removed_ = removable;
    last_electric_ = removable / cracCop(params_.supply_c);

    double net = it_watts - removable;
    temp_c_ += net / params_.thermal_mass;
    // Passive leakage towards ambient.
    temp_c_ += (params_.ambient_c - temp_c_) * params_.leak_per_tick;
    temp_c_ = std::max(temp_c_, params_.ambient_c);

    if (temp_c_ > params_.redline_c)
        redlined_ = true;
}

double
CoolingZone::requiredExtraction(double it_watts, double target_c) const
{
    // In steady state: it - removed = leak * (target - ambient) * mass.
    double leak_flow = params_.leak_per_tick *
                       (target_c - params_.ambient_c) *
                       params_.thermal_mass;
    return util::clamp(it_watts - leak_flow, 0.0,
                       params_.crac_capacity);
}

} // namespace sim
} // namespace nps
