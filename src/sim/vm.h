/**
 * @file
 * Virtual machines: the unit of workload placement.
 *
 * Each VM replays one utilization trace. The simulator tracks, per VM, the
 * useful work demanded vs. served each tick (for performance-loss
 * accounting) and any in-flight migration (which taxes the source of truth
 * for the paper's 10%-overhead pre-copy model).
 *
 * The mutable scalars live in a struct-of-arrays store (sim/soa.h):
 * a VirtualMachine is a thin view (store + slot). Cluster-owned VMs
 * share the cluster's store so the hot path iterates contiguous arrays;
 * standalone-constructed VMs own a private single-slot store and behave
 * identically.
 */

#ifndef NPS_SIM_VM_H
#define NPS_SIM_VM_H

#include <cstddef>
#include <limits>
#include <memory>

#include "ckpt/snapshot.h"
#include "sim/soa.h"
#include "trace/trace.h"

namespace nps {
namespace sim {

/** Identifier types, kept distinct for readability. */
using VmId = unsigned;
using ServerId = unsigned;

/** Sentinel for "no server". */
inline constexpr ServerId kNoServer =
    std::numeric_limits<ServerId>::max();

/**
 * One virtual machine bound to one utilization trace.
 */
class VirtualMachine
{
  public:
    /**
     * Standalone view: owns a private single-slot state store.
     * @param id unique VM id; @param tr the demand trace it replays.
     */
    VirtualMachine(VmId id, trace::UtilizationTrace tr);

    /**
     * Cluster view: state lives at @p slot of the shared @p store.
     * @pre store != nullptr and slot < store->size().
     */
    VirtualMachine(VmId id, trace::UtilizationTrace tr,
                   std::shared_ptr<VmStateSoA> store, uint32_t slot);

    /** @return unique id. */
    VmId id() const { return id_; }

    /** @return the demand trace. */
    const trace::UtilizationTrace &trace() const { return trace_; }

    /**
     * Useful-work demand (full-speed utilization fraction) at @p tick:
     * the trace sample, unless the store has been switched to
     * externally staged demand (Cluster::enableExternalDemand — the
     * online engine), in which case it is whatever the telemetry feed
     * staged for this tick.
     */
    double
    demandAt(size_t tick) const
    {
        if (store_->external_demand)
            return store_->staged_demand[slot_];
        return trace_.at(tick);
    }

    /**
     * Begin a migration whose overhead lasts until (exclusive) @p until.
     * While migrating the VM's load is taxed by the migration overhead.
     */
    void
    beginMigration(size_t until)
    {
        store_->migrating_until[slot_] = until;
    }

    /** @return true when a migration is in flight at @p tick. */
    bool
    migrating(size_t tick) const
    {
        return tick < store_->migrating_until[slot_];
    }

    /**
     * Record this tick's service outcome (set by Server).
     * @param demanded useful work requested (full-speed units)
     * @param served   useful work delivered (full-speed units)
     * @param apparent_share the VM's share of the host's *current-speed*
     *        capacity, overheads included — what a guest OS would report.
     */
    void
    recordServed(double demanded, double served, double apparent_share)
    {
        store_->last_demanded[slot_] = demanded;
        store_->last_served[slot_] = served;
        store_->last_apparent_share[slot_] = apparent_share;
    }

    /** Useful work demanded in the most recent tick. */
    double lastDemanded() const { return store_->last_demanded[slot_]; }

    /**
     * Useful work served in the most recent tick, expressed in full-speed
     * utilization units. This is the VM's *real* utilization, the quantity
     * the coordinated VMC consumes.
     */
    double lastServed() const { return store_->last_served[slot_]; }

    /**
     * The VM's share of its host's capacity at the host's *current*
     * P-state, overheads included. This is the *apparent* utilization an
     * uncoordinated VMC reads; it saturates with the host and understates
     * demand on throttled machines.
     */
    double
    lastApparentShare() const
    {
        return store_->last_apparent_share[slot_];
    }

    /** Serialize mutable state (checkpointing); the trace is rebuilt. */
    void
    saveState(ckpt::SectionWriter &w) const
    {
        w.putU64(store_->migrating_until[slot_]);
        w.putDouble(store_->last_demanded[slot_]);
        w.putDouble(store_->last_served[slot_]);
        w.putDouble(store_->last_apparent_share[slot_]);
    }

    /** Restore mutable state (checkpoint restore). */
    void
    loadState(ckpt::SectionReader &r)
    {
        store_->migrating_until[slot_] = r.getU64();
        store_->last_demanded[slot_] = r.getDouble();
        store_->last_served[slot_] = r.getDouble();
        store_->last_apparent_share[slot_] = r.getDouble();
    }

  private:
    VmId id_;
    trace::UtilizationTrace trace_;
    std::shared_ptr<VmStateSoA> store_;
    uint32_t slot_ = 0;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_VM_H
