/**
 * @file
 * Virtual machines: the unit of workload placement.
 *
 * Each VM replays one utilization trace. The simulator tracks, per VM, the
 * useful work demanded vs. served each tick (for performance-loss
 * accounting) and any in-flight migration (which taxes the source of truth
 * for the paper's 10%-overhead pre-copy model).
 */

#ifndef NPS_SIM_VM_H
#define NPS_SIM_VM_H

#include <cstddef>
#include <limits>

#include "ckpt/snapshot.h"
#include "trace/trace.h"

namespace nps {
namespace sim {

/** Identifier types, kept distinct for readability. */
using VmId = unsigned;
using ServerId = unsigned;

/** Sentinel for "no server". */
inline constexpr ServerId kNoServer =
    std::numeric_limits<ServerId>::max();

/**
 * One virtual machine bound to one utilization trace.
 */
class VirtualMachine
{
  public:
    /** @param id unique VM id; @param tr the demand trace it replays. */
    VirtualMachine(VmId id, trace::UtilizationTrace tr);

    /** @return unique id. */
    VmId id() const { return id_; }

    /** @return the demand trace. */
    const trace::UtilizationTrace &trace() const { return trace_; }

    /** Useful-work demand (full-speed utilization fraction) at @p tick. */
    double demandAt(size_t tick) const { return trace_.at(tick); }

    /**
     * Begin a migration whose overhead lasts until (exclusive) @p until.
     * While migrating the VM's load is taxed by the migration overhead.
     */
    void beginMigration(size_t until) { migrating_until_ = until; }

    /** @return true when a migration is in flight at @p tick. */
    bool migrating(size_t tick) const { return tick < migrating_until_; }

    /**
     * Record this tick's service outcome (set by Server).
     * @param demanded useful work requested (full-speed units)
     * @param served   useful work delivered (full-speed units)
     * @param apparent_share the VM's share of the host's *current-speed*
     *        capacity, overheads included — what a guest OS would report.
     */
    void
    recordServed(double demanded, double served, double apparent_share)
    {
        last_demanded_ = demanded;
        last_served_ = served;
        last_apparent_share_ = apparent_share;
    }

    /** Useful work demanded in the most recent tick. */
    double lastDemanded() const { return last_demanded_; }

    /**
     * Useful work served in the most recent tick, expressed in full-speed
     * utilization units. This is the VM's *real* utilization, the quantity
     * the coordinated VMC consumes.
     */
    double lastServed() const { return last_served_; }

    /**
     * The VM's share of its host's capacity at the host's *current*
     * P-state, overheads included. This is the *apparent* utilization an
     * uncoordinated VMC reads; it saturates with the host and understates
     * demand on throttled machines.
     */
    double lastApparentShare() const { return last_apparent_share_; }

    /** Serialize mutable state (checkpointing); the trace is rebuilt. */
    void
    saveState(ckpt::SectionWriter &w) const
    {
        w.putU64(migrating_until_);
        w.putDouble(last_demanded_);
        w.putDouble(last_served_);
        w.putDouble(last_apparent_share_);
    }

    /** Restore mutable state (checkpoint restore). */
    void
    loadState(ckpt::SectionReader &r)
    {
        migrating_until_ = static_cast<size_t>(r.getU64());
        last_demanded_ = r.getDouble();
        last_served_ = r.getDouble();
        last_apparent_share_ = r.getDouble();
    }

  private:
    VmId id_;
    trace::UtilizationTrace trace_;
    size_t migrating_until_ = 0;
    double last_demanded_ = 0.0;
    double last_served_ = 0.0;
    double last_apparent_share_ = 0.0;
};

} // namespace sim
} // namespace nps

#endif // NPS_SIM_VM_H
